(* SIMSCALE — million-node radio simulation through the flat CSR engine.

   Four measurements on sparse G(n,m) instances at mean degree 8 (quick:
   n = 10^5; full: n = 10^6 — see EXPERIMENTS.md for the documented
   million-node run):

   1. Agreement: Decay through the legacy [Sim] and the CSR engine on a
      shared mid-size instance must produce structurally equal outcomes
      (rounds, completion, informed count, collisions, frontier history),
      and the CSR outcome must not depend on the job count.
   2. Alloc: once the network is saturated, a CSR flood step at jobs=1
      allocates zero minor words (budgeted a constant few words for the
      [Gc.minor_words] float boxing of the probe itself) — the
      steady-state claim the acceptance gate names. The legacy scratch
      path is held to the same budget.
   3. Throughput: steady-state flood rounds on the fully-informed network
      (all n seeded via [inform] — the saturated regime both engines
      reach under sustained broadcast), legacy scatter vs CSR gather,
      reported as vertex-scans/sec (both engines credit
      Work.vertex_scans = n per round, so the rates land in wx-bench/4
      and gate in `wx bench diff`). At saturation the gather is O(1) per
      vertex (every neighbor probe early-exits on the transmitter check)
      while the scatter stays O(m); the headline claim: best CSR rate
      >= 5x legacy.
   4. End-to-end: Decay from one source at scale n, informational
      rounds/sec and spread (gnm at mean degree 8 may strand isolated
      vertices, so near-complete spread is the check, not completion —
      the giant component is informed within ~100 rounds at n = 10^5). *)

open Bench_common
module Clock = Wx_obs.Clock
module Memgc = Wx_obs.Memgc
module Work = Wx_obs.Work
module Pool = Wx_par.Pool
module Csr = Wx_graph.Csr
module Network = Wx_radio.Network
module Sim = Wx_radio.Sim
module Sim_csr = Wx_radio.Sim_csr

let timed f =
  let t0 = Clock.now_ns () in
  let v = f () in
  (v, Clock.ns_to_s (Clock.now_ns () - t0))

let per_sec units dt = if dt > 0.0 then float_of_int units /. dt else infinity

(* Steady-state alloc probe: run [steps] of [f] under Memgc and return the
   minor-word delta. The budget is a constant independent of the step
   count ([Gc.minor_words] boxes a float), so "< 16 words over 50 steps"
   certifies exactly zero per step. *)
let alloc_budget = 16.0
let alloc_steps = 50

let measure_steady_alloc f =
  let was = Memgc.is_enabled () in
  if not was then Memgc.enable ();
  Fun.protect
    ~finally:(fun () -> if not was then Memgc.disable ())
    (fun () ->
      let w0 = Memgc.own_minor_words () in
      for _ = 1 to alloc_steps do
        f ()
      done;
      Memgc.own_minor_words () -. w0)

let outcomes_equal (a : Sim.outcome) (b : Sim.outcome) =
  a.Sim.rounds = b.Sim.rounds
  && a.Sim.completed = b.Sim.completed
  && a.Sim.informed_final = b.Sim.informed_final
  && a.Sim.collisions = b.Sim.collisions
  && a.Sim.frontier_history = b.Sim.frontier_history

let run ~quick =
  let n = if quick then 100_000 else 1_000_000 in
  let m = 4 * n in
  let ok = ref 0 and total = ref 0 in
  let check claim ?instance ?predicted ?measured holds =
    incr total;
    if holds then incr ok;
    record ~claim ?instance ?predicted ?measured holds
  in
  let t = Table.create [ "engine"; "n"; "rounds"; "wall s"; "vertex-scans/sec" ] in
  let row engine rounds dt =
    Table.add_row t
      [
        engine;
        Table.fi n;
        Table.fi rounds;
        Printf.sprintf "%.3f" dt;
        Printf.sprintf "%.3e" (per_sec (n * rounds) dt);
      ]
  in

  (* 1. agreement on a shared mid-size instance, at several job counts *)
  let na = 20_000 and ma = 80_000 and cap = 400 in
  let ga = Gen.gnm (rng 61) na ma in
  let ca = Csr.of_graph ga in
  let legacy =
    Sim.run ~max_rounds:cap ga ~source:0 Wx_radio.Decay_protocol.protocol (Rng.create 2018)
  in
  let csr_j jobs =
    Sim_csr.run ~max_rounds:cap ~jobs ca ~source:0 Sim_csr.decay (Rng.create 2018)
  in
  let c1 = csr_j 1 in
  check "simscale: csr decay outcome = legacy (shared instance, seed)"
    ~instance:(Printf.sprintf "gnm n=%d m=%d" na ma)
    ~predicted:(float_of_int legacy.Sim.informed_final)
    ~measured:(float_of_int c1.Sim.informed_final)
    (outcomes_equal legacy c1);
  let jobs = Pool.default_jobs () in
  check "simscale: csr outcome independent of job count"
    ~instance:(Printf.sprintf "jobs 1 vs %d" jobs)
    ~predicted:(float_of_int c1.Sim.rounds)
    ~measured:(float_of_int (csr_j jobs).Sim.rounds)
    (outcomes_equal c1 (csr_j jobs));

  (* scale instance, built once (construction cost is not the claim) *)
  let g = Gen.gnm (rng 62) n m in
  let csr = Csr.of_graph g in
  check "simscale: csr layout matches graph"
    ~instance:(Printf.sprintf "gnm n=%d m=%d" n m)
    ~predicted:(float_of_int (2 * Graph.m g))
    ~measured:(float_of_int (Csr.offsets csr).(n))
    (Csr.n csr = n && Csr.m csr = Graph.m g && (Csr.offsets csr).(n) = 2 * Graph.m g);

  (* 2 + 3. steady state: seed every vertex via [inform] (the saturated
     all-transmit regime — flood alone deadlocks at a partial fixpoint
     because vertices with >= 2 informed neighbors hear collisions
     forever), then hold both engines to the zero-alloc budget and race
     them over identical flood rounds. *)
  let saturated_csr ~jobs =
    let st = Sim_csr.create ~jobs csr ~source:0 in
    for v = 0 to n - 1 do
      Sim_csr.inform st v
    done;
    ignore (Sim_csr.step st Sim_csr.flood (Rng.create 7));
    (st, Rng.create 7)
  in
  let st1, r1 = saturated_csr ~jobs:1 in
  let dw_csr = measure_steady_alloc (fun () -> ignore (Sim_csr.step st1 Sim_csr.flood r1)) in
  check "simscale: csr steady-state step allocates zero minor words"
    ~instance:(Printf.sprintf "%d saturated flood steps, jobs=1" alloc_steps)
    ~predicted:0.0 ~measured:dw_csr (dw_csr < alloc_budget);
  let net = Network.create g 0 in
  for v = 0 to n - 1 do
    Network.inform net v
  done;
  ignore (Network.step net (Network.informed net));
  let dw_legacy =
    measure_steady_alloc (fun () -> ignore (Network.step net (Network.informed net)))
  in
  check "simscale: legacy steady-state step allocates zero minor words"
    ~instance:(Printf.sprintf "%d saturated flood steps" alloc_steps)
    ~predicted:0.0 ~measured:dw_legacy (dw_legacy < alloc_budget);

  let steps = if quick then 64 else 32 in
  let (), legacy_dt =
    timed (fun () ->
        for _ = 1 to steps do
          ignore (Network.step net (Network.informed net))
        done)
  in
  row "legacy scatter" steps legacy_dt;
  let (), csr1_dt =
    timed (fun () ->
        for _ = 1 to steps do
          ignore (Sim_csr.step st1 Sim_csr.flood r1)
        done)
  in
  row "csr gather (j=1)" steps csr1_dt;
  let stj, rj = saturated_csr ~jobs in
  let (), csrj_dt =
    timed (fun () ->
        for _ = 1 to steps do
          ignore (Sim_csr.step stj Sim_csr.flood rj)
        done)
  in
  row (Printf.sprintf "csr gather (j=%d)" jobs) steps csrj_dt;
  let legacy_rate = per_sec (n * steps) legacy_dt in
  let best_rate = Float.max (per_sec (n * steps) csr1_dt) (per_sec (n * steps) csrj_dt) in
  check "simscale: csr >= 5x legacy vertex-scan throughput (saturated flood)"
    ~instance:(Printf.sprintf "gnm n=%d, %d steady rounds" n steps)
    ~predicted:5.0
    ~measured:(best_rate /. legacy_rate)
    (best_rate >= 5.0 *. legacy_rate);

  (* 4. end-to-end decay broadcast at scale (informational rate) *)
  let decay_cap = 150 in
  let out, decay_dt =
    timed (fun () ->
        Sim_csr.run ~max_rounds:decay_cap csr ~source:0 Sim_csr.decay (Rng.create 99))
  in
  Table.add_row t
    [
      "csr decay e2e";
      Table.fi n;
      Table.fi out.Sim.rounds;
      Printf.sprintf "%.3f" decay_dt;
      Printf.sprintf "%.3e" (per_sec (n * out.Sim.rounds) decay_dt);
    ];
  (* Mean degree 8 leaves ~e^-8 of vertices isolated in expectation, so
     the spread check asks for 99% rather than completion. *)
  check "simscale: decay informs >= 99% at scale"
    ~instance:(Printf.sprintf "gnm n=%d, cap %d rounds" n decay_cap)
    ~predicted:(0.99 *. float_of_int n)
    ~measured:(float_of_int out.Sim.informed_final)
    (float_of_int out.Sim.informed_final >= 0.99 *. float_of_int n);
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "simscale";
    title = "million-node radio rounds: flat CSR gather vs legacy scatter";
    claim = "scale engine validation + throughput (no paper claim)";
    run;
  }
