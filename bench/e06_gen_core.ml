(* E6 — Lemmas 4.6/4.7/4.8: the generalized core graph realizes any target
   the pair ∆*, β* in the admissible band while keeping the wireless cap at a
   4/log(min{∆*/β*, ∆*·β*}) fraction of |N*|. *)

open Bench_common
module Gen_core = Wx_constructions.Gen_core

let targets ~quick =
  if quick then [ (64, 8.0); (64, 0.5) ]
  else
    [
      (32, 1.0); (64, 8.0); (64, 4.0); (64, 2.0); (64, 1.0); (64, 0.5);
      (128, 16.0); (128, 1.0); (128, 0.25); (256, 4.0); (256, 32.0); (512, 64.0);
    ]

let run ~quick =
  let t =
    Table.create
      [ "Δ* target"; "β* target"; "regime"; "s"; "k"; "|S*|"; "|N*|"; "β* built"; "cap frac"; "4/log(..)"; "holds" ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (delta_star, beta_star) ->
      match Gen_core.create ~delta_star ~beta_star with
      | gc ->
          let checks = Theorems.lemma_4_6 gc in
          total := !total + List.length checks;
          ok := !ok + count_holds checks;
          List.iter record_check checks;
          let inst = gc.Gen_core.bip in
          let m = Gen_core.max_unique_exact gc in
          let frac = float_of_int m /. float_of_int (Bipartite.n_count inst) in
          let ad = float_of_int gc.Gen_core.achieved_delta in
          let ab = gc.Gen_core.achieved_beta in
          let cap =
            4.0 /. Float.max 1.0 (Floatx.log2 (Float.min (ad /. ab) (ad *. ab)))
          in
          Table.add_row t
            [
              Table.fi delta_star;
              Table.ff ~dec:2 beta_star;
              (match gc.Gen_core.regime with
              | Gen_core.Blow_up_n -> "4.7 (N-side)"
              | Gen_core.Blow_up_s -> "4.8 (S-side)");
              Table.fi (Wx_constructions.Core_graph.s gc.Gen_core.core);
              Table.fi gc.Gen_core.k;
              Table.fi (Bipartite.s_count inst);
              Table.fi (Bipartite.n_count inst);
              Table.ff ~dec:2 ab;
              Table.ff ~dec:3 frac;
              Table.ff ~dec:3 cap;
              Table.fb (List.for_all (fun c -> c.Theorems.holds) checks);
            ]
      | exception Invalid_argument msg ->
          Printf.printf "  skipping (Δ*=%d, β*=%.2f): %s\n" delta_star beta_star msg)
    (targets ~quick);
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "e6";
    title = "generalized core graphs across the (Δ*, β*) band";
    claim = "Lemmas 4.6, 4.7, 4.8";
    run;
  }
