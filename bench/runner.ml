(* Experiment registry and repeat-aware runner.

   This used to live inside bench/main.ml, which made the experiment zoo
   reachable only through one executable; as a library module, `wx bench
   record` can regenerate the committed baseline and CI can rerun the exact
   same code path. Each experiment runs [repeats] times (median-of-k is
   what the regression gate compares), with checks drained after every
   repeat so only one copy lands in the report. *)

open Bench_common
module Clock = Wx_obs.Clock
module Memgc = Wx_obs.Memgc
module Work = Wx_obs.Work
module Pool = Wx_par.Pool
module Report = Wx_obs.Report

let experiments : experiment list =
  [
    E01_relations.experiment;
    E02_spectral.experiment;
    E03_unique_tightness.experiment;
    E04_gbad_wireless.experiment;
    E05_core_graph.experiment;
    E06_gen_core.experiment;
    E07_positive.experiment;
    E08_worst_case.experiment;
    E09_spokesmen.experiment;
    E10_appendix_ladder.experiment;
    E11_broadcast.experiment;
    E12_arboricity.experiment;
    Ablations.experiment;
    Kernel_bench.experiment;
    Simscale.experiment;
  ]

let find id = List.find_opt (fun e -> e.id = id) experiments

type outcome = {
  exp : experiment;
  wall_s : float list;  (** one sample per repeat, in run order *)
  alloc : Memgc.counters option;  (** last repeat's delta; None when Memgc off *)
  work : (string * int) list;  (** last repeat's Work deltas; [] when off *)
  util : Report.util option;  (** pool utilization across all repeats *)
  checks : check_row list;
  metrics : Json.t;  (** Null when metrics collection is off *)
}

(* Reduce the pool's nanosecond accumulator to the report's utilization
   block. Undefined fractions (no capacity / an idle slot span) encode as
   0.0 rather than NaN: the JSON layer writes NaN as null, which the
   defensive decoder would reject. *)
let util_of_pool (u : Pool.util) : Report.util option =
  if u.Pool.u_runs = 0 && u.Pool.u_seq_runs = 0 then None
  else
    let frac busy span = if span > 0 then float_of_int busy /. float_of_int span else 0.0 in
    Some
      {
        Report.ut_runs = u.Pool.u_runs;
        ut_seq_runs = u.Pool.u_seq_runs;
        ut_busy_frac = frac u.Pool.u_busy_ns u.Pool.u_capacity_ns;
        ut_idle_tail_ms =
          (if u.Pool.u_runs = 0 then 0.0
           else Clock.ns_to_ms u.Pool.u_idle_tail_ns /. float_of_int u.Pool.u_runs);
        ut_max_idle_tail_ms = Clock.ns_to_ms u.Pool.u_max_idle_tail_ns;
        ut_slots =
          Array.to_list
            (Array.map
               (fun s ->
                 {
                   Report.us_busy_frac = frac s.Pool.s_busy_ns s.Pool.s_span_ns;
                   us_chunks = s.Pool.s_chunks;
                 })
               u.Pool.u_slots);
      }

(* Testing hook for the regression gate itself: WX_BENCH_HANDICAP_MS adds a
   fixed sleep to every experiment repeat, so "wx bench diff detects an
   injected slowdown" is checkable without de-optimizing real code. *)
let handicap_s () =
  match Sys.getenv_opt "WX_BENCH_HANDICAP_MS" with
  | None -> 0.0
  | Some s -> ( match float_of_string_opt s with Some ms when ms > 0.0 -> ms /. 1e3 | _ -> 0.0)

(* The alloc-gate analogue: WX_BENCH_ALLOC_HANDICAP_WORDS burns roughly
   that many minor words inside the measured window of every repeat, so
   "wx bench diff --alloc-only catches an injected allocation regression"
   is testable end to end. *)
let alloc_handicap_words () =
  match Sys.getenv_opt "WX_BENCH_ALLOC_HANDICAP_WORDS" with
  | None -> 0
  | Some s -> ( match int_of_string_opt s with Some w when w > 0 -> w | _ -> 0)

(* A 1KiB bytes block costs a deterministic ~130 words (header + payload);
   Sys.opaque_identity keeps flambda-less ocamlopt from dropping it too. *)
let burn_minor_words w =
  let per_block = 1 + ((1024 / (Sys.word_size / 8)) + 1) in
  for _ = 1 to (w + per_block - 1) / per_block do
    ignore (Sys.opaque_identity (Bytes.create 1024))
  done

let experiment_timer = Metrics.timer "bench.experiment"

let run_one ?(repeats = 1) ~quick ~collect e =
  section e;
  if collect then begin
    Metrics.reset ();
    Pool.reset_util ()
  end;
  let repeats = max 1 repeats in
  let handicap = handicap_s () in
  let alloc_handicap = alloc_handicap_words () in
  let wall_rev = ref [] and last_checks = ref [] and last_alloc = ref None in
  let last_work = ref [] in
  for rep = 1 to repeats do
    ignore (take_recorded ());
    (* Work totals are read outside the alloc window (the reads allocate
       small lists); Work counters only move inside e.run, so the delta is
       exact anyway. Like alloc, the last repeat's delta is what lands in
       the report — repeats are identical by the determinism contract. *)
    let w0 = Work.totals () in
    (* The alloc window hugs the run itself: the before-read comes first so
       the wall clock absorbs its cost, and everything after the after-read
       (handicap sleep, progress printf with varying-width floats) stays
       outside — minor-word deltas must be byte-identical across runs. *)
    let g0 = Memgc.read () in
    let t0 = Clock.now_ns () in
    Metrics.time experiment_timer (fun () -> e.run ~quick);
    if alloc_handicap > 0 then burn_minor_words alloc_handicap;
    let g1 = Memgc.read () in
    if Memgc.is_enabled () then last_alloc := Some (Memgc.diff ~before:g0 ~after:g1);
    if handicap > 0.0 then Unix.sleepf handicap;
    let wall_s = Clock.ns_to_s (Clock.now_ns () - t0) in
    wall_rev := wall_s :: !wall_rev;
    if collect then last_work := Work.delta ~before:w0 ~after:(Work.totals ());
    (* Every repeat records the same checks; keep the latest drain. *)
    last_checks := take_recorded ();
    if repeats > 1 then Printf.printf "  [%s repeat %d/%d: %.1fs]\n" e.id rep repeats wall_s
    else Printf.printf "  [%s finished in %.1fs]\n" e.id wall_s
  done;
  let metrics = if collect then Metrics.snapshot () else Json.Null in
  let util = if collect then util_of_pool (Pool.util ()) else None in
  {
    exp = e;
    wall_s = List.rev !wall_rev;
    alloc = !last_alloc;
    work = !last_work;
    util;
    checks = !last_checks;
    metrics;
  }

let entry_of_outcome o : Report.entry
    =
  let holds = List.length (List.filter (fun (c : check_row) -> c.holds) o.checks) in
  {
    Report.id = o.exp.id;
    title = o.exp.title;
    claim = o.exp.claim;
    wall_s = o.wall_s;
    alloc = o.alloc;
    work = o.work;
    util = o.util;
    holds;
    total = List.length o.checks;
    checks = Json.List (List.map row_json o.checks);
    metrics = o.metrics;
  }

let report ~quick ~repeats outcomes =
  Report.make ~seed ~quick ~jobs:(Pool.default_jobs ()) ~repeats
    (List.map entry_of_outcome outcomes)

(* Run the whole zoo (or one experiment) and build the report in one step;
   [Error] names an unknown experiment id. *)
let run ?only ?(repeats = 1) ~quick ~collect () =
  match only with
  | Some id -> (
      match find id with
      | Some e -> Ok [ run_one ~repeats ~quick ~collect e ]
      | None -> Error (Printf.sprintf "unknown experiment %S; try --list" id))
  | None -> Ok (List.map (run_one ~repeats ~quick ~collect) experiments)
