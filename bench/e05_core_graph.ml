(* E5 — Lemma 4.4: every property of the core graph, exactly, across the
   size sweep. Properties (4) and (5) use the tree DPs, so they are exact
   even at s = 512 where subset enumeration is impossible. The last column
   shows the wireless/ordinary ratio approaching the paper's 2/log(2s). *)

open Bench_common
module Core_graph = Wx_constructions.Core_graph

let run ~quick =
  let sizes = if quick then [ 2; 8; 32 ] else Instances.core_sizes in
  let t =
    Table.create
      [ "s"; "|N|"; "degS"; "ΔN"; "δN"; "β (exact)"; "log 2s"; "maxΓ¹"; "cap 2s"; "βw/β"; "2/log2s" ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun s ->
      let cg = Core_graph.create s in
      let checks = Theorems.lemma_4_4 cg in
      total := !total + List.length checks;
      ok := !ok + count_holds checks;
      List.iter record_check checks;
      let inst = Core_graph.bip cg in
      let log2s = Floatx.log2 (2.0 *. float_of_int s) in
      let mins = Core_graph.dp_min_coverage cg in
      let beta_exact =
        let worst = ref infinity in
        for k = 1 to s do
          worst := Float.min !worst (float_of_int mins.(k) /. float_of_int k)
        done;
        !worst
      in
      let cap = Core_graph.dp_max_unique cg in
      let bw = float_of_int cap /. float_of_int s in
      Table.add_row t
        [
          Table.fi s;
          Table.fi (Bipartite.n_count inst);
          Table.fi (Bipartite.max_deg_s inst);
          Table.fi (Bipartite.max_deg_n inst);
          Table.ff ~dec:2 (Bipartite.delta_n inst);
          Table.ff ~dec:2 beta_exact;
          Table.ff ~dec:2 log2s;
          Table.fi cap;
          Table.fi (2 * s);
          Table.ff ~dec:3 (bw /. beta_exact);
          Table.ff ~dec:3 (2.0 /. log2s);
        ])
    sizes;
  Table.print t;
  print_endline
    "\n  reading: β grows like log 2s while max unique coverage is pinned at ≤ 2s,\n\
    \  so βw/β tracks 2/log 2s — the negative result's shape, exactly.";
  verdict !ok !total

let experiment =
  {
    id = "e5";
    title = "core graph properties (1)-(5), exact via tree DP";
    claim = "Lemma 4.4";
    run;
  }
