(* E11 — Section 5: the Ω(D·log(n/D)) broadcast lower bound, Monte-Carlo.

   Table 1: chained-core-graph sweep. For each (D/2, s) we run the
   distributed Decay protocol and the centralized spokesmen broadcast over
   many seeds; every sample must exceed the instance lower bound
   copies·log₂(2s)/4, and the mean should scale like D·log(n/D).

   Table 2: Corollary 5.1 head-on — on a rooted core graph, rounds to
   reach a 2i/log(2s) fraction of N are ≥ 1 + i for every protocol. *)

open Bench_common
module Broadcast_chain = Wx_constructions.Broadcast_chain
module Core_graph = Wx_constructions.Core_graph

let th_add th i arr hop_lb =
  Table.add_row th
    [
      Table.fi (i + 1);
      Table.ff ~dec:1 (Stats.mean arr);
      Table.ff ~dec:0 (Stats.min arr);
      Table.ff ~dec:0 (Stats.max arr);
      Table.ff ~dec:2 hop_lb;
    ]

let run ~quick =
  print_endline "-- broadcast time on chained core graphs (to the last relay) --";
  let grid =
    if quick then [ (2, 8) ] else [ (2, 8); (2, 16); (4, 8); (4, 16); (4, 32); (8, 16); (8, 32) ]
  in
  let seeds = List.init (if quick then 5 else 15) (fun i -> 1000 + i) in
  let t =
    Table.create
      [ "D/2"; "s"; "n"; "diam"; "paper lb"; "decay mean"; "decay min"; "spokesmen mean"; "all>lb" ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (copies, s) ->
      let ch = Broadcast_chain.create (rng (1100 + copies + s)) ~copies ~s in
      let g = ch.Broadcast_chain.graph in
      let target = ch.Broadcast_chain.relays.(copies - 1) in
      let lb = Broadcast_chain.paper_round_lb ch in
      let times protocol =
        List.filter_map
          (fun seed ->
            Wx_radio.Sim.rounds_to_inform ~max_rounds:100_000 g ~source:0 ~target protocol
              (Rng.create seed))
          seeds
      in
      let decay = times Wx_radio.Decay_protocol.protocol in
      let spokes =
        times Wx_radio.Spokesmen_cast.protocol
      in
      let arr l = Stats.of_ints (Array.of_list l) in
      let holds =
        List.for_all (fun r -> float_of_int r >= lb) decay
        && List.for_all (fun r -> float_of_int r >= lb) spokes
      in
      incr total;
      if holds then incr ok;
      record ~claim:"§5: rounds ≥ D/2·log(2s)/4"
        ~instance:(Printf.sprintf "chain(D/2=%d,s=%d)" copies s)
        ~predicted:lb
        ~measured:(Stats.min (arr decay))
        holds;
      Table.add_row t
        [
          Table.fi copies;
          Table.fi s;
          Table.fi (Graph.n g);
          Table.fi (Broadcast_chain.diameter_estimate ch);
          Table.ff ~dec:1 lb;
          Table.ff ~dec:1 (Stats.mean (arr decay));
          Table.ff ~dec:0 (Stats.min (arr decay));
          Table.ff ~dec:1 (Stats.mean (arr spokes));
          Table.fb holds;
        ])
    grid;
  Table.print t;

  (* Per-hop relay times: the Kushilevitz–Mansour argument sums D/2 i.i.d.
     per-hop times R_i, each Ω(log(n/D)); measure their distribution. *)
  if not quick then begin
    print_endline "\n-- per-hop relay times R_i on a (D/2 = 6, s = 16) chain (decay, 12 seeds) --";
    let ch = Broadcast_chain.create (rng 1150) ~copies:6 ~s:16 in
    let g = ch.Broadcast_chain.graph in
    let per_hop = Array.make 6 [] in
    List.iter
      (fun seed ->
        let r = Rng.create seed in
        (* One run; record the first round at which each relay is informed. *)
        let net = Wx_radio.Network.create g 0 in
        let informed_at = Array.make 6 (-1) in
        let round = ref 0 in
        while Array.exists (fun x -> x < 0) informed_at && !round < 100_000 do
          let tx = Wx_radio.Decay_protocol.protocol.Wx_radio.Protocol.choose net r in
          ignore (Wx_radio.Network.step net tx);
          incr round;
          Array.iteri
            (fun i rt ->
              if informed_at.(i) < 0 && Wx_radio.Network.is_informed net rt then
                informed_at.(i) <- !round)
            ch.Broadcast_chain.relays
        done;
        Array.iteri
          (fun i at ->
            let prev = if i = 0 then 0 else informed_at.(i - 1) in
            if at > 0 then per_hop.(i) <- (at - prev) :: per_hop.(i))
          informed_at)
      (List.init 12 (fun i -> 5000 + i));
    let th = Table.create [ "hop i"; "mean R_i"; "min"; "max"; "Cor 5.1 per-hop lb" ] in
    let hop_lb = Floatx.log2 (2.0 *. 16.0) /. 4.0 in
    Array.iteri
      (fun i times ->
        if times <> [] then begin
          let arr = Stats.of_ints (Array.of_list times) in
          th_add th i arr hop_lb
        end)
      per_hop;
    Table.print th;
    print_endline "  (hops are i.i.d.-ish and each exceeds the per-hop bound — the Chernoff\n\
                  \   concentration behind the w.h.p. version of the Section 5 bound)"
  end;

  (* Offline schedules are protocols too: the lower bound must hold for the
     synthesizer's output as well. *)
  if not quick then begin
    print_endline "\n-- offline synthesized schedules vs the same lower bound --";
    let ts = Table.create [ "D/2"; "s"; "schedule rounds"; "paper lb"; "BFS lb"; "holds" ] in
    List.iter
      (fun (copies, s) ->
        let ch = Broadcast_chain.create (rng (1160 + copies + s)) ~copies ~s in
        let g = ch.Broadcast_chain.graph in
        let sch = Wx_radio.Schedule.synthesize (rng 1161) g ~source:0 in
        let complete, _ = Wx_radio.Schedule.replay g sch in
        let lb = Broadcast_chain.paper_round_lb ch in
        let bfs_lb = Wx_radio.Schedule.lower_bound_rounds g ~source:0 in
        let len = Wx_radio.Schedule.length sch in
        let holds = complete && float_of_int len >= lb && len >= bfs_lb in
        incr total;
        if holds then incr ok;
        record ~claim:"§5: offline schedule ≥ lb"
          ~instance:(Printf.sprintf "chain(D/2=%d,s=%d)" copies s)
          ~predicted:lb ~measured:(float_of_int len) holds;
        Table.add_row ts
          [
            Table.fi copies; Table.fi s; Table.fi len; Table.ff ~dec:1 lb; Table.fi bfs_lb;
            Table.fb holds;
          ])
      [ (2, 8); (4, 8); (4, 16) ];
    Table.print ts
  end;

  print_endline "\n-- Corollary 5.1: rounds to inform a 2i/log(2s) fraction of N --";
  let s = if quick then 16 else 64 in
  let cg = Core_graph.create s in
  let inst = Core_graph.bip cg in
  (* Attach a root rt adjacent to all of S; N occupies [s ..]. *)
  let es = ref [] in
  Bipartite.iter_edges inst (fun u w -> es := (1 + u, 1 + s + w) :: !es);
  for u = 0 to s - 1 do
    es := (0, 1 + u) :: !es
  done;
  let g = Graph.of_edges (1 + s + Bipartite.n_count inst) !es in
  let n_side =
    Bitset.of_array (Graph.n g) (Array.init (Bipartite.n_count inst) (fun w -> 1 + s + w))
  in
  let log2s = Floatx.log2 (2.0 *. float_of_int s) in
  let t2 =
    Table.create [ "i"; "fraction"; "min rounds (Cor 5.1)"; "decay"; "spokesmen"; "holds" ]
  in
  let imax = int_of_float (log2s /. 2.0) in
  for i = 1 to imax do
    let fraction = Float.min 1.0 (2.0 *. float_of_int i /. log2s) in
    let measure protocol seed =
      match
        Wx_radio.Sim.rounds_to_fraction ~max_rounds:50_000 g ~source:0 ~subset:n_side ~fraction
          protocol (Rng.create seed)
      with
      | Some r -> r
      | None -> max_int
    in
    let d = measure Wx_radio.Decay_protocol.protocol 7 in
    let sp = measure Wx_radio.Spokesmen_cast.protocol 7 in
    let bound = Bounds.corollary_5_1_min_rounds ~s ~i in
    let holds = d >= bound && sp >= bound in
    incr total;
    if holds then incr ok;
    record ~claim:"Cor 5.1: rounds to 2i/log(2s) fraction"
      ~instance:(Printf.sprintf "core(s=%d) i=%d" s i)
      ~predicted:(float_of_int bound)
      ~measured:(float_of_int (min d sp))
      holds;
    Table.add_row t2
      [
        Table.fi i;
        Table.ff ~dec:3 fraction;
        Table.fi bound;
        Table.fi d;
        Table.fi sp;
        Table.fb holds;
      ]
  done;
  Table.print t2;
  verdict !ok !total

let experiment =
  {
    id = "e11";
    title = "Ω(D·log(n/D)) radio broadcast lower bound, Monte-Carlo";
    claim = "Section 5, Corollary 5.1";
    run;
  }
