(* E1 — Observation 2.1: β ≥ βw ≥ βu, exactly, on the small-graph zoo. *)

open Bench_common

let run ~quick =
  let zoo =
    List.filter
      (fun (_, g) -> Traversal.is_connected g)
      (Instances.small_graphs ())
  in
  let zoo = if quick then List.filteri (fun i _ -> i < 4) zoo else zoo in
  let t = Table.create [ "graph"; "n"; "Δ"; "β"; "βw"; "βu"; "β≥βw≥βu" ] in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (name, g) ->
      let b = (Measure.beta_exact g).Measure.value in
      let bw = (Measure.beta_w_exact g).Measure.value in
      let bu = (Measure.beta_u_exact g).Measure.value in
      let holds = b >= bw -. 1e-9 && bw >= bu -. 1e-9 in
      incr total;
      if holds then incr ok;
      record ~claim:"Obs 2.1 (β≥βw≥βu)" ~instance:name ~predicted:bw ~measured:b holds;
      Table.add_row t
        [
          name;
          Table.fi (Graph.n g);
          Table.fi (Graph.max_degree g);
          Table.ff b;
          Table.ff bw;
          Table.ff bu;
          Table.fb holds;
        ])
    zoo;
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "e1";
    title = "ordering of the three expansion notions (exact)";
    claim = "Observation 2.1";
    run;
  }
