(* Ablations for the design decisions called out in DESIGN.md §3:
   A1 bitset vs naive list-set representation (wall clock);
   A2 decay sampler repetition count vs solution quality;
   A3 exact wireless enumeration cost vs |S| (the 2^|S| wall);
   A4 radio decay phase length vs broadcast time;
   A5 spokesmen-cast solver choice (decay-only vs portfolio). *)

open Bench_common

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let a1_bitset_vs_slow () =
  print_endline "-- A1: bitset vs sorted-list set representation --";
  let t = Table.create [ "universe"; "ops"; "bitset (s)"; "list (s)"; "speedup" ] in
  List.iter
    (fun n ->
      let r = rng 1301 in
      let ops = 2000 in
      let idx = Array.init ops (fun _ -> Rng.int r n) in
      let _, fast =
        time (fun () ->
            let a = ref (Bitset.create n) and b = ref (Bitset.create n) in
            Array.iteri
              (fun i v ->
                if i mod 2 = 0 then a := Bitset.add !a v else b := Bitset.add !b v;
                if i mod 64 = 0 then ignore (Bitset.cardinal (Bitset.inter !a !b)))
              idx)
      in
      let _, slow =
        time (fun () ->
            let a = ref (Bitset.Slow.create n) and b = ref (Bitset.Slow.create n) in
            Array.iteri
              (fun i v ->
                if i mod 2 = 0 then a := Bitset.Slow.add !a v else b := Bitset.Slow.add !b v;
                if i mod 64 = 0 then ignore (Bitset.Slow.cardinal (Bitset.Slow.inter !a !b)))
              idx)
      in
      record ~claim:"A1: bitset ≤ list-set wall clock"
        ~instance:(Printf.sprintf "universe=%d" n)
        ~predicted:slow ~measured:fast (fast <= slow);
      Table.add_row t
        [
          Table.fi n;
          Table.fi ops;
          Table.ff ~dec:4 fast;
          Table.ff ~dec:4 slow;
          Table.fr slow fast;
        ])
    [ 256; 1024; 4096 ];
  Table.print t

let a2_decay_reps () =
  print_endline "\n-- A2: decay sampler repetitions vs coverage --";
  let inst = Wx_constructions.Core_graph.bip (Wx_constructions.Core_graph.create 64) in
  let gamma = Bipartite.n_count inst in
  let t = Table.create [ "reps"; "covered"; "of |N|"; "seconds" ] in
  List.iter
    (fun reps ->
      let r, secs = time (fun () -> Wx_spokesmen.Decay.solve ~reps (rng 1302) inst) in
      Table.add_row t
        [
          Table.fi reps;
          Table.fi r.Solver.covered;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int r.Solver.covered /. float_of_int gamma);
          Table.ff ~dec:4 secs;
        ])
    [ 1; 4; 16; 64; 256 ];
  Table.print t

let a3_exact_wall () =
  print_endline "\n-- A3: exact wireless enumeration cost (the 2^|S| wall) --";
  let t = Table.create [ "|S|"; "subsets"; "seconds" ] in
  List.iter
    (fun k ->
      let inst = Gen.random_bipartite_sdeg (rng 1303) ~s:k ~n:(2 * k) ~d:3 in
      let _, secs = time (fun () -> Bip_measure.exact_max_unique inst) in
      Table.add_row t [ Table.fi k; Table.fi (1 lsl k); Table.ff ~dec:4 secs ])
    [ 10; 14; 18; 20; 22 ];
  Table.print t;
  print_endline "  (this wall is why the core-graph properties are verified by tree DP instead)"

let a4_decay_phase_length () =
  print_endline "\n-- A4: radio decay phase length vs broadcast time (mean of 10 seeds) --";
  let g = Gen.random_regular (rng 1304) 64 4 in
  let t = Table.create [ "phase k"; "mean rounds"; "completion" ] in
  let seeds = List.init 10 (fun i -> 2000 + i) in
  List.iter
    (fun k ->
      let outs =
        List.map
          (fun seed ->
            Wx_radio.Sim.run ~max_rounds:20_000 g ~source:0
              (Wx_radio.Decay_protocol.with_phase_length k)
              (Rng.create seed))
          seeds
      in
      let times = Stats.of_ints (Array.of_list (List.map (fun o -> o.Wx_radio.Sim.rounds) outs)) in
      let completed = List.length (List.filter (fun o -> o.Wx_radio.Sim.completed) outs) in
      Table.add_row t
        [
          Table.fi k;
          Table.ff ~dec:1 (Stats.mean times);
          Printf.sprintf "%d/%d" completed (List.length seeds);
        ])
    [ 2; 4; 7; 10; 14 ];
  Table.print t;
  Printf.printf "  (the theory's choice: k = ⌈log₂ n⌉ + 1 = %d)\n"
    (Wx_radio.Decay_protocol.phase_length 64)

let a5_cast_solver () =
  print_endline "\n-- A5: spokesmen-cast round counts by solver --";
  let ch = Wx_constructions.Broadcast_chain.create (rng 1305) ~copies:3 ~s:16 in
  let g = ch.Wx_constructions.Broadcast_chain.graph in
  let t = Table.create [ "per-round solver"; "rounds"; "collisions" ] in
  List.iter
    (fun (name, proto) ->
      let o = Wx_radio.Sim.run ~max_rounds:50_000 g ~source:0 proto (Rng.create 3001) in
      Table.add_row t
        [ name; Table.fi o.Wx_radio.Sim.rounds; Table.fi o.Wx_radio.Sim.collisions ])
    [
      ( "decay-sampler only",
        Wx_radio.Spokesmen_cast.with_solver "cast-decay" (fun r i ->
            Wx_spokesmen.Decay.solve ~reps:16 r i) );
      ( "partition-recursive only",
        Wx_radio.Spokesmen_cast.with_solver "cast-partition" (fun _ i ->
            Wx_spokesmen.Partition.solve_recursive i) );
      ("full portfolio", Wx_radio.Spokesmen_cast.protocol);
      ("distributed decay (control)", Wx_radio.Decay_protocol.protocol);
    ];
  Table.print t

let a6_bb_vs_enumeration () =
  print_endline "\n-- A6: branch-and-bound vs Gray-code enumeration (exact optimum) --";
  let t = Table.create [ "|S|"; "enumeration (s)"; "bb (s)"; "agree" ] in
  List.iter
    (fun k ->
      let inst = Gen.random_bipartite_sdeg (rng 1306) ~s:k ~n:(2 * k) ~d:3 in
      let (en, ten) = time (fun () -> fst (Bip_measure.exact_max_unique inst)) in
      let (bb, tbb) =
        time (fun () ->
            match Wx_spokesmen.Bb.solve inst with
            | r, Wx_spokesmen.Bb.Proved_optimal -> r.Solver.covered
            | _ -> -1)
      in
      record ~claim:"A6: bb optimum = enumeration optimum"
        ~instance:(Printf.sprintf "|S|=%d" k)
        ~predicted:(float_of_int en) ~measured:(float_of_int bb) (en = bb);
      Table.add_row t
        [ Table.fi k; Table.ff ~dec:4 ten; Table.ff ~dec:4 tbb; Table.fb (en = bb) ])
    [ 12; 16; 20; 22 ];
  Table.print t;
  print_endline "  (bb also proves optima at |S| = 30-40 on sparse instances, where 2^|S| is hopeless)"

let a7_uniform_p_sweep () =
  print_endline "\n-- A7: fixed transmission probability vs decay (random 4-regular, n=64) --";
  let g = Gen.random_regular (rng 1307) 64 4 in
  let seeds = List.init 10 (fun i -> 4000 + i) in
  let t = Table.create [ "protocol"; "mean rounds"; "completion" ] in
  let try_protocol p =
    let outs =
      List.map
        (fun seed -> Wx_radio.Sim.run ~max_rounds:5000 g ~source:0 p (Rng.create seed))
        seeds
    in
    let times = Stats.of_ints (Array.of_list (List.map (fun o -> o.Wx_radio.Sim.rounds) outs)) in
    let completed = List.length (List.filter (fun o -> o.Wx_radio.Sim.completed) outs) in
    Table.add_row t
      [
        p.Wx_radio.Protocol.name;
        Table.ff ~dec:1 (Stats.mean times);
        Printf.sprintf "%d/%d" completed (List.length seeds);
      ]
  in
  List.iter (fun p -> try_protocol (Wx_radio.Uniform.protocol p)) [ 0.05; 0.2; 0.5; 0.9 ];
  try_protocol Wx_radio.Decay_protocol.protocol;
  Table.print t;
  print_endline
    "  (no fixed p adapts to both sparse and dense frontiers — the decay schedule's point)"

let a8_explicit_vs_random_chain () =
  print_endline
    "\n-- A8: explicit core chain vs random-layer chain (decay, mean of 10 seeds) --";
  let t = Table.create [ "construction"; "per-round cap (exact/max-seen)"; "mean rounds"; "min" ] in
  let seeds = List.init 10 (fun i -> 6000 + i) in
  let run_chain name ch =
    let g = ch.Wx_constructions.Broadcast_chain.graph in
    let target =
      ch.Wx_constructions.Broadcast_chain.relays.(ch.Wx_constructions.Broadcast_chain.copies - 1)
    in
    let times =
      List.filter_map
        (fun seed ->
          Wx_radio.Sim.rounds_to_inform ~max_rounds:100_000 g ~source:0 ~target
            Wx_radio.Decay_protocol.protocol (Rng.create seed))
        seeds
    in
    let arr = Stats.of_ints (Array.of_list times) in
    (name, arr)
  in
  let s = 16 and copies = 4 in
  let explicit = Wx_constructions.Broadcast_chain.create (rng 1308) ~copies ~s in
  let random = Wx_constructions.Broadcast_chain.create_random (rng 1309) ~copies ~s in
  let cap_explicit =
    Wx_constructions.Core_graph.dp_max_unique (Wx_constructions.Core_graph.create s)
  in
  (* For the random layer the cap is not DP-computable; report the exact
     enumeration on the first layer's bipartite instance if feasible. *)
  let cap_random =
    let n_cnt = (Wx_constructions.Core_graph.n_size (Wx_constructions.Core_graph.create s)) in
    ignore n_cnt;
    "-"
  in
  let name1, arr1 = run_chain "explicit core (Lemma 4.4)" explicit in
  let name2, arr2 = run_chain "random layers (Alon et al. style)" random in
  Table.add_row t
    [ name1; string_of_int cap_explicit; Table.ff ~dec:1 (Stats.mean arr1); Table.ff ~dec:0 (Stats.min arr1) ];
  Table.add_row t
    [ name2; cap_random; Table.ff ~dec:1 (Stats.mean arr2); Table.ff ~dec:0 (Stats.min arr2) ];
  Table.print t;
  print_endline
    "  (the explicit construction is comparably broadcast-hard to the random one —\n\
    \   the paper's point that it deterministically matches the implicit [3]-style\n\
    \   constructions, with an exactly computable per-round cap)"

let a9_decay_phase_alignment () =
  print_endline "\n-- A9: per-node vs globally aligned decay phases (10 seeds each) --";
  let t = Table.create [ "graph"; "per-node mean"; "global mean" ] in
  let seeds = List.init 10 (fun i -> 7000 + i) in
  List.iter
    (fun (name, g) ->
      let mean p =
        let outs =
          List.map
            (fun seed -> Wx_radio.Sim.run ~max_rounds:50_000 g ~source:0 p (Rng.create seed))
            seeds
        in
        Stats.mean (Stats.of_ints (Array.of_list (List.map (fun o -> o.Wx_radio.Sim.rounds) outs)))
      in
      Table.add_row t
        [
          name;
          Table.ff ~dec:1 (mean Wx_radio.Decay_protocol.protocol);
          Table.ff ~dec:1 (mean Wx_radio.Decay_protocol.globally_phased);
        ])
    [
      ("random-4-regular-64", Gen.random_regular (rng 1310) 64 4);
      ("cplus-16", Wx_constructions.Cplus.create 16);
      ( "chain(2,8)",
        (Wx_constructions.Broadcast_chain.create (rng 1311) ~copies:2 ~s:8)
          .Wx_constructions.Broadcast_chain.graph );
    ];
  Table.print t

let run ~quick =
  a1_bitset_vs_slow ();
  a2_decay_reps ();
  if not quick then begin
    a3_exact_wall ();
    a4_decay_phase_length ();
    a5_cast_solver ();
    a6_bb_vs_enumeration ();
    a7_uniform_p_sweep ();
    a8_explicit_vs_random_chain ();
    a9_decay_phase_alignment ()
  end

let experiment =
  {
    id = "ablation";
    title = "design-decision ablations (DESIGN.md §3)";
    claim = "implementation choices, not paper claims";
    run;
  }
