(* E10 — Appendix A's ladder of deterministic guarantees, each procedure
   against its own bound:

     naive        ≥ γ/∆S            (Lemma A.1)
     capped       ≥ γ/(8δ)          (Lemma A.3)
     buckets      ≥ γ/(2(1+c)·⌈log_c ∆⌉)   (Corollaries A.6/A.7)
     recursive    ≥ γ/(9·log 2δ)    (Lemma A.13)
     best-of-all  ≥ γ·MG(δ)         (Corollary A.16)
*)

open Bench_common

let run ~quick =
  let insts = Instances.bipartite_instances () @ Instances.bipartite_small () in
  let insts = if quick then List.filteri (fun i _ -> i < 5) insts else insts in
  let t =
    Table.create
      [
        "instance"; "δN"; "naive"; "≥γ/ΔS"; "capped"; "≥γ/8δ"; "bucket"; "≥A.6"; "recur";
        "≥γ/9log2δ"; "MG·γ"; "all hold";
      ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (name, inst) ->
      if not (Bipartite.has_isolated inst) then begin
        let gamma = float_of_int (Bipartite.n_count inst) in
        let delta_n = Bipartite.delta_n inst in
        let naive = Wx_spokesmen.Naive.solve inst in
        let capped = Wx_spokesmen.Partition.solve_degree_capped inst in
        let buckets = Wx_spokesmen.Buckets.solve_all_classes inst in
        let recur = Wx_spokesmen.Partition.solve_recursive inst in
        let b_naive = gamma /. float_of_int (max 1 (Bipartite.max_deg_s inst)) in
        let b_capped = gamma *. Bounds.partition_fraction ~delta_n in
        let b_bucket =
          let c = Bounds.c_star in
          let classes =
            Float.ceil (log (float_of_int (max 2 (Bipartite.max_deg_n inst))) /. log c)
          in
          gamma /. (2.0 *. (1.0 +. c) *. Float.max 1.0 classes)
        in
        let b_recur = gamma *. Bounds.near_optimal_fraction ~delta_n in
        let b_mg = gamma *. Bounds.mg delta_n in
        let f r = float_of_int r.Solver.covered in
        let best = List.fold_left Float.max 0.0 [ f naive; f capped; f buckets; f recur ] in
        let holds =
          f naive >= b_naive -. 1e-9
          && f capped >= b_capped -. 1e-9
          && f buckets >= b_bucket -. 1e-9
          && f recur >= b_recur -. 1e-9
          && best >= b_mg -. 1e-9
        in
        incr total;
        if holds then incr ok;
        record ~claim:"App A ladder (A.1/A.3/A.6/A.13/A.16)" ~instance:name ~predicted:b_mg
          ~measured:best holds;
        Table.add_row t
          [
            name;
            Table.ff ~dec:1 delta_n;
            Table.fi naive.Solver.covered;
            Table.ff ~dec:1 b_naive;
            Table.fi capped.Solver.covered;
            Table.ff ~dec:1 b_capped;
            Table.fi buckets.Solver.covered;
            Table.ff ~dec:1 b_bucket;
            Table.fi recur.Solver.covered;
            Table.ff ~dec:1 b_recur;
            Table.ff ~dec:1 b_mg;
            Table.fb holds;
          ]
      end)
    insts;
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "e10";
    title = "Appendix A: the deterministic guarantee ladder";
    claim = "Lemmas A.1, A.3, A.13; Corollaries A.6-A.7, A.16";
    run;
  }
