(* E8 — Theorem 1.2 / Corollary 4.11: plugging a generalized core graph on
   a host expander preserves ordinary expansion (β̃ = (1−ε)β — checked
   against sampled witnesses, which can only refute) while the wireless
   expansion witnessed at S* collapses to O(β̃/(ε³·log min{∆̃/β̃, ∆̃β̃}))
   (exact, via the tree DP). *)

open Bench_common
module Worst_case = Wx_constructions.Worst_case

let hosts ~quick =
  let r = rng 801 in
  let base =
    [
      ("rand-20-reg-64", Gen.random_regular r 64 20, 0.5);
      ("rand-24-reg-96", Gen.random_regular r 96 24, 0.5);
      ("rand-32-reg-128", Gen.random_regular r 128 32, 0.6);
    ]
  in
  if quick then [ List.hd base ] else base

let certify_host name host =
  (* The substitution note in DESIGN.md: we measure, rather than assume,
     that the random hosts are expanders. *)
  match Wx_graph.Graph.is_regular host with
  | Some d ->
      let lambda2 = Wx_spectral.Spectral_gap.lambda2_regular host (rng 804) in
      let h, _ = Wx_spectral.Cheeger.h_sampled (rng 805) ~samples:400 host in
      let lo, _ = Wx_spectral.Cheeger.cheeger_bounds ~d ~lambda2 in
      Printf.printf
        "  host %s: d = %d, λ₂ = %.3f, spectral gap %.3f ⇒ h ≥ %.3f (Cheeger); witnessed h ≤ %.3f\n"
        name d lambda2 (float_of_int d -. lambda2) lo h
  | None -> ()

let run ~quick =
  List.iter (fun (n, h, _) -> certify_host n h) (hosts ~quick);
  let t =
    Table.create
      [ "host"; "ε"; "ñ"; "Δ̃"; "β̃ pred"; "witness β"; "βw(S*) exact"; "claim cap"; "holds" ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (hname, host, host_beta) ->
      List.iter
        (fun eps ->
          match Worst_case.create (rng 802) ~eps ~host ~host_beta with
          | wc ->
              let g = wc.Worst_case.graph in
              let beta_tilde = Worst_case.predicted_beta_tilde wc in
              let witness =
                (Measure.beta_sampled ~alpha:((1.0 -. eps) *. 0.5) (rng 803) ~samples:400 g)
                  .Measure.value
              in
              let bw_star = Worst_case.s_star_wireless_exact wc in
              let cap = Worst_case.predicted_wireless_cap wc in
              let c1 = witness >= beta_tilde -. 1e-9 in
              let c2 = bw_star <= cap +. 1e-9 in
              total := !total + 2;
              if c1 then incr ok;
              if c2 then incr ok;
              let inst_name = Printf.sprintf "%s ε=%.2f" hname eps in
              record ~claim:"Thm 1.2: β̃ = (1−ε)β preserved" ~instance:inst_name
                ~predicted:beta_tilde ~measured:witness c1;
              record ~claim:"Cor 4.11: βw(S*) ≤ cap" ~instance:inst_name ~predicted:cap
                ~measured:bw_star c2;
              Table.add_row t
                [
                  hname;
                  Table.ff ~dec:2 eps;
                  Table.fi (Graph.n g);
                  Table.fi (Graph.max_degree g);
                  Table.ff ~dec:3 beta_tilde;
                  Table.ff ~dec:3 witness;
                  Table.ff ~dec:3 bw_star;
                  Table.ff ~dec:3 cap;
                  Table.fb (c1 && c2);
                ]
          | exception Invalid_argument msg ->
              Printf.printf "  skipping %s ε=%.2f: %s\n" hname eps msg)
        (if quick then [ 0.4 ] else [ 0.3; 0.4; 0.45 ]))
    (hosts ~quick);
  Table.print t;
  print_endline
    "\n  reading: witness β (an upper-bound certificate on β̃) never dips below the\n\
    \  predicted (1−ε)β, while the exact wireless expansion at S* sits far below β̃ —\n\
    \  the wireless collapse the negative result asserts.";
  verdict !ok !total

let experiment =
  {
    id = "e8";
    title = "worst-case expanders: good β̃, collapsed βw";
    claim = "Theorem 1.2 / Claims 4.9-4.10 / Corollary 4.11";
    run;
  }
