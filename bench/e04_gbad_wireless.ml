(* E4 — the remark after Lemma 3.3: Gbad's wireless expansion is at least
   max{2β − ∆, ∆/2} even where its unique expansion collapses, via the
   every-second-vertex schedule; the f(l)/g(l) trade-off is tabulated. *)

open Bench_common
module Gbad = Wx_constructions.Gbad

let run ~quick =
  let t =
    Table.create [ "s"; "Δ"; "β"; "βu=2β−Δ"; "lb max{2β−Δ,Δ/2}"; "measured βw"; "method"; "holds" ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun gb ->
      let inst = Gbad.bip gb in
      let s = Gbad.s gb in
      let predicted = Gbad.predicted_wireless_lb gb in
      let measured, how =
        if s <= 16 then begin
          let m, _ = Bip_measure.exact_max_unique inst in
          (float_of_int m /. float_of_int s, "exact")
        end
        else begin
          let w1 = Nbhd.Bip.unique_count inst (Gbad.every_second gb) in
          let w2 = Nbhd.Bip.unique_count inst (Bitset.full s) in
          (float_of_int (max w1 w2) /. float_of_int s, "witness")
        end
      in
      let slack =
        if s mod 2 = 0 then 1e-9 else float_of_int (Gbad.delta gb) /. float_of_int s
      in
      let holds = measured >= predicted -. slack in
      incr total;
      if holds then incr ok;
      record ~claim:"Remark 3.3 (βw≥max{2β−Δ,Δ/2})"
        ~instance:(Printf.sprintf "Gbad(s=%d,Δ=%d)" s (Gbad.delta gb))
        ~predicted ~measured holds;
      Table.add_row t
        [
          Table.fi s;
          Table.fi (Gbad.delta gb);
          Table.fi (Gbad.beta gb);
          Table.fi (Gbad.predicted_beta_u gb);
          Table.ff predicted;
          Table.ff measured;
          how;
          Table.fb holds;
        ])
    (Instances.gbad_grid ());
  Table.print t;

  if not quick then begin
    print_endline "\n-- the remark's f(l) (all transmit) vs g(l) (every second) trade-off --";
    let gb = Gbad.create ~s:40 ~delta:10 ~beta:7 in
    let t2 = Table.create [ "run length l"; "f(l)"; "g(l)"; "max" ] in
    List.iter
      (fun l ->
        let f = Gbad.remark_f gb l and g = Gbad.remark_g gb l in
        Table.add_row t2 [ Table.fi l; Table.ff f; Table.ff g; Table.ff (Float.max f g) ])
      [ 1; 2; 3; 4; 6; 10; 20; 40 ];
    Table.print t2;
    Printf.printf "  limits: f(∞) = 2β−Δ = %d, g(∞) = Δ/2 = %.1f → βw ≥ max of the two.\n"
      (Gbad.predicted_beta_u gb)
      (float_of_int (Gbad.delta gb) /. 2.0)
  end;
  verdict !ok !total

let experiment =
  {
    id = "e4";
    title = "wireless expansion of Gbad stays ≥ max{2β−Δ, Δ/2}";
    claim = "Remark after Lemma 3.3";
    run;
  }
