(* E2 — Lemma 3.1: a d-regular (αu, βu)-unique expander is an ordinary
   expander with β ≥ (1 − 1/d)·βu + (d − λ₂)(1 − αu)/d. Exact βu and β,
   power-iteration λ₂ (cross-validated against the dense Jacobi solver in
   the test suite). *)

open Bench_common

let run ~quick =
  let zoo = Instances.regular_graphs () in
  let zoo = if quick then List.filteri (fun i _ -> i < 3) zoo else zoo in
  let t = Table.create [ "graph"; "n"; "d"; "λ₂"; "βu"; "predicted β≥"; "measured β"; "holds" ] in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (name, g) ->
      if Traversal.is_connected g then begin
        let d = match Graph.is_regular g with Some d -> d | None -> assert false in
        let lambda2 = Wx_spectral.Spectral_gap.lambda2_regular g (rng 201) in
        let bu = (Measure.beta_u_exact g).Measure.value in
        let beta = (Measure.beta_exact g).Measure.value in
        let predicted = Bounds.lemma_3_1 ~d ~lambda2 ~alpha_u:0.5 ~beta_u:bu in
        let holds = beta >= predicted -. 1e-9 in
        incr total;
        if holds then incr ok;
        record ~claim:"Lemma 3.1" ~instance:name ~predicted ~measured:beta holds;
        Table.add_row t
          [
            name;
            Table.fi (Graph.n g);
            Table.fi d;
            Table.ff lambda2;
            Table.ff bu;
            Table.ff predicted;
            Table.ff beta;
            Table.fb holds;
          ]
      end)
    zoo;
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "e2";
    title = "spectral bound relating unique and ordinary expansion";
    claim = "Lemma 3.1";
    run;
  }
