(* KERN — the enumeration kernel itself, tracked as a first-class
   experiment so `wx bench record/diff` (and the CI alloc gate) watch the
   delta-scoring engine directly rather than only end-to-end experiments.

   Per measure it drives the same subset space several times: once with
   the from-scratch reference scorer (adjacency bitset rows combined with
   the fused union/diff count kernels — the strongest naive baseline, so
   the comparison isolates enumeration strategy rather than allocator
   traffic), once through the incremental path with pruning disabled (the
   bit-identical reference enumeration), once with branch-and-bound
   pruning on (sequential — the kernel under test is the pruned scorer),
   and once through the pool at the default job count, where the shared
   incumbent lets one work unit's find prune the others and oversized
   shards are split for stealing. The parallel pass is what populates the
   KERN entry's utilization block.

   Throughput lands in the report, not just the local table: the
   incremental/pruned/parallel passes credit Work.sets_scored /
   Work.gray_steps from inside Measure, and the naive passes credit the
   same step counts to the "naive_steps" kind here — so wx-bench/4
   carries units/sec for every engine and `wx bench diff` gates on them.
   Pruning wins are recorded (steps/sec rows plus an informational
   pruning-ratio claim), not asserted: the gate stays on values and on
   the alloc counters. *)

open Bench_common
module Combi = Wx_util.Combi
module Clock = Wx_obs.Clock
module Work = Wx_obs.Work
module Pool = Wx_par.Pool

(* Steps done by the from-scratch reference scorers, credited as their own
   work kind: the naive engines do the same enumeration but bypass the
   instrumented incremental path. *)
let naive_steps_kind = Work.kind "naive_steps"

(* ---- from-scratch reference scorers ----

   Adjacency as precomputed bitset rows; neighborhood sizes via the fused
   word-parallel count kernels, so the per-set cost is O(k · n/word) with
   no per-set allocation. *)

let adjacency_rows g =
  let n = Graph.n g in
  Array.init n (fun v ->
      let row = Bitset.create n in
      Graph.iter_neighbors g v (Bitset.add_inplace row);
      row)

let naive_min_value g kmax score =
  let n = Graph.n g in
  let buf = Bitset.create n in
  let best = ref infinity in
  Combi.iter_subsets_le n kmax (fun idxs ->
      Bitset.clear_inplace buf;
      Array.iter (Bitset.add_inplace buf) idxs;
      let v = score buf (Array.length idxs) in
      if v < !best then best := v);
  !best

let naive_beta g kmax =
  let adj = adjacency_rows g in
  let acc = Bitset.create (Graph.n g) in
  naive_min_value g kmax (fun s k ->
      (* Γ(S) by row unions, then |Γ(S) \ S| in one fused pass. *)
      Bitset.clear_inplace acc;
      Bitset.iter (fun v -> Bitset.union_inplace acc adj.(v)) s;
      float_of_int (Bitset.diff_cardinal acc s) /. float_of_int k)

let naive_beta_u g kmax =
  let n = Graph.n g in
  let adj = adjacency_rows g in
  let seen = Bitset.create n in
  let twice = Bitset.create n in
  let tmp = Bitset.create n in
  naive_min_value g kmax (fun s k ->
      (* Covered-once = seen \ twice, maintained by row: anything already
         seen that a new row hits again is covered at least twice. *)
      Bitset.clear_inplace seen;
      Bitset.clear_inplace twice;
      Bitset.iter
        (fun v ->
          let row = adj.(v) in
          Bitset.clear_inplace tmp;
          Bitset.union_inplace tmp seen;
          Bitset.inter_inplace tmp row;
          Bitset.union_inplace twice tmp;
          Bitset.union_inplace seen row)
        s;
      Bitset.diff_inplace seen twice;
      float_of_int (Bitset.diff_cardinal seen s) /. float_of_int k)

(* Old inner wireless maximisation: per outer set, a fresh n-int counter
   array and tracking bitset, with closure-based neighbor iteration. *)
let naive_wireless_of_set g s =
  let n = Graph.n g in
  let elts = Bitset.to_array s in
  let k = Array.length elts in
  let cnt = Array.make n 0 in
  let uniq = ref 0 in
  let cur = Bitset.create n in
  let best = ref 0 in
  let total = 1 lsl k in
  for i = 1 to total - 1 do
    let gray_prev = (i - 1) lxor ((i - 1) lsr 1) in
    let gray = i lxor (i lsr 1) in
    let changed = gray lxor gray_prev in
    let bit =
      let rec go b = if changed lsr b land 1 = 1 then b else go (b + 1) in
      go 0
    in
    let u = elts.(bit) in
    (if Bitset.mem cur u then begin
       Bitset.remove_inplace cur u;
       Graph.iter_neighbors g u (fun w ->
           if not (Bitset.mem s w) then begin
             if cnt.(w) = 1 then decr uniq else if cnt.(w) = 2 then incr uniq;
             cnt.(w) <- cnt.(w) - 1
           end)
     end
     else begin
       Bitset.add_inplace cur u;
       Graph.iter_neighbors g u (fun w ->
           if not (Bitset.mem s w) then begin
             if cnt.(w) = 0 then incr uniq else if cnt.(w) = 1 then decr uniq;
             cnt.(w) <- cnt.(w) + 1
           end)
     end);
    if !uniq > !best then best := !uniq
  done;
  !best

let naive_beta_w g kmax =
  naive_min_value g kmax (fun s k ->
      float_of_int (naive_wireless_of_set g s) /. float_of_int k)

(* ---- harness ---- *)

let timed f =
  let t0 = Clock.now_ns () in
  let v = f () in
  (v, Clock.ns_to_s (Clock.now_ns () - t0))

(* Timed pass that also reports how many steps of [step_kind] it drove
   through the instrumented engine — the pruned passes do fewer than the
   closed-form count, and the difference IS the result. *)
let timed_counted step_kind f =
  let c0 = Work.count step_kind in
  let v, dt = timed f in
  (v, dt, Work.count step_kind - c0)

let gray_steps n kmax =
  let acc = ref 0 in
  for k = 1 to kmax do
    acc := !acc + (Combi.binomial n k * ((1 lsl k) - 1))
  done;
  !acc

let per_sec steps dt = if dt > 0.0 then float_of_int steps /. dt else infinity

let run ~quick =
  let nb = if quick then 16 else 18 in
  let nw = if quick then 12 else 13 in
  let gb = Gen.gnp (rng 41) nb 0.3 in
  let gw = Gen.gnp (rng 42) nw 0.35 in
  let kb = Measure.max_set_size gb in
  let kw = Measure.max_set_size gw in
  let set_steps = Combi.subsets_count_le nb kb in
  let flip_steps = gray_steps nw kw in
  let t = Table.create [ "measure"; "engine"; "steps"; "steps/sec" ] in
  let ok = ref 0 and total = ref 0 in
  let row measure engine steps dt =
    Table.add_row t
      [ measure; engine; Table.fi steps; Printf.sprintf "%.3e" (per_sec steps dt) ]
  in
  let jobs = Pool.default_jobs () in
  let kernel name steps step_kind naive exact =
    let instance = Printf.sprintf "gnp n=%d" (if name = "beta_w" then nw else nb) in
    let naive_v, naive_dt = timed naive in
    Work.add naive_steps_kind steps;
    let (unpruned : Measure.witnessed), unpruned_dt, unpruned_steps =
      timed_counted step_kind (fun () -> exact ~prune:false ~jobs:1)
    in
    let (pruned : Measure.witnessed), pruned_dt, pruned_steps =
      timed_counted step_kind (fun () -> exact ~prune:true ~jobs:1)
    in
    let (par : Measure.witnessed), par_dt, par_steps =
      timed_counted step_kind (fun () -> exact ~prune:true ~jobs)
    in
    row name "naive" steps naive_dt;
    row name "incremental" unpruned_steps unpruned_dt;
    row name "pruned(j=1)" pruned_steps pruned_dt;
    row name (Printf.sprintf "pruned(j=%d)" jobs) par_steps par_dt;
    let check claim predicted measured holds =
      incr total;
      if holds then incr ok;
      record ~claim ~instance ~predicted ~measured holds
    in
    check
      (Printf.sprintf "kernel %s: incremental value = naive value" name)
      naive_v unpruned.Measure.value
      (naive_v = unpruned.Measure.value);
    check
      (Printf.sprintf "kernel %s: pruned value = unpruned value" name)
      unpruned.Measure.value pruned.Measure.value
      (pruned.Measure.value = unpruned.Measure.value);
    check
      (Printf.sprintf "kernel %s: pruned witness = unpruned witness" name)
      1.0
      (if Bitset.equal pruned.Measure.witness unpruned.Measure.witness then 1.0 else 0.0)
      (Bitset.equal pruned.Measure.witness unpruned.Measure.witness);
    check
      (Printf.sprintf "kernel %s: parallel pruned = sequential pruned" name)
      pruned.Measure.value par.Measure.value
      (par.Measure.value = pruned.Measure.value
      && Bitset.equal par.Measure.witness pruned.Measure.witness);
    (* Informational: how much of the reference enumeration the pruning
       skipped (>= 0 always holds; `wx bench diff` tracks the number). *)
    check
      (Printf.sprintf "kernel %s: pruning ratio (informational)" name)
      0.0
      (1.0 -. (float_of_int pruned_steps /. float_of_int (max 1 unpruned_steps)))
      (pruned_steps <= unpruned_steps);
    check
      (Printf.sprintf "kernel %s: pruned speedup (informational)" name)
      1.0
      (unpruned_dt /. Float.max pruned_dt 1e-12)
      (pruned_dt > 0.0)
  in
  kernel "beta" set_steps Work.sets_scored
    (fun () -> naive_beta gb kb)
    (fun ~prune ~jobs -> Measure.beta_exact ~prune ~jobs gb);
  kernel "beta_u" set_steps Work.sets_scored
    (fun () -> naive_beta_u gb kb)
    (fun ~prune ~jobs -> Measure.beta_u_exact ~prune ~jobs gb);
  kernel "beta_w" flip_steps Work.gray_steps
    (fun () -> naive_beta_w gw kw)
    (fun ~prune ~jobs -> Measure.beta_w_exact ~prune ~jobs gw);
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "kern";
    title = "enumeration kernel: naive vs incremental vs branch-and-bound";
    claim = "engine validation (no paper claim)";
    run;
  }
