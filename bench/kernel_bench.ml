(* KERN — the enumeration kernel itself, tracked as a first-class
   experiment so `wx bench record/diff` (and the CI alloc gate) watch the
   delta-scoring engine directly rather than only end-to-end experiments.

   Per measure it drives the same subset space three times: once with the
   pre-engine from-scratch scorer (fresh neighborhood bitsets / counter
   arrays per set, closure-based adjacency walks), once through the
   incremental path the exact measures now use (sequential — the kernel
   under test is the scorer), and once through the pool at the default job
   count. The parallel pass is what populates the KERN entry's utilization
   block: smallest-element sharding is skewed, so its idle tail is the
   recorded evidence for the planned work-stealing kernel.

   Throughput lands in the report, not just the local table: the
   incremental/parallel passes credit Work.sets_scored / Work.gray_steps
   from inside Measure, and the naive passes credit the same step counts
   to the "naive_steps" kind here — so wx-bench/4 carries units/sec for
   every engine and `wx bench diff` gates on them. *)

open Bench_common
module Combi = Wx_util.Combi
module Clock = Wx_obs.Clock
module Work = Wx_obs.Work
module Pool = Wx_par.Pool

(* Steps done by the from-scratch reference scorers, credited as their own
   work kind: the naive engines do the same enumeration but bypass the
   instrumented incremental path. *)
let naive_steps_kind = Work.kind "naive_steps"

(* ---- from-scratch reference scorers (the pre-engine shapes) ---- *)

let naive_min_value g kmax score =
  let n = Graph.n g in
  let buf = Bitset.create n in
  let best = ref infinity in
  Combi.iter_subsets_le n kmax (fun idxs ->
      Bitset.clear_inplace buf;
      Array.iter (Bitset.add_inplace buf) idxs;
      let v = score buf in
      if v < !best then best := v);
  !best

let naive_beta g kmax = naive_min_value g kmax (Nbhd.expansion_of_set g)
let naive_beta_u g kmax = naive_min_value g kmax (Nbhd.unique_expansion_of_set g)

(* Old inner wireless maximisation: per outer set, a fresh n-int counter
   array and tracking bitset, with closure-based neighbor iteration. *)
let naive_wireless_of_set g s =
  let n = Graph.n g in
  let elts = Bitset.to_array s in
  let k = Array.length elts in
  let cnt = Array.make n 0 in
  let uniq = ref 0 in
  let cur = Bitset.create n in
  let best = ref 0 in
  let total = 1 lsl k in
  for i = 1 to total - 1 do
    let gray_prev = (i - 1) lxor ((i - 1) lsr 1) in
    let gray = i lxor (i lsr 1) in
    let changed = gray lxor gray_prev in
    let bit =
      let rec go b = if changed lsr b land 1 = 1 then b else go (b + 1) in
      go 0
    in
    let u = elts.(bit) in
    (if Bitset.mem cur u then begin
       Bitset.remove_inplace cur u;
       Graph.iter_neighbors g u (fun w ->
           if not (Bitset.mem s w) then begin
             if cnt.(w) = 1 then decr uniq else if cnt.(w) = 2 then incr uniq;
             cnt.(w) <- cnt.(w) - 1
           end)
     end
     else begin
       Bitset.add_inplace cur u;
       Graph.iter_neighbors g u (fun w ->
           if not (Bitset.mem s w) then begin
             if cnt.(w) = 0 then incr uniq else if cnt.(w) = 1 then decr uniq;
             cnt.(w) <- cnt.(w) + 1
           end)
     end);
    if !uniq > !best then best := !uniq
  done;
  !best

let naive_beta_w g kmax =
  naive_min_value g kmax (fun s ->
      float_of_int (naive_wireless_of_set g s) /. float_of_int (Bitset.cardinal s))

(* ---- harness ---- *)

let timed f =
  let t0 = Clock.now_ns () in
  let v = f () in
  (v, Clock.ns_to_s (Clock.now_ns () - t0))

let gray_steps n kmax =
  let acc = ref 0 in
  for k = 1 to kmax do
    acc := !acc + (Combi.binomial n k * ((1 lsl k) - 1))
  done;
  !acc

let per_sec steps dt = if dt > 0.0 then float_of_int steps /. dt else infinity

let run ~quick =
  let nb = if quick then 16 else 18 in
  let nw = if quick then 12 else 13 in
  let gb = Gen.gnp (rng 41) nb 0.3 in
  let gw = Gen.gnp (rng 42) nw 0.35 in
  let kb = Measure.max_set_size gb in
  let kw = Measure.max_set_size gw in
  let set_steps = Combi.subsets_count_le nb kb in
  let flip_steps = gray_steps nw kw in
  let t = Table.create [ "measure"; "engine"; "steps"; "steps/sec" ] in
  let ok = ref 0 and total = ref 0 in
  let row measure engine steps dt =
    Table.add_row t
      [ measure; engine; Table.fi steps; Printf.sprintf "%.3e" (per_sec steps dt) ]
  in
  let jobs = Pool.default_jobs () in
  let kernel name steps naive inc par =
    let instance = Printf.sprintf "gnp n=%d" (if name = "beta_w" then nw else nb) in
    let naive_v, naive_dt = timed naive in
    Work.add naive_steps_kind steps;
    let inc_v, inc_dt = timed inc in
    let par_v, par_dt = timed par in
    row name "naive" steps naive_dt;
    row name "incremental" steps inc_dt;
    row name (Printf.sprintf "parallel(j=%d)" jobs) steps par_dt;
    let agree = naive_v = inc_v in
    incr total;
    if agree then incr ok;
    record
      ~claim:(Printf.sprintf "kernel %s: incremental value = naive value" name)
      ~instance ~predicted:naive_v ~measured:inc_v agree;
    let par_agree = par_v = inc_v in
    incr total;
    if par_agree then incr ok;
    record
      ~claim:(Printf.sprintf "kernel %s: parallel value = incremental value" name)
      ~instance ~predicted:inc_v ~measured:par_v par_agree;
    let sane = inc_dt > 0.0 in
    incr total;
    if sane then incr ok;
    record
      ~claim:(Printf.sprintf "kernel %s: incremental speedup (informational)" name)
      ~instance ~predicted:1.0
      ~measured:(naive_dt /. Float.max inc_dt 1e-12)
      sane
  in
  kernel "beta" set_steps (fun () -> naive_beta gb kb)
    (fun () -> (Measure.beta_exact ~jobs:1 gb).Measure.value)
    (fun () -> (Measure.beta_exact ~jobs gb).Measure.value);
  kernel "beta_u" set_steps
    (fun () -> naive_beta_u gb kb)
    (fun () -> (Measure.beta_u_exact ~jobs:1 gb).Measure.value)
    (fun () -> (Measure.beta_u_exact ~jobs gb).Measure.value);
  kernel "beta_w" flip_steps
    (fun () -> naive_beta_w gw kw)
    (fun () -> (Measure.beta_w_exact ~jobs:1 gw).Measure.value)
    (fun () -> (Measure.beta_w_exact ~jobs gw).Measure.value);
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "kern";
    title = "enumeration kernel: naive vs incremental delta scoring";
    claim = "engine validation (no paper claim)";
    run;
  }
