(* Bechamel micro-benchmarks: one Test.make per experiment's hot kernel, so
   the cost of each reproduction stage is tracked alongside its results. *)

open Bechamel
open Toolkit
module Rng = Wx_util.Rng
module Bitset = Wx_util.Bitset
module Gen = Wx_graph.Gen
module Bipartite = Wx_graph.Bipartite

let make_tests () =
  let r = Rng.create 515151 in
  let g64 = Gen.random_regular r 64 4 in
  let core32 = Wx_constructions.Core_graph.create 32 in
  let core256 = Wx_constructions.Core_graph.create 256 in
  let inst = Wx_constructions.Core_graph.bip core32 in
  let inst_rand = Gen.random_bipartite_sdeg r ~s:32 ~n:96 ~d:4 in
  let half = Bitset.random_of_universe r 32 16 in
  let rng_decay = Rng.create 616161 in
  let rng_spectral = Rng.create 717171 in
  let chain = Wx_constructions.Broadcast_chain.create r ~copies:2 ~s:8 in
  [
    (* e1/e5 kernel: unique-coverage evaluation. *)
    Test.make ~name:"unique_count core32 (half S)"
      (Staged.stage (fun () -> Wx_expansion.Nbhd.Bip.unique_count inst half));
    (* e5 kernels: the two tree DPs. *)
    Test.make ~name:"core DP max-unique s=256"
      (Staged.stage (fun () -> Wx_constructions.Core_graph.dp_max_unique core256));
    Test.make ~name:"core DP min-coverage s=256"
      (Staged.stage (fun () -> Wx_constructions.Core_graph.dp_min_coverage core256));
    (* e7 kernel: one decay draw-and-evaluate. *)
    Test.make ~name:"decay solve (reps=8) rand 32x96"
      (Staged.stage (fun () -> Wx_spokesmen.Decay.solve ~reps:8 rng_decay inst_rand));
    (* e10 kernels: the deterministic procedures. *)
    Test.make ~name:"partition run rand 32x96"
      (Staged.stage (fun () -> Wx_spokesmen.Partition.run inst_rand));
    Test.make ~name:"naive run rand 32x96"
      (Staged.stage (fun () -> Wx_spokesmen.Naive.run inst_rand));
    (* e2 kernel: λ₂ by power iteration. *)
    Test.make ~name:"lambda2 random 4-regular n=64"
      (Staged.stage (fun () -> Wx_spectral.Spectral_gap.lambda2_regular g64 rng_spectral));
    (* e11 kernel: one radio round on the chain. *)
    Test.make ~name:"network step (flood tx) on chain"
      (Staged.stage
         (let g = chain.Wx_constructions.Broadcast_chain.graph in
          fun () ->
            let net = Wx_radio.Network.create g 0 in
            ignore (Wx_radio.Network.step net (Wx_radio.Network.informed net))));
    (* exact-enumeration kernel (ablation A3's unit cost). *)
    Test.make ~name:"gray unique enumeration 2^16"
      (Staged.stage
         (let small = Gen.random_bipartite_sdeg (Rng.create 1) ~s:16 ~n:32 ~d:3 in
          fun () -> Wx_expansion.Bip_measure.exact_max_unique small));
    (* branch-and-bound on the same instance (ablation A6's unit cost). *)
    Test.make ~name:"branch-and-bound 16x32"
      (Staged.stage
         (let small = Gen.random_bipartite_sdeg (Rng.create 1) ~s:16 ~n:32 ~d:3 in
          fun () -> Wx_spokesmen.Bb.solve small));
    (* enumeration kernel: from-scratch scoring vs the incremental
       delta-scoring engine, per exact measure (KERN's unit costs). *)
    Test.make ~name:"beta enum naive gnp n=14"
      (Staged.stage
         (let g = Gen.gnp (Rng.create 929292) 14 0.3 in
          fun () -> Wx_bench.Kernel_bench.naive_beta g 7));
    Test.make ~name:"beta enum incremental gnp n=14"
      (Staged.stage
         (let g = Gen.gnp (Rng.create 929292) 14 0.3 in
          fun () -> Wx_expansion.Measure.beta_exact ~jobs:1 g));
    Test.make ~name:"beta_u enum naive gnp n=14"
      (Staged.stage
         (let g = Gen.gnp (Rng.create 929292) 14 0.3 in
          fun () -> Wx_bench.Kernel_bench.naive_beta_u g 7));
    Test.make ~name:"beta_u enum incremental gnp n=14"
      (Staged.stage
         (let g = Gen.gnp (Rng.create 929292) 14 0.3 in
          fun () -> Wx_expansion.Measure.beta_u_exact ~jobs:1 g));
    Test.make ~name:"beta_w enum naive gnp n=10"
      (Staged.stage
         (let g = Gen.gnp (Rng.create 929292) 10 0.35 in
          fun () -> Wx_bench.Kernel_bench.naive_beta_w g 5));
    Test.make ~name:"beta_w enum incremental gnp n=10"
      (Staged.stage
         (let g = Gen.gnp (Rng.create 929292) 10 0.35 in
          fun () -> Wx_expansion.Measure.beta_w_exact ~jobs:1 g));
    (* flow-based exact arboricity (E12's kernel). *)
    Test.make ~name:"exact arboricity grid 8x8"
      (Staged.stage
         (let g = Gen.grid 8 8 in
          fun () -> Wx_graph.Densest.arboricity_exact g));
    (* schedule synthesis on a small grid (E11's schedule table kernel). *)
    Test.make ~name:"schedule synth grid 5x5"
      (Staged.stage
         (let g = Gen.grid 5 5 in
          let r = Rng.create 2 in
          fun () -> Wx_radio.Schedule.synthesize r g ~source:0));
  ]

let run () =
  print_endline "\n=== MICRO: bechamel kernel timings ===\n";
  let tests = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (make_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Wx_util.Table.create [ "kernel"; "ns/run"; "r²" ] in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let est =
        match Analyze.OLS.estimates ols_result with Some [ v ] -> v | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some v -> v | None -> nan
      in
      Wx_util.Table.add_row t
        [ name; Wx_util.Table.ff ~dec:0 est; Wx_util.Table.ff ~dec:3 r2 ])
    (List.sort compare rows);
  Wx_util.Table.print t
