(* Shared infrastructure for the experiment harness. *)

module Rng = Wx_util.Rng
module Bitset = Wx_util.Bitset
module Table = Wx_util.Table
module Stats = Wx_util.Stats
module Floatx = Wx_util.Floatx
module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Gen = Wx_graph.Gen
module Traversal = Wx_graph.Traversal
module Arboricity = Wx_graph.Arboricity
module Measure = Wx_expansion.Measure
module Bip_measure = Wx_expansion.Bip_measure
module Bounds = Wx_expansion.Bounds
module Nbhd = Wx_expansion.Nbhd
module Solver = Wx_spokesmen.Solver
module Instances = Wireless_expanders.Instances
module Theorems = Wireless_expanders.Theorems
module Json = Wx_obs.Json
module Metrics = Wx_obs.Metrics

type experiment = {
  id : string;  (** "e1" ... "e12", "ablation" *)
  title : string;
  claim : string;  (** which part of the paper it reproduces *)
  run : quick:bool -> unit;
}

let section e =
  Printf.printf "\n=== %s: %s ===\n    [%s]\n\n" (String.uppercase_ascii e.id) e.title e.claim

let seed = Instances.seed
let rng off = Rng.create (seed + off)

(* ---- structured results ----

   Experiments print tables for humans; in parallel, every predicted vs
   measured comparison is recorded here so the harness can write a
   machine-readable BENCH_*.json per run. The collector is per-experiment:
   the harness drains it with [take_recorded] after each [run]. *)

type check_row = {
  claim : string;
  instance : string;
  predicted : float;
  measured : float;
  holds : bool;
}

let recorded : check_row list ref = ref []

let record ~claim ?(instance = "") ?(predicted = Float.nan) ?(measured = Float.nan) holds =
  recorded := { claim; instance; predicted; measured; holds } :: !recorded

let record_check (c : Theorems.check) =
  record ~claim:c.Theorems.claim ~instance:c.Theorems.instance ~predicted:c.Theorems.predicted
    ~measured:c.Theorems.measured c.Theorems.holds

let take_recorded () =
  let rows = List.rev !recorded in
  recorded := [];
  rows

let row_json r =
  Json.Obj
    [
      ("claim", Json.String r.claim);
      ("instance", Json.String r.instance);
      ("predicted", Json.Float r.predicted);
      ("measured", Json.Float r.measured);
      ("holds", Json.Bool r.holds);
    ]

let checks_table (checks : Theorems.check list) =
  let t = Table.create [ "claim"; "instance"; "predicted"; "measured"; "holds" ] in
  List.iter
    (fun (c : Theorems.check) ->
      record_check c;
      Table.add_row t
        [
          c.Theorems.claim;
          c.Theorems.instance;
          Table.ff ~dec:4 c.Theorems.predicted;
          Table.ff ~dec:4 c.Theorems.measured;
          Table.fb c.Theorems.holds;
        ])
    checks;
  Table.print t

let verdict ok_count total =
  Printf.printf "\n  verdict: %d/%d claims hold\n" ok_count total

let count_holds checks = List.length (List.filter (fun c -> c.Theorems.holds) checks)
