(* E3 — Lemma 3.2 (βu ≥ 2β − ∆ on any graph, exact) and Lemma 3.3 (the
   bound is tight: Gbad has βu exactly 2β − ∆). *)

open Bench_common

let run ~quick =
  (* Part A: Lemma 3.2 on the exact zoo. *)
  print_endline "-- Lemma 3.2: βu >= 2β − ∆ (exact, zoo) --";
  let zoo =
    List.filter (fun (_, g) -> Traversal.is_connected g) (Instances.small_graphs ())
  in
  let zoo = if quick then List.filteri (fun i _ -> i < 4) zoo else zoo in
  let t = Table.create [ "graph"; "β"; "Δ"; "2β−Δ"; "βu"; "holds" ] in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (name, g) ->
      let beta = (Measure.beta_exact g).Measure.value in
      let bu = (Measure.beta_u_exact g).Measure.value in
      let delta = Graph.max_degree g in
      let predicted = Bounds.lemma_3_2 ~beta ~delta in
      let holds = bu >= predicted -. 1e-9 in
      incr total;
      if holds then incr ok;
      record ~claim:"Lemma 3.2" ~instance:name ~predicted ~measured:bu holds;
      Table.add_row t
        [
          name; Table.ff beta; Table.fi delta; Table.ff predicted; Table.ff bu; Table.fb holds;
        ])
    zoo;
  Table.print t;

  (* Part B: Lemma 3.3 — tightness on Gbad across the (s, ∆, β) sweep. *)
  print_endline "\n-- Lemma 3.3: on Gbad the unique expansion is exactly 2β − ∆ --";
  let t2 = Table.create [ "s"; "Δ"; "β"; "predicted βu"; "measured βu"; "exact?" ] in
  List.iter
    (fun gb ->
      let inst = Wx_constructions.Gbad.bip gb in
      let s = Wx_constructions.Gbad.s gb in
      let uniq =
        Nbhd.Bip.unique_count inst (Bitset.full s)
      in
      let measured = float_of_int uniq /. float_of_int s in
      let predicted = float_of_int (Wx_constructions.Gbad.predicted_beta_u gb) in
      let exact = Float.abs (measured -. predicted) < 1e-9 in
      incr total;
      if exact then incr ok;
      record ~claim:"Lemma 3.3 (βu exact)"
        ~instance:(Printf.sprintf "Gbad(s=%d,Δ=%d)" s (Wx_constructions.Gbad.delta gb))
        ~predicted ~measured exact;
      Table.add_row t2
        [
          Table.fi s;
          Table.fi (Wx_constructions.Gbad.delta gb);
          Table.fi (Wx_constructions.Gbad.beta gb);
          Table.ff predicted;
          Table.ff measured;
          Table.fb exact;
        ])
    (Instances.gbad_grid ());
  Table.print t2;
  verdict !ok !total

let experiment =
  {
    id = "e3";
    title = "βu ≥ 2β − Δ, and its tightness on Gbad";
    claim = "Lemmas 3.2 and 3.3";
    run;
  }
