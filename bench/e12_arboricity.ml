(* E12 — the low-arboricity corollary (§1.2): for graphs of bounded
   arboricity the wireless expansion matches the ordinary expansion up to a
   constant, because arboricity ≥ min{∆/β, ∆·β} bounds Theorem 1.1's
   deviation factor. Exact β/βw on small instances per family; the
   deviation factor and arboricity estimates on larger ones. *)

open Bench_common
module Families = Wx_constructions.Families

let run ~quick =
  print_endline "-- exact β vs βw per family (small instances) --";
  let t =
    Table.create
      [ "family"; "n"; "arb≥"; "degen"; "β"; "βw"; "β/βw"; "thm factor"; "class" ]
  in
  let families = if quick then List.filteri (fun i _ -> i < 5) Families.all else Families.all in
  List.iter
    (fun f ->
      let g = f.Families.make (rng 1201) 12 in
      if Graph.n g <= 16 && Traversal.is_connected g then begin
        let beta = (Measure.beta_exact g).Measure.value in
        let bw = (Measure.beta_w_exact g).Measure.value in
        let factor =
          Bounds.theorem_1_1_denominator ~beta ~delta:(Graph.max_degree g)
        in
        let predicted = beta /. (9.0 *. Float.max 1.0 factor) in
        record ~claim:"§1.2: βw ≥ β/(9·deviation factor)" ~instance:f.Families.name
          ~predicted ~measured:bw
          (bw >= predicted -. 1e-9);
        Table.add_row t
          [
            f.Families.name;
            Table.fi (Graph.n g);
            Table.fi (Arboricity.lower_bound_peeling g);
            Table.fi (Arboricity.degeneracy g);
            Table.ff beta;
            Table.ff bw;
            Table.fr beta bw;
            Table.ff ~dec:2 factor;
            (if f.Families.low_arboricity then "low-arb" else "control");
          ]
      end)
    families;
  Table.print t;

  if not quick then begin
    print_endline "\n-- larger instances: arboricity vs the deviation factor --";
    let t2 =
      Table.create
        [ "family"; "n"; "Δ"; "arb exact"; "degen"; "witness β"; "min{Δ/β,Δβ}"; "thm factor" ]
    in
    List.iter
      (fun f ->
        let g = f.Families.make (rng 1202) 100 in
        if Traversal.is_connected g then begin
          let beta = (Measure.beta_sampled (rng 1203) ~samples:800 g).Measure.value in
          let delta = Graph.max_degree g in
          let fd = float_of_int delta in
          Table.add_row t2
            [
              f.Families.name;
              Table.fi (Graph.n g);
              Table.fi delta;
              Table.fi (Wx_graph.Densest.arboricity_exact g);
              Table.fi (Arboricity.degeneracy g);
              Table.ff ~dec:2 beta;
              Table.ff ~dec:2 (Float.min (fd /. beta) (fd *. beta));
              Table.ff ~dec:2 (Bounds.theorem_1_1_denominator ~beta ~delta);
            ]
        end)
      families;
    Table.print t2;
    print_endline
      "\n  reading: for low-arboricity families (grid/torus/tree/cycle/path) the\n\
      \  deviation factor stays a small constant regardless of n, so βw = Θ(β);\n\
      \  random regular/complete-bipartite controls show the factor growing."
  end

let experiment =
  {
    id = "e12";
    title = "low-arboricity graphs: wireless ≈ ordinary expansion";
    claim = "Arboricity corollary of Theorem 1.1 (§1.2, §2.1)";
    run;
  }
