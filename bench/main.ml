(* Experiment harness for the Wireless Expanders reproduction.

   dune exec bench/main.exe                 # all experiments + ablations + micro
   dune exec bench/main.exe -- -e e5        # one experiment
   dune exec bench/main.exe -- --quick      # shrunken parameter grids
   dune exec bench/main.exe -- --list       # what exists
   dune exec bench/main.exe -- --json       # also write BENCH_<timestamp>.json
   dune exec bench/main.exe -- --json out.json
   dune exec bench/main.exe -- --jobs 4     # worker domains for exact measures
   dune exec bench/main.exe -- --repeats 3  # median-of-3 wall times in the report

   Every experiment prints one or more predicted-vs-measured tables; the
   mapping from experiment id to paper claim is in DESIGN.md §5, and the
   recorded outcomes live in EXPERIMENTS.md. Under --json the same runs
   additionally emit a machine-readable wx-bench/4 report (Wx_obs.Report):
   per-experiment wall-time samples, GC/allocation counters, per-claim
   checks, the wx_obs metrics snapshot, and run provenance. The experiment
   zoo itself lives in the wx_bench library (bench/runner.ml) so `wx bench
   record` shares it. *)

module Runner = Wx_bench.Runner
module Report = Wx_obs.Report
module Metrics = Wx_obs.Metrics
module Clock = Wx_obs.Clock
module Pool = Wx_par.Pool

let write_report ~path ~quick ~repeats outcomes =
  Report.save path (Runner.report ~quick ~repeats outcomes);
  Printf.printf "\nwrote %s\n" path

let list_experiments () =
  List.iter
    (fun (e : Wx_bench.Bench_common.experiment) ->
      Printf.printf "%-9s %-55s %s\n" e.id e.title e.claim)
    Runner.experiments

(* Same resolution as bin/wx.ml: the --expose flag wins, else WX_EXPOSE;
   a bind failure warns and the run continues unexposed. *)
let start_expose flag =
  let port =
    match flag with
    | Some p -> Some p
    | None -> (
        match Sys.getenv_opt "WX_EXPOSE" with
        | None | Some "" -> None
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some p when p >= 0 -> Some p
            | _ ->
                Printf.eprintf
                  "warning: WX_EXPOSE=%S is not a port number; exposition disabled\n%!" s;
                None))
  in
  match port with
  | None -> ()
  | Some port -> (
      Metrics.enable ();
      match Wx_obs.Expose.start ~port () with
      | Ok srv ->
          Printf.eprintf "[expose] serving http://127.0.0.1:%d/metrics (and /json)\n%!"
            (Wx_obs.Expose.port srv);
          at_exit (fun () -> Wx_obs.Expose.stop srv)
      | Error msg ->
          Printf.eprintf "warning: --expose: cannot bind %s; continuing without exposition\n%!"
            msg)

let main experiment_id quick listing skip_micro json jobs repeats expose =
  (match jobs with Some n -> Pool.set_default_jobs n | None -> ());
  Printf.printf "wireless-expanders experiment harness (seed %d, jobs %d)\n"
    Wx_bench.Bench_common.seed (Pool.default_jobs ());
  if listing then (list_experiments (); 0)
  else begin
    Wx_obs.Expose.install_sigusr1_dump ();
    start_expose expose;
    let collect = json <> None in
    if collect then begin
      Metrics.enable ();
      (* Alloc counters ride along with any JSON report; reads happen only
         around each experiment so the hot paths stay untouched. *)
      Wx_obs.Memgc.enable ()
    end;
    match Runner.run ?only:experiment_id ~repeats ~quick ~collect () with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        1
    | Ok outcomes ->
        if experiment_id = None && not skip_micro then Micro.run ();
        (match json with
        | Some "" ->
            write_report ~path:("BENCH_" ^ Clock.timestamp () ^ ".json") ~quick ~repeats outcomes
        | Some path -> write_report ~path ~quick ~repeats outcomes
        | None -> ());
        0
  end

open Cmdliner

let experiment_arg =
  let doc = "Run a single experiment (e1..e12 or 'ablation'); default: all." in
  Arg.(value & opt (some string) None & info [ "e"; "experiment" ] ~docv:"ID" ~doc)

let quick_arg =
  let doc = "Shrink parameter grids for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_arg =
  let doc = "List experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let skip_micro_arg =
  let doc = "Skip the bechamel micro-benchmark section." in
  Arg.(value & flag & info [ "skip-micro" ] ~doc)

let json_arg =
  let doc =
    "Write a machine-readable wx-bench/4 report to $(docv) (default: BENCH_<timestamp>.json). \
     Enables metrics and allocation-counter collection for the run."
  in
  Arg.(value & opt ~vopt:(Some "") (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel expansion measures (default: $(b,WX_JOBS) if set, else \
     the runtime's recommended domain count). Per-experiment results are identical at any \
     value; the report records the jobs used so wall-time speedups are attributable."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let repeats_arg =
  let doc =
    "Run every experiment $(docv) times; the report records all wall-time samples and \
     `wx bench diff` compares medians against the spread."
  in
  Arg.(value & opt int 1 & info [ "repeats"; "r" ] ~docv:"K" ~doc)

let expose_arg =
  let doc =
    "Serve the live metrics registry over localhost HTTP on $(docv) while the experiments \
     run (0 picks an ephemeral port; $(b,WX_EXPOSE)=PORT does the same). GET /metrics for \
     Prometheus text, /json for a snapshot; attach with $(b,wx top PORT)."
  in
  Arg.(value & opt (some int) None & info [ "expose" ] ~docv:"PORT" ~doc)

let cmd =
  let doc = "Reproduce every quantitative claim of 'Wireless Expanders' (SPAA 2018)" in
  let info = Cmd.info "wireless-expanders-bench" ~doc in
  Cmd.v info
    Term.(
      const main $ experiment_arg $ quick_arg $ list_arg $ skip_micro_arg $ json_arg $ jobs_arg
      $ repeats_arg $ expose_arg)

let () = exit (Cmd.eval' cmd)
