(* Experiment harness for the Wireless Expanders reproduction.

   dune exec bench/main.exe                 # all experiments + ablations + micro
   dune exec bench/main.exe -- -e e5        # one experiment
   dune exec bench/main.exe -- --quick      # shrunken parameter grids
   dune exec bench/main.exe -- --list       # what exists
   dune exec bench/main.exe -- --json       # also write BENCH_<timestamp>.json
   dune exec bench/main.exe -- --json out.json
   dune exec bench/main.exe -- --jobs 4     # worker domains for exact measures

   Every experiment prints one or more predicted-vs-measured tables; the
   mapping from experiment id to paper claim is in DESIGN.md §5, and the
   recorded outcomes live in EXPERIMENTS.md. Under --json the same runs
   additionally emit a machine-readable report: one object per experiment
   with its per-claim checks, wall time, and the wx_obs metrics snapshot
   accumulated during that experiment. *)

open Bench_common
module Clock = Wx_obs.Clock
module Pool = Wx_par.Pool

let experiments : experiment list =
  [
    E01_relations.experiment;
    E02_spectral.experiment;
    E03_unique_tightness.experiment;
    E04_gbad_wireless.experiment;
    E05_core_graph.experiment;
    E06_gen_core.experiment;
    E07_positive.experiment;
    E08_worst_case.experiment;
    E09_spokesmen.experiment;
    E10_appendix_ladder.experiment;
    E11_broadcast.experiment;
    E12_arboricity.experiment;
    Ablations.experiment;
  ]

type outcome = {
  exp : experiment;
  wall_s : float;
  checks : check_row list;
  metrics : Json.t;  (** Null when metrics collection is off *)
}

let experiment_timer = Metrics.timer "bench.experiment"

let run_one ~quick ~collect e =
  section e;
  if collect then Metrics.reset ();
  ignore (take_recorded ());
  let t0 = Clock.now_ns () in
  Metrics.time experiment_timer (fun () -> e.run ~quick);
  let wall_s = Clock.ns_to_s (Clock.now_ns () - t0) in
  Printf.printf "  [%s finished in %.1fs]\n" e.id wall_s;
  let checks = take_recorded () in
  let metrics = if collect then Metrics.snapshot () else Json.Null in
  { exp = e; wall_s; checks; metrics }

let outcome_json o =
  let holds = List.length (List.filter (fun (c : check_row) -> c.holds) o.checks) in
  Json.Obj
    [
      ("id", Json.String o.exp.id);
      ("title", Json.String o.exp.title);
      ("claim", Json.String o.exp.claim);
      ("wall_s", Json.Float o.wall_s);
      ("holds", Json.Int holds);
      ("total", Json.Int (List.length o.checks));
      ("checks", Json.List (List.map row_json o.checks));
      ("metrics", o.metrics);
    ]

let write_report ~path ~quick outcomes =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "wx-bench/1");
        ("generated", Json.String (Clock.timestamp ()));
        ("seed", Json.Int seed);
        ("quick", Json.Bool quick);
        ("jobs", Json.Int (Pool.default_jobs ()));
        ("experiments", Json.List (List.map outcome_json outcomes));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let list_experiments () =
  List.iter (fun e -> Printf.printf "%-9s %-55s %s\n" e.id e.title e.claim) experiments

let main experiment_id quick listing skip_micro json jobs =
  (match jobs with Some n -> Pool.set_default_jobs n | None -> ());
  Printf.printf "wireless-expanders experiment harness (seed %d, jobs %d)\n" seed
    (Pool.default_jobs ());
  if listing then (list_experiments (); 0)
  else begin
    let collect = json <> None in
    if collect then Metrics.enable ();
    let finish outcomes =
      (match json with
      | Some "" -> write_report ~path:("BENCH_" ^ Clock.timestamp () ^ ".json") ~quick outcomes
      | Some path -> write_report ~path ~quick outcomes
      | None -> ());
      0
    in
    match experiment_id with
    | Some id -> begin
        match List.find_opt (fun e -> e.id = id) experiments with
        | Some e -> finish [ run_one ~quick ~collect e ]
        | None ->
            Printf.eprintf "unknown experiment %S; try --list\n" id;
            1
      end
    | None ->
        let outcomes = List.map (run_one ~quick ~collect) experiments in
        if not skip_micro then Micro.run ();
        finish outcomes
  end

open Cmdliner

let experiment_arg =
  let doc = "Run a single experiment (e1..e12 or 'ablation'); default: all." in
  Arg.(value & opt (some string) None & info [ "e"; "experiment" ] ~docv:"ID" ~doc)

let quick_arg =
  let doc = "Shrink parameter grids for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_arg =
  let doc = "List experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let skip_micro_arg =
  let doc = "Skip the bechamel micro-benchmark section." in
  Arg.(value & flag & info [ "skip-micro" ] ~doc)

let json_arg =
  let doc =
    "Write a machine-readable report to $(docv) (default: BENCH_<timestamp>.json). \
     Enables metrics collection for the run."
  in
  Arg.(value & opt ~vopt:(Some "") (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel expansion measures (default: $(b,WX_JOBS) if set, else \
     the runtime's recommended domain count). Per-experiment results are identical at any \
     value; the report records the jobs used so wall-time speedups are attributable."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Reproduce every quantitative claim of 'Wireless Expanders' (SPAA 2018)" in
  let info = Cmd.info "wireless-expanders-bench" ~doc in
  Cmd.v info
    Term.(
      const main $ experiment_arg $ quick_arg $ list_arg $ skip_micro_arg $ json_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
