(* E7 — Theorem 1.1 (Lemmas 4.2/4.3): the decay-method solver finds, on
   every bipartite instance, a subset uniquely covering Ω(β/log(2·min{∆/β,
   ∆·β}))·|S| vertices. Measured: the algorithm's actual coverage per |S|.
   Predicted: the theorem's bound with the paper's own explicit constant
   1/9 (Corollary A.14). Both regimes (β ≥ 1 and β < 1) appear. *)

open Bench_common

let run ~quick =
  let insts = Instances.bipartite_instances () in
  let insts = if quick then List.filteri (fun i _ -> i < 5) insts else insts in
  let t =
    Table.create
      [ "instance"; "|S|"; "|N|"; "β"; "Δ"; "regime"; "decay/|S|"; "best/|S|"; "bound/9"; "ratio"; "holds" ]
  in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (name, inst) ->
      if not (Bipartite.has_isolated inst) then begin
        let s_count = Bipartite.s_count inst in
        let beta = Bipartite.beta inst in
        let delta = max (Bipartite.max_deg_s inst) (Bipartite.max_deg_n inst) in
        let decay = Wx_spokesmen.Decay.solve ~reps:48 (rng 701) inst in
        let best = Wx_spokesmen.Portfolio.solve ~reps:48 (rng 702) inst in
        let per_s r = float_of_int r.Solver.covered /. float_of_int s_count in
        let predicted = Bounds.theorem_1_1 ~beta ~delta /. 9.0 in
        let measured = per_s best in
        let holds = measured >= predicted -. 1e-9 in
        incr total;
        if holds then incr ok;
        record ~claim:"Theorem 1.1 (constant 1/9)" ~instance:name ~predicted ~measured holds;
        Table.add_row t
          [
            name;
            Table.fi s_count;
            Table.fi (Bipartite.n_count inst);
            Table.ff ~dec:2 beta;
            Table.fi delta;
            (if beta >= 1.0 then "β≥1 (L4.2)" else "β<1 (L4.3)");
            Table.ff ~dec:3 (per_s decay);
            Table.ff ~dec:3 measured;
            Table.ff ~dec:3 predicted;
            Table.fr measured predicted;
            Table.fb holds;
          ]
      end)
    insts;
  Table.print t;
  verdict !ok !total

let experiment =
  {
    id = "e7";
    title = "ordinary expanders are good wireless expanders (algorithmic)";
    claim = "Theorem 1.1 / Lemmas 4.2-4.3";
    run;
  }
