(* E9 — §4.2.1: the Spokesmen Election comparison. Every solver, on every
   instance, against (a) the exact optimum where |S| permits, (b) the
   Chlamtac–Weinstein bound |N|/log|S|, and (c) our average-degree bound
   |N|/(9·log 2·min{δN, δS}) — the refinement the paper contributes. *)

open Bench_common

let run ~quick =
  print_endline "-- small instances (with exact optimum) --";
  let t =
    Table.create
      [ "instance"; "γ=|N|"; "decay"; "naive"; "partition"; "part-rec"; "buckets"; "greedy"; "anneal"; "OPT"; "CW lb"; "ours lb" ]
  in
  List.iter
    (fun (name, inst) ->
      if not (Bipartite.has_isolated inst) then begin
        let results = Wx_spokesmen.Portfolio.solve_each ~reps:48 (rng 901) inst in
        let get n = (List.assoc n results).Solver.covered in
        let opt = Wx_spokesmen.Exact.optimum inst in
        let gamma = float_of_int (Bipartite.n_count inst) in
        let cw = gamma *. Bounds.chlamtac_weinstein_fraction ~s_size:(Bipartite.s_count inst) in
        let ours =
          gamma
          *. Bounds.spokesmen_avg_degree_fraction ~delta_s:(Bipartite.delta_s inst)
               ~delta_n:(Bipartite.delta_n inst)
        in
        record ~claim:"§4.2.1: OPT ≥ avg-degree bound" ~instance:name ~predicted:ours
          ~measured:(float_of_int opt)
          (float_of_int opt >= ours -. 1e-9);
        Table.add_row t
          [
            name;
            Table.fi (Bipartite.n_count inst);
            Table.fi (get "decay");
            Table.fi (get "naive");
            Table.fi (get "partition");
            Table.fi (get "partition-recursive");
            Table.fi (get "buckets-all-classes");
            Table.fi (get "greedy-local");
            Table.fi (get "anneal");
            Table.fi opt;
            Table.ff ~dec:1 cw;
            Table.ff ~dec:1 ours;
          ]
      end)
    (Instances.bipartite_small ());
  Table.print t;

  if not quick then begin
    print_endline
      "\n-- larger instances (portfolio vs bounds; BB optimum where provable) --";
    let t2 =
      Table.create
        [ "instance"; "|S|"; "γ"; "best solver"; "covered"; "BB opt"; "CW lb"; "ours lb"; "best ≥ ours" ]
    in
    let ok = ref 0 and total = ref 0 in
    List.iter
      (fun (name, inst) ->
        if not (Bipartite.has_isolated inst) then begin
          let best = Wx_spokesmen.Portfolio.solve ~reps:48 (rng 902) inst in
          let gamma = float_of_int (Bipartite.n_count inst) in
          let cw =
            gamma *. Bounds.chlamtac_weinstein_fraction ~s_size:(Bipartite.s_count inst)
          in
          let ours =
            gamma
            *. Bounds.spokesmen_avg_degree_fraction ~delta_s:(Bipartite.delta_s inst)
                 ~delta_n:(Bipartite.delta_n inst)
          in
          let holds = float_of_int best.Solver.covered >= ours -. 1e-9 in
          incr total;
          if holds then incr ok;
          record ~claim:"§4.2.1: portfolio ≥ avg-degree bound" ~instance:name ~predicted:ours
            ~measured:(float_of_int best.Solver.covered) holds;
          let bb_opt =
            if Bipartite.s_count inst <= 40 then
              match Wx_spokesmen.Bb.optimum ~node_limit:3_000_000 inst with
              | Some v -> Table.fi v
              | None -> "?"
            else "-"
          in
          Table.add_row t2
            [
              name;
              Table.fi (Bipartite.s_count inst);
              Table.fi (Bipartite.n_count inst);
              best.Solver.name;
              Table.fi best.Solver.covered;
              bb_opt;
              Table.ff ~dec:1 cw;
              Table.ff ~dec:1 ours;
              Table.fb holds;
            ]
        end)
      (Instances.bipartite_instances ());
    Table.print t2;
    print_endline
      "\n  note the matching-2048 row: min{δN, δS} = 1 while log|S| = 11, so our\n\
      \  average-degree bound exceeds Chlamtac-Weinstein's — the paper's refinement.";
    verdict !ok !total
  end

let experiment =
  {
    id = "e9";
    title = "Spokesmen Election: solvers vs optimum vs both bounds";
    claim = "Section 4.2.1 (vs Chlamtac-Weinstein)";
    run;
  }
