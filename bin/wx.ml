(* wx — command-line front end to the wireless-expanders library.

   Subcommands:
     wx info      <family> <size>              graph statistics
     wx expansion <family> <size> [--alpha a]  β / βw / βu (exact or witness)
     wx spokesmen <family> <size> [--solver s] spokesmen election on a frontier
     wx broadcast <family> <size> [--protocol p] [--seeds k]
     wx core      <s>                          core-graph property report
     wx arboricity <family> <size>             exact (flow) vs bounds
     wx bench record [--out F] [--repeats K] [--force]
                                               run the experiment zoo, write a
                                               wx-bench/4 report (baseline);
                                               refuses to overwrite sans --force
     wx bench diff OLD.json NEW.json           noise-aware wall-time gate, a
                                               deterministic allocation gate
                                               (--alloc-tolerance, --alloc-only)
                                               and a noise-aware throughput gate
                                               (--rate-tolerance, --rate-only)
     wx bench util REPORT.json                 pool-utilization summary of one
                                               report (busy fractions, idle tail)
     wx bench history append REPORT.json       digest a report into the perf-
                                               trajectory ledger (dedup by commit)
     wx bench history show [--metric M] [-e E] entries + per-experiment series
                                               with sparklines (wall|alloc|rate)
     wx bench history gate [--window K]        trend gate: newest entry vs the
                                               preceding window, diff's noise
                                               postures per metric; exit 0/1/2
     wx prof [--out F] [--folded F] [--alloc] -- <cmd> ...
                                               run under Chrome tracing, print
                                               the hottest spans (by self time,
                                               or self-allocation with --alloc),
                                               optionally emit collapsed stacks;
                                               exit status follows the inner cmd
     wx prof diff OLD.trace NEW.trace          differential profile: per-span
                                               self-time/alloc deltas,
                                               regressions first; exit 0/1/2
     wx top ADDR                               attach dashboard for a running
                                               --expose endpoint (live rates,
                                               pool busy/idle, coverage/ETA)

   Every measurement subcommand takes --json (machine-readable NDJSON
   events on stdout, human text on stderr), --metrics (collect the Wx_obs
   registry and report it at exit; also enabled by WX_METRICS=1),
   --jobs N (worker domains for the parallel expansion measures; WX_JOBS
   sets the default) and --expose PORT (serve the live registry over
   localhost HTTP — Prometheus text on /metrics, JSON on /json; WX_EXPOSE
   sets the default; kill -USR1 dumps a one-shot snapshot either way).

   Families are the names from Constructions.Families (cycle, grid, torus,
   hypercube, random-4-regular, margulis, ...), plus "cplus" and "chain". *)

open Wireless_expanders.Api
module T = Util.Table
module J = Obs.Json

let base_seed = Wireless_expanders.Instances.seed

let make_graph family size seed =
  match family with
  | "cplus" -> Constructions.Cplus.create (max 3 size)
  | "chain" ->
      let ch =
        Constructions.Broadcast_chain.create (Util.Rng.create seed) ~copies:(max 1 (size / 64))
          ~s:16
      in
      ch.Constructions.Broadcast_chain.graph
  (* Sparse random families for the CSR engine's scale runs: both build in
     O(n + m), so million-node instances need no O(n²) coin-flip loop. *)
  | "gnm" ->
      let n = max 2 size in
      Gen.gnm (Util.Rng.create seed) n (min (4 * n) (n * (n - 1) / 2))
  | "cm-regular" ->
      let n = max 16 size in
      Gen.random_regular_config (Util.Rng.create seed) n 8
  | name ->
      let f = Constructions.Families.find name in
      f.Constructions.Families.make (Util.Rng.create seed) size

(* Validate a family name against the registry; constructing a graph just to
   check the name would burn RNG state and real work for large sizes. *)
let family_names =
  List.map (fun f -> f.Constructions.Families.name) Constructions.Families.all
  @ [ "cplus"; "chain"; "gnm"; "cm-regular" ]

let family_conv =
  let parse s =
    if List.mem s family_names then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown family %S; available: %s" s (String.concat ", " family_names)))
  in
  Cmdliner.Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt s)

(* ---- observability plumbing ---- *)

type obs = { json : bool; metrics : bool }

(* Under --json, stdout carries nothing but NDJSON events; all human text is
   diverted to stderr so the stream stays parseable. *)
let say obs fmt =
  Printf.ksprintf (fun s -> if obs.json then output_string stderr s else print_string s) fmt

let event obs name fields = if obs.json then Obs.Sink.event name fields

(* --expose/WX_EXPOSE needs the registry on so there is something to
   scrape, but an operator attaching to a run did not ask for the exit
   report; remember when exposition alone enabled the registry so
   [obs_finish] stays quiet about it. *)
let expose_enabled_metrics = ref false

let obs_finish obs =
  if obs.metrics || (Obs.Metrics.is_enabled () && not !expose_enabled_metrics) then begin
    if obs.json then begin
      Obs.Sink.event "metrics" [ ("snapshot", Obs.Metrics.snapshot ()) ];
      if Obs.Span.root_spans () <> [] then Obs.Sink.event "spans" [ ("roots", Obs.Span.to_json ()) ]
    end
    else begin
      (* Reached with --metrics, or with WX_METRICS=1 alone: an enabled
         registry that nobody prints would be silent instrumentation. *)
      print_string (Obs.Metrics.render ());
      if Obs.Span.root_spans () <> [] then print_string (Obs.Span.render ())
    end
  end

(* The NDJSON sink batches writes and flushes from an at_exit hook; convert
   the two interruption signals into a clean [exit] so that hook runs and a
   ^C'd --json stream still ends on a complete line. *)
let exit_cleanly_on_signals () =
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle (fun n -> exit (128 + n)))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* Resolve the exposition port: the --expose flag wins, else WX_EXPOSE.
   A non-numeric WX_EXPOSE warns rather than silently disabling — the
   operator who exported it wants to know the attach point never opened. *)
let expose_port flag =
  match flag with
  | Some p -> Some p
  | None -> (
      match Sys.getenv_opt "WX_EXPOSE" with
      | None | Some "" -> None
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some p when p >= 0 -> Some p
          | _ ->
              Printf.eprintf "warning: WX_EXPOSE=%S is not a port number; exposition disabled\n%!"
                s;
              None))

(* Shared wrapper: set the parallelism level, enable instruments, start the
   exposition endpoint when asked, run the command under a root span, then
   flush the requested reports. *)
let run_cmd name json metrics jobs expose f =
  (match jobs with Some n -> Par.Pool.set_default_jobs n | None -> ());
  let obs = { json; metrics } in
  if json || metrics then Obs.Metrics.enable ();
  (* Attach-without-the-flag escape hatch: `kill -USR1 <pid>` dumps a
     one-shot snapshot whether or not exposition is on. *)
  Obs.Expose.install_sigusr1_dump ();
  let expose_srv =
    match expose_port expose with
    | None -> None
    | Some port -> (
        if not (Obs.Metrics.is_enabled ()) then begin
          expose_enabled_metrics := true;
          Obs.Metrics.enable ()
        end;
        match Obs.Expose.start ~port () with
        | Ok srv ->
            Printf.eprintf "[expose] serving http://127.0.0.1:%d/metrics (and /json)\n%!"
              (Obs.Expose.port srv);
            (* A bound port must not outlive an interrupted run: stop on
               every exit path, including the signal one below (the handler
               turns SIGINT/SIGTERM into [exit], which runs at_exit). *)
            at_exit (fun () -> Obs.Expose.stop srv);
            Some srv
        | Error msg ->
            Printf.eprintf "warning: --expose: cannot bind %s; continuing without exposition\n%!"
              msg;
            None)
  in
  if json then begin
    (* Progress heartbeats write free-form lines to stderr; under --json
       stderr carries the human rendering of the run, so suppress them even
       if WX_PROGRESS=1 is set. *)
    Obs.Progress.disable ();
    Obs.Sink.install (Obs.Sink.make ~fmt:Obs.Sink.Ndjson stdout);
    exit_cleanly_on_signals ()
  end;
  (match expose_srv with Some _ when not json -> exit_cleanly_on_signals () | _ -> ());
  let code = Obs.Span.with_ ~name:("wx." ^ name) (fun () -> f obs) in
  obs_finish obs;
  (match expose_srv with Some srv -> Obs.Expose.stop srv | None -> ());
  code

(* ---- info ---- *)

let cmd_info obs family size seed =
  let g = make_graph family size seed in
  say obs "family: %s (requested size %d, seed %d)\n" family size seed;
  say obs "n = %d, m = %d\n" (Graph.n g) (Graph.m g);
  say obs "degrees: min %d, max %d, avg %.2f%s\n" (Graph.min_degree g) (Graph.max_degree g)
    (Graph.avg_degree g)
    (match Graph.is_regular g with Some d -> Printf.sprintf " (regular, d = %d)" d | None -> "");
  let connected = Traversal.is_connected g and bipartite = Traversal.is_bipartite g in
  say obs "connected: %b; bipartite: %b\n" connected bipartite;
  let diameter =
    if Graph.n g <= 400 && connected then begin
      let d = Traversal.diameter g in
      say obs "diameter: %d\n" d;
      Some d
    end
    else None
  in
  let degeneracy = Arboricity.degeneracy g and arb = Densest.arboricity_exact g in
  say obs "degeneracy: %d; arboricity (exact, flow): %d\n" degeneracy arb;
  event obs "graph.info"
    ([
       ("family", J.String family);
       ("seed", J.Int seed);
       ("n", J.Int (Graph.n g));
       ("m", J.Int (Graph.m g));
       ("min_degree", J.Int (Graph.min_degree g));
       ("max_degree", J.Int (Graph.max_degree g));
       ("avg_degree", J.Float (Graph.avg_degree g));
       ("connected", J.Bool connected);
       ("bipartite", J.Bool bipartite);
       ("degeneracy", J.Int degeneracy);
       ("arboricity", J.Int arb);
     ]
    @ match diameter with Some d -> [ ("diameter", J.Int d) ] | None -> []);
  0

(* ---- expansion ---- *)

let cmd_expansion obs family size seed alpha =
  let g = make_graph family size seed in
  say obs "%s (n = %d, α = %.2f)\n" family (Graph.n g) alpha;
  let exact_possible = Graph.n g <= 14 in
  let emit mode b bw bu =
    event obs "expansion.result"
      ([
         ("family", J.String family);
         ("n", J.Int (Graph.n g));
         ("alpha", J.Float alpha);
         ("mode", J.String mode);
         ("beta", J.Float b);
       ]
      @ (match bw with Some v -> [ ("beta_w", J.Float v) ] | None -> [])
      @ [ ("beta_u", J.Float bu) ])
  in
  if exact_possible then begin
    let b = Expansion.Measure.beta_exact ~alpha g in
    let bw = Expansion.Measure.beta_w_exact ~alpha g in
    let bu = Expansion.Measure.beta_u_exact ~alpha g in
    say obs "β  = %.4f (exact)  witness %s\n" b.Expansion.Measure.value
      (Util.Bitset.to_string b.Expansion.Measure.witness);
    say obs "βw = %.4f (exact)\n" bw.Expansion.Measure.value;
    say obs "βu = %.4f (exact)  witness %s\n" bu.Expansion.Measure.value
      (Util.Bitset.to_string bu.Expansion.Measure.witness);
    emit "exact" b.Expansion.Measure.value (Some bw.Expansion.Measure.value)
      bu.Expansion.Measure.value
  end
  else begin
    let r = Util.Rng.create (seed + 1) in
    let b = Expansion.Measure.beta_sampled ~alpha r ~samples:2000 g in
    let bu = Expansion.Measure.beta_u_sampled ~alpha r ~samples:2000 g in
    say obs "β  <= %.4f (witness certificate, 2000 samples)\n" b.Expansion.Measure.value;
    say obs "βu <= %.4f (witness certificate)\n" bu.Expansion.Measure.value;
    let bw =
      match Expansion.Measure.beta_w_sampled ~alpha r ~samples:300 g with
      | bw ->
          say obs "βw <= %.4f (witness certificate)\n" bw.Expansion.Measure.value;
          Some bw.Expansion.Measure.value
      | exception _ ->
          say obs "βw: sets too large for the inner exact maximization\n";
          None
    in
    emit "sampled" b.Expansion.Measure.value bw bu.Expansion.Measure.value
  end;
  0

(* ---- spokesmen ---- *)

let cmd_spokesmen obs family size seed solver =
  let g = make_graph family size seed in
  let r = Util.Rng.create (seed + 2) in
  let k = max 1 (Graph.n g / 4) in
  let s = Util.Bitset.random_of_universe r (Graph.n g) k in
  let inst, _, _ = Bipartite.of_set_neighborhood g s in
  say obs "frontier instance from %s: %s\n" family (Format.asprintf "%a" Bipartite.pp inst);
  let results =
    match solver with
    | "all" -> Spokesmen.Portfolio.solve_each ~reps:48 r inst
    | name -> (
        match List.assoc_opt name Spokesmen.Portfolio.solvers with
        | Some f -> [ (name, f r inst) ]
        | None ->
            Printf.eprintf "unknown solver %S; use --solver all to list results of all\n" name;
            exit 1)
  in
  let t = T.create [ "solver"; "covered"; "of |N|" ] in
  List.iter
    (fun (name, res) ->
      let frac =
        100.0
        *. float_of_int res.Spokesmen.Solver.covered
        /. float_of_int (max 1 (Bipartite.n_count inst))
      in
      event obs "spokesmen.solver"
        [
          ("solver", J.String name);
          ("covered", J.Int res.Spokesmen.Solver.covered);
          ("of_n", J.Float (frac /. 100.0));
        ];
      T.add_row t
        [ name; T.fi res.Spokesmen.Solver.covered; Printf.sprintf "%.1f%%" frac ])
    results;
  say obs "%s" (T.render t);
  (match Spokesmen.Bb.solve ~node_limit:2_000_000 inst with
  | r, Spokesmen.Bb.Proved_optimal ->
      event obs "spokesmen.optimum"
        [ ("covered", J.Int r.Spokesmen.Solver.covered); ("proved", J.Bool true) ];
      say obs "optimum (branch-and-bound): %d\n" r.Spokesmen.Solver.covered
  | r, Spokesmen.Bb.Budget_exhausted ->
      event obs "spokesmen.optimum"
        [ ("covered", J.Int r.Spokesmen.Solver.covered); ("proved", J.Bool false) ];
      say obs "best proven-so-far (budget hit): %d\n" r.Spokesmen.Solver.covered);
  0

(* ---- broadcast ---- *)

let protocol_of_name = function
  | "flood" -> Radio.Flood.protocol
  | "decay" -> Radio.Decay_protocol.protocol
  | "spokesmen" -> Radio.Spokesmen_cast.protocol
  | s when String.length s > 8 && String.sub s 0 8 = "uniform-" ->
      Radio.Uniform.protocol (float_of_string (String.sub s 8 (String.length s - 8)))
  | s ->
      Printf.eprintf "unknown protocol %S (flood | decay | spokesmen | uniform-<p>)\n" s;
      exit 1

(* The CSR engine reimplements the randomized protocols over flat state
   (identical draw order, so identical outcomes); spokesmen-cast is
   schedule-driven and has no CSR port. *)
let csr_protocol_of_name = function
  | "flood" -> Radio.Sim_csr.flood
  | "decay" -> Radio.Sim_csr.decay
  | s when String.length s > 8 && String.sub s 0 8 = "uniform-" ->
      Radio.Sim_csr.uniform (float_of_string (String.sub s 8 (String.length s - 8)))
  | "spokesmen" ->
      Printf.eprintf "protocol \"spokesmen\" is not available under --engine csr\n";
      exit 1
  | s ->
      Printf.eprintf "unknown protocol %S (flood | decay | uniform-<p>)\n" s;
      exit 1

let cmd_broadcast obs family size seed protocol seeds engine =
  let g = make_graph family size seed in
  let run_one, proto_name =
    match engine with
    | "legacy" ->
        let p = protocol_of_name protocol in
        ( (fun sd -> Radio.Sim.run ~max_rounds:100_000 g ~source:0 p (Util.Rng.create sd)),
          p.Radio.Protocol.name )
    | "csr" ->
        let p = csr_protocol_of_name protocol in
        let csr = Csr.of_graph g in
        ( (fun sd ->
            Radio.Sim_csr.run ~max_rounds:100_000 csr ~source:0 p (Util.Rng.create sd)),
          p.Radio.Sim_csr.name )
    | s ->
        Printf.eprintf "unknown engine %S (legacy | csr)\n" s;
        exit 1
  in
  say obs "broadcast on %s (n = %d) with %s [%s engine], %d seeds\n" family (Graph.n g)
    proto_name engine seeds;
  let seed_list = List.init seeds (fun i -> seed + 100 + i) in
  (* Run each seed explicitly so the NDJSON stream can carry a run boundary
     around the simulator's own per-round "radio.round" events. *)
  let outs =
    List.map
      (fun sd ->
        event obs "broadcast.start"
          [ ("seed", J.Int sd); ("protocol", J.String proto_name); ("engine", J.String engine) ];
        let o = run_one sd in
        event obs "broadcast.run"
          [
            ("seed", J.Int sd);
            ("rounds", J.Int o.Radio.Sim.rounds);
            ("completed", J.Bool o.Radio.Sim.completed);
            ("informed", J.Int o.Radio.Sim.informed_final);
            ("collisions", J.Int o.Radio.Sim.collisions);
          ];
        o)
      seed_list
  in
  let rounds = Util.Stats.of_ints (Array.of_list (List.map (fun o -> o.Radio.Sim.rounds) outs)) in
  let completed = List.length (List.filter (fun o -> o.Radio.Sim.completed) outs) in
  say obs "completed: %d/%d\n" completed seeds;
  if completed > 0 then begin
    let s = Util.Stats.summarize rounds in
    say obs "rounds: %s\n" (Format.asprintf "%a" Util.Stats.pp_summary s);
    event obs "broadcast.summary"
      [
        ("completed", J.Int completed);
        ("seeds", J.Int seeds);
        ("rounds_mean", J.Float (Util.Stats.mean rounds));
        ("rounds_min", J.Float (Util.Stats.min rounds));
        ("rounds_max", J.Float (Util.Stats.max rounds));
      ]
  end;
  0

(* ---- core ---- *)

let cmd_core obs s =
  if not (Util.Floatx.is_pow2 s) then begin
    Printf.eprintf "s must be a power of two\n";
    1
  end
  else begin
    let cg = Constructions.Core_graph.create s in
    let inst = Constructions.Core_graph.bip cg in
    say obs "core graph: %s\n" (Format.asprintf "%a" Bipartite.pp inst);
    let log2s = Util.Floatx.log2 (2.0 *. float_of_int s) in
    let mins = Constructions.Core_graph.dp_min_coverage cg in
    let worst = ref infinity in
    for k = 1 to s do
      worst := Float.min !worst (float_of_int mins.(k) /. float_of_int k)
    done;
    say obs "ordinary expansion (exact): %.3f  [Lemma 4.4 promises >= %.3f]\n" !worst log2s;
    let cap = Constructions.Core_graph.dp_max_unique cg in
    say obs "max unique coverage (exact): %d  [Lemma 4.4 caps at %d]\n" cap (2 * s);
    say obs "wireless/ordinary ratio: %.3f  [paper: 2/log 2s = %.3f]\n"
      (float_of_int cap /. float_of_int s /. !worst)
      (2.0 /. log2s);
    event obs "core.report"
      [
        ("s", J.Int s);
        ("ordinary_expansion", J.Float !worst);
        ("lemma_4_4_lb", J.Float log2s);
        ("max_unique", J.Int cap);
        ("max_unique_cap", J.Int (2 * s));
        ("ratio", J.Float (float_of_int cap /. float_of_int s /. !worst));
        ("paper_ratio", J.Float (2.0 /. log2s));
      ];
    0
  end

(* ---- schedule ---- *)

let cmd_schedule obs family size seed =
  let g = make_graph family size seed in
  let r = Util.Rng.create (seed + 3) in
  say obs "synthesizing offline broadcast schedule on %s (n = %d)...\n" family (Graph.n g);
  (match Radio.Schedule.synthesize r g ~source:0 with
  | sch ->
      let ok, informed = Radio.Schedule.replay g sch in
      let len = Radio.Schedule.length sch in
      let bfs_lb = Radio.Schedule.lower_bound_rounds g ~source:0 in
      say obs "rounds: %d (BFS lower bound %d)\n" len bfs_lb;
      say obs "replay: %s (%d/%d informed)\n"
        (if ok then "complete" else "INCOMPLETE")
        informed (Graph.n g);
      Array.iteri
        (fun i tx ->
          if i < 10 then
            say obs "  round %2d: %d transmitters\n" (i + 1) (Util.Bitset.cardinal tx))
        sch.Radio.Schedule.rounds;
      if len > 10 then say obs "  ...\n";
      event obs "schedule.result"
        [
          ("family", J.String family);
          ("n", J.Int (Graph.n g));
          ("rounds", J.Int len);
          ("bfs_lower_bound", J.Int bfs_lb);
          ("complete", J.Bool ok);
          ("informed", J.Int informed);
        ]
  | exception Failure msg ->
      say obs "failed: %s\n" msg;
      event obs "schedule.result" [ ("family", J.String family); ("error", J.String msg) ]);
  0

(* ---- arboricity ---- *)

let cmd_arboricity obs family size seed =
  let g = make_graph family size seed in
  say obs "%s: n = %d, m = %d\n" family (Graph.n g) (Graph.m g);
  let num, den, u = Densest.max_density g in
  say obs "max density |E(U)|/(|U|−1) = %d/%d = %.3f at |U| = %d\n" num den
    (float_of_int num /. float_of_int den)
    (Util.Bitset.cardinal u);
  let exact = Densest.arboricity_exact g in
  let peel = Arboricity.lower_bound_peeling g and degen = Arboricity.degeneracy g in
  say obs "exact arboricity: %d\n" exact;
  say obs "peeling lower bound: %d, degeneracy upper-ish bound: %d\n" peel degen;
  event obs "arboricity.result"
    [
      ("family", J.String family);
      ("n", J.Int (Graph.n g));
      ("m", J.Int (Graph.m g));
      ("density_num", J.Int num);
      ("density_den", J.Int den);
      ("exact", J.Int exact);
      ("peeling_lb", J.Int peel);
      ("degeneracy", J.Int degen);
    ];
  0

(* ---- dot ---- *)

let cmd_dot obs family size seed =
  let g = make_graph family size seed in
  if obs.json then event obs "graph.dot" [ ("dot", J.String (Graph_io.to_dot g)) ]
  else print_string (Graph_io.to_dot g);
  0

(* ---- verify-paper ---- *)

let cmd_verify_paper obs quick seed =
  let rng = Util.Rng.create seed in
  say obs "verifying every claim of the paper on the curated instances (seed %d%s)...\n" seed
    (if quick then ", quick" else "");
  let checks = Wireless_expanders.Theorems.run_all ~quick rng in
  if obs.json then
    List.iter
      (fun c ->
        event obs "claim.check"
          [
            ("claim", J.String c.Wireless_expanders.Theorems.claim);
            ("instance", J.String c.Wireless_expanders.Theorems.instance);
            ("predicted", J.Float c.Wireless_expanders.Theorems.predicted);
            ("measured", J.Float c.Wireless_expanders.Theorems.measured);
            ("holds", J.Bool c.Wireless_expanders.Theorems.holds);
          ])
      checks;
  let failures = List.filter (fun c -> not c.Wireless_expanders.Theorems.holds) checks in
  List.iter
    (fun c -> say obs "  %s\n" (Format.asprintf "%a" Wireless_expanders.Theorems.pp_check c))
    failures;
  say obs "%d/%d claims hold\n" (List.length checks - List.length failures) (List.length checks);
  event obs "claim.summary"
    [
      ("holds", J.Int (List.length checks - List.length failures));
      ("total", J.Int (List.length checks));
    ];
  if failures = [] then 0 else 1

(* ---- bench record / diff ---- *)

module Report = Obs.Report

let cmd_bench_record obs quick repeats only force out =
  if Sys.file_exists out && not force then begin
    (* Fail before any experiment runs: clobbering a committed baseline by
       accident costs a re-record, so overwriting is opt-in. *)
    Printf.eprintf "bench record: %s exists; pass --force to overwrite it\n" out;
    1
  end
  else begin
  (* Metrics always on: the report embeds per-experiment snapshots. Memgc
     too — the per-experiment alloc block is what the alloc gate diffs. *)
  Obs.Metrics.enable ();
  Obs.Memgc.enable ();
  match Wx_bench.Runner.run ?only ~repeats ~quick ~collect:true () with
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
  | Ok outcomes ->
      let r = Wx_bench.Runner.report ~quick ~repeats outcomes in
      Report.save out r;
      say obs "\nwrote %s (%d experiments, %d repeat%s, jobs %d, quick %b)\n" out
        (List.length r.Report.entries)
        repeats
        (if repeats = 1 then "" else "s")
        r.Report.jobs quick;
      event obs "bench.recorded"
        [
          ("path", J.String out);
          ("experiments", J.Int (List.length r.Report.entries));
          ("repeats", J.Int repeats);
          ("jobs", J.Int r.Report.jobs);
          ("quick", J.Bool quick);
        ];
      0
  end

let provenance_line (r : Report.t) =
  Printf.sprintf "%s (seed %d, jobs %d, repeats %d, quick %b%s)" r.Report.generated
    r.Report.seed r.Report.jobs r.Report.repeats r.Report.quick
    (match List.assoc_opt "git_commit" r.Report.provenance with
    | Some c when c <> "unknown" ->
        ", commit " ^ String.sub c 0 (min 12 (String.length c))
    | _ -> "")

(* One line per experiment that carries a utilization block on either side:
   busy fraction and mean idle tail, old -> new, so a diff shows scheduling
   drift (e.g. skewed sharding getting worse) next to the rate verdicts. *)
let print_util_deltas obs deltas =
  let interesting =
    List.filter
      (fun (d : Report.delta) -> d.Report.old_util <> None || d.Report.new_util <> None)
      deltas
  in
  if interesting <> [] then begin
    let t =
      T.create
        [
          "experiment"; "busy frac (old)"; "busy frac (new)"; "idle tail ms (old)";
          "idle tail ms (new)"; "pool runs (new)";
        ]
    in
    let busy = function
      | None -> "-"
      | Some (u : Report.util) -> T.ff ~dec:3 u.Report.ut_busy_frac
    in
    let tail = function
      | None -> "-"
      | Some (u : Report.util) -> T.ff ~dec:2 u.Report.ut_idle_tail_ms
    in
    let runs = function None -> "-" | Some (u : Report.util) -> T.fi u.Report.ut_runs in
    List.iter
      (fun (d : Report.delta) ->
        T.add_row t
          [
            d.Report.d_id; busy d.Report.old_util; busy d.Report.new_util;
            tail d.Report.old_util; tail d.Report.new_util; runs d.Report.new_util;
          ])
      interesting;
    say obs "\n-- pool utilization (informational, never gated) --\n";
    say obs "%s" (T.render t)
  end

(* Exit codes: 0 clean (or --soft), 1 regression (wall, alloc or rate by
   default; one family only under --alloc-only / --rate-only), 2
   malformed/unreadable report — so CI can treat "slower" and "not a
   report" differently. *)
let cmd_bench_diff obs tolerance min_wall alloc_tolerance alloc_only rate_tolerance rate_only
    soft old_path new_path =
  match (Report.load old_path, Report.load new_path) with
  | Error m, _ | _, Error m ->
      Printf.eprintf "bench diff: malformed report: %s\n" m;
      2
  | Ok old_, Ok new_ ->
      say obs "old: %s\nnew: %s\n" (provenance_line old_) (provenance_line new_);
      List.iter
        (fun w -> Printf.eprintf "warning: %s\n" w)
        (Report.compat_warnings ~old_ ~new_);
      let deltas =
        Report.diff ~tolerance ~min_wall_s:min_wall ~alloc_tolerance ~rate_tolerance ~old_ ~new_
          ()
      in
      let t =
        T.create
          [
            "experiment"; "old median (s)"; "new median (s)"; "ratio"; "verdict";
            "old minor (w)"; "new minor (w)"; "alloc"; "rate ratio"; "rate";
          ]
      in
      List.iter
        (fun (d : Report.delta) ->
          T.add_row t
            [
              d.Report.d_id;
              T.ff ~dec:3 d.Report.old_median;
              T.ff ~dec:3 d.Report.new_median;
              T.ff ~dec:2 d.Report.ratio;
              (Report.verdict_name d.Report.verdict
              ^ if d.Report.note = "" then "" else " (" ^ d.Report.note ^ ")");
              T.ff ~dec:0 d.Report.old_minor_words;
              T.ff ~dec:0 d.Report.new_minor_words;
              (match d.Report.alloc_verdict with
              | None -> "-"
              | Some v ->
                  Report.verdict_name v
                  ^ if d.Report.alloc_note = "" then "" else " (" ^ d.Report.alloc_note ^ ")");
              T.ff ~dec:2 d.Report.rate_ratio;
              (match d.Report.rate_verdict with
              | None -> "-"
              | Some v ->
                  Report.verdict_name v
                  ^ if d.Report.rate_note = "" then "" else " (" ^ d.Report.rate_note ^ ")");
            ];
          event obs "bench.delta"
            ([
               ("id", J.String d.Report.d_id);
               ("verdict", J.String (Report.verdict_name d.Report.verdict));
               ("old_median_s", J.Float d.Report.old_median);
               ("new_median_s", J.Float d.Report.new_median);
               ("ratio", J.Float d.Report.ratio);
             ]
            @ (match d.Report.alloc_verdict with
              | None -> []
              | Some v ->
                  [
                    ("alloc_verdict", J.String (Report.verdict_name v));
                    ("old_minor_words", J.Float d.Report.old_minor_words);
                    ("new_minor_words", J.Float d.Report.new_minor_words);
                    ("alloc_ratio", J.Float d.Report.alloc_ratio);
                  ])
            @
            match d.Report.rate_verdict with
            | None -> []
            | Some v ->
                [
                  ("rate_verdict", J.String (Report.verdict_name v));
                  ("rate_ratio", J.Float d.Report.rate_ratio);
                  ("rate_note", J.String d.Report.rate_note);
                ]))
        deltas;
      say obs "%s" (T.render t);
      print_util_deltas obs deltas;
      if Report.alloc_skipped deltas then
        Printf.eprintf
          "warning: alloc verdict skipped where a side lacks an alloc block (pre-v3 report or \
           Memgc off); wall-time verdicts are unaffected\n";
      if Report.rate_skipped deltas then
        Printf.eprintf
          "warning: rate verdict skipped where the sides share no work kinds (pre-v4 report or \
           Metrics off); wall-time verdicts are unaffected\n";
      let wall_regs = Report.regressions deltas in
      let alloc_regs = Report.alloc_regressions deltas in
      let rate_regs = Report.rate_regressions deltas in
      if wall_regs <> [] then
        Printf.eprintf "%d experiment%s regressed on wall time: %s%s\n" (List.length wall_regs)
          (if List.length wall_regs = 1 then "" else "s")
          (String.concat ", " (List.map (fun (d : Report.delta) -> d.Report.d_id) wall_regs))
          (if alloc_only || rate_only then " (not failing on these)" else "");
      if alloc_regs <> [] then
        Printf.eprintf "%d experiment%s regressed on allocation: %s%s\n" (List.length alloc_regs)
          (if List.length alloc_regs = 1 then "" else "s")
          (String.concat ", " (List.map (fun (d : Report.delta) -> d.Report.d_id) alloc_regs))
          (if rate_only then " (--rate-only: not failing on these)" else "");
      if rate_regs <> [] then
        Printf.eprintf "%d experiment%s regressed on throughput: %s%s\n" (List.length rate_regs)
          (if List.length rate_regs = 1 then "" else "s")
          (String.concat ", " (List.map (fun (d : Report.delta) -> d.Report.d_id) rate_regs))
          (if alloc_only then " (--alloc-only: not failing on these)" else "");
      let failing =
        if alloc_only then alloc_regs
        else if rate_only then rate_regs
        else wall_regs @ alloc_regs @ rate_regs
      in
      let code = if failing = [] || soft then 0 else 1 in
      (* One machine-readable summary event closes every diff: CI and the
         ledger tooling read the verdict here instead of scraping stderr. *)
      let ids l = J.List (List.map (fun (d : Report.delta) -> J.String d.Report.d_id) l) in
      event obs "bench.verdict"
        [
          ("wall_regressions", ids wall_regs);
          ("alloc_regressions", ids alloc_regs);
          ("rate_regressions", ids rate_regs);
          ("failing", ids failing);
          ("soft", J.Bool soft);
          ("exit_code", J.Int code);
        ];
      if failing = [] then
        say obs
          "no %sregressions (wall tolerance %.0f%%, floor %.0fms; alloc tolerance %.1f%%; rate \
           tolerance %.0f%%)\n"
          (if alloc_only then "allocation " else if rate_only then "throughput " else "")
          (100.0 *. tolerance) (1e3 *. min_wall)
          (100.0 *. alloc_tolerance) (100.0 *. rate_tolerance)
      else if soft then Printf.eprintf "(--soft: reporting only, not failing)\n";
      code

(* Per-experiment pool-utilization summary of a single report: how busy each
   worker slot was and how long the idle tail ran. Exit 2 on a malformed
   report, 0 otherwise (a report with no util blocks is not an error — it
   may predate wx-bench/4 or have been recorded with Metrics off). *)
let cmd_bench_util obs path =
  match Report.load path with
  | Error m ->
      Printf.eprintf "bench util: malformed report: %s\n" m;
      2
  | Ok r ->
      say obs "report: %s\n" (provenance_line r);
      let with_util =
        List.filter_map
          (fun (e : Report.entry) ->
            match e.Report.util with Some u -> Some (e, u) | None -> None)
          r.Report.entries
      in
      if with_util = [] then begin
        say obs
          "no utilization blocks in %s (pre-wx-bench/4 report, or recorded with metrics off)\n"
          path;
        0
      end
      else begin
        let t =
          T.create
            [
              "experiment"; "pool runs"; "seq runs"; "busy frac"; "idle tail ms";
              "max tail ms"; "per-slot busy"; "per-slot chunks";
            ]
        in
        List.iter
          (fun ((e : Report.entry), (u : Report.util)) ->
            T.add_row t
              [
                e.Report.id;
                T.fi u.Report.ut_runs;
                T.fi u.Report.ut_seq_runs;
                T.ff ~dec:3 u.Report.ut_busy_frac;
                T.ff ~dec:2 u.Report.ut_idle_tail_ms;
                T.ff ~dec:2 u.Report.ut_max_idle_tail_ms;
                String.concat " "
                  (List.map
                     (fun (s : Report.util_slot) -> T.ff ~dec:2 s.Report.us_busy_frac)
                     u.Report.ut_slots);
                String.concat " "
                  (List.map
                     (fun (s : Report.util_slot) -> T.fi s.Report.us_chunks)
                     u.Report.ut_slots);
              ])
          with_util;
        say obs "%s" (T.render t);
        0
      end

(* ---- bench history (perf-trajectory ledger) ---- *)

module Ledger = Obs.Ledger

let default_ledger = "bench/ledger.ndjson"
let short_commit c = if String.length c > 10 then String.sub c 0 10 else c

let metric_fmt metric v =
  if Float.is_nan v then "-"
  else
    match metric with
    | Ledger.Wall -> T.ff ~dec:3 v
    | Ledger.Alloc -> T.ff ~dec:0 v
    | Ledger.Rate -> T.ff ~dec:1 v

(* Digest one report into the ledger. A re-record at the same commit
   replaces the old entry (Ledger.append), so running this in CI on every
   push keeps exactly one line per commit. Exit 2 on a malformed report or
   ledger — never silently drop history. *)
let cmd_history_append obs ledger_path report_path =
  match Report.load report_path with
  | Error m ->
      Printf.eprintf "bench history append: malformed report: %s\n" m;
      2
  | Ok r -> (
      let existing = if Sys.file_exists ledger_path then Ledger.load ledger_path else Ok [] in
      match existing with
      | Error m ->
          Printf.eprintf "bench history append: malformed ledger: %s\n" m;
          2
      | Ok entries ->
          let entry = Ledger.digest r in
          let replaced =
            entry.Ledger.l_commit <> "unknown"
            && List.exists
                 (fun (e : Ledger.entry) -> e.Ledger.l_commit = entry.Ledger.l_commit)
                 entries
          in
          let entries' = Ledger.append entries entry in
          Ledger.save ledger_path entries';
          say obs "%s %s (%s%s, %d experiment%s) -> %s (%d entr%s)\n"
            (if replaced then "replaced" else "appended")
            (short_commit entry.Ledger.l_commit)
            entry.Ledger.l_generated
            (if entry.Ledger.l_dirty then ", dirty" else "")
            (List.length entry.Ledger.l_exps)
            (if List.length entry.Ledger.l_exps = 1 then "" else "s")
            ledger_path (List.length entries')
            (if List.length entries' = 1 then "y" else "ies");
          event obs "history.append"
            [
              ("ledger", J.String ledger_path);
              ("commit", J.String entry.Ledger.l_commit);
              ("dirty", J.Bool entry.Ledger.l_dirty);
              ("replaced", J.Bool replaced);
              ("entries", J.Int (List.length entries'));
            ];
          0)

(* Longitudinal view of one metric: a value series per experiment (per work
   kind for rates) across every ledger entry, with a sparkline so a slow
   drift is visible at a glance in a terminal. *)
let cmd_history_show obs metric exp_filter ledger_path =
  match Ledger.load ledger_path with
  | Error m ->
      Printf.eprintf "bench history show: %s\n" m;
      2
  | Ok [] ->
      say obs "empty ledger: %s\n" ledger_path;
      0
  | Ok entries ->
      let et =
        T.create
          [ "#"; "commit"; "dirty"; "generated"; "seed"; "quick"; "jobs"; "repeats"; "exps" ]
      in
      List.iteri
        (fun i (e : Ledger.entry) ->
          T.add_row et
            [
              T.fi i;
              short_commit e.Ledger.l_commit;
              (if e.Ledger.l_dirty then "yes" else "no");
              e.Ledger.l_generated;
              T.fi e.Ledger.l_seed;
              (if e.Ledger.l_quick then "yes" else "no");
              T.fi e.Ledger.l_jobs;
              T.fi e.Ledger.l_repeats;
              T.fi (List.length e.Ledger.l_exps);
            ])
        entries;
      say obs "-- ledger %s (%d entr%s, oldest first) --\n%s" ledger_path (List.length entries)
        (if List.length entries = 1 then "y" else "ies")
        (T.render et);
      let ids =
        match exp_filter with Some id -> [ id ] | None -> Ledger.exp_ids entries
      in
      let unit_name =
        match metric with
        | Ledger.Wall -> "median wall (s)"
        | Ledger.Alloc -> "minor words"
        | Ledger.Rate -> "units/sec"
      in
      let mt =
        T.create [ "experiment"; "kind"; "n"; "latest"; "min"; "max"; "oldest..newest" ]
      in
      let add_series id kind =
        let s =
          Ledger.series metric ?kind:(if kind = "" then None else Some kind) ~id entries
        in
        let known = List.filter (fun v -> not (Float.is_nan v)) s in
        let latest = match List.rev known with v :: _ -> v | [] -> Float.nan in
        T.add_row mt
          [
            id;
            (if kind = "" then "-" else kind);
            T.fi (List.length known);
            metric_fmt metric latest;
            (match known with
            | [] -> "-"
            | _ -> metric_fmt metric (List.fold_left Float.min infinity known));
            (match known with
            | [] -> "-"
            | _ -> metric_fmt metric (List.fold_left Float.max neg_infinity known));
            Ledger.sparkline s;
          ];
        event obs "history.series"
          [
            ("id", J.String id);
            ("metric", J.String (Ledger.metric_name metric));
            ("kind", J.String kind);
            ("values", J.List (List.map (fun v -> J.Float v) s));
          ]
      in
      List.iter
        (fun id ->
          match metric with
          | Ledger.Rate -> List.iter (add_series id) (Ledger.rate_kinds ~id entries)
          | Ledger.Wall | Ledger.Alloc -> add_series id "")
        ids;
      say obs "\n-- %s per experiment (%s) --\n%s" (Ledger.metric_name metric) unit_name
        (T.render mt);
      0

(* Trend gate: the newest ledger entry judged against the window that
   precedes it, with the diff's own noise posture per metric (see
   Ledger.gate). Exit codes mirror bench diff: 0 clean (or --soft), 1 a
   trend regression, 2 malformed ledger. *)
let cmd_history_gate obs tolerance min_wall alloc_tolerance rate_tolerance window soft
    ledger_path =
  match Ledger.load ledger_path with
  | Error m ->
      Printf.eprintf "bench history gate: %s\n" m;
      2
  | Ok [] ->
      say obs "empty ledger %s: nothing to gate\n" ledger_path;
      0
  | Ok entries ->
      let trends =
        Ledger.gate ~tolerance ~min_wall_s:min_wall ~alloc_tolerance ~rate_tolerance ~window
          entries
      in
      let newest = List.nth entries (List.length entries - 1) in
      say obs "gating %s (%s%s) against the %d preceding entr%s of %s\n"
        (short_commit newest.Ledger.l_commit)
        newest.Ledger.l_generated
        (if newest.Ledger.l_dirty then ", dirty" else "")
        (min (window - 1) (List.length entries - 1))
        (if min (window - 1) (List.length entries - 1) = 1 then "y" else "ies")
        ledger_path;
      let t =
        T.create
          [ "experiment"; "metric"; "kind"; "baseline"; "latest"; "ratio"; "verdict"; "window" ]
      in
      List.iter
        (fun (tr : Ledger.trend) ->
          T.add_row t
            [
              tr.Ledger.t_exp;
              Ledger.metric_name tr.Ledger.t_metric;
              (if tr.Ledger.t_kind = "" then "-" else tr.Ledger.t_kind);
              metric_fmt tr.Ledger.t_metric tr.Ledger.t_baseline;
              metric_fmt tr.Ledger.t_metric tr.Ledger.t_latest;
              (if Float.is_nan tr.Ledger.t_ratio then "-" else T.ff ~dec:2 tr.Ledger.t_ratio);
              (match tr.Ledger.t_verdict with
              | None -> "- (" ^ tr.Ledger.t_note ^ ")"
              | Some v ->
                  Report.verdict_name v
                  ^ if tr.Ledger.t_note = "" then "" else " (" ^ tr.Ledger.t_note ^ ")");
              Ledger.sparkline tr.Ledger.t_series;
            ];
          event obs "history.trend"
            [
              ("id", J.String tr.Ledger.t_exp);
              ("metric", J.String (Ledger.metric_name tr.Ledger.t_metric));
              ("kind", J.String tr.Ledger.t_kind);
              ( "verdict",
                match tr.Ledger.t_verdict with
                | None -> J.Null
                | Some v -> J.String (Report.verdict_name v) );
              ("baseline", J.Float tr.Ledger.t_baseline);
              ("latest", J.Float tr.Ledger.t_latest);
              ("ratio", J.Float tr.Ledger.t_ratio);
              ("note", J.String tr.Ledger.t_note);
            ])
        trends;
      say obs "%s" (T.render t);
      let regs = Ledger.regressions trends in
      let code = if regs = [] || soft then 0 else 1 in
      event obs "history.verdict"
        [
          ("ledger", J.String ledger_path);
          ("entries", J.Int (List.length entries));
          ("window", J.Int window);
          ( "regressions",
            J.List
              (List.map
                 (fun (tr : Ledger.trend) ->
                   J.String
                     (tr.Ledger.t_exp ^ "/"
                     ^ Ledger.metric_name tr.Ledger.t_metric
                     ^ if tr.Ledger.t_kind = "" then "" else "/" ^ tr.Ledger.t_kind))
                 regs) );
          ("soft", J.Bool soft);
          ("exit_code", J.Int code);
        ];
      if regs <> [] then begin
        Printf.eprintf "%d trend regression%s: %s\n" (List.length regs)
          (if List.length regs = 1 then "" else "s")
          (String.concat ", "
             (List.map
                (fun (tr : Ledger.trend) ->
                  Printf.sprintf "%s (%s%s)" tr.Ledger.t_exp
                    (Ledger.metric_name tr.Ledger.t_metric)
                    (if tr.Ledger.t_kind = "" then "" else " " ^ tr.Ledger.t_kind))
                regs));
        if soft then Printf.eprintf "(--soft: reporting only, not failing)\n"
      end
      else
        say obs "no trend regressions over the last %d entr%s\n"
          (min window (List.length entries))
          (if min window (List.length entries) = 1 then "y" else "ies");
      code

(* ---- prof ---- *)

(* Flattened hottest-spans view: self cost (cost inside the span but outside
   any recorded child) is what ranks, since child cost ranks on its own row.
   The ranking key is self time, or self minor words under --alloc. *)
type span_row = {
  sr_path : string;
  sr_calls : int;
  sr_dur_ns : int;
  sr_self_ns : int;
  sr_minor : int;
  sr_self_minor : int;
  sr_work : int;  (* Work units attributed to the span (inclusive of children) *)
}

let hottest_spans ~by_alloc =
  let rows = ref [] in
  let rec go prefix (s : Obs.Span.t) =
    let path = if prefix = "" then s.Obs.Span.name else prefix ^ "/" ^ s.Obs.Span.name in
    rows :=
      {
        sr_path = path;
        sr_calls = s.Obs.Span.calls;
        sr_dur_ns = s.Obs.Span.dur_ns;
        sr_self_ns = Obs.Span.self_ns s;
        sr_minor = s.Obs.Span.minor_words;
        sr_self_minor = Obs.Span.self_minor_words s;
        sr_work = s.Obs.Span.work_units;
      }
      :: !rows;
    List.iter (go path) (Obs.Span.children s)
  in
  List.iter (go "") (Obs.Span.root_spans ());
  let key r = if by_alloc then r.sr_self_minor else r.sr_self_ns in
  List.sort (fun a b -> compare (key b) (key a)) !rows

let print_hottest ~alloc ~top =
  let rows = hottest_spans ~by_alloc:alloc in
  let roots = Obs.Span.root_spans () in
  let total_ns = List.fold_left (fun acc s -> acc + s.Obs.Span.dur_ns) 0 roots in
  let total_minor = List.fold_left (fun acc s -> acc + s.Obs.Span.minor_words) 0 roots in
  let pct self total =
    if total = 0 then "-"
    else Printf.sprintf "%.1f%%" (100.0 *. float_of_int self /. float_of_int total)
  in
  (* Throughput of the span over its total (inclusive) duration: work counters
     move in whichever frame is innermost, so self time would undercount.
     Spans with no attributed work, or a zero/negative clock delta, render
     "-" rather than a meaningless number. *)
  let units_per_s r =
    if r.sr_work = 0 || r.sr_dur_ns <= 0 then "-"
    else Printf.sprintf "%.3g" (float_of_int r.sr_work /. Obs.Clock.ns_to_s r.sr_dur_ns)
  in
  let t =
    T.create
      (if alloc then
         [ "span"; "calls"; "total (words)"; "self (words)"; "self %"; "self (ms)"; "units/s" ]
       else [ "span"; "calls"; "total (ms)"; "self (ms)"; "self %"; "units/s" ])
  in
  List.iteri
    (fun i r ->
      if i < top then
        T.add_row t
          (if alloc then
             [
               r.sr_path; T.fi r.sr_calls; T.fi r.sr_minor; T.fi r.sr_self_minor;
               pct r.sr_self_minor total_minor;
               T.ff ~dec:3 (Obs.Clock.ns_to_ms r.sr_self_ns);
               units_per_s r;
             ]
           else
             [
               r.sr_path; T.fi r.sr_calls;
               T.ff ~dec:3 (Obs.Clock.ns_to_ms r.sr_dur_ns);
               T.ff ~dec:3 (Obs.Clock.ns_to_ms r.sr_self_ns);
               pct r.sr_self_ns total_ns;
               units_per_s r;
             ]))
    rows;
  Printf.printf "\n-- hottest spans (top %d of %d, by self %s) --\n"
    (min top (List.length rows))
    (List.length rows)
    (if alloc then "allocation" else "time");
  T.print t

let cmd_prof out folded top alloc rest inner_group =
  match rest with
  | [] ->
      Printf.eprintf
        "usage: wx prof [--out FILE] [--folded FILE] [--top K] [--alloc] -- <subcommand> [args]\n\
         (the '--' keeps the inner command's own flags out of prof's)\n";
      2
  | _ ->
      Obs.Metrics.enable ();
      Obs.Trace_export.enable ();
      if alloc then begin
        (* Per-span GC attribution plus the gc.heap counter track; the major
           alarm rides along so chrome://tracing shows major-cycle samples.
           Never done under bench record — the alarm itself allocates. *)
        Obs.Memgc.enable ();
        Obs.Memgc.install_alarm ()
      end;
      let argv = Array.of_list ("wx" :: rest) in
      let code = Cmdliner.Cmd.eval' ~argv inner_group in
      Obs.Trace_export.write out;
      let folded_note =
        match folded with
        | None -> ""
        | Some fpath -> (
            match Obs.Prof.rows_of_json (Obs.Trace_export.to_json ()) with
            | Error m ->
                Printf.eprintf "prof: --folded skipped: %s\n" m;
                ""
            | Ok rows ->
                Out_channel.with_open_text fpath (fun oc ->
                    Out_channel.output_string oc (Obs.Prof.folded rows));
                Printf.sprintf " and %s (collapsed stacks; feed to flamegraph.pl or speedscope)"
                  fpath)
      in
      (* A failed inner command still gets its artifacts (the partial trace
         often shows where it died) but not the span table — the spans of an
         aborted run rank noise — and prof's exit status is the inner one,
         so `wx prof -- cmd` gates exactly like `wx cmd` in scripts. *)
      if code = 0 then begin
        print_hottest ~alloc ~top;
        Printf.printf "\nwrote %s (load in chrome://tracing or ui.perfetto.dev)%s\n" out
          folded_note
      end
      else
        Printf.eprintf
          "prof: inner command failed (exit %d); wrote %s%s; hottest-span table suppressed\n"
          code out folded_note;
      code

(* Differential profile over two trace files: where did the self time go
   between OLD and NEW? Exit codes mirror bench diff: 0 clean (or --soft),
   1 a span regressed beyond both thresholds, 2 not a readable trace. *)
let cmd_prof_diff tolerance min_delta_ms top soft old_path new_path =
  let min_delta_us = 1e3 *. min_delta_ms in
  match (Obs.Prof.load old_path, Obs.Prof.load new_path) with
  | Error m, _ | _, Error m ->
      Printf.eprintf "prof diff: malformed trace: %s\n" m;
      2
  | Ok old_rows, Ok new_rows ->
      let deltas =
        Obs.Prof.diff_profiles ~old_:(Obs.Prof.profile old_rows)
          ~new_:(Obs.Prof.profile new_rows)
      in
      let regressed = Obs.Prof.pdelta_regressed ~tolerance ~min_delta_us in
      let t =
        T.create
          [
            "span"; "calls (old)"; "calls (new)"; "self old (ms)"; "self new (ms)";
            "Δself (ms)"; "Δself minor (w)"; "verdict";
          ]
      in
      List.iteri
        (fun i (d : Obs.Prof.pdelta) ->
          if i < top then
            T.add_row t
              [
                d.Obs.Prof.p_name;
                T.fi d.Obs.Prof.p_calls_old;
                T.fi d.Obs.Prof.p_calls_new;
                T.ff ~dec:3 (1e-3 *. d.Obs.Prof.p_old_self_us);
                T.ff ~dec:3 (1e-3 *. d.Obs.Prof.p_new_self_us);
                T.ff ~dec:3 (1e-3 *. d.Obs.Prof.p_delta_self_us);
                T.ff ~dec:0 d.Obs.Prof.p_delta_self_minor;
                (if regressed d then "regression"
                 else if d.Obs.Prof.p_delta_self_us < 0.0 then "improvement"
                 else "within-noise");
              ])
        deltas;
      Printf.printf "-- self-time deltas, regressions first (top %d of %d) --\n"
        (min top (List.length deltas))
        (List.length deltas);
      T.print t;
      let regs = List.filter regressed deltas in
      if regs = [] then begin
        Printf.printf
          "no span regressions (self-time tolerance %.0f%%, absolute floor %.1fms)\n"
          (100.0 *. tolerance) min_delta_ms;
        0
      end
      else begin
        Printf.eprintf "%d span%s regressed on self time: %s\n" (List.length regs)
          (if List.length regs = 1 then "" else "s")
          (String.concat ", " (List.map (fun (d : Obs.Prof.pdelta) -> d.Obs.Prof.p_name) regs));
        if soft then begin
          Printf.eprintf "(--soft: reporting only, not failing)\n";
          0
        end
        else 1
      end

(* ---- top (attach dashboard) ---- *)

(* `wx top ADDR` polls an exposition endpoint's /json page and renders a
   live dashboard: per-kind work rates with sparkline history, pool
   busy/idle attribution, and the progress gauges the heartbeat publishes.
   Rates are computed client-side from successive polls (same delta
   arithmetic the server uses for /metrics), so `wx top` never perturbs the
   server-side scrape window another monitor may be using. *)

let parse_addr addr =
  match String.rindex_opt addr ':' with
  | Some i ->
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      ((if host = "" then "127.0.0.1" else host), int_of_string_opt port)
  | None -> ("127.0.0.1", int_of_string_opt addr)

let top_num = function
  | Some (J.Int n) -> float_of_int n
  | Some (J.Float v) -> v
  | _ -> Float.nan

let top_rate r = if Float.is_finite r && r >= 0.0 then Printf.sprintf "%.3g/s" r else "-"

let top_eta s =
  if not (Float.is_finite s) || s < 0.0 then "-"
  else if s < 90.0 then Printf.sprintf "%.1fs" s
  else if s < 5400.0 then Printf.sprintf "%.1fm" (s /. 60.0)
  else Printf.sprintf "%.1fh" (s /. 3600.0)

(* One rendered frame. [history] accumulates per-kind rate series across
   polls (capped, oldest dropped) for the sparkline column; [prev] carries
   the previous poll's (timestamp, work totals) for the rate deltas. *)
let top_frame ~host ~port ~history ~prev j now =
  let buf = Buffer.create 1024 in
  let uptime = top_num (J.member "uptime_s" j) in
  let build = J.member "build" j in
  let commit =
    match Option.bind build (fun b -> Option.bind (J.member "commit" b) J.to_string_opt) with
    | Some c -> "  commit " ^ String.sub c 0 (min 10 (String.length c))
    | None -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "wx top — %s:%d  up %s%s\n" host port (top_eta uptime) commit);
  let work =
    match J.member "work" j with
    | Some (J.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> match v with J.Int n -> Some (k, n) | _ -> None)
          kvs
    | _ -> []
  in
  let rates = Obs.Expose.scrape_rates ~prev:!prev ~now_ns:now ~work in
  prev := Some (now, work);
  List.iter
    (fun (kind, r) ->
      let h = Option.value ~default:[] (Hashtbl.find_opt history kind) @ [ r ] in
      let h = if List.length h > 32 then List.tl h else h in
      Hashtbl.replace history kind h)
    rates;
  if work <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "\n  %-24s %12s %10s  %s\n" "work kind" "total" "rate" "history");
    List.iter
      (fun (kind, total) ->
        let r = match List.assoc_opt kind rates with Some r -> r | None -> Float.nan in
        let h = Option.value ~default:[] (Hashtbl.find_opt history kind) in
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %12d %10s  %s\n" kind total (top_rate r)
             (Ledger.sparkline h)))
      work
  end;
  let gauges =
    match Option.bind (J.member "metrics" j) (J.member "gauges") with
    | Some (J.Obj kvs) -> kvs
    | _ -> []
  in
  let g name = top_num (List.assoc_opt name gauges) in
  let busy = g "pool.util.busy_pct" in
  if Float.is_finite busy then begin
    let slot_prefix = "pool.util.slot_busy_pct." in
    let plen = String.length slot_prefix in
    let slots =
      List.sort compare
        (List.filter_map
           (fun (k, v) ->
             if String.length k > plen && String.sub k 0 plen = slot_prefix then
               Option.map
                 (fun i -> (i, top_num (Some v)))
                 (int_of_string_opt (String.sub k plen (String.length k - plen)))
             else None)
           gauges)
    in
    Buffer.add_string buf (Printf.sprintf "\n  pool busy %5.1f%%" busy);
    if slots <> [] then
      Buffer.add_string buf
        ("  per-slot "
        ^ String.concat " "
            (List.map (fun (i, v) -> Printf.sprintf "%d:%.0f%%" i v) slots));
    Buffer.add_char buf '\n'
  end;
  let cov = g "progress.coverage_pct" in
  let prate = g "progress.units_per_s" in
  if Float.is_finite cov || Float.is_finite prate then
    Buffer.add_string buf
      (Printf.sprintf "  progress %s  %s  eta %s\n"
         (if Float.is_finite cov then Printf.sprintf "%5.1f%%" cov else "-")
         (top_rate prate)
         (top_eta (g "progress.eta_s")));
  Buffer.contents buf

let cmd_top addr interval_ms frames once =
  match parse_addr addr with
  | _, None ->
      Printf.eprintf "top: cannot parse %S (expected PORT or HOST:PORT)\n" addr;
      2
  | host, Some port ->
      let frames = if once then 1 else frames in
      let interval_s = Float.max 0.05 (float_of_int interval_ms /. 1000.0) in
      let tty = (try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false) in
      let history : (string, float list) Hashtbl.t = Hashtbl.create 8 in
      let prev = ref None in
      exit_cleanly_on_signals ();
      let rec loop i =
        match Obs.Expose.http_get ~host ~port ~path:"/json" with
        | Error msg ->
            Printf.eprintf "top: %s:%d: %s\n" host port msg;
            1
        | Ok body -> (
            match J.of_string_opt body with
            | None ->
                Printf.eprintf "top: malformed JSON from %s:%d\n" host port;
                1
            | Some j ->
                let frame = top_frame ~host ~port ~history ~prev j (Obs.Clock.now_ns ()) in
                (* On a TTY in follow mode, repaint in place; piped (or
                   --once), append plain frames. *)
                if tty && frames <> 1 then print_string "\x1b[H\x1b[2J";
                print_string frame;
                flush stdout;
                if frames > 0 && i + 1 >= frames then 0
                else begin
                  Unix.sleepf interval_s;
                  loop (i + 1)
                end)
      in
      loop 0

(* ---- cmdliner wiring ---- *)

open Cmdliner

let family_arg = Arg.(required & pos 0 (some family_conv) None & info [] ~docv:"FAMILY")
let size_arg = Arg.(value & pos 1 int 64 & info [] ~docv:"SIZE")
let seed_arg = Arg.(value & opt int base_seed & info [ "seed" ] ~docv:"SEED")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~docv:"ALPHA")
let solver_arg = Arg.(value & opt string "all" & info [ "solver" ] ~docv:"SOLVER")
let protocol_arg = Arg.(value & opt string "decay" & info [ "protocol" ] ~docv:"PROTOCOL")
let seeds_arg = Arg.(value & opt int 10 & info [ "seeds" ] ~docv:"K")

let engine_arg =
  let doc =
    "Simulation engine: $(b,legacy) (boxed adjacency, transmitter scatter) or $(b,csr) \
     (flat CSR adjacency, receiver gather sharded across domains). Outcomes are \
     bit-identical; csr is the scale engine for million-node instances."
  in
  Arg.(value & opt string "legacy" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let json_arg =
  let doc = "Emit machine-readable NDJSON events on stdout; human text moves to stderr." in
  Arg.(value & flag & info [ "json" ] ~doc)

let metrics_arg =
  let doc = "Collect library metrics (counters, timers, spans) and report them at exit." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel expansion measures (default: $(b,WX_JOBS) if set, else \
     the runtime's recommended domain count). Results are identical at any value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let expose_arg =
  let doc =
    "Serve the live metrics registry over localhost HTTP on $(docv) (0 picks an ephemeral \
     port; $(b,WX_EXPOSE)=PORT does the same). GET /metrics returns Prometheus text \
     exposition, /json a snapshot; attach with $(b,wx top PORT). Never perturbs computed \
     values, witnesses, or the allocation gate."
  in
  Arg.(value & opt (some int) None & info [ "expose" ] ~docv:"PORT" ~doc)

(* Lift a command body (a term producing [obs -> int]) into one that carries
   the observability and parallelism flags and runs under the shared
   wrapper. *)
let with_obs cmd_name term =
  let open Term in
  const (fun json metrics jobs expose f -> run_cmd cmd_name json metrics jobs expose f)
  $ json_arg $ metrics_arg $ jobs_arg $ expose_arg $ term

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Graph statistics for a generated instance")
    (with_obs "info"
       Term.(const (fun family size seed obs -> cmd_info obs family size seed)
             $ family_arg $ size_arg $ seed_arg))

let expansion_cmd =
  Cmd.v (Cmd.info "expansion" ~doc:"Compute β, βw, βu (exact or witness certificates)")
    (with_obs "expansion"
       Term.(const (fun family size seed alpha obs -> cmd_expansion obs family size seed alpha)
             $ family_arg $ size_arg $ seed_arg $ alpha_arg))

let spokesmen_cmd =
  Cmd.v (Cmd.info "spokesmen" ~doc:"Run spokesmen-election solvers on a random frontier")
    (with_obs "spokesmen"
       Term.(const (fun family size seed solver obs -> cmd_spokesmen obs family size seed solver)
             $ family_arg $ size_arg $ seed_arg $ solver_arg))

let broadcast_cmd =
  Cmd.v (Cmd.info "broadcast" ~doc:"Simulate radio broadcast (Monte-Carlo)")
    (with_obs "broadcast"
       Term.(const (fun family size seed protocol seeds engine obs ->
                 cmd_broadcast obs family size seed protocol seeds engine)
             $ family_arg $ size_arg $ seed_arg $ protocol_arg $ seeds_arg $ engine_arg))

let core_cmd =
  Cmd.v (Cmd.info "core" ~doc:"Core-graph property report (Lemma 4.4)")
    (with_obs "core"
       Term.(const (fun s obs -> cmd_core obs s) $ Arg.(value & pos 0 int 64 & info [] ~docv:"S")))

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit the generated graph as Graphviz DOT on stdout")
    (with_obs "dot"
       Term.(const (fun family size seed obs -> cmd_dot obs family size seed)
             $ family_arg $ size_arg $ seed_arg))

let verify_paper_cmd =
  let quick = Arg.(value & flag & info [ "quick" ]) in
  Cmd.v
    (Cmd.info "verify-paper"
       ~doc:"Re-check every quantitative claim of the paper; exit 1 on any violation")
    (with_obs "verify-paper"
       Term.(const (fun quick seed obs -> cmd_verify_paper obs quick seed) $ quick $ seed_arg))

let schedule_cmd =
  Cmd.v (Cmd.info "schedule" ~doc:"Synthesize and certify an offline broadcast schedule")
    (with_obs "schedule"
       Term.(const (fun family size seed obs -> cmd_schedule obs family size seed)
             $ family_arg $ size_arg $ seed_arg))

let arboricity_cmd =
  Cmd.v (Cmd.info "arboricity" ~doc:"Exact arboricity via parametric flow")
    (with_obs "arboricity"
       Term.(const (fun family size seed obs -> cmd_arboricity obs family size seed)
             $ family_arg $ size_arg $ seed_arg))

(* ---- bench / prof wiring ---- *)

let bench_record_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Shrunken parameter grids.") in
  let repeats =
    Arg.(value & opt int 3
         & info [ "repeats"; "r" ] ~docv:"K"
             ~doc:"Wall-time samples per experiment (median-of-K is what diff compares).")
  in
  let only =
    Arg.(value & opt (some string) None
         & info [ "e"; "experiment" ] ~docv:"ID" ~doc:"Record a single experiment.")
  in
  let force =
    Arg.(value & flag
         & info [ "force"; "f" ] ~doc:"Overwrite $(b,--out) if it already exists.")
  in
  let out =
    Arg.(value & opt string "bench/baseline.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Report destination.")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run the experiment zoo and write a wx-bench/4 report (the committed baseline); \
             refuses to overwrite an existing file without --force")
    (with_obs "bench.record"
       Term.(const (fun quick repeats only force out obs ->
                 cmd_bench_record obs quick repeats only force out)
             $ quick $ repeats $ only $ force $ out))

let bench_diff_cmd =
  let tolerance =
    Arg.(value & opt float Obs.Report.default_tolerance
         & info [ "tolerance"; "t" ] ~docv:"FRAC"
             ~doc:"Relative median change needed to call a regression (default 0.25).")
  in
  let min_wall =
    Arg.(value & opt float Obs.Report.default_min_wall_s
         & info [ "min-wall" ] ~docv:"SECONDS"
             ~doc:"Experiments with both medians under this floor are always within noise.")
  in
  let alloc_tolerance =
    Arg.(value & opt float Obs.Report.default_alloc_tolerance
         & info [ "alloc-tolerance" ] ~docv:"FRAC"
             ~doc:"Relative minor-words change needed to call an allocation regression \
                   (default 0.01 — minor words are deterministic, so no noise floor applies).")
  in
  let alloc_only =
    Arg.(value & flag
         & info [ "alloc-only" ]
             ~doc:"Fail (exit 1) only on allocation regressions; wall-time regressions are \
                   still reported but do not affect the exit code. Lets CI run a hard alloc \
                   gate next to a soft wall-time gate.")
  in
  let rate_tolerance =
    Arg.(value & opt float Obs.Report.default_rate_tolerance
         & info [ "rate-tolerance" ] ~docv:"FRAC"
             ~doc:"Relative units/sec drop needed to call a throughput regression (default \
                   0.25). Like the wall gate it is noise-aware: the per-kind rate ranges must \
                   also be disjoint, and experiments under the wall floor never fire.")
  in
  let rate_only =
    Arg.(value & flag
         & info [ "rate-only" ]
             ~doc:"Fail (exit 1) only on throughput regressions; wall-time and allocation \
                   regressions are still reported but do not affect the exit code.")
  in
  let soft =
    Arg.(value & flag
         & info [ "soft" ]
             ~doc:"Report regressions but exit 0 (CI soft gate); malformed reports still exit 2.")
  in
  let old_path = Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json") in
  let new_path = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two wx-bench reports; exit 1 on a regression, 2 on a malformed report")
    (with_obs "bench.diff"
       Term.(const (fun tolerance min_wall alloc_tolerance alloc_only rate_tolerance rate_only
                        soft o n obs ->
                 cmd_bench_diff obs tolerance min_wall alloc_tolerance alloc_only rate_tolerance
                   rate_only soft o n)
             $ tolerance $ min_wall $ alloc_tolerance $ alloc_only $ rate_tolerance $ rate_only
             $ soft $ old_path $ new_path))

let bench_util_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"REPORT.json") in
  Cmd.v
    (Cmd.info "util"
       ~doc:"Per-experiment pool-utilization summary of one wx-bench report (worker busy \
             fractions, idle tail); exit 2 on a malformed report")
    (with_obs "bench.util" Term.(const (fun p obs -> cmd_bench_util obs p) $ path))

(* ---- bench history wiring ---- *)

let ledger_arg =
  Arg.(value & opt string default_ledger
       & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Ledger file (wx-ledger/1 NDJSON, one entry per recorded commit).")

let metric_conv =
  let parse = function
    | "wall" -> Ok Ledger.Wall
    | "alloc" -> Ok Ledger.Alloc
    | "rate" -> Ok Ledger.Rate
    | s -> Error (`Msg (Printf.sprintf "unknown metric %S (expected wall, alloc or rate)" s))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Ledger.metric_name m))

let bench_history_append_cmd =
  let report = Arg.(required & pos 0 (some string) None & info [] ~docv:"REPORT.json") in
  Cmd.v
    (Cmd.info "append"
       ~doc:"Digest one wx-bench report into the ledger (replacing any existing entry for the \
             same commit); exit 2 on a malformed report or ledger")
    (with_obs "bench.history.append"
       Term.(const (fun ledger report obs -> cmd_history_append obs ledger report)
             $ ledger_arg $ report))

let bench_history_show_cmd =
  let metric =
    Arg.(value & opt metric_conv Ledger.Wall
         & info [ "metric"; "m" ] ~docv:"METRIC"
             ~doc:"Series to render: $(b,wall) (median seconds), $(b,alloc) (minor words) or \
                   $(b,rate) (units/sec per work kind).")
  in
  let exp =
    Arg.(value & opt (some string) None
         & info [ "e"; "experiment" ] ~docv:"ID" ~doc:"Show a single experiment.")
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Render the ledger: entries oldest-first, then one value series + sparkline per \
             experiment for the chosen metric; exit 2 on a malformed ledger")
    (with_obs "bench.history.show"
       Term.(const (fun metric exp ledger obs -> cmd_history_show obs metric exp ledger)
             $ metric $ exp $ ledger_arg))

let bench_history_gate_cmd =
  let tolerance =
    Arg.(value & opt float Obs.Report.default_tolerance
         & info [ "tolerance"; "t" ] ~docv:"FRAC"
             ~doc:"Relative wall-trend change needed to call a regression (default 0.25).")
  in
  let min_wall =
    Arg.(value & opt float Obs.Report.default_min_wall_s
         & info [ "min-wall" ] ~docv:"SECONDS"
             ~doc:"Wall and rate trends where every sample sits under this floor never fire.")
  in
  let alloc_tolerance =
    Arg.(value & opt float Obs.Report.default_alloc_tolerance
         & info [ "alloc-tolerance" ] ~docv:"FRAC"
             ~doc:"Relative minor-words drift against the window median that fails the gate \
                   (default 0.01).")
  in
  let rate_tolerance =
    Arg.(value & opt float Obs.Report.default_rate_tolerance
         & info [ "rate-tolerance" ] ~docv:"FRAC"
             ~doc:"Relative units/sec drop against the window median that fails the gate \
                   (default 0.25).")
  in
  let window =
    Arg.(value & opt int Ledger.default_window
         & info [ "window"; "w" ] ~docv:"K"
             ~doc:"Entries considered: the newest is the candidate, the preceding K-1 the \
                   baseline window (default 8).")
  in
  let soft =
    Arg.(value & flag
         & info [ "soft" ]
             ~doc:"Report trend regressions but exit 0 (CI soft gate); a malformed ledger \
                   still exits 2.")
  in
  Cmd.v
    (Cmd.info "gate"
       ~doc:"Judge the newest ledger entry against the preceding window (noise-aware wall and \
             rate trends, deterministic alloc drift); exit 1 on a trend regression, 2 on a \
             malformed ledger")
    (with_obs "bench.history.gate"
       Term.(const (fun tolerance min_wall alloc_tolerance rate_tolerance window soft ledger
                        obs ->
                 cmd_history_gate obs tolerance min_wall alloc_tolerance rate_tolerance window
                   soft ledger)
             $ tolerance $ min_wall $ alloc_tolerance $ rate_tolerance $ window $ soft
             $ ledger_arg))

let bench_history_cmd =
  Cmd.group
    (Cmd.info "history"
       ~doc:"Perf-trajectory ledger: append report digests, render series, gate trends")
    [ bench_history_append_cmd; bench_history_show_cmd; bench_history_gate_cmd ]

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Performance-trajectory tools: record baselines, diff reports, utilization, \
             longitudinal history")
    [ bench_record_cmd; bench_diff_cmd; bench_util_cmd; bench_history_cmd ]

let top_cmd =
  let addr =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ADDR" ~doc:"Endpoint to attach to: PORT or HOST:PORT.")
  in
  let interval =
    Arg.(value & opt int 1000
         & info [ "interval-ms"; "i" ] ~docv:"MS" ~doc:"Poll interval (default 1000).")
  in
  let frames =
    Arg.(value & opt int 0
         & info [ "frames" ] ~docv:"K" ~doc:"Stop after K frames (default: until interrupted).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Render a single frame and exit (shorthand for --frames 1).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Attach to a running --expose endpoint: live work rates with sparkline history, \
             pool busy/idle attribution, coverage/ETA")
    Term.(const cmd_top $ addr $ interval $ frames $ once)

let base_cmds =
  [
    info_cmd; expansion_cmd; spokesmen_cmd; broadcast_cmd; core_cmd; arboricity_cmd;
    schedule_cmd; verify_paper_cmd; dot_cmd;
  ]

let prof_diff_cmd =
  let tolerance =
    Arg.(value & opt float Obs.Prof.default_self_tolerance
         & info [ "tolerance"; "t" ] ~docv:"FRAC"
             ~doc:"Relative self-time growth needed to call a span regression (default 0.25).")
  in
  let min_delta =
    Arg.(value & opt float 1.0
         & info [ "min-self" ] ~docv:"MS"
             ~doc:"Absolute self-time growth floor in milliseconds (default 1.0); spans \
                   gaining less never fire, however large the ratio.")
  in
  let top =
    Arg.(value & opt int 20 & info [ "top"; "k" ] ~docv:"K" ~doc:"Rows in the delta table.")
  in
  let soft =
    Arg.(value & flag
         & info [ "soft" ]
             ~doc:"Report span regressions but exit 0; a malformed trace still exits 2.")
  in
  let old_path = Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.trace") in
  let new_path = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.trace") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Differential profile of two Chrome-trace files (wx prof --out): per-span \
             self-time and self-allocation deltas, regressions first; exit 1 when a span \
             regressed beyond both thresholds, 2 on a malformed trace")
    Term.(const cmd_prof_diff $ tolerance $ min_delta $ top $ soft $ old_path $ new_path)

let prof_cmd =
  let out =
    Arg.(value & opt string "wx-trace.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Chrome trace-event destination.")
  in
  let folded =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Also write collapsed stacks (one $(b,frame;frame;leaf self_us) line per \
                   stack) for flamegraph.pl or speedscope.")
  in
  let top =
    Arg.(value & opt int 12
         & info [ "top"; "k" ] ~docv:"K" ~doc:"Rows in the hottest-spans table.")
  in
  let alloc =
    Arg.(value & flag
         & info [ "alloc" ]
             ~doc:"Also attribute GC work: rank the hottest spans by self-allocation (minor \
                   words) and add gc.heap / gc.major counter tracks to the trace.")
  in
  let rest =
    Arg.(value & pos_all string []
         & info [] ~docv:"SUBCOMMAND"
             ~doc:"Inner wx invocation; put it after '--' so its flags reach it, e.g. \
                   $(b,wx prof -- expansion hypercube 16 --jobs 4).")
  in
  let inner_group = Cmd.group (Cmd.info "wx" ~doc:"(under wx prof)") base_cmds in
  (* A group with a default term: `wx prof diff A B` dispatches to the
     subcommand, while the documented `wx prof -- <cmd>` form still reaches
     the default (the `--` keeps the inner command name from being taken
     for a prof subcommand). *)
  Cmd.group
    ~default:
      Term.(const (fun out folded top alloc rest -> cmd_prof out folded top alloc rest inner_group)
            $ out $ folded $ top $ alloc $ rest)
    (Cmd.info "prof"
       ~doc:"Run a wx subcommand under Chrome tracing (write the trace, collapsed stacks and \
             the hottest spans), or diff two traces")
    [ prof_diff_cmd ]

let () =
  let doc = "wireless-expanders command-line tool" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "wx" ~doc) (base_cmds @ [ top_cmd; bench_cmd; prof_cmd ])))
