module Rng = Wx_util.Rng

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: n must be >= 3";
  Graph.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Gen.path";
  Graph.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Gen.star";
  Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = 0 to b - 1 do
      es := (u, a + v) :: !es
    done
  done;
  Graph.of_edges (a + b) !es

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid";
  let idx x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then es := (idx x y, idx (x + 1) y) :: !es;
      if y + 1 < h then es := (idx x y, idx x (y + 1)) :: !es
    done
  done;
  Graph.of_edges (w * h) !es

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Gen.torus: both sides must be >= 3";
  let idx x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      es := (idx x y, idx ((x + 1) mod w) y) :: !es;
      es := (idx x y, idx x ((y + 1) mod h)) :: !es
    done
  done;
  Graph.of_edges (w * h) !es

let hypercube d =
  if d < 1 || d > 20 then invalid_arg "Gen.hypercube";
  let n = 1 lsl d in
  let es = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let w = v lxor (1 lsl b) in
      if w > v then es := (v, w) :: !es
    done
  done;
  Graph.of_edges n !es

let binary_tree depth =
  if depth < 0 || depth > 25 then invalid_arg "Gen.binary_tree";
  let n = (1 lsl (depth + 1)) - 1 in
  let internal = (1 lsl depth) - 1 in
  let es = ref [] in
  for v = 0 to internal - 1 do
    es := (v, (2 * v) + 1) :: (v, (2 * v) + 2) :: !es
  done;
  Graph.of_edges n !es

let gnp rng n p =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then es := (u, v) :: !es
    done
  done;
  Graph.of_edges n !es

let gnm rng n m =
  if n < 2 && m > 0 then invalid_arg "Gen.gnm: no edges fit on < 2 vertices";
  if m < 0 then invalid_arg "Gen.gnm: negative m";
  (* Max simple-edge count without n*(n-1) overflow for huge n: for
     n >= 2^31 every m that fits in memory is fine anyway. *)
  if n < 1 lsl 31 && m > n * (n - 1) / 2 then
    invalid_arg "Gen.gnm: m exceeds the simple-graph maximum";
  (* Rejection-sample m distinct edges: O(m) expected draws for the sparse
     regime this exists for (m = O(n)), vs gnp's O(n²) coin flips. Keys
     pack as min·n + max, which stays within native int for n ≤ 2^31. *)
  let seen = Hashtbl.create (2 * m) in
  let es = ref [] in
  let have = ref 0 in
  while !have < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = if u < v then (u * n) + v else (v * n) + u in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        es := (u, v) :: !es;
        incr have
      end
    end
  done;
  Graph.of_edges n !es

let random_regular_config rng n d =
  if d >= n || d < 1 then invalid_arg "Gen.random_regular_config: need 1 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular_config: n*d must be even";
  (* Configuration model with simplification: pair the n·d half-edge stubs
     uniformly and simply DROP self-loops (duplicates collapse inside
     of_edges). Degrees come out ≤ d with the deficit vanishing for sparse
     d — the standard near-regular generator when exact regularity is not
     worth the repair loop at n = 10^6+. *)
  let stubs = Array.init (n * d) (fun i -> i / d) in
  Rng.shuffle rng stubs;
  let es = ref [] in
  for i = 0 to (n * d / 2) - 1 do
    let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
    if u <> v then es := (u, v) :: !es
  done;
  Graph.of_edges n !es

let random_regular rng n d =
  if d >= n || d < 1 then invalid_arg "Gen.random_regular: need 1 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n*d must be even";
  (* Configuration model with edge-swap repair: pair up the n·d half-edge
     stubs uniformly, then fix self-loops and duplicate edges by swapping a
     bad pair's endpoint with a random other pair (the standard repair that
     keeps the degree sequence intact). Restarting instead would need
     exp(Θ(d²)) attempts for d ≳ 5. *)
  let stubs = Array.init (n * d) (fun i -> i / d) in
  Rng.shuffle rng stubs;
  let pairs = n * d / 2 in
  let a i = stubs.(2 * i) and b i = stubs.((2 * i) + 1) in
  let key u v = if u < v then (u * n) + v else (v * n) + u in
  let counts = Hashtbl.create (n * d) in
  let incr_edge u v =
    let k = key u v in
    Hashtbl.replace counts k (1 + try Hashtbl.find counts k with Not_found -> 0)
  in
  let decr_edge u v =
    let k = key u v in
    let c = Hashtbl.find counts k in
    if c = 1 then Hashtbl.remove counts k else Hashtbl.replace counts k (c - 1)
  in
  let bad i = a i = b i || Hashtbl.find counts (key (a i) (b i)) > 1 in
  for i = 0 to pairs - 1 do
    if a i <> b i then incr_edge (a i) (b i)
  done;
  let budget = ref (200 * n * d) in
  let count u v = try Hashtbl.find counts (key u v) with Not_found -> 0 in
  let do_swap i j =
    if a i <> b i then decr_edge (a i) (b i);
    if a j <> b j then decr_edge (a j) (b j);
    let tmp = stubs.((2 * i) + 1) in
    stubs.((2 * i) + 1) <- stubs.((2 * j) + 1);
    stubs.((2 * j) + 1) <- tmp;
    if a i <> b i then incr_edge (a i) (b i);
    if a j <> b j then incr_edge (a j) (b j)
  in
  (* Repair one bad pair: prefer a partner j for which the swap makes both
     resulting pairs simple and fresh; fall back to a random shake if none
     of the sampled partners works. *)
  let fix_pair i =
    let attempts = min pairs 400 in
    let rec try_partner k =
      if k = 0 then do_swap i (Rng.int rng pairs)
      else begin
        let j = Rng.int rng pairs in
        let u1 = a i and v1 = b j and u2 = a j and v2 = b i in
        let fresh =
          j <> i && u1 <> v1 && u2 <> v2
          && count u1 v1 = 0
          && count u2 v2 = 0
          && not (u1 = u2 && v1 = v2)
          && not (u1 = v2 && v1 = u2)
        in
        if fresh then do_swap i j else try_partner (k - 1)
      end
    in
    try_partner attempts
  in
  let rec repair () =
    let dirty = ref false in
    for i = 0 to pairs - 1 do
      if bad i then begin
        if !budget <= 0 then failwith "Gen.random_regular: repair budget exhausted";
        decr budget;
        dirty := true;
        fix_pair i
      end
    done;
    if !dirty then repair ()
  in
  repair ();
  let es = ref [] in
  for i = 0 to pairs - 1 do
    es := (a i, b i) :: !es
  done;
  Graph.of_edges n !es

let random_bipartite_sdeg rng ~s ~n ~d =
  if d > n then invalid_arg "Gen.random_bipartite_sdeg: d > n";
  let es = ref [] in
  for u = 0 to s - 1 do
    let nbrs = Rng.sample_without_replacement rng n d in
    Array.iter (fun w -> es := (u, w) :: !es) nbrs
  done;
  Bipartite.of_edges ~s ~n !es

let margulis m =
  if m < 2 then invalid_arg "Gen.margulis";
  let idx x y = (((y mod m) + m) mod m * m) + (((x mod m) + m) mod m) in
  let b = Builder.create (m * m) in
  for x = 0 to m - 1 do
    for y = 0 to m - 1 do
      let v = idx x y in
      let targets =
        [ idx (x + y) y; idx (x + y + 1) y; idx x (y + x); idx x (y + x + 1) ]
      in
      List.iter (fun w -> if w <> v then Builder.add_edge b v w) targets
    done
  done;
  Builder.to_graph b

let double_cover g =
  let n = Graph.n g in
  let es = ref [] in
  Graph.iter_edges g (fun u v ->
      es := (u, v + n) :: (v, u + n) :: !es);
  Graph.of_edges (2 * n) !es

let bipartite_matching rng n =
  if n < 1 then invalid_arg "Gen.bipartite_matching";
  let perm = Rng.permutation rng n in
  Bipartite.of_edges ~s:n ~n (List.init n (fun i -> (i, perm.(i))))

let lollipop clique tail =
  if clique < 3 || tail < 1 then invalid_arg "Gen.lollipop";
  let es = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      es := (u, v) :: !es
    done
  done;
  es := (0, clique) :: !es;
  for i = 0 to tail - 2 do
    es := (clique + i, clique + i + 1) :: !es
  done;
  Graph.of_edges (clique + tail) !es

let barbell k =
  if k < 3 then invalid_arg "Gen.barbell";
  let es = ref [] in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      es := (u, v) :: !es;
      es := (k + u, k + v) :: !es
    done
  done;
  es := (0, k) :: !es;
  Graph.of_edges (2 * k) !es

let barabasi_albert rng n m =
  if m < 1 || n <= m then invalid_arg "Gen.barabasi_albert: need n > m >= 1";
  (* Endpoint pool: each edge contributes both endpoints, so sampling the
     pool uniformly is degree-proportional sampling. Seed with a K_{m+1}. *)
  let pool = ref [] in
  let es = ref [] in
  for u = 0 to m do
    for v = u + 1 to m do
      es := (u, v) :: !es;
      pool := u :: v :: !pool
    done
  done;
  let pool_arr = ref (Array.of_list !pool) in
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 50 * m do
      incr attempts;
      let target = (!pool_arr).(Rng.int rng (Array.length !pool_arr)) in
      if target <> v then Hashtbl.replace chosen target ()
    done;
    (* Fallback for pathological pools: link to arbitrary distinct earlier
       vertices. *)
    let u = ref 0 in
    while Hashtbl.length chosen < m do
      if !u <> v then Hashtbl.replace chosen !u ();
      incr u
    done;
    let fresh = Hashtbl.fold (fun t () acc -> t :: acc) chosen [] in
    List.iter
      (fun t ->
        es := (v, t) :: !es;
        pool_arr := Array.append !pool_arr [| v; t |])
      fresh
  done;
  Graph.of_edges n !es
