(** Flat compressed-sparse-row adjacency for simulation at scale.

    [Graph.t] stores one boxed int array per vertex — fine for the
    enumeration kernels, but a million-node radio round wants the whole
    adjacency in two flat arrays: [offsets] (length n+1) and [neighbors]
    (length 2m, rows packed back to back). Built once in O(n + m); rows
    keep [Graph.t]'s sorted order, so per-row folds agree between the two
    representations.

    When [--metrics] is on, building a layout sets the [csr.n] / [csr.m] /
    [csr.bytes] gauges (last build wins), so the memory footprint of large
    instances is observable via [/metrics] and [wx top]. *)

type t

val of_graph : Graph.t -> t
(** O(n + m) flattening of the adjacency. *)

val n : t -> int
val m : t -> int

val degree : t -> int -> int
(** [offsets.(v+1) - offsets.(v)]. *)

val offsets : t -> int array
(** Row-start index per vertex, length [n + 1]; [offsets.(n) = 2m].
    {b Do not mutate} — it is the layout's own storage. *)

val neighbors : t -> int array
(** Packed neighbor lists, length [2m] (and ≥ 1 so the empty graph still
    has a valid array). Row [v] is [offsets.(v) .. offsets.(v+1) - 1],
    sorted ascending. {b Do not mutate}. *)

val bytes : t -> int
(** Approximate heap footprint of the two payload arrays in bytes. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
