(** Graph generators: deterministic families and random models.

    These supply base expanders and low-arboricity controls for the
    experiments. Random generators take an explicit {!Wx_util.Rng.t}. *)

val cycle : int -> Graph.t
(** [cycle n], [n >= 3]. *)

val path : int -> Graph.t
val star : int -> Graph.t
(** [star n]: center 0, leaves [1..n-1]. *)

val complete : int -> Graph.t

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: left side [0..a-1], right side [a..a+b-1]. *)

val grid : int -> int -> Graph.t
(** [grid w h]: 4-neighbor grid; vertex [(x, y)] is [y*w + x]. Planar, so
    arboricity ≤ 3 — a key low-arboricity family for E12. *)

val torus : int -> int -> Graph.t
(** Wrap-around grid; 4-regular when both sides ≥ 3. *)

val hypercube : int -> Graph.t
(** [hypercube d]: the d-dimensional cube on 2^d vertices; d-regular with
    known good expansion. *)

val binary_tree : int -> Graph.t
(** [binary_tree depth]: perfect binary tree with [2^depth] leaves and
    [2^(depth+1) - 1] vertices; heap indexing (root 0, children 2i+1/2i+2). *)

val gnp : Wx_util.Rng.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n, p)]. O(n²) coin flips — use {!gnm} for sparse
    graphs at large [n]. *)

val gnm : Wx_util.Rng.t -> int -> int -> Graph.t
(** [gnm rng n m]: uniform simple graph with exactly [m] distinct edges,
    by rejection sampling — O(m) expected draws in the sparse regime, so
    million-node instances build without [gnp]'s O(n²) loop. Requires
    [0 <= m <= n(n-1)/2]. *)

val random_regular_config : Wx_util.Rng.t -> int -> int -> Graph.t
(** [random_regular_config rng n d]: configuration model {e with
    simplification} — stubs are paired uniformly, self-loops dropped,
    duplicate edges collapsed. Degrees are ≤ [d] (near-regular; the
    expected deficit is O(d²) edges total), in exchange for O(n·d) build
    time with no repair loop — the scale generator for [Sim_csr]
    instances. Requires [n*d] even and [1 <= d < n]. See
    {!random_regular} for the exactly-regular (repair-based) variant. *)

val random_regular : Wx_util.Rng.t -> int -> int -> Graph.t
(** [random_regular rng n d]: uniform-ish simple d-regular graph via the
    configuration model with edge-swap repair (requires [n*d] even,
    [d < n]). Raises [Failure] only if the repair budget is exhausted
    (never observed for d ≤ n/2). *)

val random_bipartite_sdeg : Wx_util.Rng.t -> s:int -> n:int -> d:int -> Bipartite.t
(** Random bipartite instance where each S-vertex picks [d] distinct random
    N-neighbors; requires [d <= n]. *)

val margulis : int -> Graph.t
(** Margulis–Gabber–Galil expander on [Z_m × Z_m]: vertex (x,y) connected
    via the four maps (x±y, y), (x±y+1, y), (x, y±x), (x, y±x+1) and their
    inverses, collapsed to a simple graph (degree ≤ 8). A classic explicit
    expander family. *)

val double_cover : Graph.t -> Graph.t
(** Bipartite double cover [G × K₂]: vertex [v] splits into [v] and [v+n];
    edge (u,v) becomes (u, v+n) and (v, u+n). Turns a non-bipartite
    expander into a bipartite one (used when the Section 4.3.3 remark asks
    for a bipartite host). *)

val bipartite_matching : Wx_util.Rng.t -> int -> Bipartite.t
(** [bipartite_matching rng n]: a perfect matching between two sides of
    size [n] under a uniformly random bijection. The regime where the
    paper's average-degree spokesmen bound beats Chlamtac–Weinstein's
    [|N|/log|S|] for large [n] (see §4.2.1 and experiment E9). *)

val lollipop : int -> int -> Graph.t
(** [lollipop clique tail]: a K_clique with a path of [tail] extra vertices
    hanging off vertex 0 — the classic bad-expansion control. *)

val barbell : int -> Graph.t
(** [barbell k]: two K_k cliques joined by a single edge; expansion and
    Cheeger constant collapse at the bridge. *)

val barabasi_albert : Wx_util.Rng.t -> int -> int -> Graph.t
(** [barabasi_albert rng n m]: preferential attachment, each new vertex
    linking to [m] existing ones weighted by degree. Heavy-tailed degrees —
    the skewed spokesmen workload where average-degree bounds shine.
    Requires [n > m >= 1]. *)
