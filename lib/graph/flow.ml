(* Arc storage: parallel arrays, arcs come in pairs (arc i's reverse is
   i lxor 1). *)

module Metrics = Wx_obs.Metrics

let m_bfs_phases = Metrics.counter "flow.bfs_phases"
let m_aug_paths = Metrics.counter "flow.augmenting_paths"
let m_flow_calls = Metrics.counter "flow.max_flow_calls"
let t_max_flow = Metrics.timer "flow.max_flow"

type t = {
  n : int;
  mutable head : int array; (* head.(v) = first arc index out of v, -1 none *)
  mutable nxt : int array;
  mutable dst : int array;
  mutable cap : int array;
  mutable arcs : int;
}

let infinite = max_int / 4

let create n =
  {
    n;
    head = Array.make n (-1);
    nxt = Array.make 16 (-1);
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    arcs = 0;
  }

let grow t =
  let len = Array.length t.nxt in
  if t.arcs + 2 > len then begin
    let nlen = 2 * len in
    let extend a fill =
      let b = Array.make nlen fill in
      Array.blit a 0 b 0 len;
      b
    in
    t.nxt <- extend t.nxt (-1);
    t.dst <- extend t.dst 0;
    t.cap <- extend t.cap 0
  end

let add_arc t u v c =
  grow t;
  let i = t.arcs in
  t.arcs <- i + 1;
  t.dst.(i) <- v;
  t.cap.(i) <- c;
  t.nxt.(i) <- t.head.(u);
  t.head.(u) <- i

let add_edge t u v cap =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Flow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Flow.add_edge: negative capacity";
  add_arc t u v cap;
  add_arc t v u 0

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Flow.max_flow: source = sink";
  let level = Array.make t.n (-1) in
  let it = Array.make t.n (-1) in
  let bfs () =
    Array.fill level 0 t.n (-1);
    level.(source) <- 0;
    let q = Queue.create () in
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      let a = ref t.head.(v) in
      while !a >= 0 do
        if t.cap.(!a) > 0 && level.(t.dst.(!a)) < 0 then begin
          level.(t.dst.(!a)) <- level.(v) + 1;
          Queue.add t.dst.(!a) q
        end;
        a := t.nxt.(!a)
      done
    done;
    level.(sink) >= 0
  in
  (* Blocking-flow DFS with the current-arc optimization. *)
  let rec dfs v pushed =
    if v = sink then pushed
    else begin
      let result = ref 0 in
      while !result = 0 && it.(v) >= 0 do
        let a = it.(v) in
        let w = t.dst.(a) in
        if t.cap.(a) > 0 && level.(w) = level.(v) + 1 then begin
          let d = dfs w (min pushed t.cap.(a)) in
          if d > 0 then begin
            t.cap.(a) <- t.cap.(a) - d;
            t.cap.(a lxor 1) <- t.cap.(a lxor 1) + d;
            result := d
          end
          else it.(v) <- t.nxt.(a)
        end
        else it.(v) <- t.nxt.(a)
      done;
      !result
    end
  in
  let flow = ref 0 in
  Metrics.incr m_flow_calls;
  let stamp = Metrics.start () in
  while bfs () do
    Metrics.incr m_bfs_phases;
    Array.blit t.head 0 it 0 t.n;
    let d = ref (dfs source infinite) in
    while !d > 0 do
      Metrics.incr m_aug_paths;
      flow := !flow + !d;
      d := dfs source infinite
    done
  done;
  Metrics.stop t_max_flow stamp;
  !flow

let min_cut_side t ~source =
  let seen = Array.make t.n false in
  let q = Queue.create () in
  seen.(source) <- true;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let a = ref t.head.(v) in
    while !a >= 0 do
      let w = t.dst.(!a) in
      if t.cap.(!a) > 0 && not seen.(w) then begin
        seen.(w) <- true;
        Queue.add w q
      end;
      a := t.nxt.(!a)
    done
  done;
  seen
