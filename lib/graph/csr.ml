(* Flat CSR adjacency: two int arrays instead of n boxed rows. Built once
   in O(n + m) from a Graph.t; the simulator's gather kernel then walks
   [neighbors.(offsets.(v) .. offsets.(v+1) - 1)] with no per-row bounds
   object and no pointer chase per vertex. Neighbor order within a row is
   the Graph.t order (sorted ascending), so anything that folds a row is
   deterministic and identical across the two representations. *)

module Metrics = Wx_obs.Metrics

let n_g = Metrics.gauge "csr.n"
let m_g = Metrics.gauge "csr.m"
let bytes_g = Metrics.gauge "csr.bytes"

type t = { n : int; m : int; offsets : int array; neighbors : int array }

let n t = t.n
let m t = t.m
let offsets t = t.offsets
let neighbors t = t.neighbors
let degree t v = t.offsets.(v + 1) - t.offsets.(v)

(* Words → bytes for the two payload arrays plus their headers; close
   enough for the footprint gauge (ignores the record itself). *)
let bytes t =
  (Array.length t.offsets + Array.length t.neighbors + 2) * (Sys.word_size / 8)

let of_graph g =
  let n = Graph.n g in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Graph.degree g v
  done;
  let neighbors = Array.make (max 1 offsets.(n)) 0 in
  for v = 0 to n - 1 do
    let row = Graph.neighbors g v in
    Array.blit row 0 neighbors offsets.(v) (Array.length row)
  done;
  let t = { n; m = Graph.m g; offsets; neighbors } in
  (* Footprint gauges: no-ops unless --metrics is on. Last-built wins,
     which is the right semantics for "what is the big instance I am
     simulating right now". *)
  Metrics.set n_g (float_of_int n);
  Metrics.set m_g (float_of_int t.m);
  Metrics.set bytes_g (float_of_int (bytes t));
  t

let iter_neighbors t v f =
  let stop = t.offsets.(v + 1) in
  for i = t.offsets.(v) to stop - 1 do
    f t.neighbors.(i)
  done
