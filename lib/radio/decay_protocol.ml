module Bitset = Wx_util.Bitset
module Rng = Wx_util.Rng
module Metrics = Wx_obs.Metrics

let m_coin_flips = Metrics.counter "radio.decay.coin_flips"
let m_transmit_decisions = Metrics.counter "radio.decay.transmit_decisions"

let phase_length n = Wx_util.Floatx.log2i_ceil (max 2 n) + 1

let make name k_opt =
  {
    Protocol.name;
    distributed = true;
    choose =
      (fun net rng ->
        let g = Network.graph net in
        let k = match k_opt with Some k -> k | None -> phase_length (Wx_graph.Graph.n g) in
        let round = Network.round net in
        let out = Bitset.create (Wx_graph.Graph.n g) in
        Bitset.iter
          (fun v ->
            let t0 = Network.informed_since net v in
            let slot = (round - t0) mod k in
            let p = 1.0 /. float_of_int (1 lsl slot) in
            Metrics.incr m_coin_flips;
            if Rng.bernoulli rng p then begin
              Metrics.incr m_transmit_decisions;
              Bitset.add_inplace out v
            end)
          (Network.informed net);
        out);
  }

let protocol = make "decay" None
let with_phase_length k = make (Printf.sprintf "decay-k%d" k) (Some k)

let globally_phased =
  {
    Protocol.name = "decay-global";
    distributed = true;
    choose =
      (fun net rng ->
        let g = Network.graph net in
        let k = phase_length (Wx_graph.Graph.n g) in
        let slot = Network.round net mod k in
        let p = 1.0 /. float_of_int (1 lsl slot) in
        let out = Bitset.create (Wx_graph.Graph.n g) in
        Bitset.iter
          (fun v ->
            Metrics.incr m_coin_flips;
            if Rng.bernoulli rng p then begin
              Metrics.incr m_transmit_decisions;
              Bitset.add_inplace out v
            end)
          (Network.informed net);
        out);
  }
