(** Broadcast simulation drivers.

    All runs are deterministic given the seed. The Monte-Carlo wrapper is
    how E11 reproduces the "in expectation and with high probability"
    qualifiers of the Section 5 lower bound. *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type outcome = {
  rounds : int;  (** rounds executed *)
  completed : bool;  (** everyone informed before the round limit *)
  informed_final : int;
  collisions : int;
  frontier_history : int array;  (** informed count after each round, index 0 = round 1 *)
}

type round_info = {
  index : int;  (** 1-based round number *)
  transmitters : int;
  newly_informed : int;
  informed_total : int;
  collisions_this_round : int;
}
(** The simulator's per-round record. When metrics are enabled these feed
    the [radio.*] counters; when an NDJSON sink is installed each round is
    emitted as a ["radio.round"] event; [Trace] accumulates them. *)

val round_limit : int -> int
(** The default round budget for an [n]-vertex instance: [64·n + 1024],
    computed overflow-safely (pins to [max_int] once [64·n] would wrap —
    a documented cap, unreachable for any instance that fits in memory).
    Shared by the legacy and CSR engines so both time out identically. *)

val run_until :
  ?max_rounds:int ->
  ?on_round:(round_info -> unit) ->
  Graph.t ->
  source:int ->
  Protocol.t ->
  Wx_util.Rng.t ->
  stop:(Network.t -> bool) ->
  Network.t * outcome
(** The shared simulation loop: run [protocol] until [stop] or the round
    limit, invoking [on_round] after every executed round. *)

val run :
  ?max_rounds:int ->
  ?on_round:(round_info -> unit) ->
  Graph.t ->
  source:int ->
  Protocol.t ->
  Wx_util.Rng.t ->
  outcome
(** Run until everyone is informed or the limit (default [64·n + 1024])
    is hit. *)

val rounds_to_inform :
  ?max_rounds:int -> Graph.t -> source:int -> target:int -> Protocol.t -> Wx_util.Rng.t -> int option
(** Rounds until a specific target vertex is informed ([None] on timeout) —
    used for relay-to-relay times on the broadcast chain. *)

val rounds_to_fraction :
  ?max_rounds:int ->
  Graph.t ->
  source:int ->
  subset:Bitset.t ->
  fraction:float ->
  Protocol.t ->
  Wx_util.Rng.t ->
  int option
(** Rounds until ≥ [fraction] of [subset] is informed — Corollary 5.1
    measures this on the core graph's N side. *)

val monte_carlo :
  ?max_rounds:int ->
  Graph.t ->
  source:int ->
  Protocol.t ->
  seeds:int list ->
  (int -> outcome) * outcome list
(** [(per_seed, all)]: run one broadcast per seed; [per_seed] re-runs a
    single seed (for drilling into an outlier). *)
