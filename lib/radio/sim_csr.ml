(* CSR round kernel: the scale engine behind `wx broadcast --engine csr`.

   The legacy Network/Sim pair is transmitter-centric: each round walks the
   transmitters' adjacency rows and scatters hear-counts into an array.
   This engine is receiver-centric (a gather): for each vertex it counts
   transmitting neighbors straight off the flat Csr layout, early-exiting
   at 2 (the model cannot distinguish "two" from "many"). Gather has two
   properties scatter lacks: each vertex's result is computed from reads
   only, so the scan shards over domains by contiguous vertex ranges with
   no write contention (each shard writes informed/since for its own
   vertices only), and a saturated network costs O(1) per vertex instead
   of O(m) per round.

   Determinism: protocols draw from the single Rng stream sequentially in
   ascending vertex order — the exact order Bitset.iter gives the legacy
   protocols — before the scan starts, and shard results are packed ints
   summed in range order by the pool (Pool.parallel_reduce_ranges cuts
   ranges by n alone). Outcomes are therefore bit-identical at any --jobs
   and to the legacy Sim on shared instances (regression-tested in
   test/test_sim_csr.ml).

   Allocation: all per-vertex state lives in preallocated Bytes/int
   arrays, the scan is a pair of top-level tail-recursive loops with int
   accumulators, and per-round results are packed into immediate ints —
   at jobs = 1 a steady-state flood step allocates zero minor words (the
   SIMSCALE bench asserts this under Memgc). *)

module Csr = Wx_graph.Csr
module Rng = Wx_util.Rng
module Intvec = Wx_util.Intvec
module Metrics = Wx_obs.Metrics
module Sink = Wx_obs.Sink
module Work = Wx_obs.Work
module Pool = Wx_par.Pool

type t = {
  csr : Csr.t;
  n : int;
  jobs : int;
  range : int;
  informed : Bytes.t; (* '\001' iff informed *)
  transmit : Bytes.t; (* '\001' iff transmitting this round; scratch *)
  since : int array; (* round informed, -1 if not *)
  mutable informed_count : int;
  mutable round : int;
  mutable collisions : int;
}

type protocol = { name : string; fill : t -> Rng.t -> unit }

let create ?jobs ?(range = 16384) csr ~source =
  let n = Csr.n csr in
  if source < 0 || source >= n then invalid_arg "Sim_csr.create: bad source";
  if range < 1 then invalid_arg "Sim_csr.create: range must be >= 1";
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Sim_csr.create: jobs must be >= 1"
    | None -> Pool.default_jobs ()
  in
  let informed = Bytes.make n '\000' in
  Bytes.set informed source '\001';
  let since = Array.make n (-1) in
  since.(source) <- 0;
  {
    csr;
    n;
    jobs;
    range;
    informed;
    transmit = Bytes.make n '\000';
    since;
    informed_count = 1;
    round = 0;
    collisions = 0;
  }

let inform t v =
  if v < 0 || v >= t.n then invalid_arg "Sim_csr.inform: bad vertex";
  if Bytes.get t.informed v = '\000' then begin
    Bytes.set t.informed v '\001';
    t.since.(v) <- t.round;
    t.informed_count <- t.informed_count + 1
  end

let csr t = t.csr
let round t = t.round
let collisions t = t.collisions
let informed_count t = t.informed_count
let all_informed t = t.informed_count = t.n
let is_informed t v = Bytes.get t.informed v = '\001'
let informed_since t v = t.since.(v)

(* ---- the round scan ----

   Top-level tail-recursive loops (not local closures) so a jobs=1 step
   performs no closure allocation. Results pack as
   [(newly lsl 31) lor collisions] — both counts are < 2^31 for any
   instance that fits in memory, and packed ints add componentwise, so
   plain [(+)] is the shard combine. *)

let mask31 = (1 lsl 31) - 1

(* Transmitting-neighbor count for one row slice, saturating at 2:
   transmit bytes are 0/1, so the char code IS the contribution. *)
let rec count_tx transmit nbrs i stop acc =
  if acc >= 2 || i >= stop then acc
  else
    count_tx transmit nbrs (i + 1) stop
      (acc + Char.code (Bytes.unsafe_get transmit (Array.unsafe_get nbrs i)))

(* Receiver scan over vertices [w, hi): a transmitter hears nothing; a
   silent vertex hearing >= 2 is a collision event (informed or not); a
   silent uninformed vertex hearing exactly 1 joins the informed set.
   Writes touch only informed/since slots inside [w, hi), so concurrent
   shards never race. [round] is the 1-based index of the round being
   executed. *)
let rec scan offsets nbrs informed transmit since round hi w acc =
  if w >= hi then acc
  else if Bytes.unsafe_get transmit w = '\001' then
    scan offsets nbrs informed transmit since round hi (w + 1) acc
  else begin
    let c =
      count_tx transmit nbrs (Array.unsafe_get offsets w) (Array.unsafe_get offsets (w + 1)) 0
    in
    if c >= 2 then scan offsets nbrs informed transmit since round hi (w + 1) (acc + 1)
    else if c = 1 && Bytes.unsafe_get informed w = '\000' then begin
      Bytes.unsafe_set informed w '\001';
      Array.unsafe_set since w round;
      scan offsets nbrs informed transmit since round hi (w + 1) (acc + (1 lsl 31))
    end
    else scan offsets nbrs informed transmit since round hi (w + 1) acc
  end

let step t protocol rng =
  Bytes.fill t.transmit 0 t.n '\000';
  protocol.fill t rng;
  t.round <- t.round + 1;
  let offsets = Csr.offsets t.csr and nbrs = Csr.neighbors t.csr in
  let packed =
    if t.jobs <= 1 || t.n <= t.range then
      scan offsets nbrs t.informed t.transmit t.since t.round t.n 0 0
    else
      Pool.parallel_reduce_ranges ~jobs:t.jobs ~range:t.range ~n:t.n ~init:0
        ~map:(fun ~lo ~hi -> scan offsets nbrs t.informed t.transmit t.since t.round hi lo 0)
        ~combine:( + ) ()
  in
  let newly = packed lsr 31 in
  t.informed_count <- t.informed_count + newly;
  t.collisions <- t.collisions + (packed land mask31);
  Work.add Work.vertex_scans t.n;
  Work.incr Work.radio_rounds;
  newly

(* ---- protocols ----

   Each fill draws from the rng for informed vertices in ascending vertex
   order — the order Bitset.iter hands the legacy protocols — so the two
   engines consume identical random streams and produce identical
   transmit sets round for round. Counter names are shared with the
   legacy protocol modules (registration is idempotent), so --metrics
   totals do not depend on the engine. *)

let m_coin_flips = Metrics.counter "radio.decay.coin_flips"
let m_transmit_decisions = Metrics.counter "radio.decay.transmit_decisions"

let flood = { name = "flood"; fill = (fun t _rng -> Bytes.blit t.informed 0 t.transmit 0 t.n) }

let decay_fill k_opt t rng =
  let k = match k_opt with Some k -> k | None -> Decay_protocol.phase_length t.n in
  let round = t.round in
  let informed = t.informed and transmit = t.transmit and since = t.since in
  for v = 0 to t.n - 1 do
    if Bytes.unsafe_get informed v = '\001' then begin
      let slot = (round - Array.unsafe_get since v) mod k in
      let p = 1.0 /. float_of_int (1 lsl slot) in
      Metrics.incr m_coin_flips;
      if Rng.bernoulli rng p then begin
        Metrics.incr m_transmit_decisions;
        Bytes.unsafe_set transmit v '\001'
      end
    end
  done

let decay = { name = "decay"; fill = decay_fill None }
let decay_with_phase_length k = { name = Printf.sprintf "decay-k%d" k; fill = decay_fill (Some k) }

let decay_globally_phased =
  {
    name = "decay-global";
    fill =
      (fun t rng ->
        let k = Decay_protocol.phase_length t.n in
        let slot = t.round mod k in
        let p = 1.0 /. float_of_int (1 lsl slot) in
        let informed = t.informed and transmit = t.transmit in
        for v = 0 to t.n - 1 do
          if Bytes.unsafe_get informed v = '\001' then begin
            Metrics.incr m_coin_flips;
            if Rng.bernoulli rng p then begin
              Metrics.incr m_transmit_decisions;
              Bytes.unsafe_set transmit v '\001'
            end
          end
        done);
  }

let uniform p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Sim_csr.uniform: p out of range";
  {
    name = Printf.sprintf "uniform-%.2f" p;
    fill =
      (fun t rng ->
        let informed = t.informed and transmit = t.transmit in
        for v = 0 to t.n - 1 do
          if Bytes.unsafe_get informed v = '\001' then
            if Rng.bernoulli rng p then Bytes.unsafe_set transmit v '\001'
        done);
  }

(* ---- the driver loop (mirrors Sim.run) ---- *)

let m_runs = Metrics.counter "radio.runs"
let m_rounds = Metrics.counter "radio.rounds"
let m_transmissions = Metrics.counter "radio.transmissions"
let m_collisions = Metrics.counter "radio.collisions"
let m_newly_informed = Metrics.counter "radio.newly_informed"
let m_collision_rounds = Metrics.counter "radio.collision_rounds"
let m_stalled_rounds = Metrics.counter "radio.stalled_rounds"

let rec count_ones b n i acc =
  if i >= n then acc else count_ones b n (i + 1) (acc + Char.code (Bytes.unsafe_get b i))

let run ?max_rounds ?jobs ?range ?on_round csr ~source protocol rng =
  let t = create ?jobs ?range csr ~source in
  let limit = match max_rounds with Some m -> m | None -> Sim.round_limit t.n in
  let history = Intvec.create () in
  Metrics.incr m_runs;
  let observing () = Metrics.is_enabled () || Sink.active () || on_round <> None in
  let finished = ref (all_informed t) in
  while (not !finished) && t.round < limit do
    let coll_before = t.collisions in
    let newly = step t protocol rng in
    Intvec.push history t.informed_count;
    if observing () then begin
      (* The transmit scratch still holds this round's transmitters (the
         next step clears it), so the cardinal is free to recover here. *)
      let info =
        {
          Sim.index = t.round;
          transmitters = count_ones t.transmit t.n 0 0;
          newly_informed = newly;
          informed_total = t.informed_count;
          collisions_this_round = t.collisions - coll_before;
        }
      in
      if Metrics.is_enabled () then begin
        Metrics.incr m_rounds;
        Metrics.add m_transmissions info.Sim.transmitters;
        Metrics.add m_collisions info.Sim.collisions_this_round;
        Metrics.add m_newly_informed info.Sim.newly_informed;
        if info.Sim.collisions_this_round > 0 then Metrics.incr m_collision_rounds;
        if info.Sim.transmitters > 0 && info.Sim.newly_informed = 0 then
          Metrics.incr m_stalled_rounds
      end;
      if Sink.active () then
        Sink.event "radio.round"
          [
            ("round", Wx_obs.Json.Int info.Sim.index);
            ("tx", Wx_obs.Json.Int info.Sim.transmitters);
            ("newly", Wx_obs.Json.Int info.Sim.newly_informed);
            ("informed", Wx_obs.Json.Int info.Sim.informed_total);
            ("collisions", Wx_obs.Json.Int info.Sim.collisions_this_round);
          ];
      match on_round with Some f -> f info | None -> ()
    end;
    finished := all_informed t
  done;
  {
    Sim.rounds = t.round;
    completed = all_informed t;
    informed_final = t.informed_count;
    collisions = t.collisions;
    frontier_history = Intvec.to_array history;
  }
