(** Synchronous radio network state (the model of [8], Section 1.1).

    Rounds are synchronous. In a round every processor either transmits or
    stays silent; a silent processor receives the message iff {e exactly
    one} of its neighbors transmits. Two or more transmitting neighbors
    collide, which is indistinguishable from silence — the simulator counts
    such collision events but never reveals them to protocols. *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type t

val create : Graph.t -> int -> t
(** [create g source]: only [source] holds the message at round 0. *)

val inform : t -> int -> unit
(** Seed an extra source: mark the vertex informed as of the current
    round (no-op if already informed). Multi-source broadcast, and the
    bench's handle for measuring the fully-saturated steady state. *)

val graph : t -> Graph.t
val round : t -> int
val informed : t -> Bitset.t
(** The set of processors holding the message. Do not mutate. *)

val is_informed : t -> int -> bool
val informed_count : t -> int
val all_informed : t -> bool

val informed_since : t -> int -> int
(** Round at which the vertex received the message (0 for the source);
    [-1] if not yet informed. Protocols may read this for their own
    vertex — it is local knowledge. *)

val collisions : t -> int
(** Total collision events so far (vertex-rounds hearing ≥ 2 transmitters). *)

val step : t -> Bitset.t -> Bitset.t
(** [step t transmitters] advances one round and returns the newly informed
    set. Raises [Invalid_argument] if some transmitter is not informed
    (a processor cannot transmit a message it does not hold).

    The returned bitset is the network's own scratch buffer, reused by the
    next [step] — read or copy it before stepping again; do not mutate.
    The round loop itself allocates nothing (the bench alloc gate relies
    on this). *)
