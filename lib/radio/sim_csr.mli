(** Scale engine: receiver-centric radio rounds over {!Wx_graph.Csr}.

    Functionally the same synchronous radio model as {!Network}/{!Sim}
    (silent vertex receives iff exactly one neighbor transmits; ≥ 2 is a
    counted collision), re-expressed as a {e gather}: each round scans all
    vertices, counting transmitting neighbors off the flat CSR layout with
    an early exit at 2. Per-vertex state lives in preallocated [Bytes]/int
    arrays and the scan is sharded across {!Wx_par.Pool} domains by
    contiguous vertex ranges.

    {2 Determinism}

    Protocol randomness is drawn sequentially (ascending vertex order — the
    order [Bitset.iter] gives the legacy protocols) before the scan, and
    shard results are packed ints summed in range order, so outcomes are
    bit-identical at any [jobs] {e and} identical to [Sim.run] with the
    same protocol, seed and instance (outcome, frontier history and
    collision counts — regression-tested).

    {2 Cost}

    A steady-state [step] at [jobs = 1] allocates zero minor words (flood;
    randomized protocols pay only the Rng's boxed draws), and a saturated
    network costs O(1) per vertex per round instead of the legacy scatter's
    O(m). Hot loops credit {!Wx_obs.Work.vertex_scans} and
    {!Wx_obs.Work.radio_rounds}. *)

type t
(** Mutable simulation state over one CSR instance. *)

type protocol = { name : string; fill : t -> Wx_util.Rng.t -> unit }
(** A protocol fills the transmit scratch (cleared before the call) for
    the upcoming round, drawing any randomness in ascending vertex order. *)

val create : ?jobs:int -> ?range:int -> Wx_graph.Csr.t -> source:int -> t
(** Fresh state: only [source] informed, round 0. [jobs] defaults to
    {!Wx_par.Pool.default_jobs} (a [jobs]-independent result either way);
    [range] (default 16384) is the shard granularity. *)

val step : t -> protocol -> Wx_util.Rng.t -> int
(** Execute one round; returns the newly-informed count. The scan runs
    sequentially when [jobs <= 1] or the instance fits one range —
    bypassing the pool keeps the steady-state step allocation-free. *)

val inform : t -> int -> unit
(** Seed an extra source: mark the vertex informed as of the current
    round (no-op if already informed). Multi-source broadcast, and the
    bench's handle for measuring the fully-saturated steady state. *)

val csr : t -> Wx_graph.Csr.t
val round : t -> int
val collisions : t -> int
val informed_count : t -> int
val all_informed : t -> bool
val is_informed : t -> int -> bool

val informed_since : t -> int -> int
(** Round the vertex was informed (0 for the source), -1 if not yet. *)

(** CSR counterparts of the legacy protocols, drawing identical random
    streams ([Flood], [Decay_protocol], [Uniform]); shared metric counter
    names, so [--metrics] totals do not depend on the engine. *)

val flood : protocol
val decay : protocol
val decay_with_phase_length : int -> protocol
val decay_globally_phased : protocol
val uniform : float -> protocol

val run :
  ?max_rounds:int ->
  ?jobs:int ->
  ?range:int ->
  ?on_round:(Sim.round_info -> unit) ->
  Wx_graph.Csr.t ->
  source:int ->
  protocol ->
  Wx_util.Rng.t ->
  Sim.outcome
(** Mirror of {!Sim.run} (same default {!Sim.round_limit} budget, same
    [radio.*] metrics, ["radio.round"] sink events and outcome record), so
    results compare by structural equality across engines. *)
