module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type round = {
  index : int;
  transmitters : int;
  newly_informed : int;
  informed_total : int;
  collisions_this_round : int;
}

type t = { rounds : round list; completed : bool; population : int }

(* Tracing is a view over the simulator's own per-round records: run the
   shared Sim loop with an [on_round] accumulator rather than duplicating
   the collision/frontier bookkeeping here. *)
let run ?(max_rounds = 4096) g ~source protocol rng =
  let rounds = ref [] in
  let on_round (r : Sim.round_info) =
    rounds :=
      {
        index = r.Sim.index;
        transmitters = r.Sim.transmitters;
        newly_informed = r.Sim.newly_informed;
        informed_total = r.Sim.informed_total;
        collisions_this_round = r.Sim.collisions_this_round;
      }
      :: !rounds
  in
  let net, _ = Sim.run_until ~max_rounds ~on_round g ~source protocol rng ~stop:Network.all_informed in
  { rounds = List.rev !rounds; completed = Network.all_informed net; population = Graph.n g }

let render ?(width = 24) t =
  let buf = Buffer.create 1024 in
  let total = max 1 t.population in
  List.iter
    (fun r ->
      let filled = r.informed_total * width / total in
      Buffer.add_string buf
        (Printf.sprintf "r %3d | tx %4d | + %4d | informed %5d | coll %4d | %s%s\n" r.index
           r.transmitters r.newly_informed r.informed_total r.collisions_this_round
           (String.make filled '#')
           (String.make (width - filled) '.')))
    t.rounds;
  Buffer.add_string buf (if t.completed then "completed\n" else "STALLED / round limit\n");
  Buffer.contents buf

let stalled_rounds t =
  List.length (List.filter (fun r -> r.transmitters > 0 && r.newly_informed = 0) t.rounds)
