module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Work = Wx_obs.Work

type t = {
  graph : Graph.t;
  informed : Bitset.t;
  since : int array;
  (* Scratch reused every round so the step loop allocates nothing: the
     per-receiver hear count (saturating at 2 — "many" and "two" are
     indistinguishable to the model) and the newly-informed set the step
     returns. [scatter] is the prebuilt per-transmitter closure — building
     it inside [step] would cost a closure per transmitter per round. The
     bench alloc gate watches this loop. *)
  heard : Bytes.t;
  newly : Bitset.t;
  scatter : int -> unit;
  mutable round : int;
  mutable collisions : int;
}

let create g source =
  if source < 0 || source >= Graph.n g then invalid_arg "Network.create: bad source";
  let informed = Bitset.create (Graph.n g) in
  Bitset.add_inplace informed source;
  let since = Array.make (Graph.n g) (-1) in
  since.(source) <- 0;
  let heard = Bytes.make (Graph.n g) '\000' in
  let bump w =
    let c = Bytes.unsafe_get heard w in
    if c < '\002' then Bytes.unsafe_set heard w (Char.unsafe_chr (Char.code c + 1))
  in
  {
    graph = g;
    informed;
    since;
    heard;
    newly = Bitset.create (Graph.n g);
    scatter = (fun v -> Graph.iter_neighbors g v bump);
    round = 0;
    collisions = 0;
  }

let inform t v =
  if v < 0 || v >= Graph.n t.graph then invalid_arg "Network.inform: bad vertex";
  if not (Bitset.mem t.informed v) then begin
    Bitset.add_inplace t.informed v;
    t.since.(v) <- t.round
  end

let graph t = t.graph
let round t = t.round
let informed t = t.informed
let is_informed t v = Bitset.mem t.informed v
let informed_count t = Bitset.cardinal t.informed
let all_informed t = informed_count t = Graph.n t.graph
let informed_since t v = t.since.(v)
let collisions t = t.collisions

let step t transmitters =
  if not (Bitset.subset transmitters t.informed) then
    invalid_arg "Network.step: transmitter without the message";
  let n = Graph.n t.graph in
  let heard = t.heard in
  Bytes.fill heard 0 n '\000';
  Bitset.iter t.scatter transmitters;
  t.round <- t.round + 1;
  let newly = t.newly in
  Bitset.clear_inplace newly;
  for w = 0 to n - 1 do
    let h = Bytes.unsafe_get heard w in
    if h >= '\002' && not (Bitset.mem transmitters w) then t.collisions <- t.collisions + 1;
    (* Reception: silent, exactly one transmitting neighbor. A transmitting
       processor hears nothing (it is busy transmitting). *)
    if h = '\001' && (not (Bitset.mem transmitters w)) && not (Bitset.mem t.informed w)
    then begin
      Bitset.add_inplace newly w;
      t.since.(w) <- t.round
    end
  done;
  Bitset.union_inplace t.informed newly;
  Work.add Work.vertex_scans n;
  newly
