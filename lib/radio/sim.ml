module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Rng = Wx_util.Rng
module Metrics = Wx_obs.Metrics
module Sink = Wx_obs.Sink

let m_runs = Metrics.counter "radio.runs"
let m_rounds = Metrics.counter "radio.rounds"
let m_transmissions = Metrics.counter "radio.transmissions"
let m_collisions = Metrics.counter "radio.collisions"
let m_newly_informed = Metrics.counter "radio.newly_informed"
let m_collision_rounds = Metrics.counter "radio.collision_rounds"
let m_stalled_rounds = Metrics.counter "radio.stalled_rounds"

type outcome = {
  rounds : int;
  completed : bool;
  informed_final : int;
  collisions : int;
  frontier_history : int array;
}

(* Everything the simulator knows about one completed round. This is the
   single per-round record: metrics, the NDJSON sink and Trace all feed off
   it, so the three views can never disagree. *)
type round_info = {
  index : int; (* 1-based *)
  transmitters : int;
  newly_informed : int;
  informed_total : int;
  collisions_this_round : int;
}

(* 64·n + 1024 with the multiply guarded: for n past ~max_int/64 (never
   simulatable anyway — the graph alone would not fit) the limit pins to
   max_int instead of wrapping negative and stopping the loop at round 0.
   Shared with Sim_csr so both engines time out identically. *)
let round_limit n = if n >= (max_int - 1024) / 64 then max_int else (64 * n) + 1024
let default_limit g = round_limit (Graph.n g)

let run_until ?max_rounds ?on_round g ~source protocol rng ~stop =
  let limit = match max_rounds with Some m -> m | None -> default_limit g in
  let net = Network.create g source in
  let history = Wx_util.Intvec.create () in
  let finished = ref (stop net) in
  Metrics.incr m_runs;
  (* Per-round bookkeeping costs a few cardinals; pay for it only when
     someone is watching (metrics, sink or an explicit callback). *)
  let observing () = Metrics.is_enabled () || Sink.active () || on_round <> None in
  while (not !finished) && Network.round net < limit do
    let coll_before = Network.collisions net in
    let tx = protocol.Protocol.choose net rng in
    let newly = Network.step net tx in
    Wx_util.Intvec.push history (Network.informed_count net);
    if observing () then begin
      let info =
        {
          index = Network.round net;
          transmitters = Bitset.cardinal tx;
          newly_informed = Bitset.cardinal newly;
          informed_total = Network.informed_count net;
          collisions_this_round = Network.collisions net - coll_before;
        }
      in
      if Metrics.is_enabled () then begin
        Metrics.incr m_rounds;
        Wx_obs.Work.incr Wx_obs.Work.rounds_simulated;
        Metrics.add m_transmissions info.transmitters;
        Metrics.add m_collisions info.collisions_this_round;
        Metrics.add m_newly_informed info.newly_informed;
        if info.collisions_this_round > 0 then Metrics.incr m_collision_rounds;
        if info.transmitters > 0 && info.newly_informed = 0 then Metrics.incr m_stalled_rounds
      end;
      if Sink.active () then
        Sink.event "radio.round"
          [
            ("round", Wx_obs.Json.Int info.index);
            ("tx", Wx_obs.Json.Int info.transmitters);
            ("newly", Wx_obs.Json.Int info.newly_informed);
            ("informed", Wx_obs.Json.Int info.informed_total);
            ("collisions", Wx_obs.Json.Int info.collisions_this_round);
          ];
      match on_round with Some f -> f info | None -> ()
    end;
    finished := stop net
  done;
  ( net,
    {
      rounds = Network.round net;
      completed = !finished;
      informed_final = Network.informed_count net;
      collisions = Network.collisions net;
      frontier_history = Wx_util.Intvec.to_array history;
    } )

let run ?max_rounds ?on_round g ~source protocol rng =
  let _, o = run_until ?max_rounds ?on_round g ~source protocol rng ~stop:Network.all_informed in
  { o with completed = o.informed_final = Graph.n g }

let rounds_to_inform ?max_rounds g ~source ~target protocol rng =
  let net, o =
    run_until ?max_rounds g ~source protocol rng ~stop:(fun net -> Network.is_informed net target)
  in
  if Network.is_informed net target then Some o.rounds else None

let rounds_to_fraction ?max_rounds g ~source ~subset ~fraction protocol rng =
  let total = Bitset.cardinal subset in
  if total = 0 then invalid_arg "Sim.rounds_to_fraction: empty subset";
  let target = int_of_float (Float.ceil (fraction *. float_of_int total)) in
  let enough net =
    let cnt = Bitset.cardinal (Bitset.inter (Network.informed net) subset) in
    cnt >= target
  in
  let net, o = run_until ?max_rounds g ~source protocol rng ~stop:enough in
  if enough net then Some o.rounds else None

let monte_carlo ?max_rounds g ~source protocol ~seeds =
  let one seed = run ?max_rounds g ~source protocol (Rng.create seed) in
  (one, List.map one seeds)
