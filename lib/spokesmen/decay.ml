module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite
module Rng = Wx_util.Rng
module Nbhd = Wx_expansion.Nbhd
module Metrics = Wx_obs.Metrics

let m_samples = Metrics.counter "spokesmen.decay.samples"
let m_restarts = Metrics.counter "spokesmen.decay.restarts"

let bucket_of_degree d =
  if d < 1 then invalid_arg "Decay.bucket_of_degree";
  Wx_util.Floatx.log2i_floor d

let buckets t =
  let cap = 2.0 *. Bipartite.delta_n t in
  let tbl = Hashtbl.create 8 in
  for w = 0 to Bipartite.n_count t - 1 do
    let d = Bipartite.deg_n t w in
    if d >= 1 && float_of_int d <= cap then begin
      let j = bucket_of_degree d in
      let cur = try Hashtbl.find tbl j with Not_found -> [] in
      Hashtbl.replace tbl j (w :: cur)
    end
  done;
  let pairs = Hashtbl.fold (fun j ws acc -> (j, Array.of_list (List.rev ws)) :: acc) tbl [] in
  Array.of_list (List.sort compare pairs)

let largest_bucket t =
  let bs = buckets t in
  if Array.length bs = 0 then invalid_arg "Decay.largest_bucket: no eligible N vertices";
  Array.fold_left
    (fun (bj, bw) (j, ws) -> if Array.length ws > Array.length bw then (j, ws) else (bj, bw))
    bs.(0) bs

let sample_candidate rng t j =
  let s = Bipartite.s_count t in
  let p = 1.0 /. float_of_int (1 lsl j) in
  Bitset.random_subset rng (Bitset.full s) p

let solve_direct ?(reps = 32) ?(all_buckets = false) rng t =
  let s = Bipartite.s_count t in
  if s = 0 || Bipartite.n_count t = 0 then invalid_arg "Decay.solve_direct: empty side";
  let bs = buckets t in
  let candidates =
    if Array.length bs = 0 then [| 0 |]
    else if all_buckets then Array.map fst bs
    else [| fst (largest_bucket t) |]
  in
  let best = ref (Solver.make t "decay" (Bitset.create s)) in
  Array.iter
    (fun j ->
      Metrics.incr m_restarts;
      for _ = 1 to reps do
        Metrics.incr m_samples;
        let cand = sample_candidate rng t j in
        let r = Solver.make t "decay" cand in
        best := Solver.best !best r
      done)
    candidates;
  !best

let greedy_subcover t s' =
  let n = Bipartite.n_count t in
  let covered = Bitset.create n in
  let out = Bitset.create (Bipartite.s_count t) in
  Bitset.iter
    (fun u ->
      let covers_new =
        Array.exists (fun w -> not (Bitset.mem covered w)) (Bipartite.neighbors_s t u)
      in
      if covers_new then begin
        Bitset.add_inplace out u;
        Array.iter (Bitset.add_inplace covered) (Bipartite.neighbors_s t u)
      end)
    s';
  out

let solve_reduced ?reps ?all_buckets rng t =
  let s = Bipartite.s_count t in
  if s = 0 || Bipartite.n_count t = 0 then invalid_arg "Decay.solve_reduced: empty side";
  (* S' = low-degree S vertices (deg ≤ 2δS). *)
  let cap = 2.0 *. Bipartite.delta_s t in
  let s' = Bitset.create s in
  for u = 0 to s - 1 do
    if float_of_int (Bipartite.deg_s t u) <= cap && Bipartite.deg_s t u >= 1 then
      Bitset.add_inplace s' u
  done;
  if Bitset.is_empty s' then Solver.make t "decay-reduced" (Bitset.create s)
  else begin
    let s'' = greedy_subcover t s' in
    let n' = Nbhd.Bip.covered t s'' in
    let sub, s_map, _ = Bipartite.sub_instance t s'' n' in
    if Bipartite.s_count sub = 0 || Bipartite.n_count sub = 0 then
      Solver.make t "decay-reduced" (Bitset.create s)
    else begin
      let r = solve_direct ?reps ?all_buckets rng sub in
      let lifted = Bitset.create s in
      Bitset.iter (fun i -> Bitset.add_inplace lifted s_map.(i)) r.chosen;
      Solver.make t "decay-reduced" lifted
    end
  end

let solve ?reps ?all_buckets rng t =
  if Bipartite.n_count t >= Bipartite.s_count t then solve_direct ?reps ?all_buckets rng t
  else begin
    let a = solve_reduced ?reps ?all_buckets rng t in
    let b = solve_direct ?reps ?all_buckets rng t in
    Solver.best a b
  end
