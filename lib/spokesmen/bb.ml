module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite
module Metrics = Wx_obs.Metrics

let m_nodes = Metrics.counter "spokesmen.bb.nodes"
let m_tightenings = Metrics.counter "spokesmen.bb.tightenings"
let m_prunes = Metrics.counter "spokesmen.bb.prunes"
let m_exhausted = Metrics.counter "spokesmen.bb.budget_exhausted"

type outcome = Proved_optimal | Budget_exhausted

let solve ?(node_limit = 20_000_000) t =
  let s = Bipartite.s_count t and n = Bipartite.n_count t in
  (* Order: high degree first tends to fix the influential vertices early. *)
  let order = Array.init s (fun i -> i) in
  Array.sort (fun a b -> compare (Bipartite.deg_s t b) (Bipartite.deg_s t a)) order;
  let cnt = Array.make n 0 in
  (* remdeg.(w): neighbors of w among still-undecided S vertices. *)
  let remdeg = Array.make n 0 in
  for w = 0 to n - 1 do
    remdeg.(w) <- Bipartite.deg_n t w
  done;
  let uniq = ref 0 in
  (* potential: N-vertices currently at count 0 that some undecided vertex
     could still cover. The admissible bound is uniq + potential. *)
  let potential = ref 0 in
  for w = 0 to n - 1 do
    if remdeg.(w) > 0 then incr potential
  done;
  let chosen = Bitset.create s in
  let best = ref (-1) in
  let best_set = ref (Bitset.create s) in
  let nodes = ref 0 in
  let exhausted = ref false in
  let add u =
    Array.iter
      (fun w ->
        (match cnt.(w) with
        | 0 ->
            incr uniq;
            if remdeg.(w) > 0 then decr potential
            (* covered now; no longer counts as reachable-zero *)
        | 1 -> decr uniq
        | _ -> ());
        cnt.(w) <- cnt.(w) + 1)
      (Bipartite.neighbors_s t u)
  in
  let undo_add u =
    Array.iter
      (fun w ->
        cnt.(w) <- cnt.(w) - 1;
        match cnt.(w) with
        | 0 ->
            decr uniq;
            if remdeg.(w) > 0 then incr potential
        | 1 -> incr uniq
        | _ -> ())
      (Bipartite.neighbors_s t u)
  in
  let retire u =
    (* u becomes decided: its neighbors lose one remaining degree. *)
    Array.iter
      (fun w ->
        remdeg.(w) <- remdeg.(w) - 1;
        if remdeg.(w) = 0 && cnt.(w) = 0 then decr potential)
      (Bipartite.neighbors_s t u)
  in
  let unretire u =
    Array.iter
      (fun w ->
        if remdeg.(w) = 0 && cnt.(w) = 0 then incr potential;
        remdeg.(w) <- remdeg.(w) + 1)
      (Bipartite.neighbors_s t u)
  in
  let record () =
    if !uniq > !best then begin
      Metrics.incr m_tightenings;
      best := !uniq;
      best_set := Bitset.copy chosen
    end
  in
  let rec go i =
    incr nodes;
    Metrics.incr m_nodes;
    if !nodes > node_limit then exhausted := true
    else begin
      record ();
      if i < s && not !exhausted then begin
        if !uniq + !potential <= !best then Metrics.incr m_prunes;
        if !uniq + !potential > !best then begin
          let u = order.(i) in
          retire u;
          (* Include branch first (greedy bias). *)
          add u;
          Bitset.add_inplace chosen u;
          go (i + 1);
          Bitset.remove_inplace chosen u;
          undo_add u;
          (* Exclude branch. *)
          if !uniq + !potential > !best && not !exhausted then go (i + 1);
          unretire u
        end
      end
    end
  in
  go 0;
  if !exhausted then Metrics.incr m_exhausted;
  let result = Solver.make t "branch-and-bound" !best_set in
  (result, if !exhausted then Budget_exhausted else Proved_optimal)

let optimum ?node_limit t =
  match solve ?node_limit t with
  | r, Proved_optimal -> Some r.Solver.covered
  | _, Budget_exhausted -> None
