module Bipartite = Wx_graph.Bipartite

let solvers =
  [
    ("decay", fun rng t -> Decay.solve rng t);
    ("decay-all-buckets", fun rng t -> Decay.solve ~all_buckets:true rng t);
    ("naive", fun _ t -> Naive.solve t);
    ("partition", fun _ t -> Partition.solve t);
    ("partition-capped", fun _ t -> Partition.solve_degree_capped t);
    ("partition-recursive", fun _ t -> Partition.solve_recursive t);
    ("buckets", fun _ t -> Buckets.solve t);
    ("buckets-all-classes", fun _ t -> Buckets.solve_all_classes t);
    ("greedy", fun _ t -> Greedy.solve t);
    ("greedy-local", fun _ t -> Greedy.solve_with_removal t);
    ("anneal", fun rng t -> Anneal.solve ~steps:(50 * Wx_graph.Bipartite.s_count t) rng t);
  ]

(* One timer per solver: the portfolio is where every solver runs under a
   common harness, so this is the single place that gives all of them a
   latency distribution. *)
let solver_timers =
  List.map (fun (name, _) -> (name, Wx_obs.Metrics.timer ("spokesmen.solver." ^ name))) solvers

let solve_each ?reps rng t =
  List.map
    (fun (name, f) ->
      let run () =
        match name with
        | "decay" -> Decay.solve ?reps rng t
        | "decay-all-buckets" -> Decay.solve ?reps ~all_buckets:true rng t
        | _ -> f rng t
      in
      let r =
        match List.assoc_opt name solver_timers with
        | Some tm -> Wx_obs.Metrics.time tm run
        | None -> run ()
      in
      (name, r))
    solvers

let solve ?reps rng t =
  match solve_each ?reps rng t with
  | [] -> invalid_arg "Portfolio.solve: no solvers"
  | (_, first) :: rest ->
      List.fold_left (fun acc (_, r) -> Solver.best acc r) first rest
