module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite
module Metrics = Wx_obs.Metrics

let m_steps = Metrics.counter "spokesmen.partition.steps"
let m_runs = Metrics.counter "spokesmen.partition.runs"

type state = {
  s_uni : Bitset.t;
  s_tmp : Bitset.t;
  n_uni : Bitset.t;
  n_many : Bitset.t;
  n_tmp : Bitset.t;
  steps : int;
}

let gain_of t ~n_tmp ~n_uni v =
  let nt = ref 0 and nu = ref 0 in
  Array.iter
    (fun w ->
      if Bitset.mem n_tmp w then incr nt else if Bitset.mem n_uni w then incr nu)
    (Bipartite.neighbors_s t v);
  !nt - (2 * !nu)

let run ?restrict_n t =
  let s = Bipartite.s_count t and n = Bipartite.n_count t in
  let n_tmp =
    match restrict_n with
    | None -> Bitset.full n
    | Some r -> Bitset.copy r
  in
  (* Drop isolated N-vertices up front: they can never be covered. *)
  for w = 0 to n - 1 do
    if Bipartite.deg_n t w = 0 && Bitset.mem n_tmp w then Bitset.remove_inplace n_tmp w
  done;
  let s_tmp = Bitset.full s in
  let s_uni = Bitset.create s in
  let n_uni = Bitset.create n and n_many = Bitset.create n in
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ && not (Bitset.is_empty s_tmp) do
    (* Pick v ∈ Stmp of maximum gain. *)
    let best_v = ref (-1) and best_g = ref min_int in
    Bitset.iter
      (fun v ->
        let g = gain_of t ~n_tmp ~n_uni v in
        if g > !best_g then begin
          best_g := g;
          best_v := v
        end)
      s_tmp;
    if !best_g <= 0 then continue_ := false
    else begin
      incr steps;
      let v = !best_v in
      Bitset.remove_inplace s_tmp v;
      Bitset.add_inplace s_uni v;
      Array.iter
        (fun w ->
          if Bitset.mem n_uni w then begin
            (* Preserve (P1): w now has two Suni neighbors — demote. *)
            Bitset.remove_inplace n_uni w;
            Bitset.add_inplace n_many w
          end
          else if Bitset.mem n_tmp w then begin
            Bitset.remove_inplace n_tmp w;
            Bitset.add_inplace n_uni w
          end)
        (Bipartite.neighbors_s t v)
    end
  done;
  Metrics.incr m_runs;
  Metrics.add m_steps !steps;
  { s_uni; s_tmp; n_uni; n_many; n_tmp; steps = !steps }

let gain t st v = gain_of t ~n_tmp:st.n_tmp ~n_uni:st.n_uni v

let count_edges t ~from_s ~to_n =
  let acc = ref 0 in
  Bitset.iter
    (fun v ->
      Array.iter (fun w -> if Bitset.mem to_n w then incr acc) (Bipartite.neighbors_s t v))
    from_s;
  !acc

let edges_tmp t st = count_edges t ~from_s:st.s_tmp ~to_n:st.n_tmp
let edges_uni t st = count_edges t ~from_s:st.s_tmp ~to_n:st.n_uni

let check_conditions t st =
  let p1 =
    Bitset.for_all
      (fun w ->
        let c =
          Array.fold_left
            (fun acc u -> if Bitset.mem st.s_uni u then acc + 1 else acc)
            0 (Bipartite.neighbors_n t w)
        in
        c = 1)
      st.n_uni
  in
  let p2 =
    Bitset.for_all
      (fun w ->
        let in_tmp = ref false and in_uni = ref false in
        Array.iter
          (fun u ->
            if Bitset.mem st.s_tmp u then in_tmp := true;
            if Bitset.mem st.s_uni u then in_uni := true)
          (Bipartite.neighbors_n t w);
        !in_tmp && not !in_uni)
      st.n_tmp
  in
  let p3 = Bitset.cardinal st.n_uni >= Bitset.cardinal st.n_many in
  let p4 = Bitset.is_empty st.n_tmp || edges_tmp t st <= 2 * edges_uni t st in
  [ ("P1", p1); ("P2", p2); ("P3", p3); ("P4", p4) ]

let solve t =
  let st = run t in
  Solver.make t "partition" st.s_uni

let solve_degree_capped t =
  let n = Bipartite.n_count t in
  let cap = 2.0 *. Bipartite.delta_n t in
  let restrict = Bitset.create n in
  for w = 0 to n - 1 do
    if float_of_int (Bipartite.deg_n t w) <= cap then Bitset.add_inplace restrict w
  done;
  let st = run ~restrict_n:restrict t in
  Solver.make t "partition-capped" st.s_uni

let solve_recursive ?(max_depth = 10_000) t =
  (* Returns the chosen subset (indices of t's S side). *)
  let rec go depth t =
    let st = run t in
    if depth >= max_depth || Bitset.is_empty st.n_tmp || Bitset.is_empty st.s_tmp then st.s_uni
    else begin
      let sub, s_map, _ = Bipartite.sub_instance t st.s_tmp st.n_tmp in
      if Bipartite.n_count sub = 0 || Bipartite.s_count sub = 0 then st.s_uni
      else begin
        let inner = go (depth + 1) sub in
        let lifted = Bitset.create (Bipartite.s_count t) in
        Bitset.iter (fun i -> Bitset.add_inplace lifted s_map.(i)) inner;
        (* Keep whichever branch covers more on this instance. *)
        let a = Solver.evaluate t st.s_uni and b = Solver.evaluate t lifted in
        if b > a then lifted else st.s_uni
      end
    end
  in
  Solver.make t "partition-recursive" (go 0 t)

let solve_threshold ~t_param t =
  if t_param <= 1.0 then invalid_arg "Partition.solve_threshold: t must be > 1";
  let n = Bipartite.n_count t in
  let cap = t_param *. Bipartite.delta_n t in
  let restrict = Bitset.create n in
  for w = 0 to n - 1 do
    if float_of_int (Bipartite.deg_n t w) <= cap then Bitset.add_inplace restrict w
  done;
  let st = run ~restrict_n:restrict t in
  Solver.make t (Printf.sprintf "partition-t%.1f" t_param) st.s_uni
