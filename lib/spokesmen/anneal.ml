module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite
module Rng = Wx_util.Rng
module Metrics = Wx_obs.Metrics

let m_steps = Metrics.counter "spokesmen.anneal.steps"
let m_accepted = Metrics.counter "spokesmen.anneal.accepted"
let m_improvements = Metrics.counter "spokesmen.anneal.improvements"

let solve ?steps ?(t0 = 2.0) ?cooling rng t =
  let s = Bipartite.s_count t in
  if s = 0 then invalid_arg "Anneal.solve: empty S side";
  let steps = match steps with Some k -> k | None -> 200 * s in
  let cooling =
    match cooling with
    | Some c -> c
    | None -> if steps <= 1 then 1.0 else exp (log (0.01 /. t0) /. float_of_int steps)
  in
  (* Start from the greedy local optimum. *)
  let start = Greedy.solve_with_removal t in
  let cnt = Array.make (Bipartite.n_count t) 0 in
  let chosen = Bitset.copy start.Solver.chosen in
  Bitset.iter
    (fun u -> Array.iter (fun w -> cnt.(w) <- cnt.(w) + 1) (Bipartite.neighbors_s t u))
    chosen;
  let uniq = ref 0 in
  Array.iter (fun c -> if c = 1 then incr uniq) cnt;
  let flip_gain u =
    if Bitset.mem chosen u then
      Array.fold_left
        (fun acc w -> match cnt.(w) with 1 -> acc - 1 | 2 -> acc + 1 | _ -> acc)
        0 (Bipartite.neighbors_s t u)
    else
      Array.fold_left
        (fun acc w -> match cnt.(w) with 0 -> acc + 1 | 1 -> acc - 1 | _ -> acc)
        0 (Bipartite.neighbors_s t u)
  in
  let apply_flip u =
    if Bitset.mem chosen u then begin
      Bitset.remove_inplace chosen u;
      Array.iter
        (fun w ->
          (match cnt.(w) with 1 -> decr uniq | 2 -> incr uniq | _ -> ());
          cnt.(w) <- cnt.(w) - 1)
        (Bipartite.neighbors_s t u)
    end
    else begin
      Bitset.add_inplace chosen u;
      Array.iter
        (fun w ->
          (match cnt.(w) with 0 -> incr uniq | 1 -> decr uniq | _ -> ());
          cnt.(w) <- cnt.(w) + 1)
        (Bipartite.neighbors_s t u)
    end
  in
  let best = ref !uniq in
  let best_set = ref (Bitset.copy chosen) in
  let temp = ref t0 in
  for _ = 1 to steps do
    Metrics.incr m_steps;
    let u = Rng.int rng s in
    let g = flip_gain u in
    let accept =
      g >= 0
      || (!temp > 1e-9 && Rng.float rng < exp (float_of_int g /. !temp))
    in
    if accept then begin
      Metrics.incr m_accepted;
      apply_flip u;
      if !uniq > !best then begin
        Metrics.incr m_improvements;
        best := !uniq;
        best_set := Bitset.copy chosen
      end
    end;
    temp := !temp *. cooling
  done;
  Solver.make t "anneal" !best_set
