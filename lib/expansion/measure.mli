(** Graph-level expansion measures β(G), βu(G), βw(G).

    Each measure comes in two flavors:
    - [*_exact]: true minimum over all non-empty sets [S] with
      [|S| ≤ α·n], by subset enumeration. Exponential — guarded by an
      explicit work limit.
    - [*_sampled]: minimum over a random sample of sets, which is a sound
      {e upper bound certificate} on the measure (the measure is a min, so
      any witnessed set bounds it from above). Returns the witness.

    The wireless measure additionally needs, per set S, a maximum over
    subsets S′ ⊆ S; [wireless_of_set_exact] enumerates S′ in Gray-code
    order with incremental unique-count maintenance.

    {2 Parallelism and determinism}

    Every enumeration and sampling loop is sharded over a {!Wx_par.Pool}
    of OCaml 5 domains ([?jobs], default {!Wx_par.Pool.default_jobs} —
    settable via [--jobs] or [WX_JOBS]). Results are deterministic at any
    job count:
    - exact measures partition the subset space by smallest element
      (oversized shards are further split by second element and stolen by
      idle workers) and report the {e lexicographically smallest}
      minimising witness, so values and witnesses are identical at
      [jobs = 1] and [jobs = 64];
    - sampled measures pre-split one [Rng.split] child stream per
      fixed-size sample block, so for a fixed seed the drawn sets — and
      hence the certificate — do not depend on the job count.

    {2 Branch-and-bound pruning}

    The exact enumerations walk the subset space as a pre-order DFS and
    cut whole subtrees whose monotone lower bound is {e strictly} worse
    than the best value found so far — an incumbent shared across worker
    domains, so one shard's find prunes the others. Because only
    strictly-worse subtrees are cut and the incumbent only decreases
    toward the true minimum, pruning changes the number of sets visited
    (timing-dependent, observable in the [expansion.subtrees_pruned]
    counter) but never the value or the lex-smallest witness: both stay
    bit-identical to the unpruned enumeration, which [~prune:false]
    selects (the reference path, and the bench's comparison baseline).
    DESIGN.md §11 derives the per-measure bounds. *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type witnessed = { value : float; witness : Bitset.t }
(** A measure value together with the set attaining it. *)

exception Too_large of string
(** Raised when an exact enumeration would exceed its work limit (including
    when the candidate-set count itself overflows the native int). This is
    a rebinding of {!Wx_util.Guard.Too_large} — the same constructor every
    guarded enumeration kernel raises (e.g. [Bitset.iter_subsets]), so one
    handler catches refused work from any layer. *)

val max_set_size : ?alpha:float -> Graph.t -> int
(** [⌊α·n⌋], default [α = 1/2]. *)

(** {1 Ordinary expansion} *)

val beta_exact :
  ?alpha:float -> ?work_limit:int -> ?prune:bool -> ?jobs:int -> Graph.t -> witnessed
(** Minimum of [|Γ⁻(S)|/|S|] over non-empty [S], [|S| ≤ αn]. The work limit
    (default [2^24]) bounds the number of sets enumerated. [?prune]
    (default [true]) enables branch-and-bound; the result is identical
    either way (see the module preamble). *)

val beta_sampled :
  ?alpha:float -> ?jobs:int -> Wx_util.Rng.t -> samples:int -> Graph.t -> witnessed

val min_over_sampled_sets :
  ?jobs:int -> Graph.t -> int -> Wx_util.Rng.t -> int -> (Bitset.t -> float) -> witnessed
(** [min_over_sampled_sets g kmax rng samples score]: the generic sampled
    minimiser behind the [*_sampled] measures — [samples] uniform draws of
    a size in [1, kmax] then a uniform set of that size, scored by
    [score]. Sizes above [n] (possible when a caller passes its own
    [kmax]) are clamped to [n] {e after} the draw, so the stream stays
    aligned; clamps count in the [expansion.sampled_clamped] metric. *)

(** {1 Unique-neighbor expansion} *)

val beta_u_exact :
  ?alpha:float -> ?work_limit:int -> ?prune:bool -> ?jobs:int -> Graph.t -> witnessed

val beta_u_sampled :
  ?alpha:float -> ?jobs:int -> Wx_util.Rng.t -> samples:int -> Graph.t -> witnessed

(** {1 Wireless expansion} *)

val wireless_of_set_exact : ?work_limit:int -> Graph.t -> Bitset.t -> witnessed
(** [max_{S′ ⊆ S} |Γ¹_S(S′)| / |S|] with the maximizing [S′] as witness.
    Cost 2^|S|; the work limit (default 2^24) rejects larger sets. The
    Gray-code walk is inherently sequential and runs on the calling
    domain. *)

val beta_w_exact :
  ?alpha:float -> ?work_limit:int -> ?prune:bool -> ?jobs:int -> Graph.t -> witnessed
(** Exact wireless expansion: min over S of max over S′. Cost ~3^n; the
    work limit (default 2^26 elementary steps) keeps this to [n ≲ 16].
    The witness is the minimizing [S]. *)

val beta_w_sampled :
  ?alpha:float ->
  ?inner_work_limit:int ->
  ?jobs:int ->
  Wx_util.Rng.t ->
  samples:int ->
  Graph.t ->
  witnessed
(** Upper-bound certificate: min over sampled S of the {e exact} inner max.
    Sampled sizes are clamped to [min kmax 22] so the inner enumeration
    stays within the default inner work limit — clamped draws are counted
    in the [expansion.sampled_clamped] metric rather than discarded. *)

(** {1 Per-size profiles} *)

val profile_beta : ?alpha:float -> ?work_limit:int -> ?jobs:int -> Graph.t -> (int * float) list
(** [(k, min expansion over |S| = k)] for each feasible size k — the data
    behind "expansion as a function of set size" plots. *)

val profile_beta_u : ?alpha:float -> ?work_limit:int -> ?jobs:int -> Graph.t -> (int * float) list
(** Per-size unique-neighbor expansion profile. *)

val profile_beta_w : ?alpha:float -> ?work_limit:int -> ?jobs:int -> Graph.t -> (int * float) list
(** Per-size wireless expansion profile (exact inner maximization per set);
    work limit counts elementary Gray-code steps, default 2^26. *)
