module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite
module Rng = Wx_util.Rng
module Metrics = Wx_obs.Metrics

let m_bip_sets = Metrics.counter "expansion.bip_sets_scored"
let m_bip_rejected = Metrics.counter "expansion.bip_work_rejected"

exception Too_large of string

let exact_max_unique ?(work_limit = 1 lsl 24) t =
  let s = Bipartite.s_count t in
  if s > 30 || 1 lsl s > work_limit then begin
    Metrics.incr m_bip_rejected;
    raise (Too_large (Printf.sprintf "Bip_measure.exact_max_unique: 2^%d subsets" s))
  end;
  let elts = Array.init s (fun i -> i) in
  let best = ref 0 in
  let best_set = ref (Bitset.create s) in
  Nbhd.Bip.iter_gray_unique t elts (fun s' count ->
      Metrics.incr m_bip_sets;
      if count > !best then begin
        best := count;
        best_set := Bitset.copy s'
      end);
  (!best, !best_set)

let sampled_max_unique rng ~samples t =
  let s = Bipartite.s_count t in
  let best = ref 0 in
  let best_set = ref (Bitset.create s) in
  let consider s' =
    let c = Nbhd.Bip.unique_count t s' in
    if c > !best then begin
      best := c;
      best_set := s'
    end
  in
  (* Always try the structured candidates: each singleton and the full side. *)
  for u = 0 to s - 1 do
    consider (Bitset.of_list s [ u ])
  done;
  consider (Bitset.full s);
  for _ = 1 to samples do
    let k = 1 + Rng.int rng s in
    consider (Bitset.random_of_universe rng s k)
  done;
  (!best, !best_set)

let wireless_expansion_exact ?work_limit t =
  let m, _ = exact_max_unique ?work_limit t in
  float_of_int m /. float_of_int (Bipartite.s_count t)

let min_expansion_generic t iter_candidates =
  let s = Bipartite.s_count t in
  let best = ref infinity in
  let best_set = ref (Bitset.create s) in
  iter_candidates (fun s' ->
      let k = Bitset.cardinal s' in
      if k > 0 then begin
        let cov = Bitset.cardinal (Nbhd.Bip.covered t s') in
        let v = float_of_int cov /. float_of_int k in
        if v < !best then begin
          best := v;
          best_set := Bitset.copy s'
        end
      end);
  (!best, !best_set)

let ordinary_expansion_min_exact ?(work_limit = 1 lsl 24) t =
  let s = Bipartite.s_count t in
  if s > 30 || 1 lsl s > work_limit then
    raise (Too_large (Printf.sprintf "Bip_measure.ordinary_expansion_min_exact: 2^%d subsets" s));
  let full = Bitset.full s in
  min_expansion_generic t (fun consider -> Bitset.iter_subsets full consider)

let ordinary_expansion_min_sampled rng ~samples t =
  let s = Bipartite.s_count t in
  min_expansion_generic t (fun consider ->
      for u = 0 to s - 1 do
        consider (Bitset.of_list s [ u ])
      done;
      consider (Bitset.full s);
      for _ = 1 to samples do
        let k = 1 + Rng.int rng s in
        consider (Bitset.random_of_universe rng s k)
      done)
