module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Combi = Wx_util.Combi
module Rng = Wx_util.Rng
module Pool = Wx_par.Pool
module Metrics = Wx_obs.Metrics
module Span = Wx_obs.Span

let m_sets_scored = Metrics.counter "expansion.sets_scored"
let m_sampled_sets = Metrics.counter "expansion.sampled_sets"
let m_gray_flips = Metrics.counter "expansion.gray_flips"
let m_improvements = Metrics.counter "expansion.witness_improvements"
let m_work_rejected = Metrics.counter "expansion.work_rejected"
let m_inner_pruned = Metrics.counter "expansion.sampled_inner_pruned"
let m_sampled_clamped = Metrics.counter "expansion.sampled_clamped"

type witnessed = { value : float; witness : Bitset.t }

exception Too_large of string

let max_set_size ?(alpha = 0.5) g =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Measure: alpha must be in (0, 1]";
  int_of_float (Float.floor (alpha *. float_of_int (Graph.n g)))

(* ---- deterministic minimisation ----

   The exact measures shard their enumeration over domains (one shard per
   smallest element), so "first set attaining the minimum" is no longer a
   well-defined witness. Instead the canonical witness is the
   lexicographically smallest minimiser (elements compared as sorted
   lists): [consider] applies the tiebreak within a shard and [better]
   applies it across shards, making the reported witness a pure function of
   the graph — independent of job count, chunking and scheduling. *)

let lex_less a b = compare (Bitset.elements a) (Bitset.elements b) < 0

let better a b =
  if b.value < a.value then b
  else if a.value < b.value then a
  else if lex_less b.witness a.witness then b
  else a

let better_opt a b =
  match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (better a b)

(* Fold one candidate into a shard-local best. [copy] when [w] is a reused
   enumeration buffer rather than an owned set. *)
let consider best v w ~copy =
  let improved =
    match !best with None -> true | Some b -> v < b.value || (v = b.value && lex_less w b.witness)
  in
  if improved then begin
    Metrics.incr m_improvements;
    best := Some { value = v; witness = (if copy then Bitset.copy w else w) }
  end

(* ---- work guards ---- *)

let check_work name actual limit =
  if actual > limit then begin
    Metrics.incr m_work_rejected;
    raise
      (Too_large
         (Printf.sprintf "%s: enumeration of %d sets exceeds work limit %d" name actual limit))
  end

(* [Combi.subsets_count_le] raises a bare [Overflow] when the count does not
   fit an int; translate it here so callers only ever see the documented
   [Too_large] (an overflowing count certainly exceeds any work limit). *)
let count_sets_le name g kmax =
  try Combi.subsets_count_le (Graph.n g) kmax
  with Combi.Overflow ->
    Metrics.incr m_work_rejected;
    raise
      (Too_large
         (Printf.sprintf "%s: more than max_int candidate sets (n = %d, kmax = %d)" name
            (Graph.n g) kmax))

(* Σ_k C(n,k)·2^k Gray-code steps for the wireless measures. The 2^k factor
   is computed as [ldexp 1.0 k]: the previous [float_of_int (1 lsl k)]
   overflowed the OCaml int at k >= 62 and silently defeated the guard.
   A binomial overflow means the work certainly exceeds any limit. *)
let check_wireless_work name g kmax work_limit =
  let n = Graph.n g in
  let work =
    try
      let acc = ref 0.0 in
      for k = 1 to kmax do
        acc := !acc +. (float_of_int (Combi.binomial n k) *. ldexp 1.0 k)
      done;
      !acc
    with Combi.Overflow -> infinity
  in
  if work > float_of_int work_limit then begin
    Metrics.incr m_work_rejected;
    raise
      (Too_large
         (Printf.sprintf "%s: 3^n-style enumeration (n = %d, kmax = %d) exceeds work limit %d"
            name n kmax work_limit))
  end

(* ---- exact minima, sharded by smallest element ---- *)

(* Generic exact minimum of [score] over non-empty subsets of size <= kmax.
   Shard a = all subsets whose smallest element is a; shards are
   independent, similar in cost, and jointly exhaustive. *)
let min_over_sets name ?(work_limit = 1 lsl 24) ?jobs g kmax score =
  let n = Graph.n g in
  if n = 0 || kmax = 0 then invalid_arg (name ^ ": no feasible sets");
  let count = count_sets_le name g kmax in
  check_work name count work_limit;
  let shard a =
    let buf = Bitset.create n in
    let best = ref None in
    Combi.iter_subsets_le_with_min n kmax a (fun idxs ->
        Metrics.incr m_sets_scored;
        Bitset.clear_inplace buf;
        Array.iter (Bitset.add_inplace buf) idxs;
        consider best (score buf) buf ~copy:true);
    !best
  in
  match Pool.parallel_reduce ?jobs ~n ~init:None ~map:shard ~combine:better_opt () with
  | Some w -> w
  | None -> invalid_arg (name ^ ": no feasible sets")

(* ---- sampled minima, sharded by sample block ----

   Each fixed-size block of samples draws from its own [Rng.split] child
   stream, split off in block order before any parallelism starts. The
   result is therefore a function of (seed, samples) alone: job count and
   scheduling cannot change which sets are drawn or which witness wins. *)

let sample_block = 32

let split_streams rng nblocks =
  let streams = Array.make nblocks rng in
  for b = 0 to nblocks - 1 do
    streams.(b) <- Rng.split rng
  done;
  streams

let min_over_sampled_sets ?jobs g kmax rng samples score =
  let n = Graph.n g in
  if n = 0 || kmax = 0 then invalid_arg "Measure: no feasible sets";
  if samples <= 0 then invalid_arg "Measure: samples must be positive";
  let nblocks = (samples + sample_block - 1) / sample_block in
  let streams = split_streams rng nblocks in
  let shard b =
    let r = streams.(b) in
    let best = ref None in
    for _ = 1 to min sample_block (samples - (b * sample_block)) do
      Metrics.incr m_sampled_sets;
      let k = 1 + Rng.int r kmax in
      let s = Bitset.random_of_universe r n k in
      consider best (score s) s ~copy:false
    done;
    !best
  in
  match Pool.parallel_reduce ?jobs ~n:nblocks ~init:None ~map:shard ~combine:better_opt () with
  | Some w -> w
  | None -> assert false

let beta_exact ?alpha ?work_limit ?jobs g =
  Span.with_ ~name:"measure.beta_exact" (fun () ->
      min_over_sets "Measure.beta_exact" ?work_limit ?jobs g (max_set_size ?alpha g)
        (Nbhd.expansion_of_set g))

let beta_sampled ?alpha ?jobs rng ~samples g =
  Span.with_ ~name:"measure.beta_sampled" (fun () ->
      min_over_sampled_sets ?jobs g (max_set_size ?alpha g) rng samples
        (Nbhd.expansion_of_set g))

let beta_u_exact ?alpha ?work_limit ?jobs g =
  Span.with_ ~name:"measure.beta_u_exact" (fun () ->
      min_over_sets "Measure.beta_u_exact" ?work_limit ?jobs g (max_set_size ?alpha g)
        (Nbhd.unique_expansion_of_set g))

let beta_u_sampled ?alpha ?jobs rng ~samples g =
  Span.with_ ~name:"measure.beta_u_sampled" (fun () ->
      min_over_sampled_sets ?jobs g (max_set_size ?alpha g) rng samples
        (Nbhd.unique_expansion_of_set g))

(* Exact max over S' of |Γ¹_S(S')| for a fixed S, returning (max, argmax).
   Gray-code enumeration with incremental per-vertex neighbor counts. *)
let max_unique_over_subsets ?(work_limit = 1 lsl 24) g s =
  let n = Graph.n g in
  let elts = Bitset.to_array s in
  let k = Array.length elts in
  if k = 0 then invalid_arg "Measure.wireless_of_set: empty set";
  if k > 30 then raise (Too_large "Measure.wireless_of_set: |S| > 30");
  check_work "Measure.wireless_of_set" (1 lsl k) work_limit;
  let cnt = Array.make n 0 in
  let uniq = ref 0 in
  let cur = Bitset.create n in
  let flip u =
    if Bitset.mem cur u then begin
      Bitset.remove_inplace cur u;
      Graph.iter_neighbors g u (fun w ->
          if not (Bitset.mem s w) then begin
            if cnt.(w) = 1 then decr uniq else if cnt.(w) = 2 then incr uniq;
            cnt.(w) <- cnt.(w) - 1
          end)
    end
    else begin
      Bitset.add_inplace cur u;
      Graph.iter_neighbors g u (fun w ->
          if not (Bitset.mem s w) then begin
            if cnt.(w) = 0 then incr uniq else if cnt.(w) = 1 then decr uniq;
            cnt.(w) <- cnt.(w) + 1
          end)
    end
  in
  let best = ref 0 in
  let best_set = ref (Bitset.create n) in
  let total = 1 lsl k in
  for i = 1 to total - 1 do
    let gray_prev = (i - 1) lxor ((i - 1) lsr 1) in
    let gray = i lxor (i lsr 1) in
    let changed = gray lxor gray_prev in
    let bit =
      let rec go b = if changed lsr b land 1 = 1 then b else go (b + 1) in
      go 0
    in
    flip elts.(bit);
    Metrics.incr m_gray_flips;
    if !uniq > !best then begin
      best := !uniq;
      best_set := Bitset.copy cur
    end
  done;
  (!best, !best_set)

let wireless_of_set_exact ?work_limit g s =
  let m, s' = max_unique_over_subsets ?work_limit g s in
  { value = float_of_int m /. float_of_int (Bitset.cardinal s); witness = s' }

let beta_w_exact ?alpha ?(work_limit = 1 lsl 26) ?jobs g =
  Span.with_ ~name:"measure.beta_w_exact" (fun () ->
      let kmax = max_set_size ?alpha g in
      let n = Graph.n g in
      if n = 0 || kmax = 0 then invalid_arg "Measure.beta_w_exact: no feasible sets";
      check_wireless_work "Measure.beta_w_exact" g kmax work_limit;
      let shard a =
        let buf = Bitset.create n in
        let best = ref None in
        Combi.iter_subsets_le_with_min n kmax a (fun idxs ->
            Metrics.incr m_sets_scored;
            Bitset.clear_inplace buf;
            Array.iter (Bitset.add_inplace buf) idxs;
            let m, _ = max_unique_over_subsets ~work_limit:max_int g buf in
            consider best (float_of_int m /. float_of_int (Array.length idxs)) buf ~copy:true);
        !best
      in
      match Pool.parallel_reduce ?jobs ~n ~init:None ~map:shard ~combine:better_opt () with
      | Some w -> w
      | None -> assert false)

(* Largest sampled |S| for which the inner 2^|S| maximisation is viable;
   matches the default [inner_work_limit] of 2^22 Gray-code steps. *)
let wireless_sample_cap = 22

let beta_w_sampled ?alpha ?(inner_work_limit = 1 lsl 22) ?jobs rng ~samples g =
  Span.with_ ~name:"measure.beta_w_sampled" (fun () ->
      let kmax = max_set_size ?alpha g in
      let n = Graph.n g in
      if n = 0 || kmax = 0 then invalid_arg "Measure.beta_w_sampled: no feasible sets";
      if samples <= 0 then invalid_arg "Measure.beta_w_sampled: samples must be positive";
      let nblocks = (samples + sample_block - 1) / sample_block in
      let streams = split_streams rng nblocks in
      let shard b =
        let r = streams.(b) in
        let best = ref None in
        for _ = 1 to min sample_block (samples - (b * sample_block)) do
          Metrics.incr m_sampled_sets;
          let k = 1 + Rng.int r kmax in
          (* Draws above the inner-enumeration cap used to be discarded
             with no replacement, silently wasting the sample budget
             whenever kmax > 22; clamp them to the cap instead and account
             for the distortion. *)
          let k =
            if k > wireless_sample_cap then begin
              Metrics.incr m_sampled_clamped;
              wireless_sample_cap
            end
            else k
          in
          let s = Bitset.random_of_universe r n k in
          match max_unique_over_subsets ~work_limit:inner_work_limit g s with
          | m, _ -> consider best (float_of_int m /. float_of_int k) s ~copy:false
          | exception Too_large _ -> Metrics.incr m_inner_pruned
        done;
        !best
      in
      match Pool.parallel_reduce ?jobs ~n:nblocks ~init:None ~map:shard ~combine:better_opt () with
      | Some w -> w
      | None ->
          (* Every sample hit the inner work limit: keep the historical
             "no certificate" result rather than raising. *)
          { value = infinity; witness = Bitset.create n })

(* ---- per-size profiles ----

   Values only (no witness), so plain [Float.min] is the combine: it is
   associative and commutative, and scores are never NaN, so the profile is
   deterministic without any tiebreak. *)

let profile_sizes ?jobs g kmax score =
  let n = Graph.n g in
  let out = ref [] in
  for k = kmax downto 1 do
    let shard a =
      let buf = Bitset.create n in
      let best = ref infinity in
      Combi.iter_subsets_of_size_with_min n k a (fun idxs ->
          Metrics.incr m_sets_scored;
          Bitset.clear_inplace buf;
          Array.iter (Bitset.add_inplace buf) idxs;
          let v = score buf in
          if v < !best then best := v);
      !best
    in
    let best =
      Pool.parallel_reduce ?jobs ~n:(n - k + 1) ~init:infinity ~map:shard ~combine:Float.min ()
    in
    out := (k, best) :: !out
  done;
  !out

let profile_beta ?alpha ?(work_limit = 1 lsl 24) ?jobs g =
  let kmax = max_set_size ?alpha g in
  let count = count_sets_le "Measure.profile_beta" g kmax in
  check_work "Measure.profile_beta" count work_limit;
  profile_sizes ?jobs g kmax (Nbhd.expansion_of_set g)

let profile_beta_u ?alpha ?(work_limit = 1 lsl 24) ?jobs g =
  let kmax = max_set_size ?alpha g in
  let count = count_sets_le "Measure.profile_beta_u" g kmax in
  check_work "Measure.profile_beta_u" count work_limit;
  profile_sizes ?jobs g kmax (Nbhd.unique_expansion_of_set g)

let profile_beta_w ?alpha ?(work_limit = 1 lsl 26) ?jobs g =
  let kmax = max_set_size ?alpha g in
  check_wireless_work "Measure.profile_beta_w" g kmax work_limit;
  profile_sizes ?jobs g kmax (fun s ->
      let m, _ = max_unique_over_subsets ~work_limit:max_int g s in
      float_of_int m /. float_of_int (Bitset.cardinal s))
