module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Combi = Wx_util.Combi
module Rng = Wx_util.Rng
module Metrics = Wx_obs.Metrics
module Span = Wx_obs.Span

let m_sets_scored = Metrics.counter "expansion.sets_scored"
let m_sampled_sets = Metrics.counter "expansion.sampled_sets"
let m_gray_flips = Metrics.counter "expansion.gray_flips"
let m_improvements = Metrics.counter "expansion.witness_improvements"
let m_work_rejected = Metrics.counter "expansion.work_rejected"
let m_inner_pruned = Metrics.counter "expansion.sampled_inner_pruned"

type witnessed = { value : float; witness : Bitset.t }

exception Too_large of string

let max_set_size ?(alpha = 0.5) g =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Measure: alpha must be in (0, 1]";
  int_of_float (Float.floor (alpha *. float_of_int (Graph.n g)))

let check_work name actual limit =
  if actual > limit then begin
    Metrics.incr m_work_rejected;
    raise
      (Too_large
         (Printf.sprintf "%s: enumeration of %d sets exceeds work limit %d" name actual limit))
  end

(* Generic exact minimum of [score] over non-empty subsets of size <= kmax. *)
let min_over_sets name ?(work_limit = 1 lsl 24) g kmax score =
  let n = Graph.n g in
  if n = 0 || kmax = 0 then invalid_arg (name ^ ": no feasible sets");
  let count = Combi.subsets_count_le n kmax in
  check_work name count work_limit;
  let best = ref infinity in
  let best_set = ref (Bitset.create n) in
  let buf = Bitset.create n in
  Combi.iter_subsets_le n kmax (fun idxs ->
      Metrics.incr m_sets_scored;
      Bitset.clear_inplace buf;
      Array.iter (Bitset.add_inplace buf) idxs;
      let v = score buf in
      if v < !best then begin
        Metrics.incr m_improvements;
        best := v;
        best_set := Bitset.copy buf
      end);
  { value = !best; witness = !best_set }

let min_over_sampled_sets g kmax rng samples score =
  let n = Graph.n g in
  if n = 0 || kmax = 0 then invalid_arg "Measure: no feasible sets";
  let best = ref infinity in
  let best_set = ref (Bitset.create n) in
  for _ = 1 to samples do
    Metrics.incr m_sampled_sets;
    let k = 1 + Rng.int rng kmax in
    let s = Bitset.random_of_universe rng n k in
    let v = score s in
    if v < !best then begin
      Metrics.incr m_improvements;
      best := v;
      best_set := s
    end
  done;
  { value = !best; witness = !best_set }

let beta_exact ?alpha ?work_limit g =
  Span.with_ ~name:"measure.beta_exact" (fun () ->
      min_over_sets "Measure.beta_exact" ?work_limit g (max_set_size ?alpha g)
        (Nbhd.expansion_of_set g))

let beta_sampled ?alpha rng ~samples g =
  Span.with_ ~name:"measure.beta_sampled" (fun () ->
      min_over_sampled_sets g (max_set_size ?alpha g) rng samples (Nbhd.expansion_of_set g))

let beta_u_exact ?alpha ?work_limit g =
  Span.with_ ~name:"measure.beta_u_exact" (fun () ->
      min_over_sets "Measure.beta_u_exact" ?work_limit g (max_set_size ?alpha g)
        (Nbhd.unique_expansion_of_set g))

let beta_u_sampled ?alpha rng ~samples g =
  Span.with_ ~name:"measure.beta_u_sampled" (fun () ->
      min_over_sampled_sets g (max_set_size ?alpha g) rng samples
        (Nbhd.unique_expansion_of_set g))

(* Exact max over S' of |Γ¹_S(S')| for a fixed S, returning (max, argmax).
   Gray-code enumeration with incremental per-vertex neighbor counts. *)
let max_unique_over_subsets ?(work_limit = 1 lsl 24) g s =
  let n = Graph.n g in
  let elts = Bitset.to_array s in
  let k = Array.length elts in
  if k = 0 then invalid_arg "Measure.wireless_of_set: empty set";
  if k > 30 then raise (Too_large "Measure.wireless_of_set: |S| > 30");
  check_work "Measure.wireless_of_set" (1 lsl k) work_limit;
  let cnt = Array.make n 0 in
  let uniq = ref 0 in
  let cur = Bitset.create n in
  let flip u =
    if Bitset.mem cur u then begin
      Bitset.remove_inplace cur u;
      Graph.iter_neighbors g u (fun w ->
          if not (Bitset.mem s w) then begin
            if cnt.(w) = 1 then decr uniq else if cnt.(w) = 2 then incr uniq;
            cnt.(w) <- cnt.(w) - 1
          end)
    end
    else begin
      Bitset.add_inplace cur u;
      Graph.iter_neighbors g u (fun w ->
          if not (Bitset.mem s w) then begin
            if cnt.(w) = 0 then incr uniq else if cnt.(w) = 1 then decr uniq;
            cnt.(w) <- cnt.(w) + 1
          end)
    end
  in
  let best = ref 0 in
  let best_set = ref (Bitset.create n) in
  let total = 1 lsl k in
  for i = 1 to total - 1 do
    let gray_prev = (i - 1) lxor ((i - 1) lsr 1) in
    let gray = i lxor (i lsr 1) in
    let changed = gray lxor gray_prev in
    let bit =
      let rec go b = if changed lsr b land 1 = 1 then b else go (b + 1) in
      go 0
    in
    flip elts.(bit);
    Metrics.incr m_gray_flips;
    if !uniq > !best then begin
      best := !uniq;
      best_set := Bitset.copy cur
    end
  done;
  (!best, !best_set)

let wireless_of_set_exact ?work_limit g s =
  let m, s' = max_unique_over_subsets ?work_limit g s in
  { value = float_of_int m /. float_of_int (Bitset.cardinal s); witness = s' }

let beta_w_exact ?alpha ?(work_limit = 1 lsl 26) g =
  Span.with_ ~name:"measure.beta_w_exact" (fun () ->
      let kmax = max_set_size ?alpha g in
      let n = Graph.n g in
      if n = 0 || kmax = 0 then invalid_arg "Measure.beta_w_exact: no feasible sets";
      (* Total work is sum over sets S of 2^|S| = Θ(3^n) when kmax = n; check
         before enumerating. *)
      let work = ref 0.0 in
      for k = 1 to kmax do
        work := !work +. (float_of_int (Combi.binomial n k) *. float_of_int (1 lsl k))
      done;
      if !work > float_of_int work_limit then begin
        Metrics.incr m_work_rejected;
        raise (Too_large "Measure.beta_w_exact: 3^n-style enumeration exceeds work limit")
      end;
      let best = ref infinity in
      let best_set = ref (Bitset.create n) in
      let buf = Bitset.create n in
      Combi.iter_subsets_le n kmax (fun idxs ->
          Metrics.incr m_sets_scored;
          Bitset.clear_inplace buf;
          Array.iter (Bitset.add_inplace buf) idxs;
          let m, _ = max_unique_over_subsets ~work_limit:max_int g buf in
          let v = float_of_int m /. float_of_int (Array.length idxs) in
          if v < !best then begin
            Metrics.incr m_improvements;
            best := v;
            best_set := Bitset.copy buf
          end);
      { value = !best; witness = !best_set })

let beta_w_sampled ?alpha ?(inner_work_limit = 1 lsl 22) rng ~samples g =
  Span.with_ ~name:"measure.beta_w_sampled" (fun () ->
      let kmax = max_set_size ?alpha g in
      let n = Graph.n g in
      if n = 0 || kmax = 0 then invalid_arg "Measure.beta_w_sampled: no feasible sets";
      let best = ref infinity in
      let best_set = ref (Bitset.create n) in
      for _ = 1 to samples do
        Metrics.incr m_sampled_sets;
        let k = 1 + Rng.int rng kmax in
        if k <= 22 then begin
          let s = Bitset.random_of_universe rng n k in
          match max_unique_over_subsets ~work_limit:inner_work_limit g s with
          | m, _ ->
              let v = float_of_int m /. float_of_int k in
              if v < !best then begin
                Metrics.incr m_improvements;
                best := v;
                best_set := s
              end
          | exception Too_large _ -> Metrics.incr m_inner_pruned
        end
      done;
      { value = !best; witness = !best_set })

let profile_beta ?alpha ?(work_limit = 1 lsl 24) g =
  let kmax = max_set_size ?alpha g in
  let n = Graph.n g in
  let count = Combi.subsets_count_le n kmax in
  check_work "Measure.profile_beta" count work_limit;
  let buf = Bitset.create n in
  let out = ref [] in
  for k = kmax downto 1 do
    let best = ref infinity in
    Combi.iter_subsets_of_size n k (fun idxs ->
        Bitset.clear_inplace buf;
        Array.iter (Bitset.add_inplace buf) idxs;
        let v = Nbhd.expansion_of_set g buf in
        if v < !best then best := v);
    out := (k, !best) :: !out
  done;
  !out

let profile_generic ?alpha ?(work_limit = 1 lsl 24) name g score =
  let kmax = max_set_size ?alpha g in
  let n = Graph.n g in
  let count = Combi.subsets_count_le n kmax in
  check_work name count work_limit;
  let buf = Bitset.create n in
  let out = ref [] in
  for k = kmax downto 1 do
    let best = ref infinity in
    Combi.iter_subsets_of_size n k (fun idxs ->
        Bitset.clear_inplace buf;
        Array.iter (Bitset.add_inplace buf) idxs;
        let v = score buf in
        if v < !best then best := v);
    out := (k, !best) :: !out
  done;
  !out

let profile_beta_u ?alpha ?work_limit g =
  profile_generic ?alpha ?work_limit "Measure.profile_beta_u" g (Nbhd.unique_expansion_of_set g)

let profile_beta_w ?alpha ?(work_limit = 1 lsl 26) g =
  (* Work is Σ_k C(n,k)·2^k; bound it before enumerating. *)
  let kmax = max_set_size ?alpha g in
  let n = Graph.n g in
  let work = ref 0.0 in
  for k = 1 to kmax do
    work := !work +. (float_of_int (Combi.binomial n k) *. float_of_int (1 lsl k))
  done;
  if !work > float_of_int work_limit then
    raise (Too_large "Measure.profile_beta_w: enumeration exceeds work limit");
  profile_generic ?alpha ~work_limit:max_int "Measure.profile_beta_w" g (fun s ->
      let m, _ = max_unique_over_subsets ~work_limit:max_int g s in
      float_of_int m /. float_of_int (Bitset.cardinal s))
