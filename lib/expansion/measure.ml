module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Combi = Wx_util.Combi
module Guard = Wx_util.Guard
module Rng = Wx_util.Rng
module Pool = Wx_par.Pool
module Metrics = Wx_obs.Metrics
module Span = Wx_obs.Span
module Work = Wx_obs.Work
module Progress = Wx_obs.Progress

let m_sets_scored = Metrics.counter "expansion.sets_scored"
let m_sampled_sets = Metrics.counter "expansion.sampled_sets"
let m_gray_flips = Metrics.counter "expansion.gray_flips"
let m_improvements = Metrics.counter "expansion.witness_improvements"
let m_work_rejected = Metrics.counter "expansion.work_rejected"
let m_inner_pruned = Metrics.counter "expansion.sampled_inner_pruned"
let m_sampled_clamped = Metrics.counter "expansion.sampled_clamped"
let m_subtrees_pruned = Metrics.counter "expansion.subtrees_pruned"
let work_subtrees_pruned = Work.kind "subtrees_pruned"

type witnessed = { value : float; witness : Bitset.t }

(* Rebinding, not a fresh exception: [Measure.Too_large] and
   [Wx_util.Guard.Too_large] are the same constructor, so a handler
   written against either name catches work refused by any layer —
   including [Bitset.iter_subsets]. *)
exception Too_large = Guard.Too_large

let max_set_size ?(alpha = 0.5) g =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Measure: alpha must be in (0, 1]";
  int_of_float (Float.floor (alpha *. float_of_int (Graph.n g)))

(* ---- deterministic minimisation ----

   The exact measures shard their enumeration over domains (one shard per
   smallest element), so "first set attaining the minimum" is no longer a
   well-defined witness. Instead the canonical witness is the
   lexicographically smallest minimiser (elements compared as sorted
   lists): the shard loop applies the tiebreak within a shard and [better]
   applies it across shards, making the reported witness a pure function of
   the graph — independent of job count, chunking and scheduling. *)

let lex_less a b = compare (Bitset.elements a) (Bitset.elements b) < 0

(* Same order as [lex_less] on sorted element arrays (element-wise, with an
   exhausted prefix comparing smaller), without materialising lists. The
   [_len] variant reads only the first [la]/[lb] slots of reused buffers. *)
let lex_less_arr_len a la b lb =
  let rec go i =
    if i >= la then la < lb
    else if i >= lb then false
    else if a.(i) < b.(i) then true
    else if a.(i) > b.(i) then false
    else go (i + 1)
  in
  go 0

let better a b =
  if b.value < a.value then b
  else if a.value < b.value then a
  else if lex_less b.witness a.witness then b
  else a

let better_opt a b =
  match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (better a b)

(* Fold one candidate into a shard-local best. [copy] when [w] is a reused
   enumeration buffer rather than an owned set. Sampled paths only — the
   exact paths inline the same tiebreak over index arrays. *)
let consider best v w ~copy =
  let improved =
    match !best with None -> true | Some b -> v < b.value || (v = b.value && lex_less w b.witness)
  in
  if improved then begin
    Metrics.incr m_improvements;
    best := Some { value = v; witness = (if copy then Bitset.copy w else w) }
  end

(* ---- work guards ---- *)

let check_work name actual limit =
  if actual > limit then begin
    Metrics.incr m_work_rejected;
    raise
      (Too_large
         (Printf.sprintf "%s: enumeration of %d sets exceeds work limit %d" name actual limit))
  end

(* [Combi.subsets_count_le] raises a bare [Overflow] when the count does not
   fit an int; translate it here so callers only ever see the documented
   [Too_large] (an overflowing count certainly exceeds any work limit). *)
let count_sets_le name g kmax =
  try Combi.subsets_count_le (Graph.n g) kmax
  with Combi.Overflow ->
    Metrics.incr m_work_rejected;
    raise
      (Too_large
         (Printf.sprintf "%s: more than max_int candidate sets (n = %d, kmax = %d)" name
            (Graph.n g) kmax))

(* Σ_k C(n,k)·2^k Gray-code steps for the wireless measures. The 2^k factor
   is computed as [ldexp 1.0 k]: the previous [float_of_int (1 lsl k)]
   overflowed the OCaml int at k >= 62 and silently defeated the guard.
   A binomial overflow means the work certainly exceeds any limit. *)
let check_wireless_work name g kmax work_limit =
  let n = Graph.n g in
  let work =
    try
      let acc = ref 0.0 in
      for k = 1 to kmax do
        acc := !acc +. (float_of_int (Combi.binomial n k) *. ldexp 1.0 k)
      done;
      !acc
    with Combi.Overflow -> infinity
  in
  if work > float_of_int work_limit then begin
    Metrics.incr m_work_rejected;
    raise
      (Too_large
         (Printf.sprintf "%s: 3^n-style enumeration (n = %d, kmax = %d) exceeds work limit %d"
            name n kmax work_limit))
  end

let max_gray_bits = Guard.max_gray_bits

(* Single-set Gray enumeration guard — the shared {!Wx_util.Guard}
   contract, plus this layer's rejection counter. *)
let check_gray_work name k work_limit =
  try Guard.check_gray_work name k work_limit
  with Too_large _ as e ->
    Metrics.incr m_work_rejected;
    raise e

(* ---- incremental scoring engine ----

   The delta enumerators in [Combi] report how much of the previous subset
   survives each step ([kept] leading slots); an [Nbhd.Inc] arena absorbs
   the difference with O(deg) [add]/[remove] calls and answers
   |Γ⁻(S)|, |Γ¹(S)|, |S| in O(1). One arena per shard, reused across the
   whole enumeration — the per-set cost is the touched edges, with no
   allocation (the old path built a fresh neighborhood bitset per set).

   A scorer couples the arena to a measure. [score] reads the arena (and
   for the wireless measure runs the inner Gray-code maximisation) for the
   set in the first [len] slots of the (possibly longer, reused) buffer;
   [bound_num] is the branch-and-bound numerator floor — a lower bound on
   the measure's numerator over {e every} strict extension of the set just
   scored by at most [budget] vertices, all larger than [last] (so it must
   be called while the arena still holds that set); [flush] publishes any
   batched counters once the shard finishes, so the hot loop performs no
   atomic operations. *)

type inc_scorer = {
  score : int array -> len:int -> float;
  bound_num : last:int -> budget:int -> int;
  flush : unit -> unit;
}

let expansion_scorer inc =
  {
    score = (fun _ ~len:_ -> Nbhd.Inc.expansion inc);
    bound_num = (fun ~last:_ ~budget -> Nbhd.Inc.boundary_floor inc ~budget);
    flush = (fun () -> ());
  }

let unique_scorer g inc =
  (* [smax.(v)] = max degree over vertices >= v: the DFS only ever appends
     elements larger than the current maximum, so it bounds the degree of
     every vertex an extension could add. *)
  let n = Graph.n g in
  let smax = Array.make (n + 1) 0 in
  for v = n - 1 downto 0 do
    smax.(v) <- max (Graph.degree g v) smax.(v + 1)
  done;
  {
    score = (fun _ ~len:_ -> Nbhd.Inc.unique_expansion inc);
    bound_num =
      (fun ~last ~budget -> Nbhd.Inc.unique_floor inc ~budget ~max_add_degree:smax.(last + 1));
    flush = (fun () -> ());
  }

(* Scratch for the count-only inner Gray kernel: per-vertex neighbor counts
   plus mutable int fields (a boxed record, allocated once per shard, so
   per-subset state updates allocate nothing). *)
type gray_state = {
  cnt : int array;
  mutable flips : int;
  mutable uniq : int;
  mutable best : int;
}

(* Max of |Γ¹_S(S')| over S' ⊆ S for S = the arena's current set (listed in
   [elts], length >= 1), by Gray-code enumeration. Count-only: no witness,
   no bitsets, membership tests against the arena. [st.cnt] must be
   all-zero on entry and is re-zeroed on exit — the Gray walk over
   [1 .. 2^len - 1] ends at the singleton {elts.(len-1)}, so one unwind
   pass restores it in O(deg). *)
let gray_max_unique_count g inc st elts len =
  if len > max_gray_bits then
    raise (Too_large "Measure: inner Gray enumeration exceeds the native-int ceiling");
  st.uniq <- 0;
  st.best <- 0;
  let cnt = st.cnt in
  let total = 1 lsl len in
  for i = 1 to total - 1 do
    (* The bit toggled at Gray step i is the lowest set bit of i; it is an
       add exactly when set in gray(i) = i lxor (i lsr 1). *)
    let bit =
      let rec go b = if (i lsr b) land 1 = 1 then b else go (b + 1) in
      go 0
    in
    let u = Array.unsafe_get elts bit in
    let adding = ((i lxor (i lsr 1)) lsr bit) land 1 = 1 in
    let nbrs = Graph.neighbors g u in
    if adding then
      for j = 0 to Array.length nbrs - 1 do
        let w = Array.unsafe_get nbrs j in
        if not (Nbhd.Inc.mem inc w) then begin
          let c = cnt.(w) in
          if c = 0 then st.uniq <- st.uniq + 1 else if c = 1 then st.uniq <- st.uniq - 1;
          cnt.(w) <- c + 1
        end
      done
    else
      for j = 0 to Array.length nbrs - 1 do
        let w = Array.unsafe_get nbrs j in
        if not (Nbhd.Inc.mem inc w) then begin
          let c = cnt.(w) in
          if c = 1 then st.uniq <- st.uniq - 1 else if c = 2 then st.uniq <- st.uniq + 1;
          cnt.(w) <- c - 1
        end
      done;
    if st.uniq > st.best then st.best <- st.uniq
  done;
  st.flips <- st.flips + (total - 1);
  let last = Graph.neighbors g elts.(len - 1) in
  for j = 0 to Array.length last - 1 do
    let w = Array.unsafe_get last j in
    if not (Nbhd.Inc.mem inc w) then cnt.(w) <- 0
  done;
  st.best

let wireless_scorer g inc =
  let st = { cnt = Array.make (Graph.n g) 0; flips = 0; uniq = 0; best = 0 } in
  {
    score =
      (fun idxs ~len ->
        let m = gray_max_unique_count g inc st idxs len in
        float_of_int m /. float_of_int len);
    bound_num =
      (fun ~last:_ ~budget ->
        (* [st.best] is max_{S'⊆S} |Γ¹_S(S')| for the set just scored. For
           any T ⊇ S the same S' is still a candidate, and moving a vertex
           into T removes at most that vertex itself from Γ¹_T(S') — the
           per-N-vertex counts w.r.t. the fixed S' do not change. So
           w(T) >= st.best - budget. *)
        let b = st.best - budget in
        if b > 0 then b else 0);
    flush =
      (fun () ->
        if st.flips > 0 then begin
          Metrics.add m_gray_flips st.flips;
          Work.add Work.gray_steps st.flips
        end);
  }

(* ---- exact minima, sharded by smallest element ----

   Shard a = all subsets whose smallest element is a; shards are
   independent and jointly exhaustive, and the weighted pool splits
   oversized ones into contiguous second-element sub-ranges so idle
   workers steal from the heavy low-[a] shards. Each work unit drives one
   arena through the pre-order DFS enumeration and keeps its best as a
   plain (value, sorted index buffer) pair; the witness bitset is
   materialised once, when the unit returns.

   Branch-and-bound: after scoring a set S the scorer's [bound_num] gives
   a floor on the measure's numerator over every strict extension of S;
   dividing by the largest reachable set size lower-bounds the measure
   over the whole subtree. The subtree is cut only when that bound is
   STRICTLY above the shared incumbent — the smallest value any unit has
   scored so far, which only decreases toward the true minimum — so no
   minimiser or equal-valued (tie-broken) set is ever skipped. Correctly
   rounded float division is monotone in its real argument, so the float
   comparison inherits the soundness of the integer inequality. Values
   and witnesses are therefore bit-identical to the unpruned enumeration
   at any job count; only the visit COUNT is timing-dependent (DESIGN
   §11). Determinism of the result never rests on the incumbent: the
   min + lex tiebreak is order-independent, and the pool combines unit
   results in (shard, part) order. *)

(* Progress heartbeat granularity: shards tick once per this many scored
   sets (a power of two, so the hot-loop test is one [land]); the remainder
   is flushed when the shard finishes. Coarse enough that a disabled run
   pays one bool load per batch, fine enough that the heartbeat stays live
   on slow (wireless) scorers. *)
let progress_batch = 4096

let min_over_shards name ?(progress_total = 0) ?(prune = true) ?jobs g kmax make_scorer =
  let n = Graph.n g in
  let task = Progress.start ~units:"sets" ~label:name ~total:progress_total () in
  (* Shared incumbent, read by every unit's pruning test. Stored as a
     boxed float Atomic: OCaml ints cannot hold the bit pattern of every
     double, and the box only allocates on publication — which the CAS
     loop attempts only on strict improvement. *)
  let incumbent = Atomic.make infinity in
  let rec publish v =
    let cur = Atomic.get incumbent in
    if v < cur && not (Atomic.compare_and_set incumbent cur v) then publish v
  in
  let scratch = max 1 (min kmax n) in
  (* One work unit: the sub-shard of smallest-element [a] whose second
     element lies in [blo, bhi), plus the singleton {a} iff [self]. *)
  let unit_body a ~blo ~bhi ~self =
    let inc = Nbhd.Inc.create g in
    let sc = make_scorer inc in
    let prev = Array.make scratch 0 in
    let prev_len = ref 0 in
    let scored = ref 0 in
    let cut = ref 0 in
    let improvements = ref 0 in
    let have = ref false in
    (* 1-slot float array: improvements store without boxing, so the only
       timing-dependent allocation in a pruned run is incumbent boxes. *)
    let best_v = Array.make 1 infinity in
    let best_w = Array.make scratch 0 in
    let best_len = ref 0 in
    Combi.iter_subshard_le_prune n kmax a ~blo ~bhi ~self (fun buf ~len ~kept ->
        for j = !prev_len - 1 downto kept do
          Nbhd.Inc.remove inc prev.(j)
        done;
        for j = kept to len - 1 do
          let v = buf.(j) in
          Nbhd.Inc.add inc v;
          prev.(j) <- v
        done;
        prev_len := len;
        incr scored;
        if !scored land (progress_batch - 1) = 0 then Progress.tick task progress_batch;
        let v = sc.score buf ~len in
        if
          (not !have)
          || v < best_v.(0)
          || (v = best_v.(0) && lex_less_arr_len buf len best_w !best_len)
        then begin
          have := true;
          incr improvements;
          best_v.(0) <- v;
          Array.blit buf 0 best_w 0 len;
          best_len := len
        end;
        (* Prune decision for the subtree of strict extensions. [budget] =
           how many vertices an extension can still add; the largest
           reachable size [len + budget] is the denominator floor's mate.
           Strict [>]: equal-valued subtrees survive so the lex tiebreak
           sees every candidate witness it would have seen unpruned. *)
        prune
        && begin
             if v < Atomic.get incumbent then publish v;
             let budget = min (kmax - len) (n - 1 - buf.(len - 1)) in
             budget > 0
             && begin
                  let floor_num = sc.bound_num ~last:buf.(len - 1) ~budget in
                  let lb = float_of_int floor_num /. float_of_int (len + budget) in
                  lb > Atomic.get incumbent
                  &&
                  (incr cut;
                   true)
                end
           end);
    sc.flush ();
    if !scored > 0 then begin
      Metrics.add m_sets_scored !scored;
      Work.add Work.sets_scored !scored;
      let rem = !scored land (progress_batch - 1) in
      if rem > 0 then Progress.tick task rem
    end;
    if !cut > 0 then begin
      Metrics.add m_subtrees_pruned !cut;
      Work.add work_subtrees_pruned !cut
    end;
    if !improvements > 0 then Metrics.add m_improvements !improvements;
    if !have then
      Some { value = best_v.(0); witness = Bitset.of_array n (Array.sub best_w 0 !best_len) }
    else None
  in
  (* Steal weights: |shard a| = Σ_{j<=kmax-1} C(n-a-1, j) subsets. The
     pool splits heavy shards into [parts] units; the split point between
     parts is by cumulative second-element weight, recomputed identically
     by every unit of the shard (same floats, same order), so the ranges
     are consistent and partition [a+1, n). *)
  let shard_weight a = Combi.count_subsets_upto_float (n - 1 - a) (kmax - 1) in
  let map a ~part ~parts =
    if parts = 1 then unit_body a ~blo:(a + 1) ~bhi:n ~self:true
    else begin
      let wgt b = Combi.count_subsets_upto_float (n - 1 - b) (kmax - 2) in
      let total = ref 0.0 in
      for b = a + 1 to n - 1 do
        total := !total +. wgt b
      done;
      let lo p =
        if p <= 0 then a + 1
        else if p >= parts then n
        else begin
          let thresh = !total *. float_of_int p /. float_of_int parts in
          let acc = ref 0.0 in
          let b = ref (a + 1) in
          while !b < n && !acc +. wgt !b <= thresh do
            acc := !acc +. wgt !b;
            incr b
          done;
          !b
        end
      in
      unit_body a ~blo:(lo part) ~bhi:(lo (part + 1)) ~self:(part = 0)
    end
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Progress.finish task)
      (fun () ->
        Pool.parallel_reduce_weighted ?jobs ~n ~weight:shard_weight ~init:None ~map
          ~combine:better_opt ())
  in
  match result with
  | Some w -> w
  | None -> invalid_arg (name ^ ": no feasible sets")

(* Generic exact minimum of a measure over non-empty subsets of size <= kmax,
   guarded by the candidate-set count. *)
let min_over_sets name ?(work_limit = 1 lsl 24) ?prune ?jobs g kmax make_scorer =
  let n = Graph.n g in
  if n = 0 || kmax = 0 then invalid_arg (name ^ ": no feasible sets");
  let count = count_sets_le name g kmax in
  check_work name count work_limit;
  min_over_shards name ~progress_total:count ?prune ?jobs g kmax make_scorer

(* ---- sampled minima, sharded by sample block ----

   Each fixed-size block of samples draws from its own [Rng.split] child
   stream, split off in block order before any parallelism starts. The
   result is therefore a function of (seed, samples) alone: job count and
   scheduling cannot change which sets are drawn or which witness wins. *)

let sample_block = 32

let split_streams rng nblocks =
  let streams = Array.make nblocks rng in
  for b = 0 to nblocks - 1 do
    streams.(b) <- Rng.split rng
  done;
  streams

let min_over_sampled_sets ?jobs g kmax rng samples score =
  let n = Graph.n g in
  if n = 0 || kmax = 0 then invalid_arg "Measure: no feasible sets";
  if samples <= 0 then invalid_arg "Measure: samples must be positive";
  let nblocks = (samples + sample_block - 1) / sample_block in
  let streams = split_streams rng nblocks in
  let shard b =
    let r = streams.(b) in
    let best = ref None in
    let ndraws = min sample_block (samples - (b * sample_block)) in
    for _ = 1 to ndraws do
      Metrics.incr m_sampled_sets;
      let k = 1 + Rng.int r kmax in
      (* [kmax] is not necessarily <= n for direct callers; a draw above n
         cannot be materialised. Clamp it — after the draw, so the stream
         stays aligned — and account for the distortion, exactly like the
         wireless sampler's inner-cap clamp. *)
      let k =
        if k > n then begin
          Metrics.incr m_sampled_clamped;
          n
        end
        else k
      in
      let s = Bitset.random_of_universe r n k in
      consider best (score s) s ~copy:false
    done;
    Work.add Work.draws ndraws;
    !best
  in
  match Pool.parallel_reduce ?jobs ~n:nblocks ~init:None ~map:shard ~combine:better_opt () with
  | Some w -> w
  | None -> assert false

let beta_exact ?alpha ?work_limit ?prune ?jobs g =
  Span.with_ ~name:"measure.beta_exact" (fun () ->
      min_over_sets "Measure.beta_exact" ?work_limit ?prune ?jobs g (max_set_size ?alpha g)
        expansion_scorer)

let beta_sampled ?alpha ?jobs rng ~samples g =
  Span.with_ ~name:"measure.beta_sampled" (fun () ->
      min_over_sampled_sets ?jobs g (max_set_size ?alpha g) rng samples
        (Nbhd.expansion_of_set g))

let beta_u_exact ?alpha ?work_limit ?prune ?jobs g =
  Span.with_ ~name:"measure.beta_u_exact" (fun () ->
      min_over_sets "Measure.beta_u_exact" ?work_limit ?prune ?jobs g (max_set_size ?alpha g)
        (unique_scorer g))

let beta_u_sampled ?alpha ?jobs rng ~samples g =
  Span.with_ ~name:"measure.beta_u_sampled" (fun () ->
      min_over_sampled_sets ?jobs g (max_set_size ?alpha g) rng samples
        (Nbhd.unique_expansion_of_set g))

(* Exact max over S' of |Γ¹_S(S')| for a fixed S, returning (max, argmax).
   Gray-code enumeration with incremental per-vertex neighbor counts. The
   witness-tracking variant used by [wireless_of_set_exact] and the sampled
   path; the exact outer loops use the count-only kernel above instead. *)
let max_unique_over_subsets ?(work_limit = 1 lsl 24) g s =
  let n = Graph.n g in
  let elts = Bitset.to_array s in
  let k = Array.length elts in
  if k = 0 then invalid_arg "Measure.wireless_of_set: empty set";
  check_gray_work "Measure.wireless_of_set" k work_limit;
  let cnt = Array.make n 0 in
  let uniq = ref 0 in
  let cur = Bitset.create n in
  let best = ref 0 in
  let best_set = ref (Bitset.create n) in
  let total = 1 lsl k in
  for i = 1 to total - 1 do
    let bit =
      let rec go b = if (i lsr b) land 1 = 1 then b else go (b + 1) in
      go 0
    in
    let u = elts.(bit) in
    let adding = ((i lxor (i lsr 1)) lsr bit) land 1 = 1 in
    let nbrs = Graph.neighbors g u in
    if adding then begin
      Bitset.add_inplace cur u;
      for j = 0 to Array.length nbrs - 1 do
        let w = Array.unsafe_get nbrs j in
        if not (Bitset.mem s w) then begin
          let c = cnt.(w) in
          if c = 0 then incr uniq else if c = 1 then decr uniq;
          cnt.(w) <- c + 1
        end
      done
    end
    else begin
      Bitset.remove_inplace cur u;
      for j = 0 to Array.length nbrs - 1 do
        let w = Array.unsafe_get nbrs j in
        if not (Bitset.mem s w) then begin
          let c = cnt.(w) in
          if c = 1 then decr uniq else if c = 2 then incr uniq;
          cnt.(w) <- c - 1
        end
      done
    end;
    if !uniq > !best then begin
      best := !uniq;
      best_set := Bitset.copy cur
    end
  done;
  Metrics.add m_gray_flips (total - 1);
  Work.add Work.gray_steps (total - 1);
  (!best, !best_set)

let wireless_of_set_exact ?work_limit g s =
  let m, s' = max_unique_over_subsets ?work_limit g s in
  { value = float_of_int m /. float_of_int (Bitset.cardinal s); witness = s' }

let beta_w_exact ?alpha ?(work_limit = 1 lsl 26) ?prune ?jobs g =
  Span.with_ ~name:"measure.beta_w_exact" (fun () ->
      let kmax = max_set_size ?alpha g in
      let n = Graph.n g in
      if n = 0 || kmax = 0 then invalid_arg "Measure.beta_w_exact: no feasible sets";
      check_wireless_work "Measure.beta_w_exact" g kmax work_limit;
      (* The heartbeat counts outer sets; the admitted Gray work bounds the
         subset count, so this is safe to compute after the guard. *)
      let progress_total = try Combi.subsets_count_le n kmax with Combi.Overflow -> 0 in
      min_over_shards "Measure.beta_w_exact" ~progress_total ?prune ?jobs g kmax
        (wireless_scorer g))

(* Largest sampled |S| for which the inner 2^|S| maximisation is viable;
   matches the default [inner_work_limit] of 2^22 Gray-code steps. *)
let wireless_sample_cap = 22

let beta_w_sampled ?alpha ?(inner_work_limit = 1 lsl 22) ?jobs rng ~samples g =
  Span.with_ ~name:"measure.beta_w_sampled" (fun () ->
      let kmax = max_set_size ?alpha g in
      let n = Graph.n g in
      if n = 0 || kmax = 0 then invalid_arg "Measure.beta_w_sampled: no feasible sets";
      if samples <= 0 then invalid_arg "Measure.beta_w_sampled: samples must be positive";
      let nblocks = (samples + sample_block - 1) / sample_block in
      let streams = split_streams rng nblocks in
      let shard b =
        let r = streams.(b) in
        let best = ref None in
        let ndraws = min sample_block (samples - (b * sample_block)) in
        for _ = 1 to ndraws do
          Metrics.incr m_sampled_sets;
          let k = 1 + Rng.int r kmax in
          (* Draws above the inner-enumeration cap used to be discarded
             with no replacement, silently wasting the sample budget
             whenever kmax > 22; clamp them to the cap instead and account
             for the distortion. *)
          let k =
            if k > wireless_sample_cap then begin
              Metrics.incr m_sampled_clamped;
              wireless_sample_cap
            end
            else k
          in
          let s = Bitset.random_of_universe r n k in
          match max_unique_over_subsets ~work_limit:inner_work_limit g s with
          | m, _ -> consider best (float_of_int m /. float_of_int k) s ~copy:false
          | exception Too_large _ -> Metrics.incr m_inner_pruned
        done;
        Work.add Work.draws ndraws;
        !best
      in
      match Pool.parallel_reduce ?jobs ~n:nblocks ~init:None ~map:shard ~combine:better_opt () with
      | Some w -> w
      | None ->
          (* Every sample hit the inner work limit: keep the historical
             "no certificate" result rather than raising. *)
          { value = infinity; witness = Bitset.create n })

(* ---- per-size profiles ----

   Values only (no witness), so plain [Float.min] is the combine: it is
   associative and commutative, and scores are never NaN, so the profile is
   deterministic without any tiebreak. Same incremental engine as the
   minima, one size at a time. *)

let profile_sizes ?jobs g kmax make_scorer =
  let n = Graph.n g in
  let out = ref [] in
  for k = kmax downto 1 do
    let shard a =
      let inc = Nbhd.Inc.create g in
      let sc = make_scorer inc in
      let prev = Array.make k 0 in
      let prev_len = ref 0 in
      let scored = ref 0 in
      let best = ref infinity in
      Combi.iter_subsets_of_size_with_min_delta n k a (fun idxs ~kept ->
          for j = !prev_len - 1 downto kept do
            Nbhd.Inc.remove inc prev.(j)
          done;
          for j = kept to k - 1 do
            let v = idxs.(j) in
            Nbhd.Inc.add inc v;
            prev.(j) <- v
          done;
          prev_len := k;
          incr scored;
          let v = sc.score idxs ~len:k in
          if v < !best then best := v);
      sc.flush ();
      if !scored > 0 then begin
        Metrics.add m_sets_scored !scored;
        Work.add Work.sets_scored !scored
      end;
      !best
    in
    let best =
      Pool.parallel_reduce ?jobs ~n:(n - k + 1) ~init:infinity ~map:shard ~combine:Float.min ()
    in
    out := (k, best) :: !out
  done;
  !out

let profile_beta ?alpha ?(work_limit = 1 lsl 24) ?jobs g =
  let kmax = max_set_size ?alpha g in
  let count = count_sets_le "Measure.profile_beta" g kmax in
  check_work "Measure.profile_beta" count work_limit;
  profile_sizes ?jobs g kmax expansion_scorer

let profile_beta_u ?alpha ?(work_limit = 1 lsl 24) ?jobs g =
  let kmax = max_set_size ?alpha g in
  let count = count_sets_le "Measure.profile_beta_u" g kmax in
  check_work "Measure.profile_beta_u" count work_limit;
  profile_sizes ?jobs g kmax (unique_scorer g)

let profile_beta_w ?alpha ?(work_limit = 1 lsl 26) ?jobs g =
  let kmax = max_set_size ?alpha g in
  check_wireless_work "Measure.profile_beta_w" g kmax work_limit;
  profile_sizes ?jobs g kmax (wireless_scorer g)
