module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

let gamma g s =
  let out = Bitset.create (Graph.n g) in
  Bitset.iter (fun v -> Graph.iter_neighbors g v (Bitset.add_inplace out)) s;
  out

let gamma_minus g s =
  let out = gamma g s in
  Bitset.diff_inplace out s;
  out

let deg_in g v s =
  Graph.fold_neighbors g v (fun acc w -> if Bitset.mem s w then acc + 1 else acc) 0

(* Count, per vertex outside [s], how many neighbors it has in [s']; collect
   those with exactly one. Shared by gamma1 and gamma1_excluding. *)
let unique_outside g ~outside_of ~from =
  let n = Graph.n g in
  let cnt = Array.make n 0 in
  Bitset.iter
    (fun v ->
      Graph.iter_neighbors g v (fun w ->
          if not (Bitset.mem outside_of w) then cnt.(w) <- cnt.(w) + 1))
    from;
  let out = Bitset.create n in
  for w = 0 to n - 1 do
    if cnt.(w) = 1 then Bitset.add_inplace out w
  done;
  out

let gamma1 g s = unique_outside g ~outside_of:s ~from:s

let gamma1_excluding g s s' =
  if not (Bitset.subset s' s) then invalid_arg "Nbhd.gamma1_excluding: S' must be a subset of S";
  unique_outside g ~outside_of:s ~from:s'

let expansion_of_set g s =
  let k = Bitset.cardinal s in
  if k = 0 then nan else float_of_int (Bitset.cardinal (gamma_minus g s)) /. float_of_int k

let unique_expansion_of_set g s =
  let k = Bitset.cardinal s in
  if k = 0 then nan else float_of_int (Bitset.cardinal (gamma1 g s)) /. float_of_int k

module Inc = struct
  type t = {
    g : Graph.t;
    n : int;
    in_s : bool array;
    cnt : int array;  (* per-vertex count of neighbors inside S *)
    dirty : int array;  (* stack of vertices whose in_s/cnt may be nonzero *)
    on_dirty : bool array;
    mutable ndirty : int;
    mutable size : int;  (* |S| *)
    mutable boundary : int;  (* |Γ(S) \ S| *)
    mutable uniq : int;  (* |Γ¹(S)| *)
  }

  let create g =
    let n = Graph.n g in
    {
      g;
      n;
      in_s = Array.make n false;
      cnt = Array.make n 0;
      dirty = Array.make n 0;
      on_dirty = Array.make n false;
      ndirty = 0;
      size = 0;
      boundary = 0;
      uniq = 0;
    }

  let[@inline] touch t v =
    if not t.on_dirty.(v) then begin
      t.on_dirty.(v) <- true;
      t.dirty.(t.ndirty) <- v;
      t.ndirty <- t.ndirty + 1
    end

  let add t v =
    if t.in_s.(v) then invalid_arg "Nbhd.Inc.add: vertex already in S";
    touch t v;
    t.in_s.(v) <- true;
    t.size <- t.size + 1;
    (* v leaves the outside world: it no longer counts toward the boundary
       or the unique neighborhood, whatever its neighbor count. *)
    let cv = t.cnt.(v) in
    if cv > 0 then t.boundary <- t.boundary - 1;
    if cv = 1 then t.uniq <- t.uniq - 1;
    let nbrs = Graph.neighbors t.g v in
    for i = 0 to Array.length nbrs - 1 do
      let w = Array.unsafe_get nbrs i in
      touch t w;
      let c = t.cnt.(w) in
      t.cnt.(w) <- c + 1;
      if not t.in_s.(w) then
        if c = 0 then begin
          t.boundary <- t.boundary + 1;
          t.uniq <- t.uniq + 1
        end
        else if c = 1 then t.uniq <- t.uniq - 1
    done

  let remove t v =
    if not t.in_s.(v) then invalid_arg "Nbhd.Inc.remove: vertex not in S";
    t.in_s.(v) <- false;
    t.size <- t.size - 1;
    let nbrs = Graph.neighbors t.g v in
    for i = 0 to Array.length nbrs - 1 do
      let w = Array.unsafe_get nbrs i in
      let c = t.cnt.(w) in
      t.cnt.(w) <- c - 1;
      if not t.in_s.(w) then
        if c = 1 then begin
          t.boundary <- t.boundary - 1;
          t.uniq <- t.uniq - 1
        end
        else if c = 2 then t.uniq <- t.uniq + 1
    done;
    (* v rejoins the outside world and counts again if it has neighbors
       left in S. Every vertex reachable here was already touched by the
       matching [add], so the dirty list needs no update. *)
    let cv = t.cnt.(v) in
    if cv > 0 then t.boundary <- t.boundary + 1;
    if cv = 1 then t.uniq <- t.uniq + 1

  let reset t =
    for i = 0 to t.ndirty - 1 do
      let v = t.dirty.(i) in
      t.in_s.(v) <- false;
      t.cnt.(v) <- 0;
      t.on_dirty.(v) <- false
    done;
    t.ndirty <- 0;
    t.size <- 0;
    t.boundary <- 0;
    t.uniq <- 0

  let[@inline] cardinal t = t.size
  let[@inline] boundary t = t.boundary
  let[@inline] unique t = t.uniq
  let[@inline] mem t v = t.in_s.(v)
  let[@inline] deg_in t v = t.cnt.(v)

  let expansion t =
    if t.size = 0 then nan else float_of_int t.boundary /. float_of_int t.size

  let unique_expansion t =
    if t.size = 0 then nan else float_of_int t.uniq /. float_of_int t.size

  (* Branch-and-bound numerator floors. Both are monotone consequences of
     the arena's single-vertex deltas, so they hold for EVERY superset
     reachable by at most [budget] further [add]s — the soundness the
     pruned enumeration in Measure leans on. *)

  let[@inline] boundary_floor t ~budget =
    (* Adding one vertex removes at most itself from Γ⁻(S): neighbors only
       ever join the boundary when their count rises from 0. *)
    let b = t.boundary - budget in
    if b > 0 then b else 0

  let[@inline] unique_floor t ~budget ~max_add_degree =
    (* Adding vertex v can delete at most 1 + deg(v) members of Γ¹(S): v
       itself, plus each neighbor whose inside-count rises from 1 to 2.
       [max_add_degree] bounds deg(v) over the vertices still addable. *)
    let u = t.uniq - (budget * (1 + max_add_degree)) in
    if u > 0 then u else 0
end

module Bip = struct
  module Bipartite = Wx_graph.Bipartite

  let covered t s' =
    let out = Bitset.create (Bipartite.n_count t) in
    Bitset.iter (fun u -> Array.iter (Bitset.add_inplace out) (Bipartite.neighbors_s t u)) s';
    out

  let counts t s' =
    let cnt = Array.make (Bipartite.n_count t) 0 in
    Bitset.iter
      (fun u -> Array.iter (fun w -> cnt.(w) <- cnt.(w) + 1) (Bipartite.neighbors_s t u))
      s';
    cnt

  let unique t s' =
    let cnt = counts t s' in
    let out = Bitset.create (Bipartite.n_count t) in
    Array.iteri (fun w c -> if c = 1 then Bitset.add_inplace out w) cnt;
    out

  let unique_count t s' =
    let cnt = counts t s' in
    Array.fold_left (fun acc c -> if c = 1 then acc + 1 else acc) 0 cnt

  let iter_gray_unique t elts f =
    let k = Array.length elts in
    if k > 30 then invalid_arg "Nbhd.Bip.iter_gray_unique: too many elements";
    let cnt = Array.make (Bipartite.n_count t) 0 in
    let uniq = ref 0 in
    let buf = Bitset.create (Bipartite.s_count t) in
    let flip u =
      (* Toggle S-vertex [u]; update per-N counts and the unique counter. *)
      if Bitset.mem buf u then begin
        Bitset.remove_inplace buf u;
        Array.iter
          (fun w ->
            if cnt.(w) = 1 then decr uniq else if cnt.(w) = 2 then incr uniq;
            cnt.(w) <- cnt.(w) - 1)
          (Bipartite.neighbors_s t u)
      end
      else begin
        Bitset.add_inplace buf u;
        Array.iter
          (fun w ->
            if cnt.(w) = 0 then incr uniq else if cnt.(w) = 1 then decr uniq;
            cnt.(w) <- cnt.(w) + 1)
          (Bipartite.neighbors_s t u)
      end
    in
    f buf !uniq;
    let total = 1 lsl k in
    for i = 1 to total - 1 do
      let gray_prev = (i - 1) lxor ((i - 1) lsr 1) in
      let gray = i lxor (i lsr 1) in
      let changed = gray lxor gray_prev in
      let bit =
        let rec go b = if changed lsr b land 1 = 1 then b else go (b + 1) in
        go 0
      in
      flip elts.(bit);
      f buf !uniq
    done
end
