(** Neighborhood operators from Section 2.1.

    All set arguments and results are {!Wx_util.Bitset.t} over the graph's
    vertex universe. Notation matches the paper:
    - [Γ(S)]: all neighbors of S (may intersect S),
    - [Γ⁻(S) = Γ(S) \ S]: external neighbors,
    - [Γ¹(S)]: vertices outside S with {e exactly one} neighbor in S,
    - [Γ¹_S(S′)]: vertices outside S with exactly one neighbor in S′ ⊆ S
      (the S-excluding unique neighborhood — the quantity wireless
      expansion maximizes). *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

val gamma : Graph.t -> Bitset.t -> Bitset.t
val gamma_minus : Graph.t -> Bitset.t -> Bitset.t
val gamma1 : Graph.t -> Bitset.t -> Bitset.t

val gamma1_excluding : Graph.t -> Bitset.t -> Bitset.t -> Bitset.t
(** [gamma1_excluding g s s'] is [Γ¹_S(S′)]. Requires [S′ ⊆ S]. *)

val deg_in : Graph.t -> int -> Bitset.t -> int
(** [deg_in g v s] is [deg(v, S)], the number of v's neighbors inside [s]. *)

val expansion_of_set : Graph.t -> Bitset.t -> float
(** [|Γ⁻(S)| / |S|]; [nan] on the empty set. *)

val unique_expansion_of_set : Graph.t -> Bitset.t -> float
(** [|Γ¹(S)| / |S|]. *)

(** Incremental neighborhood counters — the delta-scoring arena behind the
    exact measures.

    An [Inc.t] maintains a current set S under single-vertex [add]/[remove]
    in O(deg v) time with zero allocation, exposing O(1) reads of [|S|],
    [|Γ⁻(S)| ] and [|Γ¹(S)|]. Driven by {!Wx_util.Combi}'s delta
    enumerators, this replaces the O(|S|·Δ + n) fresh-bitset scoring of
    {!expansion_of_set}/{!unique_expansion_of_set} per enumerated subset.

    Arena discipline: one [Inc.t] per worker shard, reused across the whole
    enumeration. [reset] restores the empty-set state in O(touched) — it
    walks a dirty list of the vertices whose entries may be stale rather
    than clearing the full n-sized arrays. Not domain-safe: never share one
    arena between domains. *)
module Inc : sig
  type t

  val create : Graph.t -> t
  (** Fresh arena for [g] with S = ∅. O(n) allocation, done once per shard. *)

  val add : t -> int -> unit
  (** Add a vertex to S. O(deg v). Raises [Invalid_argument] if already
      present. *)

  val remove : t -> int -> unit
  (** Remove a vertex from S. O(deg v). Raises [Invalid_argument] if not
      present. *)

  val reset : t -> unit
  (** Restore S = ∅ in O(vertices touched since the last reset). *)

  val cardinal : t -> int  (** [|S|]. O(1). *)

  val boundary : t -> int  (** [|Γ(S) \ S|] = [|Γ⁻(S)|]. O(1). *)

  val unique : t -> int  (** [|Γ¹(S)|]. O(1). *)

  val mem : t -> int -> bool  (** Membership in S. O(1). *)

  val deg_in : t -> int -> int
  (** Number of the vertex's neighbors currently in S. O(1). *)

  val expansion : t -> float
  (** [boundary / cardinal]; [nan] on the empty set. Bit-identical to
      {!expansion_of_set} on the same set: both divide the same two exact
      integers. *)

  val unique_expansion : t -> float
  (** [unique / cardinal]; [nan] on the empty set. *)

  (** {2 Branch-and-bound floors}

      Monotone lower bounds on the numerators of the expansion measures,
      valid for {e every} superset T ⊇ S reachable with at most [budget]
      further {!add}s. They follow from the per-vertex deltas the arena
      maintains: an added vertex removes at most itself from [Γ⁻(S)], and
      at most [1 + deg v] vertices from [Γ¹(S)]. Dividing a floor by the
      maximum final size gives a lower bound on the measure over the whole
      subtree of extensions — the pruning test of
      {!Wx_expansion.Measure}. O(1), no allocation. *)

  val boundary_floor : t -> budget:int -> int
  (** [boundary_floor t ~budget] is [max 0 (boundary t - budget)]
      — [|Γ⁻(T)| ≥ boundary_floor] for every T ⊇ S with
      [|T| - |S| <= budget]. *)

  val unique_floor : t -> budget:int -> max_add_degree:int -> int
  (** [unique_floor t ~budget ~max_add_degree] is
      [max 0 (unique t - budget * (1 + max_add_degree))] — a floor on
      [|Γ¹(T)|] when every addable vertex has degree at most
      [max_add_degree]. *)
end

(** The same operators on a bipartite instance [(S, N, E)], where subsets
    live on side S and neighborhoods on side N. *)
module Bip : sig
  module Bipartite = Wx_graph.Bipartite

  val covered : Bipartite.t -> Bitset.t -> Bitset.t
  (** N-vertices with ≥ 1 neighbor in the S-subset. *)

  val unique : Bipartite.t -> Bitset.t -> Bitset.t
  (** N-vertices with exactly one neighbor in the S-subset — [Γ¹_S(S′)] when
      the instance is the graph between S and its neighborhood. *)

  val unique_count : Bipartite.t -> Bitset.t -> int
  (** [cardinal (unique t s')] without materializing the set. *)

  val iter_gray_unique : Bipartite.t -> int array -> (Bitset.t -> int -> unit) -> unit
  (** [iter_gray_unique t elts f] enumerates every subset [S′] of the given
      S-vertices in Gray-code order, maintaining the unique-coverage count
      incrementally (O(deg) per step instead of O(m)), and calls
      [f s' count] for each. The bitset is a reused buffer. Requires
      [Array.length elts <= 30]. This is the kernel of exact wireless
      expansion. *)
end
