(** Convenience aliases: one namespace for the whole library.

    Downstream code can [open Wireless_expanders.Api] and reach every
    subsystem without depending on the individual [wx_*] libraries:

    {[
      open Wireless_expanders.Api
      let g = Constructions.Core_graph.create 64
    ]} *)

module Util : sig
  module Rng = Wx_util.Rng
  module Bitset = Wx_util.Bitset
  module Stats = Wx_util.Stats
  module Table = Wx_util.Table
  module Floatx = Wx_util.Floatx
  module Combi = Wx_util.Combi
  module Pq = Wx_util.Pq
  module Intvec = Wx_util.Intvec
end

module Graph = Wx_graph.Graph
module Builder = Wx_graph.Builder
module Bipartite = Wx_graph.Bipartite
module Traversal = Wx_graph.Traversal
module Arboricity = Wx_graph.Arboricity
module Flow = Wx_graph.Flow
module Densest = Wx_graph.Densest
module Graph_io = Wx_graph.Graph_io
module Connectivity = Wx_graph.Connectivity
module Gen = Wx_graph.Gen
module Csr = Wx_graph.Csr

module Spectral : sig
  module Vec = Wx_spectral.Vec
  module Spectral_gap = Wx_spectral.Spectral_gap
  module Cheeger = Wx_spectral.Cheeger
end

module Expansion : sig
  module Nbhd = Wx_expansion.Nbhd
  module Measure = Wx_expansion.Measure
  module Bip_measure = Wx_expansion.Bip_measure
  module Bounds = Wx_expansion.Bounds
  module Certificate = Wx_expansion.Certificate
end

module Spokesmen : sig
  module Solver = Wx_spokesmen.Solver
  module Decay = Wx_spokesmen.Decay
  module Naive = Wx_spokesmen.Naive
  module Partition = Wx_spokesmen.Partition
  module Buckets = Wx_spokesmen.Buckets
  module Exact = Wx_spokesmen.Exact
  module Bb = Wx_spokesmen.Bb
  module Greedy = Wx_spokesmen.Greedy
  module Anneal = Wx_spokesmen.Anneal
  module Portfolio = Wx_spokesmen.Portfolio
end

module Constructions : sig
  module Cplus = Wx_constructions.Cplus
  module Gbad = Wx_constructions.Gbad
  module Core_graph = Wx_constructions.Core_graph
  module Gen_core = Wx_constructions.Gen_core
  module Worst_case = Wx_constructions.Worst_case
  module Gbad_plug = Wx_constructions.Gbad_plug
  module Broadcast_chain = Wx_constructions.Broadcast_chain
  module Families = Wx_constructions.Families
end

module Radio : sig
  module Network = Wx_radio.Network
  module Protocol = Wx_radio.Protocol
  module Flood = Wx_radio.Flood
  module Decay_protocol = Wx_radio.Decay_protocol
  module Uniform = Wx_radio.Uniform
  module Spokesmen_cast = Wx_radio.Spokesmen_cast
  module Schedule = Wx_radio.Schedule
  module Trace = Wx_radio.Trace
  module Sim = Wx_radio.Sim
  module Sim_csr = Wx_radio.Sim_csr
end

module Obs : sig
  module Json = Wx_obs.Json
  module Clock = Wx_obs.Clock
  module Metrics = Wx_obs.Metrics
  module Memgc = Wx_obs.Memgc
  module Work = Wx_obs.Work
  module Progress = Wx_obs.Progress
  module Span = Wx_obs.Span
  module Sink = Wx_obs.Sink
  module Report = Wx_obs.Report
  module Ledger = Wx_obs.Ledger
  module Prof = Wx_obs.Prof
  module Trace_export = Wx_obs.Trace_export
  module Expose = Wx_obs.Expose
end

module Par : sig
  module Pool = Wx_par.Pool
end
