let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

type t = { n : int; words : int array }

let nwords n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (max 1 (nwords n)) 0 }

let universe_size t = t.n

(* Mask of valid bits in the last word, so [complement] and [full] never set
   phantom bits beyond the universe. *)
let last_mask n =
  let r = n mod bits_per_word in
  if r = 0 then -1 else (1 lsl r) - 1

let full n =
  let t = create n in
  let w = Array.length t.words in
  if n > 0 then begin
    for i = 0 to w - 2 do
      t.words.(i) <- -1
    done;
    t.words.(w - 1) <- last_mask n
  end;
  t

let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: element out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add_inplace t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove_inplace t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let add t i =
  let t' = copy t in
  add_inplace t' i;
  t'

let remove t i =
  let t' = copy t in
  remove_inplace t' i;
  t'

(* Byte-table popcount: robust for OCaml's 63-bit native ints. *)
let popcount_table =
  Array.init 256 (fun i ->
      let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
      go i 0)

let popcount_word x =
  let t = popcount_table in
  let acc = ref 0 in
  let x = ref x in
  while !x <> 0 do
    acc := !acc + t.(!x land 0xff);
    x := !x lsr 8
  done;
  !acc

let cardinal t =
  let acc = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    acc := !acc + popcount_word t.words.(i)
  done;
  !acc

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let equal a b =
  same_universe a b;
  let rec go i = i < 0 || (a.words.(i) = b.words.(i) && go (i - 1)) in
  go (Array.length a.words - 1)

(* Top-level so the recursion carries no closure: [subset] sits on the
   radio step's per-round path, which the alloc gate certifies as
   zero-allocation. *)
let rec subset_from aw bw i =
  i < 0
  || Array.unsafe_get aw i land lnot (Array.unsafe_get bw i) = 0
     && subset_from aw bw (i - 1)

let subset a b =
  same_universe a b;
  subset_from a.words b.words (Array.length a.words - 1)

let disjoint a b =
  same_universe a b;
  let rec go i = i < 0 || (a.words.(i) land b.words.(i) = 0 && go (i - 1)) in
  go (Array.length a.words - 1)

let map2 f a b =
  same_universe a b;
  { n = a.n; words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let blit2 f a b =
  same_universe a b;
  for i = 0 to Array.length a.words - 1 do
    a.words.(i) <- f a.words.(i) b.words.(i)
  done

let union_inplace a b = blit2 ( lor ) a b
let inter_inplace a b = blit2 ( land ) a b
let diff_inplace a b = blit2 (fun x y -> x land lnot y) a b
let clear_inplace a = Array.fill a.words 0 (Array.length a.words) 0

(* Fused combine-and-count kernels: one word-parallel pass, no
   intermediate set. The naive reference scorers accumulate neighborhood
   unions and then need |acc ∪ b| or |acc \ b| — materialising the
   combined set per scored subset is exactly the allocation the
   incremental engine was built to avoid, so the reference engines get
   the allocation-free counts too and the bench compares enumeration
   strategies, not allocator traffic. *)

let count2 f a b =
  same_universe a b;
  let aw = a.words and bw = b.words in
  let acc = ref 0 in
  for i = 0 to Array.length aw - 1 do
    acc := !acc + popcount_word (f (Array.unsafe_get aw i) (Array.unsafe_get bw i))
  done;
  !acc

let union_cardinal a b = count2 ( lor ) a b
let inter_cardinal a b = count2 ( land ) a b
let diff_cardinal a b = count2 (fun x y -> x land lnot y) a b

let complement t =
  let f = full t.n in
  diff f t

let iter f t =
  let nw = Array.length t.words in
  for wi = 0 to nw - 1 do
    let w = ref t.words.(wi) in
    let base = wi * bits_per_word in
    let bit = ref 0 in
    while !w <> 0 do
      if !w land 0xff = 0 then begin
        (* Skip empty bytes so sparse words stay cheap. *)
        w := !w lsr 8;
        bit := !bit + 8
      end
      else begin
        if !w land 1 = 1 then f (base + !bit);
        w := !w lsr 1;
        incr bit
      end
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

exception Found

let exists p t =
  try
    iter (fun i -> if p i then raise Found) t;
    false
  with Found -> true

let for_all p t = not (exists (fun i -> not (p i)) t)

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let to_array t =
  let k = cardinal t in
  let out = Array.make k 0 in
  let idx = ref 0 in
  iter
    (fun i ->
      out.(!idx) <- i;
      incr idx)
    t;
  out

let of_list n xs =
  let t = create n in
  List.iter (add_inplace t) xs;
  t

let of_array n xs =
  let t = create n in
  Array.iter (add_inplace t) xs;
  t

let choose t =
  let result = ref (-1) in
  (try
     iter
       (fun i ->
         result := i;
         raise Found)
       t
   with Found -> ());
  if !result < 0 then raise Not_found else !result

let random_subset rng t p =
  let out = create t.n in
  iter (fun i -> if Rng.bernoulli rng p then add_inplace out i) t;
  out

let random_of_universe rng n k =
  of_array n (Rng.sample_without_replacement rng n k)

let iter_subsets s f =
  let elts = to_array s in
  let k = Array.length elts in
  (* Unified work contract: reject at the native-int ceiling on Gray-code
     step counts (not an arbitrary 30) with the catchable [Guard.Too_large]
     the measure layer rebinds — callers handle this the same way they
     handle a refused [wireless_of_set_exact]. *)
  Guard.check_gray_work "Bitset.iter_subsets" k max_int;
  let buf = create s.n in
  let total = 1 lsl k in
  (* Gray-code order: successive subsets differ in one element, so each step
     is a single bit flip in [buf]. *)
  f buf;
  for i = 1 to total - 1 do
    let gray_prev = (i - 1) lxor ((i - 1) lsr 1) in
    let gray = i lxor (i lsr 1) in
    let changed = gray lxor gray_prev in
    let bit =
      let rec go b = if changed lsr b land 1 = 1 then b else go (b + 1) in
      go 0
    in
    let v = elts.(bit) in
    if mem buf v then remove_inplace buf v else add_inplace buf v;
    f buf
  done

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" i)
    t;
  Format.fprintf fmt "}"

let to_string t = Format.asprintf "%a" pp t

module Slow = struct
  type t = { n : int; elts : int list (* sorted ascending *) }

  let create n = { n; elts = [] }
  let mem t i = List.mem i t.elts

  let add t i =
    if i < 0 || i >= t.n then invalid_arg "Bitset.Slow.add";
    let rec ins = function
      | [] -> [ i ]
      | x :: rest as l -> if x = i then l else if x > i then i :: l else x :: ins rest
    in
    { t with elts = ins t.elts }

  let cardinal t = List.length t.elts

  let rec merge_union a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
        if x = y then x :: merge_union xs ys
        else if x < y then x :: merge_union xs b
        else y :: merge_union a ys

  let rec merge_inter a b =
    match (a, b) with
    | [], _ | _, [] -> []
    | x :: xs, y :: ys ->
        if x = y then x :: merge_inter xs ys
        else if x < y then merge_inter xs b
        else merge_inter a ys

  let rec merge_diff a b =
    match (a, b) with
    | [], _ -> []
    | l, [] -> l
    | x :: xs, y :: ys ->
        if x = y then merge_diff xs ys
        else if x < y then x :: merge_diff xs b
        else merge_diff a ys

  let union a b = { a with elts = merge_union a.elts b.elts }
  let inter a b = { a with elts = merge_inter a.elts b.elts }
  let diff a b = { a with elts = merge_diff a.elts b.elts }

  let of_list n xs = List.fold_left add (create n) xs
  let elements t = t.elts
end
