exception Overflow

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      (* Multiply before dividing keeps the running value integral; check
         for overflow on the multiply. *)
      let next_num = n - k + i in
      if !acc > max_int / next_num then raise Overflow;
      acc := !acc * next_num / i
    done;
    !acc
  end

(* Delta-aware core: lex-order successor keeps the prefix [0..i-1] intact
   when slot [i] is the one incremented, so [kept] for the next callback is
   exactly that [i]. Incremental consumers drop elements [kept..] of the
   previous set and add elements [kept..] of the new one. *)
let iter_subsets_of_size_delta n k f =
  if k < 1 || k > n then ()
  else begin
    let a = Array.init k (fun i -> i) in
    let kept = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      f a ~kept:!kept;
      (* Advance to the next combination in lexicographic order. *)
      let i = ref (k - 1) in
      while !i >= 0 && a.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then continue_ := false
      else begin
        a.(!i) <- a.(!i) + 1;
        for j = !i + 1 to k - 1 do
          a.(j) <- a.(j - 1) + 1
        done;
        kept := !i
      end
    done
  end

let iter_subsets_of_size n k f =
  iter_subsets_of_size_delta n k (fun a ~kept:_ -> f a)

let iter_subsets_le_delta n k f =
  (* Each size restarts the enumeration: the first size-[s] set shares no
     tracked prefix with the last size-[s-1] set, so [kept] resets to 0. *)
  for size = 1 to min k n do
    iter_subsets_of_size_delta n size f
  done

let iter_subsets_le n k f =
  iter_subsets_le_delta n k (fun a ~kept:_ -> f a)

let iter_all_subsets n f =
  if n > 30 then invalid_arg "Combi.iter_all_subsets: n too large";
  for mask = 0 to (1 lsl n) - 1 do
    f mask
  done

let iter_subsets_of_size_with_min_delta n k a f =
  if k < 1 || a < 0 || a >= n || a + k > n then ()
  else if k = 1 then f [| a |] ~kept:0
  else begin
    (* Fix [a] in slot 0 and enumerate the remaining k-1 slots over the
       suffix universe {a+1..n-1}, shifted back up on the way out. Slot 0
       never changes, so the outer retained prefix is the inner one plus
       one — except on the very first set, where [a] itself is new. *)
    let out = Array.make k a in
    let first = ref true in
    iter_subsets_of_size_delta (n - a - 1) (k - 1) (fun idxs ~kept ->
        let outer_kept = if !first then 0 else kept + 1 in
        first := false;
        for i = (if outer_kept = 0 then 0 else outer_kept - 1) to k - 2 do
          out.(i + 1) <- idxs.(i) + a + 1
        done;
        f out ~kept:outer_kept)
  end

let iter_subsets_of_size_with_min n k a f =
  iter_subsets_of_size_with_min_delta n k a (fun out ~kept:_ -> f out)

let iter_subsets_le_with_min_delta n k a f =
  for size = 1 to min k (n - a) do
    iter_subsets_of_size_with_min_delta n size a f
  done

let iter_subsets_le_with_min n k a f =
  iter_subsets_le_with_min_delta n k a (fun out ~kept:_ -> f out)

(* ---- prunable sharded enumeration ----

   Branch-and-bound needs the enumeration to expose its prefix tree: a
   node is a sorted prefix, its children extend it by one larger element,
   and a whole subtree must be skippable once a bound proves it cannot
   beat the incumbent. The size-by-size iterators above hide that tree
   (they restart the prefix at every size boundary), so the prunable
   walk is a pre-order DFS over increasing sequences instead: each set is
   visited immediately after its longest proper prefix, which is exactly
   the order an incremental arena absorbs for free. The family visited —
   all subsets of size <= kmax with the given smallest element — is
   identical to [iter_subsets_le_with_min_delta]'s; only the order
   differs, which callers that minimise with an explicit lex tiebreak
   cannot observe. *)

let iter_subshard_le_prune n kmax a ~blo ~bhi ~self f =
  if kmax < 1 || a < 0 || a >= n then invalid_arg "Combi.iter_subshard_le_prune"
  else begin
    let cap = min kmax (n - a) in
    let buf = Array.make cap a in
    (* [kept] = leading slots shared with the previously visited set; the
       next node is either the current one's first child (shares all of
       it) or a sibling at some shallower slot (the loops below clamp). *)
    let kept = ref 0 in
    let visit len =
      let skip = f buf ~len ~kept:!kept in
      kept := len;
      skip
    in
    let rec extend len =
      if len < cap then
        for v = buf.(len - 1) + 1 to n - 1 do
          if !kept > len then kept := len;
          buf.(len) <- v;
          if not (visit (len + 1)) then extend (len + 1)
        done
    in
    let self_skip = if self then visit 1 else false in
    if (not self_skip) && cap >= 2 then begin
      let lo = max blo (a + 1) and hi = min bhi n in
      for b = lo to hi - 1 do
        if !kept > 1 then kept := 1;
        buf.(1) <- b;
        if not (visit 2) then extend 2
      done
    end
  end

let iter_subsets_le_with_min_prune n kmax a f =
  iter_subshard_le_prune n kmax a ~blo:(a + 1) ~bhi:n ~self:true f

(* Σ_{j=0..k} C(m, j) as a float — the work-unit weight of a prefix with
   [m] addable elements and [k] slots left. Float on purpose: weights
   only steer the splitter, and the exact counts overflow the native int
   long before the guards would admit the enumeration anyway. *)
let count_subsets_upto_float m k =
  if m < 0 then 0.0
  else begin
    let acc = ref 1.0 and c = ref 1.0 in
    let k = min k m in
    for j = 1 to k do
      c := !c *. float_of_int (m - j + 1) /. float_of_int j;
      acc := !acc +. !c
    done;
    !acc
  end

let subsets_count_le n k =
  let acc = ref 0 in
  for size = 1 to min k n do
    let c = binomial n size in
    if !acc > max_int - c then raise Overflow;
    acc := !acc + c
  done;
  !acc

let choose_indices n xs =
  List.iter (fun i -> if i < 0 || i >= n then invalid_arg "Combi.choose_indices") xs;
  let a = Array.of_list xs in
  Array.sort compare a;
  a
