(* Growable int buffer: amortized-O(1) push, O(len) snapshot. The
   simulation loops append one frontier count per round; building that
   history with Array.append would be O(rounds²), and a list reversal
   allocates a cons per round — this keeps steady-state appends to an
   occasional doubling. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Intvec.create: capacity must be >= 1";
  { data = Array.make capacity 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Intvec.get: index out of bounds";
  t.data.(i)

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len
