(** Combinatorics helpers for exact expansion computation.

    Exact values of β, βu, βw are minima/maxima over vertex subsets; these
    iterators drive the enumeration. *)

val binomial : int -> int -> int
(** [binomial n k]; 0 when [k < 0] or [k > n]. Raises [Overflow] if the value
    exceeds [max_int] (never happens at the sizes we enumerate). *)

exception Overflow

val iter_subsets_of_size : int -> int -> (int array -> unit) -> unit
(** [iter_subsets_of_size n k f] calls [f] on each size-[k] subset of
    [0..n-1] in lexicographic order. The array is reused between calls —
    copy it if you keep it. *)

val iter_subsets_le : int -> int -> (int array -> unit) -> unit
(** All non-empty subsets of [0..n-1] of size at most [k], by increasing
    size. Same buffer-reuse caveat. *)

val iter_all_subsets : int -> (int -> unit) -> unit
(** [iter_all_subsets n f] calls [f mask] for every [mask] in
    [0 .. 2^n - 1]. Requires [n <= 30]. *)

(** {2 Delta enumeration}

    Consecutive subsets in lexicographic order share a prefix: the successor
    of [a] increments one slot [i] and rewrites only the suffix [i..]. The
    [_delta] iterators expose that structure so incremental scorers can pay
    O(changed suffix) per step instead of rebuilding state from scratch.

    Contract: the callback receives the (reused) sorted index array plus
    [~kept], the number of leading slots unchanged since the {e previous}
    callback. [kept = 0] on the first callback of an enumeration (everything
    is new) and at every size boundary in the [le] variants (each size
    restarts from its lex-first set). An incremental consumer maintaining a
    running set removes its elements at positions [kept .. prev_len - 1]
    (in any order) and then adds the array's elements at positions
    [kept .. len - 1]. *)

val iter_subsets_of_size_delta : int -> int -> (int array -> kept:int -> unit) -> unit
(** Delta-aware {!iter_subsets_of_size}: same sets, same order, same reused
    array, plus the retained-prefix length per step. *)

val iter_subsets_le_delta : int -> int -> (int array -> kept:int -> unit) -> unit
(** Delta-aware {!iter_subsets_le}. [kept = 0] at each size boundary. *)

(** {2 Sharded enumeration}

    The parallel exact measures partition the subset space by smallest
    element: the subsets with minimum [a] form an independent shard that one
    domain can enumerate without coordination, and the shards for
    [a = 0..n-1] cover every non-empty subset exactly once. *)

val iter_subsets_of_size_with_min : int -> int -> int -> (int array -> unit) -> unit
(** [iter_subsets_of_size_with_min n k a f] calls [f] on each size-[k]
    subset of [0..n-1] whose smallest element is [a], in lexicographic
    order. The array is reused between calls — copy it if you keep it.
    No-op when the shard is empty ([a + k > n]). *)

val iter_subsets_le_with_min : int -> int -> int -> (int array -> unit) -> unit
(** Subsets with smallest element [a] of size 1 up to [k], by increasing
    size. Same buffer-reuse caveat. *)

val iter_subsets_of_size_with_min_delta :
  int -> int -> int -> (int array -> kept:int -> unit) -> unit
(** Delta-aware {!iter_subsets_of_size_with_min}. The fixed smallest element
    occupies slot 0 and counts toward [kept] on every callback after the
    first. *)

val iter_subsets_le_with_min_delta :
  int -> int -> int -> (int array -> kept:int -> unit) -> unit
(** Delta-aware {!iter_subsets_le_with_min}. [kept = 0] at each size
    boundary. *)

(** {2 Prunable sharded enumeration}

    Branch-and-bound over the subset space needs the prefix tree of the
    enumeration to be visible: every sorted set is visited immediately
    after its longest proper prefix (pre-order DFS over increasing
    sequences), and the callback can cut a whole subtree. The visited
    family is exactly the one {!iter_subsets_le_with_min_delta} visits;
    only the order differs. *)

val iter_subsets_le_with_min_prune :
  int -> int -> int -> (int array -> len:int -> kept:int -> bool) -> unit
(** [iter_subsets_le_with_min_prune n kmax a f] visits every non-empty
    subset of [0..n-1] with smallest element [a] and size at most [kmax],
    in pre-order DFS over increasing sequences. The callback receives a
    reused buffer whose first [len] slots hold the current sorted set and
    [~kept], the number of leading slots unchanged since the previous
    callback (same incremental contract as the [_delta] iterators).
    Returning [true] skips every {e strict extension} of the current set
    — the subtree of supersets obtained by appending larger elements —
    without visiting it; the current set itself has already been
    visited. *)

val iter_subshard_le_prune :
  int ->
  int ->
  int ->
  blo:int ->
  bhi:int ->
  self:bool ->
  (int array -> len:int -> kept:int -> bool) ->
  unit
(** Work-stealing sub-shard of {!iter_subsets_le_with_min_prune}: only
    the singleton [{a}] (iff [self]) and the sets whose {e second}
    smallest element lies in [\[blo, bhi)] are visited. The sub-shards
    [(self, blo..bhi)] partition the shard, so idle workers can claim
    slices of one oversized smallest-element shard. A [true] return from
    the singleton visit skips the rest of this sub-shard (its sets all
    extend [{a}]). *)

val count_subsets_upto_float : int -> int -> float
(** [count_subsets_upto_float m k] is [Σ_{j=0..min k m} C(m, j)] as a
    float — the number of ways to extend a prefix that has [m] addable
    elements and [k] free slots (including not extending it). The
    work-unit weight the splitter feeds {!Wx_par.Pool}. *)

val subsets_count_le : int -> int -> int
(** Number of non-empty subsets of size at most [k] — used to refuse
    enumerations that would not terminate in reasonable time. *)

val choose_indices : int -> int list -> int array
(** [choose_indices n [i1; ...]] checks bounds and sorts. *)
