(** Shared work-guard contract for exponential enumeration kernels.

    Every 2^k Gray-code enumeration in the tree — [Bitset.iter_subsets],
    the wireless inner maximisations, the measure layer's single-set
    guard — admits or rejects inputs through this one test, so callers
    catch a single exception regardless of which layer refused the work.
    {!Wx_expansion.Measure.Too_large} is a rebinding of {!Too_large}:
    handlers written against either name match both. *)

exception Too_large of string
(** Raised when an enumeration would exceed its work limit (or the
    native-int ceiling on step counts). *)

val max_gray_bits : int
(** Largest [k] for which [1 lsl k] is a positive int (61 on 64-bit) —
    the hard ceiling on Gray-code step counts. *)

val check_gray_work : string -> int -> int -> unit
(** [check_gray_work name k work_limit] raises {!Too_large} when [2^k]
    Gray-code steps exceed [min work_limit 2^max_gray_bits]. The message
    reports the effective bound and names the native-int ceiling when it,
    rather than the caller's limit, is what rejected the work. *)
