(** Packed bitsets over a fixed universe [0..n-1].

    Vertex sets are the central data structure of every expansion computation
    in this repository: exact expansion measures enumerate millions of sets,
    and each evaluation of a neighborhood touches a set per edge. The
    representation is an [int array] of [Sys.int_size]-bit words.

    Mutating operations are suffixed with [_inplace]; everything else is
    persistent (returns a fresh set). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val universe_size : t -> int
(** The [n] the set was created with. *)

val full : int -> t
(** [full n] is [{0, ..., n-1}]. *)

val copy : t -> t

val mem : t -> int -> bool
val add_inplace : t -> int -> unit
val remove_inplace : t -> int -> unit

val add : t -> int -> t
val remove : t -> int -> t

val cardinal : t -> int
(** Popcount over all words; O(n / word_size). *)

val is_empty : t -> bool

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val union_inplace : t -> t -> unit
val inter_inplace : t -> t -> unit
val diff_inplace : t -> t -> unit
val clear_inplace : t -> unit

val union_cardinal : t -> t -> int
(** [|a ∪ b|] in one fused word-parallel pass — no intermediate set is
    allocated. The neighborhood-union count of the naive reference
    scorers. *)

val inter_cardinal : t -> t -> int
(** [|a ∩ b|], fused like {!union_cardinal}. *)

val diff_cardinal : t -> t -> int
(** [|a \ b|], fused like {!union_cardinal} — e.g. [|Γ(S) \ S|] without
    materialising [Γ⁻(S)]. *)

val complement : t -> t
(** Complement within the universe. *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool

val elements : t -> int list
(** Elements in increasing order. *)

val to_array : t -> int array

val of_list : int -> int list -> t
(** [of_list n xs] builds a set over universe [n]; raises [Invalid_argument]
    if any element is out of range. *)

val of_array : int -> int array -> t

val choose : t -> int
(** Smallest element; raises [Not_found] on the empty set. *)

val random_subset : Rng.t -> t -> float -> t
(** [random_subset rng s p] keeps each element of [s] independently with
    probability [p] — the sampling step of the decay method (Lemma 4.2). *)

val random_of_universe : Rng.t -> int -> int -> t
(** [random_of_universe rng n k] is a uniformly random k-subset of [0..n-1]. *)

val iter_subsets : t -> (t -> unit) -> unit
(** [iter_subsets s f] calls [f] on every subset of [s] (including the empty
    set and [s] itself), reusing a single buffer: the set passed to [f] is
    only valid during the call. Cost O(2^|s| · |s| / word). Intended for
    exact wireless-expansion computations on small sets ([|s|] ≲ 22).
    Raises {!Guard.Too_large} when [|s|] exceeds {!Guard.max_gray_bits}
    (the native-int ceiling on Gray-code step counts), so callers can
    catch it exactly like a refused exact measure. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 7}]. *)

val to_string : t -> string

(** Deliberately naive sorted-list implementation of the same signature,
    kept only as the ablation baseline (DESIGN.md §3.1). *)
module Slow : sig
  type t

  val create : int -> t
  val mem : t -> int -> bool
  val add : t -> int -> t
  val cardinal : t -> int
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val of_list : int -> int list -> t
  val elements : t -> int list
end
