(** Growable int buffer with amortized-O(1) append.

    The simulators append one frontier count per executed round; this
    replaces the O(rounds²) [Array.append] pattern and the cons-per-round
    list without changing the snapshot the caller sees. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty buffer; [capacity] (default 16, must be ≥ 1) pre-sizes the
    backing array. *)

val length : t -> int

val push : t -> int -> unit
(** Append one element; doubles the backing array when full. *)

val get : t -> int -> int
(** [get t i] for [0 <= i < length t]; raises [Invalid_argument] outside. *)

val clear : t -> unit
(** Reset the length to 0 without shrinking the backing array. *)

val to_array : t -> int array
(** Fresh array of the [length t] pushed elements, in push order. *)
