(* Shared work-guard contract for exponential enumerations.

   PR 5 unified the Gray-code admission test inside the measure layer:
   one exception, one bound derived from [min work_limit 2^max_gray_bits].
   Enumeration kernels living below the measure layer (Bitset, Combi)
   used to reject oversized inputs with ad-hoc [invalid_arg]s and
   arbitrary ceilings (k > 30); hoisting the contract here lets every
   layer raise the same catchable exception with the same message shape,
   and lets the measure layer rebind it so existing [Measure.Too_large]
   handlers keep working unchanged. *)

exception Too_large of string

(* Largest k for which [1 lsl k] is a positive int — the native-int
   ceiling on Gray-code step counts (61 on a 64-bit platform). *)
let max_gray_bits = Sys.int_size - 2

let check_gray_work name k work_limit =
  let ceiling = 1 lsl max_gray_bits in
  let bound = if work_limit < ceiling then work_limit else ceiling in
  if k > max_gray_bits || 1 lsl k > bound then
    raise
      (Too_large
         (Printf.sprintf "%s: 2^%d Gray-code steps exceed the step bound %d%s" name k bound
            (if bound = ceiling && work_limit > ceiling then " (native-int ceiling)" else "")))
