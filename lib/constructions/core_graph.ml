module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
module Floatx = Wx_util.Floatx

type t = {
  s : int;
  levels : int; (* log2 s *)
  bip : Bipartite.t;
  offset : int array; (* per node 1..2s-1; offset.(0) unused *)
  size : int array;
}

let depth_of_node v = Floatx.log2i_floor v

let create s =
  if not (Floatx.is_pow2 s) then invalid_arg "Core_graph.create: s must be a power of two";
  if s < 1 || s > 4096 then invalid_arg "Core_graph.create: s out of range";
  let levels = Floatx.log2i_floor s in
  let nodes = (2 * s) - 1 in
  let offset = Array.make (nodes + 1) 0 in
  let size = Array.make (nodes + 1) 0 in
  let acc = ref 0 in
  for v = 1 to nodes do
    let d = depth_of_node v in
    size.(v) <- s lsr d;
    offset.(v) <- !acc;
    acc := !acc + size.(v)
  done;
  let n_total = !acc in
  (* Edges: leaf s+j (S-vertex j) to every block on its root path. *)
  let es = ref [] in
  for j = 0 to s - 1 do
    let v = ref (s + j) in
    while !v >= 1 do
      for r = 0 to size.(!v) - 1 do
        es := (j, offset.(!v) + r) :: !es
      done;
      v := !v / 2
    done
  done;
  { s; levels; bip = Bipartite.of_edges ~s ~n:n_total !es; offset; size }

let s t = t.s
let n_size t = Bipartite.n_count t.bip
let bip t = t.bip
let levels t = t.levels
let node_count t = (2 * t.s) - 1
let block_offset t v = t.offset.(v)
let block_size t v = t.size.(v)
let node_of_leaf t j = t.s + j

let ancestors t j =
  let rec go v acc = if v < 1 then List.rev acc else go (v / 2) (v :: acc) in
  List.rev (go (node_of_leaf t j) [])

(* Count-class DP: classes 0, 1, 2 (meaning 0, exactly 1, >= 2 selected
   leaves in the subtree). value.(v).(c) = max unique coverage obtainable
   within the subtree of v given class c. *)
let neg_inf = min_int / 4

let combine_class a b = if a + b >= 2 then 2 else a + b

let m_dp_nodes = Wx_obs.Metrics.counter "core.dp_nodes"
let m_dp_cells = Wx_obs.Metrics.counter "core.dp_cells"

let dp_tables t =
  let nodes = node_count t in
  Wx_obs.Metrics.add m_dp_nodes nodes;
  let value = Array.make_matrix (nodes + 1) 3 neg_inf in
  (* Process nodes bottom-up: heap order reversed. *)
  for v = nodes downto 1 do
    if v >= t.s then begin
      (* Leaf: block size 1; selecting the leaf covers its own block. *)
      value.(v).(0) <- 0;
      value.(v).(1) <- 1
    end
    else begin
      let l = 2 * v and r = (2 * v) + 1 in
      for cl = 0 to 2 do
        for cr = 0 to 2 do
          if value.(l).(cl) > neg_inf && value.(r).(cr) > neg_inf then begin
            let c = combine_class cl cr in
            let bonus = if c = 1 then t.size.(v) else 0 in
            let cand = value.(l).(cl) + value.(r).(cr) + bonus in
            if cand > value.(v).(c) then value.(v).(c) <- cand
          end
        done
      done
    end
  done;
  value

let dp_max_unique t =
  let value = dp_tables t in
  let best = ref 0 in
  for c = 0 to 2 do
    if value.(1).(c) > !best then best := value.(1).(c)
  done;
  !best

let dp_max_unique_witness t =
  let value = dp_tables t in
  let out = Bitset.create t.s in
  (* Reconstruct: walk down choosing the (cl, cr) split that realizes the
     stored optimum for the chosen class at each node. *)
  let rec descend v c =
    if v >= t.s then begin
      (* Leaf. *)
      if c = 1 then Bitset.add_inplace out (v - t.s)
    end
    else begin
      let l = 2 * v and r = (2 * v) + 1 in
      let target = value.(v).(c) in
      let found = ref false in
      for cl = 0 to 2 do
        for cr = 0 to 2 do
          if not !found then begin
            let cc = combine_class cl cr in
            if cc = c && value.(l).(cl) > neg_inf && value.(r).(cr) > neg_inf then begin
              let bonus = if c = 1 then t.size.(v) else 0 in
              if value.(l).(cl) + value.(r).(cr) + bonus = target then begin
                found := true;
                descend l cl;
                descend r cr
              end
            end
          end
        done
      done;
      assert !found
    end
  in
  let best_c = ref 0 in
  for c = 1 to 2 do
    if value.(1).(c) > value.(1).(!best_c) then best_c := c
  done;
  descend 1 !best_c;
  out

let dp_min_coverage t =
  (* g.(v).(k) = min total block mass of touched nodes in subtree(v) with
     exactly k selected leaves below v. *)
  let nodes = node_count t in
  let leaves_below = Array.make (nodes + 1) 0 in
  for v = nodes downto 1 do
    if v >= t.s then leaves_below.(v) <- 1
    else leaves_below.(v) <- leaves_below.(2 * v) + leaves_below.((2 * v) + 1)
  done;
  let g = Array.make (nodes + 1) [||] in
  for v = nodes downto 1 do
    let lb = leaves_below.(v) in
    if v >= t.s then g.(v) <- [| 0; 1 |]
    else begin
      let l = 2 * v and r = (2 * v) + 1 in
      let gl = g.(l) and gr = g.(r) in
      let out = Array.make (lb + 1) max_int in
      Wx_obs.Metrics.add m_dp_cells (Array.length gl * Array.length gr);
      for kl = 0 to Array.length gl - 1 do
        for kr = 0 to Array.length gr - 1 do
          if gl.(kl) < max_int && gr.(kr) < max_int then begin
            let k = kl + kr in
            let bonus = if k >= 1 then t.size.(v) else 0 in
            let cand = gl.(kl) + gr.(kr) + bonus in
            if cand < out.(k) then out.(k) <- cand
          end
        done
      done;
      g.(v) <- out;
      (* Children tables no longer needed; free them. *)
      g.(l) <- [||];
      g.(r) <- [||]
    end
  done;
  g.(1)

let unique_coverage_of t s' =
  (* Per node, count selected leaves below (capped at 2); blocks with count
     exactly 1 are uniquely covered. *)
  let nodes = node_count t in
  let cnt = Array.make (nodes + 1) 0 in
  Bitset.iter
    (fun j ->
      let v = ref (node_of_leaf t j) in
      while !v >= 1 do
        cnt.(!v) <- min 2 (cnt.(!v) + 1);
        v := !v / 2
      done)
    s';
  let acc = ref 0 in
  for v = 1 to nodes do
    if cnt.(v) = 1 then acc := !acc + t.size.(v)
  done;
  !acc
