(* Domain pool: chunked index-range stealing over stdlib Domain + Atomic.

   Work distribution is dynamic (domains race on an atomic chunk cursor),
   but the combine tree is static: per-chunk results land in a slot array
   and the calling domain folds them in chunk order. Determinism therefore
   never depends on which domain ran which chunk.

   Instrumentation: while Wx_obs metrics or tracing is on, every chunk's
   latency lands in a per-domain histogram shard, the gaps between chunks
   feed a claim-wait timer, and each chunk becomes a Chrome-trace slice on
   the track of the worker slot that ran it (tid 0 = the calling domain,
   tids 1..jobs-1 = spawned workers) — so load imbalance across --jobs
   settings is visible both as p99 numbers and in chrome://tracing. All of
   it is gated on one boolean computed per parallel_reduce call; with both
   systems off the hot loop is untouched. *)

module Metrics = Wx_obs.Metrics
module Trace_export = Wx_obs.Trace_export
module Memgc = Wx_obs.Memgc
module Clock = Wx_obs.Clock
module Json = Wx_obs.Json

let max_domains = 128

(* Pool instruments, registered once. Histogram-backed timers shard per
   observing domain inside Metrics, so concurrent workers never contend. *)
let runs_c = Metrics.counter "pool.runs"
let seq_runs_c = Metrics.counter "pool.runs_seq"
let weighted_runs_c = Metrics.counter "pool.runs_weighted"
let spawned_c = Metrics.counter "pool.domains_spawned"
let chunks_c = Metrics.counter "pool.chunks"
let units_split_c = Metrics.counter "pool.units_split"
let empty_claims_c = Metrics.counter "pool.claims_empty"
let jobs_g = Metrics.gauge "pool.jobs"
let chunk_t = Metrics.timer "pool.chunk"
let claim_t = Metrics.timer "pool.claim_wait"
let join_t = Metrics.timer "pool.join_wait"

(* Per-worker / per-chunk allocation attribution (live only when Memgc is
   also enabled): each worker observes its own Gc.counters delta, so the
   histogram's DLS shards ARE the per-domain merge — a shard outlives its
   domain and snapshot sums them after the joins. *)
let worker_minor_h = Metrics.histogram "pool.worker_minor_words"
let chunk_minor_h = Metrics.histogram "pool.chunk_minor_words"

(* Utilization instruments: per-slot busy fraction (percent of the slot's
   own start-to-finish span spent inside chunks), chunks claimed per slot,
   and the per-run idle tail (last worker finish minus first worker finish
   — the straggler cost of skewed sharding). *)
let util_busy_frac_h = Metrics.histogram "pool.util.busy_frac_pct"
let util_slot_chunks_h = Metrics.histogram "pool.util.slot_chunks"
let util_idle_tail_t = Metrics.timer "pool.util.idle_tail"

(* Live utilization gauges: cumulative busy percent of pool capacity, plus
   one gauge per worker slot, so the /metrics endpoint and `wx top` can
   show busy/idle attribution mid-run instead of waiting for the bench
   report. Slot gauges are registered lazily as the accumulator grows
   (registration is idempotent and this is the once-per-run cold path). *)
let util_busy_pct_g = Metrics.gauge "pool.util.busy_pct"
let util_slot_gauges : Metrics.gauge array ref = ref [||]

(* ---- cross-run utilization accounting ----

   The bench runner wants a per-experiment utilization summary, and one
   parallel_reduce call is too fine a grain (an exact measure makes one
   call, a sampled measure several). So every instrumented run folds its
   per-slot numbers into this process-global accumulator under a mutex
   (cold path: once per run, not per chunk); [reset_util]/[util] bracket an
   experiment the same way [Metrics.reset]/[snapshot] do. *)

type slot_util = { s_busy_ns : int; s_span_ns : int; s_chunks : int }

type util = {
  u_runs : int;
  u_seq_runs : int;
  u_capacity_ns : int;
  u_busy_ns : int;
  u_idle_tail_ns : int;
  u_max_idle_tail_ns : int;
  u_slots : slot_util array;
}

type slot_acc = { mutable a_busy : int; mutable a_span : int; mutable a_chunks : int }

let util_lock = Mutex.create ()
let util_slots : slot_acc array ref = ref [||]
let util_runs = ref 0
let util_seq_runs = ref 0
let util_capacity = ref 0
let util_busy = ref 0
let util_idle_tail = ref 0
let util_max_idle_tail = ref 0

let reset_util () =
  Mutex.lock util_lock;
  util_slots := [||];
  util_runs := 0;
  util_seq_runs := 0;
  util_capacity := 0;
  util_busy := 0;
  util_idle_tail := 0;
  util_max_idle_tail := 0;
  Mutex.unlock util_lock

let util () =
  Mutex.lock util_lock;
  let u =
    {
      u_runs = !util_runs;
      u_seq_runs = !util_seq_runs;
      u_capacity_ns = !util_capacity;
      u_busy_ns = !util_busy;
      u_idle_tail_ns = !util_idle_tail;
      u_max_idle_tail_ns = !util_max_idle_tail;
      u_slots =
        Array.map
          (fun a -> { s_busy_ns = a.a_busy; s_span_ns = a.a_span; s_chunks = a.a_chunks })
          !util_slots;
    }
  in
  Mutex.unlock util_lock;
  u

(* Fold one run's per-slot arrays into the global accumulator. [seq] runs
   have one slot and by construction no idle tail. Called with the workers
   already joined, so the distinct-slot writes are stable. *)
let util_record ~seq ~jobs ~run_span ~busy ~spans ~chunks ~idle_tail =
  Mutex.lock util_lock;
  if Array.length !util_slots < jobs then begin
    let grown =
      Array.init jobs (fun i ->
          if i < Array.length !util_slots then !util_slots.(i)
          else { a_busy = 0; a_span = 0; a_chunks = 0 })
    in
    util_slots := grown
  end;
  for tid = 0 to jobs - 1 do
    let a = !util_slots.(tid) in
    a.a_busy <- a.a_busy + busy.(tid);
    a.a_span <- a.a_span + spans.(tid);
    a.a_chunks <- a.a_chunks + chunks.(tid)
  done;
  if seq then incr util_seq_runs else incr util_runs;
  util_capacity := !util_capacity + (jobs * run_span);
  util_busy := !util_busy + Array.fold_left ( + ) 0 (Array.sub busy 0 jobs);
  util_idle_tail := !util_idle_tail + idle_tail;
  if idle_tail > !util_max_idle_tail then util_max_idle_tail := idle_tail;
  if Array.length !util_slot_gauges < Array.length !util_slots then begin
    let old = !util_slot_gauges in
    util_slot_gauges :=
      Array.init (Array.length !util_slots) (fun i ->
          if i < Array.length old then old.(i)
          else Metrics.gauge (Printf.sprintf "pool.util.slot_busy_pct.%d" i))
  end;
  Array.iteri
    (fun i a ->
      if a.a_span > 0 then
        Metrics.set !util_slot_gauges.(i)
          (100.0 *. float_of_int a.a_busy /. float_of_int a.a_span))
    !util_slots;
  if !util_capacity > 0 then
    Metrics.set util_busy_pct_g
      (100.0 *. float_of_int !util_busy /. float_of_int !util_capacity);
  Mutex.unlock util_lock

let recommended_jobs () = max 1 (min max_domains (Domain.recommended_domain_count ()))

let env_jobs () =
  match Sys.getenv_opt "WX_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n max_domains)
      | _ -> None)

(* 0 = "unset": fall through to WX_JOBS, then the runtime's recommendation.
   An Atomic so --jobs plumbing is safe even if set from a worker. *)
let default = Atomic.make 0

let default_jobs () =
  match Atomic.get default with
  | 0 -> ( match env_jobs () with Some n -> n | None -> recommended_jobs ())
  | n -> n

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set default (min n max_domains)

let resolve_jobs jobs =
  match jobs with
  | Some j when j >= 1 -> min j max_domains
  | Some _ -> invalid_arg "Pool.parallel_reduce: jobs must be >= 1"
  | None -> default_jobs ()

(* Shared instrumented core. [ntasks] tasks indexed [0, ntasks); results
   land in a slot array indexed by task id and are folded in id order, so
   determinism never depends on which domain ran which task. [order]
   permutes the {e claim} sequence only (the work-stealing paths hand out
   heavy units first); it never affects the combine order. *)
let run_tasks ~jobs ~ntasks ~order ~task ~init ~combine ~trace_args =
  begin
    let jobs = min jobs ntasks in
    (* One flag for the whole call: observe/slice below self-gate on their
       own system's flag, so a trace-only run skips histogram writes and a
       metrics-only run skips slice pushes — but an uninstrumented run pays
       for neither clock reads nor the checks inside them. *)
    let instrumented = Metrics.is_enabled () || Trace_export.is_enabled () in
    (* [memgc_on] alone obliges workers to credit their minor words to
       Memgc's foreign accumulator at exit — Memgc.read on the caller is
       domain-local, so without that credit worker allocation would vanish
       from the bench alloc gate. Richer attribution (histograms, trace
       args) additionally needs a sink, hence [mem]. With Memgc off no Gc
       read happens at all. *)
    let memgc_on = Memgc.is_enabled () in
    let mem = instrumented && memgc_on in
    let now () = if instrumented then Clock.now_ns () else 0 in
    let own_words () = if memgc_on then Memgc.own_minor_words () else 0.0 in
    (* Per-run utilization state, one slot per worker tid. Distinct slots
       are written only by their owner; the caller reads them after the
       joins. Sized by [jobs] (not ntasks), so the allocation is a
       deterministic function of the call shape — the alloc gate depends
       on that. Empty when uninstrumented: no cost, and run_task never
       touches them on that path. *)
    let busy_a = if instrumented then Array.make jobs 0 else [||] in
    let spans_a = if instrumented then Array.make jobs 0 else [||] in
    let chunks_a = if instrumented then Array.make jobs 0 else [||] in
    let finish_a = if instrumented then Array.make jobs 0 else [||] in
    (* Timed wrapper shared by both paths: [tid] is the worker slot (0 =
       calling domain), [t_claim] the stamp just after the task was
       claimed. Trace/metric names keep the historical "chunk" vocabulary —
       a task IS a chunk on the chunked path, and a finer work unit on the
       weighted one. *)
    let run_task ~tid ~t_claim c =
      let w0 = if mem then Memgc.own_minor_words () else 0.0 in
      let r = task c in
      if instrumented then begin
        let t_done = Clock.now_ns () in
        let dw = if mem then Memgc.own_minor_words () -. w0 else 0.0 in
        (* Busy time = time inside chunks, on the stamps already taken for
           the chunk timer — utilization adds no clock reads here. *)
        busy_a.(tid) <- busy_a.(tid) + (t_done - t_claim);
        chunks_a.(tid) <- chunks_a.(tid) + 1;
        Metrics.incr chunks_c;
        Metrics.observe_ns chunk_t (t_done - t_claim);
        if mem then Metrics.observe chunk_minor_h dw;
        Trace_export.slice ~tid ~name:"chunk" ~t0_ns:t_claim ~dur_ns:(t_done - t_claim)
          ~args:
            (("chunk", Json.Int c)
            :: (if mem then [ ("minor_words", Json.Float dw) ] else []))
          ()
      end;
      r
    in
    if jobs <= 1 then begin
      if instrumented then begin
        Metrics.incr seq_runs_c;
        Metrics.set jobs_g 1.0
      end;
      let t_seq0 = now () in
      let acc = ref init in
      for c = 0 to ntasks - 1 do
        acc := combine !acc (run_task ~tid:0 ~t_claim:(now ()) c)
      done;
      if instrumented then begin
        let span = Clock.now_ns () - t_seq0 in
        spans_a.(0) <- span;
        Metrics.observe util_busy_frac_h
          (if span > 0 then 100.0 *. float_of_int busy_a.(0) /. float_of_int span else 0.0);
        Metrics.observe util_slot_chunks_h (float_of_int chunks_a.(0));
        Metrics.observe_ns util_idle_tail_t 0;
        util_record ~seq:true ~jobs:1 ~run_span:span ~busy:busy_a ~spans:spans_a
          ~chunks:chunks_a ~idle_tail:0
      end;
      !acc
    end
    else begin
      if instrumented then begin
        Metrics.incr runs_c;
        Metrics.add spawned_c (jobs - 1);
        Metrics.set jobs_g (float_of_int jobs)
      end;
      let t_run0 = now () in
      let results = Array.make ntasks None in
      let cursor = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker tid =
        (* Pre-create this domain's histogram shards: otherwise a worker
           that loses every chunk race allocates fewer shards than one that
           claims work, and total allocation would vary run to run. *)
        if instrumented then begin
          Metrics.touch_timer claim_t;
          Metrics.touch_timer chunk_t;
          Metrics.touch chunk_minor_h;
          Metrics.touch worker_minor_h
        end;
        let t_start = now () in
        let w_start = own_words () in
        let t_prev = ref t_start in
        let continue_ = ref true in
        while !continue_ do
          (* The cursor hands out {e claim slots}; [order] maps a slot to
             the task it carries (identity on the chunked path, LPT order
             on the weighted one). Results land in [results.(c)] keyed by
             task id, so the permutation is invisible to the combine. *)
          let u = Atomic.fetch_and_add cursor 1 in
          if u >= ntasks || Atomic.get failure <> None then begin
            if instrumented && u >= ntasks then Metrics.incr empty_claims_c;
            continue_ := false
          end
          else begin
            let c = match order with None -> u | Some o -> Array.unsafe_get o u in
            let t_claim = now () in
            if instrumented then Metrics.observe_ns claim_t (t_claim - !t_prev);
            match run_task ~tid ~t_claim c with
            | r ->
                results.(c) <- Some r;
                t_prev := now ()
            | exception e ->
                ignore (Atomic.compare_and_set failure None (Some e));
                continue_ := false
          end
        done;
        (* Finish stamp / slot span for the utilization summary: read once
           per worker exit, outside the chunk loop. The caller consumes
           these after the joins. *)
        if instrumented then begin
          let t_fin = Clock.now_ns () in
          finish_a.(tid) <- t_fin;
          spans_a.(tid) <- t_fin - t_start
        end;
        (* Per-worker attribution: the worker's OWN minor-word delta,
           observed from the worker domain itself so it lands in that
           domain's histogram shard (merged at snapshot after joins).
           Spawned workers also credit the delta to Memgc's foreign
           accumulator — the caller's post-join Memgc.read depends on it —
           and that credit happens-before the join that publishes it. *)
        let w_delta = if memgc_on then Memgc.own_minor_words () -. w_start else 0.0 in
        (* Round, don't truncate: Gc.minor_words deltas are integral in
           practice, but if a runtime ever reports fractional words the
           nearest int keeps the pool credit reconciled with the
           per-worker histogram sum instead of drifting low. *)
        if memgc_on && tid > 0 then
          Memgc.add_foreign_minor_words (int_of_float (Float.round w_delta));
        if mem then Metrics.observe worker_minor_h w_delta;
        if instrumented && tid > 0 then
          let t_exit = Clock.now_ns () in
          Trace_export.slice ~tid ~name:"worker" ~t0_ns:t_start ~dur_ns:(t_exit - t_start)
            ~args:
              (("chunks", Json.Int chunks_a.(tid))
              :: ("busy_ms", Json.Float (Clock.ns_to_ms busy_a.(tid)))
              :: (if mem then [ ("minor_words", Json.Float w_delta) ] else []))
            ()
      in
      let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
      worker 0;
      let t_drain = now () in
      Array.iter Domain.join domains;
      if instrumented then begin
        let t_joined = Clock.now_ns () in
        (* Caller-side wait for stragglers after its own queue ran dry: the
           aggregate signal that chunks are too coarse for this job count. *)
        Metrics.observe_ns join_t (t_joined - t_drain);
        Trace_export.slice ~tid:0 ~name:"join" ~t0_ns:t_drain ~dur_ns:(t_joined - t_drain) ();
        Trace_export.slice ~tid:0 ~name:"parallel_reduce" ~t0_ns:t_run0
          ~dur_ns:(t_joined - t_run0) ~args:trace_args ();
        (* Utilization summary for this run. The joins above published the
           workers' slot writes, so the arrays are stable here. *)
        let fin_min = ref max_int and fin_max = ref min_int in
        for tid = 0 to jobs - 1 do
          if finish_a.(tid) < !fin_min then fin_min := finish_a.(tid);
          if finish_a.(tid) > !fin_max then fin_max := finish_a.(tid);
          Metrics.observe util_busy_frac_h
            (if spans_a.(tid) > 0 then
               100.0 *. float_of_int busy_a.(tid) /. float_of_int spans_a.(tid)
             else 0.0);
          Metrics.observe util_slot_chunks_h (float_of_int chunks_a.(tid))
        done;
        let idle_tail = max 0 (!fin_max - !fin_min) in
        Metrics.observe_ns util_idle_tail_t idle_tail;
        (* Counter track stepping down at each worker finish: the idle tail
           renders as a staircase in chrome://tracing / wx prof. *)
        if Trace_export.is_enabled () then begin
          Trace_export.counter ~name:"pool.active_workers" ~t_ns:t_run0
            [ ("active", float_of_int jobs) ];
          let fins = Array.sub finish_a 0 jobs in
          Array.sort compare fins;
          Array.iteri
            (fun i t ->
              Trace_export.counter ~name:"pool.active_workers" ~t_ns:t
                [ ("active", float_of_int (jobs - i - 1)) ])
            fins
        end;
        util_record ~seq:false ~jobs ~run_span:(t_joined - t_run0) ~busy:busy_a
          ~spans:spans_a ~chunks:chunks_a ~idle_tail
      end;
      (match Atomic.get failure with Some e -> raise e | None -> ());
      (* All tasks completed (no failure), so every slot is filled; the
         joins above publish the workers' writes to this domain. *)
      let acc = ref init in
      for c = 0 to ntasks - 1 do
        match results.(c) with
        | Some r -> acc := combine !acc r
        | None -> assert false
      done;
      !acc
    end
  end

let parallel_reduce ?jobs ?(chunk = 1) ~n ~init ~map ~combine () =
  if chunk < 1 then invalid_arg "Pool.parallel_reduce: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.parallel_reduce: n must be >= 0";
  if n = 0 then init
  else begin
    let nchunks = (n + chunk - 1) / chunk in
    let jobs = min (resolve_jobs jobs) nchunks in
    (* Left fold of [map] over one chunk's indices — the innermost loop of
       every exact measure, so no per-index allocation beyond [map]'s own. *)
    let task c =
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      let acc = ref (map lo) in
      for i = lo + 1 to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    in
    run_tasks ~jobs ~ntasks:nchunks ~order:None ~task ~init ~combine
      ~trace_args:[ ("n", Json.Int n); ("chunks", Json.Int nchunks); ("jobs", Json.Int jobs) ]
  end

let parallel_reduce_weighted ?jobs ?(oversubscribe = 8) ~n ~weight ~init ~map ~combine () =
  if oversubscribe < 1 then invalid_arg "Pool.parallel_reduce_weighted: oversubscribe must be >= 1";
  if n < 0 then invalid_arg "Pool.parallel_reduce_weighted: n must be >= 0";
  if n = 0 then init
  else begin
    let jobs = resolve_jobs jobs in
    let w =
      Array.init n (fun i ->
          let x = weight i in
          if not (x >= 0.0) then
            invalid_arg "Pool.parallel_reduce_weighted: weights must be >= 0";
          x)
    in
    let total = Array.fold_left ( +. ) 0.0 w in
    (* Target unit weight: enough units that the heaviest still leaves
       [oversubscribe] claimable pieces per worker on average — PR 6's
       utilization data showed the idle tail is exactly one oversized
       trailing chunk, so the split bounds the tail by [total/slots]. *)
    let slots = jobs * oversubscribe in
    let target = total /. float_of_int slots in
    let parts =
      Array.map
        (fun wi ->
          if target > 0.0 && wi > target then
            min slots (int_of_float (Float.ceil (wi /. target)))
          else 1)
        w
    in
    let nunits = Array.fold_left ( + ) 0 parts in
    let unit_idx = Array.make nunits 0 in
    let unit_part = Array.make nunits 0 in
    let u = ref 0 in
    for i = 0 to n - 1 do
      for p = 0 to parts.(i) - 1 do
        unit_idx.(!u) <- i;
        unit_part.(!u) <- p;
        incr u
      done
    done;
    (* LPT claim order: heaviest units are handed out first so the light
       ones backfill the tail. Stable sort keeps natural order among equal
       weights. The permutation affects only which domain runs what, never
       the combine order, so results stay bit-identical to order:None. *)
    let order = Array.init nunits (fun k -> k) in
    let unit_w k = w.(unit_idx.(k)) /. float_of_int parts.(unit_idx.(k)) in
    Array.stable_sort (fun a b -> compare (unit_w b) (unit_w a)) order;
    if Metrics.is_enabled () then begin
      Metrics.incr weighted_runs_c;
      Metrics.add units_split_c (nunits - n)
    end;
    let jobs = min jobs nunits in
    let task k = map unit_idx.(k) ~part:unit_part.(k) ~parts:parts.(unit_idx.(k)) in
    run_tasks ~jobs ~ntasks:nunits ~order:(Some order) ~task ~init ~combine
      ~trace_args:
        [ ("n", Json.Int n); ("units", Json.Int nunits); ("jobs", Json.Int jobs) ]
  end

let parallel_reduce_ranges ?jobs ?(range = 16384) ~n ~init ~map ~combine () =
  if range < 1 then invalid_arg "Pool.parallel_reduce_ranges: range must be >= 1";
  if n < 0 then invalid_arg "Pool.parallel_reduce_ranges: n must be >= 0";
  if n = 0 then init
  else begin
    let ntasks = (n + range - 1) / range in
    let jobs = min (resolve_jobs jobs) ntasks in
    (* One task = one contiguous [lo, hi) slice, handed to [map] whole:
       the round kernels want the slice bounds, not a per-index callback,
       so the inner loop lives in the caller with zero closure calls per
       index. Boundaries depend only on [n] and [range] — never on [jobs]
       or scheduling — so with an associative [combine] the result is
       bit-identical at any job count. *)
    let task c =
      let lo = c * range in
      map ~lo ~hi:(min n (lo + range))
    in
    run_tasks ~jobs ~ntasks ~order:None ~task ~init ~combine
      ~trace_args:[ ("n", Json.Int n); ("ranges", Json.Int ntasks); ("jobs", Json.Int jobs) ]
  end

let parallel_for ?jobs ?chunk ~n f =
  parallel_reduce ?jobs ?chunk ~n ~init:() ~map:f ~combine:(fun () () -> ()) ()
