(* Domain pool: chunked index-range stealing over stdlib Domain + Atomic.

   Work distribution is dynamic (domains race on an atomic chunk cursor),
   but the combine tree is static: per-chunk results land in a slot array
   and the calling domain folds them in chunk order. Determinism therefore
   never depends on which domain ran which chunk. *)

let max_domains = 128

let recommended_jobs () = max 1 (min max_domains (Domain.recommended_domain_count ()))

let env_jobs () =
  match Sys.getenv_opt "WX_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n max_domains)
      | _ -> None)

(* 0 = "unset": fall through to WX_JOBS, then the runtime's recommendation.
   An Atomic so --jobs plumbing is safe even if set from a worker. *)
let default = Atomic.make 0

let default_jobs () =
  match Atomic.get default with
  | 0 -> ( match env_jobs () with Some n -> n | None -> recommended_jobs ())
  | n -> n

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set default (min n max_domains)

let parallel_reduce ?jobs ?(chunk = 1) ~n ~init ~map ~combine () =
  if chunk < 1 then invalid_arg "Pool.parallel_reduce: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.parallel_reduce: n must be >= 0";
  if n = 0 then init
  else begin
    let nchunks = (n + chunk - 1) / chunk in
    let jobs =
      match jobs with
      | Some j when j >= 1 -> min j max_domains
      | Some _ -> invalid_arg "Pool.parallel_reduce: jobs must be >= 1"
      | None -> default_jobs ()
    in
    let jobs = min jobs nchunks in
    (* Left fold of [map] over one chunk's indices — the innermost loop of
       every exact measure, so no per-index allocation beyond [map]'s own. *)
    let chunk_result c =
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      let acc = ref (map lo) in
      for i = lo + 1 to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    in
    if jobs <= 1 then begin
      let acc = ref init in
      for c = 0 to nchunks - 1 do
        acc := combine !acc (chunk_result c)
      done;
      !acc
    end
    else begin
      let results = Array.make nchunks None in
      let cursor = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let continue_ = ref true in
        while !continue_ do
          let c = Atomic.fetch_and_add cursor 1 in
          if c >= nchunks || Atomic.get failure <> None then continue_ := false
          else
            match chunk_result c with
            | r -> results.(c) <- Some r
            | exception e ->
                ignore (Atomic.compare_and_set failure None (Some e));
                continue_ := false
        done
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      (match Atomic.get failure with Some e -> raise e | None -> ());
      (* All chunks completed (no failure), so every slot is filled; the
         joins above publish the workers' writes to this domain. *)
      let acc = ref init in
      for c = 0 to nchunks - 1 do
        match results.(c) with
        | Some r -> acc := combine !acc r
        | None -> assert false
      done;
      !acc
    end
  end

let parallel_for ?jobs ?chunk ~n f =
  parallel_reduce ?jobs ?chunk ~n ~init:() ~map:f ~combine:(fun () () -> ()) ()
