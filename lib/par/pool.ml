(* Domain pool: chunked index-range stealing over stdlib Domain + Atomic.

   Work distribution is dynamic (domains race on an atomic chunk cursor),
   but the combine tree is static: per-chunk results land in a slot array
   and the calling domain folds them in chunk order. Determinism therefore
   never depends on which domain ran which chunk.

   Instrumentation: while Wx_obs metrics or tracing is on, every chunk's
   latency lands in a per-domain histogram shard, the gaps between chunks
   feed a claim-wait timer, and each chunk becomes a Chrome-trace slice on
   the track of the worker slot that ran it (tid 0 = the calling domain,
   tids 1..jobs-1 = spawned workers) — so load imbalance across --jobs
   settings is visible both as p99 numbers and in chrome://tracing. All of
   it is gated on one boolean computed per parallel_reduce call; with both
   systems off the hot loop is untouched. *)

module Metrics = Wx_obs.Metrics
module Trace_export = Wx_obs.Trace_export
module Memgc = Wx_obs.Memgc
module Clock = Wx_obs.Clock
module Json = Wx_obs.Json

let max_domains = 128

(* Pool instruments, registered once. Histogram-backed timers shard per
   observing domain inside Metrics, so concurrent workers never contend. *)
let runs_c = Metrics.counter "pool.runs"
let seq_runs_c = Metrics.counter "pool.runs_seq"
let spawned_c = Metrics.counter "pool.domains_spawned"
let chunks_c = Metrics.counter "pool.chunks"
let empty_claims_c = Metrics.counter "pool.claims_empty"
let jobs_g = Metrics.gauge "pool.jobs"
let chunk_t = Metrics.timer "pool.chunk"
let claim_t = Metrics.timer "pool.claim_wait"
let join_t = Metrics.timer "pool.join_wait"

(* Per-worker / per-chunk allocation attribution (live only when Memgc is
   also enabled): each worker observes its own Gc.counters delta, so the
   histogram's DLS shards ARE the per-domain merge — a shard outlives its
   domain and snapshot sums them after the joins. *)
let worker_minor_h = Metrics.histogram "pool.worker_minor_words"
let chunk_minor_h = Metrics.histogram "pool.chunk_minor_words"

let recommended_jobs () = max 1 (min max_domains (Domain.recommended_domain_count ()))

let env_jobs () =
  match Sys.getenv_opt "WX_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n max_domains)
      | _ -> None)

(* 0 = "unset": fall through to WX_JOBS, then the runtime's recommendation.
   An Atomic so --jobs plumbing is safe even if set from a worker. *)
let default = Atomic.make 0

let default_jobs () =
  match Atomic.get default with
  | 0 -> ( match env_jobs () with Some n -> n | None -> recommended_jobs ())
  | n -> n

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set default (min n max_domains)

let parallel_reduce ?jobs ?(chunk = 1) ~n ~init ~map ~combine () =
  if chunk < 1 then invalid_arg "Pool.parallel_reduce: chunk must be >= 1";
  if n < 0 then invalid_arg "Pool.parallel_reduce: n must be >= 0";
  if n = 0 then init
  else begin
    let nchunks = (n + chunk - 1) / chunk in
    let jobs =
      match jobs with
      | Some j when j >= 1 -> min j max_domains
      | Some _ -> invalid_arg "Pool.parallel_reduce: jobs must be >= 1"
      | None -> default_jobs ()
    in
    let jobs = min jobs nchunks in
    (* One flag for the whole call: observe/slice below self-gate on their
       own system's flag, so a trace-only run skips histogram writes and a
       metrics-only run skips slice pushes — but an uninstrumented run pays
       for neither clock reads nor the checks inside them. *)
    let instrumented = Metrics.is_enabled () || Trace_export.is_enabled () in
    (* [memgc_on] alone obliges workers to credit their minor words to
       Memgc's foreign accumulator at exit — Memgc.read on the caller is
       domain-local, so without that credit worker allocation would vanish
       from the bench alloc gate. Richer attribution (histograms, trace
       args) additionally needs a sink, hence [mem]. With Memgc off no Gc
       read happens at all. *)
    let memgc_on = Memgc.is_enabled () in
    let mem = instrumented && memgc_on in
    let now () = if instrumented then Clock.now_ns () else 0 in
    let own_words () = if memgc_on then Memgc.own_minor_words () else 0.0 in
    (* Left fold of [map] over one chunk's indices — the innermost loop of
       every exact measure, so no per-index allocation beyond [map]'s own. *)
    let chunk_result c =
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      let acc = ref (map lo) in
      for i = lo + 1 to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    in
    (* Timed wrapper shared by both paths: [tid] is the worker slot (0 =
       calling domain), [t_claim] the stamp just after the chunk was
       claimed. *)
    let run_chunk ~tid ~t_claim c =
      let w0 = if mem then Memgc.own_minor_words () else 0.0 in
      let r = chunk_result c in
      if instrumented then begin
        let t_done = Clock.now_ns () in
        let dw = if mem then Memgc.own_minor_words () -. w0 else 0.0 in
        Metrics.incr chunks_c;
        Metrics.observe_ns chunk_t (t_done - t_claim);
        if mem then Metrics.observe chunk_minor_h dw;
        Trace_export.slice ~tid ~name:"chunk" ~t0_ns:t_claim ~dur_ns:(t_done - t_claim)
          ~args:
            (("chunk", Json.Int c)
            :: (if mem then [ ("minor_words", Json.Float dw) ] else []))
          ()
      end;
      r
    in
    if jobs <= 1 then begin
      if instrumented then begin
        Metrics.incr seq_runs_c;
        Metrics.set jobs_g 1.0
      end;
      let acc = ref init in
      for c = 0 to nchunks - 1 do
        acc := combine !acc (run_chunk ~tid:0 ~t_claim:(now ()) c)
      done;
      !acc
    end
    else begin
      if instrumented then begin
        Metrics.incr runs_c;
        Metrics.add spawned_c (jobs - 1);
        Metrics.set jobs_g (float_of_int jobs)
      end;
      let t_run0 = now () in
      let results = Array.make nchunks None in
      let cursor = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker tid =
        (* Pre-create this domain's histogram shards: otherwise a worker
           that loses every chunk race allocates fewer shards than one that
           claims work, and total allocation would vary run to run. *)
        if instrumented then begin
          Metrics.touch_timer claim_t;
          Metrics.touch_timer chunk_t;
          Metrics.touch chunk_minor_h;
          Metrics.touch worker_minor_h
        end;
        let t_start = now () in
        let w_start = own_words () in
        let t_prev = ref t_start in
        let continue_ = ref true in
        while !continue_ do
          let c = Atomic.fetch_and_add cursor 1 in
          if c >= nchunks || Atomic.get failure <> None then begin
            if instrumented && c >= nchunks then Metrics.incr empty_claims_c;
            continue_ := false
          end
          else begin
            let t_claim = now () in
            if instrumented then Metrics.observe_ns claim_t (t_claim - !t_prev);
            match run_chunk ~tid ~t_claim c with
            | r ->
                results.(c) <- Some r;
                t_prev := now ()
            | exception e ->
                ignore (Atomic.compare_and_set failure None (Some e));
                continue_ := false
          end
        done;
        (* Per-worker attribution: the worker's OWN minor-word delta,
           observed from the worker domain itself so it lands in that
           domain's histogram shard (merged at snapshot after joins).
           Spawned workers also credit the delta to Memgc's foreign
           accumulator — the caller's post-join Memgc.read depends on it —
           and that credit happens-before the join that publishes it. *)
        let w_delta = if memgc_on then Memgc.own_minor_words () -. w_start else 0.0 in
        if memgc_on && tid > 0 then Memgc.add_foreign_minor_words (int_of_float w_delta);
        if mem then Metrics.observe worker_minor_h w_delta;
        if instrumented && tid > 0 then
          let t_exit = Clock.now_ns () in
          Trace_export.slice ~tid ~name:"worker" ~t0_ns:t_start ~dur_ns:(t_exit - t_start)
            ~args:(if mem then [ ("minor_words", Json.Float w_delta) ] else [])
            ()
      in
      let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
      worker 0;
      let t_drain = now () in
      Array.iter Domain.join domains;
      if instrumented then begin
        let t_joined = Clock.now_ns () in
        (* Caller-side wait for stragglers after its own queue ran dry: the
           aggregate signal that chunks are too coarse for this job count. *)
        Metrics.observe_ns join_t (t_joined - t_drain);
        Trace_export.slice ~tid:0 ~name:"join" ~t0_ns:t_drain ~dur_ns:(t_joined - t_drain) ();
        Trace_export.slice ~tid:0 ~name:"parallel_reduce" ~t0_ns:t_run0
          ~dur_ns:(t_joined - t_run0)
          ~args:[ ("n", Json.Int n); ("chunks", Json.Int nchunks); ("jobs", Json.Int jobs) ]
          ()
      end;
      (match Atomic.get failure with Some e -> raise e | None -> ());
      (* All chunks completed (no failure), so every slot is filled; the
         joins above publish the workers' writes to this domain. *)
      let acc = ref init in
      for c = 0 to nchunks - 1 do
        match results.(c) with
        | Some r -> acc := combine !acc r
        | None -> assert false
      done;
      !acc
    end
  end

let parallel_for ?jobs ?chunk ~n f =
  parallel_reduce ?jobs ?chunk ~n ~init:() ~map:f ~combine:(fun () () -> ()) ()
