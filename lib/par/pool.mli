(** Stdlib-only domain pool for data-parallel reductions.

    The exact expansion measures enumerate an exponential combination space;
    this module lets them shard that space over OCaml 5 domains with nothing
    beyond [Domain] and [Atomic] — no domainslib dependency.

    {2 Execution model}

    A call to {!parallel_reduce} splits the index range [0, n) into
    fixed-size chunks. Worker domains (the caller plus [jobs - 1] spawned
    domains) claim chunks by a single [Atomic.fetch_and_add] on a shared
    cursor — cheap dynamic load balancing for irregular per-index work.
    Each chunk is folded locally with [combine]; the per-chunk results are
    stored into a slot array and finally folded {e in chunk order} by the
    calling domain.

    {!parallel_reduce_weighted} is the work-stealing variant for loads the
    fixed-size splitter cannot balance: the caller supplies a per-index
    weight estimate, oversized indices are split into finer work units
    claimed off the same atomic cursor, and the heaviest units are handed
    out first (LPT order) so light units backfill the idle tail.

    {2 Determinism}

    Because chunk boundaries depend only on [n] and [chunk] (never on
    [jobs] or on scheduling), and the final fold walks chunks in index
    order, the result is a deterministic function of the inputs whenever
    [combine] is associative with [init] as a neutral element. Callers that
    need a canonical witness under ties (e.g. min-with-lexicographic-
    tiebreak) get scheduling-independent answers at any job count,
    including [jobs = 1].

    Exceptions raised by [map]/[combine] in any worker cancel the
    remaining chunks and are re-raised in the calling domain.

    {2 Instrumentation}

    While [Wx_obs.Metrics] is enabled, every run feeds per-domain-sharded
    timers and counters: [pool.chunk] (chunk latency), [pool.claim_wait]
    (gap between a worker finishing one chunk and claiming the next),
    [pool.join_wait] (caller-side wait for stragglers after its own queue
    ran dry — the load-imbalance signal), plus [pool.runs], [pool.chunks],
    [pool.claims_empty], [pool.domains_spawned] and the [pool.jobs] gauge.
    Weighted runs additionally count [pool.runs_weighted] and
    [pool.units_split] (extra work units the splitter created beyond one
    per index).
    While [Wx_obs.Trace_export] is enabled, each chunk additionally becomes
    a Chrome-trace slice on the track of the worker slot that ran it
    (tid 0 = calling domain, tids 1..jobs-1 = spawned workers), with
    [worker]/[join]/[parallel_reduce] envelope slices. With both systems
    off the hot loop performs no clock reads (assertable via
    [Wx_obs.Clock.read_count]).

    {2 Utilization}

    Instrumented runs additionally attribute busy/idle time per worker
    slot: busy nanoseconds (time inside chunks, on the stamps the chunk
    timer already takes), chunks claimed, slot span (worker start to
    finish) and the per-run {e idle tail} — last worker finish minus first
    worker finish, the straggler cost of skewed sharding. Per-run numbers
    feed the [pool.util.*] instruments and a [pool.active_workers] counter
    track in the exported trace; cross-run sums accumulate in a global
    summary read by {!util} and cleared by {!reset_util}, which the bench
    runner brackets around each experiment to produce the [wx-bench/4]
    [util] block. *)

type slot_util = {
  s_busy_ns : int;  (** time inside chunks on this worker slot *)
  s_span_ns : int;  (** slot start-to-finish span, summed over runs *)
  s_chunks : int;  (** chunks claimed by this slot *)
}

type util = {
  u_runs : int;  (** instrumented parallel runs accumulated *)
  u_seq_runs : int;  (** instrumented sequential (jobs=1) runs *)
  u_capacity_ns : int;  (** [jobs * run_span] summed over runs *)
  u_busy_ns : int;  (** busy time summed over all slots and runs *)
  u_idle_tail_ns : int;  (** idle tails summed over parallel runs *)
  u_max_idle_tail_ns : int;  (** worst single-run idle tail *)
  u_slots : slot_util array;  (** indexed by worker tid (0 = caller) *)
}

val util : unit -> util
(** Snapshot of the cross-run utilization accumulator (zeroes and an empty
    slot array if no instrumented run happened since {!reset_util}). *)

val reset_util : unit -> unit
(** Clear the cross-run utilization accumulator. Call between joined
    parallel sections, like [Metrics.reset]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count], clamped to [1, 128]. *)

val default_jobs : unit -> int
(** The pool-wide default parallelism: the last value passed to
    {!set_default_jobs} if any, else the [WX_JOBS] environment variable if
    set to a positive integer, else {!recommended_jobs}. *)

val set_default_jobs : int -> unit
(** Override the default ([--jobs] plumbing). Raises [Invalid_argument] on
    non-positive values; clamped to 128 (the runtime's domain ceiling). *)

val parallel_reduce :
  ?jobs:int ->
  ?chunk:int ->
  n:int ->
  init:'a ->
  map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  unit ->
  'a
(** [parallel_reduce ~n ~init ~map ~combine ()] is
    [fold_left combine init (List.map map [0; ...; n-1])] computed on
    [jobs] domains (default {!default_jobs}) in chunks of [chunk]
    (default 1) indices. Requires [combine] associative and [init]
    neutral for a deterministic result; see the module preamble. *)

val parallel_reduce_weighted :
  ?jobs:int ->
  ?oversubscribe:int ->
  n:int ->
  weight:(int -> float) ->
  init:'a ->
  map:(int -> part:int -> parts:int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  unit ->
  'a
(** [parallel_reduce_weighted ~n ~weight ~init ~map ~combine ()] reduces
    over indices [0, n) like {!parallel_reduce}, but splits each index [i]
    into [parts_i = ceil (weight i / target)] work units, where [target]
    is the total weight divided by [jobs * oversubscribe] (default
    oversubscribe 8) and [parts_i] is capped at [jobs * oversubscribe].
    [map i ~part ~parts] computes part [part] of [0..parts-1] of index
    [i]'s reduction; the caller decides how a part maps onto its work (and
    must cover index [i] exactly once across its parts). Units are claimed
    heaviest-first off the shared cursor, but results are combined in
    [(index, part)] order, so the answer is bit-identical to a sequential
    run whenever [combine] is associative with [init] neutral —
    scheduling, job count and claim order are unobservable. [weight] must
    return non-negative finite floats; it is called once per index before
    the run. *)

val parallel_reduce_ranges :
  ?jobs:int ->
  ?range:int ->
  n:int ->
  init:'a ->
  map:(lo:int -> hi:int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  unit ->
  'a
(** Range-sharded variant for flat-array kernels: the index space [0, n)
    is cut into contiguous slices of [range] (default 16384) indices and
    [map ~lo ~hi] reduces one whole slice [lo, hi) itself — no per-index
    closure call, which is what a CSR round scan needs to stay
    allocation-free. Slice boundaries depend only on [n] and [range]
    (never on [jobs] or scheduling) and per-slice results are combined in
    slice order, so with [combine] associative and [init] neutral the
    result is bit-identical at any job count. *)

val parallel_for : ?jobs:int -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f i] for [i] in [0, n) across the pool.
    Iterations must be independent; completion of all iterations
    happens-before the return. *)
