(** Named work units — the throughput axis of the observability stack.

    A {!kind} counts abstract units of algorithmic work (sets scored,
    Gray-code steps, rounds simulated, sample draws). Each kind is backed
    by a {!Metrics} counter named ["work.<kind>"]: units appear in
    [--metrics] output and snapshots, zero with [Metrics.reset], and are
    domain-safe (atomic adds). Hot loops must batch into shard-local ints
    and flush once per shard, exactly like the [expansion.*] counters.

    On top of the registry, [Work] enumerates kinds so the bench runner can
    record per-experiment unit deltas into the [wx-bench/4] [rate] block
    and derive units/sec against the wall samples.

    All write operations are single-flag-load no-ops while {!Metrics} is
    disabled; none ever reads a clock. *)

type kind

val kind : string -> kind
(** Intern a kind by name (idempotent). Keep registration off hot paths —
    one module-level handle per kind, like Metrics instruments. *)

val name : kind -> string

(** The core vocabulary, registered eagerly. *)

val sets_scored : kind
val gray_steps : kind
val rounds_simulated : kind
val draws : kind

val vertex_scans : kind
(** ["radio.vertex_scans"]: receiver-scan slots examined by a radio round
    kernel (one unit per vertex per round, both engines) — the
    denominator-free throughput axis of the SIMSCALE experiment. *)

val radio_rounds : kind
(** ["radio.rounds"]: rounds executed by the CSR round kernel (the legacy
    loop's rounds stay on {!rounds_simulated}, credited in [Sim]). *)

val add : kind -> int -> unit
(** Credit [n] units; no-op while Metrics is disabled. *)

val incr : kind -> unit

val count : kind -> int
(** Units credited since the last [Metrics.reset] (one atomic load). *)

val totals : unit -> (string * int) list
(** All kinds with a nonzero count, sorted by name. *)

val grand_total : unit -> int
(** Sum across every kind — the span-attribution input for [wx prof]. *)

val delta : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-kind difference of two {!totals} readings (kinds absent in
    [before] count from 0); drops zero deltas. *)
