(* Nanosecond-resolution monotonic wall clock.

   Backed by the clock_gettime(CLOCK_MONOTONIC) stub that ships with
   bechamel's monotonic_clock sub-library, so timers are immune to NTP slews
   and gettimeofday jumps. Values are nanoseconds since an arbitrary epoch;
   only differences are meaningful. *)

(* Test hook mirroring Memgc.gc_read_count: a plain atomic bumped on every
   monotonic read, so tests can assert "zero clock reads while disabled" on
   hot paths (the pool's chunk loop, Work/Progress fast paths). Always live —
   one fetch-and-add per read is far below clock_gettime's own cost. *)
let reads = Atomic.make 0
let read_count () = Atomic.get reads

let now_ns () : int =
  Atomic.incr reads;
  Int64.to_int (Monotonic_clock.now ())

let ns_to_ms ns = float_of_int ns /. 1e6
let ns_to_s ns = float_of_int ns /. 1e9

(* Wall time for timestamps in filenames / reports (not monotonic). *)
let epoch_s () = Unix.gettimeofday ()

let timestamp () =
  let tm = Unix.gmtime (epoch_s ()) in
  Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
