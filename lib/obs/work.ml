(* Named work units: the throughput axis of the observability stack.

   A work kind is a counter of abstract units done — sets scored, Gray-code
   steps, rounds simulated, sample draws. Each kind is backed by a Metrics
   counter named "work.<kind>", so units show up in --metrics / snapshots,
   reset with Metrics.reset, and inherit the registry's domain-safety
   (atomic adds; shard-local batching is the caller's job, same discipline
   as the expansion.* hot-loop counters). On top of that, Work keeps its own
   kind registry so the bench runner can enumerate per-experiment unit
   deltas into the wx-bench/4 rate block without knowing the kinds ahead of
   time.

   Hot-path cost: [add]/[incr] delegate to Metrics and are a single flag
   load while the registry is disabled — no clock reads ever. *)

type kind = { w_name : string; c : Metrics.counter }

let kinds : (string, kind) Hashtbl.t = Hashtbl.create 16
let kinds_lock = Mutex.create ()

let kind name =
  Mutex.lock kinds_lock;
  let k =
    match Hashtbl.find_opt kinds name with
    | Some k -> k
    | None ->
        let k = { w_name = name; c = Metrics.counter ("work." ^ name) } in
        Hashtbl.replace kinds name k;
        k
  in
  Mutex.unlock kinds_lock;
  k

let name k = k.w_name

(* The core vocabulary, registered eagerly so totals () enumerates them in a
   fixed order even before any instrumented code path has run. *)
let sets_scored = kind "sets_scored"
let gray_steps = kind "gray_steps"
let rounds_simulated = kind "rounds_simulated"
let draws = kind "draws"
let vertex_scans = kind "radio.vertex_scans"
let radio_rounds = kind "radio.rounds"

let add k n = Metrics.add k.c n
let incr k = Metrics.incr k.c
let count k = Metrics.counter_value k.c

let totals () =
  Mutex.lock kinds_lock;
  let all = Hashtbl.fold (fun _ k acc -> k :: acc) kinds [] in
  Mutex.unlock kinds_lock;
  List.sort compare
    (List.filter_map
       (fun k ->
         let n = count k in
         if n = 0 then None else Some (k.w_name, n))
       all)

let grand_total () =
  Mutex.lock kinds_lock;
  let all = Hashtbl.fold (fun _ k acc -> k :: acc) kinds [] in
  Mutex.unlock kinds_lock;
  List.fold_left (fun acc k -> acc + count k) 0 all

(* Delta between two totals () readings — the per-experiment work
   attribution the bench runner records (mirrors the Memgc delta pattern:
   read before, read after, subtract; kinds absent before count from 0). *)
let delta ~before ~after =
  List.filter_map
    (fun (name, n1) ->
      let n0 = match List.assoc_opt name before with Some n -> n | None -> 0 in
      if n1 - n0 = 0 then None else Some (name, n1 - n0))
    after
