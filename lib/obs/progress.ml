(* Live heartbeat for long runs: coverage, units/sec, ETA on stderr.

   An exact measure over an n-vertex graph enumerates an exponential subset
   space; at 30+ vertices a run is minutes-to-hours with no sign of life.
   A Progress task gives it a pulse: hot loops credit batched unit counts
   with [tick], and at most once per wall-clock interval one of the ticking
   domains prints a single status line to stderr.

   Contract with the determinism gates: progress NEVER influences computed
   values or witnesses — it only counts and prints. It is off by default
   (enable with WX_PROGRESS=1), suppressed under --json by the CLI, and a
   disabled task's [tick] is one bool load: no clock read, no allocation,
   no atomic op. Note that an *enabled* heartbeat does allocate (formatting
   the line), so WX_PROGRESS perturbs the minor-word figures the alloc gate
   compares — the bench harness leaves it off.

   Domain-safety: [tick] arrives concurrently from pool workers. The unit
   count is an atomic; the printer is elected by a compare-and-set on the
   next-print deadline, so exactly one domain formats per interval, and the
   write itself is serialized by a mutex shared with [finish]. *)

let default_interval_ns = 1_000_000_000

let interval_ns =
  match Sys.getenv_opt "WX_PROGRESS_INTERVAL_MS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some ms when ms >= 1 -> ms * 1_000_000
      | _ -> default_interval_ns)
  | None -> default_interval_ns

let enabled =
  Atomic.make
    (match Sys.getenv_opt "WX_PROGRESS" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type task = {
  label : string;
  units : string;
  total : int; (* <= 0: unknown, no coverage/ETA *)
  live : bool;
  done_ : int Atomic.t;
  t0_ns : int;
  next_ns : int Atomic.t;
  tty : bool;
  lock : Mutex.t;
  mutable printed : bool;
}

(* Shared inert task returned while disabled: [tick]/[finish] bail on
   [live] before touching any field, so sharing is safe and [start] costs
   nothing on the disabled path. *)
let dummy =
  {
    label = "";
    units = "";
    total = 0;
    live = false;
    done_ = Atomic.make 0;
    t0_ns = 0;
    next_ns = Atomic.make 0;
    tty = false;
    lock = Mutex.create ();
    printed = false;
  }

let fmt_rate r = if Float.is_finite r && r > 0.0 then Printf.sprintf "%.3g/s" r else "-/s"

let fmt_eta s =
  if not (Float.is_finite s) || s < 0.0 then "-"
  else if s < 90.0 then Printf.sprintf "%.1fs" s
  else if s < 5400.0 then Printf.sprintf "%.1fm" (s /. 60.0)
  else Printf.sprintf "%.1fh" (s /. 3600.0)

(* The heartbeat's state, also published to the registry so the stderr
   line and `wx top` render from one source. ETA is NaN — not inf — until
   the rate is positive: "no estimate yet" is a missing value, and both
   fmt_eta and the Prometheus renderer have honest spellings for it ("-",
   "NaN"), where inf would leak into arithmetic downstream. *)
type stats = { pct : float; rate : float; eta : float; elapsed : float }

let stats t ~now ~done_ =
  let elapsed = Clock.ns_to_s (now - t.t0_ns) in
  let rate =
    if elapsed > 0.0 && done_ > 0 then float_of_int done_ /. elapsed else Float.nan
  in
  let pct =
    if t.total > 0 then 100.0 *. float_of_int done_ /. float_of_int t.total
    else Float.nan
  in
  let eta =
    if t.total > 0 && rate > 0.0 then float_of_int (t.total - done_) /. rate
    else Float.nan
  in
  { pct; rate; eta; elapsed }

let coverage_g = Metrics.gauge "progress.coverage_pct"
let done_g = Metrics.gauge "progress.done_units"
let total_g = Metrics.gauge "progress.total_units"
let rate_g = Metrics.gauge "progress.units_per_s"
let eta_g = Metrics.gauge "progress.eta_s"

let publish t ~done_ st =
  Metrics.set done_g (float_of_int done_);
  Metrics.set total_g (float_of_int t.total);
  Metrics.set coverage_g st.pct;
  Metrics.set rate_g st.rate;
  Metrics.set eta_g st.eta

let line t st ~done_ =
  if t.total > 0 then
    Printf.sprintf "[progress] %s %5.1f%% %d/%d %s %s eta %s" t.label st.pct done_
      t.total t.units (fmt_rate st.rate) (fmt_eta st.eta)
  else
    Printf.sprintf "[progress] %s %d %s %s %.1fs" t.label done_ t.units
      (fmt_rate st.rate) st.elapsed

let print t ~now ~done_ =
  let st = stats t ~now ~done_ in
  (* Gauge publication rides the interval-elected print path, never the
     per-tick hot path: at most one domain per interval, and only when the
     heartbeat is enabled — the bench harness keeps WX_PROGRESS off, so
     the alloc gate never sees these sets. *)
  publish t ~done_ st;
  let s = line t st ~done_ in
  Mutex.lock t.lock;
  t.printed <- true;
  (* TTY: rewrite one line in place (clear to EOL covers shrinking text).
     Pipe/file: plain appended lines, one per interval. *)
  if t.tty then Printf.eprintf "\r%s\x1b[K%!" s else Printf.eprintf "%s\n%!" s;
  Mutex.unlock t.lock

let start ?(units = "units") ~label ~total () =
  if not (Atomic.get enabled) then dummy
  else
    let t0 = Clock.now_ns () in
    {
      label;
      units;
      total;
      live = true;
      done_ = Atomic.make 0;
      t0_ns = t0;
      next_ns = Atomic.make (t0 + interval_ns);
      tty = (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false);
      lock = Mutex.create ();
      printed = false;
    }

let tick t n =
  if t.live then begin
    let done_ = Atomic.fetch_and_add t.done_ n + n in
    let now = Clock.now_ns () in
    let next = Atomic.get t.next_ns in
    (* CAS elects exactly one printing domain per interval; losers just
       keep counting. *)
    if now >= next && Atomic.compare_and_set t.next_ns next (now + interval_ns) then
      print t ~now ~done_
  end

let finish t =
  if t.live then begin
    Mutex.lock t.lock;
    if t.printed && t.tty then Printf.eprintf "\r\x1b[K%!";
    Mutex.unlock t.lock
  end
