(* Structured event sink: named events with typed fields, rendered either as
   one-line pretty text or as NDJSON (one JSON object per line).

   A process-wide current sink can be installed (wx --json does this);
   library code guards emission with [active ()] so that building the field
   list costs nothing when no one is listening. *)

type format = Pretty | Ndjson

type t = { oc : out_channel; fmt : format; mutable events : int }

let make ?(fmt = Ndjson) oc = { oc; fmt; events = 0 }

let current : t option ref = ref None
let install s = current := Some s
let uninstall () = current := None
let active () = !current <> None
let installed () = !current

let render_pretty name fields =
  let buf = Buffer.create 96 in
  Buffer.add_char buf '[';
  Buffer.add_string buf name;
  Buffer.add_char buf ']';
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (match v with Json.String s -> s | v -> Json.to_string v))
    fields;
  Buffer.contents buf

let emit_to s name fields =
  s.events <- s.events + 1;
  (match s.fmt with
  | Ndjson ->
      output_string s.oc (Json.to_string (Json.Obj (("event", Json.String name) :: fields)))
  | Pretty -> output_string s.oc (render_pretty name fields));
  output_char s.oc '\n';
  flush s.oc

(* Emit to the installed sink, if any. Call sites on hot paths should still
   check [active ()] first to avoid building [fields]. *)
let event name fields = match !current with None -> () | Some s -> emit_to s name fields

let with_sink s f =
  let prev = !current in
  current := Some s;
  Fun.protect ~finally:(fun () -> current := prev) f
