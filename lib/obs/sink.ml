(* Structured event sink: named events with typed fields, rendered either as
   one-line pretty text or as NDJSON (one JSON object per line).

   A process-wide current sink can be installed (wx --json does this);
   library code guards emission with [active ()] so that building the field
   list costs nothing when no one is listening.

   Events are written through the out_channel's buffer and flushed every
   [flush_every] events rather than on each one — per-event flushing
   dominated emission cost on chatty streams (the simulator's per-round
   events). Whole lines only ever reach the channel atomically, and
   [install] registers a one-time [at_exit] flush, so a run that exits
   between batch boundaries — including a signal-triggered [exit], see
   bin/wx — still lands every buffered event instead of truncated output. *)

type format = Pretty | Ndjson

type t = { oc : out_channel; fmt : format; mutable events : int; mutable closed : bool }

let make ?(fmt = Ndjson) oc = { oc; fmt; events = 0; closed = false }

let current : t option ref = ref None

let flush_sink s =
  if not s.closed then
    (* The channel may have been closed behind our back (tests close their
       temp files; at_exit races stdout teardown) — losing the flush is
       then correct, raising from at_exit is not. *)
    try flush s.oc with Sys_error _ -> s.closed <- true

let flush_installed () = match !current with None -> () | Some s -> flush_sink s

let at_exit_registered = ref false

let install s =
  current := Some s;
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit flush_installed
  end

let uninstall () =
  flush_installed ();
  current := None

let active () = !current <> None
let installed () = !current

let flush_every = 64

let render_pretty name fields =
  let buf = Buffer.create 96 in
  Buffer.add_char buf '[';
  Buffer.add_string buf name;
  Buffer.add_char buf ']';
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (match v with Json.String s -> s | v -> Json.to_string v))
    fields;
  Buffer.contents buf

let emit_to s name fields =
  s.events <- s.events + 1;
  (match s.fmt with
  | Ndjson ->
      output_string s.oc (Json.to_string (Json.Obj (("event", Json.String name) :: fields)))
  | Pretty -> output_string s.oc (render_pretty name fields));
  output_char s.oc '\n';
  if s.events mod flush_every = 0 then flush_sink s

(* Emit to the installed sink, if any. Call sites on hot paths should still
   check [active ()] first to avoid building [fields]. *)
let event name fields = match !current with None -> () | Some s -> emit_to s name fields

let with_sink s f =
  let prev = !current in
  current := Some s;
  Fun.protect
    ~finally:(fun () ->
      flush_sink s;
      current := prev)
    f
