(** Minimal JSON value type, renderer and parser.

    The single source of valid JSON for the observability stack: NDJSON
    events, metric snapshots and bench reports all render through [to_string]
    / [to_string_pretty]; tests round-trip through [of_string]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (what NDJSON wants). NaN renders as
    [null], infinities as out-of-range literals ([1e999]). *)

val to_string_pretty : t -> string
(** Two-space-indented multi-line rendering for report files. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage. *)

val of_string_opt : string -> t option

(** Accessors for drilling into parsed values (tests, bench gate). *)

val member : string -> t -> t option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
