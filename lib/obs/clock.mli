(** Nanosecond-resolution monotonic clock (CLOCK_MONOTONIC via bechamel's
    stub), plus wall-clock timestamps for report filenames. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary epoch; only differences are
    meaningful. *)

val read_count : unit -> int
(** Number of {!now_ns} calls since process start — a test hook (like
    [Memgc.gc_read_count]) for asserting that disabled instrumentation
    performs no clock reads on hot paths. *)

val ns_to_ms : int -> float
val ns_to_s : int -> float

val epoch_s : unit -> float
(** Wall-clock seconds since the Unix epoch (not monotonic). *)

val timestamp : unit -> string
(** UTC wall-clock timestamp like [20260806T143501Z], filename-safe. *)
