(* Offline analysis of Chrome-trace files: span profiles, differential
   profiling, and collapsed-stack (flamegraph) export.

   Trace_export writes timelines; this module reads them back as data.
   The ledger's trend gate can say "e2 regressed 30% on wall since last
   month" but not where — answering that needs the per-span view of two
   traces side by side. A catapult file carries everything required:
   every complete ("X") slice has a name, a track (tid), a start and a
   duration, and — when Memgc was on during recording — a minor_words
   arg tagged by Span/Pool. Slices on one track nest by time
   containment (a span's children, the chunks inside a worker
   envelope), so a single pass over each track with an interval stack
   recovers the parent stacks, and from those both the per-span SELF
   costs (total minus children — the number that localizes a
   regression, since child cost ranks on its own row) and the collapsed
   "root;child;leaf value" lines flamegraph.pl / speedscope consume.

   Everything here is pure data -> data and deterministic for fixed
   input files: aggregation is by name in sorted order, folded lines
   are sorted, and the diff orders by regression first. *)

type row = {
  r_name : string;
  r_tid : int;
  r_t0_us : float;
  r_dur_us : float;
  r_minor_words : float;  (* 0 when the slice was not alloc-tagged *)
}

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let row_of_event j =
  let str name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error ("event missing " ^ name)
  in
  let num name =
    match Option.bind (Json.member name j) Json.to_float_opt with
    | Some x -> Ok x
    | None -> Error ("event missing numeric " ^ name)
  in
  let* name = str "name" in
  let* tid =
    match Option.bind (Json.member "tid" j) Json.to_int_opt with
    | Some t -> Ok t
    | None -> Error "event missing tid"
  in
  let* ts = num "ts" in
  let* dur = num "dur" in
  let minor =
    match Json.member "args" j with
    | Some args -> (
        match Option.bind (Json.member "minor_words" args) Json.to_float_opt with
        | Some w -> w
        | None -> 0.0)
    | None -> 0.0
  in
  Ok { r_name = name; r_tid = tid; r_t0_us = ts; r_dur_us = dur; r_minor_words = minor }

(* Only complete ("X") events carry durations; metadata ("M") and counter
   ("C") samples are structure, not cost. A malformed X event is an error
   — the diff gate needs "not a trace" as a distinct outcome. *)
let rows_of_json j =
  match Json.member "traceEvents" j with
  | None -> Error "no traceEvents field (not a Chrome trace?)"
  | Some evs -> (
      match Json.to_list_opt evs with
      | None -> Error "traceEvents is not a list"
      | Some xs ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | ev :: rest -> (
                match Option.bind (Json.member "ph" ev) Json.to_string_opt with
                | Some "X" -> (
                    match row_of_event ev with
                    | Ok r -> go (r :: acc) rest
                    | Error m -> Error m)
                | Some _ -> go acc rest
                | None -> Error ("event missing ph: " ^ Json.to_string ev))
          in
          go [] xs)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | raw -> (
      match Json.of_string raw with
      | exception Json.Parse_error m -> Error (Printf.sprintf "%s: %s" path m)
      | j -> (
          match rows_of_json j with
          | Ok rows -> Ok rows
          | Error m -> Error (Printf.sprintf "%s: %s" path m)))

(* ---- containment nesting ---- *)

(* Microsecond timestamps came from integer nanoseconds through one
   division, so parent/child edges survive to within a nanosecond; the
   epsilon absorbs that rounding without ever bridging real gaps. *)
let eps_us = 0.002

let contained ~inner:(t0, t1) ~outer:(u0, u1) = t0 >= u0 -. eps_us && t1 <= u1 +. eps_us

type node = {
  row : row;
  stack : string list;  (* leaf first, thread root last *)
  mutable child_dur_us : float;
  mutable child_minor : float;
}

let thread_root tid = if tid = 0 then "main" else Printf.sprintf "worker-%d" tid

(* One pass per track: rows sorted by (start asc, duration desc) visit
   parents before their children, and an interval stack recovers the
   ancestry. Returns every slice with its stack and child rollups. *)
let nest rows =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let l = try Hashtbl.find by_tid r.r_tid with Not_found -> [] in
      Hashtbl.replace by_tid r.r_tid (r :: l))
    rows;
  let tids = List.sort_uniq compare (List.map (fun r -> r.r_tid) rows) in
  List.concat_map
    (fun tid ->
      let track =
        List.sort
          (fun a b ->
            match compare a.r_t0_us b.r_t0_us with
            | 0 -> compare b.r_dur_us a.r_dur_us
            | c -> c)
          (Hashtbl.find by_tid tid)
      in
      let root = thread_root tid in
      let out = ref [] and stack = ref [] in
      List.iter
        (fun r ->
          let iv = (r.r_t0_us, r.r_t0_us +. r.r_dur_us) in
          let rec unwind () =
            match !stack with
            | top :: rest
              when not
                     (contained ~inner:iv
                        ~outer:(top.row.r_t0_us, top.row.r_t0_us +. top.row.r_dur_us)) ->
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          let parent_stack = match !stack with [] -> [ root ] | top :: _ -> top.stack in
          let n =
            { row = r; stack = r.r_name :: parent_stack; child_dur_us = 0.0; child_minor = 0.0 }
          in
          (match !stack with
          | top :: _ ->
              top.child_dur_us <- top.child_dur_us +. r.r_dur_us;
              top.child_minor <- top.child_minor +. r.r_minor_words
          | [] -> ());
          stack := n :: !stack;
          out := n :: !out)
        track;
      List.rev !out)
    tids

(* ---- aggregate profile ---- *)

type agg = {
  a_name : string;
  a_calls : int;
  a_total_us : float;
  a_self_us : float;
  a_minor_words : float;
  a_self_minor_words : float;
}

let profile rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let self_us = Float.max 0.0 (n.row.r_dur_us -. n.child_dur_us) in
      let self_minor = Float.max 0.0 (n.row.r_minor_words -. n.child_minor) in
      let a =
        try Hashtbl.find tbl n.row.r_name
        with Not_found ->
          {
            a_name = n.row.r_name;
            a_calls = 0;
            a_total_us = 0.0;
            a_self_us = 0.0;
            a_minor_words = 0.0;
            a_self_minor_words = 0.0;
          }
      in
      Hashtbl.replace tbl n.row.r_name
        {
          a with
          a_calls = a.a_calls + 1;
          a_total_us = a.a_total_us +. n.row.r_dur_us;
          a_self_us = a.a_self_us +. self_us;
          a_minor_words = a.a_minor_words +. n.row.r_minor_words;
          a_self_minor_words = a.a_self_minor_words +. self_minor;
        })
    (nest rows);
  Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.a_self_us a.a_self_us with
         | 0 -> compare a.a_name b.a_name
         | c -> c)

(* ---- folded stacks ---- *)

(* flamegraph.pl / speedscope input: one "frame;frame;leaf value" line
   per distinct stack, value = SELF microseconds rounded to int (the
   tools sum identical lines, we pre-merge). Lines are sorted, so the
   output is a deterministic function of the trace. *)
let folded rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let self_us = Float.max 0.0 (n.row.r_dur_us -. n.child_dur_us) in
      let path = String.concat ";" (List.rev n.stack) in
      let prev = try Hashtbl.find tbl path with Not_found -> 0.0 in
      Hashtbl.replace tbl path (prev +. self_us))
    (nest rows);
  let lines =
    Hashtbl.fold
      (fun path v acc -> Printf.sprintf "%s %d" path (int_of_float (Float.round v)) :: acc)
      tbl []
  in
  String.concat "\n" (List.sort compare lines) ^ if lines = [] then "" else "\n"

(* ---- differential profile ---- *)

type pdelta = {
  p_name : string;
  p_calls_old : int;  (* 0 when new-only *)
  p_calls_new : int;  (* 0 when old-only *)
  p_old_self_us : float;
  p_new_self_us : float;
  p_delta_self_us : float;  (* new - old; absent side counts as 0 *)
  p_old_self_minor : float;
  p_new_self_minor : float;
  p_delta_self_minor : float;
}

(* Regression-sorted: the span that gained the most self time leads, the
   one that lost the most closes the list — `--top K` of a prof diff is
   then "the K spans to look at". Ties break by name for determinism. *)
let diff_profiles ~old_ ~new_ =
  let find ps name = List.find_opt (fun a -> a.a_name = name) ps in
  let names =
    List.sort_uniq compare (List.map (fun a -> a.a_name) old_ @ List.map (fun a -> a.a_name) new_)
  in
  List.map
    (fun name ->
      let o = find old_ name and n = find new_ name in
      let self = function Some a -> a.a_self_us | None -> 0.0 in
      let minor = function Some a -> a.a_self_minor_words | None -> 0.0 in
      let calls = function Some a -> a.a_calls | None -> 0 in
      {
        p_name = name;
        p_calls_old = calls o;
        p_calls_new = calls n;
        p_old_self_us = self o;
        p_new_self_us = self n;
        p_delta_self_us = self n -. self o;
        p_old_self_minor = minor o;
        p_new_self_minor = minor n;
        p_delta_self_minor = minor n -. minor o;
      })
    names
  |> List.sort (fun a b ->
         match compare b.p_delta_self_us a.p_delta_self_us with
         | 0 -> compare a.p_name b.p_name
         | c -> c)

(* A span-level regression worth flagging: self time grew beyond the
   relative tolerance AND by more than an absolute floor (tiny spans
   double all the time; 1ms of new self time is where looking starts
   to pay). Both knobs are caller-visible in wx prof diff. *)
let default_self_tolerance = 0.25
let default_min_delta_us = 1000.0

let pdelta_regressed ?(tolerance = default_self_tolerance)
    ?(min_delta_us = default_min_delta_us) d =
  d.p_delta_self_us > min_delta_us
  && (d.p_old_self_us <= 0.0 || d.p_new_self_us /. d.p_old_self_us > 1.0 +. tolerance)
