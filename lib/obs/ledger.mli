(** Perf-trajectory ledger ([wx-ledger/1]) and its trend gate.

    [wx bench diff] is pairwise: one report against one committed
    baseline. The ledger is longitudinal: an append-only NDJSON file
    (committed at [bench/ledger.ndjson]) holding one compact digest per
    recorded report — commit, dirty flag, timestamp, run provenance, and
    per experiment the median wall time, the deterministic minor-word
    count and the derived units/sec per {!Work} kind — so drift that
    stays inside every single diff's tolerance is still visible (and
    gateable) across PRs. {!gate} judges the newest entry against the
    preceding window with the diff's own noise posture per metric: the
    wall verdict needs a median-ratio breach {e and} the latest value
    outside the window range (under the same 50ms floor), the alloc
    verdict is a bare 1% ratio (minor words are deterministic), and the
    rate verdict mirrors the wall rule on the units/sec axis. *)

val schema : string
(** ["wx-ledger/1"], carried on every NDJSON line. *)

type exp_digest = {
  x_id : string;
  x_wall_s : float;  (** median wall of the report entry *)
  x_minor_words : float;  (** NaN when the report carried no alloc block *)
  x_rates : (string * float) list;  (** units/sec per kind at median wall *)
}

type entry = {
  l_commit : string;
      (** hex commit, ["+dirty"] stripped into {!field-l_dirty}; ["unknown"]
          outside a checkout *)
  l_dirty : bool;
  l_generated : string;
  l_seed : int;
  l_quick : bool;
  l_jobs : int;
  l_repeats : int;
  l_exps : exp_digest list;
}

val digest : Report.t -> entry
(** Compress a full bench report into one ledger entry. NaN rates (zero
    or undefined median wall) are dropped at digest time. *)

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> (entry, string) result

val load : string -> (entry list, string) result
(** Read a ledger file, one entry per non-blank line, oldest first.
    [Error] names the file, line and problem on IO, parse or schema
    failures (never raises — the gate needs "malformed" as data). *)

val save : string -> entry list -> unit
(** Compact NDJSON, one line per entry, trailing newline. *)

val append : entry list -> entry -> entry list
(** Dedup-by-commit append: any existing entry with the same
    (non-["unknown"]) commit is dropped and the new entry goes to the
    end — the newest measurement of a commit wins, so re-recording at
    one commit never grows the file. *)

(** {2 Series and rendering} *)

type metric = Wall | Alloc | Rate

val metric_name : metric -> string

val series : metric -> ?kind:string -> id:string -> entry list -> float list
(** The metric's value per entry, aligned with [entries] (oldest first);
    NaN marks entries where the experiment, alloc block or rate [kind]
    is absent, so a sparkline keeps the commit axis. *)

val exp_ids : entry list -> string list
(** Every experiment id appearing anywhere in the ledger, sorted. *)

val rate_kinds : id:string -> entry list -> string list
(** Every work kind the experiment ever recorded a rate for, sorted. *)

val sparkline : float list -> string
(** Eight-level Unicode block rendering scaled to the series' own
    min..max; NaN renders as ['·'], a flat series as mid-level blocks.
    Deterministic for a fixed series. *)

(** {2 Trend gate} *)

type trend = {
  t_exp : string;
  t_metric : metric;
  t_kind : string;  (** work kind for [Rate]; [""] otherwise *)
  t_verdict : Report.verdict option;
      (** [None] when the window holds fewer than two known points
          ("insufficient history" — never a failure) *)
  t_latest : float;
  t_baseline : float;  (** median of the prior window; NaN when [None] *)
  t_ratio : float;  (** latest / baseline *)
  t_note : string;
  t_series : float list;  (** window-aligned, oldest..newest, NaN = missing *)
}

val default_window : int
(** 8 — entries considered by {!gate} (the newest is the candidate, the
    rest the baseline window). *)

val gate :
  ?tolerance:float ->
  ?min_wall_s:float ->
  ?alloc_tolerance:float ->
  ?rate_tolerance:float ->
  ?window:int ->
  entry list ->
  trend list
(** Trend verdicts over the last [window] entries, one row per
    (experiment in the newest entry) × metric, plus one per recorded
    rate kind. Wall: {!Report.Regression} iff latest/median(window)
    exceeds [1 + tolerance] {e and} latest exceeds the window max (floor
    [min_wall_s] applies as in the diff). Alloc: plain ratio against
    [alloc_tolerance], no range test — deterministic counts make the
    window median a drift detector. Rate: the wall rule mirrored on the
    units/sec axis ([1 / (1 + rate_tolerance)], latest under the window
    min), skipped while every wall in the window sits under the floor.
    Defaults come from {!Report}. *)

val regressions : trend list -> trend list
