(* Chrome trace-event ("catapult") timeline export.

   Metrics histograms answer "how slow on aggregate"; this module answers
   "when, and on which domain". While enabled it records timestamped slices
   — name + start + duration + a small track id — into per-domain buffers,
   and [to_json] renders them as the trace-event JSON that chrome://tracing
   and Perfetto load directly: one [pid], one named [tid] track per Wx_par
   worker slot (tid 0 is the calling/main domain, so span slices and the
   chunks the caller steals interleave on the same track).

   The recording discipline mirrors Metrics: a single atomic flag guards the
   hot path, each domain appends to its own buffer without taking a lock
   (registration of a fresh buffer takes the registry mutex once per
   domain), and readers merge after the workers have joined. Buffers are
   bounded: past [capacity] slices a domain drops new ones and counts the
   loss, so a runaway trace degrades instead of exhausting memory. *)

let enabled =
  Atomic.make
    (match Sys.getenv_opt "WX_TRACE" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* Complete ("X") slices carry a duration; counter ("C") samples carry a
   value series in their args and render as a stacked counter track in the
   viewer — what the GC heap track uses. *)
type phase = Complete | Counter

type slice = {
  sl_name : string;
  sl_ph : phase;
  sl_tid : int;
  sl_t0_ns : int;
  sl_dur_ns : int;
  sl_args : (string * Json.t) list;
}

(* Per-domain append-only buffer; only the owning domain writes, so the
   mutable fields need no synchronization. *)
type buffer = { mutable slices : slice array; mutable len : int; mutable dropped : int }

let capacity = 1 lsl 20

let registry_lock = Mutex.create ()
let buffers : buffer list ref = ref []

let key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { slices = [||]; len = 0; dropped = 0 } in
      Mutex.lock registry_lock;
      buffers := b :: !buffers;
      Mutex.unlock registry_lock;
      b)

(* Process epoch for the exported [ts] axis: captured once at module init so
   slices recorded by different domains share an origin. *)
let epoch_ns = Clock.now_ns ()

let push b s =
  if b.len >= capacity then b.dropped <- b.dropped + 1
  else begin
    (if b.len >= Array.length b.slices then
       let cap = max 256 (2 * Array.length b.slices) in
       let bigger = Array.make (min cap capacity) s in
       Array.blit b.slices 0 bigger 0 b.len;
       b.slices <- bigger);
    b.slices.(b.len) <- s;
    b.len <- b.len + 1
  end

let slice ?(args = []) ~tid ~name ~t0_ns ~dur_ns () =
  if Atomic.get enabled then
    push (Domain.DLS.get key)
      {
        sl_name = name;
        sl_ph = Complete;
        sl_tid = tid;
        sl_t0_ns = t0_ns;
        sl_dur_ns = max 0 dur_ns;
        sl_args = args;
      }

let counter ?(tid = 0) ~name ~t_ns series =
  if Atomic.get enabled then
    push (Domain.DLS.get key)
      {
        sl_name = name;
        sl_ph = Counter;
        sl_tid = tid;
        sl_t0_ns = t_ns;
        sl_dur_ns = 0;
        sl_args = List.map (fun (k, v) -> (k, Json.Float v)) series;
      }

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.len <- 0;
      b.dropped <- 0)
    !buffers;
  Mutex.unlock registry_lock

(* ---- export ---- *)

let merged () =
  Mutex.lock registry_lock;
  let bs = !buffers in
  Mutex.unlock registry_lock;
  let all =
    List.concat_map (fun b -> Array.to_list (Array.sub b.slices 0 b.len)) bs
  in
  let dropped = List.fold_left (fun acc b -> acc + b.dropped) 0 bs in
  (List.sort (fun a b -> compare (a.sl_t0_ns, a.sl_tid) (b.sl_t0_ns, b.sl_tid)) all, dropped)

let pid = 1

let us_of_ns ns = float_of_int (ns - epoch_ns) /. 1e3

(* ts/dur are microseconds per the trace-event spec. Counter events have
   no duration; their args ARE the sampled series. *)
let event_json s =
  match s.sl_ph with
  | Complete ->
      Json.Obj
        ([
           ("name", Json.String s.sl_name);
           ("ph", Json.String "X");
           ("ts", Json.Float (us_of_ns s.sl_t0_ns));
           ("dur", Json.Float (float_of_int s.sl_dur_ns /. 1e3));
           ("pid", Json.Int pid);
           ("tid", Json.Int s.sl_tid);
         ]
        @ match s.sl_args with [] -> [] | args -> [ ("args", Json.Obj args) ])
  | Counter ->
      Json.Obj
        [
          ("name", Json.String s.sl_name);
          ("ph", Json.String "C");
          ("ts", Json.Float (us_of_ns s.sl_t0_ns));
          ("pid", Json.Int pid);
          ("tid", Json.Int s.sl_tid);
          ("args", Json.Obj s.sl_args);
        ]

(* Metadata ("M") events give the process and each worker track a name so
   the viewer shows "main" / "worker-k" instead of bare thread ids. *)
let metadata_json ~name ~tid ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("ts", Json.Float 0.0);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let to_json () =
  let slices, dropped = merged () in
  let tids = List.sort_uniq compare (List.map (fun s -> s.sl_tid) slices) in
  let thread_names =
    List.map
      (fun tid ->
        metadata_json ~name:"thread_name" ~tid
          ~value:(if tid = 0 then "main" else Printf.sprintf "worker-%d" tid))
      tids
  in
  let events =
    (metadata_json ~name:"process_name" ~tid:0 ~value:"wx" :: thread_names)
    @ List.map event_json slices
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "wx_obs.trace_export");
            ("slices", Json.Int (List.length slices));
            ("dropped", Json.Int dropped);
          ] );
    ]

let write path =
  let doc = to_json () in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc
