(* Span-based hierarchical tracing.

   [with_ ~name f] times [f] on the monotonic clock and records the span as
   a child of the innermost live span (or as a root). Disabled-mode cost is
   a few flag loads and a direct call to [f]. Spans survive exceptions: the
   span is closed and re-raised via Fun.protect.

   When Memgc is also enabled, each span additionally attributes GC work:
   minor/promoted/major words allocated and collections run while the span
   was open (cumulative; self = total minus child rollup, like time). The
   two quick_stat reads this costs per closed span happen only with Memgc
   on — a metrics-only run reads the clock and nothing else. *)

type t = {
  name : string;
  mutable dur_ns : int;
  mutable calls : int;
  mutable minor_words : int;
  mutable promoted_words : int;
  mutable major_words : int;
  mutable gc_collections : int; (* minor + major collections while open *)
  mutable work_units : int; (* Work units credited while open (cumulative) *)
  mutable children : t list; (* newest first; reversed on read *)
}

let roots : t list ref = ref [] (* newest first *)
let stack : t list ref = ref []

let reset () =
  roots := [];
  stack := []

let find_child parent name = List.find_opt (fun c -> c.name = name) parent.children

let with_ ~name f =
  if not (Metrics.is_enabled () || Trace_export.is_enabled () || Memgc.is_enabled ()) then f ()
  else begin
    (* Re-entering the same name under the same parent accumulates into one
       node (calls + total time) instead of growing an unbounded sibling
       list — loops over a timed region stay readable. *)
    let span =
      let existing =
        match !stack with
        | parent :: _ -> find_child parent name
        | [] -> List.find_opt (fun s -> s.name = name) !roots
      in
      match existing with
      | Some s -> s
      | None ->
          let s =
            {
              name;
              dur_ns = 0;
              calls = 0;
              minor_words = 0;
              promoted_words = 0;
              major_words = 0;
              gc_collections = 0;
              work_units = 0;
              children = [];
            }
          in
          (match !stack with
          | parent :: _ -> parent.children <- s :: parent.children
          | [] -> roots := s :: !roots);
          s
    in
    stack := span :: !stack;
    let mem = Memgc.is_enabled () in
    let g0 = if mem then Memgc.read () else Memgc.zero in
    (* Work attribution rides the Metrics flag: kinds only count while the
       registry is on, and grand_total is two loads per registered kind —
       cheap at span granularity, meaningless when counts are frozen. *)
    let met = Metrics.is_enabled () in
    let w0 = if met then Work.grand_total () else 0 in
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.now_ns () - t0 in
        span.dur_ns <- span.dur_ns + dur;
        span.calls <- span.calls + 1;
        let d_minor =
          if not mem then 0
          else begin
            let g1 = Memgc.read () in
            let d_minor = g1.Memgc.minor_words - g0.Memgc.minor_words in
            span.minor_words <- span.minor_words + d_minor;
            span.promoted_words <-
              span.promoted_words + (g1.Memgc.promoted_words - g0.Memgc.promoted_words);
            span.major_words <- span.major_words + (g1.Memgc.major_words - g0.Memgc.major_words);
            span.gc_collections <-
              span.gc_collections
              + (g1.Memgc.minor_collections - g0.Memgc.minor_collections)
              + (g1.Memgc.major_collections - g0.Memgc.major_collections);
            (* One heap sample per closed span lines allocation up with the
               worker timelines in the exported trace. *)
            Trace_export.counter ~name:"gc.heap" ~t_ns:(t0 + dur)
              [
                ("minor_words", float_of_int g1.Memgc.minor_words);
                ("major_words", float_of_int g1.Memgc.major_words);
              ];
            d_minor
          end
        in
        if met then span.work_units <- span.work_units + (Work.grand_total () - w0);
        (* Spans are main-domain only (see DESIGN.md §6), so they all land
           on the caller's track, where the pool's chunk slices nest. The
           minor-words arg feeds Prof's per-span alloc attribution; the
           branch (rather than passing ~args:[] unconditionally) keeps the
           trace-off call allocation-free — even wrapping the optional
           argument would cost words that the bench alloc gate counts
           against a committed baseline. *)
        (if mem && Trace_export.is_enabled () then
           Trace_export.slice ~tid:0 ~name ~t0_ns:t0 ~dur_ns:dur
             ~args:[ ("minor_words", Json.Int d_minor) ] ()
         else Trace_export.slice ~tid:0 ~name ~t0_ns:t0 ~dur_ns:dur ());
        match !stack with s :: rest when s == span -> stack := rest | _ -> ())
      f
  end

let children s = List.rev s.children
let rollup_ns s = List.fold_left (fun acc c -> acc + c.dur_ns) 0 s.children

(* Time spent in the span itself, outside any recorded child. *)
let self_ns s = max 0 (s.dur_ns - rollup_ns s)

let rollup_minor_words s = List.fold_left (fun acc c -> acc + c.minor_words) 0 s.children
let self_minor_words s = max 0 (s.minor_words - rollup_minor_words s)

let root_spans () = List.rev !roots

let alloc_fields s =
  if s.minor_words = 0 && s.promoted_words = 0 && s.major_words = 0 && s.gc_collections = 0
  then []
  else
    [
      ("minor_words", Json.Int s.minor_words);
      ("self_minor_words", Json.Int (self_minor_words s));
      ("promoted_words", Json.Int s.promoted_words);
      ("major_words", Json.Int s.major_words);
      ("gc_collections", Json.Int s.gc_collections);
    ]

let rec to_json_one s =
  Json.Obj
    ([
       ("name", Json.String s.name);
       ("calls", Json.Int s.calls);
       ("wall_ms", Json.Float (Clock.ns_to_ms s.dur_ns));
       ("self_ms", Json.Float (Clock.ns_to_ms (self_ns s)));
     ]
    @ (if s.work_units = 0 then [] else [ ("work_units", Json.Int s.work_units) ])
    @ alloc_fields s
    @
    match children s with
    | [] -> []
    | cs -> [ ("children", Json.List (List.map to_json_one cs)) ])

let to_json () = Json.List (List.map to_json_one (root_spans ()))

let render () =
  let buf = Buffer.create 512 in
  let rec go depth s =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %8.3fms  (self %8.3fms, %d call%s)%s\n"
         (String.make (2 * depth) ' ')
         (max 1 (36 - (2 * depth)))
         s.name (Clock.ns_to_ms s.dur_ns)
         (Clock.ns_to_ms (self_ns s))
         s.calls
         (if s.calls = 1 then "" else "s")
         (if s.minor_words = 0 then ""
          else Printf.sprintf "  [%dw minor, %d gc]" s.minor_words s.gc_collections));
    List.iter (go (depth + 1)) (children s)
  in
  Buffer.add_string buf "-- spans --\n";
  List.iter (go 1) (root_spans ());
  Buffer.contents buf
