(** Span-based hierarchical tracing on the monotonic clock.

    [with_ ~name f] records wall time for [f] as a child of the innermost
    live span. Re-entering the same name under the same parent accumulates
    calls and time into one node, so loops stay readable. Live when either
    {!Metrics} or {!Trace_export} is enabled — each closed call also lands
    as a timeline slice on the main track (tid 0) of the Chrome trace —
    and costs two flag loads when both are off. *)

type t = {
  name : string;
  mutable dur_ns : int;
  mutable calls : int;
  mutable children : t list;  (** newest first; use {!children} for order *)
}

val with_ : name:string -> (unit -> 'a) -> 'a
(** Time [f] under span [name]; exception-safe. *)

val reset : unit -> unit
val root_spans : unit -> t list
val children : t -> t list

val self_ns : t -> int
(** Time inside the span but outside any recorded child (child rollup). *)

val rollup_ns : t -> int
val to_json : unit -> Json.t
val render : unit -> string
