(** Span-based hierarchical tracing on the monotonic clock.

    [with_ ~name f] records wall time for [f] as a child of the innermost
    live span. Re-entering the same name under the same parent accumulates
    calls and time into one node, so loops stay readable. Live when
    {!Metrics}, {!Trace_export} or {!Memgc} is enabled — each closed call
    also lands as a timeline slice on the main track (tid 0) of the Chrome
    trace — and costs three flag loads when all are off.

    While {!Memgc} is enabled, each span additionally attributes GC work:
    minor/promoted/major words allocated and collections run while it was
    open (cumulative, like [dur_ns]; {!self_minor_words} subtracts the
    child rollup), and each close emits a ["gc.heap"] counter sample onto
    the trace. A memgc-disabled run performs zero [Gc] reads here. *)

type t = {
  name : string;
  mutable dur_ns : int;
  mutable calls : int;
  mutable minor_words : int;  (** cumulative; 0 unless {!Memgc} was on *)
  mutable promoted_words : int;
  mutable major_words : int;
  mutable gc_collections : int;  (** minor + major collections while open *)
  mutable work_units : int;
      (** {!Work} units credited while the span was open (cumulative, like
          [dur_ns]); 0 unless {!Metrics} was on. Basis of the units/sec
          column in [wx prof --top]. *)
  mutable children : t list;  (** newest first; use {!children} for order *)
}

val with_ : name:string -> (unit -> 'a) -> 'a
(** Time [f] under span [name]; exception-safe. *)

val reset : unit -> unit
val root_spans : unit -> t list
val children : t -> t list

val self_ns : t -> int
(** Time inside the span but outside any recorded child (child rollup). *)

val rollup_ns : t -> int

val self_minor_words : t -> int
(** Minor words allocated inside the span but outside any recorded child —
    what [wx prof --alloc] ranks by. *)

val rollup_minor_words : t -> int
val to_json : unit -> Json.t
val render : unit -> string
