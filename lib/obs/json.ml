(* Minimal JSON: a value type, a renderer, and a recursive-descent parser.

   The renderer is the single place that knows how to produce valid JSON for
   the whole observability stack (NDJSON events, metric snapshots, bench
   reports); the parser exists so tests can round-trip what we emit without
   an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- rendering ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else if Float.abs x = Float.infinity then if x > 0.0 then "1e999" else "-1e999"
  else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_to_string x)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Multi-line renderer for human-facing files (bench reports). *)
let to_string_pretty v =
  let buf = Buffer.create 1024 in
  let pad d = Buffer.add_string buf (String.make (2 * d) ' ') in
  let rec go d = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            go (d + 1) x)
          xs;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            escape_to buf k;
            Buffer.add_string buf ": ";
            go (d + 1) v)
          kvs;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let k = String.length word in
  if c.pos + k <= String.length c.src && String.sub c.src c.pos k = word then begin
    c.pos <- c.pos + k;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code = int_of_string ("0x" ^ hex) in
            (* Only BMP codepoints we emit ourselves (control chars): keep it
               simple and store the raw byte for < 0x80, else a '?'. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            c.pos <- c.pos + 4
        | _ -> fail c "bad escape");
        c.pos <- c.pos + 1;
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some x -> Float x
      | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let of_string_opt s = match of_string s with v -> Some v | exception Parse_error _ -> None

(* ---- accessors (used by tests and the bench gate) ---- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
