(** Versioned bench reports ([wx-bench/2]) and the noise-aware diff between
    two of them.

    A report records, per experiment, the full list of wall-time samples
    (one per repeat) plus run provenance (git commit, hostname, jobs, seed),
    so a number in a committed baseline can always be traced back to the
    configuration that produced it. {!diff} compares two reports and only
    declares a {!Regression} when the medians moved beyond a relative
    tolerance {e and} the two sample ranges are disjoint — scheduler noise
    on either side keeps the verdict at {!Within_noise}.

    {!of_json} also accepts the legacy [wx-bench/1] schema (scalar wall
    time, no provenance), decoding it as a one-sample, one-repeat report. *)

val schema : string
(** ["wx-bench/2"]. *)

type entry = {
  id : string;
  title : string;
  claim : string;
  wall_s : float list;  (** one sample per repeat, in run order; non-empty *)
  holds : int;
  total : int;
  checks : Json.t;  (** opaque per-check rows, passed through verbatim *)
  metrics : Json.t;  (** opaque snapshot, [Null] when collection was off *)
}

type t = {
  generated : string;
  seed : int;
  quick : bool;
  jobs : int;
  repeats : int;
  provenance : (string * string) list;
  entries : entry list;
}

val median : float list -> float
(** Sample median; NaN on the empty list. *)

val min_sample : float list -> float
val max_sample : float list -> float

val capture_provenance : unit -> (string * string) list
(** Best-effort environment capture: [git_commit] (with a [+dirty] suffix
    when the tree has uncommitted changes; ["unknown"] outside a checkout),
    [hostname], [os], [ocaml], [word_size]. *)

val make :
  ?provenance:(string * string) list ->
  seed:int ->
  quick:bool ->
  jobs:int ->
  repeats:int ->
  entry list ->
  t
(** Build a report stamped with {!Clock.timestamp}; [provenance] defaults
    to {!capture_provenance}. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val load : string -> (t, string) result
(** Read and decode a report file; [Error] on IO, parse, or schema
    problems (never raises — the bench gate needs "malformed" as data). *)

val save : string -> t -> unit
(** Pretty-printed JSON, trailing newline. *)

(** {2 Diffing} *)

type verdict = Regression | Improvement | Within_noise | Added | Removed

val verdict_name : verdict -> string

type delta = {
  d_id : string;
  verdict : verdict;
  old_median : float;  (** NaN when [Added] *)
  new_median : float;  (** NaN when [Removed] *)
  ratio : float;  (** new/old medians; NaN when not comparable *)
  note : string;
}

val default_tolerance : float
(** 0.25 — a median must move 25% to count. *)

val default_min_wall_s : float
(** 0.05 — experiments where both medians sit under 50ms are always within
    noise; timer resolution dominates there. *)

val diff : ?tolerance:float -> ?min_wall_s:float -> old_:t -> new_:t -> unit -> delta list
(** One delta per experiment id in either report, in old-report order with
    new-only entries appended. Regression requires {e both} a median ratio
    above [1 + tolerance] {e and} disjoint sample ranges
    ([new min > old max]); improvement is the mirror image. *)

val regressions : delta list -> delta list

val compat_warnings : old_:t -> new_:t -> string list
(** Human-readable warnings when quick mode, job count, or seed differ —
    the wall-time comparison is then not apples-to-apples. *)
