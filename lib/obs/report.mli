(** Versioned bench reports ([wx-bench/4]) and the diff between two of
    them: a noise-aware wall-time verdict, a deterministic allocation
    verdict, and a noise-aware throughput (rate) verdict.

    A report records, per experiment, the full list of wall-time samples
    (one per repeat), an optional GC/allocation block ({!Memgc.counters}
    measured around the run) and run provenance (git commit, hostname,
    jobs, seed), so a number in a committed baseline can always be traced
    back to the configuration that produced it. {!diff} compares two
    reports and only declares a wall-time {!Regression} when the medians
    moved beyond a relative tolerance {e and} the two sample ranges are
    disjoint — scheduler noise on either side keeps the verdict at
    {!Within_noise}. The allocation verdict needs none of that machinery:
    minor-word counts are deterministic per seed/jobs, so a plain ratio
    against a 1% tolerance ({!default_alloc_tolerance}) gates far tighter
    than wall time ever could.

    Schema 4 adds the throughput axis: per-experiment [work] (units done
    per {!Work} kind — sets scored, Gray steps, draws, rounds) and a pool
    [util] block (busy fraction, per-slot busy/chunks, idle tail). Units
    are deterministic per seed/jobs but the wall denominator is not, so
    the rate verdict reuses the wall gate's median-ratio + disjoint-range
    rule per kind, with the worst kind deciding the experiment.

    {!of_json} also accepts the legacy [wx-bench/3] schema (no work/util —
    rate verdicts are skipped, see {!rate_skipped}), [wx-bench/2] (no
    alloc block — the alloc verdict is skipped, see {!alloc_skipped}) and
    [wx-bench/1] (scalar wall time, no provenance), decoding the latter as
    a one-sample, one-repeat report. *)

val schema : string
(** ["wx-bench/4"]. *)

(** Pool utilization summary, reduced from [Wx_par.Pool.util] by the bench
    runner (this module cannot depend on [Wx_par]). Fractions are
    busy-time over slot span, in [0, 1]. *)
type util_slot = { us_busy_frac : float; us_chunks : int }

type util = {
  ut_runs : int;  (** instrumented parallel pool runs in the experiment *)
  ut_seq_runs : int;
  ut_busy_frac : float;  (** total busy / total capacity across runs *)
  ut_idle_tail_ms : float;  (** mean idle tail per parallel run *)
  ut_max_idle_tail_ms : float;
  ut_slots : util_slot list;  (** indexed by worker tid (0 = caller) *)
}

type entry = {
  id : string;
  title : string;
  claim : string;
  wall_s : float list;  (** one sample per repeat, in run order; non-empty *)
  alloc : Memgc.counters option;  (** [None] when Memgc was off or pre-v3 *)
  work : (string * int) list;
      (** units done per {!Work} kind; [[]] when Metrics was off or pre-v4 *)
  util : util option;  (** [None] when Metrics was off or pre-v4 *)
  holds : int;
  total : int;
  checks : Json.t;  (** opaque per-check rows, passed through verbatim *)
  metrics : Json.t;  (** opaque snapshot, [Null] when collection was off *)
}

type t = {
  generated : string;
  seed : int;
  quick : bool;
  jobs : int;
  repeats : int;
  provenance : (string * string) list;
  entries : entry list;
}

val median : float list -> float
(** Sample median; NaN on the empty list. *)

val rates : entry -> (string * float) list
(** Units/sec per work kind against the median wall sample — what the
    report's derived [rate_per_s] field and the ledger digest record;
    NaN when the median wall is zero or undefined. *)

val min_sample : float list -> float
val max_sample : float list -> float

val capture_provenance : unit -> (string * string) list
(** Best-effort environment capture: [git_commit] (with a [+dirty] suffix
    when the tree has uncommitted changes; ["unknown"] outside a checkout),
    [hostname], [os], [ocaml], [word_size]. *)

val make :
  ?provenance:(string * string) list ->
  seed:int ->
  quick:bool ->
  jobs:int ->
  repeats:int ->
  entry list ->
  t
(** Build a report stamped with {!Clock.timestamp}; [provenance] defaults
    to {!capture_provenance}. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val load : string -> (t, string) result
(** Read and decode a report file; [Error] on IO, parse, or schema
    problems (never raises — the bench gate needs "malformed" as data). *)

val save : string -> t -> unit
(** Pretty-printed JSON, trailing newline. *)

(** {2 Diffing} *)

type verdict = Regression | Improvement | Within_noise | Added | Removed

val verdict_name : verdict -> string

type delta = {
  d_id : string;
  verdict : verdict;  (** the wall-time verdict *)
  old_median : float;  (** NaN when [Added] *)
  new_median : float;  (** NaN when [Removed] *)
  ratio : float;  (** new/old medians; NaN when not comparable *)
  note : string;
  alloc_verdict : verdict option;
      (** [None] when either side carries no alloc block (pre-v3 report or
          Memgc off), or the entry was added/removed *)
  old_minor_words : float;  (** NaN when unknown *)
  new_minor_words : float;  (** NaN when unknown *)
  alloc_ratio : float;  (** new/old minor words; NaN when not comparable *)
  alloc_note : string;
  rate_verdict : verdict option;
      (** [None] when the two sides share no work kind (pre-v4 report or
          Metrics off), or the entry was added/removed *)
  rate_ratio : float;
      (** new/old units-per-sec of the verdict-deciding kind; NaN when not
          comparable *)
  rate_note : string;  (** names the deciding kind when non-empty *)
  old_util : util option;  (** passed through for rendering util deltas *)
  new_util : util option;
}

val default_tolerance : float
(** 0.25 — a wall-time median must move 25% to count. *)

val default_min_wall_s : float
(** 0.05 — experiments where both medians sit under 50ms are always within
    noise; timer resolution dominates there. *)

val default_alloc_tolerance : float
(** 0.01 — minor words are deterministic per seed/jobs, so 1% only
    forgives genuinely tiny drifts; no floor is needed. *)

val default_rate_tolerance : float
(** 0.25 — rates inherit wall noise, so the rate gate mirrors the wall
    gate's tolerance rather than the alloc gate's strictness. *)

val diff :
  ?tolerance:float ->
  ?min_wall_s:float ->
  ?alloc_tolerance:float ->
  ?rate_tolerance:float ->
  old_:t ->
  new_:t ->
  unit ->
  delta list
(** One delta per experiment id in either report, in old-report order with
    new-only entries appended. A wall-time regression requires {e both} a
    median ratio above [1 + tolerance] {e and} disjoint sample ranges
    ([new min > old max]); improvement is the mirror image. The alloc
    verdict is a plain minor-words ratio against [1 + alloc_tolerance]
    (regression) / [1 - alloc_tolerance] (improvement), computed only when
    both sides carry an alloc block. The rate verdict turns each wall
    sample into a units/sec sample per shared work kind and applies the
    wall rule per kind (regression when the new median rate falls below
    [1 / (1 + rate_tolerance)] of the old with disjoint rate ranges, under
    the same [min_wall_s] floor); the worst kind decides. *)

val regressions : delta list -> delta list
(** Wall-time regressions only. *)

val alloc_regressions : delta list -> delta list
val rate_regressions : delta list -> delta list

val alloc_skipped : delta list -> bool
(** True when some compared pair (not added/removed) lacked an alloc block
    on at least one side — the mixed-version case a caller should warn
    about. *)

val rate_skipped : delta list -> bool
(** Same for work/rate: true when some compared pair carries work kinds on
    at least one side but shares none (one side pre-v4 or recorded with
    Metrics off). Pairs with no work on either side have nothing to skip
    and never trigger this. *)

val compat_warnings : old_:t -> new_:t -> string list
(** Human-readable warnings when quick mode, job count, or seed differ —
    the wall-time comparison is then not apples-to-apples. *)
