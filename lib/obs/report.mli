(** Versioned bench reports ([wx-bench/3]) and the diff between two of
    them: a noise-aware wall-time verdict plus a deterministic allocation
    verdict.

    A report records, per experiment, the full list of wall-time samples
    (one per repeat), an optional GC/allocation block ({!Memgc.counters}
    measured around the run) and run provenance (git commit, hostname,
    jobs, seed), so a number in a committed baseline can always be traced
    back to the configuration that produced it. {!diff} compares two
    reports and only declares a wall-time {!Regression} when the medians
    moved beyond a relative tolerance {e and} the two sample ranges are
    disjoint — scheduler noise on either side keeps the verdict at
    {!Within_noise}. The allocation verdict needs none of that machinery:
    minor-word counts are deterministic per seed/jobs, so a plain ratio
    against a 1% tolerance ({!default_alloc_tolerance}) gates far tighter
    than wall time ever could.

    {!of_json} also accepts the legacy [wx-bench/2] schema (no alloc
    block — the alloc verdict is skipped, see {!alloc_skipped}) and
    [wx-bench/1] (scalar wall time, no provenance), decoding the latter as
    a one-sample, one-repeat report. *)

val schema : string
(** ["wx-bench/3"]. *)

type entry = {
  id : string;
  title : string;
  claim : string;
  wall_s : float list;  (** one sample per repeat, in run order; non-empty *)
  alloc : Memgc.counters option;  (** [None] when Memgc was off or pre-v3 *)
  holds : int;
  total : int;
  checks : Json.t;  (** opaque per-check rows, passed through verbatim *)
  metrics : Json.t;  (** opaque snapshot, [Null] when collection was off *)
}

type t = {
  generated : string;
  seed : int;
  quick : bool;
  jobs : int;
  repeats : int;
  provenance : (string * string) list;
  entries : entry list;
}

val median : float list -> float
(** Sample median; NaN on the empty list. *)

val min_sample : float list -> float
val max_sample : float list -> float

val capture_provenance : unit -> (string * string) list
(** Best-effort environment capture: [git_commit] (with a [+dirty] suffix
    when the tree has uncommitted changes; ["unknown"] outside a checkout),
    [hostname], [os], [ocaml], [word_size]. *)

val make :
  ?provenance:(string * string) list ->
  seed:int ->
  quick:bool ->
  jobs:int ->
  repeats:int ->
  entry list ->
  t
(** Build a report stamped with {!Clock.timestamp}; [provenance] defaults
    to {!capture_provenance}. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val load : string -> (t, string) result
(** Read and decode a report file; [Error] on IO, parse, or schema
    problems (never raises — the bench gate needs "malformed" as data). *)

val save : string -> t -> unit
(** Pretty-printed JSON, trailing newline. *)

(** {2 Diffing} *)

type verdict = Regression | Improvement | Within_noise | Added | Removed

val verdict_name : verdict -> string

type delta = {
  d_id : string;
  verdict : verdict;  (** the wall-time verdict *)
  old_median : float;  (** NaN when [Added] *)
  new_median : float;  (** NaN when [Removed] *)
  ratio : float;  (** new/old medians; NaN when not comparable *)
  note : string;
  alloc_verdict : verdict option;
      (** [None] when either side carries no alloc block (pre-v3 report or
          Memgc off), or the entry was added/removed *)
  old_minor_words : float;  (** NaN when unknown *)
  new_minor_words : float;  (** NaN when unknown *)
  alloc_ratio : float;  (** new/old minor words; NaN when not comparable *)
  alloc_note : string;
}

val default_tolerance : float
(** 0.25 — a wall-time median must move 25% to count. *)

val default_min_wall_s : float
(** 0.05 — experiments where both medians sit under 50ms are always within
    noise; timer resolution dominates there. *)

val default_alloc_tolerance : float
(** 0.01 — minor words are deterministic per seed/jobs, so 1% only
    forgives genuinely tiny drifts; no floor is needed. *)

val diff :
  ?tolerance:float ->
  ?min_wall_s:float ->
  ?alloc_tolerance:float ->
  old_:t ->
  new_:t ->
  unit ->
  delta list
(** One delta per experiment id in either report, in old-report order with
    new-only entries appended. A wall-time regression requires {e both} a
    median ratio above [1 + tolerance] {e and} disjoint sample ranges
    ([new min > old max]); improvement is the mirror image. The alloc
    verdict is a plain minor-words ratio against [1 + alloc_tolerance]
    (regression) / [1 - alloc_tolerance] (improvement), computed only when
    both sides carry an alloc block. *)

val regressions : delta list -> delta list
(** Wall-time regressions only. *)

val alloc_regressions : delta list -> delta list

val alloc_skipped : delta list -> bool
(** True when some compared pair (not added/removed) lacked an alloc block
    on at least one side — the mixed-version case a caller should warn
    about. *)

val compat_warnings : old_:t -> new_:t -> string list
(** Human-readable warnings when quick mode, job count, or seed differ —
    the wall-time comparison is then not apples-to-apples. *)
