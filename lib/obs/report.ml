(* Versioned bench reports ("wx-bench/4") and the diff between two of
   them: a noise-aware wall-time verdict, a deterministic allocation
   verdict, and a noise-aware throughput (rate) verdict.

   The wx-bench/1 reports of earlier runs recorded one wall time per
   experiment and no provenance, so a number could never be traced back to
   a commit, a host, or a job count — and a single sample gives a diff no
   way to tell regression from scheduler noise. Schema 2 records the full
   sample list (one wall time per repeat) plus provenance, and the diff
   only calls "regression" when the medians moved beyond a relative
   tolerance AND the two sample ranges do not overlap — both conditions, so
   neither a noisy single sample nor a tiny absolute wobble on a fast
   experiment can fail a gate on its own.

   That gate is noise-limited by construction: a 25% tolerance and a 50ms
   floor let small real hot-path regressions slip through. Schema 3 adds a
   per-experiment "alloc" block (Memgc.counters measured around the run).
   Minor-word counts are deterministic for a fixed seed/jobs, so the alloc
   verdict compares a plain ratio against a 1% tolerance with no floor and
   no range logic — tight where the wall-time verdict must be loose.

   Wall time alone can hide a throughput loss: an experiment that does
   half the work in the same wall time passes the wall gate. Schema 4
   records the work-unit deltas (Wx_obs.Work, e.g. sets_scored /
   gray_steps / draws) each experiment performed, so the diff can compare
   units/sec per kind — wall noise divides out identically on both sides,
   which is why the rate verdict reuses the wall gate's median-ratio +
   disjoint-ranges rule rather than the alloc gate's strict one. Schema 4
   also records a "util" block (pool busy fraction, per-slot busy
   fractions and chunk counts, idle tail) — informational in the diff, and
   the evidence base for the planned work-stealing kernel.

   [of_json] still accepts wx-bench/3, /2 and /1 (work decodes as [],
   util/alloc as None, a scalar v1 wall_s becomes a one-sample list), so
   historical reports remain diffable; the rate/util and alloc verdicts
   are simply skipped against them. *)

let schema = "wx-bench/4"
let schema_v3 = "wx-bench/3"
let schema_v2 = "wx-bench/2"
let schema_v1 = "wx-bench/1"

(* Pool utilization summary, reduced from Wx_par.Pool.util by the bench
   runner (Report cannot depend on Wx_par — the dependency runs the other
   way). Fractions are busy/span in [0,1]; slots are worker tids. *)
type util_slot = { us_busy_frac : float; us_chunks : int }

type util = {
  ut_runs : int;  (* instrumented parallel pool runs in the experiment *)
  ut_seq_runs : int;
  ut_busy_frac : float;  (* total busy / total capacity across runs *)
  ut_idle_tail_ms : float;  (* mean idle tail per parallel run *)
  ut_max_idle_tail_ms : float;
  ut_slots : util_slot list;
}

type entry = {
  id : string;
  title : string;
  claim : string;
  wall_s : float list;  (* one sample per repeat, in run order; non-empty *)
  alloc : Memgc.counters option;  (* None when Memgc was off or pre-v3 *)
  work : (string * int) list;  (* units per Work kind; [] when off or pre-v4 *)
  util : util option;  (* None when Metrics was off or pre-v4 *)
  holds : int;
  total : int;
  checks : Json.t;  (* opaque per-check rows, passed through verbatim *)
  metrics : Json.t;  (* opaque snapshot, Null when collection was off *)
}

type t = {
  generated : string;
  seed : int;
  quick : bool;
  jobs : int;
  repeats : int;
  provenance : (string * string) list;
  entries : entry list;
}

(* ---- stats ---- *)

let median = function
  | [] -> Float.nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let min_sample xs = List.fold_left Float.min infinity xs
let max_sample xs = List.fold_left Float.max neg_infinity xs

(* ---- provenance ---- *)

let read_first_line cmd =
  match Unix.open_process_in cmd with
  | ic ->
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      (match status with Unix.WEXITED 0 when line <> "" -> Some line | _ -> None)
  | exception _ -> None

let git_commit () =
  match read_first_line "git rev-parse HEAD 2>/dev/null" with
  | None -> "unknown"
  | Some c -> (
      match read_first_line "git status --porcelain 2>/dev/null" with
      | Some _ -> c ^ "+dirty"
      | None -> c)

let capture_provenance () =
  [
    ("git_commit", git_commit ());
    ("hostname", (try Unix.gethostname () with _ -> "unknown"));
    ("os", Sys.os_type);
    ("ocaml", Sys.ocaml_version);
    ("word_size", string_of_int Sys.word_size);
  ]

let make ?(provenance = capture_provenance ()) ~seed ~quick ~jobs ~repeats entries =
  { generated = Clock.timestamp (); seed; quick; jobs; repeats; provenance; entries }

(* ---- JSON codec ---- *)

let util_json u =
  Json.Obj
    [
      ("runs", Json.Int u.ut_runs);
      ("seq_runs", Json.Int u.ut_seq_runs);
      ("busy_frac", Json.Float u.ut_busy_frac);
      ("idle_tail_ms", Json.Float u.ut_idle_tail_ms);
      ("max_idle_tail_ms", Json.Float u.ut_max_idle_tail_ms);
      ( "slots",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [ ("busy_frac", Json.Float s.us_busy_frac); ("chunks", Json.Int s.us_chunks) ])
             u.ut_slots) );
    ]

(* Units/sec per kind against the median wall sample — derived, for humans
   reading the file and for the ledger's digest; the diff recomputes rates
   per sample from [work]. *)
let rates e =
  let m = median e.wall_s in
  List.map
    (fun (k, n) -> (k, if m > 0.0 then float_of_int n /. m else Float.nan))
    e.work

let rate_json e = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (rates e))

let entry_json e =
  Json.Obj
    ([
      ("id", Json.String e.id);
      ("title", Json.String e.title);
      ("claim", Json.String e.claim);
      ("wall_s", Json.List (List.map (fun x -> Json.Float x) e.wall_s));
      (* Derived, for humans reading the file; [of_json] recomputes. *)
      ("wall_median_s", Json.Float (median e.wall_s));
      ("wall_min_s", Json.Float (min_sample e.wall_s));
      ("wall_max_s", Json.Float (max_sample e.wall_s));
      ("holds", Json.Int e.holds);
      ("total", Json.Int e.total);
      ("checks", e.checks);
      ("metrics", e.metrics);
    ]
    @ (match e.work with
      | [] -> []
      | w ->
          [
            ("work", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) w));
            ("rate_per_s", rate_json e);
          ])
    @ (match e.util with None -> [] | Some u -> [ ("util", util_json u) ])
    @ match e.alloc with None -> [] | Some a -> [ ("alloc", Memgc.to_json a) ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("generated", Json.String t.generated);
      ("seed", Json.Int t.seed);
      ("quick", Json.Bool t.quick);
      ("jobs", Json.Int t.jobs);
      ("repeats", Json.Int t.repeats);
      ("provenance", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.provenance));
      ("experiments", Json.List (List.map entry_json t.entries));
    ]

(* Decoding is defensive end to end: a bench gate must distinguish "slower"
   from "not a report at all", so every missing or mistyped field becomes
   an [Error] naming the field rather than an exception. *)

let field name j = match Json.member name j with Some v -> Ok v | None -> Error ("missing " ^ name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let as_string name j =
  match Json.to_string_opt j with Some s -> Ok s | None -> Error (name ^ " is not a string")

let as_int name j =
  match Json.to_int_opt j with Some i -> Ok i | None -> Error (name ^ " is not an int")

let as_bool name j =
  match Json.to_bool_opt j with Some b -> Ok b | None -> Error (name ^ " is not a bool")

let str_field name j =
  let* v = field name j in
  as_string name v

let int_field name j =
  let* v = field name j in
  as_int name v

let entry_of_json ~v1 j =
  let* id = str_field "id" j in
  let* title = str_field "title" j in
  let* claim = str_field "claim" j in
  let* wall_s =
    let* w = field "wall_s" j in
    if v1 then
      match Json.to_float_opt w with
      | Some x -> Ok [ x ]
      | None -> Error "wall_s is not a number"
    else
      match Json.to_list_opt w with
      | Some (_ :: _ as xs) ->
          let rec conv acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest -> (
                match Json.to_float_opt x with
                | Some f -> conv (f :: acc) rest
                | None -> Error "wall_s sample is not a number")
          in
          conv [] xs
      | Some [] -> Error "wall_s is empty"
      | None -> Error "wall_s is not a list"
  in
  let* holds = int_field "holds" j in
  let* total = int_field "total" j in
  let checks = Option.value ~default:(Json.List []) (Json.member "checks" j) in
  let metrics = Option.value ~default:Json.Null (Json.member "metrics" j) in
  (* Absent before v3, and optional even there (Memgc may have been off);
     a present-but-mangled block is an error, not a silent None. *)
  let* alloc =
    match Json.member "alloc" j with
    | None -> Ok None
    | Some a -> (
        match Memgc.of_json a with
        | Some c -> Ok (Some c)
        | None -> Error "alloc block is malformed")
  in
  (* Absent before v4 (and when Metrics was off): work decodes as [], util
     as None — the diff then skips the rate/util verdicts for this entry,
     mirroring the alloc compat path. *)
  let* work =
    match Json.member "work" j with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | (k, v) :: rest -> (
              match Json.to_int_opt v with
              | Some n -> conv ((k, n) :: acc) rest
              | None -> Error (Printf.sprintf "work.%s is not an int" k))
        in
        conv [] kvs
    | Some _ -> Error "work is not an object"
  in
  let* util =
    match Json.member "util" j with
    | None -> Ok None
    | Some u ->
        let* runs = int_field "runs" u in
        let* seq_runs = int_field "seq_runs" u in
        let num name =
          let* v = field name u in
          match Json.to_float_opt v with
          | Some x -> Ok x
          | None -> Error (name ^ " is not a number")
        in
        let* busy_frac = num "busy_frac" in
        let* idle_tail_ms = num "idle_tail_ms" in
        let* max_idle_tail_ms = num "max_idle_tail_ms" in
        let* slots =
          match Json.member "slots" u with
          | None -> Ok []
          | Some sl -> (
              match Json.to_list_opt sl with
              | None -> Error "util.slots is not a list"
              | Some xs ->
                  let rec conv acc = function
                    | [] -> Ok (List.rev acc)
                    | s :: rest -> (
                        match
                          ( Option.bind (Json.member "busy_frac" s) Json.to_float_opt,
                            Option.bind (Json.member "chunks" s) Json.to_int_opt )
                        with
                        | Some f, Some c ->
                            conv ({ us_busy_frac = f; us_chunks = c } :: acc) rest
                        | _ -> Error "util slot is malformed")
                  in
                  conv [] xs)
        in
        Ok
          (Some
             {
               ut_runs = runs;
               ut_seq_runs = seq_runs;
               ut_busy_frac = busy_frac;
               ut_idle_tail_ms = idle_tail_ms;
               ut_max_idle_tail_ms = max_idle_tail_ms;
               ut_slots = slots;
             })
  in
  Ok { id; title; claim; wall_s; alloc; work; util; holds; total; checks; metrics }

let of_json j =
  let* s = str_field "schema" j in
  let* v1 =
    if s = schema || s = schema_v3 || s = schema_v2 then Ok false
    else if s = schema_v1 then Ok true
    else
      Error
        (Printf.sprintf "unsupported schema %S (want %s, %s, %s or %s)" s schema schema_v3
           schema_v2 schema_v1)
  in
  let* generated = str_field "generated" j in
  let* seed = int_field "seed" j in
  let* quick =
    let* q = field "quick" j in
    as_bool "quick" q
  in
  let* jobs = int_field "jobs" j in
  let* repeats = if v1 then Ok 1 else int_field "repeats" j in
  let provenance =
    match Json.member "provenance" j with
    | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_string_opt v)) kvs
    | _ -> []
  in
  let* entries =
    let* exps = field "experiments" j in
    match Json.to_list_opt exps with
    | None -> Error "experiments is not a list"
    | Some xs ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest -> (
              match entry_of_json ~v1 x with
              | Ok e -> conv (e :: acc) rest
              | Error m -> Error ("experiment entry: " ^ m))
        in
        conv [] xs
  in
  Ok { generated; seed; quick; jobs; repeats; provenance; entries }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | raw -> (
      match Json.of_string raw with
      | exception Json.Parse_error m -> Error (Printf.sprintf "%s: %s" path m)
      | j -> ( match of_json j with Ok t -> Ok t | Error m -> Error (Printf.sprintf "%s: %s" path m)))

let save path t =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  output_char oc '\n';
  close_out oc

(* ---- diff ---- *)

type verdict = Regression | Improvement | Within_noise | Added | Removed

let verdict_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Within_noise -> "within noise"
  | Added -> "added"
  | Removed -> "removed"

type delta = {
  d_id : string;
  verdict : verdict;
  old_median : float;  (* nan when [Added] *)
  new_median : float;  (* nan when [Removed] *)
  ratio : float;  (* new/old medians; nan when not comparable *)
  note : string;
  alloc_verdict : verdict option;  (* None when either side has no alloc *)
  old_minor_words : float;  (* nan when unknown *)
  new_minor_words : float;  (* nan when unknown *)
  alloc_ratio : float;  (* new/old minor words; nan when not comparable *)
  alloc_note : string;
  rate_verdict : verdict option;  (* None when either side has no work *)
  rate_ratio : float;  (* new/old units-per-sec of the worst kind; nan *)
  rate_note : string;
  old_util : util option;  (* passed through for rendering deltas *)
  new_util : util option;
}

let default_tolerance = 0.25
let default_min_wall_s = 0.05

(* Rates inherit wall noise (units are deterministic, the denominator is
   not), so the rate gate reuses the wall gate's posture: same default
   tolerance, same disjoint-ranges requirement, same floor. *)
let default_rate_tolerance = 0.25

(* Minor-word counts are deterministic per seed/jobs (DESIGN.md §8), so
   1% is not a noise allowance — it only forgives genuinely tiny drifts
   (an extra closure on a cold path) while catching any real hot-path
   change, with no floor and no range logic. *)
let default_alloc_tolerance = 0.01

let minor_words_of = function
  | Some (a : Memgc.counters) -> float_of_int a.Memgc.minor_words
  | None -> Float.nan

(* Rate verdict for one work kind: per-sample units/sec on each side
   (units are per-experiment constants, so every wall sample yields a rate
   sample), then the wall gate's rule on the rate axis — median ratio
   beyond tolerance AND disjoint sample ranges, under the same wall floor.
   Regression means the NEW side is slower: ratio < 1/(1+tol). *)
let rate_verdict_one ~tolerance ~min_wall_s ~ou ~nu oe ne =
  let rates units samples = List.map (fun w -> float_of_int units /. w) samples in
  let or_ = rates ou oe.wall_s and nr = rates nu ne.wall_s in
  let om = median or_ and nm = median nr in
  let ratio = nm /. om in
  if median oe.wall_s < min_wall_s && median ne.wall_s < min_wall_s then
    (Within_noise, ratio, Printf.sprintf "both under %.0fms floor" (1e3 *. min_wall_s))
  else if ratio < 1.0 /. (1.0 +. tolerance) && max_sample nr < min_sample or_ then
    ( Regression,
      ratio,
      Printf.sprintf "%.0f%% fewer units/s and ranges disjoint (%.3g..%.3g vs %.3g..%.3g)"
        (100.0 *. (1.0 -. ratio))
        (min_sample or_) (max_sample or_) (min_sample nr) (max_sample nr) )
  else if ratio > 1.0 +. tolerance && min_sample nr > max_sample or_ then
    (Improvement, ratio, Printf.sprintf "+%.0f%% units/s and ranges disjoint" (100.0 *. (ratio -. 1.0)))
  else (Within_noise, ratio, "")

(* Across kinds the worst verdict wins: any regressed kind regresses the
   experiment (doing 30% fewer sets/sec is not excused by drawing samples
   faster); absent regressions, any improved kind reports improvement. *)
let rate_verdict ~tolerance ~min_wall_s oe ne =
  let common =
    List.filter_map
      (fun (k, ou) ->
        match List.assoc_opt k ne.work with Some nu -> Some (k, ou, nu) | None -> None)
      oe.work
  in
  match common with
  (* No shared kinds. The note distinguishes "nothing to measure on either
     side" (a work-less experiment: not a skip) from "one side carries
     kinds the other lacks" (a v3-or-older side, or Metrics off during one
     recording: a genuine skip worth warning about). The note is only
     rendered next to a Some verdict, so it doubles as this flag for free. *)
  | [] -> (None, Float.nan, if oe.work = [] && ne.work = [] then "" else "no common work kinds")
  | _ ->
      let judged =
        List.map
          (fun (k, ou, nu) ->
            let v, r, note = rate_verdict_one ~tolerance ~min_wall_s ~ou ~nu oe ne in
            (k, v, r, note))
          common
      in
      let pick v = List.find_opt (fun (_, v', _, _) -> v' = v) judged in
      let k, v, r, note =
        match pick Regression with
        | Some x -> x
        | None -> (
            match pick Improvement with
            | Some x -> x
            | None -> List.hd judged)
      in
      (Some v, r, if note = "" then "" else Printf.sprintf "%s %s" k note)

let diff ?(tolerance = default_tolerance) ?(min_wall_s = default_min_wall_s)
    ?(alloc_tolerance = default_alloc_tolerance) ?(rate_tolerance = default_rate_tolerance)
    ~old_ ~new_ () =
  let find t id = List.find_opt (fun e -> e.id = id) t.entries in
  let compare_one oe ne =
    let om = median oe.wall_s and nm = median ne.wall_s in
    let ratio = nm /. om in
    let checks_note =
      if (ne.holds, ne.total) <> (oe.holds, oe.total) then
        Printf.sprintf " checks %d/%d -> %d/%d" oe.holds oe.total ne.holds ne.total
      else ""
    in
    let verdict, note =
      if om < min_wall_s && nm < min_wall_s then
        (Within_noise, Printf.sprintf "both under %.0fms floor" (1e3 *. min_wall_s))
      else if ratio > 1.0 +. tolerance && min_sample ne.wall_s > max_sample oe.wall_s then
        ( Regression,
          Printf.sprintf "+%.0f%% and ranges disjoint (%.3fs..%.3fs vs %.3fs..%.3fs)"
            (100.0 *. (ratio -. 1.0))
            (min_sample oe.wall_s) (max_sample oe.wall_s) (min_sample ne.wall_s)
            (max_sample ne.wall_s) )
      else if ratio < 1.0 -. tolerance && max_sample ne.wall_s < min_sample oe.wall_s then
        (Improvement, Printf.sprintf "-%.0f%% and ranges disjoint" (100.0 *. (1.0 -. ratio)))
      else (Within_noise, "")
    in
    let alloc_verdict, old_mw, new_mw, alloc_ratio, alloc_note =
      match (oe.alloc, ne.alloc) with
      | Some oa, Some na ->
          let ow = float_of_int oa.Memgc.minor_words
          and nw = float_of_int na.Memgc.minor_words in
          let r = nw /. ow in
          if oa.Memgc.minor_words = 0 then
            if na.Memgc.minor_words = 0 then (Some Within_noise, ow, nw, 1.0, "")
            else (Some Regression, ow, nw, Float.infinity, "old side recorded zero words")
          else if r > 1.0 +. alloc_tolerance then
            (Some Regression, ow, nw, r,
             Printf.sprintf "minor words +%.2f%%" (100.0 *. (r -. 1.0)))
          else if r < 1.0 -. alloc_tolerance then
            (Some Improvement, ow, nw, r,
             Printf.sprintf "minor words -%.2f%%" (100.0 *. (1.0 -. r)))
          else (Some Within_noise, ow, nw, r, "")
      | _ -> (None, minor_words_of oe.alloc, minor_words_of ne.alloc, Float.nan, "")
    in
    let rate_verdict, rate_ratio, rate_note =
      rate_verdict ~tolerance:rate_tolerance ~min_wall_s oe ne
    in
    {
      d_id = oe.id;
      verdict;
      old_median = om;
      new_median = nm;
      ratio;
      note = note ^ checks_note;
      alloc_verdict;
      old_minor_words = old_mw;
      new_minor_words = new_mw;
      alloc_ratio;
      alloc_note;
      rate_verdict;
      rate_ratio;
      rate_note;
      old_util = oe.util;
      new_util = ne.util;
    }
  in
  let from_old =
    List.map
      (fun oe ->
        match find new_ oe.id with
        | Some ne -> compare_one oe ne
        | None ->
            {
              d_id = oe.id;
              verdict = Removed;
              old_median = median oe.wall_s;
              new_median = Float.nan;
              ratio = Float.nan;
              note = "";
              alloc_verdict = None;
              old_minor_words = minor_words_of oe.alloc;
              new_minor_words = Float.nan;
              alloc_ratio = Float.nan;
              alloc_note = "";
              rate_verdict = None;
              rate_ratio = Float.nan;
              rate_note = "";
              old_util = oe.util;
              new_util = None;
            })
      old_.entries
  in
  let added =
    List.filter_map
      (fun ne ->
        if find old_ ne.id = None then
          Some
            {
              d_id = ne.id;
              verdict = Added;
              old_median = Float.nan;
              new_median = median ne.wall_s;
              ratio = Float.nan;
              note = "";
              alloc_verdict = None;
              old_minor_words = Float.nan;
              new_minor_words = minor_words_of ne.alloc;
              alloc_ratio = Float.nan;
              alloc_note = "";
              rate_verdict = None;
              rate_ratio = Float.nan;
              rate_note = "";
              old_util = None;
              new_util = ne.util;
            }
        else None)
      new_.entries
  in
  from_old @ added

let regressions deltas = List.filter (fun d -> d.verdict = Regression) deltas
let alloc_regressions deltas = List.filter (fun d -> d.alloc_verdict = Some Regression) deltas
let rate_regressions deltas = List.filter (fun d -> d.rate_verdict = Some Regression) deltas

(* The mixed-version case (v2 baseline vs v3 report, or Memgc off on one
   side): some compared pair has alloc on neither or only one side, so the
   alloc verdict was skipped there. Added/removed entries don't count —
   there is nothing to compare. *)
let alloc_skipped deltas =
  List.exists
    (fun d ->
      d.alloc_verdict = None && d.verdict <> Added && d.verdict <> Removed)
    deltas

(* Same shape for rate, with one refinement: a v3-or-older side decodes
   with work = [], so every compared pair loses its rate verdict and the
   diff must say so instead of quietly printing a clean gate — but an
   experiment that counts no work on either side has nothing to skip, so
   an all-v4 diff over such entries stays warning-free. *)
let rate_skipped deltas =
  List.exists
    (fun d ->
      d.rate_verdict = None && d.rate_note <> "" && d.verdict <> Added && d.verdict <> Removed)
    deltas

(* Configuration mismatches don't fail a diff, but a wall-time comparison
   across them is not apples-to-apples, so surface them loudly. *)
let compat_warnings ~old_ ~new_ =
  let warn cond msg acc = if cond then msg :: acc else acc in
  []
  |> warn (old_.quick <> new_.quick)
       (Printf.sprintf "quick mode differs (old %b, new %b)" old_.quick new_.quick)
  |> warn (old_.jobs <> new_.jobs)
       (Printf.sprintf "job counts differ (old %d, new %d)" old_.jobs new_.jobs)
  |> warn (old_.seed <> new_.seed)
       (Printf.sprintf "seeds differ (old %d, new %d)" old_.seed new_.seed)
  |> List.rev
