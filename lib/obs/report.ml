(* Versioned bench reports ("wx-bench/3") and the diff between two of
   them: a noise-aware wall-time verdict plus a deterministic allocation
   verdict.

   The wx-bench/1 reports of earlier runs recorded one wall time per
   experiment and no provenance, so a number could never be traced back to
   a commit, a host, or a job count — and a single sample gives a diff no
   way to tell regression from scheduler noise. Schema 2 records the full
   sample list (one wall time per repeat) plus provenance, and the diff
   only calls "regression" when the medians moved beyond a relative
   tolerance AND the two sample ranges do not overlap — both conditions, so
   neither a noisy single sample nor a tiny absolute wobble on a fast
   experiment can fail a gate on its own.

   That gate is noise-limited by construction: a 25% tolerance and a 50ms
   floor let small real hot-path regressions slip through. Schema 3 adds a
   per-experiment "alloc" block (Memgc.counters measured around the run).
   Minor-word counts are deterministic for a fixed seed/jobs, so the alloc
   verdict compares a plain ratio against a 1% tolerance with no floor and
   no range logic — tight where the wall-time verdict must be loose.

   [of_json] still accepts wx-bench/2 and /1 (alloc decodes as None, a
   scalar v1 wall_s becomes a one-sample list), so historical reports
   remain diffable; the alloc verdict is simply skipped against them. *)

let schema = "wx-bench/3"
let schema_v2 = "wx-bench/2"
let schema_v1 = "wx-bench/1"

type entry = {
  id : string;
  title : string;
  claim : string;
  wall_s : float list;  (* one sample per repeat, in run order; non-empty *)
  alloc : Memgc.counters option;  (* None when Memgc was off or pre-v3 *)
  holds : int;
  total : int;
  checks : Json.t;  (* opaque per-check rows, passed through verbatim *)
  metrics : Json.t;  (* opaque snapshot, Null when collection was off *)
}

type t = {
  generated : string;
  seed : int;
  quick : bool;
  jobs : int;
  repeats : int;
  provenance : (string * string) list;
  entries : entry list;
}

(* ---- stats ---- *)

let median = function
  | [] -> Float.nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let min_sample xs = List.fold_left Float.min infinity xs
let max_sample xs = List.fold_left Float.max neg_infinity xs

(* ---- provenance ---- *)

let read_first_line cmd =
  match Unix.open_process_in cmd with
  | ic ->
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      (match status with Unix.WEXITED 0 when line <> "" -> Some line | _ -> None)
  | exception _ -> None

let git_commit () =
  match read_first_line "git rev-parse HEAD 2>/dev/null" with
  | None -> "unknown"
  | Some c -> (
      match read_first_line "git status --porcelain 2>/dev/null" with
      | Some _ -> c ^ "+dirty"
      | None -> c)

let capture_provenance () =
  [
    ("git_commit", git_commit ());
    ("hostname", (try Unix.gethostname () with _ -> "unknown"));
    ("os", Sys.os_type);
    ("ocaml", Sys.ocaml_version);
    ("word_size", string_of_int Sys.word_size);
  ]

let make ?(provenance = capture_provenance ()) ~seed ~quick ~jobs ~repeats entries =
  { generated = Clock.timestamp (); seed; quick; jobs; repeats; provenance; entries }

(* ---- JSON codec ---- *)

let entry_json e =
  Json.Obj
    ([
      ("id", Json.String e.id);
      ("title", Json.String e.title);
      ("claim", Json.String e.claim);
      ("wall_s", Json.List (List.map (fun x -> Json.Float x) e.wall_s));
      (* Derived, for humans reading the file; [of_json] recomputes. *)
      ("wall_median_s", Json.Float (median e.wall_s));
      ("wall_min_s", Json.Float (min_sample e.wall_s));
      ("wall_max_s", Json.Float (max_sample e.wall_s));
      ("holds", Json.Int e.holds);
      ("total", Json.Int e.total);
      ("checks", e.checks);
      ("metrics", e.metrics);
    ]
    @ match e.alloc with None -> [] | Some a -> [ ("alloc", Memgc.to_json a) ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("generated", Json.String t.generated);
      ("seed", Json.Int t.seed);
      ("quick", Json.Bool t.quick);
      ("jobs", Json.Int t.jobs);
      ("repeats", Json.Int t.repeats);
      ("provenance", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.provenance));
      ("experiments", Json.List (List.map entry_json t.entries));
    ]

(* Decoding is defensive end to end: a bench gate must distinguish "slower"
   from "not a report at all", so every missing or mistyped field becomes
   an [Error] naming the field rather than an exception. *)

let field name j = match Json.member name j with Some v -> Ok v | None -> Error ("missing " ^ name)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let as_string name j =
  match Json.to_string_opt j with Some s -> Ok s | None -> Error (name ^ " is not a string")

let as_int name j =
  match Json.to_int_opt j with Some i -> Ok i | None -> Error (name ^ " is not an int")

let as_bool name j =
  match Json.to_bool_opt j with Some b -> Ok b | None -> Error (name ^ " is not a bool")

let str_field name j =
  let* v = field name j in
  as_string name v

let int_field name j =
  let* v = field name j in
  as_int name v

let entry_of_json ~v1 j =
  let* id = str_field "id" j in
  let* title = str_field "title" j in
  let* claim = str_field "claim" j in
  let* wall_s =
    let* w = field "wall_s" j in
    if v1 then
      match Json.to_float_opt w with
      | Some x -> Ok [ x ]
      | None -> Error "wall_s is not a number"
    else
      match Json.to_list_opt w with
      | Some (_ :: _ as xs) ->
          let rec conv acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest -> (
                match Json.to_float_opt x with
                | Some f -> conv (f :: acc) rest
                | None -> Error "wall_s sample is not a number")
          in
          conv [] xs
      | Some [] -> Error "wall_s is empty"
      | None -> Error "wall_s is not a list"
  in
  let* holds = int_field "holds" j in
  let* total = int_field "total" j in
  let checks = Option.value ~default:(Json.List []) (Json.member "checks" j) in
  let metrics = Option.value ~default:Json.Null (Json.member "metrics" j) in
  (* Absent before v3, and optional even there (Memgc may have been off);
     a present-but-mangled block is an error, not a silent None. *)
  let* alloc =
    match Json.member "alloc" j with
    | None -> Ok None
    | Some a -> (
        match Memgc.of_json a with
        | Some c -> Ok (Some c)
        | None -> Error "alloc block is malformed")
  in
  Ok { id; title; claim; wall_s; alloc; holds; total; checks; metrics }

let of_json j =
  let* s = str_field "schema" j in
  let* v1 =
    if s = schema || s = schema_v2 then Ok false
    else if s = schema_v1 then Ok true
    else
      Error
        (Printf.sprintf "unsupported schema %S (want %s, %s or %s)" s schema schema_v2 schema_v1)
  in
  let* generated = str_field "generated" j in
  let* seed = int_field "seed" j in
  let* quick =
    let* q = field "quick" j in
    as_bool "quick" q
  in
  let* jobs = int_field "jobs" j in
  let* repeats = if v1 then Ok 1 else int_field "repeats" j in
  let provenance =
    match Json.member "provenance" j with
    | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_string_opt v)) kvs
    | _ -> []
  in
  let* entries =
    let* exps = field "experiments" j in
    match Json.to_list_opt exps with
    | None -> Error "experiments is not a list"
    | Some xs ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest -> (
              match entry_of_json ~v1 x with
              | Ok e -> conv (e :: acc) rest
              | Error m -> Error ("experiment entry: " ^ m))
        in
        conv [] xs
  in
  Ok { generated; seed; quick; jobs; repeats; provenance; entries }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | raw -> (
      match Json.of_string raw with
      | exception Json.Parse_error m -> Error (Printf.sprintf "%s: %s" path m)
      | j -> ( match of_json j with Ok t -> Ok t | Error m -> Error (Printf.sprintf "%s: %s" path m)))

let save path t =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  output_char oc '\n';
  close_out oc

(* ---- diff ---- *)

type verdict = Regression | Improvement | Within_noise | Added | Removed

let verdict_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Within_noise -> "within noise"
  | Added -> "added"
  | Removed -> "removed"

type delta = {
  d_id : string;
  verdict : verdict;
  old_median : float;  (* nan when [Added] *)
  new_median : float;  (* nan when [Removed] *)
  ratio : float;  (* new/old medians; nan when not comparable *)
  note : string;
  alloc_verdict : verdict option;  (* None when either side has no alloc *)
  old_minor_words : float;  (* nan when unknown *)
  new_minor_words : float;  (* nan when unknown *)
  alloc_ratio : float;  (* new/old minor words; nan when not comparable *)
  alloc_note : string;
}

let default_tolerance = 0.25
let default_min_wall_s = 0.05

(* Minor-word counts are deterministic per seed/jobs (DESIGN.md §8), so
   1% is not a noise allowance — it only forgives genuinely tiny drifts
   (an extra closure on a cold path) while catching any real hot-path
   change, with no floor and no range logic. *)
let default_alloc_tolerance = 0.01

let minor_words_of = function
  | Some (a : Memgc.counters) -> float_of_int a.Memgc.minor_words
  | None -> Float.nan

let diff ?(tolerance = default_tolerance) ?(min_wall_s = default_min_wall_s)
    ?(alloc_tolerance = default_alloc_tolerance) ~old_ ~new_ () =
  let find t id = List.find_opt (fun e -> e.id = id) t.entries in
  let compare_one oe ne =
    let om = median oe.wall_s and nm = median ne.wall_s in
    let ratio = nm /. om in
    let checks_note =
      if (ne.holds, ne.total) <> (oe.holds, oe.total) then
        Printf.sprintf " checks %d/%d -> %d/%d" oe.holds oe.total ne.holds ne.total
      else ""
    in
    let verdict, note =
      if om < min_wall_s && nm < min_wall_s then
        (Within_noise, Printf.sprintf "both under %.0fms floor" (1e3 *. min_wall_s))
      else if ratio > 1.0 +. tolerance && min_sample ne.wall_s > max_sample oe.wall_s then
        ( Regression,
          Printf.sprintf "+%.0f%% and ranges disjoint (%.3fs..%.3fs vs %.3fs..%.3fs)"
            (100.0 *. (ratio -. 1.0))
            (min_sample oe.wall_s) (max_sample oe.wall_s) (min_sample ne.wall_s)
            (max_sample ne.wall_s) )
      else if ratio < 1.0 -. tolerance && max_sample ne.wall_s < min_sample oe.wall_s then
        (Improvement, Printf.sprintf "-%.0f%% and ranges disjoint" (100.0 *. (1.0 -. ratio)))
      else (Within_noise, "")
    in
    let alloc_verdict, old_mw, new_mw, alloc_ratio, alloc_note =
      match (oe.alloc, ne.alloc) with
      | Some oa, Some na ->
          let ow = float_of_int oa.Memgc.minor_words
          and nw = float_of_int na.Memgc.minor_words in
          let r = nw /. ow in
          if oa.Memgc.minor_words = 0 then
            if na.Memgc.minor_words = 0 then (Some Within_noise, ow, nw, 1.0, "")
            else (Some Regression, ow, nw, Float.infinity, "old side recorded zero words")
          else if r > 1.0 +. alloc_tolerance then
            (Some Regression, ow, nw, r,
             Printf.sprintf "minor words +%.2f%%" (100.0 *. (r -. 1.0)))
          else if r < 1.0 -. alloc_tolerance then
            (Some Improvement, ow, nw, r,
             Printf.sprintf "minor words -%.2f%%" (100.0 *. (1.0 -. r)))
          else (Some Within_noise, ow, nw, r, "")
      | _ -> (None, minor_words_of oe.alloc, minor_words_of ne.alloc, Float.nan, "")
    in
    {
      d_id = oe.id;
      verdict;
      old_median = om;
      new_median = nm;
      ratio;
      note = note ^ checks_note;
      alloc_verdict;
      old_minor_words = old_mw;
      new_minor_words = new_mw;
      alloc_ratio;
      alloc_note;
    }
  in
  let from_old =
    List.map
      (fun oe ->
        match find new_ oe.id with
        | Some ne -> compare_one oe ne
        | None ->
            {
              d_id = oe.id;
              verdict = Removed;
              old_median = median oe.wall_s;
              new_median = Float.nan;
              ratio = Float.nan;
              note = "";
              alloc_verdict = None;
              old_minor_words = minor_words_of oe.alloc;
              new_minor_words = Float.nan;
              alloc_ratio = Float.nan;
              alloc_note = "";
            })
      old_.entries
  in
  let added =
    List.filter_map
      (fun ne ->
        if find old_ ne.id = None then
          Some
            {
              d_id = ne.id;
              verdict = Added;
              old_median = Float.nan;
              new_median = median ne.wall_s;
              ratio = Float.nan;
              note = "";
              alloc_verdict = None;
              old_minor_words = Float.nan;
              new_minor_words = minor_words_of ne.alloc;
              alloc_ratio = Float.nan;
              alloc_note = "";
            }
        else None)
      new_.entries
  in
  from_old @ added

let regressions deltas = List.filter (fun d -> d.verdict = Regression) deltas
let alloc_regressions deltas = List.filter (fun d -> d.alloc_verdict = Some Regression) deltas

(* The mixed-version case (v2 baseline vs v3 report, or Memgc off on one
   side): some compared pair has alloc on neither or only one side, so the
   alloc verdict was skipped there. Added/removed entries don't count —
   there is nothing to compare. *)
let alloc_skipped deltas =
  List.exists
    (fun d ->
      d.alloc_verdict = None && d.verdict <> Added && d.verdict <> Removed)
    deltas

(* Configuration mismatches don't fail a diff, but a wall-time comparison
   across them is not apples-to-apples, so surface them loudly. *)
let compat_warnings ~old_ ~new_ =
  let warn cond msg acc = if cond then msg :: acc else acc in
  []
  |> warn (old_.quick <> new_.quick)
       (Printf.sprintf "quick mode differs (old %b, new %b)" old_.quick new_.quick)
  |> warn (old_.jobs <> new_.jobs)
       (Printf.sprintf "job counts differ (old %d, new %d)" old_.jobs new_.jobs)
  |> warn (old_.seed <> new_.seed)
       (Printf.sprintf "seeds differ (old %d, new %d)" old_.seed new_.seed)
  |> List.rev
