(* Perf-trajectory ledger ("wx-ledger/1") and its trend gate.

   `wx bench diff` answers "did THIS change regress against ONE committed
   baseline" — a pairwise question. Nothing so far answers the
   longitudinal one: has e2 been getting 3% slower per PR for the last
   two months? Each PR's diff stays inside its noise tolerance while the
   sum walks out of it. The ledger is the instrument for that: an
   append-only NDJSON file (committed at bench/ledger.ndjson) where each
   line is a compact digest of one wx-bench report — commit, dirty flag,
   timestamp, run provenance, and per experiment the median wall, the
   deterministic minor-word count, and the derived units/sec per work
   kind. Digests, not reports: a report is tens of KB of samples, checks
   and metrics snapshots; the ledger keeps only what a trend can be
   computed from, so committing one line per PR stays cheap forever.

   Dedup is by commit: re-appending a digest whose (non-"unknown") commit
   already appears replaces the old entry and moves it to the end — the
   newest measurement of a commit wins, and iterating locally on a dirty
   tree does not grow the file. "unknown" commits (outside a checkout)
   always append; there is nothing to key them on.

   The trend gate reuses the diff's noise posture per metric, with the
   newest entry as the candidate and the preceding window as the
   baseline sample set:
   - wall: regression iff latest/median(window) > 1 + tolerance AND the
     latest value lies outside the window's range (latest > max) — the
     diff's median-ratio + disjoint-range rule with the window playing
     the old report's sample list; the 50ms floor applies unchanged.
   - alloc: minor words are deterministic per seed/jobs, so the ratio
     against the window median gates alone at 1% with no range test —
     which is exactly what catches slow drift: per-PR steps under 1%
     accumulate against the window median until the gate fires.
   - rate: units/sec inherit wall noise through the denominator, so the
     rule mirrors wall on the rate axis (regression iff the latest rate
     falls below 1/(1+tolerance) of the window median AND under the
     window minimum), skipped while walls sit under the floor. *)

let schema = "wx-ledger/1"

type exp_digest = {
  x_id : string;
  x_wall_s : float;  (* median wall of the report entry *)
  x_minor_words : float;  (* nan when the report carried no alloc block *)
  x_rates : (string * float) list;  (* units/sec per kind at median wall *)
}

type entry = {
  l_commit : string;  (* hex, "+dirty" stripped; "unknown" outside a checkout *)
  l_dirty : bool;
  l_generated : string;
  l_seed : int;
  l_quick : bool;
  l_jobs : int;
  l_repeats : int;
  l_exps : exp_digest list;
}

(* ---- digest ---- *)

let split_dirty commit =
  let suffix = "+dirty" in
  let n = String.length commit and k = String.length suffix in
  if n >= k && String.sub commit (n - k) k = suffix then (String.sub commit 0 (n - k), true)
  else (commit, false)

let digest (r : Report.t) =
  let commit, dirty =
    match List.assoc_opt "git_commit" r.Report.provenance with
    | Some c -> split_dirty c
    | None -> ("unknown", false)
  in
  let exps =
    List.map
      (fun (e : Report.entry) ->
        {
          x_id = e.Report.id;
          x_wall_s = Report.median e.Report.wall_s;
          x_minor_words =
            (match e.Report.alloc with
            | Some a -> float_of_int a.Memgc.minor_words
            | None -> Float.nan);
          (* NaN rates (zero/NaN median wall) would decode as null and be
             useless to trend over; drop them at digest time. *)
          x_rates = List.filter (fun (_, v) -> not (Float.is_nan v)) (Report.rates e);
        })
      r.Report.entries
  in
  {
    l_commit = commit;
    l_dirty = dirty;
    l_generated = r.Report.generated;
    l_seed = r.Report.seed;
    l_quick = r.Report.quick;
    l_jobs = r.Report.jobs;
    l_repeats = r.Report.repeats;
    l_exps = exps;
  }

(* ---- codec ---- *)

(* Every line carries the schema marker: ledger files are append-only and
   long-lived, so a future wx-ledger/2 must be detectable per line, not
   per file. *)
let exp_json x =
  Json.Obj
    ([ ("id", Json.String x.x_id); ("wall_s", Json.Float x.x_wall_s) ]
    @ (if Float.is_nan x.x_minor_words then []
       else [ ("minor_words", Json.Float x.x_minor_words) ])
    @
    match x.x_rates with
    | [] -> []
    | rs -> [ ("rate_per_s", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) rs)) ])

let entry_to_json e =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("commit", Json.String e.l_commit);
      ("dirty", Json.Bool e.l_dirty);
      ("generated", Json.String e.l_generated);
      ("seed", Json.Int e.l_seed);
      ("quick", Json.Bool e.l_quick);
      ("jobs", Json.Int e.l_jobs);
      ("repeats", Json.Int e.l_repeats);
      ("experiments", Json.List (List.map exp_json e.l_exps));
    ]

(* Decoding is defensive like Report's: a gate must distinguish "slower"
   from "not a ledger", so malformed input becomes [Error] naming the
   field, never an exception. *)

let field name j = match Json.member name j with Some v -> Ok v | None -> Error ("missing " ^ name)
let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_field name j =
  let* v = field name j in
  match Json.to_string_opt v with Some s -> Ok s | None -> Error (name ^ " is not a string")

let int_field name j =
  let* v = field name j in
  match Json.to_int_opt v with Some i -> Ok i | None -> Error (name ^ " is not an int")

let bool_field name j =
  let* v = field name j in
  match Json.to_bool_opt v with Some b -> Ok b | None -> Error (name ^ " is not a bool")

let float_field name j =
  let* v = field name j in
  match Json.to_float_opt v with Some x -> Ok x | None -> Error (name ^ " is not a number")

let exp_of_json j =
  let* id = str_field "id" j in
  let* wall_s = float_field "wall_s" j in
  let* minor_words =
    match Json.member "minor_words" j with
    | None -> Ok Float.nan
    | Some v -> (
        match Json.to_float_opt v with
        | Some x -> Ok x
        | None -> Error "minor_words is not a number")
  in
  let* rates =
    match Json.member "rate_per_s" j with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | (k, v) :: rest -> (
              match Json.to_float_opt v with
              | Some x -> conv ((k, x) :: acc) rest
              | None -> Error (Printf.sprintf "rate_per_s.%s is not a number" k))
        in
        conv [] kvs
    | Some _ -> Error "rate_per_s is not an object"
  in
  Ok { x_id = id; x_wall_s = wall_s; x_minor_words = minor_words; x_rates = rates }

let entry_of_json j =
  let* s = str_field "schema" j in
  let* () =
    if s = schema then Ok () else Error (Printf.sprintf "unsupported schema %S (want %s)" s schema)
  in
  let* commit = str_field "commit" j in
  let* dirty = bool_field "dirty" j in
  let* generated = str_field "generated" j in
  let* seed = int_field "seed" j in
  let* quick = bool_field "quick" j in
  let* jobs = int_field "jobs" j in
  let* repeats = int_field "repeats" j in
  let* exps =
    let* l = field "experiments" j in
    match Json.to_list_opt l with
    | None -> Error "experiments is not a list"
    | Some xs ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest -> (
              match exp_of_json x with
              | Ok e -> conv (e :: acc) rest
              | Error m -> Error ("experiment digest: " ^ m))
        in
        conv [] xs
  in
  Ok
    {
      l_commit = commit;
      l_dirty = dirty;
      l_generated = generated;
      l_seed = seed;
      l_quick = quick;
      l_jobs = jobs;
      l_repeats = repeats;
      l_exps = exps;
    }

(* ---- file IO ---- *)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | raw ->
      let lines = String.split_on_char '\n' raw in
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
            if String.trim line = "" then go (lineno + 1) acc rest
            else (
              match Json.of_string line with
              | exception Json.Parse_error m ->
                  Error (Printf.sprintf "%s:%d: %s" path lineno m)
              | j -> (
                  match entry_of_json j with
                  | Ok e -> go (lineno + 1) (e :: acc) rest
                  | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m)))
      in
      go 1 [] lines

let save path entries =
  let oc = open_out path in
  List.iter
    (fun e ->
      output_string oc (Json.to_string (entry_to_json e));
      output_char oc '\n')
    entries;
  close_out oc

let append entries e =
  let kept =
    if e.l_commit = "unknown" then entries
    else List.filter (fun x -> x.l_commit <> e.l_commit) entries
  in
  kept @ [ e ]

(* ---- series extraction ---- *)

type metric = Wall | Alloc | Rate

let metric_name = function Wall -> "wall" | Alloc -> "alloc" | Rate -> "rate"

let find_exp id e = List.find_opt (fun x -> x.x_id = id) e.l_exps

(* Aligned with [entries]: NaN marks entries where the experiment (or the
   requested datum) is absent, so sparklines keep the commit axis. *)
let series metric ?(kind = "") ~id entries =
  List.map
    (fun e ->
      match find_exp id e with
      | None -> Float.nan
      | Some x -> (
          match metric with
          | Wall -> x.x_wall_s
          | Alloc -> x.x_minor_words
          | Rate -> (
              match List.assoc_opt kind x.x_rates with Some v -> v | None -> Float.nan)))
    entries

let exp_ids entries =
  List.sort_uniq compare (List.concat_map (fun e -> List.map (fun x -> x.x_id) e.l_exps) entries)

let rate_kinds ~id entries =
  List.sort_uniq compare
    (List.concat_map
       (fun e ->
         match find_exp id e with None -> [] | Some x -> List.map fst x.x_rates)
       entries)

(* ---- sparklines ---- *)

(* Eight-level block characters scaled to the series' own min..max; NaN
   (missing) points render as '·'. A flat series renders mid-level so it
   reads as "present and steady" rather than empty. *)
let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline xs =
  let known = List.filter (fun v -> not (Float.is_nan v)) xs in
  match known with
  | [] -> String.concat "" (List.map (fun _ -> "·") xs)
  | _ ->
      let lo = List.fold_left Float.min infinity known in
      let hi = List.fold_left Float.max neg_infinity known in
      String.concat ""
        (List.map
           (fun v ->
             if Float.is_nan v then "·"
             else if hi <= lo then spark_levels.(3)
             else
               let t = (v -. lo) /. (hi -. lo) in
               spark_levels.(max 0 (min 7 (int_of_float (t *. 7.999)))))
           xs)

(* ---- trend gate ---- *)

type trend = {
  t_exp : string;
  t_metric : metric;
  t_kind : string;  (* work kind for Rate; "" otherwise *)
  t_verdict : Report.verdict option;  (* None: not enough history to judge *)
  t_latest : float;
  t_baseline : float;  (* median of the prior window; nan when None *)
  t_ratio : float;
  t_note : string;
  t_series : float list;  (* window-aligned, oldest..newest, NaN = missing *)
}

let default_window = 8

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let split_last xs =
  match List.rev xs with [] -> None | last :: rev_prev -> Some (List.rev rev_prev, last)

(* One metric judged: [prev] are the window's known values, [latest] the
   candidate. [ranged] selects the wall posture (ratio AND outside the
   window range) vs the deterministic alloc posture (ratio alone);
   [lower_is_better] flips the axis for rates. *)
let judge ~tolerance ~ranged ~lower_is_better ~prev ~latest =
  let baseline = Report.median prev in
  let ratio = latest /. baseline in
  let lo = List.fold_left Float.min infinity prev in
  let hi = List.fold_left Float.max neg_infinity prev in
  let worse_ratio, better_ratio, worse_range, better_range =
    if lower_is_better then
      (ratio < 1.0 /. (1.0 +. tolerance), ratio > 1.0 +. tolerance, latest < lo, latest > hi)
    else (ratio > 1.0 +. tolerance, ratio < 1.0 -. tolerance, latest > hi, latest < lo)
  in
  let verdict =
    if worse_ratio && ((not ranged) || worse_range) then Report.Regression
    else if better_ratio && ((not ranged) || better_range) then Report.Improvement
    else Report.Within_noise
  in
  let note =
    match verdict with
    | Report.Regression ->
        if lower_is_better then
          Printf.sprintf "%.0f%% below the window median and under its range (min %.3g)"
            (100.0 *. (1.0 -. ratio)) lo
        else
          Printf.sprintf "+%.0f%% over the window median%s" (100.0 *. (ratio -. 1.0))
            (if ranged then Printf.sprintf " and over its range (max %.3g)" hi else "")
    | Report.Improvement ->
        if lower_is_better then Printf.sprintf "+%.0f%% over the window median" (100.0 *. (ratio -. 1.0))
        else Printf.sprintf "-%.0f%% under the window median" (100.0 *. (1.0 -. ratio))
    | _ -> ""
  in
  (verdict, baseline, ratio, note)

let gate ?(tolerance = Report.default_tolerance) ?(min_wall_s = Report.default_min_wall_s)
    ?(alloc_tolerance = Report.default_alloc_tolerance)
    ?(rate_tolerance = Report.default_rate_tolerance) ?(window = default_window) entries =
  let entries = last_n window entries in
  match List.rev entries with
  | [] -> []
  | newest :: _ ->
      let trend ~metric ~kind ~id =
        let ser = series metric ~kind ~id entries in
        let known = List.filter (fun v -> not (Float.is_nan v)) ser in
        let base =
          {
            t_exp = id;
            t_metric = metric;
            t_kind = kind;
            t_verdict = None;
            t_latest = (match List.rev known with v :: _ -> v | [] -> Float.nan);
            t_baseline = Float.nan;
            t_ratio = Float.nan;
            t_note = "insufficient history";
            t_series = ser;
          }
        in
        match split_last known with
        | None | Some ([], _) -> base
        | Some (prev, latest) ->
            (* The wall floor applies to wall AND rate trends: under it,
               timer resolution dominates both axes. *)
            let walls = List.filter (fun v -> not (Float.is_nan v)) (series Wall ~id entries) in
            let under_floor = List.for_all (fun w -> w < min_wall_s) walls in
            if metric <> Alloc && under_floor then
              {
                base with
                t_verdict = Some Report.Within_noise;
                t_baseline = Report.median prev;
                t_ratio = latest /. Report.median prev;
                t_note = Printf.sprintf "all walls under %.0fms floor" (1e3 *. min_wall_s);
              }
            else
              let tolerance, ranged, lower_is_better =
                match metric with
                | Wall -> (tolerance, true, false)
                | Alloc -> (alloc_tolerance, false, false)
                | Rate -> (rate_tolerance, true, true)
              in
              let verdict, baseline, ratio, note =
                judge ~tolerance ~ranged ~lower_is_better ~prev ~latest
              in
              {
                base with
                t_verdict = Some verdict;
                t_latest = latest;
                t_baseline = baseline;
                t_ratio = ratio;
                t_note = note;
              }
      in
      (* Only experiments alive in the newest entry are gated: a removed
         experiment has no trajectory left to protect. *)
      List.concat_map
        (fun x ->
          let id = x.x_id in
          [ trend ~metric:Wall ~kind:"" ~id; trend ~metric:Alloc ~kind:"" ~id ]
          @ List.map (fun k -> trend ~metric:Rate ~kind:k ~id) (rate_kinds ~id entries))
        newest.l_exps

let regressions trends =
  List.filter (fun t -> t.t_verdict = Some Report.Regression) trends
