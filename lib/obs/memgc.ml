(* GC / allocation observability.

   Wall time answers "how long"; this module answers "how many words" —
   and unlike wall time, allocation is deterministic: for a fixed seed and
   job count, two runs of the same code allocate byte-identical minor-word
   counts, so a regression gate on minor words needs no noise floor at all
   (see Report.diff's alloc verdict and DESIGN.md §8).

   Sourcing the minor-word count needs care on OCaml 5.1 (both facts
   verified empirically on this runtime):

   - [Gc.quick_stat ()] reports only *flushed* minor allocation: the
     calling domain's words are counted at its last minor collection, so a
     workload smaller than the minor heap reads as zero. Terminated
     domains ARE folded in completely (the runtime merges a domain's stats
     when it dies), but the caller's own live window is invisible.
   - [Gc.minor_words ()] is exact and live (domain-local stat plus the
     current young-pointer offset) but strictly domain-local: a joined
     worker's 1.3M words move quick_stat and leave it untouched.
   - [Gc.counters ()] is scaled wrong on 5.1 (off by the word size) and is
     not used at all.

   So the global count [read] reports is [Gc.minor_words ()] on the
   calling domain plus [foreign_minor_words]: an atomic accumulator that
   Wx_par.Pool workers add their own exact totals to as they exit (before
   the join makes those adds visible to the caller). Both components are
   live and exact, nothing is double-counted (quick_stat's merged view is
   never mixed in), and the sum is deterministic even though chunk
   stealing spreads work nondeterministically — the per-worker sum is
   fixed. quick_stat still sources the non-gated context fields
   (promoted/major words, collection counts, top heap).

   Determinism fine print: minor_words deltas are byte-stable run to run;
   promoted/major words and collection counts are NOT (promotion depends
   on where minor collections happen to land), which is why the bench gate
   compares minor words only and records the rest as context.

   Zero-cost-when-disabled contract: every entry point starts with one
   atomic flag load; while disabled no Gc function is called at all. The
   [gc_read_count] hook counts every Gc read this module performs so tests
   can assert exactly that.

   The major-cycle alarm ([Gc.create_alarm]) is deliberately NOT part of
   [enable]: the stdlib re-arms alarms through [Gc.finalise], which itself
   allocates once per major cycle — harmless for tracing, but enough to
   perturb the byte-identical minor-word counts the bench gate depends on.
   [install_alarm] is opt-in (used by `wx prof` and the trace counter
   track), never by `wx bench record`. *)

let enabled =
  Atomic.make
    (match Sys.getenv_opt "WX_MEMGC" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* Test hook: total Gc reads performed by this module, enabled or not.
   A plain counter (not Metrics) so it works with the registry disabled. *)
let gc_reads = Atomic.make 0
let gc_read_count () = Atomic.get gc_reads

type counters = {
  minor_words : int;
  promoted_words : int;
  major_words : int;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  forced_major_collections : int;
  top_heap_words : int;
}

let zero =
  {
    minor_words = 0;
    promoted_words = 0;
    major_words = 0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    forced_major_collections = 0;
    top_heap_words = 0;
  }

(* Word counts are floats in [Gc.stat] but integral in value; int keeps the
   JSON exact and the determinism check a plain equality. *)
let words f = int_of_float f

(* Minor words allocated by already-exited pool workers (see header). An
   int accumulator: per-worker totals are integral in value, and integer
   atomics stay exact where float adds could reorder. *)
let foreign = Atomic.make 0
let add_foreign_minor_words w = if w > 0 then ignore (Atomic.fetch_and_add foreign w)
let foreign_minor_words () = Atomic.get foreign

let read_always () =
  (* Two Gc reads: the merged-but-stale quick_stat for context fields, the
     live domain-local counter (+ foreign) for the gated minor count. *)
  Atomic.incr gc_reads;
  Atomic.incr gc_reads;
  let s = Gc.quick_stat () in
  {
    minor_words = words (Gc.minor_words ()) + Atomic.get foreign;
    promoted_words = words s.Gc.promoted_words;
    major_words = words s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    forced_major_collections = s.Gc.forced_major_collections;
    top_heap_words = s.Gc.top_heap_words;
  }

let read () = if Atomic.get enabled then read_always () else zero

(* Counters are cumulative; a measurement is a subtraction. top_heap_words
   is a high-water mark, not a rate — keep the [after] value. *)
let diff ~before ~after =
  {
    minor_words = after.minor_words - before.minor_words;
    promoted_words = after.promoted_words - before.promoted_words;
    major_words = after.major_words - before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    forced_major_collections =
      after.forced_major_collections - before.forced_major_collections;
    top_heap_words = after.top_heap_words;
  }

let own_minor_words () =
  if Atomic.get enabled then begin
    Atomic.incr gc_reads;
    Gc.minor_words ()
  end
  else 0.0

(* ---- major-cycle alarm (opt-in; see header) ---- *)

let major_cycle_count = Atomic.make 0
let major_cycles () = Atomic.get major_cycle_count
let alarm : Gc.alarm option ref = ref None

let on_major_cycle () =
  Atomic.incr major_cycle_count;
  (* A counter sample at every major-cycle end gives the trace a heap
     track that moves even between spans. *)
  if Trace_export.is_enabled () then begin
    Atomic.incr gc_reads;
    let s = Gc.quick_stat () in
    Trace_export.counter ~name:"gc.major"
      ~t_ns:(Clock.now_ns ())
      [
        ("major_words", s.Gc.major_words);
        ("top_heap_words", float_of_int s.Gc.top_heap_words);
      ]
  end

let install_alarm () =
  match !alarm with
  | Some _ -> ()
  | None -> alarm := Some (Gc.create_alarm on_major_cycle)

let remove_alarm () =
  match !alarm with
  | Some a ->
      Gc.delete_alarm a;
      alarm := None
  | None -> ()

(* ---- JSON codec (the bench report's per-experiment "alloc" block) ---- *)

let to_json c =
  Json.Obj
    [
      ("minor_words", Json.Int c.minor_words);
      ("promoted_words", Json.Int c.promoted_words);
      ("major_words", Json.Int c.major_words);
      ("minor_collections", Json.Int c.minor_collections);
      ("major_collections", Json.Int c.major_collections);
      ("compactions", Json.Int c.compactions);
      ("forced_major_collections", Json.Int c.forced_major_collections);
      ("top_heap_words", Json.Int c.top_heap_words);
    ]

let of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match
    ( int "minor_words",
      int "promoted_words",
      int "major_words",
      int "minor_collections",
      int "major_collections",
      int "compactions",
      int "forced_major_collections",
      int "top_heap_words" )
  with
  | Some mw, Some pw, Some jw, Some mc, Some jc, Some co, Some fo, Some th ->
      Some
        {
          minor_words = mw;
          promoted_words = pw;
          major_words = jw;
          minor_collections = mc;
          major_collections = jc;
          compactions = co;
          forced_major_collections = fo;
          top_heap_words = th;
        }
  | _ -> None

let render c =
  Printf.sprintf
    "minor %dw, promoted %dw, major %dw, collections %d minor / %d major \
     (%d forced), compactions %d, top heap %dw"
    c.minor_words c.promoted_words c.major_words c.minor_collections
    c.major_collections c.forced_major_collections c.compactions
    c.top_heap_words
