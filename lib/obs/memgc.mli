(** GC / allocation observability sourced from [Gc.quick_stat], plus an
    opt-in [Gc.create_alarm] major-cycle hook.

    Allocation counts — unlike wall times — are deterministic for a fixed
    seed and job count, so measurements taken here can gate a perf CI job
    orders of magnitude tighter than a wall-time diff (1% with no noise
    floor; see {!Report}'s alloc verdict and DESIGN.md §8). Only
    [minor_words] deltas carry that guarantee: promoted/major words and
    collection counts depend on where minor collections land and are
    recorded as context, not gated.

    On OCaml 5.1 [Gc.quick_stat] only reports minor allocation that a
    minor collection has already flushed, so {!read} sources its gated
    [minor_words] from the live domain-local counter ([Gc.minor_words])
    plus {!foreign_minor_words} — an accumulator that [Wx_par.Pool]
    workers feed their own exact totals into as they exit. The result
    covers worker-domain allocation without waiting for a collection.
    quick_stat still sources the non-gated context fields. Use
    {!own_minor_words} (current domain only) for in-flight per-worker
    attribution, as the pool does.

    Zero-cost-when-disabled: every entry point is one atomic flag load,
    and no [Gc] function runs while disabled — {!gc_read_count} lets tests
    assert exactly that. Enable with {!enable} or [WX_MEMGC=1]. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type counters = {
  minor_words : int;  (** deterministic per seed/jobs; the gated number *)
  promoted_words : int;
  major_words : int;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  forced_major_collections : int;
  top_heap_words : int;  (** high-water mark, not a rate *)
}

val zero : counters

val read : unit -> counters
(** Cumulative counters: live [minor_words] for this domain plus
    {!foreign_minor_words}; context fields from [Gc.quick_stat]. {!zero},
    and no Gc read, while disabled. *)

val diff : before:counters -> after:counters -> counters
(** Elementwise [after - before]; [top_heap_words] keeps [after]'s
    high-water value. *)

val own_minor_words : unit -> float
(** The calling domain's own minor allocation ([Gc.minor_words]: exact and
    live, strictly domain-local); [0.0], and no Gc read, while disabled.
    For live per-worker attribution. *)

val add_foreign_minor_words : int -> unit
(** Credit minor words allocated on another (about-to-exit) domain, so
    {!read} on the pool-owning domain sees them. Called by [Wx_par.Pool]
    at worker exit; negative or zero amounts are ignored. *)

val foreign_minor_words : unit -> int

val gc_read_count : unit -> int
(** Test hook: total Gc reads this module has performed since startup. *)

(** {2 Major-cycle alarm}

    Deliberately separate from {!enable}: the stdlib re-arms alarms via
    [Gc.finalise], which allocates once per major cycle — fine for
    tracing, but enough to perturb the byte-identical minor-word counts
    the bench gate depends on. [wx prof] installs it; [wx bench record]
    never does. While {!Trace_export} is enabled, each cycle end also
    emits a ["gc.major"] counter sample onto the trace. *)

val install_alarm : unit -> unit
val remove_alarm : unit -> unit

val major_cycles : unit -> int
(** Major GC cycles observed since {!install_alarm}. *)

(** {2 Codec} *)

val to_json : counters -> Json.t
val of_json : Json.t -> counters option
val render : counters -> string
