(* Process-wide metrics registry: counters, gauges, timers and log-scale
   histograms with quantile estimates.

   Zero-cost-when-disabled contract: instruments are registered once at
   module-init time (a handle is a record, not a name lookup), and every
   hot-path operation starts with a single load of [enabled]. No string
   formatting, no allocation, no clock read happens while disabled — safe
   to leave in the innermost loops of the solvers and the simulator.

   Domain-safety contract (the exact expansion measures shard their
   enumeration over Wx_par domains): counters and gauges are [Atomic.t], so
   concurrent increments never lose updates; histograms keep one shard per
   observing domain (domain-local storage, registered under a mutex on
   first touch) and merge the shards at snapshot/quantile time, so the hot
   [observe] path stays lock-free and contention-free. *)

let enabled =
  Atomic.make
    (match Sys.getenv_opt "WX_METRICS" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; value : float Atomic.t; g_set : bool Atomic.t }

(* Histogram over positive values with power-of-two buckets: bucket [i]
   holds observations v with 2^i <= v < 2^(i+1) (v < 1 lands in bucket 0).
   63 buckets cover anything an int-nanosecond timer can produce. *)
let hist_buckets = 63

(* One shard per observing domain. Only its owner writes a shard, so the
   mutable fields need no synchronization; readers merge under the
   registration lock after the workers have been joined. *)
type shard = {
  buckets : int array;
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
}

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  h_shards : shard list ref;
  h_key : shard Domain.DLS.key;
}

type timer = { t_name : string; hist : histogram }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

(* Registration happens at module init in practice, but guard it anyway so
   a worker-domain registration cannot corrupt the tables. *)
let registry_lock = Mutex.create ()

let intern tbl name make =
  Mutex.lock registry_lock;
  let x =
    match Hashtbl.find_opt tbl name with
    | Some x -> x
    | None ->
        let x = make () in
        Hashtbl.replace tbl name x;
        x
  in
  Mutex.unlock registry_lock;
  x

let counter name = intern counters name (fun () -> { c_name = name; count = Atomic.make 0 })

let gauge name =
  intern gauges name (fun () ->
      { g_name = name; value = Atomic.make 0.0; g_set = Atomic.make false })

let fresh_shard () =
  {
    buckets = Array.make hist_buckets 0;
    s_count = 0;
    s_sum = 0.0;
    s_min = infinity;
    s_max = neg_infinity;
  }

let make_histogram name =
  let lock = Mutex.create () in
  let shards = ref [] in
  let key =
    (* Lazily give each domain its own shard; creation also publishes the
       shard to the histogram's merge list. *)
    Domain.DLS.new_key (fun () ->
        let s = fresh_shard () in
        Mutex.lock lock;
        shards := s :: !shards;
        Mutex.unlock lock;
        s)
  in
  { h_name = name; h_lock = lock; h_shards = shards; h_key = key }

let histogram name = intern histograms name (fun () -> make_histogram name)

let timer name =
  intern timers name (fun () -> { t_name = name; hist = make_histogram (name ^ ".ns") })

(* ---- hot-path operations ---- *)

let incr c = if Atomic.get enabled then Atomic.incr c.count

let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.count n)

let set g v =
  if Atomic.get enabled then begin
    Atomic.set g.value v;
    Atomic.set g.g_set true
  end

let bucket_of v =
  if v < 2.0 then 0
  else begin
    let i = int_of_float (Float.floor (Float.log2 v)) in
    if i >= hist_buckets then hist_buckets - 1 else i
  end

let observe_always h v =
  let s = Domain.DLS.get h.h_key in
  s.buckets.(bucket_of v) <- s.buckets.(bucket_of v) + 1;
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum +. v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v

let observe h v = if Atomic.get enabled then observe_always h v

(* Force creation of the calling domain's shard without recording anything.
   Shard creation otherwise happens on first observe, which — under the
   pool's dynamic chunk stealing — can happen on a worker in one run and
   not the next; pre-touching from every worker keeps the per-run
   allocation count fixed, which the Memgc determinism gate relies on. *)
let touch h = if Atomic.get enabled then ignore (Sys.opaque_identity (Domain.DLS.get h.h_key))
let touch_timer t = touch t.hist

(* Timers: [start] reads the clock only when enabled and returns the raw ns
   stamp (0 when disabled); [stop] is a no-op on a 0 stamp. *)
let start () = if Atomic.get enabled then Clock.now_ns () else 0

let stop t stamp =
  if stamp <> 0 && Atomic.get enabled then
    observe_always t.hist (float_of_int (Clock.now_ns () - stamp))

(* For callers that already hold a duration (the domain pool times chunks
   with raw clock reads shared with the trace exporter). *)
let observe_ns t ns = if Atomic.get enabled then observe_always t.hist (float_of_int (max 0 ns))

let time t f =
  if Atomic.get enabled then begin
    let stamp = Clock.now_ns () in
    Fun.protect ~finally:(fun () -> observe_always t.hist (float_of_int (Clock.now_ns () - stamp))) f
  end
  else f ()

(* Direct read of a counter's running total (enabled or not). Work-unit
   accounting reads totals mid-run — per-experiment deltas, progress ticks —
   where a full snapshot would be far too heavy. *)
let counter_value c = Atomic.get c.count

(* ---- reading ---- *)

(* Merged view of a histogram's per-domain shards.

   Historically this was only taken after parallel sections had joined, so
   the single-writer shard fields were stable. The exposition server
   (Expose) now merges while the pool is hot, from a domain that owns no
   shard, so the merge must tolerate concurrent writers. Every shard field
   is word-sized (no tearing under the OCaml memory model), but the fields
   of one in-flight observation land in order buckets -> count -> sum ->
   min/max, so a racing reader can see a bucket increment whose min/max has
   not been published yet. Two consequences, both handled below: the view's
   count is derived from the merged buckets (keeping quantile ranks
   consistent with the mass they walk), and when min/max have visibly not
   caught up with the buckets they are re-derived from the occupied bucket
   range rather than leaking an infinity into quantile clamping. A racing
   view may be a few observations stale; it is never internally
   inconsistent. *)
type hview = {
  v_buckets : int array;
  v_count : int;
  v_sum : float;
  v_min : float;
  v_max : float;
}

let merged h =
  Mutex.lock h.h_lock;
  let shards = !(h.h_shards) in
  Mutex.unlock h.h_lock;
  let buckets = Array.make hist_buckets 0 in
  let sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
  List.iter
    (fun s ->
      for i = 0 to hist_buckets - 1 do
        buckets.(i) <- buckets.(i) + s.buckets.(i)
      done;
      sum := !sum +. s.s_sum;
      if s.s_min < !mn then mn := s.s_min;
      if s.s_max > !mx then mx := s.s_max)
    shards;
  let count = Array.fold_left ( + ) 0 buckets in
  (* A hot-concurrent merge can catch buckets ahead of min/max (or a reset
     behind them): fall back to the occupied bucket range so the clamp in
     [quantile_of_view] never sees an infinity with nonzero mass. *)
  if count > 0 && not (!mn <= !mx && Float.is_finite !mn && Float.is_finite !mx) then begin
    let lo = ref 0 and hi = ref 0 in
    for i = hist_buckets - 1 downto 0 do
      if buckets.(i) > 0 then lo := i
    done;
    for i = 0 to hist_buckets - 1 do
      if buckets.(i) > 0 then hi := i
    done;
    mn := (if !lo = 0 then 0.0 else Float.pow 2.0 (float_of_int !lo));
    mx := Float.pow 2.0 (float_of_int (!hi + 1))
  end;
  { v_buckets = buckets; v_count = count; v_sum = !sum; v_min = !mn; v_max = !mx }

let quantile_of_view v q =
  if v.v_count = 0 then Float.nan
  else begin
    let rank = Float.max 1.0 (Float.ceil (q *. float_of_int v.v_count)) in
    let acc = ref 0 and idx = ref (hist_buckets - 1) in
    (try
       for i = 0 to hist_buckets - 1 do
         acc := !acc + v.v_buckets.(i);
         if float_of_int !acc >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Geometric midpoint of the winning bucket, clamped to observed range. *)
    let est = Float.pow 2.0 (float_of_int !idx +. 0.5) in
    Float.min v.v_max (Float.max v.v_min est)
  end

let quantile h q = quantile_of_view (merged h) q

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.count 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.value 0.0;
      Atomic.set g.g_set false)
    gauges;
  let reset_h h =
    Mutex.lock h.h_lock;
    List.iter
      (fun s ->
        Array.fill s.buckets 0 hist_buckets 0;
        s.s_count <- 0;
        s.s_sum <- 0.0;
        s.s_min <- infinity;
        s.s_max <- neg_infinity)
      !(h.h_shards);
    Mutex.unlock h.h_lock
  in
  Hashtbl.iter (fun _ h -> reset_h h) histograms;
  Hashtbl.iter (fun _ t -> reset_h t.hist) timers;
  Mutex.unlock registry_lock

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> compare a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let hist_json v =
  Json.Obj
    [
      ("count", Json.Int v.v_count);
      ("sum", Json.Float v.v_sum);
      ("min", Json.Float (if v.v_count = 0 then Float.nan else v.v_min));
      ("max", Json.Float (if v.v_count = 0 then Float.nan else v.v_max));
      ("p50", Json.Float (quantile_of_view v 0.50));
      ("p90", Json.Float (quantile_of_view v 0.90));
      ("p99", Json.Float (quantile_of_view v 0.99));
    ]

(* Snapshot of every instrument that has recorded anything. *)
let snapshot () =
  let cs =
    List.filter_map
      (fun (k, c) ->
        let n = Atomic.get c.count in
        if n = 0 then None else Some (k, Json.Int n))
      (sorted_bindings counters)
  in
  let gs =
    List.filter_map
      (fun (k, g) -> if Atomic.get g.g_set then Some (k, Json.Float (Atomic.get g.value)) else None)
      (sorted_bindings gauges)
  in
  let hs =
    List.filter_map
      (fun (k, h) ->
        let v = merged h in
        if v.v_count = 0 then None else Some (k, hist_json v))
      (sorted_bindings histograms)
  in
  let ts =
    List.filter_map
      (fun (k, t) ->
        let v = merged t.hist in
        if v.v_count = 0 then None
        else
          Some
            ( k,
              match hist_json v with
              | Json.Obj fields -> Json.Obj (fields @ [ ("total_ms", Json.Float (v.v_sum /. 1e6)) ])
              | j -> j ))
      (sorted_bindings timers)
  in
  Json.Obj
    [
      ("counters", Json.Obj cs);
      ("gauges", Json.Obj gs);
      ("histograms", Json.Obj hs);
      ("timers", Json.Obj ts);
    ]

(* NaN is what {!quantile} and min/max of an empty view legitimately return;
   human-facing renderings print "-" for it instead of leaking "nan". *)
let fg x = if Float.is_nan x then "-" else Printf.sprintf "%.3g" x

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "-- metrics --\n";
  List.iter
    (fun (k, c) ->
      let n = Atomic.get c.count in
      if n <> 0 then Buffer.add_string buf (Printf.sprintf "  %-44s %d\n" k n))
    (sorted_bindings counters);
  List.iter
    (fun (k, g) ->
      if Atomic.get g.g_set then
        Buffer.add_string buf (Printf.sprintf "  %-44s %s\n" k (fg (Atomic.get g.value))))
    (sorted_bindings gauges);
  let render_h k v =
    if v.v_count <> 0 then
      Buffer.add_string buf
        (Printf.sprintf "  %-44s n=%d sum=%s p50=%s p90=%s p99=%s max=%s\n" k v.v_count
           (fg v.v_sum)
           (fg (quantile_of_view v 0.50))
           (fg (quantile_of_view v 0.90))
           (fg (quantile_of_view v 0.99))
           (fg v.v_max))
  in
  List.iter (fun (k, h) -> render_h k (merged h)) (sorted_bindings histograms);
  List.iter
    (fun (k, t) ->
      let v = merged t.hist in
      if v.v_count <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-44s n=%d total=%.2fms p50=%sns p99=%sns\n" k v.v_count
             (v.v_sum /. 1e6)
             (fg (quantile_of_view v 0.50))
             (fg (quantile_of_view v 0.99))))
    (sorted_bindings timers);
  Buffer.contents buf
