(* Process-wide metrics registry: counters, gauges, timers and log-scale
   histograms with quantile estimates.

   Zero-cost-when-disabled contract: instruments are registered once at
   module-init time (a handle is a mutable record, not a name lookup), and
   every hot-path operation starts with a single load of [enabled]. No
   string formatting, no allocation, no clock read happens while disabled —
   safe to leave in the innermost loops of the solvers and the simulator. *)

let enabled =
  ref
    (match Sys.getenv_opt "WX_METRICS" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float; mutable g_set : bool }

(* Histogram over positive values with power-of-two buckets: bucket [i]
   holds observations v with 2^i <= v < 2^(i+1) (v < 1 lands in bucket 0).
   63 buckets cover anything an int-nanosecond timer can produce. *)
let hist_buckets = 63

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type timer = { t_name : string; hist : histogram }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let intern tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some x -> x
  | None ->
      let x = make () in
      Hashtbl.replace tbl name x;
      x

let counter name = intern counters name (fun () -> { c_name = name; count = 0 })
let gauge name = intern gauges name (fun () -> { g_name = name; value = 0.0; g_set = false })

let make_histogram name =
  {
    h_name = name;
    buckets = Array.make hist_buckets 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let histogram name = intern histograms name (fun () -> make_histogram name)

let timer name =
  intern timers name (fun () -> { t_name = name; hist = make_histogram (name ^ ".ns") })

(* ---- hot-path operations ---- *)

let incr c = if !enabled then c.count <- c.count + 1
let add c n = if !enabled then c.count <- c.count + n
let set g v =
  if !enabled then begin
    g.value <- v;
    g.g_set <- true
  end

let bucket_of v =
  if v < 2.0 then 0
  else begin
    let i = int_of_float (Float.floor (Float.log2 v)) in
    if i >= hist_buckets then hist_buckets - 1 else i
  end

let observe_always h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let observe h v = if !enabled then observe_always h v

(* Timers: [start] reads the clock only when enabled and returns the raw ns
   stamp (0 when disabled); [stop] is a no-op on a 0 stamp. *)
let start () = if !enabled then Clock.now_ns () else 0

let stop t stamp =
  if stamp <> 0 && !enabled then
    observe_always t.hist (float_of_int (Clock.now_ns () - stamp))

let time t f =
  if !enabled then begin
    let stamp = Clock.now_ns () in
    Fun.protect ~finally:(fun () -> observe_always t.hist (float_of_int (Clock.now_ns () - stamp))) f
  end
  else f ()

(* ---- reading ---- *)

let quantile h q =
  if h.h_count = 0 then Float.nan
  else begin
    let rank = Float.max 1.0 (Float.ceil (q *. float_of_int h.h_count)) in
    let acc = ref 0 and idx = ref (hist_buckets - 1) in
    (try
       for i = 0 to hist_buckets - 1 do
         acc := !acc + h.buckets.(i);
         if float_of_int !acc >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Geometric midpoint of the winning bucket, clamped to observed range. *)
    let est = Float.pow 2.0 (float_of_int !idx +. 0.5) in
    Float.min h.h_max (Float.max h.h_min est)
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0.0;
      g.g_set <- false)
    gauges;
  let reset_h h =
    Array.fill h.buckets 0 hist_buckets 0;
    h.h_count <- 0;
    h.h_sum <- 0.0;
    h.h_min <- infinity;
    h.h_max <- neg_infinity
  in
  Hashtbl.iter (fun _ h -> reset_h h) histograms;
  Hashtbl.iter (fun _ t -> reset_h t.hist) timers

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> compare a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", Json.Float (if h.h_count = 0 then Float.nan else h.h_min));
      ("max", Json.Float (if h.h_count = 0 then Float.nan else h.h_max));
      ("p50", Json.Float (quantile h 0.50));
      ("p90", Json.Float (quantile h 0.90));
      ("p99", Json.Float (quantile h 0.99));
    ]

(* Snapshot of every instrument that has recorded anything. *)
let snapshot () =
  let cs =
    List.filter_map
      (fun (k, c) -> if c.count = 0 then None else Some (k, Json.Int c.count))
      (sorted_bindings counters)
  in
  let gs =
    List.filter_map
      (fun (k, g) -> if g.g_set then Some (k, Json.Float g.value) else None)
      (sorted_bindings gauges)
  in
  let hs =
    List.filter_map
      (fun (k, h) -> if h.h_count = 0 then None else Some (k, hist_json h))
      (sorted_bindings histograms)
  in
  let ts =
    List.filter_map
      (fun (k, t) ->
        if t.hist.h_count = 0 then None
        else
          Some
            ( k,
              match hist_json t.hist with
              | Json.Obj fields ->
                  Json.Obj (fields @ [ ("total_ms", Json.Float (t.hist.h_sum /. 1e6)) ])
              | j -> j ))
      (sorted_bindings timers)
  in
  Json.Obj
    [
      ("counters", Json.Obj cs);
      ("gauges", Json.Obj gs);
      ("histograms", Json.Obj hs);
      ("timers", Json.Obj ts);
    ]

let render () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "-- metrics --\n";
  List.iter
    (fun (k, c) ->
      if c.count <> 0 then Buffer.add_string buf (Printf.sprintf "  %-44s %d\n" k c.count))
    (sorted_bindings counters);
  List.iter
    (fun (k, g) ->
      if g.g_set then Buffer.add_string buf (Printf.sprintf "  %-44s %g\n" k g.value))
    (sorted_bindings gauges);
  let render_h k h =
    if h.h_count <> 0 then
      Buffer.add_string buf
        (Printf.sprintf "  %-44s n=%d sum=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g\n" k h.h_count
           h.h_sum (quantile h 0.50) (quantile h 0.90) (quantile h 0.99) h.h_max)
  in
  List.iter (fun (k, h) -> render_h k h) (sorted_bindings histograms);
  List.iter
    (fun (k, t) ->
      if t.hist.h_count <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-44s n=%d total=%.2fms p50=%.3gns p99=%.3gns\n" k t.hist.h_count
             (t.hist.h_sum /. 1e6) (quantile t.hist 0.50) (quantile t.hist 0.99)))
    (sorted_bindings timers);
  Buffer.contents buf
