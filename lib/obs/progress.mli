(** Live heartbeat for long runs: coverage, units/sec and ETA on stderr.

    Off by default; enable with [WX_PROGRESS=1] (interval override:
    [WX_PROGRESS_INTERVAL_MS], default 1000). The CLI suppresses it under
    [--json]. TTY-aware: on a terminal the heartbeat rewrites one line in
    place; piped, it appends one line per interval.

    Progress never influences computed values or witnesses — it only
    counts and prints — so exact-measure results are bit-identical with it
    on or off at any job count. It does allocate while printing, so leave
    it off for allocation-gated bench runs. A disabled task's {!tick} is a
    single bool load: no clock read, no atomic op, no allocation.

    Domain-safe: {!tick} may be called concurrently from pool workers;
    one domain per interval is elected to print.

    Each printed heartbeat also publishes its state to the {!Metrics}
    registry as gauges ([progress.coverage_pct], [progress.done_units],
    [progress.total_units], [progress.units_per_s], [progress.eta_s]), so
    the [Expose] endpoint and `wx top` render from the same source. ETA is
    NaN until the observed rate is positive — never [inf]. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type task

val start : ?units:string -> label:string -> total:int -> unit -> task
(** Open a heartbeat. [total] is the known work bound (e.g. the subset
    count from the enumeration space); pass [0] when unknown — the line
    then omits coverage and ETA. [units] names the unit (default
    ["units"]). While disabled this returns an inert task at zero cost. *)

val tick : task -> int -> unit
(** Credit [n] finished units. Call with batched counts from hot loops
    (e.g. every 4096 sets), never per-unit. At most one line is printed
    per interval across all ticking domains. *)

val finish : task -> unit
(** Close the heartbeat (clears the in-place line on a TTY). *)
