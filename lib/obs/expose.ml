(* Pull-based exposition server: the live Metrics/Work registry over
   localhost HTTP/1.0, in two formats.

   Architecture: one dedicated server domain blocks in select() on the
   listening socket and a self-pipe; [stop] writes the pipe, so shutdown
   never depends on waking an accept() by closing its fd under it (the
   at_exit hook on wx's signal-exit path calls [stop] too, which is why it
   must be race-free and idempotent). Requests are handled one at a time on
   the server domain — scraping is a per-second affair, and serialized
   handling keeps the scrape-delta rate state single-writer without locks.

   Perturbation-free contract: serving reads counters and gauges through
   atomic loads and merges histogram shards under the hardened
   Metrics.merged (see metrics.ml); it never observes, never touches
   another domain's DLS, and every allocation a scrape causes happens on
   the exposition domain — invisible to Memgc.read (own words + pool
   worker credits), so the bench alloc gate is bit-identical with the
   server on or off.

   Format notes: Prometheus text exposition 0.0.4. Registry names are
   sanitized ('.' and anything outside [A-Za-z0-9_] become '_') and
   prefixed "wx_" unless already so prefixed; histograms and timers render
   as summaries (quantile samples + _sum/_count) with _min/_max gauges on
   the side; per-kind units/sec derive from the Work deltas between
   successive /metrics scrapes, so two interleaved scrapers will see each
   other's windows (documented — run one scraper, or use /json and derive
   rates client-side as `wx top` does). *)

type scrape_prev = int * (string * int) list (* now_ns at scrape, Work.totals *)

type t = {
  sock : Unix.file_descr;
  t_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  started_ns : int;
  stopped : bool Atomic.t;
  mutable prev : scrape_prev option; (* server-domain only *)
  mutable dom : unit Domain.t option;
}

let port t = t.t_port
let uptime_s t = Clock.ns_to_s (Clock.now_ns () - t.started_ns)

(* Registry instruments of the exposition surface itself. The scrape
   counter is the canonical "monotone between scrapes" probe: it moves even
   when the workload is idle, so `test/cli_test.sh` and the CI smoke can
   assert monotonicity without racing the experiment. The exposed
   [wx_expose_scrapes] sample is rendered from [scrape_total], not the
   registry counter: a workload that calls [Metrics.reset] mid-run (bench
   record does, once per recording) would zero the registry copy and make
   the probe non-monotone across the reset. *)
let scrapes_c = Metrics.counter "expose.scrapes"
let scrape_total : int Atomic.t = Atomic.make 0
let uptime_g = Metrics.gauge "wx.uptime_seconds"
let build_info_g = Metrics.gauge "wx.build_info"

(* Captured once per process, on first render: capture_provenance shells
   out to git, which must not run at library-init time. *)
let build_info = lazy (Report.capture_provenance ())

(* ("abc+dirty" -> ("abc", true)); commit/dirty are separate labels. *)
let commit_and_dirty () =
  let prov = Lazy.force build_info in
  let commit = match List.assoc_opt "git_commit" prov with Some c -> c | None -> "unknown" in
  match String.index_opt commit '+' with
  | Some i -> (String.sub commit 0 i, true)
  | None -> (commit, false)

(* ---- Prometheus text rendering ---- *)

let prom_name name =
  let s =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  if String.length s >= 3 && String.sub s 0 3 = "wx_" then s else "wx_" ^ s

let prom_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.10g" v

let obj_fields = function Json.Obj fields -> fields | _ -> []
let num_of = function Json.Int n -> float_of_int n | Json.Float v -> v | _ -> Float.nan

let add_typed buf name kind =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let add_sample buf name value = Buffer.add_string buf (name ^ " " ^ value ^ "\n")

(* One summary block per histogram/timer snapshot object: quantile samples
   from the p50/p90/p99 estimates, _sum/_count, and _min/_max side gauges.
   total_ms (timers only) is derivable from _sum and skipped. *)
let add_summary buf name fields =
  let get k = match List.assoc_opt k fields with Some v -> num_of v | None -> Float.nan in
  add_typed buf name "summary";
  List.iter
    (fun (q, key) ->
      add_sample buf (Printf.sprintf "%s{quantile=\"%s\"}" name q) (prom_float (get key)))
    [ ("0.5", "p50"); ("0.9", "p90"); ("0.99", "p99") ];
  add_sample buf (name ^ "_sum") (prom_float (get "sum"));
  add_sample buf (name ^ "_count") (prom_float (get "count"));
  add_typed buf (name ^ "_min") "gauge";
  add_sample buf (name ^ "_min") (prom_float (get "min"));
  add_typed buf (name ^ "_max") "gauge";
  add_sample buf (name ^ "_max") (prom_float (get "max"))

(* Gauges the exposition surface synthesizes itself (build info with its
   labels, uptime): published into the registry first so the JSON snapshot
   carries the same series, then skipped by the generic gauge loop below to
   keep each Prometheus metric family single-sourced. *)
let synthesized = [ "wx.build_info"; "wx.uptime_seconds" ]

let publish_process_gauges ~uptime_s =
  Metrics.set build_info_g 1.0;
  Metrics.set uptime_g uptime_s

let prometheus_page ?(rates = []) ~uptime_s () =
  publish_process_gauges ~uptime_s;
  let snap = Metrics.snapshot () in
  let section name = Option.fold ~none:[] ~some:obj_fields (Json.member name snap) in
  let buf = Buffer.create 4096 in
  (* Build info: constant 1 with the provenance as labels — the idiomatic
     Prometheus shape for joining version metadata onto other series. *)
  let commit, dirty = commit_and_dirty () in
  let labels =
    (("commit", commit) :: ("dirty", string_of_bool dirty)
    :: List.filter (fun (k, _) -> k <> "git_commit") (Lazy.force build_info))
  in
  add_typed buf "wx_build_info" "gauge";
  add_sample buf
    (Printf.sprintf "wx_build_info{%s}"
       (String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_value v)) labels)))
    "1";
  add_typed buf "wx_uptime_seconds" "gauge";
  add_sample buf "wx_uptime_seconds" (prom_float uptime_s);
  add_typed buf "wx_expose_scrapes" "counter";
  add_sample buf "wx_expose_scrapes" (string_of_int (Atomic.get scrape_total));
  List.iter
    (fun (k, v) ->
      if k <> "expose.scrapes" then begin
        let name = prom_name k in
        add_typed buf name "counter";
        add_sample buf name (prom_float (num_of v))
      end)
    (section "counters");
  List.iter
    (fun (k, v) ->
      if not (List.mem k synthesized) then begin
        let name = prom_name k in
        add_typed buf name "gauge";
        add_sample buf name (prom_float (num_of v))
      end)
    (section "gauges");
  List.iter (fun (k, v) -> add_summary buf (prom_name k) (obj_fields v)) (section "histograms");
  List.iter (fun (k, v) -> add_summary buf (prom_name k) (obj_fields v)) (section "timers");
  if rates <> [] then begin
    add_typed buf "wx_work_units_per_second" "gauge";
    List.iter
      (fun (kind, r) ->
        add_sample buf
          (Printf.sprintf "wx_work_units_per_second{kind=\"%s\"}" (prom_label_value kind))
          (prom_float r))
      rates
  end;
  Buffer.contents buf

(* ---- JSON rendering ---- *)

let json_page ~uptime_s () =
  publish_process_gauges ~uptime_s;
  let commit, dirty = commit_and_dirty () in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "wx-expose/1");
         ("uptime_s", Json.Float uptime_s);
         ( "build",
           Json.Obj
             (("commit", Json.String commit) :: ("dirty", Json.Bool dirty)
             :: List.filter_map
                  (fun (k, v) -> if k = "git_commit" then None else Some (k, Json.String v))
                  (Lazy.force build_info)) );
         ("work", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (Work.totals ())));
         ("metrics", Metrics.snapshot ());
       ])

(* ---- scrape-delta rates ---- *)

let scrape_rates ~prev ~now_ns ~work =
  match prev with
  | None -> []
  | Some (t0, before) ->
      let dt = Clock.ns_to_s (now_ns - t0) in
      if dt <= 0.0 then []
      else
        List.map
          (fun (kind, n1) ->
            let n0 = match List.assoc_opt kind before with Some n -> n | None -> 0 in
            (* A Metrics.reset between scrapes makes the delta negative;
               0/s is the honest rendering of "the window straddled a
               reset", not a negative rate. *)
            (kind, Float.max 0.0 (float_of_int (n1 - n0) /. dt)))
          work

(* ---- HTTP plumbing ---- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

let respond conn ~status ~ctype body =
  write_all conn
    (Printf.sprintf "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status ctype (String.length body) body)

let route t path =
  match path with
  | "/metrics" ->
      Atomic.incr scrape_total;
      Metrics.incr scrapes_c;
      let now_ns = Clock.now_ns () in
      let work = Work.totals () in
      let rates = scrape_rates ~prev:t.prev ~now_ns ~work in
      t.prev <- Some (now_ns, work);
      Some
        ( "text/plain; version=0.0.4; charset=utf-8",
          prometheus_page ~rates ~uptime_s:(uptime_s t) () )
  | "/" | "/json" | "/metrics.json" ->
      Atomic.incr scrape_total;
      Metrics.incr scrapes_c;
      Some ("application/json", json_page ~uptime_s:(uptime_s t) () ^ "\n")
  | _ -> None

let handle t conn =
  Unix.setsockopt_float conn Unix.SO_RCVTIMEO 2.0;
  Unix.setsockopt_float conn Unix.SO_SNDTIMEO 2.0;
  let buf = Bytes.create 2048 in
  let n = try Unix.read conn buf 0 (Bytes.length buf) with Unix.Unix_error _ -> 0 in
  if n > 0 then begin
    let req = Bytes.sub_string buf 0 n in
    let first_line = List.hd (String.split_on_char '\r' req) in
    match String.split_on_char ' ' first_line with
    | "GET" :: path :: _ -> (
        match route t path with
        | Some (ctype, body) -> respond conn ~status:"200 OK" ~ctype body
        | None -> respond conn ~status:"404 Not Found" ~ctype:"text/plain" "not found\n")
    | _ -> respond conn ~status:"400 Bad Request" ~ctype:"text/plain" "bad request\n"
  end

let rec serve t =
  match Unix.select [ t.sock; t.stop_r ] [] [] (-1.0) with
  | ready, _, _ ->
      if List.mem t.stop_r ready then () (* stop() wrote the pipe: drain out *)
      else begin
        (match Unix.accept t.sock with
        | conn, _ ->
            (* One bad client must never take the server down; close is
               best-effort too (the peer may already have reset). *)
            (try handle t conn with _ -> ());
            (try Unix.close conn with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ());
        serve t
      end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> serve t
  | exception Unix.Unix_error _ -> ()

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) -> raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let start ?(host = "127.0.0.1") ~port () =
  match
    let addr = resolve_host host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (addr, port));
       Unix.listen sock 16
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    let actual =
      match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    let stop_r, stop_w = Unix.pipe () in
    let t =
      {
        sock;
        t_port = actual;
        stop_r;
        stop_w;
        started_ns = Clock.now_ns ();
        stopped = Atomic.make false;
        prev = None;
        dom = None;
      }
    in
    t.dom <- Some (Domain.spawn (fun () -> serve t));
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e))

let stop t =
  (* exchange, not get+set: the normal shutdown path and the at_exit hook
     installed for the signal-exit path can both call this. *)
  if not (Atomic.exchange t.stopped true) then begin
    (try ignore (Unix.write t.stop_w (Bytes.make 1 'q') 0 1) with Unix.Unix_error _ -> ());
    (match t.dom with Some d -> ( try Domain.join d with _ -> ()) | None -> ());
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.sock; t.stop_r; t.stop_w ]
  end

(* ---- client ---- *)

let http_get ~host ~port ~path =
  match
    let addr = resolve_host host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO 5.0;
        Unix.setsockopt_float sock Unix.SO_SNDTIMEO 5.0;
        Unix.connect sock (Unix.ADDR_INET (addr, port));
        write_all sock
          (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n" path host);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          let n = Unix.read sock chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
          end
        in
        drain ();
        Buffer.contents buf)
  with
  | resp -> (
      (* Split headers from body at the first blank line; demand a 200. *)
      let sep = "\r\n\r\n" in
      let split_at i = String.sub resp (i + String.length sep) (String.length resp - i - String.length sep) in
      let rec find i =
        if i + String.length sep > String.length resp then None
        else if String.sub resp i (String.length sep) = sep then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> Error "malformed HTTP response (no header terminator)"
      | Some i -> (
          match String.split_on_char ' ' (List.hd (String.split_on_char '\r' resp)) with
          | _ :: "200" :: _ -> Ok (split_at i)
          | _ :: code :: _ -> Error (Printf.sprintf "HTTP %s" code)
          | _ -> Error "malformed HTTP status line"))
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e))
  | exception Exit -> Error "connection closed mid-write"

(* ---- on-signal introspection ---- *)

let sigusr1_installed = ref false

let install_sigusr1_dump () =
  if not !sigusr1_installed then begin
    sigusr1_installed := true;
    try
      Sys.set_signal Sys.sigusr1
        (Sys.Signal_handle
           (fun _ ->
             let fields =
               [
                 ("ts_epoch_s", Json.Float (Clock.epoch_s ()));
                 ("work", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (Work.totals ())));
                 ("snapshot", Metrics.snapshot ());
               ]
             in
             if Sink.active () then begin
               Sink.event "metrics.sigusr1" fields;
               (* The sink batches; a signal-triggered dump must land now —
                  the operator is watching the stream. *)
               Sink.flush_installed ()
             end
             else
               prerr_endline
                 (Json.to_string
                    (Json.Obj (("event", Json.String "metrics.sigusr1") :: fields)))))
    with Invalid_argument _ | Sys_error _ -> ()
  end
