(** Process-wide metrics registry: counters, gauges, timers and log-scale
    histograms with p50/p90/p99 estimates.

    Zero-cost-when-disabled: handles are registered once (module init) and
    every hot-path operation is a single flag load when the registry is off —
    no allocation, no formatting, no clock read. Enable with {!enable} or by
    setting [WX_METRICS=1] in the environment.

    Domain-safe: counters and gauges are atomics (concurrent {!incr}/{!add}
    from Wx_par worker domains never lose updates), and each histogram keeps
    a lock-free per-domain shard, merged when read ({!snapshot},
    {!quantile}, {!render}).

    Concurrent-read contract (the [Expose] exposition domain scrapes while
    the pool is hot): a snapshot raced against live workers is memory-safe
    and internally consistent — histogram counts are derived from the merged
    bucket mass the quantile walk sees, and min/max that have visibly not
    caught up with an in-flight observation are re-derived from the occupied
    bucket range — but it may trail the writers by a few observations.
    Exact totals still require reading after parallel sections have
    joined, which is when the bench runner takes its per-experiment
    snapshots. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type counter
type gauge
type histogram
type timer

(** Registration (idempotent per name; cheap, but keep it off hot paths —
    the intended pattern is one module-level handle per instrument). *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val timer : string -> timer
(** A timer is a histogram of nanosecond durations named ["<name>.ns"]. *)

(** Hot-path operations — all no-ops while disabled. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record a positive value into its power-of-two bucket. *)

val touch : histogram -> unit
(** Create the calling domain's shard without recording an observation, so
    later observes from this domain allocate nothing. Pool workers call
    this at entry to keep per-run allocation counts deterministic under
    dynamic chunk stealing. No-op while disabled. *)

val touch_timer : timer -> unit
(** [touch] for a timer's underlying histogram. *)

val start : unit -> int
(** Raw monotonic stamp for manual timing; returns 0 while disabled. *)

val stop : timer -> int -> unit
(** Record the ns elapsed since [start]'s stamp; no-op on a 0 stamp. *)

val observe_ns : timer -> int -> unit
(** Record an already-measured duration in nanoseconds (clamped to 0); for
    callers sharing raw clock reads with the trace exporter. *)

val time : timer -> (unit -> 'a) -> 'a
(** Time a closure (exception-safe); calls it untimed while disabled. *)

(** Reading. *)

val counter_value : counter -> int
(** The counter's running total since the last {!reset}. Cheap (one atomic
    load) and valid whether or not the registry is enabled — the work-unit
    layer reads deltas mid-run where a {!snapshot} would be too heavy. *)

val quantile : histogram -> float -> float
(** Bucket-interpolated quantile estimate ([q] in [0,1]); NaN when empty.
    Accurate to the power-of-two bucket, clamped to the observed range. *)

val reset : unit -> unit
(** Zero every instrument's state, keeping registrations. *)

val snapshot : unit -> Json.t
(** JSON object [{counters; gauges; histograms; timers}] restricted to
    instruments that recorded something. *)

val render : unit -> string
(** Human-readable snapshot, one line per instrument. *)
