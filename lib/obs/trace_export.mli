(** Chrome trace-event ("catapult") timeline export.

    While enabled, timestamped slices accumulate in per-domain lock-free
    buffers; {!to_json} renders them as trace-event JSON loadable by
    chrome://tracing or Perfetto, with one named [tid] track per Wx_par
    worker slot (tid 0 = the calling/main domain). Recording is guarded by
    one atomic flag (also set by [WX_TRACE=1]), so instrumented code — the
    domain pool, {!Span} — costs a flag load while tracing is off.

    Buffers are bounded (2^20 slices per domain); overflow drops new slices
    and is reported in the exported [otherData.dropped] field. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val slice :
  ?args:(string * Json.t) list ->
  tid:int ->
  name:string ->
  t0_ns:int ->
  dur_ns:int ->
  unit ->
  unit
(** Record one complete slice on track [tid]. [t0_ns] is a {!Clock.now_ns}
    stamp; negative durations are clamped to 0. No-op while disabled. *)

val counter : ?tid:int -> name:string -> t_ns:int -> (string * float) list -> unit
(** Record one counter ([ph = "C"]) sample: a named series of values at
    one instant, rendered by the viewer as a stacked counter track. The GC
    heap track ({!Span}, {!Memgc}) goes through this. No-op while
    disabled. *)

val reset : unit -> unit
(** Discard all recorded slices (buffers stay registered). Call only after
    parallel sections have joined. *)

val to_json : unit -> Json.t
(** The full trace: [{traceEvents; displayTimeUnit; otherData}] with
    process/thread metadata events ([ph = "M"]) followed by complete events
    ([ph = "X"], [ts]/[dur] in microseconds) sorted by start time. *)

val write : string -> unit
(** [write path] saves {!to_json} (compact, single line) to [path]. *)
