(** Live ops surface: pull-based, in-process exposition of the {!Metrics} /
    {!Work} registry over localhost HTTP/1.0 (stdlib [Unix] only).

    Every other layer of the observability stack is post-hoc — reports,
    traces and ledgers exist only after the process exits. [Expose] serves
    the {e live} registry so an operator can attach to a long broadcast or
    expansion run without killing it:

    - [GET /metrics] — Prometheus text exposition (version 0.0.4):
      registry counters and gauges, histogram/timer quantile summaries,
      a labeled [wx_build_info] gauge, [wx_uptime_seconds], and per-kind
      [wx_work_units_per_second] gauges derived from the {!Work} deltas
      between successive scrapes of this endpoint.
    - [GET /json] (also [/] and [/metrics.json]) — a JSON snapshot reusing
      the {!Json} codec: schema ["wx-expose/1"], uptime, build provenance,
      work totals and the full {!Metrics.snapshot}.

    The server runs on its own dedicated domain, so scrapes never block
    pool workers or the main computation; {!Metrics.snapshot} is hardened
    to merge DLS histogram shards while the pool is hot (see the
    concurrent-read contract in {!Metrics}). Serving reads the registry
    through atomic loads only — exposition never perturbs computed values,
    witnesses, or the deterministic minor-word counts the bench alloc gate
    compares (server-side allocation happens on the exposition domain,
    which never credits {!Memgc}'s foreign accumulator). *)

type t

val start : ?host:string -> port:int -> unit -> (t, string) result
(** Bind [host] (default ["127.0.0.1"]) : [port] ([0] picks an ephemeral
    port — see {!port}), spawn the server domain, and start serving.
    [Error msg] on bind/listen failure (port in use, privileged port, no
    such interface) — the caller decides whether that is fatal; [wx]
    prints a warning and keeps computing. Does not enable the registry:
    callers that want live numbers should also call {!Metrics.enable}. *)

val port : t -> int
(** The actually-bound port (meaningful when [start] was given port 0). *)

val stop : t -> unit
(** Wake the server domain, join it, and close the listening socket.
    Idempotent — safe to call both from the normal shutdown path and from
    an [at_exit] hook on the signal-exit path. *)

val uptime_s : t -> float
(** Seconds since [start] returned this server. *)

(** {2 Renderers}

    Pure page builders over the live registry, exported so tests can check
    well-formedness and text/JSON agreement without a socket. Both publish
    the [wx.uptime_seconds] and [wx.build_info] gauges into the default
    registry before snapshotting, so the two surfaces stay in sync. *)

val prometheus_page : ?rates:(string * float) list -> uptime_s:float -> unit -> string
(** Prometheus text exposition of the current registry. [rates] adds one
    [wx_work_units_per_second{kind="..."}] gauge sample per entry (the
    server passes scrape-delta rates; tests pass synthetic ones). *)

val json_page : uptime_s:float -> unit -> string
(** Compact one-line JSON snapshot (schema ["wx-expose/1"]). *)

val scrape_rates :
  prev:(int * (string * int) list) option ->
  now_ns:int ->
  work:(string * int) list ->
  (string * float) list
(** Per-kind units/sec between two {!Work.totals} readings [prev]
    (timestamp, totals) and [now_ns]/[work]; [[]] when [prev] is [None]
    (first scrape) or the interval is empty. Deltas gone negative (a
    {!Metrics.reset} landed between scrapes) clamp to [0.]. *)

(** {2 Client} *)

val http_get : host:string -> port:int -> path:string -> (string, string) result
(** Minimal HTTP/1.0 GET returning the response body on a 200, used by
    [wx top] and the test suite (5s socket timeouts; never raises). *)

(** {2 On-signal introspection} *)

val install_sigusr1_dump : unit -> unit
(** Install (once per process) a SIGUSR1 handler that dumps a one-shot
    ["metrics.sigusr1"] event — epoch timestamp, {!Work.totals} and the
    full {!Metrics.snapshot} — to the installed NDJSON {!Sink} (flushed
    immediately), or to stderr as one NDJSON line when no sink is
    installed. Gives processes started without [--expose] a way to be
    inspected: [kill -USR1 <pid>]. No-op on platforms without SIGUSR1. *)
