(** Structured event sink: named events with JSON fields, rendered as
    pretty one-liners or NDJSON (one JSON object per line).

    One process-wide sink can be installed; library emitters must guard with
    [if Sink.active () then Sink.event ...] so field lists are never built
    when nobody listens.

    Writes are batched: the channel is flushed every 64 events, on
    {!uninstall} / {!with_sink} exit, on {!flush_installed}, and by a
    one-time [at_exit] hook registered by {!install} — so interrupted runs
    that still reach [exit] (wx converts SIGINT/SIGTERM) emit every
    buffered event rather than truncated output. *)

type format = Pretty | Ndjson

type t

val make : ?fmt:format -> out_channel -> t
(** Default format is [Ndjson]. *)

val install : t -> unit
(** Also registers (once per process) an [at_exit] that flushes whatever
    sink is installed at exit time. *)

val uninstall : unit -> unit
(** Flushes the installed sink before removing it. *)

val active : unit -> bool
val installed : unit -> t option

val flush_installed : unit -> unit
(** Flush the installed sink's channel, if any; never raises (a channel
    already closed by its owner is recorded and skipped thereafter). *)

val event : string -> (string * Json.t) list -> unit
(** Emit to the installed sink, if any. NDJSON lines carry the event name
    as an ["event"] field. *)

val emit_to : t -> string -> (string * Json.t) list -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, restoring the previous
    sink afterwards. *)
