(** Structured event sink: named events with JSON fields, rendered as
    pretty one-liners or NDJSON (one JSON object per line, flushed).

    One process-wide sink can be installed; library emitters must guard with
    [if Sink.active () then Sink.event ...] so field lists are never built
    when nobody listens. *)

type format = Pretty | Ndjson

type t

val make : ?fmt:format -> out_channel -> t
(** Default format is [Ndjson]. *)

val install : t -> unit
val uninstall : unit -> unit
val active : unit -> bool
val installed : unit -> t option

val event : string -> (string * Json.t) list -> unit
(** Emit to the installed sink, if any. NDJSON lines carry the event name
    as an ["event"] field. *)

val emit_to : t -> string -> (string * Json.t) list -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, restoring the previous
    sink afterwards. *)
