(** Offline analysis of Chrome-trace files: aggregate span profiles,
    differential profiling ([wx prof diff]) and collapsed-stack
    (flamegraph) export ([wx prof --folded]).

    {!Trace_export} writes timelines; this module reads them back. A
    trace's complete ("X") slices nest by time containment per track
    (tid), so one interval-stack pass per track recovers each slice's
    parent stack; from those come per-span SELF costs (total minus
    children — the number that localizes a regression) and the
    ["frame;frame;leaf value"] lines flamegraph.pl / speedscope
    consume. All outputs are deterministic for fixed input files. *)

type row = {
  r_name : string;
  r_tid : int;
  r_t0_us : float;
  r_dur_us : float;
  r_minor_words : float;  (** 0 when the slice was not alloc-tagged *)
}

val rows_of_json : Json.t -> (row list, string) result
(** Extract the complete ("X") events of a catapult document; metadata
    and counter events are skipped. [Error] on missing [traceEvents] or
    a malformed X event — the diff gate needs "not a trace" as data. *)

val load : string -> (row list, string) result
(** Read and decode a trace file; [Error] (prefixed with the path) on
    IO, parse, or shape problems. Never raises. *)

type agg = {
  a_name : string;
  a_calls : int;
  a_total_us : float;
  a_self_us : float;
  a_minor_words : float;
  a_self_minor_words : float;
}

val profile : row list -> agg list
(** Aggregate slices by name after containment nesting, sorted by self
    time descending (ties by name). Self = duration minus directly
    contained children, clamped at 0. *)

val folded : row list -> string
(** Collapsed-stack rendering: one ["root;…;leaf self_us"] line per
    distinct stack (integer microseconds, identical stacks pre-merged),
    sorted, trailing newline; [""] for an empty trace. Stacks are
    rooted at the track name ([main] / [worker-N]). *)

(** {2 Differential profile} *)

type pdelta = {
  p_name : string;
  p_calls_old : int;  (** 0 when new-only *)
  p_calls_new : int;  (** 0 when old-only *)
  p_old_self_us : float;
  p_new_self_us : float;
  p_delta_self_us : float;  (** new − old; an absent side counts as 0 *)
  p_old_self_minor : float;
  p_new_self_minor : float;
  p_delta_self_minor : float;
}

val diff_profiles : old_:agg list -> new_:agg list -> pdelta list
(** One delta per span name on either side, regression-first (self-time
    delta descending, ties by name) — the head of the list is where the
    time went. *)

val default_self_tolerance : float
(** 0.25 — a span's self time must grow 25% to count. *)

val default_min_delta_us : float
(** 1000 — and by at least 1ms in absolute terms; tiny spans double on
    scheduler noise alone. *)

val pdelta_regressed : ?tolerance:float -> ?min_delta_us:float -> pdelta -> bool
(** True when the span's self time grew beyond both the relative
    tolerance and the absolute floor. Spans absent on the old side
    regress when their new self time alone exceeds the floor. *)
