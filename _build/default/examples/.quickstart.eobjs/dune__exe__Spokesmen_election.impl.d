examples/spokesmen_election.ml: Bipartite Constructions Expansion Format Gen List Spokesmen Util Wireless_expanders
