examples/worst_case_broadcast.ml: Array Constructions Expansion Format Gen Graph List Radio Util Wireless_expanders
