examples/spokesmen_election.mli:
