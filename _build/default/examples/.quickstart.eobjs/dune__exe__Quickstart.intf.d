examples/quickstart.mli:
