examples/radio_broadcast.ml: Array Constructions Format Gen Graph List Printf Radio Util Wireless_expanders
