examples/worst_case_broadcast.mli:
