examples/low_arboricity.ml: Arboricity Expansion Gen Graph List Util Wireless_expanders
