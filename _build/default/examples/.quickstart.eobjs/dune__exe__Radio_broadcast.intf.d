examples/radio_broadcast.mli:
