examples/low_arboricity.mli:
