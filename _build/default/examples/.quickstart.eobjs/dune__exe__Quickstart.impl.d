examples/quickstart.ml: Array Bipartite Constructions Expansion Float Format Graph Spokesmen Util Wireless_expanders
