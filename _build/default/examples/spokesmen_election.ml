(* The Spokesmen Election problem (§4.2.1): given a bipartite (S, N, E),
   find S' ⊆ S maximizing the number of uniquely covered N-vertices.

   Runs every solver in the library on three workload shapes and prints the
   achieved coverage next to the paper's guarantees and — where feasible —
   the exact optimum.

   Run with:  dune exec examples/spokesmen_election.exe *)

open Wireless_expanders.Api
module Solver = Spokesmen.Solver

let report name inst =
  let rng = Util.Rng.create 2024 in
  let gamma = Bipartite.n_count inst in
  Format.printf "%s: %a@." name Bipartite.pp inst;
  let results = Spokesmen.Portfolio.solve_each ~reps:64 rng inst in
  List.iter
    (fun (sname, r) ->
      Format.printf "  %-22s covers %4d / %d  (%.1f%%)@." sname r.Solver.covered gamma
        (100.0 *. float_of_int r.Solver.covered /. float_of_int gamma))
    results;
  (* Guarantees from the paper, in absolute vertices. *)
  let delta_n = Bipartite.delta_n inst in
  let fg = float_of_int gamma in
  Format.printf "  paper guarantees: γ/(9·log 2δ) = %.1f   γ/(8δ) = %.1f   CW γ/log|S| = %.1f@."
    (fg *. Expansion.Bounds.near_optimal_fraction ~delta_n)
    (fg *. Expansion.Bounds.partition_fraction ~delta_n)
    (fg *. Expansion.Bounds.chlamtac_weinstein_fraction ~s_size:(Bipartite.s_count inst));
  if Bipartite.s_count inst <= 18 then begin
    let opt = Spokesmen.Exact.optimum inst in
    Format.printf "  exact optimum (NP-hard, brute force): %d@." opt
  end;
  print_newline ()

let () =
  print_endline "=== Spokesmen election ===\n";

  (* Workload 1: a sensor-field style instance — informed cluster S in a
     grid, N its boundary (the shape that arises in broadcast frontiers). *)
  let g = Gen.grid 12 12 in
  let r = Util.Rng.create 5 in
  let informed = Util.Bitset.of_array 144 (Util.Rng.sample_without_replacement r 144 30) in
  let inst, _, _ = Bipartite.of_set_neighborhood g informed in
  report "grid frontier (sensor field)" inst;

  (* Workload 2: the adversarial core graph, where every solver is capped
     at a 2/log(2s) fraction. *)
  report "core graph s=32 (adversarial)" (Constructions.Core_graph.bip (Constructions.Core_graph.create 32));

  (* Workload 3: a skewed random bipartite instance (hub-heavy degrees),
     like access points serving many clients. *)
  let inst = Gen.random_bipartite_sdeg (Util.Rng.create 9) ~s:16 ~n:120 ~d:9 in
  report "random hubs 16x120, degree 9" inst
