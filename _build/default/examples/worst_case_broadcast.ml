(* The negative result, felt operationally: plant a generalized core graph
   on a host expander (Corollary 4.11) and watch broadcast from inside S*
   slow down relative to broadcast on the clean host, even though the
   composed graph's ordinary expansion is essentially unchanged.

   Run with:  dune exec examples/worst_case_broadcast.exe *)

open Wireless_expanders.Api

let broadcast_stats name g source seeds =
  let times =
    List.filter_map
      (fun seed ->
        let o =
          Radio.Sim.run ~max_rounds:50_000 g ~source Radio.Decay_protocol.protocol
            (Util.Rng.create seed)
        in
        if o.Radio.Sim.completed then Some o.Radio.Sim.rounds else None)
      seeds
  in
  let arr = Util.Stats.of_ints (Array.of_list times) in
  Format.printf "  %-28s completed %d/%d, rounds: %a@." name (List.length times)
    (List.length seeds) Util.Stats.pp_summary (Util.Stats.summarize arr)

let () =
  print_endline "=== Worst-case expanders slow broadcast down ===\n";
  let rng = Util.Rng.create 20180218 in
  let host = Gen.random_regular rng 96 24 in
  let wc = Constructions.Worst_case.create rng ~eps:0.4 ~host ~host_beta:0.5 in
  let g = wc.Constructions.Worst_case.graph in
  Format.printf "host: %a@." Graph.pp host;
  Format.printf "composed G̃: %a  (S* size %d)@." Graph.pp g
    (Util.Bitset.cardinal wc.Constructions.Worst_case.s_star);
  Format.printf "predicted β̃ = %.3f; exact wireless expansion at S* = %.3f@.@."
    (Constructions.Worst_case.predicted_beta_tilde wc)
    (Constructions.Worst_case.s_star_wireless_exact wc);

  let seeds = List.init 15 (fun i -> 500 + i) in
  print_endline "decay broadcast from a host vertex:";
  broadcast_stats "host alone" host 0 seeds;
  broadcast_stats "composed G̃" g 0 seeds;

  print_endline "\ndecay broadcast from inside the planted S*:";
  let s_star_vertex = Util.Bitset.choose wc.Constructions.Worst_case.s_star in
  broadcast_stats "G̃ from S*" g s_star_vertex seeds;

  (* The collapse is a per-round phenomenon: if the whole of S* holds the
     message, how many neighbors can hear it in ONE round, compared with how
     many neighbors S* has? Both sides exactly. *)
  let s_star = wc.Constructions.Worst_case.s_star in
  let reachable =
    Util.Bitset.cardinal (Expansion.Nbhd.gamma_minus g s_star)
  in
  let one_round =
    (* max over S′ ⊆ S* of uniquely-covered neighbors — the tree DP. *)
    Constructions.Gen_core.max_unique_exact wc.Constructions.Worst_case.core
  in
  Format.printf
    "@.per-round view with frontier = S*: |Γ⁻(S*)| = %d neighbors, but at most %d@.\
     can be informed in any single round (exact) — a %.0f%%-per-round tax that the@.\
     end-to-end decay times above absorb at this small plant size (|S*| = %d), and@.\
     that grows as Θ(ε³·log) with the construction's parameters.@."
    reachable one_round
    (100.0 *. (1.0 -. (float_of_int one_round /. float_of_int reachable)))
    (Util.Bitset.cardinal s_star);

  (* Bonus: the bipartite variant of the remark stays bipartite. *)
  let host2 = Gen.complete_bipartite 48 48 in
  let _, l, r =
    Constructions.Worst_case.create_bipartite (Util.Rng.create 7) ~eps:0.4 ~host:host2
      ~host_beta:0.5
  in
  Format.printf "@.bipartite variant: sides %d / %d, still bipartite — the remark's balance trick.@."
    (Util.Bitset.cardinal l) (Util.Bitset.cardinal r)
