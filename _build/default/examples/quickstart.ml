(* Quickstart: build the paper's constructions and measure all three
   expansion notions on them.

   Run with:  dune exec examples/quickstart.exe *)

open Wireless_expanders.Api

let () =
  print_endline "=== Wireless Expanders: quickstart ===\n";

  (* 1. The motivating example C+: a clique plus a source. Ordinary
     expansion is fine, unique-neighbor expansion is zero, wireless
     expansion is fine — the separation that motivates the paper. *)
  let g = Constructions.Cplus.create 8 in
  Format.printf "C+ graph: %a@." Graph.pp g;
  let beta = Expansion.Measure.beta_exact g in
  let beta_u = Expansion.Measure.beta_u_exact g in
  let beta_w = Expansion.Measure.beta_w_exact g in
  Format.printf "  ordinary expansion  β  = %.3f@." beta.Expansion.Measure.value;
  Format.printf "  unique expansion    βu = %.3f (witness %s)@." beta_u.Expansion.Measure.value
    (Util.Bitset.to_string beta_u.Expansion.Measure.witness);
  Format.printf "  wireless expansion  βw = %.3f@." beta_w.Expansion.Measure.value;
  Format.printf "  ⇒ β ≥ βw ≥ βu (Observation 2.1), with βu collapsing but βw surviving.@.@.";

  (* 2. The core graph of Lemma 4.4: ordinary expansion log(2s) but wireless
     expansion only a 2/log(2s) fraction of it. *)
  let s = 64 in
  let cg = Constructions.Core_graph.create s in
  let t = Constructions.Core_graph.bip cg in
  Format.printf "Core graph, s = %d: %a@." s Bipartite.pp t;
  let log2s = Util.Floatx.log2 (2.0 *. float_of_int s) in
  let mins = Constructions.Core_graph.dp_min_coverage cg in
  let worst = ref infinity in
  for k = 1 to s do
    worst := Float.min !worst (float_of_int mins.(k) /. float_of_int k)
  done;
  Format.printf "  one-sided expansion (exact, tree DP): %.3f  (Lemma 4.4 promises ≥ %.3f)@."
    !worst log2s;
  let cap = Constructions.Core_graph.dp_max_unique cg in
  Format.printf "  max unique coverage (exact, tree DP): %d  (Lemma 4.4 caps it at 2s = %d)@."
    cap (2 * s);
  Format.printf "  ⇒ wireless expansion ≤ %.3f = β·(2/log 2s): the negative result's core.@.@."
    (float_of_int cap /. float_of_int s);

  (* 3. Solve a spokesmen election instance on the core graph with the
     paper's decay sampler and compare against the exact optimum. *)
  let small = Constructions.Core_graph.create 8 in
  let inst = Constructions.Core_graph.bip small in
  let rng = Util.Rng.create 42 in
  let decay = Spokesmen.Decay.solve ~reps:64 rng inst in
  let exact = Spokesmen.Exact.solve inst in
  Format.printf "Spokesmen election on core(s=8): decay sampler %d vs optimum %d (of |N| = %d)@."
    decay.Spokesmen.Solver.covered exact.Spokesmen.Solver.covered (Bipartite.n_count inst);
  Format.printf "  chosen spokesmen: %s@."
    (Util.Bitset.to_string decay.Spokesmen.Solver.chosen);

  print_endline "\nDone. See examples/radio_broadcast.exe and bench/main.exe for more."
