(* The low-arboricity corollary (§1.2): on graphs of bounded arboricity —
   planar graphs, grids, trees — the wireless expansion matches the
   ordinary expansion up to a constant, because the Theorem 1.1 deviation
   factor log(2·min{∆/β, ∆·β}) is bounded by the (constant) arboricity.

   This example measures, for each family, exact β and βw on instances
   small enough for exact computation, and prints the ratio β/βw next to
   the arboricity. Low-arboricity families show O(1) ratios; the clique
   control shows the ratio growing.

   Run with:  dune exec examples/low_arboricity.exe *)

open Wireless_expanders.Api

let () =
  print_endline "=== Low-arboricity graphs: βw ≈ β ===\n";
  let t =
    Util.Table.create
      [ "graph"; "n"; "arboricity"; "β"; "βw"; "β/βw"; "thm 1.1 factor" ]
  in
  let instances =
    [
      ("path-12", Gen.path 12);
      ("cycle-12", Gen.cycle 12);
      ("grid-3x4", Gen.grid 3 4);
      ("tree-depth3", Gen.binary_tree 3);
      ("torus-3x4", Gen.torus 3 4);
      ("clique-12 (control)", Gen.complete 12);
      ("K6,6 (control)", Gen.complete_bipartite 6 6);
    ]
  in
  List.iter
    (fun (name, g) ->
      let beta = (Expansion.Measure.beta_exact g).Expansion.Measure.value in
      let beta_w = (Expansion.Measure.beta_w_exact g).Expansion.Measure.value in
      let arb = Arboricity.exact g in
      let delta = Graph.max_degree g in
      let factor = Expansion.Bounds.theorem_1_1_denominator ~beta ~delta in
      Util.Table.add_row t
        [
          name;
          Util.Table.fi (Graph.n g);
          Util.Table.fi arb;
          Util.Table.ff beta;
          Util.Table.ff beta_w;
          Util.Table.fr beta beta_w;
          Util.Table.ff ~dec:2 factor;
        ])
    instances;
  Util.Table.print t;
  print_newline ();
  print_endline
    "Reading: on the low-arboricity families the theorem's deviation factor —\n\
     log(2·min{∆/β, ∆·β}), bounded by the arboricity — stays O(1), so βw tracks β.\n\
     On the dense controls the factor (and the β/βw gap it permits) grows."
