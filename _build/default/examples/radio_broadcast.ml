(* Radio broadcast on collision-prone networks.

   Demonstrates:
   - flooding stalling forever on C+ (the paper's opening example);
   - the Decay protocol and the wireless-expander-guided spokesmen
     broadcast completing, on both a benign expander and the Section 5
     lower-bound chain;
   - the measured broadcast time on the chain sitting above the paper's
     Ω(D·log(n/D)) lower bound.

   Run with:  dune exec examples/radio_broadcast.exe *)

open Wireless_expanders.Api

let run_and_report name g source protocol seed ~max_rounds =
  let o = Radio.Sim.run ~max_rounds g ~source protocol (Util.Rng.create seed) in
  Format.printf "  %-16s %s after %d rounds (informed %d/%d, collisions %d)@." name
    (if o.Radio.Sim.completed then "completed" else "STALLED")
    o.Radio.Sim.rounds o.Radio.Sim.informed_final (Graph.n g) o.Radio.Sim.collisions;
  o

let () =
  print_endline "=== Radio broadcast demos ===\n";

  (* 1. C+ — flooding fails, smarter protocols succeed. *)
  let g = Constructions.Cplus.create 16 in
  let src = Constructions.Cplus.source g in
  Format.printf "C+ (clique of 16 + source):@.";
  let _ = run_and_report "flood" g src Radio.Flood.protocol 1 ~max_rounds:200 in
  let _ = run_and_report "decay" g src Radio.Decay_protocol.protocol 1 ~max_rounds:2000 in
  let _ = run_and_report "spokesmen-cast" g src Radio.Spokesmen_cast.protocol 1 ~max_rounds:200 in
  print_newline ();

  (* 1b. The anatomy of the stall, as a per-round trace. *)
  print_endline "flood on C+ (first 8 rounds, traced):";
  let tr =
    Radio.Trace.run ~max_rounds:8 g ~source:src Radio.Flood.protocol (Util.Rng.create 1)
  in
  print_string (Radio.Trace.render tr);
  Printf.printf "stalled rounds (tx > 0, no reception): %d\n\n" (Radio.Trace.stalled_rounds tr);

  (* 2. A benign expander. *)
  let g = Gen.random_regular (Util.Rng.create 7) 64 4 in
  Format.printf "Random 4-regular graph on 64 vertices:@.";
  let _ = run_and_report "decay" g 0 Radio.Decay_protocol.protocol 2 ~max_rounds:5000 in
  let _ = run_and_report "spokesmen-cast" g 0 Radio.Spokesmen_cast.protocol 2 ~max_rounds:500 in
  print_newline ();

  (* 3. The Section 5 lower-bound chain. *)
  let copies = 4 and s = 16 in
  let ch = Constructions.Broadcast_chain.create (Util.Rng.create 11) ~copies ~s in
  let g = ch.Constructions.Broadcast_chain.graph in
  let n = Graph.n g in
  let d = Constructions.Broadcast_chain.diameter_estimate ch in
  Format.printf "Broadcast chain (D/2 = %d copies of core(s=%d), n = %d, diameter ≈ %d):@."
    copies s n d;
  let lb = Constructions.Broadcast_chain.paper_round_lb ch in
  Format.printf "  paper lower bound: %.1f rounds (Cor 5.1: %.2f per hop × %d hops)@." lb
    (Util.Floatx.log2 (2.0 *. float_of_int s) /. 4.0)
    copies;
  let o1 = run_and_report "decay" g 0 Radio.Decay_protocol.protocol 3 ~max_rounds:20000 in
  let o2 = run_and_report "spokesmen-cast" g 0 Radio.Spokesmen_cast.protocol 3 ~max_rounds:5000 in
  Format.printf "  measured/lower-bound ratio: decay %.2f, spokesmen %.2f@."
    (float_of_int o1.Radio.Sim.rounds /. lb)
    (float_of_int o2.Radio.Sim.rounds /. lb);

  (* 4. Monte-Carlo distribution of broadcast times over seeds. *)
  let seeds = List.init 20 (fun i -> 100 + i) in
  let _, outs = Radio.Sim.monte_carlo g ~source:0 Radio.Decay_protocol.protocol ~seeds in
  let times =
    Util.Stats.of_ints (Array.of_list (List.map (fun o -> o.Radio.Sim.rounds) outs))
  in
  Format.printf "  decay over %d seeds: %a@." (List.length seeds) Util.Stats.pp_summary
    (Util.Stats.summarize times);
  Format.printf "  (every sample must exceed the Ω(D log(n/D)) bound — min/lb = %.2f)@."
    (Util.Stats.min times /. lb)
