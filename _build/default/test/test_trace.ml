module Trace = Wx_radio.Trace
module Gen = Wx_graph.Gen
open Common

let test_trace_records_rounds () =
  let g = Gen.path 5 in
  let t = Trace.run g ~source:0 Wx_radio.Flood.protocol (rng ~salt:190 ()) in
  check_true "completed" t.Trace.completed;
  check_int "4 rounds on the path" 4 (List.length t.Trace.rounds);
  (* Informed totals monotone, final = n. *)
  let prev = ref 1 in
  List.iter
    (fun r ->
      check_true "monotone" (r.Trace.informed_total >= !prev);
      prev := r.Trace.informed_total)
    t.Trace.rounds;
  check_int "final" 5 !prev

let test_trace_flood_stall_signature () =
  let g = Wx_constructions.Cplus.create 10 in
  let t =
    Trace.run ~max_rounds:50 g ~source:(Wx_constructions.Cplus.source g)
      Wx_radio.Flood.protocol (rng ~salt:191 ())
  in
  check_true "stalls" (not t.Trace.completed);
  (* After round 1 every round transmits but informs no one. *)
  check_true "stall signature" (Trace.stalled_rounds t >= 45)

let test_trace_render () =
  let g = Gen.star 6 in
  let t = Trace.run g ~source:0 Wx_radio.Flood.protocol (rng ~salt:192 ()) in
  let s = Trace.render t in
  check_true "has round line" (String.length s > 20);
  check_true "reports completion"
    (let rec contains i =
       i + 9 <= String.length s && (String.sub s i 9 = "completed" || contains (i + 1))
     in
     contains 0)

let test_globally_phased_decay_completes () =
  let g = Gen.random_regular (rng ~salt:193 ()) 32 4 in
  let o =
    Wx_radio.Sim.run ~max_rounds:20_000 g ~source:0 Wx_radio.Decay_protocol.globally_phased
      (rng ~salt:194 ())
  in
  check_true "completes" o.Wx_radio.Sim.completed

let test_run_all_quick_holds () =
  let checks = Wireless_expanders.Theorems.run_all ~quick:true (rng ~salt:195 ()) in
  check_true "nonempty" (List.length checks > 30);
  List.iter
    (fun c ->
      if not c.Wireless_expanders.Theorems.holds then
        Alcotest.failf "claim violated: %s on %s" c.Wireless_expanders.Theorems.claim
          c.Wireless_expanders.Theorems.instance)
    checks

let test_run_all_deterministic () =
  let a = Wireless_expanders.Theorems.run_all ~quick:true (Wx_util.Rng.create 3) in
  let b = Wireless_expanders.Theorems.run_all ~quick:true (Wx_util.Rng.create 3) in
  check_int "same count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      check_true "same measured"
        (Wx_util.Floatx.approx_equal ~eps:1e-12 x.Wireless_expanders.Theorems.measured
           y.Wireless_expanders.Theorems.measured))
    a b

let test_trace_spokesmen_cast () =
  let g = Gen.grid 4 4 in
  let t = Trace.run g ~source:0 Wx_radio.Spokesmen_cast.protocol (rng ~salt:196 ()) in
  check_true "completes" t.Trace.completed;
  check_int "population recorded" 16 t.Trace.population

let suite =
  [
    Alcotest.test_case "trace records rounds" `Quick test_trace_records_rounds;
    Alcotest.test_case "flood stall signature" `Quick test_trace_flood_stall_signature;
    Alcotest.test_case "trace render" `Quick test_trace_render;
    Alcotest.test_case "globally phased decay" `Quick test_globally_phased_decay_completes;
    Alcotest.test_case "Theorems.run_all quick" `Slow test_run_all_quick_holds;
    Alcotest.test_case "run_all deterministic" `Slow test_run_all_deterministic;
    Alcotest.test_case "trace spokesmen-cast" `Quick test_trace_spokesmen_cast;
  ]
