module Nbhd = Wx_expansion.Nbhd
module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
open Common

let path5 = Gen.path 5

let set l = Bitset.of_list 5 l

let test_gamma () =
  (* Γ({1,2}) on a path includes 0,1,2,3 (neighbors may be inside S). *)
  check_true "gamma" (Bitset.elements (Nbhd.gamma path5 (set [ 1; 2 ])) = [ 0; 1; 2; 3 ])

let test_gamma_minus () =
  check_true "gamma-" (Bitset.elements (Nbhd.gamma_minus path5 (set [ 1; 2 ])) = [ 0; 3 ])

let test_gamma1 () =
  (* On cycle 5, S = {0, 2}: vertex 1 sees both → not unique; 3 sees only 2;
     4 sees only 0. *)
  let c5 = Gen.cycle 5 in
  check_true "gamma1" (Bitset.elements (Nbhd.gamma1 c5 (set [ 0; 2 ])) = [ 3; 4 ])

let test_gamma1_excluding () =
  (* S = {0,2}, S' = {0}: vertices outside S with exactly one neighbor in S':
     1 and 4 both see 0 only. *)
  let c5 = Gen.cycle 5 in
  let s = set [ 0; 2 ] and s' = set [ 0 ] in
  check_true "Γ¹_S(S')" (Bitset.elements (Nbhd.gamma1_excluding c5 s s') = [ 1; 4 ])

let test_gamma1_excluding_requires_subset () =
  Alcotest.check_raises "subset"
    (Invalid_argument "Nbhd.gamma1_excluding: S' must be a subset of S") (fun () ->
      ignore (Nbhd.gamma1_excluding path5 (set [ 0 ]) (set [ 1 ])))

let test_deg_in () =
  check_int "deg_in" 2 (Nbhd.deg_in path5 1 (set [ 0; 2 ]));
  check_int "deg_in zero" 0 (Nbhd.deg_in path5 4 (set [ 0; 1 ]))

let test_expansion_of_set () =
  check_float "path mid" 1.0 (Nbhd.expansion_of_set path5 (set [ 1; 2 ]));
  check_true "empty set nan" (Float.is_nan (Nbhd.expansion_of_set path5 (Bitset.create 5)))

let test_unique_expansion_of_set () =
  let c5 = Gen.cycle 5 in
  check_float "cycle" 1.0 (Nbhd.unique_expansion_of_set c5 (set [ 0; 2 ]))

(* --- bipartite --- *)

let inst = Bipartite.of_edges ~s:3 ~n:4 [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2); (2, 3) ]

let test_bip_covered () =
  let s' = Bitset.of_list 3 [ 0; 2 ] in
  check_true "covered" (Bitset.elements (Nbhd.Bip.covered inst s') = [ 0; 1; 2; 3 ])

let test_bip_unique () =
  let s' = Bitset.of_list 3 [ 0; 1 ] in
  (* deg into {0,1}: n0 = 1 (from 0), n1 = 2 (0 and 1), n2 = 1 (from 1), n3 = 0. *)
  check_true "unique" (Bitset.elements (Nbhd.Bip.unique inst s') = [ 0; 2 ]);
  check_int "count" 2 (Nbhd.Bip.unique_count inst s')

let test_bip_unique_full () =
  let s' = Bitset.full 3 in
  check_true "full" (Bitset.elements (Nbhd.Bip.unique inst s') = [ 0; 3 ])

let test_gray_unique_matches_direct () =
  let elts = [| 0; 1; 2 |] in
  let count = ref 0 in
  Nbhd.Bip.iter_gray_unique inst elts (fun s' c ->
      incr count;
      check_int "gray vs direct" (Nbhd.Bip.unique_count inst s') c);
  check_int "2^3 subsets" 8 !count

let qcheck_tests =
  let arb = arbitrary_bipartite ~smax:10 ~nmax:12 in
  [
    qcheck ~count:50 "gray enumeration complete and consistent"
      (fun t ->
        let s = Bipartite.s_count t in
        if s > 12 then true
        else begin
          let elts = Array.init s (fun i -> i) in
          let seen = ref 0 in
          let ok = ref true in
          Nbhd.Bip.iter_gray_unique t elts (fun s' c ->
              incr seen;
              if Nbhd.Bip.unique_count t s' <> c then ok := false);
          !ok && !seen = 1 lsl s
        end)
      arb;
    qcheck ~count:50 "unique ⊆ covered"
      (fun t ->
        let r = Wx_util.Rng.create 99 in
        let s' =
          Bitset.random_of_universe r (Bipartite.s_count t)
            (1 + Wx_util.Rng.int r (Bipartite.s_count t))
        in
        Bitset.subset (Nbhd.Bip.unique t s') (Nbhd.Bip.covered t s'))
      arb;
    qcheck ~count:50 "graph gamma1 vs bipartite instance"
      (fun g ->
        (* Extract the neighborhood instance of a random set and compare
           Γ¹(S) computed both ways. *)
        let n = Graph.n g in
        if n < 4 then true
        else begin
          let r = Wx_util.Rng.create 7 in
          let s = Bitset.random_of_universe r n (n / 3) in
          if Bitset.is_empty s then true
          else begin
            let t, _, _ = Bipartite.of_set_neighborhood g s in
            let direct = Bitset.cardinal (Nbhd.gamma1 g s) in
            let via_bip =
              Nbhd.Bip.unique_count t (Bitset.full (Bipartite.s_count t))
            in
            direct = via_bip
          end
        end)
      (arbitrary_graph ~lo:4 ~hi:20);
  ]

let suite =
  [
    Alcotest.test_case "gamma" `Quick test_gamma;
    Alcotest.test_case "gamma minus" `Quick test_gamma_minus;
    Alcotest.test_case "gamma1" `Quick test_gamma1;
    Alcotest.test_case "gamma1 excluding" `Quick test_gamma1_excluding;
    Alcotest.test_case "gamma1 subset check" `Quick test_gamma1_excluding_requires_subset;
    Alcotest.test_case "deg_in" `Quick test_deg_in;
    Alcotest.test_case "expansion of set" `Quick test_expansion_of_set;
    Alcotest.test_case "unique expansion of set" `Quick test_unique_expansion_of_set;
    Alcotest.test_case "bip covered" `Quick test_bip_covered;
    Alcotest.test_case "bip unique" `Quick test_bip_unique;
    Alcotest.test_case "bip unique full" `Quick test_bip_unique_full;
    Alcotest.test_case "gray vs direct" `Quick test_gray_unique_matches_direct;
  ]
  @ qcheck_tests
