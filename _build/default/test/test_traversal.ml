module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Traversal = Wx_graph.Traversal
module Bitset = Wx_util.Bitset
open Common

let test_bfs_path () =
  let g = Gen.path 5 in
  let d = Traversal.bfs g 0 in
  check_true "distances" (d = [| 0; 1; 2; 3; 4 |])

let test_bfs_cycle () =
  let g = Gen.cycle 6 in
  let d = Traversal.bfs g 0 in
  check_true "wraps" (d = [| 0; 1; 2; 3; 2; 1 |])

let test_bfs_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let d = Traversal.bfs g 0 in
  check_int "unreachable" max_int d.(2)

let test_bfs_multi () =
  let g = Gen.path 5 in
  let d = Traversal.bfs_multi g (Bitset.of_list 5 [ 0; 4 ]) in
  check_true "nearest source" (d = [| 0; 1; 2; 1; 0 |])

let test_bfs_layers () =
  let layers = Traversal.bfs_layers (Gen.star 5) 0 in
  check_int "two layers" 2 (List.length layers);
  check_int "center" 1 (Array.length (List.nth layers 0));
  check_int "leaves" 4 (Array.length (List.nth layers 1))

let test_eccentricity () =
  check_int "path end" 4 (Traversal.eccentricity (Gen.path 5) 0);
  check_int "path middle" 2 (Traversal.eccentricity (Gen.path 5) 2)

let test_diameter () =
  check_int "path" 4 (Traversal.diameter (Gen.path 5));
  check_int "cycle" 3 (Traversal.diameter (Gen.cycle 6));
  check_int "complete" 1 (Traversal.diameter (Gen.complete 5));
  check_int "hypercube" 4 (Traversal.diameter (Gen.hypercube 4));
  check_int "single" 0 (Traversal.diameter (Graph.of_edges 1 []));
  check_int "disconnected" max_int (Traversal.diameter (Graph.of_edges 3 [ (0, 1) ]))

let test_grid_diameter () =
  check_int "grid 3x4" (2 + 3) (Traversal.diameter (Gen.grid 3 4))

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (2, 3); (3, 4) ] in
  let comp, count = Traversal.components g in
  check_int "three components" 3 count;
  check_true "0,1 together" (comp.(0) = comp.(1));
  check_true "2,3,4 together" (comp.(2) = comp.(3) && comp.(3) = comp.(4));
  check_true "separate" (comp.(0) <> comp.(2) && comp.(5) <> comp.(0))

let test_is_connected () =
  check_true "cycle" (Traversal.is_connected (Gen.cycle 5));
  check_true "not" (not (Traversal.is_connected (Graph.of_edges 3 [ (0, 1) ])));
  check_true "singleton" (Traversal.is_connected (Graph.of_edges 1 []))

let test_distance () =
  check_int "distance" 3 (Traversal.distance (Gen.cycle 6) 0 3)

let qcheck_tests =
  [
    qcheck ~count:40 "bfs triangle inequality at edges"
      (fun g ->
        if Graph.n g = 0 then true
        else begin
          let d = Traversal.bfs g 0 in
          let ok = ref true in
          Graph.iter_edges g (fun u v ->
              if d.(u) <> max_int && d.(v) <> max_int && abs (d.(u) - d.(v)) > 1 then ok := false);
          !ok
        end)
      (arbitrary_graph ~lo:2 ~hi:25);
    qcheck ~count:40 "component count vs connectivity"
      (fun g ->
        let _, c = Traversal.components g in
        (c = 1) = Traversal.is_connected g || Graph.n g <= 1)
      (arbitrary_graph ~lo:1 ~hi:25);
  ]

let suite =
  [
    Alcotest.test_case "bfs path" `Quick test_bfs_path;
    Alcotest.test_case "bfs cycle" `Quick test_bfs_cycle;
    Alcotest.test_case "bfs disconnected" `Quick test_bfs_disconnected;
    Alcotest.test_case "bfs multi" `Quick test_bfs_multi;
    Alcotest.test_case "bfs layers" `Quick test_bfs_layers;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "diameter" `Quick test_diameter;
    Alcotest.test_case "grid diameter" `Quick test_grid_diameter;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "is_connected" `Quick test_is_connected;
    Alcotest.test_case "distance" `Quick test_distance;
  ]
  @ qcheck_tests
