module Network = Wx_radio.Network
module Protocol = Wx_radio.Protocol
module Flood = Wx_radio.Flood
module Decay_protocol = Wx_radio.Decay_protocol
module Spokesmen_cast = Wx_radio.Spokesmen_cast
module Sim = Wx_radio.Sim
module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

let set n l = Bitset.of_list n l

(* --- reception semantics --- *)

let test_single_transmitter_informs_neighbors () =
  (* Star: center transmits, all leaves hear it. *)
  let net = Network.create (Gen.star 5) 0 in
  let newly = Network.step net (set 5 [ 0 ]) in
  check_int "all leaves" 4 (Bitset.cardinal newly);
  check_true "all informed" (Network.all_informed net)

let test_collision_blocks_reception () =
  (* Path 0-1-2, 2-3... use K4 minus? Simplest: vertices 0,1 both adjacent
     to 2 (triangle-ish): 0-2, 1-2, 0-1. Inform 0 and 1, both transmit →
     2 hears a collision. *)
  let g = Graph.of_edges 3 [ (0, 2); (1, 2); (0, 1) ] in
  let net = Network.create g 0 in
  let _ = Network.step net (set 3 [ 0 ]) in
  (* Now 0,1,2 informed? 0 transmits: neighbors 1,2 both hear uniquely. *)
  check_true "all informed after 1 round" (Network.all_informed net);
  (* Fresh network: inform 1 via round, then 0+1 transmit together. *)
  let net = Network.create g 0 in
  let newly = Network.step net (set 3 [ 0 ]) in
  check_int "both hear" 2 (Bitset.cardinal newly);
  let collisions_before = Network.collisions net in
  (* Everyone informed now; no new vertices, but transmitting 0 and 1
     simultaneously would collide at 2 — verify the counter moves. *)
  let _ = Network.step net (set 3 [ 0; 1 ]) in
  check_true "collision counted" (Network.collisions net > collisions_before)

let test_collision_prevents_new_information () =
  (* 0 and 1 both adjacent to 2 only; 0-1 edge missing: inform both via
     construction — create with source 0, manually propagate. *)
  let g = Graph.of_edges 4 [ (0, 2); (1, 2); (0, 3); (3, 1) ] in
  let net = Network.create g 0 in
  (* Round 1: 0 transmits → 2 and 3 hear. *)
  let _ = Network.step net (set 4 [ 0 ]) in
  (* Round 2: 3 transmits → 1 hears. *)
  let _ = Network.step net (set 4 [ 3 ]) in
  check_true "1 informed" (Network.is_informed net 1);
  (* Now suppose a fresh uninformed vertex existed adjacent to both 0 and 1:
     covered in the next test via a bigger gadget. *)
  check_true "done" (Network.all_informed net)

let test_exactly_one_rule () =
  (* Gadget: u adjacent to a and b; a, b informed. Both transmit: u hears
     nothing. Only one transmits: u hears. *)
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let net = Network.create g 0 in
  let _ = Network.step net (set 4 [ 0 ]) in
  check_true "a,b informed" (Network.is_informed net 1 && Network.is_informed net 2);
  check_true "u not yet" (not (Network.is_informed net 3));
  let newly = Network.step net (set 4 [ 1; 2 ]) in
  check_int "collision: nothing received" 0 (Bitset.cardinal newly);
  let newly = Network.step net (set 4 [ 1 ]) in
  check_int "single: received" 1 (Bitset.cardinal newly)

let test_transmitter_does_not_receive () =
  (* A transmitting node with an informed transmitting neighbor stays as it
     was; an uninformed node cannot transmit at all. *)
  let g = Gen.path 3 in
  let net = Network.create g 0 in
  Alcotest.check_raises "uninformed transmitter"
    (Invalid_argument "Network.step: transmitter without the message") (fun () ->
      ignore (Network.step net (set 3 [ 2 ])))

let test_informed_since () =
  let net = Network.create (Gen.path 4) 0 in
  check_int "source at 0" 0 (Network.informed_since net 0);
  check_int "not informed" (-1) (Network.informed_since net 2);
  let _ = Network.step net (set 4 [ 0 ]) in
  check_int "vertex 1 at round 1" 1 (Network.informed_since net 1);
  let _ = Network.step net (set 4 [ 1 ]) in
  check_int "vertex 2 at round 2" 2 (Network.informed_since net 2)

let test_round_counter () =
  let net = Network.create (Gen.path 3) 0 in
  check_int "round 0" 0 (Network.round net);
  let _ = Network.step net (set 3 []) in
  check_int "round 1" 1 (Network.round net)

(* --- protocols --- *)

let test_flood_stalls_on_cplus () =
  (* The motivating failure: flooding C⁺ informs x and y in round 1, then
     s0, x, y all transmit forever and the rest of the clique never hears. *)
  let g = Wx_constructions.Cplus.create 8 in
  let o =
    Sim.run ~max_rounds:200 g ~source:(Wx_constructions.Cplus.source g) Flood.protocol
      (rng ~salt:90 ())
  in
  check_true "never completes" (not o.Sim.completed);
  check_int "stuck at 3" 3 o.Sim.informed_final

let test_flood_completes_on_path () =
  (* On a path the frontier is always a single vertex boundary... in fact
     with everyone transmitting, interior vertices hear two neighbors and
     collide. Flood completes only on round 1 for stars etc. On a path of 3:
     round 1: 0 → 1. round 2: 0,1 transmit → 2 hears only 1 → receives. *)
  let o = Sim.run ~max_rounds:50 (Gen.path 3) ~source:0 Flood.protocol (rng ~salt:91 ()) in
  check_true "completes" o.Sim.completed;
  check_int "2 rounds" 2 o.Sim.rounds

let test_flood_stalls_on_longer_path () =
  (* Path of 4: round 2 informs 2; round 3: 1,2 transmit? 3 hears only 2 →
     informed. Actually 0,1,2 transmit: 3's sole neighbor is 2 → receives.
     Flood completes on paths. *)
  let o = Sim.run ~max_rounds:50 (Gen.path 6) ~source:0 Flood.protocol (rng ~salt:92 ()) in
  check_true "completes on path" o.Sim.completed

let test_decay_completes_on_cplus () =
  let g = Wx_constructions.Cplus.create 8 in
  let o =
    Sim.run ~max_rounds:2000 g ~source:(Wx_constructions.Cplus.source g)
      Decay_protocol.protocol (rng ~salt:93 ())
  in
  check_true "decay completes" o.Sim.completed

let test_decay_completes_on_expander () =
  let g = Gen.random_regular (rng ~salt:94 ()) 40 4 in
  let o = Sim.run ~max_rounds:4000 g ~source:0 Decay_protocol.protocol (rng ~salt:95 ()) in
  check_true "completes" o.Sim.completed

let test_decay_phase_length () =
  check_int "n=16" 5 (Decay_protocol.phase_length 16);
  check_int "n=17" 6 (Decay_protocol.phase_length 17)

let test_spokesmen_cast_completes_on_cplus () =
  let g = Wx_constructions.Cplus.create 8 in
  let o =
    Sim.run ~max_rounds:500 g ~source:(Wx_constructions.Cplus.source g)
      Spokesmen_cast.protocol (rng ~salt:96 ())
  in
  check_true "completes" o.Sim.completed;
  (* With singleton transmissions C+ finishes fast: s0 → {x,y}; then one of
     them alone informs the whole clique. *)
  check_true "fast" (o.Sim.rounds <= 6)

let test_spokesmen_cast_completes_on_grid () =
  let g = Gen.grid 5 5 in
  let o = Sim.run ~max_rounds:500 g ~source:0 Spokesmen_cast.protocol (rng ~salt:97 ()) in
  check_true "completes" o.Sim.completed

let test_spokesmen_cast_beats_decay_on_core_chain () =
  let ch = Wx_constructions.Broadcast_chain.create (rng ~salt:98 ()) ~copies:2 ~s:8 in
  let g = ch.Wx_constructions.Broadcast_chain.graph in
  let run p salt = Sim.run ~max_rounds:5000 g ~source:0 p (rng ~salt ()) in
  let sc = run Spokesmen_cast.protocol 99 in
  let dc = run Decay_protocol.protocol 100 in
  check_true "both complete" (sc.Sim.completed && dc.Sim.completed)

(* --- sim drivers --- *)

let test_outcome_history_monotone () =
  let g = Gen.grid 4 4 in
  let o = Sim.run ~max_rounds:500 g ~source:0 Decay_protocol.protocol (rng ~salt:101 ()) in
  let prev = ref 0 in
  Array.iter
    (fun c ->
      check_true "monotone" (c >= !prev);
      prev := c)
    o.Sim.frontier_history

let test_rounds_to_inform () =
  let g = Gen.path 5 in
  match Sim.rounds_to_inform ~max_rounds:500 g ~source:0 ~target:4 Flood.protocol (rng ~salt:102 ()) with
  | Some r -> check_int "path needs 4" 4 r
  | None -> Alcotest.fail "did not reach target"

let test_rounds_to_inform_timeout () =
  let g = Wx_constructions.Cplus.create 6 in
  match
    Sim.rounds_to_inform ~max_rounds:50 g ~source:(Wx_constructions.Cplus.source g) ~target:4
      Flood.protocol (rng ~salt:103 ())
  with
  | Some _ -> Alcotest.fail "flood should stall"
  | None -> ()

let test_rounds_to_fraction () =
  let g = Gen.star 11 in
  let leaves = Bitset.of_list 11 (List.init 10 (fun i -> i + 1)) in
  match
    Sim.rounds_to_fraction ~max_rounds:50 g ~source:0 ~subset:leaves ~fraction:1.0
      Flood.protocol (rng ~salt:104 ())
  with
  | Some r -> check_int "one round" 1 r
  | None -> Alcotest.fail "unreached"

let test_monte_carlo_deterministic () =
  let g = Gen.grid 4 4 in
  let _, outs1 = Sim.monte_carlo g ~source:0 Decay_protocol.protocol ~seeds:[ 1; 2; 3 ] in
  let _, outs2 = Sim.monte_carlo g ~source:0 Decay_protocol.protocol ~seeds:[ 1; 2; 3 ] in
  List.iter2
    (fun a b -> check_int "same rounds per seed" a.Sim.rounds b.Sim.rounds)
    outs1 outs2

let suite =
  [
    Alcotest.test_case "single transmitter" `Quick test_single_transmitter_informs_neighbors;
    Alcotest.test_case "collision blocks" `Quick test_collision_blocks_reception;
    Alcotest.test_case "collision no info" `Quick test_collision_prevents_new_information;
    Alcotest.test_case "exactly-one rule" `Quick test_exactly_one_rule;
    Alcotest.test_case "uninformed cannot transmit" `Quick test_transmitter_does_not_receive;
    Alcotest.test_case "informed_since" `Quick test_informed_since;
    Alcotest.test_case "round counter" `Quick test_round_counter;
    Alcotest.test_case "flood stalls on C+" `Quick test_flood_stalls_on_cplus;
    Alcotest.test_case "flood completes on path-3" `Quick test_flood_completes_on_path;
    Alcotest.test_case "flood on longer path" `Quick test_flood_stalls_on_longer_path;
    Alcotest.test_case "decay completes on C+" `Quick test_decay_completes_on_cplus;
    Alcotest.test_case "decay on expander" `Quick test_decay_completes_on_expander;
    Alcotest.test_case "decay phase length" `Quick test_decay_phase_length;
    Alcotest.test_case "spokesmen-cast on C+" `Quick test_spokesmen_cast_completes_on_cplus;
    Alcotest.test_case "spokesmen-cast on grid" `Quick test_spokesmen_cast_completes_on_grid;
    Alcotest.test_case "protocols on chain" `Slow test_spokesmen_cast_beats_decay_on_core_chain;
    Alcotest.test_case "history monotone" `Quick test_outcome_history_monotone;
    Alcotest.test_case "rounds_to_inform" `Quick test_rounds_to_inform;
    Alcotest.test_case "rounds_to_inform timeout" `Quick test_rounds_to_inform_timeout;
    Alcotest.test_case "rounds_to_fraction" `Quick test_rounds_to_fraction;
    Alcotest.test_case "monte carlo deterministic" `Quick test_monte_carlo_deterministic;
  ]
