(* Schedule synthesis, graph I/O, Cheeger constants, expansion profiles. *)

module Schedule = Wx_radio.Schedule
module Graph_io = Wx_graph.Graph_io
module Cheeger = Wx_spectral.Cheeger
module Measure = Wx_expansion.Measure
module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

(* --- schedule synthesis --- *)

let test_schedule_completes_and_replays () =
  List.iter
    (fun (name, g) ->
      let sch = Schedule.synthesize (rng ~salt:150 ()) g ~source:0 in
      let ok, informed = Schedule.replay g sch in
      check_true (name ^ " replay completes") ok;
      check_int (name ^ " informed all") (Graph.n g) informed)
    [
      ("path-10", Gen.path 10);
      ("cycle-12", Gen.cycle 12);
      ("grid-5x5", Gen.grid 5 5);
      ("hypercube-4", Gen.hypercube 4);
      ("cplus-10", Wx_constructions.Cplus.create 10);
      ("rand-4reg-32", Gen.random_regular (rng ~salt:151 ()) 32 4);
    ]

let test_schedule_respects_bfs_lower_bound () =
  let g = Gen.path 12 in
  let sch = Schedule.synthesize (rng ~salt:152 ()) g ~source:0 in
  check_true "≥ eccentricity" (Schedule.length sch >= Schedule.lower_bound_rounds g ~source:0);
  (* On a path the synthesized schedule should be exactly the BFS depth. *)
  check_int "path is tight" 11 (Schedule.length sch)

let test_schedule_cplus_fast () =
  (* Scheduled broadcast resolves C+ in 2 rounds (s0, then one of x/y). *)
  let g = Wx_constructions.Cplus.create 12 in
  let sch = Schedule.synthesize (rng ~salt:153 ()) g ~source:(Wx_constructions.Cplus.source g) in
  check_int "two rounds" 2 (Schedule.length sch)

let test_schedule_transmitters_informed () =
  (* Replay uses Network.step which raises if a transmitter lacks the
     message; reaching completion proves schedule validity. *)
  let g = Gen.grid 4 6 in
  let sch = Schedule.synthesize (rng ~salt:154 ()) g ~source:5 in
  let ok, _ = Schedule.replay g sch in
  check_true "valid schedule" ok

let test_schedule_disconnected_fails () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  match Schedule.synthesize (rng ~salt:155 ()) g ~source:0 with
  | _ -> Alcotest.fail "expected failure on disconnected graph"
  | exception Failure _ -> ()

let test_schedule_beats_decay_on_chain () =
  let ch = Wx_constructions.Broadcast_chain.create (rng ~salt:156 ()) ~copies:2 ~s:8 in
  let g = ch.Wx_constructions.Broadcast_chain.graph in
  let sch = Schedule.synthesize (rng ~salt:157 ()) g ~source:0 in
  let ok, _ = Schedule.replay g sch in
  check_true "completes" ok;
  let decay =
    Wx_radio.Sim.run ~max_rounds:20_000 g ~source:0 Wx_radio.Decay_protocol.protocol
      (rng ~salt:158 ())
  in
  check_true "offline schedule ≤ decay rounds" (Schedule.length sch <= decay.Wx_radio.Sim.rounds)

(* --- graph io --- *)

let test_graph_roundtrip () =
  List.iter
    (fun g ->
      let g' = Graph_io.of_string (Graph_io.to_string g) in
      check_true "roundtrip" (Graph.equal g g'))
    [ Gen.cycle 7; Gen.grid 3 4; Gen.complete 5; Graph.of_edges 3 []; Gen.star 6 ]

let test_graph_io_comments_and_whitespace () =
  let g = Graph_io.of_string "# a comment\n 3 2 \n\n0 1\n# another\n1 2\n" in
  check_int "n" 3 (Graph.n g);
  check_int "m" 2 (Graph.m g)

let test_graph_io_bad_header () =
  match Graph_io.of_string "3\n" with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure msg -> check_true "line number in message" (String.length msg > 0)

let test_graph_io_edge_count_mismatch () =
  match Graph_io.of_string "3 2\n0 1\n" with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_graph_io_file_roundtrip () =
  let g = Gen.torus 3 4 in
  let path = Filename.temp_file "wx" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save g path;
      check_true "file roundtrip" (Graph.equal g (Graph_io.load path)))

let test_bipartite_roundtrip () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:159 ()) ~s:8 ~n:12 ~d:3 in
  let t' = Graph_io.bipartite_of_string (Graph_io.bipartite_to_string t) in
  check_int "s" (Wx_graph.Bipartite.s_count t) (Wx_graph.Bipartite.s_count t');
  check_int "m" (Wx_graph.Bipartite.m t) (Wx_graph.Bipartite.m t');
  check_true "same edges"
    (Graph_io.bipartite_to_string t = Graph_io.bipartite_to_string t')

(* --- cheeger --- *)

let test_cut_edges () =
  let g = Gen.cycle 6 in
  check_int "arc cut" 2 (Cheeger.cut_edges g (Bitset.of_list 6 [ 0; 1; 2 ]));
  check_int "alternating cut" 6 (Cheeger.cut_edges g (Bitset.of_list 6 [ 0; 2; 4 ]))

let test_h_exact_cycle () =
  (* Cycle 2k: worst cut is an arc of k: 2/k. *)
  let h, w = Cheeger.h_exact (Gen.cycle 12) in
  check_float "h = 1/3" (1.0 /. 3.0) h;
  check_int "witness arc" 6 (Bitset.cardinal w)

let test_h_exact_complete () =
  (* K_n: any |S| = n/2 cut has |S|·(n/2) edges → h = n/2. *)
  let h, _ = Cheeger.h_exact (Gen.complete 8) in
  check_float "K8" 4.0 h

let test_h_sampled_upper_bounds_exact () =
  List.iter
    (fun g ->
      let exact, _ = Cheeger.h_exact g in
      let sampled, _ = Cheeger.h_sampled (rng ~salt:160 ()) ~samples:500 g in
      check_true "sampled >= exact" (sampled >= exact -. 1e-9))
    [ Gen.cycle 10; Gen.grid 3 4; Gen.hypercube 3 ]

let test_cheeger_sandwich () =
  (* (d−λ₂)/2 ≤ h ≤ √(2d(d−λ₂)) on regular connected graphs, exactly. *)
  List.iter
    (fun g ->
      match Graph.is_regular g with
      | Some d when Wx_graph.Traversal.is_connected g ->
          let lambda2 = Wx_spectral.Spectral_gap.lambda2_regular g (rng ~salt:161 ()) in
          let lo, hi = Cheeger.cheeger_bounds ~d ~lambda2 in
          let h, _ = Cheeger.h_exact g in
          check_true
            (Printf.sprintf "sandwich lo (%.3f <= %.3f)" lo h)
            (lo <= h +. 1e-6);
          check_true (Printf.sprintf "sandwich hi (%.3f <= %.3f)" h hi) (h <= hi +. 1e-6)
      | _ -> ())
    [
      Gen.cycle 10; Gen.complete 8; Gen.hypercube 3; Gen.hypercube 4; Gen.torus 3 4;
      Gen.random_regular (rng ~salt:162 ()) 12 3;
    ]

(* --- threshold partition + random chain + lemma 4.1 --- *)

let test_partition_threshold () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:163 ()) ~s:20 ~n:30 ~d:4 in
  (* t = 2 must match the Lemma A.3 solver exactly. *)
  let a = Wx_spokesmen.Partition.solve_degree_capped t in
  let b = Wx_spokesmen.Partition.solve_threshold ~t_param:2.0 t in
  check_int "t=2 = capped" a.Wx_spokesmen.Solver.covered b.Wx_spokesmen.Solver.covered;
  (* Larger t keeps more of N; solver stays valid. *)
  let c = Wx_spokesmen.Partition.solve_threshold ~t_param:8.0 t in
  check_int "valid objective" (Wx_spokesmen.Solver.evaluate t c.Wx_spokesmen.Solver.chosen)
    c.Wx_spokesmen.Solver.covered;
  Alcotest.check_raises "t <= 1 rejected"
    (Invalid_argument "Partition.solve_threshold: t must be > 1") (fun () ->
      ignore (Wx_spokesmen.Partition.solve_threshold ~t_param:1.0 t))

let test_random_chain_shape () =
  let ch = Wx_constructions.Broadcast_chain.create_random (rng ~salt:164 ()) ~copies:3 ~s:8 in
  let explicit = Wx_constructions.Broadcast_chain.create (rng ~salt:165 ()) ~copies:3 ~s:8 in
  check_int "same vertex count"
    (Wx_constructions.Broadcast_chain.total_vertices explicit)
    (Wx_constructions.Broadcast_chain.total_vertices ch);
  check_true "connected" (Wx_graph.Traversal.is_connected ch.Wx_constructions.Broadcast_chain.graph);
  (* Decay completes on it. *)
  let o =
    Wx_radio.Sim.run ~max_rounds:50_000 ch.Wx_constructions.Broadcast_chain.graph ~source:0
      Wx_radio.Decay_protocol.protocol (rng ~salt:166 ())
  in
  check_true "broadcast completes" o.Wx_radio.Sim.completed

let test_lemma_4_1_checker () =
  List.iter
    (fun (name, g) ->
      let c = Wireless_expanders.Theorems.lemma_4_1 name g in
      check_true (name ^ " holds") c.Wireless_expanders.Theorems.holds)
    [ ("complete-8", Gen.complete 8); ("cycle-10", Gen.cycle 10); ("grid-3x3", Gen.grid 3 3) ]

(* --- profiles --- *)

let test_profile_beta_u_cycle () =
  (* Even cycle: the alternating set at k = n/2 has βu = 0. *)
  let profile = Measure.profile_beta_u (Gen.cycle 10) in
  check_float "k = 5 is zero" 0.0 (List.assoc 5 profile);
  check_true "k = 1 positive" (List.assoc 1 profile > 0.0)

let test_profile_beta_w_ordering () =
  (* Per size: β profile ≥ βw profile ≥ βu profile. *)
  let g = Gen.grid 3 3 in
  let pb = Measure.profile_beta g in
  let pw = Measure.profile_beta_w g in
  let pu = Measure.profile_beta_u g in
  List.iter
    (fun (k, bw) ->
      let b = List.assoc k pb and bu = List.assoc k pu in
      check_true "β >= βw" (b >= bw -. 1e-9);
      check_true "βw >= βu" (bw >= bu -. 1e-9))
    pw

let test_profile_beta_w_min_is_beta_w () =
  let g = Gen.cycle 9 in
  let pw = Measure.profile_beta_w g in
  let min_profile = List.fold_left (fun acc (_, v) -> Float.min acc v) infinity pw in
  check_float "profile min = βw" (Measure.beta_w_exact g).Measure.value min_profile

let suite =
  [
    Alcotest.test_case "schedule completes+replays" `Quick test_schedule_completes_and_replays;
    Alcotest.test_case "schedule BFS lower bound" `Quick test_schedule_respects_bfs_lower_bound;
    Alcotest.test_case "schedule C+ fast" `Quick test_schedule_cplus_fast;
    Alcotest.test_case "schedule validity" `Quick test_schedule_transmitters_informed;
    Alcotest.test_case "schedule disconnected" `Quick test_schedule_disconnected_fails;
    Alcotest.test_case "schedule <= decay" `Quick test_schedule_beats_decay_on_chain;
    Alcotest.test_case "graph roundtrip" `Quick test_graph_roundtrip;
    Alcotest.test_case "io comments" `Quick test_graph_io_comments_and_whitespace;
    Alcotest.test_case "io bad header" `Quick test_graph_io_bad_header;
    Alcotest.test_case "io count mismatch" `Quick test_graph_io_edge_count_mismatch;
    Alcotest.test_case "io file roundtrip" `Quick test_graph_io_file_roundtrip;
    Alcotest.test_case "bipartite roundtrip" `Quick test_bipartite_roundtrip;
    Alcotest.test_case "cut edges" `Quick test_cut_edges;
    Alcotest.test_case "h exact cycle" `Quick test_h_exact_cycle;
    Alcotest.test_case "h exact complete" `Quick test_h_exact_complete;
    Alcotest.test_case "h sampled bound" `Quick test_h_sampled_upper_bounds_exact;
    Alcotest.test_case "cheeger sandwich" `Quick test_cheeger_sandwich;
    Alcotest.test_case "partition threshold" `Quick test_partition_threshold;
    Alcotest.test_case "random chain" `Quick test_random_chain_shape;
    Alcotest.test_case "lemma 4.1 checker" `Quick test_lemma_4_1_checker;
    Alcotest.test_case "profile βu cycle" `Quick test_profile_beta_u_cycle;
    Alcotest.test_case "profile ordering" `Quick test_profile_beta_w_ordering;
    Alcotest.test_case "profile min = βw" `Quick test_profile_beta_w_min_is_beta_w;
  ]
