module T = Wireless_expanders.Theorems
module Instances = Wireless_expanders.Instances
module Gen = Wx_graph.Gen
module Graph = Wx_graph.Graph
open Common

let assert_holds (c : T.check) =
  if not c.T.holds then
    Alcotest.failf "%s on %s violated: predicted %.4f, measured %.4f" c.T.claim c.T.instance
      c.T.predicted c.T.measured

let connected_small () =
  List.filter (fun (_, g) -> Wx_graph.Traversal.is_connected g) (Instances.small_graphs ())

let test_obs_2_1_zoo () =
  List.iter (fun (name, g) -> List.iter assert_holds (T.obs_2_1 name g)) (connected_small ())

let test_lemma_3_1_regular_zoo () =
  List.iter
    (fun (name, g) ->
      if Wx_graph.Traversal.is_connected g then
        assert_holds (T.lemma_3_1 name g (rng ~salt:110 ())))
    (Instances.regular_graphs ())

let test_lemma_3_2_zoo () =
  List.iter (fun (name, g) -> assert_holds (T.lemma_3_2 name g)) (connected_small ())

let test_lemma_3_3_grid () =
  List.iter (fun gb -> List.iter assert_holds (T.lemma_3_3 gb)) (Instances.gbad_grid ())

let test_gbad_wireless_grid () =
  List.iter (fun gb -> assert_holds (T.gbad_wireless gb)) (Instances.gbad_grid ())

let test_theorem_1_1_instances () =
  List.iter
    (fun (name, t) ->
      if not (Wx_graph.Bipartite.has_isolated t) then
        assert_holds (T.theorem_1_1_bip name t (rng ~salt:111 ())))
    (Instances.bipartite_instances ())

let test_lemma_4_4_sizes () =
  List.iter
    (fun s -> List.iter assert_holds (T.lemma_4_4 (Wx_constructions.Core_graph.create s)))
    Instances.core_sizes

let test_lemma_4_6_grid () =
  List.iter
    (fun (delta_star, beta_star) ->
      let gc = Wx_constructions.Gen_core.create ~delta_star ~beta_star in
      List.iter assert_holds (T.lemma_4_6 gc))
    [ (64, 8.0); (64, 2.0); (64, 0.5); (128, 16.0); (32, 1.0); (256, 4.0) ]

let test_claims_4_9_4_10 () =
  let host = Gen.random_regular (rng ~salt:112 ()) 64 20 in
  let wc =
    Wx_constructions.Worst_case.create (rng ~salt:113 ()) ~eps:0.4 ~host ~host_beta:0.5
  in
  assert_holds (T.claim_4_9 wc (rng ~salt:114 ()) ~samples:300);
  assert_holds (T.claim_4_10 wc)

let test_corollary_5_1 () =
  List.iter
    (fun s -> List.iter assert_holds (T.corollary_5_1 (Wx_constructions.Core_graph.create s)))
    [ 8; 32; 128 ]

let test_section_5_lower_bound_decay () =
  let ch = Wx_constructions.Broadcast_chain.create (rng ~salt:115 ()) ~copies:3 ~s:8 in
  assert_holds
    (T.section_5_lower_bound ch Wx_radio.Decay_protocol.protocol ~seeds:[ 1; 2; 3 ])

let test_section_5_lower_bound_spokesmen () =
  let ch = Wx_constructions.Broadcast_chain.create (rng ~salt:116 ()) ~copies:3 ~s:8 in
  assert_holds
    (T.section_5_lower_bound ch Wx_radio.Spokesmen_cast.protocol ~seeds:[ 4; 5 ])

let test_instances_reproducible () =
  (* Same seeds → identical instances. *)
  let a = Instances.small_graphs () and b = Instances.small_graphs () in
  List.iter2
    (fun (n1, g1) (n2, g2) ->
      check_true "same name" (n1 = n2);
      check_true "same graph" (Graph.equal g1 g2))
    a b

let suite =
  [
    Alcotest.test_case "Obs 2.1 zoo" `Slow test_obs_2_1_zoo;
    Alcotest.test_case "Lemma 3.1 regular" `Quick test_lemma_3_1_regular_zoo;
    Alcotest.test_case "Lemma 3.2 zoo" `Quick test_lemma_3_2_zoo;
    Alcotest.test_case "Lemma 3.3 grid" `Quick test_lemma_3_3_grid;
    Alcotest.test_case "Rmk 3.3 wireless" `Quick test_gbad_wireless_grid;
    Alcotest.test_case "Theorem 1.1 instances" `Slow test_theorem_1_1_instances;
    Alcotest.test_case "Lemma 4.4 all sizes" `Quick test_lemma_4_4_sizes;
    Alcotest.test_case "Lemma 4.6 grid" `Quick test_lemma_4_6_grid;
    Alcotest.test_case "Claims 4.9/4.10" `Quick test_claims_4_9_4_10;
    Alcotest.test_case "Corollary 5.1" `Quick test_corollary_5_1;
    Alcotest.test_case "§5 LB vs decay" `Slow test_section_5_lower_bound_decay;
    Alcotest.test_case "§5 LB vs spokesmen" `Slow test_section_5_lower_bound_spokesmen;
    Alcotest.test_case "instances reproducible" `Quick test_instances_reproducible;
  ]
