module Spectral_gap = Wx_spectral.Spectral_gap
module Vec = Wx_spectral.Vec
module Gen = Wx_graph.Gen
module Graph = Wx_graph.Graph
open Common

let lambda2 g = Spectral_gap.lambda2_regular g (rng ~salt:40 ())

let test_vec_ops () =
  let a = [| 1.0; 2.0; 2.0 |] and b = [| 2.0; 0.0; 1.0 |] in
  check_float "dot" 4.0 (Vec.dot a b);
  check_float "norm" 3.0 (Vec.norm a);
  let y = Vec.copy a in
  Vec.axpy_inplace y 2.0 b;
  check_true "axpy" (y = [| 5.0; 2.0; 4.0 |]);
  Vec.normalize_inplace y;
  check_float "unit" 1.0 (Vec.norm y)

let test_vec_orthogonalize () =
  let u = [| 1.0; 0.0 |] in
  let v = [| 3.0; 4.0 |] in
  Vec.orthogonalize_inplace v [ u ];
  check_float "x killed" 0.0 v.(0);
  check_float "y kept" 4.0 v.(1)

let test_matvec () =
  let g = Gen.path 3 in
  let y = Array.make 3 0.0 in
  Spectral_gap.matvec g [| 1.0; 2.0; 3.0 |] y;
  check_true "A x" (y = [| 2.0; 4.0; 2.0 |])

let test_lambda2_cycle () =
  (* Cycle eigenvalues: 2cos(2πk/n); second largest at k = 1. *)
  check_float ~eps:1e-6 "cycle 8" (2.0 *. cos (2.0 *. Float.pi /. 8.0)) (lambda2 (Gen.cycle 8));
  check_float ~eps:1e-6 "cycle 12" (2.0 *. cos (2.0 *. Float.pi /. 12.0)) (lambda2 (Gen.cycle 12))

let test_lambda2_complete () =
  (* K_n: spectrum {n−1, −1, ..., −1}. *)
  check_float ~eps:1e-6 "K6" (-1.0) (lambda2 (Gen.complete 6))

let test_lambda2_hypercube () =
  (* Q_d: eigenvalues d − 2i; λ₂ = d − 2. *)
  check_float ~eps:1e-6 "Q3" 1.0 (lambda2 (Gen.hypercube 3));
  check_float ~eps:1e-6 "Q4" 2.0 (lambda2 (Gen.hypercube 4))

let test_lambda2_complete_bipartite () =
  (* K_{a,a}: spectrum {a, 0, ..., 0, −a}; λ₂ = 0. *)
  check_float ~eps:1e-6 "K44" 0.0 (lambda2 (Gen.complete_bipartite 4 4))

let test_lambda2_rejects_irregular () =
  Alcotest.check_raises "irregular"
    (Invalid_argument "Spectral_gap.lambda2_regular: graph is not regular") (fun () ->
      ignore (lambda2 (Gen.star 5)))

let test_spectral_gap () =
  check_float ~eps:1e-6 "K6 gap" 6.0
    (Spectral_gap.spectral_gap_regular (Gen.complete 6) (rng ~salt:41 ()))

let test_dense_eigenvalues_triangle () =
  (* Triangle = K3: {2, −1, −1}. *)
  let eig = Spectral_gap.eigenvalues_dense (Gen.complete 3) in
  check_float ~eps:1e-8 "top" 2.0 eig.(0);
  check_float ~eps:1e-8 "mid" (-1.0) eig.(1);
  check_float ~eps:1e-8 "bot" (-1.0) eig.(2)

let test_dense_eigenvalues_path () =
  (* Path on 2 vertices: {1, −1}. *)
  let eig = Spectral_gap.eigenvalues_dense (Gen.path 2) in
  check_float ~eps:1e-8 "plus" 1.0 eig.(0);
  check_float ~eps:1e-8 "minus" (-1.0) eig.(1)

let test_power_vs_dense_cross_check () =
  let r = rng ~salt:42 () in
  for _ = 1 to 5 do
    let g = Gen.random_regular r 12 4 in
    if Wx_graph.Traversal.is_connected g then begin
      let dense = Spectral_gap.eigenvalues_dense g in
      let power = lambda2 g in
      check_float ~eps:1e-5 "power = dense λ2" dense.(1) power
    end
  done

let test_eigenvalue_sum_zero () =
  (* trace(A) = 0, so eigenvalues sum to 0. *)
  let eig = Spectral_gap.eigenvalues_dense (Gen.cycle 7) in
  check_float ~eps:1e-8 "sum" 0.0 (Array.fold_left ( +. ) 0.0 eig)

let test_alon_spencer_bound () =
  (* K4, any 2-2 partition: cut = 4 edges; bound (d−λ)|A||B|/n = (3−(−1))·4/4 = 4. *)
  let v = Spectral_gap.alon_spencer_cut_bound ~d:3 ~lambda2:(-1.0) ~n:4 ~a:2 in
  check_float "tight on K4" 4.0 v

let suite =
  [
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "vec orthogonalize" `Quick test_vec_orthogonalize;
    Alcotest.test_case "matvec" `Quick test_matvec;
    Alcotest.test_case "lambda2 cycle" `Quick test_lambda2_cycle;
    Alcotest.test_case "lambda2 complete" `Quick test_lambda2_complete;
    Alcotest.test_case "lambda2 hypercube" `Quick test_lambda2_hypercube;
    Alcotest.test_case "lambda2 complete bipartite" `Quick test_lambda2_complete_bipartite;
    Alcotest.test_case "lambda2 rejects irregular" `Quick test_lambda2_rejects_irregular;
    Alcotest.test_case "spectral gap" `Quick test_spectral_gap;
    Alcotest.test_case "dense eig triangle" `Quick test_dense_eigenvalues_triangle;
    Alcotest.test_case "dense eig path" `Quick test_dense_eigenvalues_path;
    Alcotest.test_case "power vs dense" `Quick test_power_vs_dense_cross_check;
    Alcotest.test_case "eig sum zero" `Quick test_eigenvalue_sum_zero;
    Alcotest.test_case "alon-spencer bound" `Quick test_alon_spencer_bound;
  ]
