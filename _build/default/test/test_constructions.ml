module Cplus = Wx_constructions.Cplus
module Gbad = Wx_constructions.Gbad
module Core_graph = Wx_constructions.Core_graph
module Gen_core = Wx_constructions.Gen_core
module Worst_case = Wx_constructions.Worst_case
module Broadcast_chain = Wx_constructions.Broadcast_chain
module Families = Wx_constructions.Families
module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
module Nbhd = Wx_expansion.Nbhd
module Bip_measure = Wx_expansion.Bip_measure
module Floatx = Wx_util.Floatx
open Common

(* --- C+ --- *)

let test_cplus_shape () =
  let g = Cplus.create 6 in
  check_int "n" 7 (Graph.n g);
  check_int "m" (15 + 2) (Graph.m g);
  check_int "source degree" 2 (Graph.degree g (Cplus.source g))

let test_cplus_bad_set_has_no_unique () =
  let g = Cplus.create 6 in
  check_int "Γ¹ of {x,y,s0} empty" 0
    (Bitset.cardinal (Nbhd.gamma1 g (Cplus.bad_set g)))

(* --- Gbad --- *)

let test_gbad_shape () =
  let gb = Gbad.create ~s:6 ~delta:6 ~beta:4 in
  let t = Gbad.bip gb in
  check_int "|S|" 6 (Bipartite.s_count t);
  check_int "|N| = sβ" 24 (Bipartite.n_count t);
  for u = 0 to 5 do
    check_int "S degree ∆" 6 (Bipartite.deg_s t u)
  done

let test_gbad_consecutive_overlap () =
  let gb = Gbad.create ~s:6 ~delta:6 ~beta:4 in
  let t = Gbad.bip gb in
  (* |Γ(v_i) ∩ Γ(v_{i+1})| = ∆ − β = 2, cyclically. *)
  for i = 0 to 5 do
    let a = Bitset.of_array 24 (Bipartite.neighbors_s t i) in
    let b = Bitset.of_array 24 (Bipartite.neighbors_s t ((i + 1) mod 6)) in
    check_int "overlap" 2 (Bitset.cardinal (Bitset.inter a b))
  done

let test_gbad_nonadjacent_disjoint () =
  let gb = Gbad.create ~s:8 ~delta:4 ~beta:3 in
  let t = Gbad.bip gb in
  (* Windows two apart share nothing when s·β ≥ 2∆. *)
  let a = Bitset.of_array 24 (Bipartite.neighbors_s t 0) in
  let b = Bitset.of_array 24 (Bipartite.neighbors_s t 2) in
  check_true "disjoint" (Bitset.disjoint a b)

let test_gbad_unique_expansion_exact () =
  List.iter
    (fun (s, delta, beta) ->
      let gb = Gbad.create ~s ~delta ~beta in
      let t = Gbad.bip gb in
      let uniq = Nbhd.Bip.unique_count t (Bitset.full s) in
      check_int
        (Printf.sprintf "s=%d ∆=%d β=%d: s(2β−∆)" s delta beta)
        (s * ((2 * beta) - delta))
        uniq)
    [ (6, 6, 4); (6, 4, 2); (8, 8, 5); (10, 6, 3); (5, 4, 3) ]

let test_gbad_every_second () =
  (* Even s: every second vertex has fully unique windows → s/2·∆ covered. *)
  let gb = Gbad.create ~s:6 ~delta:6 ~beta:4 in
  let t = Gbad.bip gb in
  let uniq = Nbhd.Bip.unique_count t (Gbad.every_second gb) in
  check_int "s/2 · ∆" (3 * 6) uniq

let test_gbad_remark_functions () =
  let gb = Gbad.create ~s:6 ~delta:6 ~beta:4 in
  check_float "f(1) = ∆" 6.0 (Gbad.remark_f gb 1);
  check_float "f(2) = β" 4.0 (Gbad.remark_f gb 2);
  check_float "g(2) = ∆/2" 3.0 (Gbad.remark_g gb 2);
  check_float "g(3) = 2∆/3" 4.0 (Gbad.remark_g gb 3)

let test_gbad_validation () =
  Alcotest.check_raises "β too small" (Invalid_argument "Gbad.create: need ∆/2 <= β <= ∆")
    (fun () -> ignore (Gbad.create ~s:6 ~delta:6 ~beta:2));
  Alcotest.check_raises "s too small for wrap" (Invalid_argument "Gbad.create: need s·β >= 2∆")
    (fun () -> ignore (Gbad.create ~s:3 ~delta:6 ~beta:3))

(* --- core graph --- *)

let test_core_shape () =
  List.iter
    (fun s ->
      let cg = Core_graph.create s in
      let t = Core_graph.bip cg in
      check_int "|S|" s (Bipartite.s_count t);
      check_int "|N| = s log 2s" (s * (Floatx.log2i_floor s + 1)) (Bipartite.n_count t);
      for u = 0 to s - 1 do
        check_int "deg 2s−1" ((2 * s) - 1) (Bipartite.deg_s t u)
      done;
      check_int "∆N = s" s (Bipartite.max_deg_n t))
    [ 1; 2; 4; 8; 16 ]

let test_core_avg_degree_bound () =
  List.iter
    (fun s ->
      let cg = Core_graph.create s in
      let t = Core_graph.bip cg in
      let bound = 2.0 *. float_of_int s /. Floatx.log2 (2.0 *. float_of_int s) in
      check_true "δN ≤ 2s/log 2s" (Bipartite.delta_n t <= bound +. 1e-9))
    [ 2; 4; 8; 32; 128 ]

let test_core_blocks_partition_n () =
  let cg = Core_graph.create 8 in
  let total =
    let acc = ref 0 in
    for v = 1 to Core_graph.node_count cg do
      acc := !acc + Core_graph.block_size cg v
    done;
    !acc
  in
  check_int "blocks partition N" (Core_graph.n_size cg) total

let test_core_ancestors () =
  let cg = Core_graph.create 8 in
  let anc = Core_graph.ancestors cg 0 in
  check_int "path length log s + 1" 4 (List.length anc);
  check_true "ends at root" (List.hd (List.rev anc) = 1 || List.hd anc = 1)

let test_core_edge_rule () =
  (* Observation 4.5: leaf z adjacent to block of w iff w ancestor of z. *)
  let cg = Core_graph.create 8 in
  let t = Core_graph.bip cg in
  for j = 0 to 7 do
    let anc = Core_graph.ancestors cg j in
    let expected =
      List.fold_left (fun acc v -> acc + Core_graph.block_size cg v) 0 anc
    in
    check_int "degree = Σ ancestor blocks" expected (Bipartite.deg_s t j);
    List.iter
      (fun v ->
        let off = Core_graph.block_offset cg v in
        check_true "adjacent to ancestor block" (Bipartite.mem_edge t j off))
      anc
  done

let test_core_dp_max_unique_matches_brute_force () =
  List.iter
    (fun s ->
      let cg = Core_graph.create s in
      let brute, _ = Bip_measure.exact_max_unique (Core_graph.bip cg) in
      check_int (Printf.sprintf "s=%d" s) brute (Core_graph.dp_max_unique cg))
    [ 1; 2; 4; 8; 16 ]

let test_core_dp_witness_achieves_max () =
  List.iter
    (fun s ->
      let cg = Core_graph.create s in
      let w = Core_graph.dp_max_unique_witness cg in
      let v = Nbhd.Bip.unique_count (Core_graph.bip cg) w in
      check_int (Printf.sprintf "s=%d witness" s) (Core_graph.dp_max_unique cg) v)
    [ 2; 4; 8; 32; 64 ]

let test_core_dp_max_unique_cap () =
  (* Lemma 4.4(5): ≤ 2s, even at sizes brute force cannot reach. *)
  List.iter
    (fun s ->
      check_true
        (Printf.sprintf "s=%d cap" s)
        (Core_graph.dp_max_unique (Core_graph.create s) <= 2 * s))
    [ 2; 8; 64; 256; 1024 ]

let test_core_dp_min_coverage_matches_brute_force () =
  let s = 8 in
  let cg = Core_graph.create s in
  let t = Core_graph.bip cg in
  let mins = Core_graph.dp_min_coverage cg in
  (* Brute force per size. *)
  let brute = Array.make (s + 1) max_int in
  let full = Bitset.full s in
  Bitset.iter_subsets full (fun sub ->
      let k = Bitset.cardinal sub in
      let cov = Bitset.cardinal (Nbhd.Bip.covered t sub) in
      if cov < brute.(k) then brute.(k) <- cov);
  brute.(0) <- 0;
  for k = 0 to s do
    check_int (Printf.sprintf "k=%d" k) brute.(k) mins.(k)
  done

let test_core_expansion_property () =
  (* Lemma 4.4(4) at scale via the DP. *)
  List.iter
    (fun s ->
      let cg = Core_graph.create s in
      let mins = Core_graph.dp_min_coverage cg in
      let log2s = Floatx.log2 (2.0 *. float_of_int s) in
      for k = 1 to s do
        check_true
          (Printf.sprintf "s=%d k=%d" s k)
          (float_of_int mins.(k) >= (log2s *. float_of_int k) -. 1e-9)
      done)
    [ 2; 8; 64; 256 ]

let test_core_unique_coverage_of_matches_generic () =
  let cg = Core_graph.create 16 in
  let t = Core_graph.bip cg in
  let r = rng ~salt:80 () in
  for _ = 1 to 50 do
    let k = 1 + Wx_util.Rng.int r 16 in
    let s' = Bitset.random_of_universe r 16 k in
    check_int "tree decomposition = generic"
      (Nbhd.Bip.unique_count t s')
      (Core_graph.unique_coverage_of cg s')
  done

let test_core_rejects_non_power_of_two () =
  Alcotest.check_raises "non pow2"
    (Invalid_argument "Core_graph.create: s must be a power of two") (fun () ->
      ignore (Core_graph.create 6))

(* --- generalized core --- *)

let test_blow_up_n () =
  let cg = Core_graph.create 4 in
  let b = Gen_core.blow_up_n cg 3 in
  check_int "|N| tripled" (3 * Core_graph.n_size cg) (Bipartite.n_count b);
  check_int "S degree tripled" (3 * 7) (Bipartite.deg_s b 0);
  check_int "N degree unchanged" (Bipartite.max_deg_n (Core_graph.bip cg)) (Bipartite.max_deg_n b)

let test_blow_up_s () =
  let cg = Core_graph.create 4 in
  let b = Gen_core.blow_up_s cg 3 in
  check_int "|S| tripled" 12 (Bipartite.s_count b);
  check_int "S degree unchanged" 7 (Bipartite.deg_s b 0);
  check_int "N degree tripled" (3 * 4) (Bipartite.max_deg_n b)

let test_gen_core_regimes () =
  (* Large β* relative to ∆* → blow-up-N; small → blow-up-S. *)
  let a = Gen_core.create ~delta_star:64 ~beta_star:8.0 in
  check_true "regime 4.7" (a.Gen_core.regime = Gen_core.Blow_up_n);
  let b = Gen_core.create ~delta_star:64 ~beta_star:0.5 in
  check_true "regime 4.8" (b.Gen_core.regime = Gen_core.Blow_up_s)

let test_gen_core_achieved_close_to_target () =
  let t = Gen_core.create ~delta_star:64 ~beta_star:4.0 in
  check_true "∆ within 2x" (t.Gen_core.achieved_delta <= 2 * t.Gen_core.target_delta);
  check_true "β within 4x of target"
    (t.Gen_core.achieved_beta >= t.Gen_core.target_beta /. 4.0
    && t.Gen_core.achieved_beta <= t.Gen_core.target_beta *. 4.0)

let test_gen_core_max_unique_blow_up_n () =
  let t = Gen_core.create ~delta_star:48 ~beta_star:6.0 in
  if Bipartite.s_count t.Gen_core.bip <= 16 then begin
    let brute, _ = Bip_measure.exact_max_unique t.Gen_core.bip in
    check_int "DP matches brute" brute (Gen_core.max_unique_exact t)
  end

let test_gen_core_max_unique_blow_up_s () =
  let cg = Core_graph.create 4 in
  let b = Gen_core.blow_up_s cg 2 in
  let brute, _ = Bip_measure.exact_max_unique b in
  check_int "S-side copies add nothing" (Core_graph.dp_max_unique cg) brute

let test_gen_core_validation () =
  Alcotest.check_raises "β* too large"
    (Invalid_argument "Gen_core.create: need 2e/∆* <= β* <= ∆*/(2e)") (fun () ->
      ignore (Gen_core.create ~delta_star:8 ~beta_star:4.0))

(* --- worst case --- *)

let make_worst_case () =
  (* Lemma 4.6 needs 2e/∆* ≤ β* ≤ ∆*/(2e) with ∆* = ε∆ and β* = β/ε, i.e.
     a host with ∆ ≥ 2e·β/ε²; a 20-regular host with β = 0.5, ε = 0.4 fits. *)
  let r = rng ~salt:81 () in
  let host = Wx_graph.Gen.random_regular r 64 20 in
  Worst_case.create (rng ~salt:82 ()) ~eps:0.4 ~host ~host_beta:0.5

let test_worst_case_shape () =
  let wc = make_worst_case () in
  let n_star_count = Array.length wc.Worst_case.n_star in
  check_int "new vertices appended"
    (wc.Worst_case.host_n + Bitset.cardinal wc.Worst_case.s_star)
    (Graph.n wc.Worst_case.graph);
  (* N* vertices distinct. *)
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      check_true "distinct" (not (Hashtbl.mem tbl v));
      Hashtbl.add tbl v ())
    wc.Worst_case.n_star;
  check_true "N* within host" (Array.for_all (fun v -> v < wc.Worst_case.host_n) wc.Worst_case.n_star);
  check_true "nonempty" (n_star_count > 0)

let test_worst_case_s_star_edges_only_to_n_star () =
  let wc = make_worst_case () in
  let n_star = Bitset.of_array (Graph.n wc.Worst_case.graph) wc.Worst_case.n_star in
  Bitset.iter
    (fun v ->
      Graph.iter_neighbors wc.Worst_case.graph v (fun w ->
          check_true "neighbor in N*" (Bitset.mem n_star w)))
    wc.Worst_case.s_star

let test_worst_case_degree_bound () =
  let wc = make_worst_case () in
  check_true "∆̃ respected"
    (Graph.max_degree wc.Worst_case.graph <= Worst_case.predicted_delta_tilde wc)

let test_worst_case_wireless_cap () =
  let wc = make_worst_case () in
  check_true "claim 4.10 cap"
    (Worst_case.s_star_wireless_exact wc <= Worst_case.predicted_wireless_cap wc +. 1e-9)

(* --- broadcast chain --- *)

let test_chain_shape () =
  let ch = Broadcast_chain.create (rng ~salt:83 ()) ~copies:4 ~s:8 in
  let per_copy = 8 + Core_graph.n_size (Core_graph.create 8) in
  check_int "total" (1 + (4 * per_copy)) (Broadcast_chain.total_vertices ch);
  check_int "relays" 4 (Array.length ch.Broadcast_chain.relays);
  (* Root adjacent to all of S¹. *)
  Array.iter
    (fun v -> check_true "root—S¹" (Graph.mem_edge ch.Broadcast_chain.graph 0 v))
    ch.Broadcast_chain.s_vertices.(0)

let test_chain_relays_in_their_n () =
  let ch = Broadcast_chain.create (rng ~salt:84 ()) ~copies:3 ~s:4 in
  Array.iteri
    (fun i rt -> check_true "relay ∈ Nⁱ" (Array.mem rt ch.Broadcast_chain.n_vertices.(i)))
    ch.Broadcast_chain.relays

let test_chain_connected_and_diameter () =
  let ch = Broadcast_chain.create (rng ~salt:85 ()) ~copies:3 ~s:4 in
  let g = ch.Broadcast_chain.graph in
  check_true "connected" (Wx_graph.Traversal.is_connected g);
  let d = Wx_graph.Traversal.diameter g in
  let est = Broadcast_chain.diameter_estimate ch in
  check_true
    (Printf.sprintf "diameter %d ≈ estimate %d" d est)
    (d >= est - 2 && d <= est + 3)

let test_chain_relay_order () =
  (* Observation 5.2: relay i is strictly closer to the root than relay i+1. *)
  let ch = Broadcast_chain.create (rng ~salt:86 ()) ~copies:4 ~s:4 in
  let dist = Wx_graph.Traversal.bfs ch.Broadcast_chain.graph ch.Broadcast_chain.root in
  let relays = ch.Broadcast_chain.relays in
  for i = 0 to Array.length relays - 2 do
    check_true "monotone distance" (dist.(relays.(i)) < dist.(relays.(i + 1)))
  done

(* --- families --- *)

let test_families_catalog () =
  check_true "nonempty" (List.length Families.all >= 10);
  check_true "partition"
    (List.length Families.low_arboricity + List.length Families.expanders
    = List.length Families.all)

let test_families_make () =
  let r = rng ~salt:87 () in
  List.iter
    (fun f ->
      let g = f.Families.make r 30 in
      check_true (f.Families.name ^ " nonempty") (Graph.n g > 0);
      check_true (f.Families.name ^ " has edges") (Graph.m g > 0))
    Families.all

let test_families_find () =
  check_true "find grid" ((Families.find "grid").Families.name = "grid");
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Families.find "nope"))

let test_families_low_arboricity_really_low () =
  let r = rng ~salt:88 () in
  List.iter
    (fun f ->
      let g = f.Families.make r 40 in
      check_true
        (f.Families.name ^ " peeling bound <= 3")
        (Wx_graph.Arboricity.lower_bound_peeling g <= 3))
    Families.low_arboricity

let suite =
  [
    Alcotest.test_case "cplus shape" `Quick test_cplus_shape;
    Alcotest.test_case "cplus bad set" `Quick test_cplus_bad_set_has_no_unique;
    Alcotest.test_case "gbad shape" `Quick test_gbad_shape;
    Alcotest.test_case "gbad overlap" `Quick test_gbad_consecutive_overlap;
    Alcotest.test_case "gbad disjoint windows" `Quick test_gbad_nonadjacent_disjoint;
    Alcotest.test_case "gbad βu exact" `Quick test_gbad_unique_expansion_exact;
    Alcotest.test_case "gbad every second" `Quick test_gbad_every_second;
    Alcotest.test_case "gbad remark f/g" `Quick test_gbad_remark_functions;
    Alcotest.test_case "gbad validation" `Quick test_gbad_validation;
    Alcotest.test_case "core shape" `Quick test_core_shape;
    Alcotest.test_case "core avg degree" `Quick test_core_avg_degree_bound;
    Alcotest.test_case "core blocks partition" `Quick test_core_blocks_partition_n;
    Alcotest.test_case "core ancestors" `Quick test_core_ancestors;
    Alcotest.test_case "core edge rule" `Quick test_core_edge_rule;
    Alcotest.test_case "core DP max = brute" `Quick test_core_dp_max_unique_matches_brute_force;
    Alcotest.test_case "core DP witness" `Quick test_core_dp_witness_achieves_max;
    Alcotest.test_case "core DP cap 2s" `Quick test_core_dp_max_unique_cap;
    Alcotest.test_case "core DP min = brute" `Quick test_core_dp_min_coverage_matches_brute_force;
    Alcotest.test_case "core expansion L4.4(4)" `Quick test_core_expansion_property;
    Alcotest.test_case "core tree vs generic" `Quick test_core_unique_coverage_of_matches_generic;
    Alcotest.test_case "core rejects non-pow2" `Quick test_core_rejects_non_power_of_two;
    Alcotest.test_case "blow up N" `Quick test_blow_up_n;
    Alcotest.test_case "blow up S" `Quick test_blow_up_s;
    Alcotest.test_case "gen core regimes" `Quick test_gen_core_regimes;
    Alcotest.test_case "gen core achieved params" `Quick test_gen_core_achieved_close_to_target;
    Alcotest.test_case "gen core DP (N blow-up)" `Quick test_gen_core_max_unique_blow_up_n;
    Alcotest.test_case "gen core DP (S blow-up)" `Quick test_gen_core_max_unique_blow_up_s;
    Alcotest.test_case "gen core validation" `Quick test_gen_core_validation;
    Alcotest.test_case "worst case shape" `Quick test_worst_case_shape;
    Alcotest.test_case "worst case S* edges" `Quick test_worst_case_s_star_edges_only_to_n_star;
    Alcotest.test_case "worst case degree" `Quick test_worst_case_degree_bound;
    Alcotest.test_case "worst case wireless cap" `Quick test_worst_case_wireless_cap;
    Alcotest.test_case "chain shape" `Quick test_chain_shape;
    Alcotest.test_case "chain relays" `Quick test_chain_relays_in_their_n;
    Alcotest.test_case "chain connected+diameter" `Quick test_chain_connected_and_diameter;
    Alcotest.test_case "chain relay order" `Quick test_chain_relay_order;
    Alcotest.test_case "families catalog" `Quick test_families_catalog;
    Alcotest.test_case "families make" `Quick test_families_make;
    Alcotest.test_case "families find" `Quick test_families_find;
    Alcotest.test_case "families low arboricity" `Quick test_families_low_arboricity_really_low;
  ]
