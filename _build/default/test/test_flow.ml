module Flow = Wx_graph.Flow
module Densest = Wx_graph.Densest
module Gen = Wx_graph.Gen
module Graph = Wx_graph.Graph
module Arboricity = Wx_graph.Arboricity
module Bitset = Wx_util.Bitset
open Common

(* --- Dinic --- *)

let test_single_arc () =
  let f = Flow.create 2 in
  Flow.add_edge f 0 1 5;
  check_int "flow" 5 (Flow.max_flow f ~source:0 ~sink:1)

let test_series_bottleneck () =
  let f = Flow.create 3 in
  Flow.add_edge f 0 1 7;
  Flow.add_edge f 1 2 3;
  check_int "bottleneck" 3 (Flow.max_flow f ~source:0 ~sink:2)

let test_parallel_paths () =
  let f = Flow.create 4 in
  Flow.add_edge f 0 1 3;
  Flow.add_edge f 1 3 3;
  Flow.add_edge f 0 2 4;
  Flow.add_edge f 2 3 4;
  check_int "sum" 7 (Flow.max_flow f ~source:0 ~sink:3)

let test_classic_network () =
  (* CLRS figure: max flow 23. *)
  let f = Flow.create 6 in
  List.iter
    (fun (u, v, c) -> Flow.add_edge f u v c)
    [
      (0, 1, 16); (0, 2, 13); (1, 2, 10); (2, 1, 4); (1, 3, 12); (3, 2, 9);
      (2, 4, 14); (4, 3, 7); (3, 5, 20); (4, 5, 4);
    ];
  check_int "CLRS value" 23 (Flow.max_flow f ~source:0 ~sink:5)

let test_disconnected () =
  let f = Flow.create 4 in
  Flow.add_edge f 0 1 5;
  Flow.add_edge f 2 3 5;
  check_int "no path" 0 (Flow.max_flow f ~source:0 ~sink:3)

let test_min_cut_side () =
  let f = Flow.create 4 in
  Flow.add_edge f 0 1 1;
  Flow.add_edge f 1 2 10;
  Flow.add_edge f 2 3 10;
  let v = Flow.max_flow f ~source:0 ~sink:3 in
  check_int "flow 1" 1 v;
  let side = Flow.min_cut_side f ~source:0 in
  check_true "cut after the bottleneck" (side.(0) && (not side.(1)) && not side.(3))

let test_rejects_bad_input () =
  let f = Flow.create 2 in
  Alcotest.check_raises "negative cap" (Invalid_argument "Flow.add_edge: negative capacity")
    (fun () -> Flow.add_edge f 0 1 (-1));
  Alcotest.check_raises "same node" (Invalid_argument "Flow.max_flow: source = sink") (fun () ->
      ignore (Flow.max_flow f ~source:0 ~sink:0))

let test_flow_vs_bipartite_matching () =
  (* Max flow on a unit bipartite network = max matching; K3,3 → 3. *)
  let f = Flow.create 8 in
  for u = 0 to 2 do
    Flow.add_edge f 6 u 1;
    for v = 3 to 5 do
      Flow.add_edge f u v 1
    done
  done;
  for v = 3 to 5 do
    Flow.add_edge f v 7 1
  done;
  check_int "perfect matching" 3 (Flow.max_flow f ~source:6 ~sink:7)

(* --- densest subgraph / exact arboricity --- *)

let test_density_complete () =
  (* K5: densest-at-offset-1 is the whole graph: 10/4. *)
  let num, den, u = Densest.max_density (Gen.complete 5) in
  check_int "num" 5 num;
  check_int "den" 2 den;
  check_int "whole graph" 5 (Bitset.cardinal u)

let test_density_offset0 () =
  (* Classic densest subgraph of K4 plus a pendant: the K4 with density 6/4. *)
  let g = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4) ] in
  let num, den, u = Densest.max_density ~offset:0 g in
  check_float "density 3/2" 1.5 (float_of_int num /. float_of_int den);
  check_int "K4 found" 4 (Bitset.cardinal u);
  check_true "pendant excluded" (not (Bitset.mem u 4))

let test_arboricity_matches_enumeration () =
  List.iter
    (fun g ->
      check_int
        (Printf.sprintf "n=%d m=%d" (Graph.n g) (Graph.m g))
        (Arboricity.exact g) (Densest.arboricity_exact g))
    [
      Gen.complete 4; Gen.complete 5; Gen.complete 6; Gen.cycle 8; Gen.path 8;
      Gen.binary_tree 3; Gen.grid 3 4; Gen.star 9; Gen.hypercube 3;
      Gen.complete_bipartite 3 4; Gen.torus 3 4;
    ]

let test_arboricity_random_cross_check () =
  let r = rng ~salt:120 () in
  for _ = 1 to 20 do
    let g = Gen.gnp r 10 0.4 in
    check_int "random cross-check" (Arboricity.exact g) (Densest.arboricity_exact g)
  done

let test_arboricity_large_known () =
  (* Values where enumeration is impossible but theory is known:
     K_n has arboricity ⌈n/2⌉; big grids are planar with arboricity 2;
     trees are 1; hypercube Q_6 has arboricity ⌈(6·64/2)/(64−1)⌉ = ⌈192/63⌉ = ...
     actually max density of Q_d is the whole cube: d·2^(d−1)/(2^d − 1). *)
  check_int "K30" 15 (Densest.arboricity_exact (Gen.complete 30));
  check_int "grid 10x10" 2 (Densest.arboricity_exact (Gen.grid 10 10));
  check_int "tree" 1 (Densest.arboricity_exact (Gen.binary_tree 7));
  check_int "Q6" 4 (Densest.arboricity_exact (Gen.hypercube 6));
  check_int "cycle 500" 2 (Densest.arboricity_exact (Gen.cycle 500))

let test_density_sandwich () =
  (* peeling lower bound <= exact <= degeneracy, at a size enumeration
     cannot reach. *)
  let r = rng ~salt:121 () in
  for _ = 1 to 5 do
    let g = Gen.gnp r 60 0.1 in
    if Graph.m g > 0 then begin
      let ex = Densest.arboricity_exact g in
      check_true "peeling <= exact" (Arboricity.lower_bound_peeling g <= ex);
      check_true "exact <= degeneracy" (ex <= max 1 (Arboricity.degeneracy g))
    end
  done

let suite =
  [
    Alcotest.test_case "single arc" `Quick test_single_arc;
    Alcotest.test_case "series bottleneck" `Quick test_series_bottleneck;
    Alcotest.test_case "parallel paths" `Quick test_parallel_paths;
    Alcotest.test_case "classic network" `Quick test_classic_network;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "min cut side" `Quick test_min_cut_side;
    Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
    Alcotest.test_case "bipartite matching" `Quick test_flow_vs_bipartite_matching;
    Alcotest.test_case "density complete" `Quick test_density_complete;
    Alcotest.test_case "density offset 0" `Quick test_density_offset0;
    Alcotest.test_case "arboricity = enumeration" `Quick test_arboricity_matches_enumeration;
    Alcotest.test_case "arboricity random cross-check" `Quick test_arboricity_random_cross_check;
    Alcotest.test_case "arboricity large known" `Quick test_arboricity_large_known;
    Alcotest.test_case "density sandwich" `Quick test_density_sandwich;
  ]
