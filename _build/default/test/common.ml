(* Shared helpers for the test suite. *)

module Bitset = Wx_util.Bitset
module Rng = Wx_util.Rng

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Wx_util.Floatx.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_true msg b = Alcotest.(check bool) msg true b
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let bitset_testable =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Bitset.to_string s))
    Bitset.equal

let sorted_list_of_bitset s = Bitset.elements s

(* A tiny deterministic pool of rngs for tests. *)
let rng ?(salt = 0) () = Rng.create (424242 + salt)

(* Random small graph generator for qcheck properties: pick n in [lo, hi]
   and each edge with probability p drawn from the seed. *)
let arbitrary_graph ~lo ~hi =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Wx_graph.Graph.pp_adjacency g)
    QCheck.Gen.(
      let* n = int_range lo hi in
      let* p = float_range 0.15 0.75 in
      let* seed = int_range 0 1_000_000 in
      let r = Rng.create seed in
      return (Wx_graph.Gen.gnp r n p))

let arbitrary_bipartite ~smax ~nmax =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Wx_graph.Bipartite.pp t)
    QCheck.Gen.(
      let* s = int_range 2 smax in
      let* n = int_range 2 nmax in
      let* d = int_range 1 (min 4 n) in
      let* seed = int_range 0 1_000_000 in
      let r = Rng.create seed in
      return (Wx_graph.Gen.random_bipartite_sdeg r ~s ~n ~d))

let qcheck ?(count = 100) name prop arb =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)
