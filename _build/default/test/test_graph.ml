module Graph = Wx_graph.Graph
module Builder = Wx_graph.Builder
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

let triangle = Graph.of_edges 3 [ (0, 1); (1, 2); (2, 0) ]

let test_of_edges_basic () =
  check_int "n" 3 (Graph.n triangle);
  check_int "m" 3 (Graph.m triangle);
  check_int "deg" 2 (Graph.degree triangle 0)

let test_of_edges_dedup () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 0); (0, 1) ] in
  check_int "m" 1 (Graph.m g)

let test_of_edges_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
      ignore (Graph.of_edges 3 [ (1, 1) ]))

let test_of_edges_rejects_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument "Graph.of_edges: endpoint out of range")
    (fun () -> ignore (Graph.of_edges 3 [ (0, 3) ]))

let test_neighbors_sorted () =
  let g = Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  check_true "sorted" (Graph.neighbors g 2 = [| 0; 1; 3; 4 |])

let test_mem_edge () =
  check_true "mem" (Graph.mem_edge triangle 0 1);
  check_true "sym" (Graph.mem_edge triangle 1 0);
  check_true "no" (not (Graph.mem_edge (Gen.path 3) 0 2));
  check_true "out of range" (not (Graph.mem_edge triangle 0 99))

let test_degrees () =
  let star = Gen.star 5 in
  check_int "max" 4 (Graph.max_degree star);
  check_int "min" 1 (Graph.min_degree star);
  check_float "avg" (8.0 /. 5.0) (Graph.avg_degree star);
  check_true "not regular" (Graph.is_regular star = None);
  check_true "cycle regular" (Graph.is_regular (Gen.cycle 6) = Some 2)

let test_iter_edges_once () =
  let count = ref 0 in
  Graph.iter_edges triangle (fun u v ->
      incr count;
      check_true "ordered" (u < v));
  check_int "each edge once" 3 !count

let test_induced () =
  let g = Gen.cycle 6 in
  let sub, map = Graph.induced g (Bitset.of_list 6 [ 0; 1; 2; 4 ]) in
  check_int "n" 4 (Graph.n sub);
  (* Edges kept: (0,1), (1,2); vertex 4 isolated. *)
  check_int "m" 2 (Graph.m sub);
  check_true "map" (map = [| 0; 1; 2; 4 |])

let test_disjoint_union () =
  let g = Graph.disjoint_union triangle (Gen.path 2) in
  check_int "n" 5 (Graph.n g);
  check_int "m" 4 (Graph.m g);
  check_true "shifted edge" (Graph.mem_edge g 3 4);
  check_true "no cross" (not (Graph.mem_edge g 0 3))

let test_add_vertices_and_edges () =
  let g = Graph.add_vertices_and_edges triangle 2 [ (3, 0); (4, 3) ] in
  check_int "n" 5 (Graph.n g);
  check_int "m" 5 (Graph.m g);
  check_true "new edge" (Graph.mem_edge g 3 4)

let test_relabel () =
  let g = Graph.relabel (Gen.path 3) [| 2; 0; 1 |] in
  (* path 0-1-2 becomes 2-0-1. *)
  check_true "edge 2-0" (Graph.mem_edge g 2 0);
  check_true "edge 0-1" (Graph.mem_edge g 0 1);
  check_true "no 2-1" (not (Graph.mem_edge g 2 1))

let test_relabel_rejects_non_permutation () =
  Alcotest.check_raises "not perm" (Invalid_argument "Graph.relabel: not a permutation")
    (fun () -> ignore (Graph.relabel triangle [| 0; 0; 1 |]))

let test_equal () =
  check_true "equal" (Graph.equal triangle (Graph.of_edges 3 [ (2, 0); (0, 1); (1, 2) ]));
  check_true "not equal" (not (Graph.equal triangle (Gen.path 3)))

(* --- generators --- *)

let test_gen_cycle () =
  let g = Gen.cycle 5 in
  check_int "n" 5 (Graph.n g);
  check_int "m" 5 (Graph.m g);
  check_true "regular" (Graph.is_regular g = Some 2)

let test_gen_complete () =
  let g = Gen.complete 6 in
  check_int "m" 15 (Graph.m g);
  check_true "regular" (Graph.is_regular g = Some 5)

let test_gen_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  check_int "n" 7 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  check_true "no intra-left" (not (Graph.mem_edge g 0 1));
  check_true "cross" (Graph.mem_edge g 0 3)

let test_gen_grid () =
  let g = Gen.grid 3 4 in
  check_int "n" 12 (Graph.n g);
  check_int "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  check_int "corner deg" 2 (Graph.degree g 0)

let test_gen_torus () =
  let g = Gen.torus 4 5 in
  check_true "4-regular" (Graph.is_regular g = Some 4);
  check_int "m" (2 * 20) (Graph.m g)

let test_gen_hypercube () =
  let g = Gen.hypercube 4 in
  check_int "n" 16 (Graph.n g);
  check_true "regular" (Graph.is_regular g = Some 4);
  check_int "m" 32 (Graph.m g)

let test_gen_binary_tree () =
  let g = Gen.binary_tree 3 in
  check_int "n" 15 (Graph.n g);
  check_int "m" 14 (Graph.m g);
  check_int "root deg" 2 (Graph.degree g 0)

let test_gen_random_regular () =
  let r = rng ~salt:30 () in
  for _ = 1 to 10 do
    let g = Gen.random_regular r 20 3 in
    check_true "3-regular" (Graph.is_regular g = Some 3)
  done

let test_gen_random_regular_validation () =
  let r = rng ~salt:31 () in
  Alcotest.check_raises "odd product" (Invalid_argument "Gen.random_regular: n*d must be even")
    (fun () -> ignore (Gen.random_regular r 5 3))

let test_gen_gnp_extremes () =
  let r = rng ~salt:32 () in
  check_int "p=0 empty" 0 (Graph.m (Gen.gnp r 10 0.0));
  check_int "p=1 complete" 45 (Graph.m (Gen.gnp r 10 1.0))

let test_gen_margulis () =
  let g = Gen.margulis 5 in
  check_int "n" 25 (Graph.n g);
  check_true "bounded degree" (Graph.max_degree g <= 8);
  check_true "connected" (Wx_graph.Traversal.is_connected g)

let test_gen_bipartite_sdeg () =
  let r = rng ~salt:33 () in
  let b = Gen.random_bipartite_sdeg r ~s:10 ~n:20 ~d:4 in
  for u = 0 to 9 do
    check_int "deg" 4 (Wx_graph.Bipartite.deg_s b u)
  done

let test_double_cover () =
  let g = Gen.double_cover triangle in
  check_int "n" 6 (Graph.n g);
  check_int "m" 6 (Graph.m g);
  (* Triangle's double cover is the 6-cycle: connected, 2-regular. *)
  check_true "regular" (Graph.is_regular g = Some 2);
  check_true "connected" (Wx_graph.Traversal.is_connected g)

(* --- builder --- *)

let test_builder () =
  let b = Builder.create 3 in
  Builder.add_edge b 0 1;
  Builder.add_edge b 1 0;
  check_int "dedup" 1 (Builder.edge_count b);
  check_true "mem" (Builder.mem_edge b 0 1);
  let v = Builder.add_vertex b in
  check_int "new vertex" 3 v;
  Builder.add_edge b 3 0;
  let g = Builder.to_graph b in
  check_int "n" 4 (Graph.n g);
  check_int "m" 2 (Graph.m g)

let test_builder_rejects_self_loop () =
  let b = Builder.create 3 in
  Alcotest.check_raises "loop" (Invalid_argument "Builder.add_edge: self-loop") (fun () ->
      Builder.add_edge b 1 1)

let qcheck_tests =
  [
    qcheck ~count:50 "handshake: sum deg = 2m"
      (fun g ->
        let total = ref 0 in
        Graph.iter_vertices g (fun v -> total := !total + Graph.degree g v);
        !total = 2 * Graph.m g)
      (arbitrary_graph ~lo:2 ~hi:20);
    qcheck ~count:50 "mem_edge consistent with neighbors"
      (fun g ->
        let ok = ref true in
        Graph.iter_vertices g (fun u ->
            Graph.iter_neighbors g u (fun v -> if not (Graph.mem_edge g u v) then ok := false));
        !ok)
      (arbitrary_graph ~lo:2 ~hi:20);
    qcheck ~count:30 "induced subgraph edge subset"
      (fun g ->
        let r = Wx_util.Rng.create 5 in
        let k = max 1 (Graph.n g / 2) in
        let s = Bitset.random_of_universe r (Graph.n g) k in
        let sub, map = Graph.induced g s in
        let ok = ref true in
        Graph.iter_edges sub (fun u v ->
            if not (Graph.mem_edge g map.(u) map.(v)) then ok := false);
        !ok)
      (arbitrary_graph ~lo:2 ~hi:20);
  ]

let suite =
  [
    Alcotest.test_case "of_edges basic" `Quick test_of_edges_basic;
    Alcotest.test_case "of_edges dedup" `Quick test_of_edges_dedup;
    Alcotest.test_case "reject self-loop" `Quick test_of_edges_rejects_self_loop;
    Alcotest.test_case "reject out of range" `Quick test_of_edges_rejects_out_of_range;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "mem_edge" `Quick test_mem_edge;
    Alcotest.test_case "degrees" `Quick test_degrees;
    Alcotest.test_case "iter_edges once" `Quick test_iter_edges_once;
    Alcotest.test_case "induced" `Quick test_induced;
    Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
    Alcotest.test_case "add vertices+edges" `Quick test_add_vertices_and_edges;
    Alcotest.test_case "relabel" `Quick test_relabel;
    Alcotest.test_case "relabel rejects" `Quick test_relabel_rejects_non_permutation;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "gen cycle" `Quick test_gen_cycle;
    Alcotest.test_case "gen complete" `Quick test_gen_complete;
    Alcotest.test_case "gen complete bipartite" `Quick test_gen_complete_bipartite;
    Alcotest.test_case "gen grid" `Quick test_gen_grid;
    Alcotest.test_case "gen torus" `Quick test_gen_torus;
    Alcotest.test_case "gen hypercube" `Quick test_gen_hypercube;
    Alcotest.test_case "gen binary tree" `Quick test_gen_binary_tree;
    Alcotest.test_case "gen random regular" `Quick test_gen_random_regular;
    Alcotest.test_case "gen random regular validation" `Quick test_gen_random_regular_validation;
    Alcotest.test_case "gen gnp extremes" `Quick test_gen_gnp_extremes;
    Alcotest.test_case "gen margulis" `Quick test_gen_margulis;
    Alcotest.test_case "gen bipartite sdeg" `Quick test_gen_bipartite_sdeg;
    Alcotest.test_case "double cover" `Quick test_double_cover;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "builder rejects loop" `Quick test_builder_rejects_self_loop;
  ]
  @ qcheck_tests
