module Bounds = Wx_expansion.Bounds
open Common

let test_lemma_3_1 () =
  (* d = 4, λ₂ = 2, αu = 1/2, βu = 1: (3/4)·1 + (2/4)·(1/2) = 1. *)
  check_float "value" 1.0 (Bounds.lemma_3_1 ~d:4 ~lambda2:2.0 ~alpha_u:0.5 ~beta_u:1.0)

let test_lemma_3_2 () =
  check_float "2β−∆" 2.0 (Bounds.lemma_3_2 ~beta:4.0 ~delta:6);
  check_true "vacuous below ∆/2" (Bounds.lemma_3_2 ~beta:2.0 ~delta:6 < 0.0)

let test_gbad_wireless_lb () =
  check_float "∆/2 dominates" 3.0 (Bounds.gbad_wireless_lb ~beta:3.0 ~delta:6);
  check_float "2β−∆ dominates" 4.0 (Bounds.gbad_wireless_lb ~beta:5.0 ~delta:6)

let test_theorem_1_1_denominator () =
  (* β = 2, ∆ = 8: min{4, 16} = 4, log₂ 8 = 3. *)
  check_float "denominator" 3.0 (Bounds.theorem_1_1_denominator ~beta:2.0 ~delta:8);
  (* β = 1/2, ∆ = 8: min{16, 4} = 4 → same. *)
  check_float "symmetric in β ↔ 1/β" 3.0 (Bounds.theorem_1_1_denominator ~beta:0.5 ~delta:8)

let test_theorem_1_1 () =
  check_float "β/denominator" (2.0 /. 3.0) (Bounds.theorem_1_1 ~beta:2.0 ~delta:8)

let test_theorem_1_1_never_exceeds_beta () =
  List.iter
    (fun (beta, delta) ->
      check_true "bound <= β" (Bounds.theorem_1_1 ~beta ~delta <= beta +. 1e-9))
    [ (1.0, 2); (0.5, 4); (3.0, 10); (8.0, 16); (0.1, 100) ]

let test_lemma_4_2_4_3 () =
  check_float "4.2" (2.0 /. 3.0) (Bounds.lemma_4_2 ~beta:2.0 ~delta_n:4.0);
  check_float "4.3" (0.5 /. 3.0) (Bounds.lemma_4_3 ~beta:0.5 ~delta_s:4.0)

let test_decay_success_probability () =
  check_float "j=0" 0.5 (Bounds.decay_success_probability 0);
  (* All j: bounded below by e⁻³ (the proof's bound). *)
  for j = 0 to 20 do
    check_true "≥ e⁻³" (Bounds.decay_success_probability j >= exp (-3.0) -. 1e-12)
  done

let test_appendix_fractions () =
  check_float "naive" 0.125 (Bounds.naive_fraction ~delta_max:8);
  check_float "partition" (1.0 /. 16.0) (Bounds.partition_fraction ~delta_n:2.0);
  check_float "near-optimal δ=2" (1.0 /. 18.0) (Bounds.near_optimal_fraction ~delta_n:2.0);
  (* Corollary A.7's magic constant at the optimizing c. *)
  let f = Bounds.bucket_fraction ~delta_max:256 () in
  check_float ~eps:1e-4 "0.20087/log ∆" (0.20087 /. 8.0) f

let test_c_star_is_optimal () =
  (* Perturbing c in either direction must not beat c_star. *)
  let at c = Bounds.bucket_fraction ~c ~delta_max:64 () in
  let star = at Bounds.c_star in
  check_true "left" (at (Bounds.c_star -. 0.3) <= star +. 1e-12);
  check_true "right" (at (Bounds.c_star +. 0.3) <= star +. 1e-12)

let test_corollary_a15 () =
  (* δ < 2 falls back to A.13's form. *)
  check_float "small δ" (Bounds.near_optimal_fraction ~delta_n:1.5)
    (Bounds.corollary_a15_fraction ~delta_n:1.5);
  (* Large δ: min{1/(9 log δ), 1/20}. *)
  check_float "huge δ" (1.0 /. (9.0 *. 20.0)) (Bounds.corollary_a15_fraction ~delta_n:1048576.0)

let test_mg_dominates_components () =
  List.iter
    (fun d ->
      let mg = Bounds.mg d in
      check_true "≥ A.13" (mg >= Bounds.near_optimal_fraction ~delta_n:d -. 1e-12);
      check_true "≥ A.15" (mg >= Bounds.corollary_a15_fraction ~delta_n:d -. 1e-12))
    [ 1.0; 2.0; 4.0; 10.0; 100.0; 10000.0 ]

let test_chlamtac_weinstein () =
  check_float "1/log|S|" 0.25 (Bounds.chlamtac_weinstein_fraction ~s_size:16)

let test_avg_degree_refinement_beats_cw_when_sparse () =
  (* min{δN, δS} small but |S| huge: our bound must be far better. *)
  let ours = Bounds.spokesmen_avg_degree_fraction ~delta_s:3.0 ~delta_n:2.0 in
  let cw = Bounds.chlamtac_weinstein_fraction ~s_size:1_000_000 in
  check_true "refinement wins" (ours > cw)

let test_broadcast_lower_bound () =
  check_float "D log(n/D)" (8.0 *. Wx_util.Floatx.log2 128.0)
    (Bounds.broadcast_lower_bound ~n:1024 ~diameter:8)

let test_corollary_5_1_rounds () =
  check_int "i=0" 1 (Bounds.corollary_5_1_min_rounds ~s:64 ~i:0);
  check_int "i=3" 4 (Bounds.corollary_5_1_min_rounds ~s:64 ~i:3)

let test_monotonicity_qcheck =
  [
    qcheck ~count:200 "theorem 1.1 bound monotone in β for fixed regime"
      (fun (b, d) ->
        let beta = 1.0 +. Float.abs b in
        let delta = 2 + (abs d mod 50) in
        if beta +. 0.1 > float_of_int delta then true
        else
          (* In the β ≥ 1 regime the bound is increasing in β. *)
          Bounds.theorem_1_1 ~beta:(beta +. 0.1) ~delta >= Bounds.theorem_1_1 ~beta ~delta -. 1e-9)
      QCheck.(pair (float_bound_exclusive 10.0) small_signed_int);
    qcheck ~count:200 "near-optimal fraction decreasing in δ"
      (fun d ->
        let d = 1.0 +. Float.abs d in
        Bounds.near_optimal_fraction ~delta_n:(d +. 1.0)
        <= Bounds.near_optimal_fraction ~delta_n:d +. 1e-12)
      QCheck.(float_bound_exclusive 1000.0);
  ]

let suite =
  [
    Alcotest.test_case "lemma 3.1" `Quick test_lemma_3_1;
    Alcotest.test_case "lemma 3.2" `Quick test_lemma_3_2;
    Alcotest.test_case "gbad wireless lb" `Quick test_gbad_wireless_lb;
    Alcotest.test_case "thm 1.1 denominator" `Quick test_theorem_1_1_denominator;
    Alcotest.test_case "thm 1.1" `Quick test_theorem_1_1;
    Alcotest.test_case "thm 1.1 <= β" `Quick test_theorem_1_1_never_exceeds_beta;
    Alcotest.test_case "lemmas 4.2/4.3" `Quick test_lemma_4_2_4_3;
    Alcotest.test_case "decay success prob" `Quick test_decay_success_probability;
    Alcotest.test_case "appendix fractions" `Quick test_appendix_fractions;
    Alcotest.test_case "c* optimal" `Quick test_c_star_is_optimal;
    Alcotest.test_case "corollary A.15" `Quick test_corollary_a15;
    Alcotest.test_case "MG dominates" `Quick test_mg_dominates_components;
    Alcotest.test_case "chlamtac-weinstein" `Quick test_chlamtac_weinstein;
    Alcotest.test_case "refinement beats CW" `Quick test_avg_degree_refinement_beats_cw_when_sparse;
    Alcotest.test_case "broadcast lb" `Quick test_broadcast_lower_bound;
    Alcotest.test_case "cor 5.1 rounds" `Quick test_corollary_5_1_rounds;
  ]
  @ test_monotonicity_qcheck
