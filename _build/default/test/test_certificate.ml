module Certificate = Wx_expansion.Certificate
module Measure = Wx_expansion.Measure
module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

let cycle10 = Gen.cycle 10
let arc = Bitset.of_list 10 [ 0; 1; 2; 3; 4 ]

let test_beta_upper_roundtrip () =
  let c = Certificate.beta_upper cycle10 arc in
  check_true "verifies" (Certificate.verify cycle10 c);
  (match c.Certificate.claim with
  | Certificate.Beta_at_most v -> check_float "value 2/5" 0.4 v
  | _ -> Alcotest.fail "wrong claim");
  (* The certified upper bound really bounds the exact measure. *)
  let exact = (Measure.beta_exact cycle10).Measure.value in
  (match c.Certificate.claim with
  | Certificate.Beta_at_most v -> check_true "sound" (exact <= v +. 1e-9)
  | _ -> ())

let test_beta_u_and_w_upper () =
  let cu = Certificate.beta_u_upper cycle10 (Bitset.of_list 10 [ 0; 2; 4; 6; 8 ]) in
  check_true "βu cert verifies" (Certificate.verify cycle10 cu);
  (match cu.Certificate.claim with
  | Certificate.Beta_u_at_most v -> check_float "alternating set: 0" 0.0 v
  | _ -> Alcotest.fail "wrong claim");
  let cw = Certificate.beta_w_upper cycle10 arc in
  check_true "βw cert verifies" (Certificate.verify cycle10 cw)

let test_wireless_lower () =
  let s' = Bitset.of_list 10 [ 0; 4 ] in
  let c = Certificate.wireless_lower cycle10 arc s' in
  check_true "verifies" (Certificate.verify cycle10 c);
  (match c.Certificate.claim with
  | Certificate.Wireless_set_at_least v ->
      (* {0,4} uniquely covers 9 and 5: 2/5. *)
      check_float "2/5" 0.4 v
  | _ -> Alcotest.fail "wrong claim")

let test_verify_rejects_corruption () =
  let c = Certificate.beta_upper cycle10 arc in
  (* Claim a tighter bound than the witness provides. *)
  let corrupted = { c with Certificate.claim = Certificate.Beta_at_most 0.1 } in
  check_true "corrupted value rejected" (not (Certificate.verify cycle10 corrupted));
  (* Wrong graph (different universe). *)
  check_true "wrong graph rejected" (not (Certificate.verify (Gen.cycle 12) c))

let test_verify_rejects_alpha_violation () =
  let big = Bitset.of_list 10 [ 0; 1; 2; 3; 4; 5; 6 ] in
  Alcotest.check_raises "witness too large"
    (Invalid_argument "Certificate.beta_upper: witness violates the α-limit") (fun () ->
      ignore (Certificate.beta_upper cycle10 big));
  (* Hand-built certificate with an α-violating witness fails verify. *)
  let c =
    { Certificate.claim = Certificate.Beta_at_most 1.0; alpha = 0.5; s = big; s' = None }
  in
  check_true "verify rejects" (not (Certificate.verify cycle10 c))

let test_verify_rejects_non_subset () =
  Alcotest.check_raises "S' not subset"
    (Invalid_argument "Certificate.wireless_lower: S' ⊄ S") (fun () ->
      ignore (Certificate.wireless_lower cycle10 arc (Bitset.of_list 10 [ 7 ])))

let test_sampled_witnesses_certify () =
  (* The measure engine's sampled witnesses convert into verifying
     certificates — the pipeline EXPERIMENTS.md relies on. *)
  let g = Gen.random_regular (rng ~salt:180 ()) 30 4 in
  let w = Measure.beta_sampled (rng ~salt:181 ()) ~samples:300 g in
  let c = Certificate.beta_upper g w.Measure.witness in
  check_true "verifies" (Certificate.verify g c)

let test_pp () =
  let c = Certificate.beta_upper cycle10 arc in
  let s = Format.asprintf "%a" Certificate.pp c in
  check_true "mentions value" (String.length s > 10)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_dot_export () =
  let dot = Wx_graph.Graph_io.to_dot ~highlight:arc cycle10 in
  check_true "has edges" (contains dot "0 -- 1;");
  check_true "has highlight" (contains dot "fillcolor");
  check_true "well formed" (contains dot "graph G {")

let suite =
  [
    Alcotest.test_case "beta upper roundtrip" `Quick test_beta_upper_roundtrip;
    Alcotest.test_case "beta_u / beta_w upper" `Quick test_beta_u_and_w_upper;
    Alcotest.test_case "wireless lower" `Quick test_wireless_lower;
    Alcotest.test_case "verify rejects corruption" `Quick test_verify_rejects_corruption;
    Alcotest.test_case "verify rejects alpha" `Quick test_verify_rejects_alpha_violation;
    Alcotest.test_case "verify rejects non-subset" `Quick test_verify_rejects_non_subset;
    Alcotest.test_case "sampled witnesses certify" `Quick test_sampled_witnesses_certify;
    Alcotest.test_case "pp" `Quick test_pp;
    Alcotest.test_case "dot export" `Quick test_dot_export;
  ]
