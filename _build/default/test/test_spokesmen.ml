module Solver = Wx_spokesmen.Solver
module Decay = Wx_spokesmen.Decay
module Naive = Wx_spokesmen.Naive
module Partition = Wx_spokesmen.Partition
module Buckets = Wx_spokesmen.Buckets
module Exact = Wx_spokesmen.Exact
module Portfolio = Wx_spokesmen.Portfolio
module Bounds = Wx_expansion.Bounds
module Bipartite = Wx_graph.Bipartite
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

let fixtures () =
  let r = rng ~salt:60 () in
  [
    ("rand-10x20-d3", Gen.random_bipartite_sdeg r ~s:10 ~n:20 ~d:3);
    ("rand-12x8-d4", Gen.random_bipartite_sdeg r ~s:12 ~n:8 ~d:4);
    ("rand-14x14-d2", Gen.random_bipartite_sdeg r ~s:14 ~n:14 ~d:2);
    ("core-8", Wx_constructions.Core_graph.bip (Wx_constructions.Core_graph.create 8));
    ("gbad", Wx_constructions.Gbad.bip (Wx_constructions.Gbad.create ~s:6 ~delta:6 ~beta:4));
  ]

let gamma t = float_of_int (Bipartite.n_count t)

let check_valid name t (r : Solver.result) =
  check_true (name ^ ": chosen within S side")
    (Bitset.universe_size r.Solver.chosen = Bipartite.s_count t);
  check_int (name ^ ": covered consistent") (Solver.evaluate t r.Solver.chosen) r.Solver.covered

(* --- generic solver contracts --- *)

let test_all_solvers_valid () =
  let r = rng ~salt:61 () in
  List.iter
    (fun (name, t) ->
      List.iter
        (fun (sname, solve) ->
          let result = solve r t in
          check_valid (name ^ "/" ^ sname) t result)
        Portfolio.solvers)
    (fixtures ())

(* --- decay --- *)

let test_decay_buckets_partition () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:62 ()) ~s:10 ~n:30 ~d:4 in
  let bs = Decay.buckets t in
  (* Buckets hold distinct vertices with the right degree ranges. *)
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun (j, ws) ->
      Array.iter
        (fun w ->
          check_true "no dup" (not (Hashtbl.mem seen w));
          Hashtbl.add seen w ();
          let d = Bipartite.deg_n t w in
          check_true "degree in bucket" (d >= 1 lsl j && d < 1 lsl (j + 1)))
        ws)
    bs

let test_decay_bucket_of_degree () =
  check_int "1" 0 (Decay.bucket_of_degree 1);
  check_int "2" 1 (Decay.bucket_of_degree 2);
  check_int "3" 1 (Decay.bucket_of_degree 3);
  check_int "8" 3 (Decay.bucket_of_degree 8)

let test_decay_largest_bucket_majority () =
  (* The largest bucket must hold ≥ |N'|/number-of-buckets vertices. *)
  let t = Gen.random_bipartite_sdeg (rng ~salt:63 ()) ~s:16 ~n:40 ~d:5 in
  let bs = Decay.buckets t in
  let total = Array.fold_left (fun acc (_, ws) -> acc + Array.length ws) 0 bs in
  let _, big = Decay.largest_bucket t in
  check_true "pigeonhole" (Array.length big * Array.length bs >= total)

let test_decay_achieves_bound_on_fixtures () =
  (* Lemma 4.2's guarantee is in expectation; with 64 reps the best draw
     should comfortably clear a conservative e⁻³/2-of-largest-bucket bar on
     these fixed seeds. *)
  let r = rng ~salt:64 () in
  List.iter
    (fun (name, t) ->
      if Bipartite.n_count t >= Bipartite.s_count t then begin
        let result = Decay.solve_direct ~reps:64 r t in
        let _, big = Decay.largest_bucket t in
        let bar = exp (-3.0) /. 2.0 *. float_of_int (Array.length big) in
        check_true
          (Printf.sprintf "%s: %d covered vs bar %.2f" name result.Solver.covered bar)
          (float_of_int result.Solver.covered >= bar)
      end)
    (fixtures ())

let test_greedy_subcover () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:65 ()) ~s:12 ~n:6 ~d:3 in
  let full = Bitset.full 12 in
  let sub = Decay.greedy_subcover t full in
  check_true "subset" (Bitset.subset sub full);
  (* Same coverage, and |S″| ≤ |Γ(S′)|. *)
  check_true "coverage preserved"
    (Bitset.equal
       (Wx_expansion.Nbhd.Bip.covered t sub)
       (Wx_expansion.Nbhd.Bip.covered t full));
  check_true "size bound"
    (Bitset.cardinal sub <= Bitset.cardinal (Wx_expansion.Nbhd.Bip.covered t full))

let test_decay_reduced_runs () =
  (* β < 1 instance: more S than N. *)
  let t = Gen.random_bipartite_sdeg (rng ~salt:66 ()) ~s:30 ~n:10 ~d:2 in
  let r = Decay.solve ~reps:32 (rng ~salt:67 ()) t in
  check_true "covers something" (r.Solver.covered > 0)

(* --- naive (Lemma A.1) --- *)

let test_naive_guarantee () =
  List.iter
    (fun (name, t) ->
      if not (Bipartite.has_isolated t) then begin
        let tr = Naive.run t in
        (* Lemma A.1's ∆ is the max S-side degree (see the note after it). *)
        let guarantee = gamma t /. float_of_int (max 1 (Bipartite.max_deg_s t)) in
        check_true
          (Printf.sprintf "%s: |Nuni|=%d >= γ/∆=%.2f" name (Bitset.cardinal tr.Naive.n_uni)
             guarantee)
          (float_of_int (Bitset.cardinal tr.Naive.n_uni) >= guarantee -. 1e-9)
      end)
    (fixtures ())

let test_naive_nuni_unique_in_suni () =
  List.iter
    (fun (_, t) ->
      if not (Bipartite.has_isolated t) then begin
        let tr = Naive.run t in
        Bitset.iter
          (fun w ->
            let c =
              Array.fold_left
                (fun acc u -> if Bitset.mem tr.Naive.s_uni u then acc + 1 else acc)
                0 (Bipartite.neighbors_n t w)
            in
            check_int "exactly one spokesman" 1 c)
          tr.Naive.n_uni
      end)
    (fixtures ())

let test_naive_tolerates_isolated () =
  (* Isolated N-vertices are excluded rather than fatal: the coverable part
     is still handled. *)
  let t = Bipartite.of_edges ~s:2 ~n:2 [ (0, 0) ] in
  let tr = Naive.run t in
  check_int "covers the coverable vertex" 1 (Bitset.cardinal tr.Naive.n_uni)

(* --- Procedure Partition --- *)

let test_partition_conditions () =
  List.iter
    (fun (name, t) ->
      let st = Partition.run t in
      List.iter
        (fun (cond, ok) -> check_true (Printf.sprintf "%s: %s" name cond) ok)
        (Partition.check_conditions t st))
    (fixtures ())

let test_partition_terminal_gains_nonpositive () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:68 ()) ~s:15 ~n:25 ~d:3 in
  let st = Partition.run t in
  if not (Bitset.is_empty st.Partition.n_tmp) then
    Bitset.iter
      (fun v -> check_true "gain <= 0" (Partition.gain t st v <= 0))
      st.Partition.s_tmp

let test_partition_sides_partitioned () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:69 ()) ~s:15 ~n:25 ~d:3 in
  let st = Partition.run t in
  check_true "S split"
    (Bitset.is_empty (Bitset.inter st.Partition.s_uni st.Partition.s_tmp));
  check_int "S total" 15
    (Bitset.cardinal st.Partition.s_uni + Bitset.cardinal st.Partition.s_tmp);
  let nu = st.Partition.n_uni and nm = st.Partition.n_many and nt = st.Partition.n_tmp in
  check_true "N disjoint"
    (Bitset.is_empty (Bitset.inter nu nm)
    && Bitset.is_empty (Bitset.inter nu nt)
    && Bitset.is_empty (Bitset.inter nm nt))

let test_partition_capped_guarantee () =
  (* Lemma A.3: coverage ≥ γ/(8δ). *)
  List.iter
    (fun (name, t) ->
      if not (Bipartite.has_isolated t) then begin
        let r = Partition.solve_degree_capped t in
        let bound = gamma t *. Bounds.partition_fraction ~delta_n:(Bipartite.delta_n t) in
        check_true
          (Printf.sprintf "%s: %d >= %.2f" name r.Solver.covered bound)
          (float_of_int r.Solver.covered >= bound -. 1e-9)
      end)
    (fixtures ())

let test_partition_recursive_guarantee () =
  (* Lemma A.13: coverage ≥ γ/(9·log 2δ). *)
  List.iter
    (fun (name, t) ->
      if not (Bipartite.has_isolated t) then begin
        let r = Partition.solve_recursive t in
        let bound = gamma t *. Bounds.near_optimal_fraction ~delta_n:(Bipartite.delta_n t) in
        check_true
          (Printf.sprintf "%s: %d >= %.2f" name r.Solver.covered bound)
          (float_of_int r.Solver.covered >= bound -. 1e-9)
      end)
    (fixtures ())

(* --- buckets --- *)

let test_buckets_classes_cover_n () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:70 ()) ~s:12 ~n:30 ~d:4 in
  let cs = Buckets.classes t in
  let total = Array.fold_left (fun acc (_, ws) -> acc + Array.length ws) 0 cs in
  let positive = ref 0 in
  for w = 0 to Bipartite.n_count t - 1 do
    if Bipartite.deg_n t w > 0 then incr positive
  done;
  check_int "every positive-degree vertex classified" !positive total

let test_buckets_class_degree_ranges () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:71 ()) ~s:12 ~n:30 ~d:4 in
  let c = 2.0 in
  Array.iter
    (fun (i, ws) ->
      Array.iter
        (fun w ->
          let d = float_of_int (Bipartite.deg_n t w) in
          check_true "range" (d >= (c ** float_of_int (i - 1)) -. 1e-9 && d < c ** float_of_int i))
        ws)
    (Buckets.classes ~c t)

let test_buckets_solver_guarantee () =
  (* Corollary A.6 with the optimal c: ≥ 0.20087·γ/log₂∆ (∆ = max N degree). *)
  List.iter
    (fun (name, t) ->
      if not (Bipartite.has_isolated t) then begin
        let r = Buckets.solve_all_classes t in
        (* Class count is ⌈log_c ∆⌉, so the provable bound carries a ceiling. *)
        let c = Bounds.c_star in
        let classes =
          Float.ceil (log (float_of_int (max 2 (Bipartite.max_deg_n t))) /. log c)
        in
        let bound = gamma t /. (2.0 *. (1.0 +. c) *. classes) in
        check_true
          (Printf.sprintf "%s: %d >= %.2f" name r.Solver.covered bound)
          (float_of_int r.Solver.covered >= bound -. 1e-9)
      end)
    (fixtures ())

(* --- exact + portfolio --- *)

let test_lemma_a5_per_class () =
  (* Lemma A.5: within any degree class (degrees within factor c), a subset
     uniquely covering ≥ |class|/(2(1+c)) exists — and Procedure Partition
     restricted to the class finds one. *)
  let c = Bounds.c_star in
  List.iter
    (fun (name, t) ->
      Array.iter
        (fun (i, members) ->
          let r = Buckets.solve_class t members in
          let bound = float_of_int (Array.length members) /. (2.0 *. (1.0 +. c)) in
          check_true
            (Printf.sprintf "%s class %d: %d >= %.2f" name i r.Solver.covered bound)
            (float_of_int r.Solver.covered >= bound -. 1e-9))
        (Buckets.classes ~c t))
    (fixtures ())

let test_exact_is_optimal () =
  let r = rng ~salt:72 () in
  List.iter
    (fun (name, t) ->
      if Bipartite.s_count t <= 16 then begin
        let opt = Exact.optimum t in
        List.iter
          (fun (sname, res) ->
            check_true
              (Printf.sprintf "%s: exact %d >= %s %d" name opt sname res.Solver.covered)
              (opt >= res.Solver.covered))
          (Portfolio.solve_each ~reps:16 r t)
      end)
    (fixtures ())

let test_exact_work_limit () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:73 ()) ~s:28 ~n:10 ~d:2 in
  match Exact.solve ~work_limit:1024 t with
  | _ -> Alcotest.fail "expected Too_large"
  | exception Exact.Too_large _ -> ()

let test_portfolio_is_max_of_parts () =
  let r0 = rng ~salt:74 () in
  let t = Gen.random_bipartite_sdeg r0 ~s:12 ~n:20 ~d:3 in
  (* Use two identically-seeded rngs so portfolio and solve_each see the
     same random draws. *)
  let best = Portfolio.solve ~reps:8 (rng ~salt:75 ()) t in
  let parts = Portfolio.solve_each ~reps:8 (rng ~salt:75 ()) t in
  let max_part =
    List.fold_left (fun acc (_, r) -> max acc r.Solver.covered) 0 parts
  in
  check_int "portfolio = max" max_part best.Solver.covered

let qcheck_tests =
  let arb = arbitrary_bipartite ~smax:12 ~nmax:16 in
  [
    qcheck ~count:40 "naive guarantee γ/∆ (random)"
      (fun t ->
        if Bipartite.has_isolated t then true
        else begin
          let tr = Naive.run t in
          float_of_int (Bitset.cardinal tr.Naive.n_uni)
          >= (gamma t /. float_of_int (max 1 (Bipartite.max_deg_s t))) -. 1e-9
        end)
      arb;
    qcheck ~count:40 "partition conditions (random)"
      (fun t ->
        let st = Partition.run t in
        List.for_all snd (Partition.check_conditions t st))
      arb;
    qcheck ~count:40 "recursive beats plain partition"
      (fun t ->
        if Bipartite.has_isolated t then true
        else
          (Partition.solve_recursive t).Solver.covered
          >= (Partition.solve t).Solver.covered)
      arb;
    qcheck ~count:25 "exact >= portfolio (random)"
      (fun t ->
        if Bipartite.s_count t > 12 || Bipartite.has_isolated t then true
        else begin
          let opt = Exact.optimum t in
          let best = Portfolio.solve ~reps:8 (Wx_util.Rng.create 1) t in
          opt >= best.Solver.covered
        end)
      arb;
  ]

let suite =
  [
    Alcotest.test_case "all solvers valid" `Quick test_all_solvers_valid;
    Alcotest.test_case "decay buckets" `Quick test_decay_buckets_partition;
    Alcotest.test_case "decay bucket of degree" `Quick test_decay_bucket_of_degree;
    Alcotest.test_case "decay largest bucket" `Quick test_decay_largest_bucket_majority;
    Alcotest.test_case "decay achieves bound" `Quick test_decay_achieves_bound_on_fixtures;
    Alcotest.test_case "greedy subcover" `Quick test_greedy_subcover;
    Alcotest.test_case "decay reduced" `Quick test_decay_reduced_runs;
    Alcotest.test_case "naive guarantee" `Quick test_naive_guarantee;
    Alcotest.test_case "naive uniqueness" `Quick test_naive_nuni_unique_in_suni;
    Alcotest.test_case "naive tolerates isolated" `Quick test_naive_tolerates_isolated;
    Alcotest.test_case "partition conditions" `Quick test_partition_conditions;
    Alcotest.test_case "partition terminal gains" `Quick test_partition_terminal_gains_nonpositive;
    Alcotest.test_case "partition sides" `Quick test_partition_sides_partitioned;
    Alcotest.test_case "partition capped A.3" `Quick test_partition_capped_guarantee;
    Alcotest.test_case "partition recursive A.13" `Quick test_partition_recursive_guarantee;
    Alcotest.test_case "buckets classes cover" `Quick test_buckets_classes_cover_n;
    Alcotest.test_case "buckets ranges" `Quick test_buckets_class_degree_ranges;
    Alcotest.test_case "buckets guarantee A.6" `Quick test_buckets_solver_guarantee;
    Alcotest.test_case "lemma A.5 per class" `Quick test_lemma_a5_per_class;
    Alcotest.test_case "exact optimal" `Quick test_exact_is_optimal;
    Alcotest.test_case "exact work limit" `Quick test_exact_work_limit;
    Alcotest.test_case "portfolio max" `Quick test_portfolio_is_max_of_parts;
  ]
  @ qcheck_tests
