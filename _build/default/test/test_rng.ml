module Rng = Wx_util.Rng
open Common

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_true "same stream" (Rng.int64 a = Rng.int64 b)
  done

let test_copy () =
  let a = Rng.create 9 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check_true "copy matches" (Rng.int64 a = Rng.int64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  check_true "streams differ" (!same < 4)

let test_split_independent () =
  let a = Rng.create 3 in
  let child = Rng.split a in
  (* Drawing from the parent must not affect the child's stream. *)
  let c1 = Rng.copy child in
  let _ = Rng.int64 a in
  for _ = 1 to 20 do
    check_true "child unaffected" (Rng.int64 child = Rng.int64 c1)
  done

let test_int_bounds () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    check_true "in range" (v >= 0 && v < 7)
  done

let test_int_uniformity () =
  let r = rng ~salt:1 () in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int r 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 8 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d count %d far from %d" i c expected)
    counts

let test_int_in () =
  let r = rng ~salt:2 () in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    check_true "int_in range" (v >= -5 && v <= 5)
  done

let test_float_range () =
  let r = rng ~salt:3 () in
  for _ = 1 to 10_000 do
    let v = Rng.float r in
    check_true "[0,1)" (v >= 0.0 && v < 1.0)
  done

let test_bernoulli_mean () =
  let r = rng ~salt:4 () in
  let hits = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int trials in
  check_true "mean near 0.3" (Float.abs (mean -. 0.3) < 0.02)

let test_bernoulli_edges () =
  let r = rng ~salt:5 () in
  check_true "p=0 never" (not (Rng.bernoulli r 0.0));
  check_true "p=1 always" (Rng.bernoulli r 1.0)

let test_geometric_mean () =
  let r = rng ~salt:6 () in
  let acc = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    acc := !acc + Rng.geometric r 0.25
  done;
  (* mean of geometric(p) counting failures = (1-p)/p = 3. *)
  let mean = float_of_int !acc /. float_of_int trials in
  check_true "geometric mean near 3" (Float.abs (mean -. 3.0) < 0.15)

let test_geometric_p1 () =
  let r = rng ~salt:7 () in
  for _ = 1 to 100 do
    check_int "geometric(1) = 0" 0 (Rng.geometric r 1.0)
  done

let test_shuffle_is_permutation () =
  let r = rng ~salt:8 () in
  for _ = 1 to 100 do
    let a = Array.init 30 (fun i -> i) in
    Rng.shuffle r a;
    let sorted = Array.copy a in
    Array.sort compare sorted;
    check_true "permutation" (sorted = Array.init 30 (fun i -> i))
  done

let test_permutation_uniform_position () =
  (* Element 0 should land in each slot with roughly equal frequency. *)
  let r = rng ~salt:9 () in
  let n = 6 in
  let counts = Array.make n 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let p = Rng.permutation r n in
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) p;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  Array.iter
    (fun c ->
      let expected = trials / n in
      check_true "roughly uniform" (abs (c - expected) < expected / 4))
    counts

let test_sample_without_replacement () =
  let r = rng ~salt:10 () in
  for _ = 1 to 500 do
    let k = 1 + Rng.int r 20 in
    let n = k + Rng.int r 50 in
    let sample = Rng.sample_without_replacement r n k in
    check_int "size" k (Array.length sample);
    let tbl = Hashtbl.create k in
    Array.iter
      (fun v ->
        check_true "range" (v >= 0 && v < n);
        check_true "distinct" (not (Hashtbl.mem tbl v));
        Hashtbl.add tbl v ())
      sample
  done

let test_sample_full () =
  let r = rng ~salt:11 () in
  let sample = Rng.sample_without_replacement r 10 10 in
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  check_true "full sample is 0..9" (sorted = Array.init 10 (fun i -> i))

let test_subset_bernoulli_bounds () =
  let r = rng ~salt:12 () in
  for _ = 1 to 200 do
    let l = Rng.subset_bernoulli r 50 0.3 in
    List.iter (fun v -> check_true "range" (v >= 0 && v < 50)) l;
    let rec sorted = function
      | [] | [ _ ] -> true
      | x :: (y :: _ as rest) -> x < y && sorted rest
    in
    check_true "sorted strictly" (sorted l)
  done

let test_subset_bernoulli_mean () =
  let r = rng ~salt:13 () in
  let acc = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    acc := !acc + List.length (Rng.subset_bernoulli r 100 0.2)
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  check_true "mean near 20" (Float.abs (mean -. 20.0) < 1.0)

let test_subset_bernoulli_edges () =
  let r = rng ~salt:14 () in
  check_true "p=0 empty" (Rng.subset_bernoulli r 10 0.0 = []);
  check_int "p=1 full" 10 (List.length (Rng.subset_bernoulli r 10 1.0))

let test_pick () =
  let r = rng ~salt:15 () in
  let arr = [| 3; 5; 9 |] in
  for _ = 1 to 100 do
    check_true "member" (Array.mem (Rng.pick r arr) arr)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
    Alcotest.test_case "int_in" `Quick test_int_in;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bernoulli mean" `Slow test_bernoulli_mean;
    Alcotest.test_case "bernoulli edges" `Quick test_bernoulli_edges;
    Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "permutation uniformity" `Slow test_permutation_uniform_position;
    Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample full" `Quick test_sample_full;
    Alcotest.test_case "subset bernoulli bounds" `Quick test_subset_bernoulli_bounds;
    Alcotest.test_case "subset bernoulli mean" `Slow test_subset_bernoulli_mean;
    Alcotest.test_case "subset bernoulli edges" `Quick test_subset_bernoulli_edges;
    Alcotest.test_case "pick" `Quick test_pick;
  ]
