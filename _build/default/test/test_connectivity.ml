module Connectivity = Wx_graph.Connectivity
module Gen = Wx_graph.Gen
module Graph = Wx_graph.Graph
open Common

let test_st_path () =
  check_int "path ends" 1 (Connectivity.st_edge_connectivity (Gen.path 5) 0 4)

let test_st_cycle () =
  check_int "two disjoint paths" 2 (Connectivity.st_edge_connectivity (Gen.cycle 8) 0 4)

let test_st_complete () =
  check_int "K6 any pair" 5 (Connectivity.st_edge_connectivity (Gen.complete 6) 0 3)

let test_global_values () =
  check_int "path" 1 (Connectivity.edge_connectivity (Gen.path 6));
  check_int "cycle" 2 (Connectivity.edge_connectivity (Gen.cycle 8));
  check_int "complete" 5 (Connectivity.edge_connectivity (Gen.complete 6));
  check_int "hypercube" 4 (Connectivity.edge_connectivity (Gen.hypercube 4));
  check_int "disconnected" 0 (Connectivity.edge_connectivity (Graph.of_edges 4 [ (0, 1) ]));
  check_int "single" 0 (Connectivity.edge_connectivity (Graph.of_edges 1 []))

let test_barbell_bridge () =
  check_int "bridge" 1 (Connectivity.edge_connectivity (Gen.barbell 5))

let test_lollipop () =
  let g = Gen.lollipop 6 4 in
  check_int "n" 10 (Graph.n g);
  check_int "tail is the cut" 1 (Connectivity.edge_connectivity g);
  (* Lollipop has terrible Cheeger constant: the tail prefix cut. *)
  let h, _ = Wx_spectral.Cheeger.h_exact g in
  check_true "h <= 1/4 (tail cut)" (h <= 0.25 +. 1e-9)

let test_random_regular_well_connected () =
  (* Random d-regular graphs are d-edge-connected w.h.p. — verify on fixed
     seeds; edge connectivity never exceeds min degree. *)
  let r = rng ~salt:170 () in
  for _ = 1 to 3 do
    let g = Gen.random_regular r 24 4 in
    let lam = Connectivity.edge_connectivity g in
    check_true "<= d" (lam <= 4);
    check_true ">= 2 on these seeds" (lam >= 2)
  done

let test_is_k_edge_connected () =
  check_true "cycle 2-connected" (Connectivity.is_k_edge_connected (Gen.cycle 6) 2);
  check_true "cycle not 3" (not (Connectivity.is_k_edge_connected (Gen.cycle 6) 3))

let test_barabasi_albert_shape () =
  let r = rng ~salt:171 () in
  let g = Gen.barabasi_albert r 50 2 in
  check_int "n" 50 (Graph.n g);
  check_true "connected" (Wx_graph.Traversal.is_connected g);
  (* Seed K3 + 47 vertices × 2 links (minus any collisions): around 97. *)
  check_true "m close to 2n" (Graph.m g >= 80 && Graph.m g <= 100);
  check_true "has a hub" (Graph.max_degree g >= 6)

let test_barabasi_albert_validation () =
  let r = rng ~salt:172 () in
  Alcotest.check_raises "m >= n" (Invalid_argument "Gen.barabasi_albert: need n > m >= 1")
    (fun () -> ignore (Gen.barabasi_albert r 3 3))

let suite =
  [
    Alcotest.test_case "st path" `Quick test_st_path;
    Alcotest.test_case "st cycle" `Quick test_st_cycle;
    Alcotest.test_case "st complete" `Quick test_st_complete;
    Alcotest.test_case "global values" `Quick test_global_values;
    Alcotest.test_case "barbell bridge" `Quick test_barbell_bridge;
    Alcotest.test_case "lollipop" `Quick test_lollipop;
    Alcotest.test_case "random regular connected" `Quick test_random_regular_well_connected;
    Alcotest.test_case "is_k_edge_connected" `Quick test_is_k_edge_connected;
    Alcotest.test_case "barabasi-albert shape" `Quick test_barabasi_albert_shape;
    Alcotest.test_case "barabasi-albert validation" `Quick test_barabasi_albert_validation;
  ]
