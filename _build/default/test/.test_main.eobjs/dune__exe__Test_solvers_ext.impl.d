test/test_solvers_ext.ml: Alcotest Common List Wx_constructions Wx_graph Wx_radio Wx_spokesmen Wx_util
