test/test_rng.ml: Alcotest Array Common Float Hashtbl List Wx_util
