test/test_arboricity.ml: Alcotest Common Wx_graph Wx_util
