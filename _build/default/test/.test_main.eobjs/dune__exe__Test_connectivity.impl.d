test/test_connectivity.ml: Alcotest Common Wx_graph Wx_spectral
