test/test_bitset.ml: Alcotest Common Hashtbl List Printf QCheck Wx_util
