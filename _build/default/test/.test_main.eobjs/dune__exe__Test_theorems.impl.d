test/test_theorems.ml: Alcotest Common List Wireless_expanders Wx_constructions Wx_graph Wx_radio
