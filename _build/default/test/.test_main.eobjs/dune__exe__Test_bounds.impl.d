test/test_bounds.ml: Alcotest Common Float List QCheck Wx_expansion Wx_util
