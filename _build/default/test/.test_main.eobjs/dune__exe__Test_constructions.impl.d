test/test_constructions.ml: Alcotest Array Common Hashtbl List Printf Wx_constructions Wx_expansion Wx_graph Wx_util
