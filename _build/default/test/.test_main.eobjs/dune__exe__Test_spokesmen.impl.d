test/test_spokesmen.ml: Alcotest Array Common Float Hashtbl List Printf Wx_constructions Wx_expansion Wx_graph Wx_spokesmen Wx_util
