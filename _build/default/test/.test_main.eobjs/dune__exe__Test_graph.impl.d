test/test_graph.ml: Alcotest Array Common Wx_graph Wx_util
