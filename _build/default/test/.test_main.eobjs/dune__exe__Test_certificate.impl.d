test/test_certificate.ml: Alcotest Common Format String Wx_expansion Wx_graph Wx_util
