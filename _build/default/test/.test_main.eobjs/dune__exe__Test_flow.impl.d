test/test_flow.ml: Alcotest Array Common List Printf Wx_graph Wx_util
