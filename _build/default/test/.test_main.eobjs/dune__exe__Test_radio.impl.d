test/test_radio.ml: Alcotest Array Common List Wx_constructions Wx_graph Wx_radio Wx_util
