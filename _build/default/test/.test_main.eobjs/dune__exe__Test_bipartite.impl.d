test/test_bipartite.ml: Alcotest Array Common Wx_constructions Wx_expansion Wx_graph Wx_util
