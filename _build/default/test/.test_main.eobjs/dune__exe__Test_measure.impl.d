test/test_measure.ml: Alcotest Common List Wx_constructions Wx_expansion Wx_graph Wx_util
