test/test_traversal.ml: Alcotest Array Common List Wx_graph Wx_util
