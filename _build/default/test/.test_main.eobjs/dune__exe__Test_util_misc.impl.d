test/test_util_misc.ml: Alcotest Array Common Float Hashtbl List QCheck String Wx_util
