test/common.ml: Alcotest Format QCheck QCheck_alcotest Wx_graph Wx_util
