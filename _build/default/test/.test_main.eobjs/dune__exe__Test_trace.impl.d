test/test_trace.ml: Alcotest Common List String Wireless_expanders Wx_constructions Wx_graph Wx_radio Wx_util
