test/test_extensions.ml: Alcotest Common Filename Float Fun List Printf String Sys Wireless_expanders Wx_constructions Wx_expansion Wx_graph Wx_radio Wx_spectral Wx_spokesmen Wx_util
