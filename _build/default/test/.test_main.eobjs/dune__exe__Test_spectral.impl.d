test/test_spectral.ml: Alcotest Array Common Float Wx_graph Wx_spectral
