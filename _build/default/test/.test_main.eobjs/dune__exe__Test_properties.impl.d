test/test_properties.ml: Array Common Format List QCheck Wx_constructions Wx_expansion Wx_graph Wx_radio Wx_spokesmen Wx_util
