test/test_nbhd.ml: Alcotest Array Common Float Wx_expansion Wx_graph Wx_util
