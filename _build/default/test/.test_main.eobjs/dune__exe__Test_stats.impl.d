test/test_stats.ml: Alcotest Array Common QCheck Wx_util
