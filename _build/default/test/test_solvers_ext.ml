(* Extended solver suite: greedy, local search, simulated annealing,
   branch-and-bound; plus the new constructions (Gbad plug, bipartite
   worst case) and the Uniform radio protocol. *)

module Solver = Wx_spokesmen.Solver
module Greedy = Wx_spokesmen.Greedy
module Anneal = Wx_spokesmen.Anneal
module Bb = Wx_spokesmen.Bb
module Exact = Wx_spokesmen.Exact
module Bipartite = Wx_graph.Bipartite
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

let fixtures () =
  let r = rng ~salt:130 () in
  [
    ("rand-12x20-d3", Gen.random_bipartite_sdeg r ~s:12 ~n:20 ~d:3);
    ("rand-14x8-d4", Gen.random_bipartite_sdeg r ~s:14 ~n:8 ~d:4);
    ("core-8", Wx_constructions.Core_graph.bip (Wx_constructions.Core_graph.create 8));
    ("gbad-6-6-4", Wx_constructions.Gbad.bip (Wx_constructions.Gbad.create ~s:6 ~delta:6 ~beta:4));
    ("matching-32", Gen.bipartite_matching r 32);
  ]

(* --- greedy --- *)

let test_greedy_valid () =
  List.iter
    (fun (name, t) ->
      let r = Greedy.solve t in
      check_int (name ^ " consistent") (Solver.evaluate t r.Solver.chosen) r.Solver.covered)
    (fixtures ())

let test_greedy_local_at_least_greedy () =
  List.iter
    (fun (name, t) ->
      let a = Greedy.solve t and b = Greedy.solve_with_removal t in
      check_true (name ^ " local >= greedy") (b.Solver.covered >= a.Solver.covered))
    (fixtures ())

let test_greedy_matching_is_perfect () =
  (* On a perfect matching the greedy solution covers everything. *)
  let t = Gen.bipartite_matching (rng ~salt:131 ()) 64 in
  check_int "all covered" 64 (Greedy.solve t).Solver.covered

let test_greedy_local_escapes () =
  (* Instance where plain greedy can strand coverage: a hub covering
     everything (gain 3) vs three singleton columns. Greedy takes the hub
     (gain 3); adding any singleton then reduces... construct: hub covers
     n0,n1,n2; singletons cover n0 / n1 / n2. Greedy: hub first (gain 3);
     each singleton then has gain -1+... adding singleton u0: n0 goes 1→2
     (-1). Stuck at 3. Optimal = 3 too. Make hub cover 4, singletons 3:
     then hub+?... keep simple: assert local ≥ greedy on a crafted case. *)
  let t =
    Bipartite.of_edges ~s:4 ~n:4
      [ (0, 0); (0, 1); (0, 2); (0, 3); (1, 0); (2, 1); (3, 2) ]
  in
  let g = Greedy.solve t and l = Greedy.solve_with_removal t in
  check_true "local >= greedy" (l.Solver.covered >= g.Solver.covered);
  check_int "optimum is 4" 4 (Exact.optimum t)

(* --- anneal --- *)

let test_anneal_valid_and_not_worse_than_greedy_start () =
  List.iter
    (fun (name, t) ->
      let a = Anneal.solve ~steps:2000 (rng ~salt:132 ()) t in
      check_int (name ^ " consistent") (Solver.evaluate t a.Solver.chosen) a.Solver.covered;
      let g = Greedy.solve_with_removal t in
      check_true (name ^ " anneal >= greedy-local") (a.Solver.covered >= g.Solver.covered))
    (fixtures ())

let test_anneal_deterministic_given_seed () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:133 ()) ~s:16 ~n:24 ~d:3 in
  let a = Anneal.solve ~steps:1000 (Wx_util.Rng.create 5) t in
  let b = Anneal.solve ~steps:1000 (Wx_util.Rng.create 5) t in
  check_int "same result" a.Solver.covered b.Solver.covered

(* --- branch and bound --- *)

let test_bb_matches_enumeration () =
  List.iter
    (fun (name, t) ->
      if Bipartite.s_count t <= 16 then begin
        match Bb.solve t with
        | r, Bb.Proved_optimal ->
            check_int (name ^ " = enumeration") (Exact.optimum t) r.Solver.covered
        | _, Bb.Budget_exhausted -> Alcotest.fail (name ^ ": budget exhausted unexpectedly")
      end)
    (fixtures ())

let test_bb_random_cross_check () =
  let r = rng ~salt:134 () in
  for _ = 1 to 15 do
    let s = 4 + Wx_util.Rng.int r 10 in
    let n = 4 + Wx_util.Rng.int r 14 in
    let d = 1 + Wx_util.Rng.int r (min 4 n) in
    let t = Gen.random_bipartite_sdeg r ~s ~n ~d in
    match Bb.solve t with
    | res, Bb.Proved_optimal -> check_int "bb = enum" (Exact.optimum t) res.Solver.covered
    | _, Bb.Budget_exhausted -> Alcotest.fail "budget exhausted on tiny instance"
  done

let test_bb_beyond_enumeration () =
  (* |S| = 34 sparse: enumeration impossible (2^34), BB proves optimal. *)
  let t = Gen.random_bipartite_sdeg (rng ~salt:135 ()) ~s:34 ~n:80 ~d:3 in
  match Bb.solve t with
  | r, Bb.Proved_optimal ->
      let best = Wx_spokesmen.Portfolio.solve ~reps:32 (rng ~salt:136 ()) t in
      check_true "optimal >= portfolio" (r.Solver.covered >= best.Solver.covered)
  | _, Bb.Budget_exhausted -> Alcotest.fail "expected proof at |S| = 34"

let test_bb_budget () =
  let t = Gen.random_bipartite_sdeg (rng ~salt:137 ()) ~s:30 ~n:30 ~d:6 in
  match Bb.solve ~node_limit:100 t with
  | r, Bb.Budget_exhausted -> check_true "anytime result valid" (r.Solver.covered >= 0)
  | _, Bb.Proved_optimal -> () (* tiny budgets can still finish on easy instances *)

let test_bb_optimum_api () =
  let t = Gen.bipartite_matching (rng ~salt:138 ()) 12 in
  check_true "matching optimum = 12" (Bb.optimum t = Some 12)

(* --- Gbad plug (Remark 2 after Lemma 3.3) --- *)

let test_gbad_plug_caps_unique_expansion () =
  let host = Gen.random_regular (rng ~salt:139 ()) 64 6 in
  let gbad = Wx_constructions.Gbad.create ~s:8 ~delta:6 ~beta:4 in
  let plug = Wx_constructions.Gbad_plug.create (rng ~salt:140 ()) ~host ~gbad in
  check_float "βu(S-side) = 2β−Δ" 2.0
    (Wx_constructions.Gbad_plug.unique_expansion_of_s_star plug);
  (* Degree grows at most additively. *)
  check_true "degree additive"
    (Wx_graph.Graph.max_degree plug.Wx_constructions.Gbad_plug.graph
    <= Wx_graph.Graph.max_degree host + Wx_constructions.Gbad.delta gbad)

(* --- bipartite worst case (Remark in 4.3.3) --- *)

let test_worst_case_bipartite_stays_bipartite () =
  let host = Gen.complete_bipartite 32 32 in
  let wc, l, r =
    Wx_constructions.Worst_case.create_bipartite (rng ~salt:141 ()) ~eps:0.4 ~host
      ~host_beta:0.5
  in
  let g = wc.Wx_constructions.Worst_case.graph in
  check_true "still bipartite" (Wx_graph.Traversal.is_bipartite g);
  check_int "sides balanced" (Bitset.cardinal l) (Bitset.cardinal r);
  check_int "sides partition V" (Wx_graph.Graph.n g) (Bitset.cardinal l + Bitset.cardinal r);
  check_true "sides disjoint" (Bitset.disjoint l r);
  (* S* is on the left, its neighbors on the right. *)
  Bitset.iter
    (fun v ->
      Wx_graph.Graph.iter_neighbors g v (fun w -> check_true "S*→R only" (Bitset.mem r w)))
    wc.Wx_constructions.Worst_case.s_star

(* --- uniform radio protocol --- *)

let test_uniform_protocol_bounds () =
  Alcotest.check_raises "p out of range" (Invalid_argument "Uniform.protocol: p out of range")
    (fun () -> ignore (Wx_radio.Uniform.protocol 1.5))

let test_uniform_one_is_flood () =
  (* p = 1 behaves like flooding: stalls on C+. *)
  let g = Wx_constructions.Cplus.create 8 in
  let o =
    Wx_radio.Sim.run ~max_rounds:100 g ~source:(Wx_constructions.Cplus.source g)
      (Wx_radio.Uniform.protocol 1.0)
      (rng ~salt:142 ())
  in
  check_true "stalls like flood" (not o.Wx_radio.Sim.completed)

let test_uniform_half_completes_cplus () =
  let g = Wx_constructions.Cplus.create 8 in
  let o =
    Wx_radio.Sim.run ~max_rounds:5000 g ~source:(Wx_constructions.Cplus.source g)
      (Wx_radio.Uniform.protocol 0.3)
      (rng ~salt:143 ())
  in
  check_true "random silence breaks the collision" o.Wx_radio.Sim.completed

(* --- matching generator --- *)

let test_matching_shape () =
  let t = Gen.bipartite_matching (rng ~salt:144 ()) 20 in
  check_int "m" 20 (Bipartite.m t);
  for u = 0 to 19 do
    check_int "S degree 1" 1 (Bipartite.deg_s t u)
  done;
  for w = 0 to 19 do
    check_int "N degree 1" 1 (Bipartite.deg_n t w)
  done

let suite =
  [
    Alcotest.test_case "greedy valid" `Quick test_greedy_valid;
    Alcotest.test_case "greedy-local >= greedy" `Quick test_greedy_local_at_least_greedy;
    Alcotest.test_case "greedy on matching" `Quick test_greedy_matching_is_perfect;
    Alcotest.test_case "greedy local escapes" `Quick test_greedy_local_escapes;
    Alcotest.test_case "anneal valid/improves" `Quick test_anneal_valid_and_not_worse_than_greedy_start;
    Alcotest.test_case "anneal deterministic" `Quick test_anneal_deterministic_given_seed;
    Alcotest.test_case "bb = enumeration" `Quick test_bb_matches_enumeration;
    Alcotest.test_case "bb random cross-check" `Quick test_bb_random_cross_check;
    Alcotest.test_case "bb beyond enumeration" `Slow test_bb_beyond_enumeration;
    Alcotest.test_case "bb budget" `Quick test_bb_budget;
    Alcotest.test_case "bb optimum api" `Quick test_bb_optimum_api;
    Alcotest.test_case "gbad plug" `Quick test_gbad_plug_caps_unique_expansion;
    Alcotest.test_case "bipartite worst case" `Quick test_worst_case_bipartite_stays_bipartite;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_protocol_bounds;
    Alcotest.test_case "uniform p=1 floods" `Quick test_uniform_one_is_flood;
    Alcotest.test_case "uniform p=0.3 completes" `Quick test_uniform_half_completes_cplus;
    Alcotest.test_case "matching shape" `Quick test_matching_shape;
  ]
