module Arboricity = Wx_graph.Arboricity
module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

let test_density_of_subset () =
  let g = Gen.complete 4 in
  let s = Bitset.of_list 4 [ 0; 1; 2 ] in
  check_float "triangle density" (3.0 /. 2.0) (Arboricity.density_of_subset g s);
  check_float "avg degree" 2.0 (Arboricity.avg_degree_of_subset g s);
  check_float "singleton" 0.0 (Arboricity.density_of_subset g (Bitset.of_list 4 [ 0 ]))

let test_exact_tree () =
  check_int "tree" 1 (Arboricity.exact (Gen.binary_tree 3));
  check_int "path" 1 (Arboricity.exact (Gen.path 8))

let test_exact_cycle () = check_int "cycle" 2 (Arboricity.exact (Gen.cycle 8))

let test_exact_complete () =
  (* K_n has arboricity ⌈n/2⌉. *)
  check_int "K4" 2 (Arboricity.exact (Gen.complete 4));
  check_int "K5" 3 (Arboricity.exact (Gen.complete 5));
  check_int "K6" 3 (Arboricity.exact (Gen.complete 6))

let test_exact_grid () =
  (* Planar graphs have arboricity ≤ 3; grids are 2. *)
  check_int "grid" 2 (Arboricity.exact (Gen.grid 3 4))

let test_exact_too_large () =
  Alcotest.check_raises "n > 20" (Invalid_argument "Arboricity.exact: n too large (max 20)")
    (fun () -> ignore (Arboricity.exact (Gen.cycle 25)))

let test_peeling_bound () =
  check_int "complete K6" 3 (Arboricity.lower_bound_peeling (Gen.complete 6));
  check_true "cycle >= 1" (Arboricity.lower_bound_peeling (Gen.cycle 8) >= 1)

let test_degeneracy () =
  check_int "tree" 1 (Arboricity.degeneracy (Gen.binary_tree 3));
  check_int "cycle" 2 (Arboricity.degeneracy (Gen.cycle 8));
  check_int "complete" 5 (Arboricity.degeneracy (Gen.complete 6));
  check_int "grid" 2 (Arboricity.degeneracy (Gen.grid 4 4))

let test_paper_lower_bound () =
  check_float "balanced" 4.0 (Arboricity.paper_lower_bound ~delta:8 ~beta:2.0);
  check_float "beta small" 4.0 (Arboricity.paper_lower_bound ~delta:8 ~beta:0.5)

let qcheck_tests =
  [
    qcheck ~count:30 "peeling <= exact <= degeneracy"
      (fun g ->
        if Graph.n g > 14 || Graph.n g < 2 then true
        else begin
          let ex = Arboricity.exact g in
          let lb = Arboricity.lower_bound_peeling g in
          let dg = Arboricity.degeneracy g in
          lb <= ex && (ex <= dg || dg = 0)
        end)
      (arbitrary_graph ~lo:2 ~hi:12);
  ]

let suite =
  [
    Alcotest.test_case "density of subset" `Quick test_density_of_subset;
    Alcotest.test_case "exact tree" `Quick test_exact_tree;
    Alcotest.test_case "exact cycle" `Quick test_exact_cycle;
    Alcotest.test_case "exact complete" `Quick test_exact_complete;
    Alcotest.test_case "exact grid" `Quick test_exact_grid;
    Alcotest.test_case "exact too large" `Quick test_exact_too_large;
    Alcotest.test_case "peeling bound" `Quick test_peeling_bound;
    Alcotest.test_case "degeneracy" `Quick test_degeneracy;
    Alcotest.test_case "paper lower bound" `Quick test_paper_lower_bound;
  ]
  @ qcheck_tests
