module Bipartite = Wx_graph.Bipartite
module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bitset = Wx_util.Bitset
open Common

(* S = {0,1}, N = {0,1,2}; 0–{0,1}, 1–{1,2}. *)
let inst = Bipartite.of_edges ~s:2 ~n:3 [ (0, 0); (0, 1); (1, 1); (1, 2) ]

let test_counts () =
  check_int "s" 2 (Bipartite.s_count inst);
  check_int "n" 3 (Bipartite.n_count inst);
  check_int "m" 4 (Bipartite.m inst)

let test_degrees () =
  check_int "deg_s 0" 2 (Bipartite.deg_s inst 0);
  check_int "deg_n 1" 2 (Bipartite.deg_n inst 1);
  check_int "max_s" 2 (Bipartite.max_deg_s inst);
  check_int "max_n" 2 (Bipartite.max_deg_n inst);
  check_float "delta_s" 2.0 (Bipartite.delta_s inst);
  check_float "delta_n" (4.0 /. 3.0) (Bipartite.delta_n inst);
  check_float "beta" 1.5 (Bipartite.beta inst)

let test_dedup () =
  let b = Bipartite.of_edges ~s:1 ~n:1 [ (0, 0); (0, 0) ] in
  check_int "m" 1 (Bipartite.m b)

let test_mem_edge () =
  check_true "mem" (Bipartite.mem_edge inst 0 1);
  check_true "not mem" (not (Bipartite.mem_edge inst 0 2))

let test_iter_edges () =
  let count = ref 0 in
  Bipartite.iter_edges inst (fun _ _ -> incr count);
  check_int "edges" 4 !count

let test_has_isolated () =
  check_true "none" (not (Bipartite.has_isolated inst));
  let b = Bipartite.of_edges ~s:2 ~n:2 [ (0, 0) ] in
  check_true "isolated" (Bipartite.has_isolated b)

let test_sub_instance () =
  let sub, s_map, n_map =
    Bipartite.sub_instance inst (Bitset.of_list 2 [ 1 ]) (Bitset.of_list 3 [ 1; 2 ])
  in
  check_int "s" 1 (Bipartite.s_count sub);
  check_int "n" 2 (Bipartite.n_count sub);
  check_int "m" 2 (Bipartite.m sub);
  check_true "maps" (s_map = [| 1 |] && n_map = [| 1; 2 |])

let test_to_graph () =
  let g, s_map, n_map = Bipartite.to_graph inst in
  check_int "n" 5 (Graph.n g);
  check_int "m" 4 (Graph.m g);
  check_true "edge" (Graph.mem_edge g s_map.(0) n_map.(0));
  check_true "no intra" (not (Graph.mem_edge g s_map.(0) s_map.(1)))

let test_of_set_neighborhood () =
  (* Path 0-1-2-3-4, S = {1,2}: N should be Γ⁻(S) = {0,3}; edges 1-0, 2-3.
     The 1-2 edge is internal and must be dropped. *)
  let g = Gen.path 5 in
  let t, s_map, n_map = Bipartite.of_set_neighborhood g (Bitset.of_list 5 [ 1; 2 ]) in
  check_int "s" 2 (Bipartite.s_count t);
  check_int "n" 2 (Bipartite.n_count t);
  check_int "m" 2 (Bipartite.m t);
  check_true "s_map" (s_map = [| 1; 2 |]);
  check_true "n_map" (n_map = [| 0; 3 |])

let test_of_set_neighborhood_cplus () =
  (* C+ with the bad set {x, y, s0}: N = clique minus {x,y}; every N vertex
     sees both x and y → zero unique neighbors for the full set. *)
  let g = Wx_constructions.Cplus.create 6 in
  let s = Wx_constructions.Cplus.bad_set g in
  let t, _, _ = Bipartite.of_set_neighborhood g s in
  check_int "|N| = clique minus 2" 4 (Bipartite.n_count t);
  let uniq = Wx_expansion.Nbhd.Bip.unique_count t (Bitset.full 3) in
  check_int "no unique for full set" 0 uniq

let qcheck_tests =
  [
    qcheck ~count:50 "handshake both sides"
      (fun t ->
        let sum_s = ref 0 and sum_n = ref 0 in
        for u = 0 to Bipartite.s_count t - 1 do
          sum_s := !sum_s + Bipartite.deg_s t u
        done;
        for w = 0 to Bipartite.n_count t - 1 do
          sum_n := !sum_n + Bipartite.deg_n t w
        done;
        !sum_s = Bipartite.m t && !sum_n = Bipartite.m t)
      (arbitrary_bipartite ~smax:15 ~nmax:15);
    qcheck ~count:50 "to_graph preserves m"
      (fun t ->
        let g, _, _ = Bipartite.to_graph t in
        Graph.m g = Bipartite.m t)
      (arbitrary_bipartite ~smax:15 ~nmax:15);
    qcheck ~count:50 "adjacency symmetric"
      (fun t ->
        let ok = ref true in
        Bipartite.iter_edges t (fun u w ->
            if not (Array.mem u (Bipartite.neighbors_n t w)) then ok := false);
        !ok)
      (arbitrary_bipartite ~smax:15 ~nmax:15);
  ]

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "degrees" `Quick test_degrees;
    Alcotest.test_case "dedup" `Quick test_dedup;
    Alcotest.test_case "mem_edge" `Quick test_mem_edge;
    Alcotest.test_case "iter_edges" `Quick test_iter_edges;
    Alcotest.test_case "has_isolated" `Quick test_has_isolated;
    Alcotest.test_case "sub_instance" `Quick test_sub_instance;
    Alcotest.test_case "to_graph" `Quick test_to_graph;
    Alcotest.test_case "of_set_neighborhood path" `Quick test_of_set_neighborhood;
    Alcotest.test_case "of_set_neighborhood C+" `Quick test_of_set_neighborhood_cplus;
  ]
  @ qcheck_tests
