module Stats = Wx_util.Stats
open Common

let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () = check_float "mean" 5.0 (Stats.mean xs)

let test_variance () =
  (* Sample variance with n-1: sum sq dev = 32, / 7. *)
  check_float "variance" (32.0 /. 7.0) (Stats.variance xs)

let test_stddev () = check_float "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev xs)
let test_min_max () =
  check_float "min" 2.0 (Stats.min xs);
  check_float "max" 9.0 (Stats.max xs)

let test_single () =
  check_float "variance of single" 0.0 (Stats.variance [| 5.0 |]);
  check_float "median of single" 5.0 (Stats.median [| 5.0 |])

let test_median_even () = check_float "median" 4.5 (Stats.median xs)
let test_median_odd () = check_float "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_percentile () =
  check_float "p0" 2.0 (Stats.percentile xs 0.0);
  check_float "p100" 9.0 (Stats.percentile xs 100.0);
  check_float "p50 = median" (Stats.median xs) (Stats.percentile xs 50.0)

let test_percentile_does_not_mutate () =
  let ys = [| 3.0; 1.0; 2.0 |] in
  let _ = Stats.percentile ys 50.0 in
  check_true "unchanged" (ys = [| 3.0; 1.0; 2.0 |])

let test_empty_raises () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean [||]))

let test_summary () =
  let s = Stats.summarize xs in
  check_int "count" 8 s.Stats.count;
  check_float "mean" 5.0 s.Stats.mean;
  check_float "min" 2.0 s.Stats.min;
  check_float "max" 9.0 s.Stats.max

let test_welford_matches_direct () =
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) xs;
  check_int "count" 8 (Stats.Welford.count w);
  check_float "mean" (Stats.mean xs) (Stats.Welford.mean w);
  check_float ~eps:1e-9 "variance" (Stats.variance xs) (Stats.Welford.variance w)

let test_histogram () =
  let h = Stats.histogram [| 0.0; 0.5; 1.0; 1.5; 2.0 |] ~bins:2 in
  check_int "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  check_int "total" 5 (c0 + c1);
  check_int "first bin" 2 c0

let test_histogram_constant_data () =
  let h = Stats.histogram [| 3.0; 3.0; 3.0 |] ~bins:4 in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check_int "all counted" 3 total

let test_of_ints () = check_true "of_ints" (Stats.of_ints [| 1; 2 |] = [| 1.0; 2.0 |])

let qcheck_tests =
  let arb =
    QCheck.make
      QCheck.Gen.(list_size (int_range 1 50) (float_range (-100.0) 100.0))
  in
  [
    qcheck "min <= mean <= max"
      (fun l ->
        let a = Array.of_list l in
        Stats.min a <= Stats.mean a +. 1e-9 && Stats.mean a <= Stats.max a +. 1e-9)
      arb;
    qcheck "variance nonneg" (fun l -> Stats.variance (Array.of_list l) >= -1e-9) arb;
    qcheck "welford = direct"
      (fun l ->
        let a = Array.of_list l in
        let w = Stats.Welford.create () in
        Array.iter (Stats.Welford.add w) a;
        Wx_util.Floatx.approx_equal ~eps:1e-6 (Stats.mean a) (Stats.Welford.mean w))
      arb;
    qcheck "percentiles monotone"
      (fun l ->
        let a = Array.of_list l in
        Stats.percentile a 25.0 <= Stats.percentile a 75.0 +. 1e-9)
      arb;
  ]

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "single element" `Quick test_single;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile pure" `Quick test_percentile_does_not_mutate;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "welford" `Quick test_welford_matches_direct;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant_data;
    Alcotest.test_case "of_ints" `Quick test_of_ints;
  ]
  @ qcheck_tests
