(* Cross-module property tests (qcheck): invariants that tie subsystems
   together rather than exercising one module. *)

module Graph = Wx_graph.Graph
module Gen = Wx_graph.Gen
module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
module Rng = Wx_util.Rng
module Nbhd = Wx_expansion.Nbhd
open Common

let connected_arbitrary ~lo ~hi =
  (* G(n,p) conditioned on connectivity by unioning with a random cycle. *)
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graph.pp_adjacency g)
    QCheck.Gen.(
      let* n = int_range lo hi in
      let* p = float_range 0.1 0.5 in
      let* seed = int_range 0 1_000_000 in
      let r = Rng.create seed in
      let base = Wx_graph.Gen.gnp r n p in
      let perm = Rng.permutation r n in
      let cycle_edges = List.init n (fun i -> (perm.(i), perm.((i + 1) mod n))) in
      return (Graph.of_edges n (Graph.edges base @ cycle_edges)))

let suite =
  [
    (* Schedule synthesis completes and certifies on arbitrary connected
       graphs — the strongest end-to-end invariant in the repo. *)
    qcheck ~count:25 "schedule completes on connected graphs"
      (fun g ->
        let sch = Wx_radio.Schedule.synthesize (Rng.create 9) g ~source:0 in
        let ok, informed = Wx_radio.Schedule.replay g sch in
        ok && informed = Graph.n g
        && Wx_radio.Schedule.length sch >= Wx_radio.Schedule.lower_bound_rounds g ~source:0)
      (connected_arbitrary ~lo:4 ~hi:18);
    (* Graph IO roundtrips on arbitrary graphs. *)
    qcheck ~count:50 "graph io roundtrip"
      (fun g -> Graph.equal g (Wx_graph.Graph_io.of_string (Wx_graph.Graph_io.to_string g)))
      (arbitrary_graph ~lo:1 ~hi:25);
    (* Max-flow min-cut on tiny random unit networks: flow value equals the
       brute-force minimum cut (enumerating all source-side sets). *)
    qcheck ~count:40 "max-flow = brute min-cut"
      (fun g ->
        let n = Graph.n g in
        if n < 2 then true
        else begin
          let f = Wx_graph.Flow.create n in
          Graph.iter_edges g (fun u v ->
              Wx_graph.Flow.add_edge f u v 1;
              Wx_graph.Flow.add_edge f v u 1);
          let flow = Wx_graph.Flow.max_flow f ~source:0 ~sink:(n - 1) in
          (* Brute-force min cut over subsets containing 0 but not n-1. *)
          let best = ref max_int in
          Wx_util.Combi.iter_all_subsets n (fun mask ->
              if mask land 1 = 1 && mask lsr (n - 1) land 1 = 0 then begin
                let cut = ref 0 in
                Graph.iter_edges g (fun u v ->
                    let su = mask lsr u land 1 = 1 and sv = mask lsr v land 1 = 1 in
                    if su <> sv then incr cut);
                if !cut < !best then best := !cut
              end);
          flow = !best
        end)
      (arbitrary_graph ~lo:2 ~hi:10);
    (* Exact arboricity from the flow machinery is sandwiched between the
       peeling lower bound and the degeneracy. *)
    qcheck ~count:30 "arboricity sandwich (flow)"
      (fun g ->
        if Graph.m g = 0 then true
        else begin
          let a = Wx_graph.Densest.arboricity_exact g in
          Wx_graph.Arboricity.lower_bound_peeling g <= a
          && a <= max 1 (Wx_graph.Arboricity.degeneracy g)
        end)
      (arbitrary_graph ~lo:2 ~hi:20);
    (* Γ¹_S(S′) ⊆ Γ⁻(S) for arbitrary S′ ⊆ S. *)
    qcheck ~count:50 "unique neighborhood inside boundary"
      (fun g ->
        let n = Graph.n g in
        if n < 3 then true
        else begin
          let r = Rng.create 4 in
          let s = Bitset.random_of_universe r n (max 1 (n / 3)) in
          let s' = Bitset.random_subset r s 0.5 in
          Bitset.subset (Nbhd.gamma1_excluding g s s') (Nbhd.gamma_minus g s)
        end)
      (arbitrary_graph ~lo:3 ~hi:20);
    (* Radio step: newly informed are exactly the silent vertices with a
       unique transmitting neighbor — cross-checked against a naive
       recomputation. *)
    qcheck ~count:50 "radio reception rule vs naive recomputation"
      (fun g ->
        let n = Graph.n g in
        if n < 2 then true
        else begin
          let r = Rng.create 11 in
          let net = Wx_radio.Network.create g 0 in
          (* Grow an informed set a few rounds with flooding, then test a
             random transmitter subset. *)
          for _ = 1 to 2 do
            ignore (Wx_radio.Network.step net (Wx_radio.Network.informed net))
          done;
          let informed = Bitset.copy (Wx_radio.Network.informed net) in
          let tx = Bitset.random_subset r informed 0.6 in
          let newly = Wx_radio.Network.step net tx in
          let expected = Bitset.create n in
          for w = 0 to n - 1 do
            if (not (Bitset.mem informed w)) && not (Bitset.mem tx w) then begin
              let c = ref 0 in
              Graph.iter_neighbors g w (fun v -> if Bitset.mem tx v then incr c);
              if !c = 1 then Bitset.add_inplace expected w
            end
          done;
          Bitset.equal newly expected
        end)
      (arbitrary_graph ~lo:2 ~hi:20);
    (* Greedy solver never loses to the paper's naive procedure guarantee. *)
    qcheck ~count:40 "greedy beats the gamma/Delta bar"
      (fun t ->
        if Bipartite.has_isolated t then true
        else begin
          let r = Wx_spokesmen.Greedy.solve t in
          float_of_int r.Wx_spokesmen.Solver.covered
          >= (float_of_int (Bipartite.n_count t)
              /. float_of_int (max 1 (Bipartite.max_deg_s t)))
             -. 1e-9
        end)
      (arbitrary_bipartite ~smax:12 ~nmax:16);
    (* Core graph DP vs brute force at random power-of-two sizes. *)
    qcheck ~count:10 "core DP vs brute force (random sizes)"
      (fun b ->
        let s = 1 lsl (1 + (abs b mod 4)) in
        let cg = Wx_constructions.Core_graph.create s in
        let brute, _ = Wx_expansion.Bip_measure.exact_max_unique (Wx_constructions.Core_graph.bip cg) in
        brute = Wx_constructions.Core_graph.dp_max_unique cg)
      QCheck.small_signed_int;
    (* Edge connectivity ≤ min degree, and = min degree on the complete
       graphs we can afford. *)
    qcheck ~count:25 "edge connectivity <= min degree"
      (fun g ->
        if Graph.n g < 2 then true
        else Wx_graph.Connectivity.edge_connectivity g <= max 0 (Graph.min_degree g))
      (arbitrary_graph ~lo:2 ~hi:14);
  ]
