(* Table, Floatx, Combi, Pq. *)
module Table = Wx_util.Table
module Floatx = Wx_util.Floatx
module Combi = Wx_util.Combi
module Pq = Wx_util.Pq
open Common

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta-long-name"; "22" ];
  let s = Table.render t in
  check_true "contains header" (String.length s > 0);
  let lines = String.split_on_char '\n' (String.trim s) in
  let widths = List.map String.length lines in
  check_true "all lines same width" (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_wrong_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_formatters () =
  Alcotest.(check string) "fi" "42" (Table.fi 42);
  Alcotest.(check string) "ff" "3.142" (Table.ff ~dec:3 3.14159);
  Alcotest.(check string) "ff nan" "-" (Table.ff nan);
  Alcotest.(check string) "fb true" "yes" (Table.fb true);
  Alcotest.(check string) "fb false" "NO" (Table.fb false);
  Alcotest.(check string) "fr" "2.00" (Table.fr 4.0 2.0);
  Alcotest.(check string) "fr zero" "-" (Table.fr 4.0 0.0)

(* --- Floatx --- *)

let test_log2 () =
  check_float "log2 8" 3.0 (Floatx.log2 8.0);
  check_float "log2 1" 0.0 (Floatx.log2 1.0)

let test_log2i () =
  check_int "floor 1" 0 (Floatx.log2i_floor 1);
  check_int "floor 7" 2 (Floatx.log2i_floor 7);
  check_int "floor 8" 3 (Floatx.log2i_floor 8);
  check_int "ceil 8" 3 (Floatx.log2i_ceil 8);
  check_int "ceil 9" 4 (Floatx.log2i_ceil 9);
  check_int "ceil 1" 0 (Floatx.log2i_ceil 1)

let test_is_pow2 () =
  check_true "1" (Floatx.is_pow2 1);
  check_true "64" (Floatx.is_pow2 64);
  check_true "not 0" (not (Floatx.is_pow2 0));
  check_true "not 6" (not (Floatx.is_pow2 6));
  check_true "not -4" (not (Floatx.is_pow2 (-4)))

let test_safe_div () =
  check_float "normal" 2.0 (Floatx.safe_div 4.0 2.0);
  check_true "div 0 is nan" (Float.is_nan (Floatx.safe_div 1.0 0.0))

let test_clamp () =
  check_float "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check_float "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_float "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5)

(* --- Combi --- *)

let test_binomial () =
  check_int "C(5,2)" 10 (Combi.binomial 5 2);
  check_int "C(10,0)" 1 (Combi.binomial 10 0);
  check_int "C(10,10)" 1 (Combi.binomial 10 10);
  check_int "C(4,7)" 0 (Combi.binomial 4 7);
  check_int "C(52,5)" 2598960 (Combi.binomial 52 5)

let test_iter_subsets_of_size () =
  let count = ref 0 in
  let seen = Hashtbl.create 16 in
  Combi.iter_subsets_of_size 6 3 (fun a ->
      incr count;
      check_int "size" 3 (Array.length a);
      let key = Array.to_list a in
      check_true "sorted" (key = List.sort compare key);
      check_true "distinct" (not (Hashtbl.mem seen key));
      Hashtbl.add seen key ());
  check_int "C(6,3)" 20 !count

let test_iter_subsets_le () =
  let count = ref 0 in
  Combi.iter_subsets_le 5 3 (fun _ -> incr count);
  check_int "5+10+10" 25 !count

let test_iter_all_subsets () =
  let count = ref 0 in
  Combi.iter_all_subsets 5 (fun _ -> incr count);
  check_int "2^5" 32 !count

let test_subsets_count_le () =
  check_int "counts" 25 (Combi.subsets_count_le 5 3);
  check_int "full" 31 (Combi.subsets_count_le 5 5)

(* --- Pq --- *)

let test_pq_max_order () =
  let q = Pq.create_max () in
  List.iter (fun (p, v) -> Pq.push q p v) [ (3, "c"); (1, "a"); (5, "e"); (2, "b") ];
  check_int "len" 4 (Pq.length q);
  let order = ref [] in
  let rec drain () =
    match Pq.pop q with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  check_true "desc order" (List.rev !order = [ "e"; "c"; "b"; "a" ]);
  check_true "empty" (Pq.is_empty q)

let test_pq_min_order () =
  let q = Pq.create_min () in
  List.iter (fun p -> Pq.push q p p) [ 4; 1; 3; 2 ];
  let out = ref [] in
  let rec drain () =
    match Pq.pop q with
    | None -> ()
    | Some (p, _) ->
        out := p :: !out;
        drain ()
  in
  drain ();
  check_true "asc order" (List.rev !out = [ 1; 2; 3; 4 ])

let test_pq_peek () =
  let q = Pq.create_max () in
  check_true "peek empty" (Pq.peek q = None);
  Pq.push q 9 "x";
  check_true "peek" (Pq.peek q = Some (9, "x"));
  check_int "len unchanged" 1 (Pq.length q)

let qcheck_tests =
  [
    qcheck "pq heapsort"
      (fun l ->
        let q = Pq.create_min () in
        List.iter (fun x -> Pq.push q x x) l;
        let rec drain acc =
          match Pq.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
        in
        drain [] = List.sort compare l)
      QCheck.(list_of_size (QCheck.Gen.int_range 0 200) small_signed_int);
    qcheck "binomial pascal"
      (fun (n, k) ->
        let n = (n mod 20) + 2 and k = abs k mod 20 in
        if k > n || k = 0 then true
        else Combi.binomial n k = Combi.binomial (n - 1) (k - 1) + Combi.binomial (n - 1) k)
      QCheck.(pair small_nat small_signed_int);
  ]

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_wrong_arity;
    Alcotest.test_case "table formatters" `Quick test_table_formatters;
    Alcotest.test_case "log2" `Quick test_log2;
    Alcotest.test_case "log2i" `Quick test_log2i;
    Alcotest.test_case "is_pow2" `Quick test_is_pow2;
    Alcotest.test_case "safe_div" `Quick test_safe_div;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "subsets of size" `Quick test_iter_subsets_of_size;
    Alcotest.test_case "subsets le" `Quick test_iter_subsets_le;
    Alcotest.test_case "all subsets" `Quick test_iter_all_subsets;
    Alcotest.test_case "subset counts" `Quick test_subsets_count_le;
    Alcotest.test_case "pq max" `Quick test_pq_max_order;
    Alcotest.test_case "pq min" `Quick test_pq_min_order;
    Alcotest.test_case "pq peek" `Quick test_pq_peek;
  ]
  @ qcheck_tests
