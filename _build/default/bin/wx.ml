(* wx — command-line front end to the wireless-expanders library.

   Subcommands:
     wx info      <family> <size>              graph statistics
     wx expansion <family> <size> [--alpha a]  β / βw / βu (exact or witness)
     wx spokesmen <family> <size> [--solver s] spokesmen election on a frontier
     wx broadcast <family> <size> [--protocol p] [--seeds k]
     wx core      <s>                          core-graph property report
     wx arboricity <family> <size>             exact (flow) vs bounds

   Families are the names from Constructions.Families (cycle, grid, torus,
   hypercube, random-4-regular, margulis, ...), plus "cplus" and "chain". *)

open Wireless_expanders.Api
module T = Util.Table

let base_seed = Wireless_expanders.Instances.seed

let make_graph family size seed =
  match family with
  | "cplus" -> Constructions.Cplus.create (max 3 size)
  | "chain" ->
      let ch =
        Constructions.Broadcast_chain.create (Util.Rng.create seed) ~copies:(max 1 (size / 64))
          ~s:16
      in
      ch.Constructions.Broadcast_chain.graph
  | name ->
      let f = Constructions.Families.find name in
      f.Constructions.Families.make (Util.Rng.create seed) size

let family_conv =
  let parse s =
    match make_graph s 8 0 with
    | _ -> Ok s
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown family %S; available: %s, cplus, chain" s
               (String.concat ", "
                  (List.map
                     (fun f -> f.Constructions.Families.name)
                     Constructions.Families.all))))
    | exception Invalid_argument _ -> Ok s
  in
  Cmdliner.Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt s)

(* ---- info ---- *)

let cmd_info family size seed =
  let g = make_graph family size seed in
  Printf.printf "family: %s (requested size %d, seed %d)\n" family size seed;
  Printf.printf "n = %d, m = %d\n" (Graph.n g) (Graph.m g);
  Printf.printf "degrees: min %d, max %d, avg %.2f%s\n" (Graph.min_degree g)
    (Graph.max_degree g) (Graph.avg_degree g)
    (match Graph.is_regular g with Some d -> Printf.sprintf " (regular, d = %d)" d | None -> "");
  Printf.printf "connected: %b; bipartite: %b\n" (Traversal.is_connected g)
    (Traversal.is_bipartite g);
  if Graph.n g <= 400 && Traversal.is_connected g then
    Printf.printf "diameter: %d\n" (Traversal.diameter g);
  Printf.printf "degeneracy: %d; arboricity (exact, flow): %d\n" (Arboricity.degeneracy g)
    (Densest.arboricity_exact g);
  0

(* ---- expansion ---- *)

let cmd_expansion family size seed alpha =
  let g = make_graph family size seed in
  Printf.printf "%s (n = %d, α = %.2f)\n" family (Graph.n g) alpha;
  let exact_possible = Graph.n g <= 14 in
  if exact_possible then begin
    let b = Expansion.Measure.beta_exact ~alpha g in
    let bw = Expansion.Measure.beta_w_exact ~alpha g in
    let bu = Expansion.Measure.beta_u_exact ~alpha g in
    Printf.printf "β  = %.4f (exact)  witness %s\n" b.Expansion.Measure.value
      (Util.Bitset.to_string b.Expansion.Measure.witness);
    Printf.printf "βw = %.4f (exact)\n" bw.Expansion.Measure.value;
    Printf.printf "βu = %.4f (exact)  witness %s\n" bu.Expansion.Measure.value
      (Util.Bitset.to_string bu.Expansion.Measure.witness)
  end
  else begin
    let r = Util.Rng.create (seed + 1) in
    let b = Expansion.Measure.beta_sampled ~alpha r ~samples:2000 g in
    let bu = Expansion.Measure.beta_u_sampled ~alpha r ~samples:2000 g in
    Printf.printf "β  <= %.4f (witness certificate, 2000 samples)\n" b.Expansion.Measure.value;
    Printf.printf "βu <= %.4f (witness certificate)\n" bu.Expansion.Measure.value;
    match Expansion.Measure.beta_w_sampled ~alpha r ~samples:300 g with
    | bw -> Printf.printf "βw <= %.4f (witness certificate)\n" bw.Expansion.Measure.value
    | exception _ -> print_endline "βw: sets too large for the inner exact maximization"
  end;
  0

(* ---- spokesmen ---- *)

let cmd_spokesmen family size seed solver =
  let g = make_graph family size seed in
  let r = Util.Rng.create (seed + 2) in
  let k = max 1 (Graph.n g / 4) in
  let s = Util.Bitset.random_of_universe r (Graph.n g) k in
  let inst, _, _ = Bipartite.of_set_neighborhood g s in
  Format.printf "frontier instance from %s: %a@." family Bipartite.pp inst;
  let results =
    match solver with
    | "all" -> Spokesmen.Portfolio.solve_each ~reps:48 r inst
    | name -> (
        match List.assoc_opt name Spokesmen.Portfolio.solvers with
        | Some f -> [ (name, f r inst) ]
        | None ->
            Printf.eprintf "unknown solver %S; use --solver all to list results of all\n" name;
            exit 1)
  in
  let t = T.create [ "solver"; "covered"; "of |N|" ] in
  List.iter
    (fun (name, res) ->
      T.add_row t
        [
          name;
          T.fi res.Spokesmen.Solver.covered;
          Printf.sprintf "%.1f%%"
            (100.0
            *. float_of_int res.Spokesmen.Solver.covered
            /. float_of_int (max 1 (Bipartite.n_count inst)));
        ])
    results;
  T.print t;
  (match Spokesmen.Bb.solve ~node_limit:2_000_000 inst with
  | r, Spokesmen.Bb.Proved_optimal ->
      Printf.printf "optimum (branch-and-bound): %d\n" r.Spokesmen.Solver.covered
  | r, Spokesmen.Bb.Budget_exhausted ->
      Printf.printf "best proven-so-far (budget hit): %d\n" r.Spokesmen.Solver.covered);
  0

(* ---- broadcast ---- *)

let protocol_of_name = function
  | "flood" -> Radio.Flood.protocol
  | "decay" -> Radio.Decay_protocol.protocol
  | "spokesmen" -> Radio.Spokesmen_cast.protocol
  | s when String.length s > 8 && String.sub s 0 8 = "uniform-" ->
      Radio.Uniform.protocol (float_of_string (String.sub s 8 (String.length s - 8)))
  | s ->
      Printf.eprintf "unknown protocol %S (flood | decay | spokesmen | uniform-<p>)\n" s;
      exit 1

let cmd_broadcast family size seed protocol seeds =
  let g = make_graph family size seed in
  let p = protocol_of_name protocol in
  Printf.printf "broadcast on %s (n = %d) with %s, %d seeds\n" family (Graph.n g)
    p.Radio.Protocol.name seeds;
  let seed_list = List.init seeds (fun i -> seed + 100 + i) in
  let _, outs = Radio.Sim.monte_carlo ~max_rounds:100_000 g ~source:0 p ~seeds:seed_list in
  let rounds = Util.Stats.of_ints (Array.of_list (List.map (fun o -> o.Radio.Sim.rounds) outs)) in
  let completed = List.length (List.filter (fun o -> o.Radio.Sim.completed) outs) in
  Printf.printf "completed: %d/%d\n" completed seeds;
  if completed > 0 then
    Format.printf "rounds: %a@." Util.Stats.pp_summary (Util.Stats.summarize rounds);
  0

(* ---- core ---- *)

let cmd_core s =
  if not (Util.Floatx.is_pow2 s) then begin
    Printf.eprintf "s must be a power of two\n";
    1
  end
  else begin
    let cg = Constructions.Core_graph.create s in
    let inst = Constructions.Core_graph.bip cg in
    Format.printf "core graph: %a@." Bipartite.pp inst;
    let log2s = Util.Floatx.log2 (2.0 *. float_of_int s) in
    let mins = Constructions.Core_graph.dp_min_coverage cg in
    let worst = ref infinity in
    for k = 1 to s do
      worst := Float.min !worst (float_of_int mins.(k) /. float_of_int k)
    done;
    Printf.printf "ordinary expansion (exact): %.3f  [Lemma 4.4 promises >= %.3f]\n" !worst log2s;
    let cap = Constructions.Core_graph.dp_max_unique cg in
    Printf.printf "max unique coverage (exact): %d  [Lemma 4.4 caps at %d]\n" cap (2 * s);
    Printf.printf "wireless/ordinary ratio: %.3f  [paper: 2/log 2s = %.3f]\n"
      (float_of_int cap /. float_of_int s /. !worst)
      (2.0 /. log2s);
    0
  end

(* ---- schedule ---- *)

let cmd_schedule family size seed =
  let g = make_graph family size seed in
  let r = Util.Rng.create (seed + 3) in
  Printf.printf "synthesizing offline broadcast schedule on %s (n = %d)...\n" family (Graph.n g);
  (match Radio.Schedule.synthesize r g ~source:0 with
  | sch ->
      let ok, informed = Radio.Schedule.replay g sch in
      Printf.printf "rounds: %d (BFS lower bound %d)\n" (Radio.Schedule.length sch)
        (Radio.Schedule.lower_bound_rounds g ~source:0);
      Printf.printf "replay: %s (%d/%d informed)\n"
        (if ok then "complete" else "INCOMPLETE")
        informed (Graph.n g);
      Array.iteri
        (fun i tx ->
          if i < 10 then
            Printf.printf "  round %2d: %d transmitters\n" (i + 1) (Util.Bitset.cardinal tx))
        sch.Radio.Schedule.rounds;
      if Radio.Schedule.length sch > 10 then print_endline "  ..."
  | exception Failure msg -> Printf.printf "failed: %s\n" msg);
  0

(* ---- arboricity ---- *)

let cmd_arboricity family size seed =
  let g = make_graph family size seed in
  Printf.printf "%s: n = %d, m = %d\n" family (Graph.n g) (Graph.m g);
  let num, den, u = Densest.max_density g in
  Printf.printf "max density |E(U)|/(|U|−1) = %d/%d = %.3f at |U| = %d\n" num den
    (float_of_int num /. float_of_int den)
    (Util.Bitset.cardinal u);
  Printf.printf "exact arboricity: %d\n" (Densest.arboricity_exact g);
  Printf.printf "peeling lower bound: %d, degeneracy upper-ish bound: %d\n"
    (Arboricity.lower_bound_peeling g) (Arboricity.degeneracy g);
  0

(* ---- dot ---- *)

let cmd_dot family size seed =
  let g = make_graph family size seed in
  print_string (Graph_io.to_dot g);
  0

(* ---- verify-paper ---- *)

let cmd_verify_paper quick seed =
  let rng = Util.Rng.create seed in
  Printf.printf "verifying every claim of the paper on the curated instances (seed %d%s)...\n"
    seed (if quick then ", quick" else "");
  let checks = Wireless_expanders.Theorems.run_all ~quick rng in
  let failures =
    List.filter (fun c -> not c.Wireless_expanders.Theorems.holds) checks
  in
  List.iter
    (fun c -> Format.printf "  %a@." Wireless_expanders.Theorems.pp_check c)
    failures;
  Printf.printf "%d/%d claims hold\n" (List.length checks - List.length failures)
    (List.length checks);
  if failures = [] then 0 else 1

(* ---- cmdliner wiring ---- *)

open Cmdliner

let family_arg = Arg.(required & pos 0 (some family_conv) None & info [] ~docv:"FAMILY")
let size_arg = Arg.(value & pos 1 int 64 & info [] ~docv:"SIZE")
let seed_arg = Arg.(value & opt int base_seed & info [ "seed" ] ~docv:"SEED")
let alpha_arg = Arg.(value & opt float 0.5 & info [ "alpha" ] ~docv:"ALPHA")
let solver_arg = Arg.(value & opt string "all" & info [ "solver" ] ~docv:"SOLVER")
let protocol_arg = Arg.(value & opt string "decay" & info [ "protocol" ] ~docv:"PROTOCOL")
let seeds_arg = Arg.(value & opt int 10 & info [ "seeds" ] ~docv:"K")

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Graph statistics for a generated instance")
    Term.(const cmd_info $ family_arg $ size_arg $ seed_arg)

let expansion_cmd =
  Cmd.v (Cmd.info "expansion" ~doc:"Compute β, βw, βu (exact or witness certificates)")
    Term.(const cmd_expansion $ family_arg $ size_arg $ seed_arg $ alpha_arg)

let spokesmen_cmd =
  Cmd.v (Cmd.info "spokesmen" ~doc:"Run spokesmen-election solvers on a random frontier")
    Term.(const cmd_spokesmen $ family_arg $ size_arg $ seed_arg $ solver_arg)

let broadcast_cmd =
  Cmd.v (Cmd.info "broadcast" ~doc:"Simulate radio broadcast (Monte-Carlo)")
    Term.(const cmd_broadcast $ family_arg $ size_arg $ seed_arg $ protocol_arg $ seeds_arg)

let core_cmd =
  Cmd.v (Cmd.info "core" ~doc:"Core-graph property report (Lemma 4.4)")
    Term.(const cmd_core $ Arg.(value & pos 0 int 64 & info [] ~docv:"S"))

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit the generated graph as Graphviz DOT on stdout")
    Term.(const cmd_dot $ family_arg $ size_arg $ seed_arg)

let verify_paper_cmd =
  let quick = Arg.(value & flag & info [ "quick" ]) in
  Cmd.v
    (Cmd.info "verify-paper" ~doc:"Re-check every quantitative claim of the paper; exit 1 on any violation")
    Term.(const cmd_verify_paper $ quick $ seed_arg)

let schedule_cmd =
  Cmd.v (Cmd.info "schedule" ~doc:"Synthesize and certify an offline broadcast schedule")
    Term.(const cmd_schedule $ family_arg $ size_arg $ seed_arg)

let arboricity_cmd =
  Cmd.v (Cmd.info "arboricity" ~doc:"Exact arboricity via parametric flow")
    Term.(const cmd_arboricity $ family_arg $ size_arg $ seed_arg)

let () =
  let doc = "wireless-expanders command-line tool" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "wx" ~doc)
          [
            info_cmd; expansion_cmd; spokesmen_cmd; broadcast_cmd; core_cmd; arboricity_cmd;
            schedule_cmd; verify_paper_cmd; dot_cmd;
          ]))
