(** Curated, seeded instance sets shared by tests and benchmarks.

    Keeping the instance catalog in one place means EXPERIMENTS.md's
    numbers and `dune runtest`'s assertions are measured on identical
    inputs. Every randomized instance is built from the fixed {!seed}
    (plus a per-instance offset), so all outputs are reproducible. *)

module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite

val seed : int
(** The repository-wide base seed (20180218 — the paper's arXiv date). *)

val rng : int -> Wx_util.Rng.t
(** [rng offset] is a fresh generator at [seed + offset]. *)

val small_graphs : unit -> (string * Graph.t) list
(** The exact-measurement zoo (n ≤ 14): cycles, paths, grids, a hypercube,
    complete and complete-bipartite graphs, C⁺, random regular and G(n,p)
    instances, a star and a binary tree. Everything here is small enough
    for [beta_w_exact]. *)

val regular_graphs : unit -> (string * Graph.t) list
(** Regular connected graphs for the spectral checks (Lemma 3.1). *)

val gbad_grid : unit -> Wx_constructions.Gbad.t list
(** The (s, ∆, β) sweep used by E3/E4. *)

val core_sizes : int list
(** Powers of two for E5. *)

val bipartite_instances : unit -> (string * Bipartite.t) list
(** Spokesmen workloads for E7/E9/E10: neighborhood instances extracted
    from graph families, random bipartite graphs at several densities and
    degree skews, core graphs and Gbads. *)

val bipartite_small : unit -> (string * Bipartite.t) list
(** The subset of instances where [Exact.solve] is feasible (|S| ≤ 18). *)
