module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
module Gen = Wx_graph.Gen
module Rng = Wx_util.Rng

let seed = 20180218
let rng offset = Rng.create (seed + offset)

let small_graphs () =
  [
    ("cycle-10", Gen.cycle 10);
    ("path-10", Gen.path 10);
    ("grid-3x4", Gen.grid 3 4);
    ("hypercube-3", Gen.hypercube 3);
    ("complete-8", Gen.complete 8);
    ("complete-bip-4x4", Gen.complete_bipartite 4 4);
    ("star-10", Gen.star 10);
    ("binary-tree-3", Gen.binary_tree 3);
    ("cplus-8", Wx_constructions.Cplus.create 8);
    ("random-3reg-12", Gen.random_regular (rng 1) 12 3);
    ("gnp-12", Gen.gnp (rng 2) 12 0.4);
    ("torus-3x4", Gen.torus 3 4);
    ("lollipop-8+4", Gen.lollipop 8 4);
    ("barbell-6", Gen.barbell 6);
    ("ba-12-m2", Gen.barabasi_albert (rng 17) 12 2);
    ("wheel-ish-gnp", Gen.gnp (rng 18) 11 0.5);
  ]

let regular_graphs () =
  [
    ("cycle-12", Gen.cycle 12);
    ("hypercube-3", Gen.hypercube 3);
    ("hypercube-4", Gen.hypercube 4);
    ("complete-10", Gen.complete 10);
    ("random-3reg-14", Gen.random_regular (rng 3) 14 3);
    ("random-4reg-14", Gen.random_regular (rng 4) 14 4);
    ("torus-4x4", Gen.torus 4 4);
  ]

let gbad_grid () =
  let open Wx_constructions.Gbad in
  let cases =
    [
      (6, 4, 2); (6, 4, 3); (6, 4, 4);
      (6, 6, 3); (6, 6, 4); (6, 6, 5);
      (8, 8, 4); (8, 8, 6); (8, 8, 8);
      (10, 12, 6); (10, 12, 9); (10, 12, 12);
      (40, 10, 5); (40, 10, 7);
    ]
  in
  List.map (fun (s, delta, beta) -> create ~s ~delta ~beta) cases

let core_sizes = [ 2; 4; 8; 16; 32; 64; 128; 256; 512 ]

let neighborhood_instance g k r =
  (* The paper's G_S for a random connected-ish set S of size k. *)
  let n = Graph.n g in
  let s = Bitset.random_of_universe r n (min k (n / 2)) in
  let inst, _, _ = Bipartite.of_set_neighborhood g s in
  inst

let core s = Wx_constructions.Core_graph.bip (Wx_constructions.Core_graph.create s)

let bipartite_instances () =
  let fam name size off =
    let f = Wx_constructions.Families.find name in
    let g = f.Wx_constructions.Families.make (rng off) size in
    (Printf.sprintf "%s-%d-nbhd" name size, neighborhood_instance g (size / 4) (rng (off + 100)))
  in
  [
    ("core-16", core 16);
    ("core-64", core 64);
    ("gbad-10-12-9", Wx_constructions.Gbad.bip (Wx_constructions.Gbad.create ~s:10 ~delta:12 ~beta:9));
    ("rand-bip-20x40-d4", Gen.random_bipartite_sdeg (rng 5) ~s:20 ~n:40 ~d:4);
    ("rand-bip-30x20-d5", Gen.random_bipartite_sdeg (rng 6) ~s:30 ~n:20 ~d:5);
    ("rand-bip-64x256-d8", Gen.random_bipartite_sdeg (rng 7) ~s:64 ~n:256 ~d:8);
    ("rand-bip-100x50-d3", Gen.random_bipartite_sdeg (rng 8) ~s:100 ~n:50 ~d:3);
    fam "hypercube" 64 9;
    fam "random-4-regular" 60 10;
    fam "grid" 64 11;
    fam "margulis" 49 12;
    ("matching-2048", Gen.bipartite_matching (rng 16) 2048);
  ]

let bipartite_small () =
  [
    ("core-8", core 8);
    ("gbad-6-6-4", Wx_constructions.Gbad.bip (Wx_constructions.Gbad.create ~s:6 ~delta:6 ~beta:4));
    ("rand-bip-12x24-d3", Gen.random_bipartite_sdeg (rng 13) ~s:12 ~n:24 ~d:3);
    ("rand-bip-14x10-d4", Gen.random_bipartite_sdeg (rng 14) ~s:14 ~n:10 ~d:4);
    ("rand-bip-16x16-d2", Gen.random_bipartite_sdeg (rng 15) ~s:16 ~n:16 ~d:2);
  ]
