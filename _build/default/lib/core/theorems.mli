(** One checkable function per quantitative claim of the paper.

    Each check returns a {!check} record pairing the paper's predicted
    bound with the measured value on a concrete instance, plus whether the
    claimed inequality holds. These power both the test suite (every check
    must hold) and the bench harness (the records become table rows).

    Exact measures are used whenever the instance is small enough; checks
    on larger instances state which side of the inequality a sampled
    certificate can support (sampling a min yields a sound upper bound,
    so it can only refute, never spuriously confirm, a lower-bound claim —
    refutations are what we test for). *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite

type check = {
  claim : string;  (** e.g. "Lemma 3.2" *)
  instance : string;  (** human-readable instance description *)
  predicted : float;  (** the bound the paper asserts *)
  measured : float;  (** what we measured *)
  holds : bool;
}

val pp_check : Format.formatter -> check -> unit

(** {1 Section 2/3: relations between the expansion notions} *)

val obs_2_1 : ?alpha:float -> string -> Graph.t -> check list
(** [β ≥ βw ≥ βu], all three exact. Small graphs only. *)

val lemma_3_1 : ?alpha:float -> string -> Graph.t -> Wx_util.Rng.t -> check
(** Spectral bound for regular graphs: measured exact β vs
    [(1 − 1/d)·βu + (d − λ₂)(1 − αu)/d]. *)

val lemma_3_2 : ?alpha:float -> string -> Graph.t -> check
(** [βu ≥ 2β − ∆], both sides exact. *)

val lemma_4_1 : ?alpha:float -> string -> Graph.t -> check
(** [βw ≥ 2β − ∆], both sides exact (the wireless transplant of 3.2). *)

val lemma_3_3 : Wx_constructions.Gbad.t -> check list
(** On Gbad: (a) the unique expansion of the full set S is exactly
    [2β − ∆]; (b) the instance's one-sided ordinary expansion is ≥ β
    (checked on sampled subsets for large s, exact for small). *)

val gbad_wireless : Wx_constructions.Gbad.t -> check
(** Remark after 3.3: wireless expansion of S in Gbad ≥ max{2β−∆, ∆/2}
    (measured: exact for small s, the every-second witness for large). *)

(** {1 Section 4: wireless expansion bounds} *)

val theorem_1_1_bip : string -> Bipartite.t -> Wx_util.Rng.t -> check
(** On a bipartite instance: best solver coverage per |S| vs
    [c·β/log₂(2·min{∆/β, ∆·β})] with the honest constant c = 1/9 (the
    paper's explicit constant from Corollary A.14, which subsumes the
    probabilistic-method constants). *)

val lemma_4_4 : Wx_constructions.Core_graph.t -> check list
(** All five properties of the core graph, exactly (tree DPs). *)

val lemma_4_6 : Wx_constructions.Gen_core.t -> check list
(** Sizes, expansion and the [4/log min{∆*/β*, ∆*·β*}] wireless cap of the
    generalized core graph. *)

val claim_4_9 : Wx_constructions.Worst_case.t -> Wx_util.Rng.t -> samples:int -> check
(** Sampled-witness non-refutation of [β̃ ≥ (1 − ε)β]: the minimum sampled
    expansion of G̃ must not fall below the predicted β̃ (the exact check is
    exponential; any witness below predicted refutes the claim). *)

val claim_4_10 : Wx_constructions.Worst_case.t -> check
(** Wireless expansion witnessed at S*: exact (tree DP) value vs the claim's
    ceiling [24·β̃/(ε³·log min{∆̃/β̃, ∆̃β̃})], normalized per |S*|. *)

(** {1 Section 5: broadcast} *)

val corollary_5_1 : Wx_constructions.Core_graph.t -> check list
(** On the rooted core graph: reaching a [2i/log 2s] fraction of N takes
    ≥ 1 + i rounds for every i — checked against the {e strongest possible}
    adversary, the exact per-round maximum unique coverage [≤ 2s]. *)

val section_5_lower_bound :
  Wx_constructions.Broadcast_chain.t -> Wx_radio.Protocol.t -> seeds:int list -> check
(** Monte-Carlo: measured mean broadcast time of the protocol on the chain
    vs the instance's [copies·log₂(2s)/4] lower bound. *)

val run_all : ?quick:bool -> Wx_util.Rng.t -> check list
(** Every checker in this module over the curated {!Instances} catalog —
    the complete empirical verification of the paper in one call. [quick]
    shrinks the instance sets. Used by the test suite and by
    [wx verify-paper]. *)
