lib/core/instances.mli: Wx_constructions Wx_graph Wx_util
