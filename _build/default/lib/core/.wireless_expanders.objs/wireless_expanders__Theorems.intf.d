lib/core/theorems.mli: Format Wx_constructions Wx_graph Wx_radio Wx_util
