lib/core/instances.ml: List Printf Wx_constructions Wx_graph Wx_util
