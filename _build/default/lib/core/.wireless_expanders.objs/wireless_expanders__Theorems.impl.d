lib/core/theorems.ml: Array Float Format Instances List Printf Wx_constructions Wx_expansion Wx_graph Wx_radio Wx_spectral Wx_spokesmen Wx_util
