lib/core/api.mli: Wx_constructions Wx_expansion Wx_graph Wx_radio Wx_spectral Wx_spokesmen Wx_util
