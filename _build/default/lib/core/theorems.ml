module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Measure = Wx_expansion.Measure
module Bip_measure = Wx_expansion.Bip_measure
module Bounds = Wx_expansion.Bounds
module Nbhd = Wx_expansion.Nbhd
module Gbad = Wx_constructions.Gbad
module Core_graph = Wx_constructions.Core_graph
module Gen_core = Wx_constructions.Gen_core
module Worst_case = Wx_constructions.Worst_case
module Broadcast_chain = Wx_constructions.Broadcast_chain
module Floatx = Wx_util.Floatx

type check = {
  claim : string;
  instance : string;
  predicted : float;
  measured : float;
  holds : bool;
}

let pp_check fmt c =
  Format.fprintf fmt "%-14s %-28s predicted=%.4f measured=%.4f %s" c.claim c.instance
    c.predicted c.measured
    (if c.holds then "ok" else "VIOLATED")

let ge ?(slack = 1e-9) a b = a >= b -. slack

(* ------------------------------------------------------------------ *)
(* Section 2/3                                                         *)

let obs_2_1 ?alpha instance g =
  let b = (Measure.beta_exact ?alpha g).Measure.value in
  let bw = (Measure.beta_w_exact ?alpha g).Measure.value in
  let bu = (Measure.beta_u_exact ?alpha g).Measure.value in
  [
    { claim = "Obs 2.1 (β≥βw)"; instance; predicted = bw; measured = b; holds = ge b bw };
    { claim = "Obs 2.1 (βw≥βu)"; instance; predicted = bu; measured = bw; holds = ge bw bu };
  ]

let lemma_3_1 ?(alpha = 0.5) instance g rng =
  let d =
    match Graph.is_regular g with
    | Some d -> d
    | None -> invalid_arg "Theorems.lemma_3_1: graph must be regular"
  in
  let lambda2 = Wx_spectral.Spectral_gap.lambda2_regular g rng in
  let beta_u = (Measure.beta_u_exact ~alpha g).Measure.value in
  let beta = (Measure.beta_exact ~alpha g).Measure.value in
  let predicted = Bounds.lemma_3_1 ~d ~lambda2 ~alpha_u:alpha ~beta_u in
  { claim = "Lemma 3.1"; instance; predicted; measured = beta; holds = ge beta predicted }

let lemma_3_2 ?alpha instance g =
  let beta = (Measure.beta_exact ?alpha g).Measure.value in
  let beta_u = (Measure.beta_u_exact ?alpha g).Measure.value in
  let predicted = Bounds.lemma_3_2 ~beta ~delta:(Graph.max_degree g) in
  { claim = "Lemma 3.2"; instance; predicted; measured = beta_u; holds = ge beta_u predicted }

let lemma_4_1 ?alpha instance g =
  let beta = (Measure.beta_exact ?alpha g).Measure.value in
  let beta_w = (Measure.beta_w_exact ?alpha g).Measure.value in
  let predicted = Bounds.lemma_3_2 ~beta ~delta:(Graph.max_degree g) in
  { claim = "Lemma 4.1"; instance; predicted; measured = beta_w; holds = ge beta_w predicted }

let lemma_3_3 gb =
  let t = Gbad.bip gb in
  let s = Gbad.s gb in
  let instance =
    Printf.sprintf "Gbad(s=%d,∆=%d,β=%d)" s (Gbad.delta gb) (Gbad.beta gb)
  in
  (* (a) Unique expansion of the full set S is exactly 2β − ∆. *)
  let full = Bitset.full s in
  let uniq = Nbhd.Bip.unique_count t full in
  let measured_bu = float_of_int uniq /. float_of_int s in
  let predicted_bu = float_of_int (Gbad.predicted_beta_u gb) in
  let a =
    {
      claim = "Lemma 3.3 (βu)";
      instance;
      predicted = predicted_bu;
      measured = measured_bu;
      holds = Float.abs (measured_bu -. predicted_bu) < 1e-9;
    }
  in
  (* (b) One-sided expansion at least β. *)
  let expansion, _ =
    if s <= 16 then Bip_measure.ordinary_expansion_min_exact t
    else
      Bip_measure.ordinary_expansion_min_sampled (Wx_util.Rng.create 7) ~samples:2000 t
  in
  let b =
    {
      claim = "Lemma 3.3 (β)";
      instance;
      predicted = float_of_int (Gbad.beta gb);
      measured = expansion;
      holds = ge expansion (float_of_int (Gbad.beta gb));
    }
  in
  [ a; b ]

let gbad_wireless gb =
  let t = Gbad.bip gb in
  let s = Gbad.s gb in
  let instance =
    Printf.sprintf "Gbad(s=%d,∆=%d,β=%d)" s (Gbad.delta gb) (Gbad.beta gb)
  in
  let predicted = Gbad.predicted_wireless_lb gb in
  let measured =
    if s <= 20 then begin
      let m, _ = Bip_measure.exact_max_unique t in
      float_of_int m /. float_of_int s
    end
    else begin
      (* Witness: every second vertex (the remark's g(l) choice) and the
         full set (the f(l) choice); wireless expansion is at least the
         better of the two. *)
      let w1 = Nbhd.Bip.unique_count t (Gbad.every_second gb) in
      let w2 = Nbhd.Bip.unique_count t (Bitset.full s) in
      float_of_int (max w1 w2) /. float_of_int s
    end
  in
  (* For odd s the every-second witness wraps awkwardly; allow the
     asymptotic bound with a 1/s additive tolerance. *)
  let slack = if s mod 2 = 0 then 1e-9 else float_of_int (Gbad.delta gb) /. float_of_int s in
  {
    claim = "Rmk 3.3 (βw)";
    instance;
    predicted;
    measured;
    holds = measured >= predicted -. slack;
  }

(* ------------------------------------------------------------------ *)
(* Section 4                                                           *)

let theorem_1_1_bip instance t rng =
  let beta = Bipartite.beta t in
  let delta = max (Bipartite.max_deg_s t) (Bipartite.max_deg_n t) in
  let predicted = Bounds.theorem_1_1 ~beta ~delta /. 9.0 in
  let r = Wx_spokesmen.Portfolio.solve ~reps:32 rng t in
  let measured = float_of_int r.Wx_spokesmen.Solver.covered /. float_of_int (Bipartite.s_count t) in
  { claim = "Theorem 1.1"; instance; predicted; measured; holds = ge measured predicted }

let lemma_4_4 cg =
  let s = Core_graph.s cg in
  let t = Core_graph.bip cg in
  let instance = Printf.sprintf "core(s=%d)" s in
  let log2s = Floatx.log2 (2.0 *. float_of_int s) in
  let c1 =
    let n_expected = float_of_int s *. log2s in
    {
      claim = "L4.4(1) |N|";
      instance;
      predicted = n_expected;
      measured = float_of_int (Bipartite.n_count t);
      holds = Float.abs (float_of_int (Bipartite.n_count t) -. n_expected) < 1e-6;
    }
  in
  let c2 =
    let ok = ref true in
    for u = 0 to s - 1 do
      if Bipartite.deg_s t u <> (2 * s) - 1 then ok := false
    done;
    {
      claim = "L4.4(2) degS";
      instance;
      predicted = float_of_int ((2 * s) - 1);
      measured = float_of_int (Bipartite.max_deg_s t);
      holds = !ok;
    }
  in
  let c3a =
    {
      claim = "L4.4(3) ∆N";
      instance;
      predicted = float_of_int s;
      measured = float_of_int (Bipartite.max_deg_n t);
      holds = Bipartite.max_deg_n t = s;
    }
  in
  let c3b =
    let bound = 2.0 *. float_of_int s /. log2s in
    let dn = Bipartite.delta_n t in
    { claim = "L4.4(3) δN"; instance; predicted = bound; measured = dn; holds = dn <= bound +. 1e-9 }
  in
  let c4 =
    (* Exact min over all subset sizes via tree DP: min over k of
       (min coverage at k) / k must be >= log2(2s). *)
    let mins = Core_graph.dp_min_coverage cg in
    let worst = ref infinity in
    for k = 1 to s do
      let r = float_of_int mins.(k) /. float_of_int k in
      if r < !worst then worst := r
    done;
    {
      claim = "L4.4(4) β";
      instance;
      predicted = log2s;
      measured = !worst;
      holds = ge !worst log2s;
    }
  in
  let c5 =
    let m = Core_graph.dp_max_unique cg in
    {
      claim = "L4.4(5) Γ¹cap";
      instance;
      predicted = 2.0 *. float_of_int s;
      measured = float_of_int m;
      holds = m <= 2 * s;
    }
  in
  [ c1; c2; c3a; c3b; c4; c5 ]

let lemma_4_6 (gc : Gen_core.t) =
  let t = gc.Gen_core.bip in
  let instance =
    Printf.sprintf "gen-core(∆*=%d,β*=%.2f,%s,k=%d)" gc.Gen_core.target_delta
      gc.Gen_core.target_beta
      (match gc.Gen_core.regime with Gen_core.Blow_up_n -> "4.7" | Gen_core.Blow_up_s -> "4.8")
      gc.Gen_core.k
  in
  let beta_star = gc.Gen_core.achieved_beta in
  let delta_star = float_of_int gc.Gen_core.achieved_delta in
  let c_size =
    (* Lemma 4.6(1): |S*| ≤ ∆*/2 for the {e target} ∆* (the builder may
       undershoot the target degree, which only helps); also require the
       built graph not to exceed the target degree. *)
    let s_star = float_of_int (Bipartite.s_count t) in
    let target = float_of_int gc.Gen_core.target_delta in
    {
      claim = "L4.6(1) |S*|";
      instance;
      predicted = target /. 2.0;
      measured = s_star;
      holds = s_star <= (target /. 2.0) +. 1.0 && delta_star <= target +. 1e-9;
    }
  in
  let c_exp =
    (* Expansion ≥ β*: exact for small S sides, sampled witness otherwise. *)
    let measured, _ =
      if Bipartite.s_count t <= 16 then Bip_measure.ordinary_expansion_min_exact t
      else Bip_measure.ordinary_expansion_min_sampled (Wx_util.Rng.create 11) ~samples:2000 t
    in
    {
      claim = "L4.6(2) β*";
      instance;
      predicted = beta_star;
      measured;
      holds = ge measured beta_star;
    }
  in
  let c_cap =
    let m = Gen_core.max_unique_exact gc in
    let frac = float_of_int m /. float_of_int (Bipartite.n_count t) in
    let arg = Float.min (delta_star /. beta_star) (delta_star *. beta_star) in
    let predicted = 4.0 /. Float.max 1.0 (Floatx.log2 arg) in
    { claim = "L4.6(3) cap"; instance; predicted; measured = frac; holds = frac <= predicted +. 1e-9 }
  in
  [ c_size; c_exp; c_cap ]

let claim_4_9 (wc : Worst_case.t) rng ~samples =
  let g = wc.Worst_case.graph in
  let predicted = Worst_case.predicted_beta_tilde wc in
  let alpha_tilde = (1.0 -. wc.Worst_case.eps) *. 0.5 in
  let witnessed = Measure.beta_sampled ~alpha:alpha_tilde rng ~samples g in
  let instance = Printf.sprintf "G̃(ε=%.2f, n=%d)" wc.Worst_case.eps (Graph.n g) in
  {
    claim = "Claim 4.9";
    instance;
    predicted;
    measured = witnessed.Measure.value;
    holds = ge witnessed.Measure.value predicted;
  }

let claim_4_10 (wc : Worst_case.t) =
  let measured = Worst_case.s_star_wireless_exact wc in
  let predicted =
    Worst_case.predicted_wireless_cap wc
  in
  let instance = Printf.sprintf "G̃(ε=%.2f)" wc.Worst_case.eps in
  { claim = "Claim 4.10"; instance; predicted; measured; holds = measured <= predicted +. 1e-9 }

(* ------------------------------------------------------------------ *)
(* Section 5                                                           *)

let corollary_5_1 cg =
  let s = Core_graph.s cg in
  let log2s = Floatx.log2 (2.0 *. float_of_int s) in
  let n_total = Core_graph.n_size cg in
  let cap = Core_graph.dp_max_unique cg in
  (* Even an omniscient protocol informs ≤ cap ≤ 2s new N-vertices per
     round after the first; so reaching fraction 2i/log2s of N takes at
     least 1 + ceil(i·(2s·...)/cap)-ish rounds. We check the paper's exact
     statement: rounds ≥ 1 + i for fractions 2i/log(2s), using cap as the
     per-round budget. *)
  let checks = ref [] in
  let imax = int_of_float (log2s /. 2.0) in
  for i = 0 to imax do
    let fraction = 2.0 *. float_of_int i /. log2s in
    let vertices_needed = fraction *. float_of_int n_total in
    (* After round 1, each round adds ≤ cap: optimistic round count. *)
    let best_possible_rounds =
      if vertices_needed <= float_of_int cap then 1
      else 1 + int_of_float (Float.ceil ((vertices_needed -. float_of_int cap) /. float_of_int cap))
    in
    checks :=
      {
        claim = Printf.sprintf "Cor 5.1 (i=%d)" i;
        instance = Printf.sprintf "core(s=%d)+rt" s;
        predicted = float_of_int (Bounds.corollary_5_1_min_rounds ~s ~i);
        measured = float_of_int best_possible_rounds;
        holds = best_possible_rounds >= Bounds.corollary_5_1_min_rounds ~s ~i;
      }
      :: !checks
  done;
  List.rev !checks

let section_5_lower_bound chain protocol ~seeds =
  let g = chain.Broadcast_chain.graph in
  let root = chain.Broadcast_chain.root in
  let last_relay =
    chain.Broadcast_chain.relays.(Array.length chain.Broadcast_chain.relays - 1)
  in
  let times =
    List.filter_map
      (fun seed ->
        Wx_radio.Sim.rounds_to_inform g ~source:root ~target:last_relay protocol
          (Wx_util.Rng.create seed))
      seeds
  in
  let measured =
    if times = [] then nan
    else Wx_util.Stats.mean (Wx_util.Stats.of_ints (Array.of_list times))
  in
  let predicted = Broadcast_chain.paper_round_lb chain in
  let instance =
    Printf.sprintf "chain(D/2=%d,s=%d) %s" chain.Broadcast_chain.copies chain.Broadcast_chain.s
      protocol.Wx_radio.Protocol.name
  in
  { claim = "§5 LB"; instance; predicted; measured; holds = ge measured predicted }

let run_all ?(quick = false) rng =
  let take k l = List.filteri (fun i _ -> i < k) l in
  let maybe k l = if quick then take k l else l in
  let small =
    List.filter
      (fun (_, g) -> Wx_graph.Traversal.is_connected g)
      (maybe 4 (Instances.small_graphs ()))
  in
  let acc = ref [] in
  let push c = acc := c :: !acc in
  let pushes cs = List.iter push cs in
  (* Sections 2–3. *)
  List.iter (fun (name, g) -> pushes (obs_2_1 name g)) small;
  List.iter (fun (name, g) -> push (lemma_3_2 name g)) small;
  List.iter (fun (name, g) -> push (lemma_4_1 name g)) small;
  List.iter
    (fun (name, g) ->
      if Wx_graph.Traversal.is_connected g then push (lemma_3_1 name g rng))
    (maybe 3 (Instances.regular_graphs ()));
  List.iter
    (fun gb ->
      pushes (lemma_3_3 gb);
      push (gbad_wireless gb))
    (maybe 4 (Instances.gbad_grid ()));
  (* Section 4. *)
  List.iter
    (fun (name, t) ->
      if not (Bipartite.has_isolated t) then push (theorem_1_1_bip name t rng))
    (maybe 4 (Instances.bipartite_instances ()));
  List.iter
    (fun s -> pushes (lemma_4_4 (Core_graph.create s)))
    (maybe 3 Instances.core_sizes);
  List.iter
    (fun (delta_star, beta_star) ->
      pushes (lemma_4_6 (Gen_core.create ~delta_star ~beta_star)))
    (maybe 2 [ (64, 8.0); (64, 2.0); (64, 0.5); (128, 16.0); (32, 1.0) ]);
  let host = Wx_graph.Gen.random_regular rng 64 20 in
  (match Worst_case.create rng ~eps:0.4 ~host ~host_beta:0.5 with
  | wc ->
      push (claim_4_9 wc rng ~samples:(if quick then 100 else 300));
      push (claim_4_10 wc)
  | exception Invalid_argument _ -> ());
  (* Section 5. *)
  List.iter
    (fun s -> pushes (corollary_5_1 (Core_graph.create s)))
    (maybe 1 [ 8; 32 ]);
  let ch = Broadcast_chain.create rng ~copies:3 ~s:8 in
  push
    (section_5_lower_bound ch Wx_radio.Decay_protocol.protocol
       ~seeds:(if quick then [ 1 ] else [ 1; 2; 3 ]));
  List.rev !acc
