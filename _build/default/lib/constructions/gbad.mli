(** Lemma 3.3's bad expander [Gbad = (S, N, E)]: high ordinary expansion,
    unique-neighbor expansion exactly [2β − ∆].

    Each [v_i ∈ S] has ∆ neighbors arranged on an implicit cycle so that
    consecutive vertices share exactly [∆ − β] neighbors. The [2β − ∆]
    vertices in the middle of each window are uniquely covered; the shared
    flanks are double-covered. The remark after the lemma computes the
    wireless expansion of the same graph: it is at least
    [max{2β − ∆, ∆/2}] (choose every second vertex). *)

type t

val create : s:int -> delta:int -> beta:int -> t
(** Requires [∆/2 ≤ β ≤ ∆], [s·β ≥ 2∆] (so the cyclic windows never
    triple-overlap), and [s ≥ 3]. *)

val bip : t -> Wx_graph.Bipartite.t
val s : t -> int
val delta : t -> int
val beta : t -> int

val predicted_beta_u : t -> int
(** [2β − ∆]. *)

val predicted_wireless_lb : t -> float
(** [max{2β − ∆, ∆/2}] from the remark. *)

val every_second : t -> Wx_util.Bitset.t
(** The subset [{v_0, v_2, v_4, ...}] used in the remark's [g(l)]
    calculation (for even [s] this uniquely covers [s·∆/2] vertices). *)

val remark_f : t -> int -> float
(** [f(l) = ((2 − l)∆ + 2(l − 1)β)/l]: expansion of a run of [l]
    consecutive vertices when all transmit. *)

val remark_g : t -> int -> float
(** [g(l)]: expansion of a run of [l] consecutive vertices when every
    second one transmits — [∆/2] for even [l], [(l+1)∆/(2l)] for odd. *)
