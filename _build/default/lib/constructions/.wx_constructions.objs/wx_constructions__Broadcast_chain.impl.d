lib/constructions/broadcast_chain.ml: Array Core_graph Wx_graph Wx_util
