lib/constructions/worst_case.mli: Gen_core Wx_graph Wx_util
