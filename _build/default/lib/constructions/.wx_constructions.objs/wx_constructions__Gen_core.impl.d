lib/constructions/gen_core.ml: Core_graph Float Wx_graph Wx_util
