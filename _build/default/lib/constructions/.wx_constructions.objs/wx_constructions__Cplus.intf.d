lib/constructions/cplus.mli: Wx_graph Wx_util
