lib/constructions/worst_case.ml: Array Float Gen_core Wx_graph Wx_util
