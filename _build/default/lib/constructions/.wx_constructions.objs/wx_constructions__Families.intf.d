lib/constructions/families.mli: Wx_graph Wx_util
