lib/constructions/core_graph.mli: Wx_graph Wx_util
