lib/constructions/families.ml: Float List Wx_graph Wx_util
