lib/constructions/gbad_plug.mli: Gbad Wx_graph Wx_util
