lib/constructions/gbad_plug.ml: Array Gbad Wx_expansion Wx_graph Wx_util
