lib/constructions/gen_core.mli: Core_graph Wx_graph
