lib/constructions/core_graph.ml: Array List Wx_graph Wx_util
