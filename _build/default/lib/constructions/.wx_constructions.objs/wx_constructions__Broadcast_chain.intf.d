lib/constructions/broadcast_chain.mli: Wx_graph Wx_util
