lib/constructions/cplus.ml: Wx_graph Wx_util
