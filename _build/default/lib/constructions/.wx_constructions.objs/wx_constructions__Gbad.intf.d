lib/constructions/gbad.mli: Wx_graph Wx_util
