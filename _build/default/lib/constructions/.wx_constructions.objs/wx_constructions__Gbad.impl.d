lib/constructions/gbad.ml: Float Wx_graph Wx_util
