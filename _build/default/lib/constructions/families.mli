(** Named graph families used across experiments.

    Each family couples a generator with descriptive metadata, so every
    experiment that sweeps "all families" agrees on the catalog. Low-
    arboricity families (grid, torus, tree, cycle) are the E12 subjects;
    random-regular, hypercube and Margulis graphs are the expander hosts. *)

type family = {
  name : string;
  low_arboricity : bool;  (** expected Θ(1) arboricity *)
  make : Wx_util.Rng.t -> int -> Wx_graph.Graph.t;
      (** [make rng size_hint]: builds an instance with ≈ size_hint
          vertices (exact size depends on the family's shape constraints). *)
}

val all : family list
(** cycle, path, grid, torus, binary-tree, hypercube, complete-bipartite,
    random-3-regular, random-4-regular, random-6-regular, margulis, gnp. *)

val low_arboricity : family list
val expanders : family list
(** The non-low-arboricity sublist. *)

val find : string -> family
(** Raises [Not_found]. *)

val isqrt : int -> int
(** Integer square root helper (shared by grid-shaped families). *)
