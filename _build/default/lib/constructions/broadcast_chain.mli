(** The Section-5 lower-bound instance: D/2 chained core graphs.

    Copy [i] of the core graph contributes sides [Sⁱ] and [Nⁱ]; the root
    [rt₀] is adjacent to all of [S¹], and a uniformly sampled relay
    [rtᵢ ∈ Nⁱ] is adjacent to all of [Sⁱ⁺¹]. Any broadcast must traverse
    the relays in order (Observation 5.2), and by Corollary 5.1 each hop
    costs Ω(log 2s) rounds in expectation — hence Ω(D·log(n/D)) overall. *)

type t = {
  graph : Wx_graph.Graph.t;
  root : int;  (** rt₀ *)
  relays : int array;  (** rt₁ … rt_{D/2}, as graph vertices *)
  copies : int;  (** D/2 *)
  s : int;  (** core parameter *)
  s_vertices : int array array;  (** per copy, the Sⁱ vertices *)
  n_vertices : int array array;  (** per copy, the Nⁱ vertices *)
}

val create : Wx_util.Rng.t -> copies:int -> s:int -> t
(** [s] must be a power of two; [copies ≥ 1]. The relay of the last copy is
    still sampled (it is the broadcast target). *)

val diameter_estimate : t -> int
(** The designed diameter: each copy adds 2 hops (root→S is one, S→relay
    another), so ≈ 2·copies + 1. The true diameter is computable with
    {!Wx_graph.Traversal.diameter}; tests compare the two. *)

val total_vertices : t -> int

val paper_round_lb : t -> float
(** The per-instance form of the Ω(D log(n/D)) bound with explicit
    constants from Corollary 5.1: [copies · log₂(2s)/4]. *)

val create_random : Wx_util.Rng.t -> copies:int -> s:int -> t
(** Control instance for the "deterministic counterpart of Alon et al."
    comparison: identical layout (same side sizes, same S-degrees
    [2s − 1]) but each copy is a {e random} bipartite layer instead of the
    explicit core graph. E11's ablation compares broadcast hardness of
    the explicit vs the random construction. *)
