module Gen = Wx_graph.Gen
module Floatx = Wx_util.Floatx

type family = {
  name : string;
  low_arboricity : bool;
  make : Wx_util.Rng.t -> int -> Wx_graph.Graph.t;
}

let isqrt n =
  let r = int_of_float (Float.sqrt (float_of_int n)) in
  let r = if (r + 1) * (r + 1) <= n then r + 1 else r in
  max 1 r

let even_at_least k n = max k (if n mod 2 = 0 then n else n + 1)

let all =
  [
    { name = "cycle"; low_arboricity = true; make = (fun _ n -> Gen.cycle (max 3 n)) };
    { name = "path"; low_arboricity = true; make = (fun _ n -> Gen.path (max 2 n)) };
    {
      name = "grid";
      low_arboricity = true;
      make =
        (fun _ n ->
          let w = isqrt n in
          Gen.grid (max 2 w) (max 2 (n / max 1 w)));
    };
    {
      name = "torus";
      low_arboricity = true;
      make =
        (fun _ n ->
          let w = max 3 (isqrt n) in
          Gen.torus w (max 3 (n / w)));
    };
    {
      name = "binary-tree";
      low_arboricity = true;
      make = (fun _ n -> Gen.binary_tree (max 1 (Floatx.log2i_floor (max 2 (n / 2)))));
    };
    {
      name = "hypercube";
      low_arboricity = false;
      make = (fun _ n -> Gen.hypercube (max 2 (Floatx.log2i_floor (max 4 n))));
    };
    {
      name = "complete-bipartite";
      low_arboricity = false;
      make = (fun _ n -> Gen.complete_bipartite (max 2 (n / 2)) (max 2 (n / 2)));
    };
    {
      name = "random-3-regular";
      low_arboricity = false;
      make = (fun rng n -> Gen.random_regular rng (even_at_least 4 n) 3);
    };
    {
      name = "random-4-regular";
      low_arboricity = false;
      make = (fun rng n -> Gen.random_regular rng (max 5 n) 4);
    };
    {
      name = "random-6-regular";
      low_arboricity = false;
      make = (fun rng n -> Gen.random_regular rng (max 7 n) 6);
    };
    {
      name = "margulis";
      low_arboricity = false;
      make = (fun _ n -> Gen.margulis (max 2 (isqrt n)));
    };
    {
      (* Low arboricity (≤ m+1 by construction) with a heavy-tailed degree
         distribution — the regime where the paper's average-degree bounds
         beat max-degree bounds most visibly. *)
      name = "barabasi-albert";
      low_arboricity = true;
      make = (fun rng n -> Gen.barabasi_albert rng (max 4 n) 2);
    };
    {
      name = "gnp";
      low_arboricity = false;
      make =
        (fun rng n ->
          let n = max 8 n in
          (* Expected degree ~ 6: comfortably connected at our sizes. *)
          Gen.gnp rng n (6.0 /. float_of_int n));
    };
  ]

let low_arboricity = List.filter (fun f -> f.low_arboricity) all
let expanders = List.filter (fun f -> not f.low_arboricity) all

let find name =
  match List.find_opt (fun f -> f.name = name) all with
  | Some f -> f
  | None -> raise Not_found
