module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
module Rng = Wx_util.Rng
module Nbhd = Wx_expansion.Nbhd

type t = {
  graph : Graph.t;
  host_n : int;
  s_star : Bitset.t;
  n_star : int array;
  gbad : Gbad.t;
}

let create rng ~host ~gbad =
  let inst = Gbad.bip gbad in
  let s_cnt = Bipartite.s_count inst and n_cnt = Bipartite.n_count inst in
  if n_cnt > Graph.n host then invalid_arg "Gbad_plug.create: host too small";
  let n_star = Rng.sample_without_replacement rng (Graph.n host) n_cnt in
  let base = Graph.n host in
  let es = ref [] in
  Bipartite.iter_edges inst (fun u w -> es := (base + u, n_star.(w)) :: !es);
  let graph = Graph.add_vertices_and_edges host s_cnt !es in
  let s_star = Bitset.create (Graph.n graph) in
  for i = 0 to s_cnt - 1 do
    Bitset.add_inplace s_star (base + i)
  done;
  { graph; host_n = base; s_star; n_star; gbad }

let unique_expansion_of_s_star t =
  let u = Nbhd.gamma1 t.graph t.s_star in
  float_of_int (Bitset.cardinal u) /. float_of_int (Bitset.cardinal t.s_star)
