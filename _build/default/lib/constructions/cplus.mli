(** The motivating example C⁺ (Section 1.1): a complete graph [C] on [c]
    vertices plus a source [s0] adjacent to two of them.

    C⁺ is a good ordinary expander but a terrible unique expander: after
    the first broadcast round, if all three informed vertices transmit,
    every vertex of C hears a collision. Its wireless expansion is fine —
    the singleton {s0} or {x} uniquely covers plenty — which is the whole
    point of the relaxed definition. *)

val create : int -> Wx_graph.Graph.t
(** [create c] with [c ≥ 3]: vertices [0..c-1] form the clique; the source
    is vertex [c], adjacent to vertices 0 and 1. *)

val source : Wx_graph.Graph.t -> int
(** Index of s0 (always [n − 1]). *)

val bad_set : Wx_graph.Graph.t -> Wx_util.Bitset.t
(** The set {x, y, s0} from the paper's discussion — the witness that
    unique-neighbor expansion is poor. *)
