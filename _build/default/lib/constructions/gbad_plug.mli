(** Remark (2) after Lemma 3.3: plugging the bad bipartite graph on top of
    an ordinary expander caps the composed graph's unique-neighbor
    expansion at [2β − ∆] — witnessed by the planted S-side — even when the
    host's own unique expansion is good — while only growing the maximum
    degree additively. *)

type t = {
  graph : Wx_graph.Graph.t;
  host_n : int;
  s_star : Wx_util.Bitset.t;  (** the planted Gbad S-side (new vertices) *)
  n_star : int array;  (** host vertices playing Gbad's N side *)
  gbad : Gbad.t;
}

val create : Wx_util.Rng.t -> host:Wx_graph.Graph.t -> gbad:Gbad.t -> t
(** Requires the host to have at least [s·β] vertices. S* is appended
    after the host's vertices; N* is sampled without replacement. *)

val unique_expansion_of_s_star : t -> float
(** The ratio |Γ¹ of S-star| over |S-star| in the composed graph — the Remark predicts exactly
    [2β − ∆] (S* has no other edges, and N* vertices are distinct). *)
