module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset
module Rng = Wx_util.Rng
module Floatx = Wx_util.Floatx

type t = {
  graph : Graph.t;
  host_n : int;
  s_star : Bitset.t;
  n_star : int array;
  core : Gen_core.t;
  eps : float;
  host_beta : float;
  host_delta : int;
}

let create_gen rng ~eps ~host ~host_beta ~pick_n_star ~dummies =
  if not (eps > 0.0 && eps < 0.5) then invalid_arg "Worst_case.create: need 0 < ε < 1/2";
  let host_delta = Graph.max_degree host in
  let fd = float_of_int host_delta in
  if fd *. host_beta < 1.0 /. (1.0 -. (2.0 *. eps)) then
    invalid_arg "Worst_case.create: need ∆·β >= 1/(1−2ε)";
  let delta_star = max 1 (int_of_float (Float.floor (eps *. fd))) in
  let beta_star = host_beta /. eps in
  let core = Gen_core.create ~delta_star ~beta_star in
  let bip = core.Gen_core.bip in
  let s_star_count = Bipartite.s_count bip in
  let n_star_count = Bipartite.n_count bip in
  let n_star = pick_n_star rng n_star_count in
  (* New vertices s_star are appended after the host's, then any dummies. *)
  let base = Graph.n host in
  let es = ref [] in
  Bipartite.iter_edges bip (fun u w -> es := (base + u, n_star.(w)) :: !es);
  let graph = Graph.add_vertices_and_edges host (s_star_count + dummies) !es in
  let s_star = Bitset.create (Graph.n graph) in
  for i = 0 to s_star_count - 1 do
    Bitset.add_inplace s_star (base + i)
  done;
  { graph; host_n = base; s_star; n_star; core; eps; host_beta; host_delta }

let create rng ~eps ~host ~host_beta =
  let pick_n_star rng k =
    if k > Graph.n host then invalid_arg "Worst_case.create: host too small to absorb N*";
    Rng.sample_without_replacement rng (Graph.n host) k
  in
  create_gen rng ~eps ~host ~host_beta ~pick_n_star ~dummies:0

let create_bipartite rng ~eps ~host ~host_beta =
  match Wx_graph.Traversal.bipartition host with
  | None -> invalid_arg "Worst_case.create_bipartite: host is not bipartite"
  | Some (left, right) ->
      (* Expand from L̃ = L ∪ S* into R̃ = R ∪ dummies: N* is drawn from the
         right side only, and |S*| isolated dummies keep the sides equal in
         size (the remark's balancing trick). *)
      let right_arr = Bitset.to_array right in
      let pick_n_star rng k =
        if k > Array.length right_arr then
          invalid_arg "Worst_case.create_bipartite: right side too small for N*";
        Array.map
          (fun i -> right_arr.(i))
          (Rng.sample_without_replacement rng (Array.length right_arr) k)
      in
      (* Dummy count = |S*|; compute it by building the core first (cheap
         double construction avoided by reading the size from a probe). *)
      let host_delta = Graph.max_degree host in
      let probe =
        Gen_core.create
          ~delta_star:(max 1 (int_of_float (Float.floor (eps *. float_of_int host_delta))))
          ~beta_star:(host_beta /. eps)
      in
      let dummies = Bipartite.s_count probe.Gen_core.bip in
      let t = create_gen rng ~eps ~host ~host_beta ~pick_n_star ~dummies in
      let n = Graph.n t.graph in
      let new_left = Bitset.create n and new_right = Bitset.create n in
      Bitset.iter (Bitset.add_inplace new_left) left;
      Bitset.iter (Bitset.add_inplace new_right) right;
      Bitset.iter (Bitset.add_inplace new_left) t.s_star;
      (* Dummies occupy the tail indices after S*. *)
      for v = t.host_n + Bitset.cardinal t.s_star to n - 1 do
        Bitset.add_inplace new_right v
      done;
      (t, new_left, new_right)

let predicted_beta_tilde t = (1.0 -. t.eps) *. t.host_beta

let predicted_delta_tilde t =
  int_of_float (Float.ceil ((1.0 +. t.eps) *. float_of_int t.host_delta))

let predicted_wireless_cap t =
  let beta_t = predicted_beta_tilde t in
  let delta_t = float_of_int (predicted_delta_tilde t) in
  let denom_arg = Float.min (delta_t /. beta_t) (delta_t *. beta_t) in
  let log_term = Float.max 1.0 (Floatx.log2 denom_arg) in
  24.0 *. beta_t /. (t.eps ** 3.0 *. log_term)

let s_star_wireless_exact t =
  let m = Gen_core.max_unique_exact t.core in
  float_of_int m /. float_of_int (Bitset.cardinal t.s_star)
