module Bipartite = Wx_graph.Bipartite
module Bitset = Wx_util.Bitset

type t = { s : int; delta : int; beta : int; bip : Bipartite.t }

let create ~s ~delta ~beta =
  if not (2 * beta >= delta && beta <= delta) then
    invalid_arg "Gbad.create: need ∆/2 <= β <= ∆";
  if s < 3 then invalid_arg "Gbad.create: need s >= 3";
  if s * beta < 2 * delta then invalid_arg "Gbad.create: need s·β >= 2∆";
  let n = s * beta in
  (* v_i covers the cyclic window [i·β, i·β + ∆); consecutive windows
     overlap in ∆ − β positions. *)
  let es = ref [] in
  for i = 0 to s - 1 do
    for r = 0 to delta - 1 do
      es := (i, ((i * beta) + r) mod n) :: !es
    done
  done;
  { s; delta; beta; bip = Bipartite.of_edges ~s ~n !es }

let bip t = t.bip
let s t = t.s
let delta t = t.delta
let beta t = t.beta
let predicted_beta_u t = (2 * t.beta) - t.delta

let predicted_wireless_lb t =
  Float.max (float_of_int (predicted_beta_u t)) (float_of_int t.delta /. 2.0)

let every_second t =
  let out = Bitset.create t.s in
  let i = ref 0 in
  while !i < t.s do
    Bitset.add_inplace out !i;
    i := !i + 2
  done;
  out

let remark_f t l =
  if l < 1 then invalid_arg "Gbad.remark_f";
  let fd = float_of_int t.delta and fb = float_of_int t.beta and fl = float_of_int l in
  (((2.0 -. fl) *. fd) +. (2.0 *. (fl -. 1.0) *. fb)) /. fl

let remark_g t l =
  if l < 1 then invalid_arg "Gbad.remark_g";
  let fd = float_of_int t.delta and fl = float_of_int l in
  if l mod 2 = 0 then fd /. 2.0 else (fl +. 1.0) *. fd /. (2.0 *. fl)
