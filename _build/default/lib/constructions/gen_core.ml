module Bipartite = Wx_graph.Bipartite
module Floatx = Wx_util.Floatx

type regime = Blow_up_n | Blow_up_s

type t = {
  bip : Bipartite.t;
  core : Core_graph.t;
  regime : regime;
  k : int;
  target_delta : int;
  target_beta : float;
  achieved_delta : int;
  achieved_beta : float;
}

let blow_up_n core k =
  if k < 1 then invalid_arg "Gen_core.blow_up_n: k must be >= 1";
  let b = Core_graph.bip core in
  let s = Bipartite.s_count b and n = Bipartite.n_count b in
  let es = ref [] in
  Bipartite.iter_edges b (fun u w ->
      for c = 0 to k - 1 do
        es := (u, (w * k) + c) :: !es
      done);
  Bipartite.of_edges ~s ~n:(n * k) !es

let blow_up_s core k =
  if k < 1 then invalid_arg "Gen_core.blow_up_s: k must be >= 1";
  let b = Core_graph.bip core in
  let s = Bipartite.s_count b and n = Bipartite.n_count b in
  let es = ref [] in
  Bipartite.iter_edges b (fun u w ->
      for c = 0 to k - 1 do
        es := ((u * k) + c, w) :: !es
      done);
  Bipartite.of_edges ~s:(s * k) ~n !es

let e = Float.exp 1.0

let create ~delta_star ~beta_star =
  let fd = float_of_int delta_star in
  if beta_star < 2.0 *. e /. fd -. 1e-9 || beta_star > fd /. (2.0 *. e) +. 1e-9 then
    invalid_arg "Gen_core.create: need 2e/∆* <= β* <= ∆*/(2e)";
  (* Regime choice: write ∆* = 2s·(β*/log 2s); find the largest power of
     two s with 2s·β*/log₂(2s) <= ∆*. If β* > log₂(2s) we are in the
     Lemma 4.7 regime, otherwise Lemma 4.8. *)
  let fits_a s =
    2.0 *. float_of_int s *. beta_star /. Floatx.log2 (2.0 *. float_of_int s) <= fd +. 1e-9
  in
  let rec grow s = if s * 2 <= 4096 && fits_a (s * 2) then grow (s * 2) else s in
  let s_a = if fits_a 1 then grow 1 else 1 in
  let log2s_a = Floatx.log2 (2.0 *. float_of_int s_a) in
  if beta_star > log2s_a then begin
    (* Lemma 4.7: N-side blow-up with k = β*/log 2s. *)
    let k = max 1 (int_of_float (Float.round (beta_star /. log2s_a))) in
    let core = Core_graph.create s_a in
    let bip = blow_up_n core k in
    {
      bip;
      core;
      regime = Blow_up_n;
      k;
      target_delta = delta_star;
      target_beta = beta_star;
      achieved_delta = max (Bipartite.max_deg_s bip) (Bipartite.max_deg_n bip);
      achieved_beta = Bipartite.beta bip;
    }
  end
  else begin
    (* Lemma 4.8: ∆* = 2s'·log(2s')/β_star; find the largest power-of-two s'
       that fits, then blow up the S side by k = log 2s'/β*. *)
    let fits_b s =
      2.0 *. float_of_int s *. Floatx.log2 (2.0 *. float_of_int s) /. beta_star <= fd +. 1e-9
    in
    let rec grow_b s = if s * 2 <= 4096 && fits_b (s * 2) then grow_b (s * 2) else s in
    if not (fits_b 1) then invalid_arg "Gen_core.create: ∆* too small for any core size";
    let s_b = grow_b 1 in
    let log2s_b = Floatx.log2 (2.0 *. float_of_int s_b) in
    let k = max 1 (int_of_float (Float.round (log2s_b /. beta_star))) in
    let core = Core_graph.create s_b in
    let bip = blow_up_s core k in
    {
      bip;
      core;
      regime = Blow_up_s;
      k;
      target_delta = delta_star;
      target_beta = beta_star;
      achieved_delta = max (Bipartite.max_deg_s bip) (Bipartite.max_deg_n bip);
      achieved_beta = Bipartite.beta bip;
    }
  end

let wireless_cap_fraction t =
  2.0 /. Floatx.log2 (2.0 *. float_of_int (Core_graph.s t.core))

let max_unique_exact t =
  let base = Core_graph.dp_max_unique t.core in
  match t.regime with
  | Blow_up_n -> base * t.k (* every block mass is multiplied by k *)
  | Blow_up_s -> base (* duplicate S-columns add nothing: identical neighborhoods *)
