module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Rng = Wx_util.Rng
module Floatx = Wx_util.Floatx

type t = {
  graph : Graph.t;
  root : int;
  relays : int array;
  copies : int;
  s : int;
  s_vertices : int array array;
  n_vertices : int array array;
}

let create_gen rng ~copies ~s bip =
  if copies < 1 then invalid_arg "Broadcast_chain.create: copies must be >= 1";
  let s_cnt = Bipartite.s_count bip and n_cnt = Bipartite.n_count bip in
  let per_copy = s_cnt + n_cnt in
  let total = 1 + (copies * per_copy) in
  let root = 0 in
  let s_base i = 1 + (i * per_copy) in
  let n_base i = s_base i + s_cnt in
  let es = ref [] in
  (* Root to all of S¹. *)
  for u = 0 to s_cnt - 1 do
    es := (root, s_base 0 + u) :: !es
  done;
  (* Core edges per copy. *)
  for i = 0 to copies - 1 do
    Bipartite.iter_edges bip (fun u w -> es := (s_base i + u, n_base i + w) :: !es)
  done;
  (* Relays: rtᵢ sampled from Nⁱ; connected to all of Sⁱ⁺¹. *)
  let relays =
    Array.init copies (fun i -> n_base i + Rng.int rng n_cnt)
  in
  for i = 0 to copies - 2 do
    for u = 0 to s_cnt - 1 do
      es := (relays.(i), s_base (i + 1) + u) :: !es
    done
  done;
  let graph = Graph.of_edges total !es in
  {
    graph;
    root;
    relays;
    copies;
    s;
    s_vertices = Array.init copies (fun i -> Array.init s_cnt (fun u -> s_base i + u));
    n_vertices = Array.init copies (fun i -> Array.init n_cnt (fun w -> n_base i + w));
  }

let create rng ~copies ~s =
  let core = Core_graph.create s in
  create_gen rng ~copies ~s (Core_graph.bip core)

let create_random rng ~copies ~s =
  (* Same shape as the core graph — |N| = s·log 2s, S-degree 2s − 1 — but
     neighbors drawn uniformly at random. *)
  let core = Core_graph.create s in
  let template = Core_graph.bip core in
  let n_cnt = Bipartite.n_count template in
  let deg = (2 * s) - 1 in
  let es = ref [] in
  let covered = Array.make n_cnt false in
  for u = 0 to s - 1 do
    Array.iter
      (fun w ->
        covered.(w) <- true;
        es := (u, w) :: !es)
      (Rng.sample_without_replacement rng n_cnt (min deg n_cnt))
  done;
  (* Keep the layer isolated-free (the core graph has min degree 1): give
     each uncovered N-vertex one random S-neighbor. *)
  for w = 0 to n_cnt - 1 do
    if not covered.(w) then es := (Rng.int rng s, w) :: !es
  done;
  create_gen rng ~copies ~s (Bipartite.of_edges ~s ~n:n_cnt !es)

let diameter_estimate t = (2 * t.copies) + 1
let total_vertices t = Graph.n t.graph

let paper_round_lb t =
  float_of_int t.copies *. Floatx.log2 (2.0 *. float_of_int t.s) /. 4.0
