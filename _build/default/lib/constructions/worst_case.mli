(** Worst-case expanders (Section 4.3.3, Corollary 4.11).

    Plug a generalized core graph [G*_S] with parameters [∆* = ε∆],
    [β* = β/ε] on top of a host (α, β)-expander [G]: the vertices of [S*]
    are new, those of [N*] are (randomly chosen) host vertices. The result
    [G̃] keeps expansion [β̃ = (1−ε)β] but its wireless expansion collapses
    to [O(β̃ / (ε³·log min{∆̃/β̃, ∆̃·β̃}))] — witnessed by any subset of
    [S*]. *)

type t = {
  graph : Wx_graph.Graph.t;  (** the composed graph G̃ *)
  host_n : int;  (** number of host vertices (G̃ adds |S*| more) *)
  s_star : Wx_util.Bitset.t;  (** the new vertices, as a set of G̃ *)
  n_star : int array;  (** host vertices playing N*, by core N-index *)
  core : Gen_core.t;
  eps : float;
  host_beta : float;
  host_delta : int;
}

val create :
  Wx_util.Rng.t -> eps:float -> host:Wx_graph.Graph.t -> host_beta:float -> t
(** Requires [0 < ε < 1/2], [∆·β ≥ 1/(1−2ε)] and a host large enough to
    absorb [N*]. [host_beta] is the host's (measured or known) expansion;
    the host's max degree is read off the graph. *)

val predicted_beta_tilde : t -> float
(** Claim 4.9: [β̃ = (1 − ε)·β]. *)

val predicted_delta_tilde : t -> int
(** [∆̃ = (1 + ε)·∆] (upper bound on the composed max degree). *)

val predicted_wireless_cap : t -> float
(** Claim 4.10's numerator with constant 24:
    [24·β̃·|S*| / (ε³·log₂ min{∆̃/β̃, ∆̃·β̃})] — an upper bound on
    [|Γ¹_{S*}(S′)|] for subsets of S*, divided through by |S*| it bounds
    the wireless expansion witnessed at S*. *)

val s_star_wireless_exact : t -> float
(** Exact wireless expansion of the set [S*] in G̃ (max over S′ ⊆ S* of
    [|Γ¹_{S*}(S′)|] / |S*|) via the core graph's tree DP — valid because
    every edge at S* lives in the plugged core graph. *)

val create_bipartite :
  Wx_util.Rng.t ->
  eps:float ->
  host:Wx_graph.Graph.t ->
  host_beta:float ->
  t * Wx_util.Bitset.t * Wx_util.Bitset.t
(** The remark's bipartite variant: requires a bipartite host expanding
    from its left side; [S*] joins the left side, [N*] is drawn from the
    right side, and [|S*|] isolated dummy vertices keep the sides equal in
    size. Returns the construction together with the new bipartition
    [(L̃, R̃)]; the composed graph is again bipartite. *)
