(** Generalized core graphs with arbitrary expansion (Lemmas 4.6–4.8).

    Lemma 4.7 ([β > log 2s]): blow up the N side of the core graph by
    [k = β/log 2s] copies per vertex; expansion rises to β while the
    wireless cap stays a [2/log 2s] fraction of |N̂|.

    Lemma 4.8 ([β ≤ log 2s]): blow up the S side by [k = log 2s/β]
    copies per vertex; expansion drops to β while the wireless cap stays
    [2s] in absolute terms.

    Lemma 4.6 dispatches between them to realize any target pair
    [∆*, β*] with [2e/∆* ≤ β* ≤ ∆*/(2e)]. Because our core graph uses
    power-of-two [s] and integer blow-up factors, the achieved parameters
    are near, not equal to, the targets; the record reports both. *)

type regime = Blow_up_n  (** Lemma 4.7 *) | Blow_up_s  (** Lemma 4.8 *)

type t = {
  bip : Wx_graph.Bipartite.t;
  core : Core_graph.t;  (** the underlying core graph *)
  regime : regime;
  k : int;  (** blow-up factor *)
  target_delta : int;
  target_beta : float;
  achieved_delta : int;  (** actual max degree of the built graph *)
  achieved_beta : float;  (** actual |N|/|S| *)
}

val blow_up_n : Core_graph.t -> int -> Wx_graph.Bipartite.t
(** [k] copies of every N vertex (Lemma 4.7's Ĝ_S). *)

val blow_up_s : Core_graph.t -> int -> Wx_graph.Bipartite.t
(** [k] copies of every S vertex (Lemma 4.8's Ǧ_S). *)

val create : delta_star:int -> beta_star:float -> t
(** Lemma 4.6's dispatcher. Raises [Invalid_argument] when the target pair
    violates [2e/∆* ≤ β* ≤ ∆*/(2e)] or is too extreme to realize with
    [s ≤ 4096]. *)

val wireless_cap_fraction : t -> float
(** The paper's upper bound on [|Γ¹_S(S′)|/|N|] for the built graph:
    [2/log₂(2s)] with the blown-up [s] of the relevant lemma. *)

val max_unique_exact : t -> int
(** Exact [max_{S′} |Γ¹_S(S′)|] of the generalized graph, via the core
    graph's tree DP: N-side blow-up scales block masses by k; S-side
    blow-up leaves the cap unchanged (duplicate S-columns are never both
    useful — verified in tests). *)
