(** Lemma 4.4's core graph — the paper's technical highlight.

    For [s] a power of two, build a perfect binary tree [T_S] with [s]
    leaves. Each tree node [v] at depth [i] owns a block [N_v] of [s/2^i]
    fresh N-vertices; leaf [z] (an S-vertex) is adjacent to every vertex of
    every block on its root path. The resulting bipartite graph
    [G_S = (S, N, E_S)] satisfies (Lemma 4.4):

    + [|S| = s], [|N| = s·log₂(2s)];
    + every S-degree is [2s − 1];
    + [∆_N = s] and [δ_N ≤ 2s/log₂(2s)];
    + ordinary expansion ≥ [log₂(2s)]: [|Γ(S′)| ≥ log₂(2s)·|S′|] ∀ S′;
    + wireless cap: [|Γ¹_S(S′)| ≤ 2s] ∀ S′.

    Because coverage decomposes over tree blocks, both extremal quantities
    are computable {e exactly} in polynomial time by tree DP — so the
    lemma's properties (4) and (5) are verified exactly even for [s] in the
    hundreds, where subset enumeration is hopeless:

    - {!dp_max_unique} maximizes [|Γ¹_S(S′)|] over all [2^s] subsets;
    - {!dp_min_coverage} minimizes [|Γ(S′)|] for each [|S′| = k]. *)

type t

val create : int -> t
(** [create s]; [s] must be a power of two, [1 ≤ s ≤ 4096]. *)

val s : t -> int
val n_size : t -> int
(** [s·log₂(2s)]. *)

val bip : t -> Wx_graph.Bipartite.t

val levels : t -> int
(** [log₂ s] — depth of the leaf level. *)

val node_count : t -> int
(** [2s − 1] tree nodes, heap-indexed [1..2s−1] (root 1). *)

val block_offset : t -> int -> int
(** N-index where node [v]'s block starts. *)

val block_size : t -> int -> int
(** [s / 2^depth(v)]. *)

val node_of_leaf : t -> int -> int
(** Tree node of S-vertex [j] (leaf [s + j]). *)

val ancestors : t -> int -> int list
(** Root path of an S-vertex's leaf node, leaf first. *)

val dp_max_unique : t -> int
(** Exact [max_{S′ ⊆ S} |Γ¹_S(S′)|], by count-class DP over the tree. *)

val dp_max_unique_witness : t -> Wx_util.Bitset.t
(** A maximizing subset (reconstructed from the DP). *)

val dp_min_coverage : t -> int array
(** Entry [k] is the exact minimum of [|Γ(S′)|] over [|S′| = k], for [k = 0..s]
    (knapsack-style tree DP). Lemma 4.4(4) asserts entry [k] ≥
    [log₂(2s)·k]. *)

val unique_coverage_of : t -> Wx_util.Bitset.t -> int
(** [|Γ¹_S(S′)|] for a concrete S-subset, via the tree decomposition
    (cross-checked in tests against the generic bitset computation). *)
