module Graph = Wx_graph.Graph
module Bitset = Wx_util.Bitset

let create c =
  if c < 3 then invalid_arg "Cplus.create: clique size must be >= 3";
  let es = ref [] in
  for u = 0 to c - 1 do
    for v = u + 1 to c - 1 do
      es := (u, v) :: !es
    done
  done;
  es := (c, 0) :: (c, 1) :: !es;
  Graph.of_edges (c + 1) !es

let source g = Graph.n g - 1

let bad_set g =
  let s0 = source g in
  Bitset.of_list (Graph.n g) [ 0; 1; s0 ]
