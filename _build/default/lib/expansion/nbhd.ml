module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

let gamma g s =
  let out = Bitset.create (Graph.n g) in
  Bitset.iter (fun v -> Graph.iter_neighbors g v (Bitset.add_inplace out)) s;
  out

let gamma_minus g s =
  let out = gamma g s in
  Bitset.diff_inplace out s;
  out

let deg_in g v s =
  Graph.fold_neighbors g v (fun acc w -> if Bitset.mem s w then acc + 1 else acc) 0

(* Count, per vertex outside [s], how many neighbors it has in [s']; collect
   those with exactly one. Shared by gamma1 and gamma1_excluding. *)
let unique_outside g ~outside_of ~from =
  let n = Graph.n g in
  let cnt = Array.make n 0 in
  Bitset.iter
    (fun v ->
      Graph.iter_neighbors g v (fun w ->
          if not (Bitset.mem outside_of w) then cnt.(w) <- cnt.(w) + 1))
    from;
  let out = Bitset.create n in
  for w = 0 to n - 1 do
    if cnt.(w) = 1 then Bitset.add_inplace out w
  done;
  out

let gamma1 g s = unique_outside g ~outside_of:s ~from:s

let gamma1_excluding g s s' =
  if not (Bitset.subset s' s) then invalid_arg "Nbhd.gamma1_excluding: S' must be a subset of S";
  unique_outside g ~outside_of:s ~from:s'

let expansion_of_set g s =
  let k = Bitset.cardinal s in
  if k = 0 then nan else float_of_int (Bitset.cardinal (gamma_minus g s)) /. float_of_int k

let unique_expansion_of_set g s =
  let k = Bitset.cardinal s in
  if k = 0 then nan else float_of_int (Bitset.cardinal (gamma1 g s)) /. float_of_int k

module Bip = struct
  module Bipartite = Wx_graph.Bipartite

  let covered t s' =
    let out = Bitset.create (Bipartite.n_count t) in
    Bitset.iter (fun u -> Array.iter (Bitset.add_inplace out) (Bipartite.neighbors_s t u)) s';
    out

  let counts t s' =
    let cnt = Array.make (Bipartite.n_count t) 0 in
    Bitset.iter
      (fun u -> Array.iter (fun w -> cnt.(w) <- cnt.(w) + 1) (Bipartite.neighbors_s t u))
      s';
    cnt

  let unique t s' =
    let cnt = counts t s' in
    let out = Bitset.create (Bipartite.n_count t) in
    Array.iteri (fun w c -> if c = 1 then Bitset.add_inplace out w) cnt;
    out

  let unique_count t s' =
    let cnt = counts t s' in
    Array.fold_left (fun acc c -> if c = 1 then acc + 1 else acc) 0 cnt

  let iter_gray_unique t elts f =
    let k = Array.length elts in
    if k > 30 then invalid_arg "Nbhd.Bip.iter_gray_unique: too many elements";
    let cnt = Array.make (Bipartite.n_count t) 0 in
    let uniq = ref 0 in
    let buf = Bitset.create (Bipartite.s_count t) in
    let flip u =
      (* Toggle S-vertex [u]; update per-N counts and the unique counter. *)
      if Bitset.mem buf u then begin
        Bitset.remove_inplace buf u;
        Array.iter
          (fun w ->
            if cnt.(w) = 1 then decr uniq else if cnt.(w) = 2 then incr uniq;
            cnt.(w) <- cnt.(w) - 1)
          (Bipartite.neighbors_s t u)
      end
      else begin
        Bitset.add_inplace buf u;
        Array.iter
          (fun w ->
            if cnt.(w) = 0 then incr uniq else if cnt.(w) = 1 then decr uniq;
            cnt.(w) <- cnt.(w) + 1)
          (Bipartite.neighbors_s t u)
      end
    in
    f buf !uniq;
    let total = 1 lsl k in
    for i = 1 to total - 1 do
      let gray_prev = (i - 1) lxor ((i - 1) lsr 1) in
      let gray = i lxor (i lsr 1) in
      let changed = gray lxor gray_prev in
      let bit =
        let rec go b = if changed lsr b land 1 = 1 then b else go (b + 1) in
        go 0
      in
      flip elts.(bit);
      f buf !uniq
    done
end
