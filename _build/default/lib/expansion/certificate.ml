module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type claim =
  | Beta_at_most of float
  | Beta_u_at_most of float
  | Beta_w_at_most of float
  | Wireless_set_at_least of float

type t = { claim : claim; alpha : float; s : Bitset.t; s' : Bitset.t option }

let size_ok g ~alpha s =
  let k = Bitset.cardinal s in
  k >= 1 && float_of_int k <= alpha *. float_of_int (Graph.n g)

let verify g t =
  Bitset.universe_size t.s = Graph.n g
  && size_ok g ~alpha:t.alpha t.s
  &&
  match (t.claim, t.s') with
  | Beta_at_most v, None -> Nbhd.expansion_of_set g t.s <= v +. 1e-9
  | Beta_u_at_most v, None -> Nbhd.unique_expansion_of_set g t.s <= v +. 1e-9
  | Beta_w_at_most v, None -> begin
      match Measure.wireless_of_set_exact g t.s with
      | w -> w.Measure.value <= v +. 1e-9
      | exception Measure.Too_large _ -> false
    end
  | Wireless_set_at_least v, Some s' ->
      Bitset.universe_size s' = Graph.n g
      && Bitset.subset s' t.s
      && float_of_int (Bitset.cardinal (Nbhd.gamma1_excluding g t.s s'))
         /. float_of_int (Bitset.cardinal t.s)
         >= v -. 1e-9
  | (Beta_at_most _ | Beta_u_at_most _ | Beta_w_at_most _), Some _ -> false
  | Wireless_set_at_least _, None -> false

let check_witness g ~alpha s name =
  if not (size_ok g ~alpha s) then
    invalid_arg (Printf.sprintf "Certificate.%s: witness violates the α-limit" name)

let beta_upper ?(alpha = 0.5) g s =
  check_witness g ~alpha s "beta_upper";
  { claim = Beta_at_most (Nbhd.expansion_of_set g s); alpha; s; s' = None }

let beta_u_upper ?(alpha = 0.5) g s =
  check_witness g ~alpha s "beta_u_upper";
  { claim = Beta_u_at_most (Nbhd.unique_expansion_of_set g s); alpha; s; s' = None }

let beta_w_upper ?(alpha = 0.5) g s =
  check_witness g ~alpha s "beta_w_upper";
  let w = Measure.wireless_of_set_exact g s in
  { claim = Beta_w_at_most w.Measure.value; alpha; s; s' = None }

let wireless_lower ?(alpha = 0.5) g s s' =
  check_witness g ~alpha s "wireless_lower";
  if not (Bitset.subset s' s) then invalid_arg "Certificate.wireless_lower: S' ⊄ S";
  let v =
    float_of_int (Bitset.cardinal (Nbhd.gamma1_excluding g s s'))
    /. float_of_int (Bitset.cardinal s)
  in
  { claim = Wireless_set_at_least v; alpha; s; s' = Some s' }

let pp fmt t =
  let name, v =
    match t.claim with
    | Beta_at_most v -> ("β ≤", v)
    | Beta_u_at_most v -> ("βu ≤", v)
    | Beta_w_at_most v -> ("βw ≤", v)
    | Wireless_set_at_least v -> ("wireless(S) ≥", v)
  in
  Format.fprintf fmt "%s %.4f (α=%.2f) via S=%s%s" name v t.alpha (Bitset.to_string t.s)
    (match t.s' with Some s' -> ", S'=" ^ Bitset.to_string s' | None -> "")
