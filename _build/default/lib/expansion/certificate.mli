(** First-class, machine-checkable expansion certificates.

    EXPERIMENTS.md's discipline — "claims about minima over exponentially
    many sets are exact or witness-backed" — made concrete: a certificate
    packages the claim, the witness set(s), and enough data for {!verify}
    to recheck it from scratch against the graph. The bench harness and
    the CLI can emit certificates; tests verify that verification really
    catches corrupted witnesses. *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type claim =
  | Beta_at_most of float
      (** witness S: [|Γ⁻(S)|/|S| ≤ v] ⇒ [β(G) ≤ v] (S within the α-limit
          is the caller's obligation, recorded in [alpha]) *)
  | Beta_u_at_most of float
  | Beta_w_at_most of float
      (** witness S: [max_{S′⊆S} |Γ¹_S(S′)|/|S| ≤ v] ⇒ [βw(G) ≤ v]; the
          verifier re-runs the exact inner maximization (so S must have
          ≤ 30 vertices) *)
  | Wireless_set_at_least of float
      (** witnesses (S, S′): [|Γ¹_S(S′)|/|S| ≥ v] — a lower bound on the
          wireless expansion of the specific set S *)

type t = {
  claim : claim;
  alpha : float;  (** the α the witness size was checked against *)
  s : Bitset.t;
  s' : Bitset.t option;  (** only for [Wireless_set_at_least] *)
}

val verify : Graph.t -> t -> bool
(** Recompute everything from the graph; false on any mismatch, including
    size-vs-α violations and [s'] ⊄ [s]. Never raises on well-formed
    bitsets of the right universe. *)

val beta_upper : ?alpha:float -> Graph.t -> Bitset.t -> t
(** Build (and self-verify) a certificate from a witness; raises
    [Invalid_argument] if the witness violates the α-limit. *)

val beta_u_upper : ?alpha:float -> Graph.t -> Bitset.t -> t
val beta_w_upper : ?alpha:float -> Graph.t -> Bitset.t -> t
val wireless_lower : ?alpha:float -> Graph.t -> Bitset.t -> Bitset.t -> t

val pp : Format.formatter -> t -> unit
