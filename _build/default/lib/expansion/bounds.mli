(** Closed-form bound functions from the paper, as plain functions of the
    instance parameters. The bench harness prints these next to measured
    values; tests check the inequalities they participate in.

    Logs are base 2 (the paper's convention). *)

val lemma_3_1 : d:int -> lambda2:float -> alpha_u:float -> beta_u:float -> float
(** Lemma 3.1: a d-regular (αu, βu)-unique expander is an (α, β)-expander
    with [β ≥ (1 − 1/d)·βu + (d − λ₂)(1 − αu)/d]. Returns that lower
    bound on β. *)

val lemma_3_2 : beta:float -> delta:int -> float
(** Lemma 3.2 (and 4.1): [βu ≥ 2β − ∆]. Returns [2β − ∆] (may be ≤ 0, in
    which case the bound is vacuous). *)

val gbad_wireless_lb : beta:float -> delta:int -> float
(** Remark after Lemma 3.3: on [Gbad], [βw ≥ max{2β − ∆, ∆/2}]. *)

val theorem_1_1_denominator : beta:float -> delta:int -> float
(** [log₂(2·min{∆/β, ∆·β})], the deviation factor of Theorem 1.1; never
    below 1 (the paper's regime [1/∆ ≤ β ≤ ∆] makes the argument ≥ 2). *)

val theorem_1_1 : beta:float -> delta:int -> float
(** The Ω-expression of Theorem 1.1 with constant 1:
    [β / log₂(2·min{∆/β, ∆·β})]. Measured wireless expansions are compared
    against constant multiples of this. *)

val lemma_4_2 : beta:float -> delta_n:float -> float
(** Regime β ≥ 1: [β / log₂(2·δN)] (δN ≤ ∆/β gives Theorem 1.1's form). *)

val lemma_4_3 : beta:float -> delta_s:float -> float
(** Regime β < 1: [β / log₂(2·δS)]. *)

val decay_success_probability : int -> float
(** Lower bound used in Lemma 4.2's proof: a vertex with
    [deg ∈ [2^j, 2^{j+1})] is uniquely covered by a [2^{-j}]-sample with
    probability ≥ e⁻³. Returns that probability bound for the given j
    (exact expression [(1 − 2^{-j})^{2^{j+1} − 1}], minimized over the
    degree range; [j = 0] gives 1·(1/2)^1 = 0.5). *)

(** {1 Appendix A deterministic bounds} (per-instance, in units of |N| = γ) *)

val naive_fraction : delta_max:int -> float
(** Lemma A.1: [γ/∆] uniquely coverable — returns the fraction [1/∆]. *)

val partition_fraction : delta_n:float -> float
(** Lemma A.3: fraction [1/(8δ)]. *)

val bucket_fraction : ?c:float -> delta_max:int -> unit -> float
(** Corollary A.6/A.7: fraction [log₂c / (2(1+c) log₂ ∆)]; the default
    [c ≈ 3.59112] maximizes it, giving [0.20087 / log₂ ∆]. *)

val c_star : float
(** The optimizing base [c ≈ 3.59112] of Corollary A.7. *)

val near_optimal_fraction : delta_n:float -> float
(** Lemma A.13: fraction [1/(9·log₂(2δ))]. *)

val corollary_a15_fraction : delta_n:float -> float
(** Corollary A.15: fraction [min{1/(9 log₂ δ), 1/20}] for δ ≥ 2 and
    [1/(9 log₂ 2δ)] below (where the A.13 bound is the relevant one). *)

val mg : float -> float
(** Corollary A.16's [MG(δ)] — the best of the deterministic fractions,
    following Observation A.17's case split (we take the max of the A.13,
    A.15 and optimized-bucket expressions). *)

val chlamtac_weinstein_fraction : s_size:int -> float
(** The earlier bound of [7]: a set covering [|N| / log₂ |S|] unique
    neighbors exists. Returns [1 / log₂ |S|] (∞-guarded: |S| ≥ 2). *)

val spokesmen_avg_degree_fraction : delta_s:float -> delta_n:float -> float
(** Our refinement (§4.2.1): fraction [1 / log₂(2·min{δN, δS})]-order
    bound, i.e. [near_optimal_fraction] at [min{δN, δS}]. *)

(** {1 Section 5 broadcast bounds} *)

val broadcast_lower_bound : n:int -> diameter:int -> float
(** [D/2 · log₂(2s)/4]-style lower bound in its asymptotic form
    [D·log₂(n/D)] with constant 1 — measured times are compared as ratios
    against this. Requires n > D ≥ 1. *)

val corollary_5_1_min_rounds : s:int -> i:int -> int
(** Corollary 5.1: reaching a [2i/log₂(2s)] fraction of N takes ≥ 1 + i
    rounds. *)
