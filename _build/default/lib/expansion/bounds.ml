let log2 = Wx_util.Floatx.log2

let lemma_3_1 ~d ~lambda2 ~alpha_u ~beta_u =
  let fd = float_of_int d in
  ((1.0 -. (1.0 /. fd)) *. beta_u) +. ((fd -. lambda2) *. (1.0 -. alpha_u) /. fd)

let lemma_3_2 ~beta ~delta = (2.0 *. beta) -. float_of_int delta

let gbad_wireless_lb ~beta ~delta =
  Float.max (lemma_3_2 ~beta ~delta) (float_of_int delta /. 2.0)

let theorem_1_1_denominator ~beta ~delta =
  let fd = float_of_int delta in
  let arg = 2.0 *. Float.min (fd /. beta) (fd *. beta) in
  Float.max 1.0 (log2 arg)

let theorem_1_1 ~beta ~delta = beta /. theorem_1_1_denominator ~beta ~delta

let lemma_4_2 ~beta ~delta_n = beta /. Float.max 1.0 (log2 (2.0 *. delta_n))
let lemma_4_3 ~beta ~delta_s = beta /. Float.max 1.0 (log2 (2.0 *. delta_s))

let decay_success_probability j =
  if j < 0 then invalid_arg "Bounds.decay_success_probability";
  if j = 0 then 0.5
  else begin
    let p = 1.0 /. float_of_int (1 lsl j) in
    (1.0 -. p) ** float_of_int ((1 lsl (j + 1)) - 1)
  end

let naive_fraction ~delta_max = 1.0 /. float_of_int (max 1 delta_max)
let partition_fraction ~delta_n = 1.0 /. (8.0 *. Float.max 1.0 delta_n)

let c_star = 3.59112

let bucket_fraction ?(c = c_star) ~delta_max () =
  if c <= 1.0 then invalid_arg "Bounds.bucket_fraction: c must be > 1";
  let d = float_of_int (max 2 delta_max) in
  log2 c /. (2.0 *. (1.0 +. c) *. log2 d)

let near_optimal_fraction ~delta_n = 1.0 /. (9.0 *. Float.max 1.0 (log2 (2.0 *. delta_n)))

let corollary_a15_fraction ~delta_n =
  if delta_n < 2.0 then near_optimal_fraction ~delta_n
  else Float.min (1.0 /. (9.0 *. log2 delta_n)) (1.0 /. 20.0)

let mg delta =
  let a13 = near_optimal_fraction ~delta_n:delta in
  let a15 = corollary_a15_fraction ~delta_n:delta in
  let bucket =
    (* Corollary A.8 optimized over t at c = c_star: (1 − 1/t)·1/(2(1+c)·log_c(tδ)).
       Evaluate on a small t-grid; this is the third leg of MG. *)
    let best = ref 0.0 in
    List.iter
      (fun t ->
        let v =
          (1.0 -. (1.0 /. t))
          /. (2.0 *. (1.0 +. c_star) *. (log2 (t *. Float.max 1.0 delta) /. log2 c_star))
        in
        if v > !best then best := v)
      [ 1.5; 2.0; 3.0; 5.0; 10.0; 100.0 ];
    !best
  in
  Float.max a13 (Float.max a15 bucket)

let chlamtac_weinstein_fraction ~s_size = 1.0 /. Float.max 1.0 (log2 (float_of_int (max 2 s_size)))

let spokesmen_avg_degree_fraction ~delta_s ~delta_n =
  near_optimal_fraction ~delta_n:(Float.min delta_s delta_n)

let broadcast_lower_bound ~n ~diameter =
  if diameter < 1 || n <= diameter then invalid_arg "Bounds.broadcast_lower_bound";
  float_of_int diameter *. log2 (float_of_int n /. float_of_int diameter)

let corollary_5_1_min_rounds ~s:_ ~i = 1 + i
