(** Wireless-expansion measurement on bipartite instances.

    Section 4 reduces everything to a bipartite graph [G_S = (S, N, E_S)];
    here we compute [max_{S′ ⊆ S} |Γ¹_S(S′)|] on such instances directly. *)

module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite

exception Too_large of string

val exact_max_unique : ?work_limit:int -> Bipartite.t -> int * Bitset.t
(** Exact maximum unique coverage over all subsets of side S, with the
    maximizing subset. Cost [2^|S|]; default work limit [2^24]. *)

val sampled_max_unique :
  Wx_util.Rng.t -> samples:int -> Bipartite.t -> int * Bitset.t
(** Best unique coverage over random subsets of S — a lower-bound witness
    for the maximum (plus singletons and the full side, which are always
    tried). *)

val wireless_expansion_exact : ?work_limit:int -> Bipartite.t -> float
(** [exact_max_unique / |S|]. *)

val ordinary_expansion_min_exact : ?work_limit:int -> Bipartite.t -> float * Bitset.t
(** [min_{∅ ≠ S′ ⊆ S} |Γ(S′)| / |S′|] — the bipartite expansion in the sense
    of Lemma 4.4(4) (one-sided, from S towards N), with the minimizing
    subset. Cost [2^|S|]. *)

val ordinary_expansion_min_sampled :
  Wx_util.Rng.t -> samples:int -> Bipartite.t -> float * Bitset.t
(** Upper-bound certificate for the one-sided expansion on large sides. *)
