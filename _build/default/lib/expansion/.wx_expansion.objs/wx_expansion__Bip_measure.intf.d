lib/expansion/bip_measure.mli: Wx_graph Wx_util
