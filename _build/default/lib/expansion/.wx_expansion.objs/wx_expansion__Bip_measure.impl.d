lib/expansion/bip_measure.ml: Array Nbhd Printf Wx_graph Wx_util
