lib/expansion/bounds.mli:
