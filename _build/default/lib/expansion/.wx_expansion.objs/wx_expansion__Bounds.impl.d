lib/expansion/bounds.ml: Float List Wx_util
