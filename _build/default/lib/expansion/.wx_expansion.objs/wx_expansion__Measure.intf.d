lib/expansion/measure.mli: Wx_graph Wx_util
