lib/expansion/nbhd.mli: Wx_graph Wx_util
