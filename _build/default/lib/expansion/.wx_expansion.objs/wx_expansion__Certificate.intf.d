lib/expansion/certificate.mli: Format Wx_graph Wx_util
