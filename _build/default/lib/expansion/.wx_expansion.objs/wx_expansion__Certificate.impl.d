lib/expansion/certificate.ml: Format Measure Nbhd Printf Wx_graph Wx_util
