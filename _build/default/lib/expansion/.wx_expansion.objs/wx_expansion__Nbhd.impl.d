lib/expansion/nbhd.ml: Array Wx_graph Wx_util
