lib/expansion/measure.ml: Array Float Nbhd Printf Wx_graph Wx_util
