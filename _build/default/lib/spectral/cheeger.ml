module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Combi = Wx_util.Combi
module Rng = Wx_util.Rng

let cut_edges g s =
  let acc = ref 0 in
  Bitset.iter
    (fun v -> Graph.iter_neighbors g v (fun w -> if not (Bitset.mem s w) then incr acc))
    s;
  !acc

let edge_expansion_of_set g s =
  let k = Bitset.cardinal s in
  if k = 0 then nan else float_of_int (cut_edges g s) /. float_of_int k

let h_exact ?(work_limit = 1 lsl 24) g =
  let n = Graph.n g in
  let kmax = n / 2 in
  if n < 2 then invalid_arg "Cheeger.h_exact: need n >= 2";
  let count = Combi.subsets_count_le n kmax in
  if count > work_limit then invalid_arg "Cheeger.h_exact: too many sets";
  let best = ref infinity in
  let best_set = ref (Bitset.create n) in
  let buf = Bitset.create n in
  Combi.iter_subsets_le n kmax (fun idxs ->
      Bitset.clear_inplace buf;
      Array.iter (Bitset.add_inplace buf) idxs;
      let v = edge_expansion_of_set g buf in
      if v < !best then begin
        best := v;
        best_set := Bitset.copy buf
      end);
  (!best, !best_set)

let h_sampled rng ~samples g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Cheeger.h_sampled: need n >= 2";
  let kmax = n / 2 in
  let best = ref infinity in
  let best_set = ref (Bitset.create n) in
  let consider s =
    let k = Bitset.cardinal s in
    if k >= 1 && k <= kmax then begin
      let v = edge_expansion_of_set g s in
      if v < !best then begin
        best := v;
        best_set := Bitset.copy s
      end
    end
  in
  (* BFS balls: prefixes of a BFS order are classic low-expansion cuts. *)
  for src = 0 to min (n - 1) 7 do
    let dist = Wx_graph.Traversal.bfs g src in
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare dist.(a) dist.(b)) order;
    let ball = Bitset.create n in
    Array.iter
      (fun v ->
        if dist.(v) < max_int then begin
          Bitset.add_inplace ball v;
          consider ball
        end)
      order
  done;
  (* Random sets. *)
  for _ = 1 to samples do
    let k = 1 + Rng.int rng kmax in
    consider (Bitset.random_of_universe rng n k)
  done;
  (!best, !best_set)

let cheeger_bounds ~d ~lambda2 =
  let fd = float_of_int d in
  let gap = Float.max 0.0 (fd -. lambda2) in
  (gap /. 2.0, sqrt (2.0 *. fd *. gap))
