lib/spectral/cheeger.ml: Array Float Wx_graph Wx_util
