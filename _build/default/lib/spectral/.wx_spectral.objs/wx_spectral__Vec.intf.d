lib/spectral/vec.mli: Wx_util
