lib/spectral/spectral_gap.mli: Vec Wx_graph Wx_util
