lib/spectral/spectral_gap.ml: Array Float Vec Wx_graph
