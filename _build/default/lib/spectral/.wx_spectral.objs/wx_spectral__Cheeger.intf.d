lib/spectral/cheeger.mli: Wx_graph Wx_util
