lib/spectral/vec.ml: Array List Wx_util
