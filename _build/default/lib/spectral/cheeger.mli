(** Edge expansion (Cheeger constant) and its spectral sandwich.

    Background machinery for the expander families the paper builds on:
    for a connected d-regular graph, the edge expansion
    [h(G) = min_{0 < |S| ≤ n/2} |e(S, S̄)| / |S|] satisfies the Cheeger
    inequalities [(d − λ₂)/2 ≤ h(G) ≤ √(2d(d − λ₂))]. We verify the
    sandwich empirically in tests, and use h to certify that the random
    hosts used by E8 really are expanders rather than assuming it. *)

val cut_edges : Wx_graph.Graph.t -> Wx_util.Bitset.t -> int
(** [|e(S, S̄)|]. *)

val edge_expansion_of_set : Wx_graph.Graph.t -> Wx_util.Bitset.t -> float
(** [|e(S, S̄)| / |S|]; [nan] on the empty set. *)

val h_exact : ?work_limit:int -> Wx_graph.Graph.t -> float * Wx_util.Bitset.t
(** Exact Cheeger constant by enumeration over sets of size ≤ n/2
    (default work limit 2^24 sets). *)

val h_sampled :
  Wx_util.Rng.t -> samples:int -> Wx_graph.Graph.t -> float * Wx_util.Bitset.t
(** Witness upper bound: min over sampled sets plus BFS-ball and
    degree-ordered prefix heuristics (the structured cuts that are usually
    worst). *)

val cheeger_bounds : d:int -> lambda2:float -> float * float
(** [(lower, upper)] = [((d − λ₂)/2, √(2d(d − λ₂)))]. *)
