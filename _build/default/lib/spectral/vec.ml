type t = float array

let make n x = Array.make n x

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm a = sqrt (dot a a)

let scale_inplace a c =
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) *. c
  done

let axpy_inplace y a x =
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let normalize_inplace a =
  let nrm = norm a in
  if nrm < 1e-300 then failwith "Vec.normalize_inplace: zero vector";
  scale_inplace a (1.0 /. nrm)

let orthogonalize_inplace v basis =
  List.iter
    (fun u ->
      let c = dot v u in
      axpy_inplace v (-.c) u)
    basis

let random_unit rng n =
  let v = Array.init n (fun _ -> Wx_util.Rng.float rng -. 0.5) in
  normalize_inplace v;
  v

let copy = Array.copy
let sub a b = Array.init (Array.length a) (fun i -> a.(i) -. b.(i))
