(** Adjacency-matrix spectra of graphs.

    Lemma 3.1 relates unique-neighbor expansion of a d-regular graph to its
    second adjacency eigenvalue λ₂. The primary solver is power iteration on
    the shifted matrix [A + dI] with deflation of the all-ones eigenvector;
    a dense Jacobi eigensolver provides an independent cross-check for small
    graphs (used in tests). *)

val matvec : Wx_graph.Graph.t -> Vec.t -> Vec.t -> unit
(** [matvec g x y] computes [y := A·x] where A is the adjacency matrix. *)

val lambda2_regular : ?iters:int -> ?tol:float -> Wx_graph.Graph.t -> Wx_util.Rng.t -> float
(** Second-largest adjacency eigenvalue of a connected d-regular graph.

    Runs power iteration on [A + dI] (all eigenvalues shifted to [0, 2d], so
    the dominant one after deflating the all-ones vector is [λ₂ + d]).
    Raises [Invalid_argument] if the graph is not regular. *)

val spectral_gap_regular : ?iters:int -> ?tol:float -> Wx_graph.Graph.t -> Wx_util.Rng.t -> float
(** [d − λ₂] for a d-regular graph. *)

val eigenvalues_dense : Wx_graph.Graph.t -> float array
(** All adjacency eigenvalues in decreasing order, by cyclic Jacobi rotation
    on the dense matrix. O(n³); requires [n ≤ 400]. *)

val alon_spencer_cut_bound : d:int -> lambda2:float -> n:int -> a:int -> float
(** The Alon–Spencer bound used in Lemma 3.1's proof:
    [e(A, B) ≥ (d − λ₂)·|A|·|B| / n] for any partition (A, B) with |A| = a.
    Returned as the float lower bound on the number of cut edges. *)
