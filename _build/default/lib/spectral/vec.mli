(** Dense float-vector operations for the eigensolvers. *)

type t = float array

val make : int -> float -> t
val random_unit : Wx_util.Rng.t -> int -> t
(** Random vector on the unit sphere (componentwise uniform, normalized). *)

val dot : t -> t -> float
val norm : t -> float

val scale_inplace : t -> float -> unit
val axpy_inplace : t -> float -> t -> unit
(** [axpy_inplace y a x] performs [y := y + a·x]. *)

val normalize_inplace : t -> unit
(** Raises [Failure] on (near-)zero vectors. *)

val orthogonalize_inplace : t -> t list -> unit
(** Gram–Schmidt: remove components of the given unit vectors. *)

val copy : t -> t
val sub : t -> t -> t
