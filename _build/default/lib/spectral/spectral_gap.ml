module Graph = Wx_graph.Graph

let matvec g x y =
  let n = Graph.n g in
  for v = 0 to n - 1 do
    let acc = ref 0.0 in
    Graph.iter_neighbors g v (fun w -> acc := !acc +. x.(w));
    y.(v) <- !acc
  done

let lambda2_regular ?(iters = 10_000) ?(tol = 1e-10) g rng =
  let n = Graph.n g in
  let d =
    match Graph.is_regular g with
    | Some d -> d
    | None -> invalid_arg "Spectral_gap.lambda2_regular: graph is not regular"
  in
  if n < 2 then invalid_arg "Spectral_gap.lambda2_regular: need n >= 2";
  let ones = Vec.make n (1.0 /. sqrt (float_of_int n)) in
  let x = ref (Vec.random_unit rng n) in
  Vec.orthogonalize_inplace !x [ ones ];
  Vec.normalize_inplace !x;
  let y = Vec.make n 0.0 in
  let fd = float_of_int d in
  let prev = ref infinity in
  let result = ref nan in
  (try
     for _ = 1 to iters do
       (* y := (A + dI) x *)
       matvec g !x y;
       Vec.axpy_inplace y fd !x;
       Vec.orthogonalize_inplace y [ ones ];
       let mu = Vec.norm y in
       if mu < 1e-12 then begin
         (* x was (numerically) in the kernel of A + dI after deflation:
            λ₂ + d ≈ 0, i.e. λ₂ ≈ −d (bipartite-like spectrum). *)
         result := -.fd;
         raise Exit
       end;
       Vec.scale_inplace y (1.0 /. mu);
       Array.blit y 0 !x 0 n;
       if Float.abs (mu -. !prev) < tol *. Float.max 1.0 mu then begin
         result := mu -. fd;
         raise Exit
       end;
       prev := mu
     done;
     result := !prev -. fd
   with Exit -> ());
  !result

let spectral_gap_regular ?iters ?tol g rng =
  let d =
    match Graph.is_regular g with
    | Some d -> float_of_int d
    | None -> invalid_arg "Spectral_gap.spectral_gap_regular: graph is not regular"
  in
  d -. lambda2_regular ?iters ?tol g rng

let eigenvalues_dense g =
  let n = Graph.n g in
  if n > 400 then invalid_arg "Spectral_gap.eigenvalues_dense: n too large";
  let a = Array.make_matrix n n 0.0 in
  Graph.iter_edges g (fun u v ->
      a.(u).(v) <- 1.0;
      a.(v).(u) <- 1.0);
  (* Cyclic Jacobi: repeatedly zero the largest off-diagonal entry via a
     Givens rotation until the off-diagonal mass is negligible. *)
  let off_norm () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    sqrt !acc
  in
  let rotate p q =
    if Float.abs a.(p).(q) > 1e-14 then begin
      let theta = (a.(q).(q) -. a.(p).(p)) /. (2.0 *. a.(p).(q)) in
      let t =
        let s = if theta >= 0.0 then 1.0 else -1.0 in
        s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
      in
      let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
      let s = t *. c in
      for k = 0 to n - 1 do
        let akp = a.(k).(p) and akq = a.(k).(q) in
        a.(k).(p) <- (c *. akp) -. (s *. akq);
        a.(k).(q) <- (s *. akp) +. (c *. akq)
      done;
      for k = 0 to n - 1 do
        let apk = a.(p).(k) and aqk = a.(q).(k) in
        a.(p).(k) <- (c *. apk) -. (s *. aqk);
        a.(q).(k) <- (s *. apk) +. (c *. aqk)
      done
    end
  in
  let sweeps = ref 0 in
  while off_norm () > 1e-10 && !sweeps < 200 do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  let eig = Array.init n (fun i -> a.(i).(i)) in
  Array.sort (fun x y -> compare y x) eig;
  eig

let alon_spencer_cut_bound ~d ~lambda2 ~n ~a =
  let fa = float_of_int a in
  let fb = float_of_int (n - a) in
  (float_of_int d -. lambda2) *. fa *. fb /. float_of_int n
