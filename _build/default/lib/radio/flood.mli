(** Naive flooding: every informed processor transmits every round.

    This is the strategy whose failure on C⁺ motivates the paper — once
    both clique attachment points are informed, every clique vertex hears
    a collision forever and the broadcast stalls. *)

val protocol : Protocol.t
