lib/radio/decay_protocol.ml: Network Printf Protocol Wx_graph Wx_util
