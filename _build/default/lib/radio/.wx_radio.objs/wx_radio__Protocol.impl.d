lib/radio/protocol.ml: Network Wx_util
