lib/radio/network.ml: Array Wx_graph Wx_util
