lib/radio/network.mli: Wx_graph Wx_util
