lib/radio/schedule.ml: Array List Network Wx_graph Wx_spokesmen Wx_util
