lib/radio/protocol.mli: Network Wx_util
