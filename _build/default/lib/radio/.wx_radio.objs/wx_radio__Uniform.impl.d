lib/radio/uniform.ml: Network Printf Protocol Wx_graph Wx_util
