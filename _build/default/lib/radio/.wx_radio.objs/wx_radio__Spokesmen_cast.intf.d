lib/radio/spokesmen_cast.mli: Protocol Wx_graph Wx_spokesmen Wx_util
