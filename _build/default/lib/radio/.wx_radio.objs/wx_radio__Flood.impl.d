lib/radio/flood.ml: Network Protocol Wx_util
