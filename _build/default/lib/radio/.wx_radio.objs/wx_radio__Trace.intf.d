lib/radio/trace.mli: Protocol Wx_graph Wx_util
