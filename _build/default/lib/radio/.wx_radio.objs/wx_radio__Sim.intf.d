lib/radio/sim.mli: Protocol Wx_graph Wx_util
