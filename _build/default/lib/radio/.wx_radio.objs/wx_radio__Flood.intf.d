lib/radio/flood.mli: Protocol
