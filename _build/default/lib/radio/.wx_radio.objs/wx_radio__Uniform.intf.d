lib/radio/uniform.mli: Protocol
