lib/radio/decay_protocol.mli: Protocol
