lib/radio/spokesmen_cast.ml: Array Network Protocol Wx_graph Wx_spokesmen Wx_util
