lib/radio/trace.ml: Buffer List Network Printf Protocol String Wx_graph Wx_util
