lib/radio/schedule.mli: Wx_graph Wx_spokesmen Wx_util
