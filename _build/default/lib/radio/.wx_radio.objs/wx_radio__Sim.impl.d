lib/radio/sim.ml: Array Float List Network Protocol Wx_graph Wx_util
