module Bitset = Wx_util.Bitset

let protocol p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Uniform.protocol: p out of range";
  {
    Protocol.name = Printf.sprintf "uniform-%.2f" p;
    distributed = true;
    choose =
      (fun net rng ->
        let out = Bitset.create (Wx_graph.Graph.n (Network.graph net)) in
        Bitset.iter
          (fun v -> if Wx_util.Rng.bernoulli rng p then Bitset.add_inplace out v)
          (Network.informed net);
        out);
  }
