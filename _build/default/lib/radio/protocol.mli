(** Broadcast protocol interface.

    A protocol chooses, each round, which informed processors transmit.
    Distributed protocols ({!Decay_protocol}, {!Flood}) must base each
    vertex's decision only on locally observable state (whether it holds
    the message, when it received it, the round number, global constants
    like n, and private randomness). Centralized schedules
    ({!Spokesmen_cast}) may look at the whole topology — the Section 5
    lower bound holds against these too, which is what makes reproducing
    it with a centralized upper-bound protocol meaningful. *)

type t = {
  name : string;
  distributed : bool;
  choose : Network.t -> Wx_util.Rng.t -> Wx_util.Bitset.t;
      (** Transmitter set for the coming round; must be a subset of the
          informed set. *)
}
