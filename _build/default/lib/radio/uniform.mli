(** Uniform-probability transmission: every informed processor transmits
    with a fixed probability [p] each round.

    The single-parameter baseline between flooding ([p = 1], stalls on C⁺)
    and silence ([p = 0]); the decay protocol exists precisely because no
    fixed [p] works at every frontier density — the A7 ablation sweeps [p]
    to show the dependence. *)

val protocol : float -> Protocol.t
(** Raises [Invalid_argument] unless [0 ≤ p ≤ 1]. *)
