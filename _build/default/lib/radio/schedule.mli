(** Offline broadcast schedule synthesis — the Chlamtac–Weinstein
    application of spokesmen election ([7], §4.2.1).

    Given full topology knowledge, compute an explicit round-by-round list
    of transmitter sets that completes a broadcast. Each round solves a
    spokesmen-election instance on the current frontier, so the number of
    rounds is governed by the graph's wireless expansion: per round, a
    [βw/(1+βw)]-ish fraction of the remaining boundary gets informed.

    The synthesized schedule is a {e certificate}: {!replay} re-executes
    it on the collision-semantics simulator and checks it really informs
    everyone — synthesis bugs cannot silently produce wrong round counts. *)

module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type t = {
  source : int;
  rounds : Bitset.t array;  (** transmitter set per round, in order *)
}

val length : t -> int

val synthesize :
  ?solver:(Wx_util.Rng.t -> Wx_graph.Bipartite.t -> Wx_spokesmen.Solver.result) ->
  ?max_rounds:int ->
  Wx_util.Rng.t ->
  Graph.t ->
  source:int ->
  t
(** Greedy synthesis with the given per-round solver (default: the full
    portfolio with a branch-and-bound attempt on small frontiers). Raises
    [Failure] if the graph is disconnected from the source or the round
    limit (default [4·n + 64]) is hit. *)

val replay : Graph.t -> t -> bool * int
(** Execute on {!Network}; returns (everyone informed?, informed count).
    Also validates that every scheduled transmitter holds the message when
    it transmits ([Invalid_argument] from the simulator otherwise). *)

val lower_bound_rounds : Graph.t -> source:int -> int
(** Eccentricity of the source — no schedule beats the BFS depth. *)
