module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite

let make name solve =
  {
    Protocol.name;
    distributed = false;
    choose =
      (fun net rng ->
        let g = Network.graph net in
        let informed = Network.informed net in
        let inst, s_map, _ = Bipartite.of_set_neighborhood g informed in
        let n_vertices = Bitset.create (Wx_graph.Graph.n g) in
        if Bipartite.n_count inst = 0 then n_vertices (* nothing reachable: stay silent *)
        else begin
          let r = solve rng inst in
          let out = Bitset.create (Wx_graph.Graph.n g) in
          Bitset.iter (fun i -> Bitset.add_inplace out s_map.(i)) r.Wx_spokesmen.Solver.chosen;
          (* Transmitting nothing stalls forever; if the solver returned an
             empty set (degenerate instance), fall back to one arbitrary
             informed vertex with an uninformed neighbor. *)
          if Bitset.is_empty out then begin
            (try
               Bitset.iter
                 (fun v ->
                   if
                     Wx_graph.Graph.fold_neighbors g v
                       (fun acc w -> acc || not (Bitset.mem informed w))
                       false
                   then begin
                     Bitset.add_inplace out v;
                     raise Exit
                   end)
                 informed
             with Exit -> ());
            out
          end
          else out
        end);
  }

let protocol = make "spokesmen-cast" (fun rng inst -> Wx_spokesmen.Portfolio.solve ~reps:16 rng inst)
let with_solver name solve = make name solve
