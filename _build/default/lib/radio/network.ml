module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type t = {
  graph : Graph.t;
  informed : Bitset.t;
  since : int array;
  mutable round : int;
  mutable collisions : int;
}

let create g source =
  if source < 0 || source >= Graph.n g then invalid_arg "Network.create: bad source";
  let informed = Bitset.create (Graph.n g) in
  Bitset.add_inplace informed source;
  let since = Array.make (Graph.n g) (-1) in
  since.(source) <- 0;
  { graph = g; informed; since; round = 0; collisions = 0 }

let graph t = t.graph
let round t = t.round
let informed t = t.informed
let is_informed t v = Bitset.mem t.informed v
let informed_count t = Bitset.cardinal t.informed
let all_informed t = informed_count t = Graph.n t.graph
let informed_since t v = t.since.(v)
let collisions t = t.collisions

let step t transmitters =
  if not (Bitset.subset transmitters t.informed) then
    invalid_arg "Network.step: transmitter without the message";
  let n = Graph.n t.graph in
  let heard = Array.make n 0 in
  Bitset.iter
    (fun v ->
      Graph.iter_neighbors t.graph v (fun w ->
          if heard.(w) < 2 then heard.(w) <- heard.(w) + 1
          else heard.(w) <- heard.(w) (* saturate *)))
    transmitters;
  t.round <- t.round + 1;
  let newly = Bitset.create n in
  for w = 0 to n - 1 do
    if heard.(w) >= 2 && not (Bitset.mem transmitters w) then t.collisions <- t.collisions + 1;
    (* Reception: silent, exactly one transmitting neighbor. A transmitting
       processor hears nothing (it is busy transmitting). *)
    if heard.(w) = 1 && (not (Bitset.mem transmitters w)) && not (Bitset.mem t.informed w)
    then begin
      Bitset.add_inplace newly w;
      t.since.(w) <- t.round
    end
  done;
  Bitset.union_inplace t.informed newly;
  newly
