module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph

type round = {
  index : int;
  transmitters : int;
  newly_informed : int;
  informed_total : int;
  collisions_this_round : int;
}

type t = { rounds : round list; completed : bool; population : int }

let run ?(max_rounds = 4096) g ~source protocol rng =
  let net = Network.create g source in
  let rounds = ref [] in
  let i = ref 0 in
  while (not (Network.all_informed net)) && !i < max_rounds do
    incr i;
    let coll_before = Network.collisions net in
    let tx = protocol.Protocol.choose net rng in
    let newly = Network.step net tx in
    rounds :=
      {
        index = !i;
        transmitters = Bitset.cardinal tx;
        newly_informed = Bitset.cardinal newly;
        informed_total = Network.informed_count net;
        collisions_this_round = Network.collisions net - coll_before;
      }
      :: !rounds
  done;
  { rounds = List.rev !rounds; completed = Network.all_informed net; population = Graph.n g }

let render ?(width = 24) t =
  let buf = Buffer.create 1024 in
  let total = max 1 t.population in
  List.iter
    (fun r ->
      let filled = r.informed_total * width / total in
      Buffer.add_string buf
        (Printf.sprintf "r %3d | tx %4d | + %4d | informed %5d | coll %4d | %s%s\n" r.index
           r.transmitters r.newly_informed r.informed_total r.collisions_this_round
           (String.make filled '#')
           (String.make (width - filled) '.')))
    t.rounds;
  Buffer.add_string buf (if t.completed then "completed\n" else "STALLED / round limit\n");
  Buffer.contents buf

let stalled_rounds t =
  List.length (List.filter (fun r -> r.transmitters > 0 && r.newly_informed = 0) t.rounds)
