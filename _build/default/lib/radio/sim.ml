module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Rng = Wx_util.Rng

type outcome = {
  rounds : int;
  completed : bool;
  informed_final : int;
  collisions : int;
  frontier_history : int array;
}

let default_limit g = (64 * Graph.n g) + 1024

let run_until ?max_rounds g ~source protocol rng ~stop =
  let limit = match max_rounds with Some m -> m | None -> default_limit g in
  let net = Network.create g source in
  let history = ref [] in
  let finished = ref (stop net) in
  while (not !finished) && Network.round net < limit do
    let tx = protocol.Protocol.choose net rng in
    let _newly = Network.step net tx in
    history := Network.informed_count net :: !history;
    finished := stop net
  done;
  ( net,
    {
      rounds = Network.round net;
      completed = !finished;
      informed_final = Network.informed_count net;
      collisions = Network.collisions net;
      frontier_history = Array.of_list (List.rev !history);
    } )

let run ?max_rounds g ~source protocol rng =
  let _, o = run_until ?max_rounds g ~source protocol rng ~stop:Network.all_informed in
  { o with completed = o.informed_final = Graph.n g }

let rounds_to_inform ?max_rounds g ~source ~target protocol rng =
  let net, o =
    run_until ?max_rounds g ~source protocol rng ~stop:(fun net -> Network.is_informed net target)
  in
  if Network.is_informed net target then Some o.rounds else None

let rounds_to_fraction ?max_rounds g ~source ~subset ~fraction protocol rng =
  let total = Bitset.cardinal subset in
  if total = 0 then invalid_arg "Sim.rounds_to_fraction: empty subset";
  let target = int_of_float (Float.ceil (fraction *. float_of_int total)) in
  let enough net =
    let cnt = Bitset.cardinal (Bitset.inter (Network.informed net) subset) in
    cnt >= target
  in
  let net, o = run_until ?max_rounds g ~source protocol rng ~stop:enough in
  if enough net then Some o.rounds else None

let monte_carlo ?max_rounds g ~source protocol ~seeds =
  let one seed = run ?max_rounds g ~source protocol (Rng.create seed) in
  (one, List.map one seeds)
