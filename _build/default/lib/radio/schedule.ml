module Bitset = Wx_util.Bitset
module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Solver = Wx_spokesmen.Solver

type t = { source : int; rounds : Bitset.t array }

let length t = Array.length t.rounds

let default_solver rng inst =
  (* Small frontiers: prove the per-round optimum with branch-and-bound;
     otherwise the polynomial portfolio. *)
  if Bipartite.s_count inst <= 24 then begin
    match Wx_spokesmen.Bb.solve ~node_limit:500_000 inst with
    | r, Wx_spokesmen.Bb.Proved_optimal -> r
    | r, Wx_spokesmen.Bb.Budget_exhausted ->
        Solver.best r (Wx_spokesmen.Portfolio.solve ~reps:24 rng inst)
  end
  else Wx_spokesmen.Portfolio.solve ~reps:24 rng inst

let synthesize ?(solver = default_solver) ?max_rounds rng g ~source =
  let n = Graph.n g in
  let limit = match max_rounds with Some m -> m | None -> (4 * n) + 64 in
  let informed = Bitset.create n in
  Bitset.add_inplace informed source;
  let rounds = ref [] in
  let count = ref 1 in
  let round_no = ref 0 in
  while !count < n do
    incr round_no;
    if !round_no > limit then failwith "Schedule.synthesize: round limit hit";
    let inst, s_map, _ = Bipartite.of_set_neighborhood g informed in
    if Bipartite.n_count inst = 0 then
      failwith "Schedule.synthesize: graph disconnected from source";
    let r = solver rng inst in
    let tx = Bitset.create n in
    Bitset.iter (fun i -> Bitset.add_inplace tx s_map.(i)) r.Solver.chosen;
    (* A solver returning ∅ (degenerate) would stall: fall back to a single
       informed vertex with an uninformed neighbor, which always makes
       progress on a connected graph. *)
    if Bitset.is_empty tx then begin
      try
        Bitset.iter
          (fun v ->
            if
              Graph.fold_neighbors g v
                (fun acc w -> acc || not (Bitset.mem informed w))
                false
            then begin
              Bitset.add_inplace tx v;
              raise Exit
            end)
          informed
      with Exit -> ()
    end;
    (* Apply the round with the true reception rule. *)
    let heard = Array.make n 0 in
    Bitset.iter
      (fun v ->
        Graph.iter_neighbors g v (fun w -> if heard.(w) < 2 then heard.(w) <- heard.(w) + 1))
      tx;
    for w = 0 to n - 1 do
      if heard.(w) = 1 && (not (Bitset.mem tx w)) && not (Bitset.mem informed w) then begin
        Bitset.add_inplace informed w;
        incr count
      end
    done;
    rounds := tx :: !rounds
  done;
  { source; rounds = Array.of_list (List.rev !rounds) }

let replay g t =
  let net = Network.create g t.source in
  Array.iter (fun tx -> ignore (Network.step net tx)) t.rounds;
  (Network.all_informed net, Network.informed_count net)

let lower_bound_rounds g ~source = Wx_graph.Traversal.eccentricity g source
