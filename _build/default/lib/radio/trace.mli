(** Detailed per-round simulation traces.

    {!Sim} reports aggregate outcomes; this driver records what happened
    each round — transmitter count, new receptions, collision events — and
    renders a compact text timeline. The debugging view a protocol author
    reaches for when a broadcast stalls. *)

type round = {
  index : int;  (** 1-based round number *)
  transmitters : int;
  newly_informed : int;
  informed_total : int;
  collisions_this_round : int;
}

type t = { rounds : round list; completed : bool; population : int  (** n *) }

val run :
  ?max_rounds:int ->
  Wx_graph.Graph.t ->
  source:int ->
  Protocol.t ->
  Wx_util.Rng.t ->
  t

val render : ?width:int -> t -> string
(** One line per round:
    [r  12 | tx   5 | +  3 | informed  47 | coll  2 | ###....]
    with a bar showing the informed fraction. *)

val stalled_rounds : t -> int
(** Rounds with transmitters but no new receptions — the collision-stall
    signature (e.g. flooding on C⁺ shows nothing but these). *)
