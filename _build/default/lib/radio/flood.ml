let protocol =
  {
    Protocol.name = "flood";
    distributed = true;
    choose = (fun net _rng -> Wx_util.Bitset.copy (Network.informed net));
  }
