type t = {
  name : string;
  distributed : bool;
  choose : Network.t -> Wx_util.Rng.t -> Wx_util.Bitset.t;
}
