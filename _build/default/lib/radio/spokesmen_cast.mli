(** Centralized wireless-expander broadcast.

    Each round, form the bipartite instance between the informed set and
    its uninformed neighborhood, run a spokesmen solver on it, and let the
    chosen subset transmit. On a graph with wireless expansion βw, each
    round informs ≥ βw·|frontier| new vertices (until the α-limit), which
    is exactly the information-dissemination guarantee the wireless
    expander definition was built for. *)

val protocol : Protocol.t
(** Uses the full solver portfolio (best candidate each round). *)

val with_solver :
  string -> (Wx_util.Rng.t -> Wx_graph.Bipartite.t -> Wx_spokesmen.Solver.result) -> Protocol.t
(** Plug a specific solver (ablation: decay-only vs portfolio). *)
