(** The Decay protocol of Bar-Yehuda, Goldreich and Itai [5].

    Time is divided into phases of [k = ⌈log₂ n⌉ + 1] rounds. An informed
    processor in slot [i] of a phase (slots counted from 0, relative to the
    round it got the message) transmits with probability [2^{-i}]. Every
    processor with an informed neighbor receives within O(log n) phases
    w.h.p. — the classical O((D + log n)·log n)-style upper bound that the
    Section 5 lower bound complements. *)

val phase_length : int -> int
(** [⌈log₂ n⌉ + 1] for an n-vertex network. *)

val protocol : Protocol.t

val with_phase_length : int -> Protocol.t
(** Override the phase length (ablation: decay aggressiveness). *)

val globally_phased : Protocol.t
(** The variant with globally aligned phases (slot = round mod k for every
    node, instead of per-node offsets from reception time). Globally
    aligned slots make same-slot neighbors collide more coherently —
    compared against the per-node variant in ablation A9. *)
