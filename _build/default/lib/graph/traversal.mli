(** BFS-based graph traversal: distances, components, diameter.

    The Section-5 broadcast experiments need diameters; expansion witnesses
    need connectivity checks. *)

val bfs : Graph.t -> int -> int array
(** [bfs g src] returns the distance array; unreachable vertices get
    [max_int]. *)

val bfs_multi : Graph.t -> Wx_util.Bitset.t -> int array
(** BFS from a set of sources (distance to the nearest source). *)

val bfs_layers : Graph.t -> int -> int array list
(** Vertices grouped by distance from the source: layer 0 is [[src]],
    layer i the vertices at distance i. Unreachable vertices are omitted. *)

val eccentricity : Graph.t -> int -> int
(** Max finite distance from the vertex; [max_int] if the graph is
    disconnected from it. *)

val diameter : Graph.t -> int
(** Exact diameter via all-pairs BFS; [max_int] when disconnected,
    0 for graphs with fewer than 2 vertices. *)

val components : Graph.t -> int array * int
(** [(comp, count)]: component id per vertex, and number of components. *)

val is_connected : Graph.t -> bool

val distance : Graph.t -> int -> int -> int
(** Pairwise distance ([max_int] if disconnected). *)

val is_bipartite : Graph.t -> bool
(** BFS 2-coloring; true also for edgeless/disconnected graphs whose every
    component is 2-colorable. *)

val bipartition : Graph.t -> (Wx_util.Bitset.t * Wx_util.Bitset.t) option
(** The two color classes when the graph is bipartite. *)
