module Bitset = Wx_util.Bitset

let bfs_from g init_dist =
  let n = Graph.n g in
  let dist = init_dist in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if dist.(v) = 0 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors g v (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
  done;
  dist

let bfs g src =
  let n = Graph.n g in
  if src < 0 || src >= n then invalid_arg "Traversal.bfs: source out of range";
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  bfs_from g dist

let bfs_multi g srcs =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  Bitset.iter (fun v -> dist.(v) <- 0) srcs;
  bfs_from g dist

let bfs_layers g src =
  let dist = bfs g src in
  let maxd = Array.fold_left (fun a d -> if d <> max_int then max a d else a) 0 dist in
  let buckets = Array.make (maxd + 1) [] in
  Array.iteri (fun v d -> if d <> max_int then buckets.(d) <- v :: buckets.(d)) dist;
  Array.to_list (Array.map (fun l -> Array.of_list (List.rev l)) buckets)

let eccentricity g v =
  let dist = bfs g v in
  Array.fold_left
    (fun acc d -> if d = max_int then max_int else if acc = max_int then acc else max acc d)
    0 dist

let diameter g =
  let n = Graph.n g in
  if n < 2 then 0
  else begin
    let d = ref 0 in
    (try
       for v = 0 to n - 1 do
         let e = eccentricity g v in
         if e = max_int then begin
           d := max_int;
           raise Exit
         end;
         d := max !d e
       done
     with Exit -> ());
    !d
  end

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then begin
      let id = !count in
      incr count;
      let queue = Queue.create () in
      comp.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun w ->
            if comp.(w) = -1 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
      done
    end
  done;
  (comp, !count)

let is_connected g =
  Graph.n g <= 1
  ||
  let _, c = components g in
  c = 1

let distance g u v =
  let dist = bfs g u in
  dist.(v)

let bipartition g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for src = 0 to n - 1 do
    if !ok && color.(src) = -1 then begin
      color.(src) <- 0;
      let queue = Queue.create () in
      Queue.add src queue;
      while !ok && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Graph.iter_neighbors g v (fun w ->
            if color.(w) = -1 then begin
              color.(w) <- 1 - color.(v);
              Queue.add w queue
            end
            else if color.(w) = color.(v) then ok := false)
      done
    end
  done;
  if not !ok then None
  else begin
    let a = Bitset.create n and b = Bitset.create n in
    Array.iteri (fun v c -> if c = 1 then Bitset.add_inplace b v else Bitset.add_inplace a v) color;
    Some (a, b)
  end

let is_bipartite g = bipartition g <> None
