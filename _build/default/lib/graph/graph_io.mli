(** Plain-text graph serialization.

    Format: first non-comment line is [n m]; each following line one edge
    [u v]. Lines starting with [#] are comments. This is the DIMACS-lite
    edge-list convention most graph tooling reads, so instances can move
    between this library, the CLI, and external tools. *)

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save : Graph.t -> string -> unit
(** [save g path]. *)

val load : string -> Graph.t

val bipartite_to_string : Bipartite.t -> string
(** First line [s n m]; then [u w] edges with [u] on side S. *)

val bipartite_of_string : string -> Bipartite.t

val to_dot : ?highlight:Wx_util.Bitset.t -> Graph.t -> string
(** Graphviz DOT output; [highlight] fills the given vertices — handy for
    eyeballing expansion witnesses. *)
