lib/graph/densest.ml: Array Flow Graph Wx_util
