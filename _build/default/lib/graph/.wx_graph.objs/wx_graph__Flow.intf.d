lib/graph/flow.mli:
