lib/graph/graph.mli: Format Wx_util
