lib/graph/graph_io.mli: Bipartite Graph Wx_util
