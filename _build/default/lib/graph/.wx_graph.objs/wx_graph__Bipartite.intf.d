lib/graph/bipartite.mli: Format Graph Wx_util
