lib/graph/connectivity.ml: Flow Graph
