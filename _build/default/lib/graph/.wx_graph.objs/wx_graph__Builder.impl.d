lib/graph/builder.ml: Graph Hashtbl
