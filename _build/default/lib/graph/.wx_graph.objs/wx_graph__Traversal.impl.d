lib/graph/traversal.ml: Array Graph List Queue Wx_util
