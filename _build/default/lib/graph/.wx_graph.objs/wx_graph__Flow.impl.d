lib/graph/flow.ml: Array Queue
