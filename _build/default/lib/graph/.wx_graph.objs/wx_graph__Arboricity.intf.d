lib/graph/arboricity.mli: Graph Wx_util
