lib/graph/densest.mli: Graph Wx_util
