lib/graph/traversal.mli: Graph Wx_util
