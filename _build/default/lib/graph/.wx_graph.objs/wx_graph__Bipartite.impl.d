lib/graph/bipartite.ml: Array Format Graph Hashtbl List Wx_util
