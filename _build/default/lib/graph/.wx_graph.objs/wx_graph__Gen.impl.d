lib/graph/gen.ml: Array Bipartite Builder Graph Hashtbl List Wx_util
