lib/graph/graph_io.ml: Bipartite Buffer Fun Graph List Printf String Wx_util
