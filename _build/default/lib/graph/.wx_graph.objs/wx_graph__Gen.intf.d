lib/graph/gen.mli: Bipartite Graph Wx_util
