lib/graph/arboricity.ml: Array Float Graph Wx_util
