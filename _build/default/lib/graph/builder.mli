(** Mutable edge accumulator producing a {!Graph.t}.

    Generators and constructions add edges incrementally; duplicates are
    tolerated (collapsed on [to_graph]) but self-loops are rejected
    immediately so bugs surface at the add site. *)

type t

val create : int -> t
(** [create n] starts an empty builder over [0..n-1] vertices. *)

val n : t -> int

val add_edge : t -> int -> int -> unit
(** Idempotent; raises [Invalid_argument] on self-loops or range errors. *)

val mem_edge : t -> int -> int -> bool

val edge_count : t -> int
(** Distinct edges added so far. *)

val add_vertex : t -> int
(** Grow the universe by one; returns the new vertex's index. *)

val to_graph : t -> Graph.t
