module Bitset = Wx_util.Bitset

type t = { n : int; m : int; adj : int array array }

let of_edges n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let seen = Hashtbl.create (2 * List.length edges) in
  let deg = Array.make n 0 in
  let clean =
    List.filter
      (fun (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.of_edges: endpoint out of range";
        if u = v then invalid_arg "Graph.of_edges: self-loop";
        let key = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1;
          true
        end)
      edges
  in
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    clean;
  Array.iter (fun a -> Array.sort compare a) adj;
  { n; m = List.length clean; adj }

let n g = g.n
let m g = g.m
let degree g v = Array.length g.adj.(v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    d := max !d (degree g v)
  done;
  !d

let min_degree g =
  if g.n = 0 then 0
  else begin
    let d = ref max_int in
    for v = 0 to g.n - 1 do
      d := min !d (degree g v)
    done;
    !d
  end

let avg_degree g = if g.n = 0 then 0.0 else 2.0 *. float_of_int g.m /. float_of_int g.n

let is_regular g =
  if g.n = 0 then Some 0
  else begin
    let d = degree g 0 in
    let rec go v = if v >= g.n then Some d else if degree g v = d then go (v + 1) else None in
    go 1
  end

let neighbors g v = g.adj.(v)
let iter_neighbors g v f = Array.iter f g.adj.(v)
let fold_neighbors g v f init = Array.fold_left f init g.adj.(v)

let mem_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then false
  else begin
    let a = g.adj.(u) in
    (* Binary search in the sorted adjacency array. *)
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) = v then found := true
      else if a.(mid) < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let iter_vertices g f =
  for v = 0 to g.n - 1 do
    f v
  done

let induced g s =
  let keep = Bitset.to_array s in
  let k = Array.length keep in
  let back = Array.make g.n (-1) in
  Array.iteri (fun i v -> back.(v) <- i) keep;
  let es = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w -> if back.(w) >= 0 && back.(w) > i then es := (i, back.(w)) :: !es)
        g.adj.(v))
    keep;
  (of_edges k !es, keep)

let disjoint_union a b =
  let shift = a.n in
  let es = edges a @ List.map (fun (u, v) -> (u + shift, v + shift)) (edges b) in
  of_edges (a.n + b.n) es

let add_vertices_and_edges g k es =
  let n' = g.n + k in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n' || v < 0 || v >= n' then
        invalid_arg "Graph.add_vertices_and_edges: endpoint out of range")
    es;
  of_edges n' (edges g @ es)

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: bad permutation length";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= g.n || seen.(p) then invalid_arg "Graph.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  of_edges g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let equal a b = a.n = b.n && a.m = b.m && a.adj = b.adj

let pp fmt g = Format.fprintf fmt "graph(n=%d, m=%d, Δ=%d)" g.n g.m (max_degree g)

let pp_adjacency fmt g =
  pp fmt g;
  Format.fprintf fmt "@.";
  for v = 0 to g.n - 1 do
    Format.fprintf fmt "  %d:" v;
    Array.iter (fun w -> Format.fprintf fmt " %d" w) g.adj.(v);
    Format.fprintf fmt "@."
  done
