(** Immutable undirected simple graphs.

    Vertices are [0..n-1]. Adjacency lists are sorted arrays, so membership
    tests are O(log deg) and neighbor iteration is cache-friendly. Build
    graphs with {!Builder} or {!of_edges}. *)

type t

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds the graph on [n] vertices. Duplicate edges are
    collapsed; self-loops raise [Invalid_argument], as do out-of-range
    endpoints. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int
val max_degree : t -> int
val min_degree : t -> int
val avg_degree : t -> float

val is_regular : t -> int option
(** [Some d] when every vertex has degree [d]. *)

val neighbors : t -> int -> int array
(** Sorted adjacency array. {b Do not mutate} — it is the graph's own
    storage. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val mem_edge : t -> int -> int -> bool

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge visited once, with [u < v]. *)

val edges : t -> (int * int) list

val iter_vertices : t -> (int -> unit) -> unit

val induced : t -> Wx_util.Bitset.t -> t * int array
(** [induced g s] is the subgraph induced by vertex set [s], together with
    the map from new indices to original vertices. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n first]. *)

val add_vertices_and_edges : t -> int -> (int * int) list -> t
(** [add_vertices_and_edges g k es] appends [k] fresh vertices
    [n g .. n g + k - 1] and adds edges [es] (which may touch old and new
    vertices). Used to plug construction gadgets on top of host expanders
    (Section 4.3.3). *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. *)

val equal : t -> t -> bool
(** Structural equality (same n, same edge set). *)

val pp : Format.formatter -> t -> unit
(** Short description: ["graph(n=8, m=12, Δ=3)"]. *)

val pp_adjacency : Format.formatter -> t -> unit
(** Full adjacency dump, for debugging small graphs. *)
