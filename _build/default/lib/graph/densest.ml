module Bitset = Wx_util.Bitset

(* Goldberg's network for the test "does some U containing the anchor r
   satisfy q·|E(U)| − p·(|U| − offset) > 0?":

     source → edge-node            capacity q   (one node per edge)
     edge-node → both endpoints    capacity ∞
     vertex → sink                 capacity p
     source → r                    capacity ∞   (forces r ∈ U)

   A finite cut keeps an edge-node on the source side iff both endpoints
   are, so min-cut = q·m − max_{U ∋ r} (q·|E(U)| − p·|U|). Anchoring at r
   rules out the degenerate U = ∅ optimum that makes the unanchored
   problem insensitive to the −offset shift in the denominator. *)
let best_anchored g ~p ~q ~r =
  let n = Graph.n g and m = Graph.m g in
  let source = n + m and sink = n + m + 1 in
  let fl = Flow.create (n + m + 2) in
  let ei = ref 0 in
  Graph.iter_edges g (fun u v ->
      let enode = n + !ei in
      incr ei;
      Flow.add_edge fl source enode q;
      Flow.add_edge fl enode u Flow.infinite;
      Flow.add_edge fl enode v Flow.infinite);
  for v = 0 to n - 1 do
    Flow.add_edge fl v sink p
  done;
  Flow.add_edge fl source r Flow.infinite;
  let _ = Flow.max_flow fl ~source ~sink in
  let side = Flow.min_cut_side fl ~source in
  let u = Bitset.create n in
  for v = 0 to n - 1 do
    if side.(v) then Bitset.add_inplace u v
  done;
  u

let edges_within g u =
  let acc = ref 0 in
  Bitset.iter
    (fun v -> Graph.iter_neighbors g v (fun w -> if w > v && Bitset.mem u w then incr acc))
    u;
  !acc

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let max_density ?(offset = 1) g =
  if offset < 0 then invalid_arg "Densest.max_density: negative offset";
  let n = Graph.n g in
  if n <= offset then invalid_arg "Densest.max_density: graph too small for offset";
  if Graph.m g = 0 then (0, 1, Bitset.of_list n [ 0 ])
  else begin
    (* Dinkelbach: start from the whole graph's density, repeatedly ask the
       anchored Goldberg test for a strictly denser set. Each accepted set
       realizes a strictly larger rational with denominator < n, so the
       loop terminates. *)
    let init_num = Graph.m g and init_den = max 1 (n - offset) in
    let d0 = max 1 (gcd init_num init_den) in
    let best_num = ref (init_num / d0) in
    let best_den = ref (init_den / d0) in
    let best_set = ref (Bitset.full n) in
    let improved = ref true in
    while !improved do
      improved := false;
      let p = !best_num and q = !best_den in
      for r = 0 to n - 1 do
        let u = best_anchored g ~p ~q ~r in
        let k = Bitset.cardinal u in
        if k > offset then begin
          let num = edges_within g u in
          let den = k - offset in
          (* Strictly denser than the incumbent? (cross-multiplied) *)
          if num * !best_den > !best_num * den then begin
            let d = max 1 (gcd num den) in
            best_num := num / d;
            best_den := den / d;
            best_set := u;
            improved := true
          end
        end
      done
    done;
    (!best_num, !best_den, !best_set)
  end

let arboricity_exact g =
  if Graph.n g <= 1 || Graph.m g = 0 then 0
  else begin
    let num, den, _ = max_density ~offset:1 g in
    (num + den - 1) / den
  end
