let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let meaningful_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let parse_ints ~expected lineno line =
  let parts = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  if List.length parts <> expected then
    failwith (Printf.sprintf "line %d: expected %d integers, got %S" lineno expected line);
  List.map
    (fun p ->
      match int_of_string_opt p with
      | Some v -> v
      | None -> failwith (Printf.sprintf "line %d: not an integer: %S" lineno p))
    parts

let of_string s =
  match meaningful_lines s with
  | [] -> failwith "Graph_io.of_string: empty input"
  | (ln, header) :: rest -> begin
      match parse_ints ~expected:2 ln header with
      | [ n; m ] ->
          let edges =
            List.map
              (fun (lineno, line) ->
                match parse_ints ~expected:2 lineno line with
                | [ u; v ] -> (u, v)
                | _ -> assert false)
              rest
          in
          if List.length edges <> m then
            failwith
              (Printf.sprintf "Graph_io.of_string: header says %d edges, found %d" m
                 (List.length edges));
          Graph.of_edges n edges
      | _ -> assert false
    end

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let bipartite_to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" (Bipartite.s_count t) (Bipartite.n_count t) (Bipartite.m t));
  Bipartite.iter_edges t (fun u w -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u w));
  Buffer.contents buf

let bipartite_of_string s =
  match meaningful_lines s with
  | [] -> failwith "Graph_io.bipartite_of_string: empty input"
  | (ln, header) :: rest -> begin
      match parse_ints ~expected:3 ln header with
      | [ s_cnt; n_cnt; m ] ->
          let edges =
            List.map
              (fun (lineno, line) ->
                match parse_ints ~expected:2 lineno line with
                | [ u; w ] -> (u, w)
                | _ -> assert false)
              rest
          in
          if List.length edges <> m then
            failwith
              (Printf.sprintf "Graph_io.bipartite_of_string: header says %d edges, found %d" m
                 (List.length edges));
          Bipartite.of_edges ~s:s_cnt ~n:n_cnt edges
      | _ -> assert false
    end

let to_dot ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n  node [shape=circle];\n";
  (match highlight with
  | Some h ->
      Wx_util.Bitset.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "  %d [style=filled, fillcolor=lightblue];\n" v))
        h
  | None -> ());
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
