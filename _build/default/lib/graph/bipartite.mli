(** Two-sided bipartite graphs [(S, N, E)].

    Section 4 of the paper works entirely on the bipartite graph between a
    vertex set [S] and its external neighborhood [N = Γ⁻(S)]; this module is
    that representation. Side-[S] vertices and side-[N] vertices are indexed
    independently from 0, so the same integer means different vertices on
    different sides. *)

type t

val of_edges : s:int -> n:int -> (int * int) list -> t
(** [of_edges ~s ~n edges] where each [(u, w)] connects S-vertex [u] to
    N-vertex [w]. Duplicates collapsed; range errors raise. *)

val s_count : t -> int
val n_count : t -> int
val m : t -> int

val deg_s : t -> int -> int
(** Degree of an S-vertex. *)

val deg_n : t -> int -> int
(** Degree of an N-vertex. *)

val neighbors_s : t -> int -> int array
(** N-side neighbors of an S-vertex (sorted; do not mutate). *)

val neighbors_n : t -> int -> int array

val max_deg_s : t -> int
val max_deg_n : t -> int

val delta_s : t -> float
(** Average degree of side S ([δ_S] in the paper: Σ deg(u,N)/|S|). *)

val delta_n : t -> float
(** Average degree of side N ([δ_N]). *)

val beta : t -> float
(** The instance's expansion measure [|N| / |S|] (the paper's normalization
    when N is exactly the neighborhood of S). *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge t u w] with [u] on side S and [w] on side N. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val has_isolated : t -> bool
(** True iff some vertex (either side) has degree 0. The paper's framework
    assumes no isolated vertices. *)

val sub_instance : t -> Wx_util.Bitset.t -> Wx_util.Bitset.t -> t * int array * int array
(** [sub_instance t ss ns] is the induced bipartite graph on S-subset [ss]
    and N-subset [ns], with maps from new to old indices on each side.
    Used by the recursive procedures of Appendix A. *)

val to_graph : t -> Graph.t * int array * int array
(** Flatten to an ordinary graph: S-vertices first ([0..s-1]), then
    N-vertices ([s..s+n-1]). Returns the graph and both index maps
    (S-index → graph vertex, N-index → graph vertex). *)

val of_set_neighborhood : Graph.t -> Wx_util.Bitset.t -> t * int array * int array
(** [of_set_neighborhood g s] builds the paper's [G_S]: side S is the set
    [s], side N is [Γ⁻(s)], and edges are those of [g] between them (edges
    internal to S or N are dropped, as in Section 4.1). Returns the
    instance plus maps from S-index and N-index back to vertices of [g]. *)

val pp : Format.formatter -> t -> unit
