(** Arboricity and density measures (Section 2.1).

    The paper's corollary for low-arboricity graphs (planar graphs, graphs
    excluding a fixed minor) hinges on
    [arboricity ≥ min{∆/β, ∆·β}] and on the arboricity matching the maximum
    average degree over induced subgraphs up to a factor 2. *)

val density_of_subset : Graph.t -> Wx_util.Bitset.t -> float
(** [|E(U)| / (|U| − 1)] for the induced subgraph; 0 when [|U| <= 1]. *)

val avg_degree_of_subset : Graph.t -> Wx_util.Bitset.t -> float
(** [2|E(U)| / |U|]; 0 on the empty set. *)

val exact : Graph.t -> int
(** Exact arboricity [max_U ⌈|E(U)|/(|U|−1)⌉] by subset enumeration.
    Exponential; requires [n ≤ 20]. *)

val lower_bound_peeling : Graph.t -> int
(** Arboricity lower bound via the degeneracy-ordering densest-subgraph
    2-approximation: returns [max ⌈density⌉] over the peeling suffixes.
    Sound lower bound for any n. *)

val degeneracy : Graph.t -> int
(** Graph degeneracy via min-degree peeling. Arboricity ≤ degeneracy and
    degeneracy ≤ 2·arboricity − 1, so this also yields an upper bound. *)

val paper_lower_bound : delta:int -> beta:float -> float
(** The paper's bound: arboricity of an (α,β)-expander with max degree ∆ is
    at least [min (∆/β) (∆·β)]. *)
