type t = { mutable n : int; edges : (int * int, unit) Hashtbl.t }

let create n =
  if n < 0 then invalid_arg "Builder.create";
  { n; edges = Hashtbl.create 64 }

let n t = t.n

let key u v = if u < v then (u, v) else (v, u)

let add_edge t u v =
  if u = v then invalid_arg "Builder.add_edge: self-loop";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Builder.add_edge: endpoint out of range";
  Hashtbl.replace t.edges (key u v) ()

let mem_edge t u v = Hashtbl.mem t.edges (key u v)
let edge_count t = Hashtbl.length t.edges

let add_vertex t =
  let v = t.n in
  t.n <- t.n + 1;
  v

let to_graph t =
  let es = Hashtbl.fold (fun e () acc -> e :: acc) t.edges [] in
  Graph.of_edges t.n es
