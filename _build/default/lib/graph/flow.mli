(** Dinic maximum-flow on integer capacities.

    Substrate for the exact densest-subgraph / Nash–Williams arboricity
    computation ({!Densest}), which the low-arboricity experiment (E12)
    uses to certify arboricity exactly at sizes where the subset-
    enumeration definition is unusable. *)

type t

val create : int -> t
(** [create n] — a flow network on nodes [0..n-1] with no arcs. *)

val add_edge : t -> int -> int -> int -> unit
(** [add_edge t u v cap] adds a directed arc with the given capacity (and
    its residual reverse arc of capacity 0). [cap] must be ≥ 0; use
    {!infinite} for effectively unbounded arcs. *)

val infinite : int
(** A capacity larger than any sum of finite capacities we build
    ([max_int / 4]). *)

val max_flow : t -> source:int -> sink:int -> int
(** Runs Dinic (BFS level graph + blocking DFS). The network's residual
    state is consumed: call on a freshly built network. *)

val min_cut_side : t -> source:int -> bool array
(** After {!max_flow}, the source side of a minimum cut: vertices reachable
    from the source in the residual graph. *)
