(** Edge connectivity via max-flow (Menger's theorem).

    Expanders are highly connected; this gives the exact global edge
    connectivity λ(G), used to sanity-check generated hosts (a d-regular
    expander should have λ = d) and as another from-scratch substrate on
    top of {!Flow}. *)

val st_edge_connectivity : Graph.t -> int -> int -> int
(** Max number of edge-disjoint u–v paths = min u–v cut (unit capacities
    both directions). *)

val edge_connectivity : Graph.t -> int
(** Global λ(G) = min over t ≠ 0 of the 0–t cut (n − 1 flow runs).
    Returns 0 for disconnected or single-vertex graphs. *)

val is_k_edge_connected : Graph.t -> int -> bool
