let st_edge_connectivity g u v =
  if u = v then invalid_arg "Connectivity.st_edge_connectivity: same vertex";
  let f = Flow.create (Graph.n g) in
  (* An undirected unit edge = one unit of capacity in each direction. *)
  Graph.iter_edges g (fun a b ->
      Flow.add_edge f a b 1;
      Flow.add_edge f b a 1);
  Flow.max_flow f ~source:u ~sink:v

let edge_connectivity g =
  let n = Graph.n g in
  if n <= 1 then 0
  else begin
    (* λ(G) = min over t of mincut(0, t): vertex 0 is on one side of any
       global minimum cut, some t on the other. *)
    let best = ref max_int in
    for t = 1 to n - 1 do
      best := min !best (st_edge_connectivity g 0 t)
    done;
    !best
  end

let is_k_edge_connected g k = edge_connectivity g >= k
