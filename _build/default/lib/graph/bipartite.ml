module Bitset = Wx_util.Bitset

type t = { s : int; n : int; m : int; adj_s : int array array; adj_n : int array array }

let of_edges ~s ~n edges =
  if s < 0 || n < 0 then invalid_arg "Bipartite.of_edges";
  let seen = Hashtbl.create (2 * List.length edges) in
  let ds = Array.make s 0 and dn = Array.make n 0 in
  let clean =
    List.filter
      (fun (u, w) ->
        if u < 0 || u >= s || w < 0 || w >= n then
          invalid_arg "Bipartite.of_edges: endpoint out of range";
        if Hashtbl.mem seen (u, w) then false
        else begin
          Hashtbl.add seen (u, w) ();
          ds.(u) <- ds.(u) + 1;
          dn.(w) <- dn.(w) + 1;
          true
        end)
      edges
  in
  let adj_s = Array.init s (fun u -> Array.make ds.(u) 0) in
  let adj_n = Array.init n (fun w -> Array.make dn.(w) 0) in
  let fs = Array.make s 0 and fn = Array.make n 0 in
  List.iter
    (fun (u, w) ->
      adj_s.(u).(fs.(u)) <- w;
      fs.(u) <- fs.(u) + 1;
      adj_n.(w).(fn.(w)) <- u;
      fn.(w) <- fn.(w) + 1)
    clean;
  Array.iter (fun a -> Array.sort compare a) adj_s;
  Array.iter (fun a -> Array.sort compare a) adj_n;
  { s; n; m = List.length clean; adj_s; adj_n }

let s_count t = t.s
let n_count t = t.n
let m t = t.m
let deg_s t u = Array.length t.adj_s.(u)
let deg_n t w = Array.length t.adj_n.(w)
let neighbors_s t u = t.adj_s.(u)
let neighbors_n t w = t.adj_n.(w)

let max_arr f k =
  let d = ref 0 in
  for i = 0 to k - 1 do
    d := max !d (f i)
  done;
  !d

let max_deg_s t = max_arr (deg_s t) t.s
let max_deg_n t = max_arr (deg_n t) t.n
let delta_s t = if t.s = 0 then 0.0 else float_of_int t.m /. float_of_int t.s
let delta_n t = if t.n = 0 then 0.0 else float_of_int t.m /. float_of_int t.n
let beta t = if t.s = 0 then 0.0 else float_of_int t.n /. float_of_int t.s

let mem_edge t u w =
  let a = t.adj_s.(u) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = w then found := true else if a.(mid) < w then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_edges t f =
  for u = 0 to t.s - 1 do
    Array.iter (fun w -> f u w) t.adj_s.(u)
  done

let has_isolated t =
  let rec go_s u = u < t.s && (deg_s t u = 0 || go_s (u + 1)) in
  let rec go_n w = w < t.n && (deg_n t w = 0 || go_n (w + 1)) in
  go_s 0 || go_n 0

let sub_instance t ss ns =
  let s_map = Bitset.to_array ss in
  let n_map = Bitset.to_array ns in
  let s_back = Array.make t.s (-1) and n_back = Array.make t.n (-1) in
  Array.iteri (fun i u -> s_back.(u) <- i) s_map;
  Array.iteri (fun i w -> n_back.(w) <- i) n_map;
  let es = ref [] in
  Array.iteri
    (fun i u ->
      Array.iter (fun w -> if n_back.(w) >= 0 then es := (i, n_back.(w)) :: !es) t.adj_s.(u))
    s_map;
  (of_edges ~s:(Array.length s_map) ~n:(Array.length n_map) !es, s_map, n_map)

let to_graph t =
  let es = ref [] in
  iter_edges t (fun u w -> es := (u, t.s + w) :: !es);
  let g = Graph.of_edges (t.s + t.n) !es in
  (g, Array.init t.s (fun i -> i), Array.init t.n (fun i -> t.s + i))

let of_set_neighborhood g s =
  let n = Graph.n g in
  let in_s = s in
  (* N = Γ⁻(S): external neighbors of S. *)
  let nb = Bitset.create n in
  Bitset.iter
    (fun v -> Graph.iter_neighbors g v (fun w -> if not (Bitset.mem in_s w) then Bitset.add_inplace nb w))
    s;
  let s_map = Bitset.to_array s in
  let n_map = Bitset.to_array nb in
  let n_back = Array.make n (-1) in
  Array.iteri (fun i w -> n_back.(w) <- i) n_map;
  let es = ref [] in
  Array.iteri
    (fun i v ->
      Graph.iter_neighbors g v (fun w -> if n_back.(w) >= 0 then es := (i, n_back.(w)) :: !es))
    s_map;
  (of_edges ~s:(Array.length s_map) ~n:(Array.length n_map) !es, s_map, n_map)

let pp fmt t =
  Format.fprintf fmt "bipartite(|S|=%d, |N|=%d, m=%d, δS=%.2f, δN=%.2f)" t.s t.n t.m
    (delta_s t) (delta_n t)
