module Bitset = Wx_util.Bitset
module Combi = Wx_util.Combi

let edges_within g s =
  let acc = ref 0 in
  Bitset.iter
    (fun v ->
      Graph.iter_neighbors g v (fun w -> if w > v && Bitset.mem s w then incr acc))
    s;
  !acc

let density_of_subset g s =
  let k = Bitset.cardinal s in
  if k <= 1 then 0.0 else float_of_int (edges_within g s) /. float_of_int (k - 1)

let avg_degree_of_subset g s =
  let k = Bitset.cardinal s in
  if k = 0 then 0.0 else 2.0 *. float_of_int (edges_within g s) /. float_of_int k

let exact g =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Arboricity.exact: n too large (max 20)";
  if n <= 1 then 0
  else begin
    let best = ref 0 in
    Combi.iter_all_subsets n (fun mask ->
        (* Count members and internal edges straight off the mask. *)
        let k = ref 0 in
        for v = 0 to n - 1 do
          if mask lsr v land 1 = 1 then incr k
        done;
        if !k >= 2 then begin
          let e = ref 0 in
          Graph.iter_edges g (fun u v ->
              if mask lsr u land 1 = 1 && mask lsr v land 1 = 1 then incr e);
          let a = (!e + !k - 2) / (!k - 1) in
          if a > !best then best := a
        end);
    !best
  end

(* Min-degree peeling. Returns the vertex removal order and, per step, the
   number of edges and vertices remaining before the removal. *)
let peel g =
  let n = Graph.n g in
  let deg = Array.init n (Graph.degree g) in
  let removed = Array.make n false in
  let order = Array.make n 0 in
  let degeneracy = ref 0 in
  let remaining_edges = Array.make n 0 in
  let remaining_vertices = Array.make n 0 in
  let m = ref (Graph.m g) in
  for step = 0 to n - 1 do
    (* Linear-scan min-degree extraction: O(n²) total, fine at our sizes. *)
    let v = ref (-1) in
    for u = 0 to n - 1 do
      if (not removed.(u)) && (!v = -1 || deg.(u) < deg.(!v)) then v := u
    done;
    let v = !v in
    remaining_edges.(step) <- !m;
    remaining_vertices.(step) <- n - step;
    degeneracy := max !degeneracy deg.(v);
    order.(step) <- v;
    removed.(v) <- true;
    Graph.iter_neighbors g v (fun w ->
        if not removed.(w) then begin
          deg.(w) <- deg.(w) - 1;
          decr m
        end)
  done;
  (order, remaining_edges, remaining_vertices, !degeneracy)

let lower_bound_peeling g =
  if Graph.n g <= 1 then 0
  else begin
    let _, rem_e, rem_v, _ = peel g in
    let best = ref 0 in
    Array.iteri
      (fun i e ->
        let k = rem_v.(i) in
        if k >= 2 then begin
          let a = (e + k - 2) / (k - 1) in
          if a > !best then best := a
        end)
      rem_e;
    !best
  end

let degeneracy g =
  if Graph.n g = 0 then 0
  else begin
    let _, _, _, d = peel g in
    d
  end

let paper_lower_bound ~delta ~beta =
  let d = float_of_int delta in
  Float.min (d /. beta) (d *. beta)
