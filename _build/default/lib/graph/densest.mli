(** Exact maximum subgraph density via parametric flow (Goldberg's
    construction + Dinkelbach iteration).

    The paper defines arboricity as [max_U ⌈|E(U)|/(|U|−1)⌉] (§2.1); by
    Nash–Williams this equals the minimum number of forests covering the
    graph. {!Arboricity.exact} enumerates subsets and stops at n = 20;
    this module computes the same maximum {e exactly} in polynomial time
    for any n: whether some [U] has [|E(U)| > g·(|U|−1)] is a min-cut
    question on Goldberg's network (scaled to integer capacities when [g]
    is rational), and Dinkelbach iteration converges to the optimum in
    finitely many cuts because each iterate is a realized density. *)

val max_density : ?offset:int -> Graph.t -> int * int * Wx_util.Bitset.t
(** [max_density ~offset g] maximizes [|E(U)| / (|U| − offset)] over
    vertex sets with [|U| > offset]; returns [(num, den, u)] with the
    optimum equal to [num/den] attained by [u] ([|E(u)| = num],
    [|u| − offset = den]). [offset] defaults to 1 (the paper's arboricity
    denominator); [offset = 0] gives the classic densest subgraph.
    Raises [Invalid_argument] if the graph has no feasible set
    (fewer than [offset + 1] vertices) and returns [(0, 1, ∅)]-style
    degenerate answers only for edgeless graphs. *)

val arboricity_exact : Graph.t -> int
(** [⌈max_U |E(U)|/(|U|−1)⌉] — exact arboricity at any size. 0 for graphs
    with ≤ 1 vertex or no edges. *)
