(** The probabilistic-method solver of Lemmas 4.2 / 4.3 (Theorem 1.1).

    Regime β ≥ 1 (Lemma 4.2): restrict N to vertices of degree ≤ 2δN,
    bucket them by ⌊log₂ deg⌋, take the largest bucket [N_j], and sample
    [S′ ⊆ S] with inclusion probability [2^{-j}]. Each vertex of [N_j] is
    uniquely covered with probability ≥ e⁻³, so the expected coverage is
    Ω(|N_j|) = Ω(|N| / log 2δN). The solver repeats the sampling and keeps
    the best draw.

    Regime β < 1 (Lemma 4.3): drop S-vertices of degree > 2δS, greedily
    extract a subcover S″ with |S″| ≤ |Γ(S′)|, and run the β ≥ 1 argument
    on the induced instance.

    This is also the paper's simple solution to the Spokesmen Election
    problem (§4.2.1). *)

val bucket_of_degree : int -> int
(** ⌊log₂ d⌋ for d ≥ 1. *)

val buckets : Wx_graph.Bipartite.t -> (int * int array) array
(** Degree buckets of the N-side restricted to degree ≤ 2δN: pairs
    [(j, members)] for non-empty buckets, ascending j. *)

val largest_bucket : Wx_graph.Bipartite.t -> int * int array
(** The (j, members) pair of maximum size; raises [Invalid_argument] on an
    instance with an empty N side. *)

val solve_direct :
  ?reps:int -> ?all_buckets:bool -> Wx_util.Rng.t -> Wx_graph.Bipartite.t -> Solver.result
(** The Lemma 4.2 sampler. [reps] (default 32) repetitions; with
    [all_buckets] (default false) every bucket is tried, not only the
    largest — still within the paper's argument, just a better constant. *)

val greedy_subcover : Wx_graph.Bipartite.t -> Wx_util.Bitset.t -> Wx_util.Bitset.t
(** [greedy_subcover t s'] iterates over [s'] adding a vertex only if it
    covers a yet-uncovered N-vertex; the result [S″ ⊆ S′] satisfies
    [Γ(S″) = Γ(S′)] and [|S″| ≤ |Γ(S′)|] (Lemma 4.3's step). *)

val solve_reduced : ?reps:int -> ?all_buckets:bool -> Wx_util.Rng.t -> Wx_graph.Bipartite.t -> Solver.result
(** The Lemma 4.3 reduction followed by [solve_direct]. *)

val solve : ?reps:int -> ?all_buckets:bool -> Wx_util.Rng.t -> Wx_graph.Bipartite.t -> Solver.result
(** Dispatch on the regime: [solve_direct] when |N| ≥ |S|, otherwise the
    better of [solve_reduced] and [solve_direct]. *)
