module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite

(* Incremental objective state: per-N coverage counts and the current
   number of uniquely covered vertices. *)
type state = { cnt : int array; mutable uniq : int; chosen : Bitset.t }

let make_state t =
  { cnt = Array.make (Bipartite.n_count t) 0; uniq = 0; chosen = Bitset.create (Bipartite.s_count t) }

let gain_of_add t st u =
  Array.fold_left
    (fun acc w ->
      match st.cnt.(w) with 0 -> acc + 1 | 1 -> acc - 1 | _ -> acc)
    0 (Bipartite.neighbors_s t u)

let gain_of_remove t st u =
  Array.fold_left
    (fun acc w ->
      match st.cnt.(w) with 1 -> acc - 1 | 2 -> acc + 1 | _ -> acc)
    0 (Bipartite.neighbors_s t u)

let apply_add t st u =
  Bitset.add_inplace st.chosen u;
  Array.iter
    (fun w ->
      (match st.cnt.(w) with 0 -> st.uniq <- st.uniq + 1 | 1 -> st.uniq <- st.uniq - 1 | _ -> ());
      st.cnt.(w) <- st.cnt.(w) + 1)
    (Bipartite.neighbors_s t u)

let apply_remove t st u =
  Bitset.remove_inplace st.chosen u;
  Array.iter
    (fun w ->
      (match st.cnt.(w) with 1 -> st.uniq <- st.uniq - 1 | 2 -> st.uniq <- st.uniq + 1 | _ -> ());
      st.cnt.(w) <- st.cnt.(w) - 1)
    (Bipartite.neighbors_s t u)

let greedy_pass t st =
  let s = Bipartite.s_count t in
  let continue_ = ref true in
  while !continue_ do
    let best_u = ref (-1) and best_g = ref 0 in
    for u = 0 to s - 1 do
      if not (Bitset.mem st.chosen u) then begin
        let g = gain_of_add t st u in
        if g > !best_g then begin
          best_g := g;
          best_u := u
        end
      end
    done;
    if !best_u >= 0 then apply_add t st !best_u else continue_ := false
  done

let removal_pass t st =
  let changed = ref false in
  Bitset.iter
    (fun u -> if gain_of_remove t st u > 0 then begin
         apply_remove t st u;
         changed := true
       end)
    (Bitset.copy st.chosen);
  !changed

let solve t =
  let st = make_state t in
  greedy_pass t st;
  Solver.make t "greedy" st.chosen

let solve_with_removal t =
  let st = make_state t in
  greedy_pass t st;
  let continue_ = ref true in
  (* Alternate removal and add passes until neither changes anything; each
     accepted move strictly increases the objective, so this terminates. *)
  while !continue_ do
    let removed = removal_pass t st in
    let before = st.uniq in
    greedy_pass t st;
    continue_ := removed || st.uniq > before
  done;
  Solver.make t "greedy-local" st.chosen
