module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite
module Nbhd = Wx_expansion.Nbhd

type result = { name : string; chosen : Bitset.t; covered : int }

let evaluate t s' = Nbhd.Bip.unique_count t s'
let make t name chosen = { name; chosen; covered = evaluate t chosen }
let best a b = if b.covered > a.covered then b else a

let fraction t r =
  let n = Bipartite.n_count t in
  if n = 0 then 0.0 else float_of_int r.covered /. float_of_int n
