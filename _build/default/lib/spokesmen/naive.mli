(** Lemma A.1's procedure: guaranteed unique coverage ≥ γ/∆.

    Repeatedly pick the N-vertex [v] of minimum remaining degree; one of its
    remaining S-neighbors [w] is promoted to the spokesmen set, the rest of
    [Γ(v, Stmp)] is discarded, and N-vertices that would conflict with [w]
    are removed. The procedure maintains invariants (I1)–(I4) of the paper;
    {!Trace} exposes the final state so tests can check them. *)

module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite

type trace = {
  s_uni : Bitset.t;  (** promoted spokesmen (subset of S) *)
  n_uni : Bitset.t;  (** N-vertices guaranteed a unique spokesman *)
  steps : int;  (** iterations executed *)
}

val run : Bipartite.t -> trace
(** Isolated N-vertices (degree 0) are excluded up front — they can never
    be covered; the paper's framework assumes minimum degree 1, where this
    changes nothing. *)

val solve : Bipartite.t -> Solver.result
(** [run] packaged as a solver; the objective is re-evaluated on the full
    instance, so it can only exceed [|n_uni|]. *)
