(** Common result type for spokesmen-election solvers.

    The Spokesmen Election problem (Chlamtac–Weinstein; §4.2.1): given a
    bipartite graph [(S, N, E)], find [S′ ⊆ S] maximizing the number of
    unique neighbors [|Γ¹(S′)|] in N. NP-hard in general; each solver in
    this library realizes one of the paper's existence arguments as an
    algorithm. *)

module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite

type result = {
  name : string;  (** which solver produced it *)
  chosen : Bitset.t;  (** the subset S′ of side S *)
  covered : int;  (** |Γ¹_S(S′)| — N-vertices uniquely covered *)
}

val evaluate : Bipartite.t -> Bitset.t -> int
(** Objective value of an arbitrary candidate. *)

val make : Bipartite.t -> string -> Bitset.t -> result
(** Package a candidate with its (re-)evaluated objective. *)

val best : result -> result -> result
(** Higher [covered] wins; ties keep the first. *)

val fraction : Bipartite.t -> result -> float
(** [covered / |N|] — the unit in which the paper's bounds are stated. *)
