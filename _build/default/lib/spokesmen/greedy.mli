(** Marginal-gain greedy solver for spokesmen election.

    Repeatedly add the S-vertex whose inclusion increases the unique-
    coverage objective the most; stop when no vertex has positive marginal
    gain. Not covered by a paper guarantee (the objective is not
    submodular — adding a vertex can destroy earlier unique coverage), but
    a strong practical baseline for E9 and the broadcast scheduler. *)

val solve : Wx_graph.Bipartite.t -> Solver.result

val solve_with_removal : Wx_graph.Bipartite.t -> Solver.result
(** Greedy add followed by interleaved best-single-removal passes until a
    local optimum under single add/remove moves. *)
