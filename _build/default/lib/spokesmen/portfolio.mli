(** Best-of-all-solvers portfolio.

    Runs every polynomial solver in the library on an instance and returns
    the best candidate. This is what the radio-broadcast upper-bound
    protocol ({!Wx_radio.Spokesmen_cast}) uses each round, and what E7/E9
    report as "ours (best)". *)

module Bipartite = Wx_graph.Bipartite

val solvers : (string * (Wx_util.Rng.t -> Bipartite.t -> Solver.result)) list
(** The constituent solvers, by name: decay, decay-all-buckets, naive,
    partition, partition-capped, partition-recursive, buckets,
    buckets-all-classes, greedy, greedy-local, anneal. *)

val solve : ?reps:int -> Wx_util.Rng.t -> Bipartite.t -> Solver.result
(** Run all of them; [reps] is passed to the randomized ones. *)

val solve_each : ?reps:int -> Wx_util.Rng.t -> Bipartite.t -> (string * Solver.result) list
(** Per-solver results, for side-by-side comparison tables. *)
