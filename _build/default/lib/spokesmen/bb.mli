(** Branch-and-bound exact spokesmen solver.

    DFS over include/exclude decisions on S (highest degree first), with
    the admissible bound

      current unique + #{w : cnt(w) = 0 and w still reachable from
                          undecided S-vertices}

    maintained incrementally. Proves optimality far beyond the 2^|S|
    Gray-code enumeration on sparse instances (|S| up to ~40 at the E9
    densities); a node budget turns it into an anytime solver. *)

type outcome = Proved_optimal | Budget_exhausted

val solve :
  ?node_limit:int -> Wx_graph.Bipartite.t -> Solver.result * outcome
(** Default node limit 20 million decision nodes. The result is the best
    solution found; [Proved_optimal] certifies it is the maximum. *)

val optimum : ?node_limit:int -> Wx_graph.Bipartite.t -> int option
(** [Some value] only when optimality was proved. *)
