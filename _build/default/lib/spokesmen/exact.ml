module Bipartite = Wx_graph.Bipartite
module Bip_measure = Wx_expansion.Bip_measure

exception Too_large of string

let solve ?work_limit t =
  match Bip_measure.exact_max_unique ?work_limit t with
  | _, best_set -> Solver.make t "exact" best_set
  | exception Bip_measure.Too_large msg -> raise (Too_large msg)

let optimum ?work_limit t = (solve ?work_limit t).Solver.covered
