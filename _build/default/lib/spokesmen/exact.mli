(** Optimal spokesmen set by exhaustive search.

    The problem is NP-hard ([8]); this solver is for small instances
    (|S| ≲ 24), where it provides the ground truth against which the
    polynomial solvers' approximation quality is measured (experiment E9). *)

module Bipartite = Wx_graph.Bipartite

exception Too_large of string

val solve : ?work_limit:int -> Bipartite.t -> Solver.result
(** Gray-code enumeration of all 2^|S| subsets with incremental coverage
    counts; default work limit 2^24 enumerated subsets. *)

val optimum : ?work_limit:int -> Bipartite.t -> int
(** Just the optimal coverage value. *)
