(** Procedure Partition (Appendix A.1.2) and its derived solvers.

    The procedure partitions N into (Nuni, Nmany, Ntmp) and S into
    (Suni, Stmp) by greedily promoting the S-vertex of maximum
    [gain(v) = |Ntmp(v)| − 2·|Nuni(v)|], maintaining the partition
    conditions:

    - (P1) every vertex of Nuni has a unique neighbor in Suni;
    - (P2) every vertex of Ntmp has a neighbor in Stmp and none in Suni;
    - (P3) |Nuni| ≥ |Nmany|;
    - (P4) on termination, Ntmp = ∅ or |Etmp| ≤ 2|Euni|.

    Three solvers build on it: the raw procedure, the degree-capped variant
    of Lemma A.3 (≥ γ/(8δ) coverage), and the recursive variant of
    Lemma A.13 (≥ γ/(9·log 2δ) coverage). *)

module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite

type state = {
  s_uni : Bitset.t;
  s_tmp : Bitset.t;
  n_uni : Bitset.t;
  n_many : Bitset.t;
  n_tmp : Bitset.t;
  steps : int;
}

val run : ?restrict_n:Bitset.t -> Bipartite.t -> state
(** Run the procedure; [restrict_n] restricts attention to a subset of N
    (vertices outside it are ignored entirely), which is how Lemmas A.3 and
    A.11 apply the procedure to [N^{2δ}]. *)

val gain : Bipartite.t -> state -> int -> int
(** [gain t st v] for [v ∈ s_tmp] — exposed for tests (all gains are ≤ 0 at
    termination unless [n_tmp] is empty). *)

val edges_tmp : Bipartite.t -> state -> int
(** |Etmp|: edges between [s_tmp] and [n_tmp]. *)

val edges_uni : Bipartite.t -> state -> int
(** |Euni|: edges between [s_tmp] and [n_uni]. *)

val check_conditions : Bipartite.t -> state -> (string * bool) list
(** Evaluate (P1)–(P4); used by tests and by the bench's self-check. *)

val solve : Bipartite.t -> Solver.result
(** The raw procedure's [s_uni] as a spokesmen candidate. *)

val solve_degree_capped : Bipartite.t -> Solver.result
(** Lemma A.3: run on [N^{2δ}] (N-vertices of degree ≤ 2·δN). *)

val solve_recursive : ?max_depth:int -> Bipartite.t -> Solver.result
(** Lemma A.13 / Corollary A.15: after the procedure, if [n_tmp] is
    non-empty, also recurse on the induced (s_tmp, n_tmp) instance and keep
    whichever candidate uniquely covers more. (The paper's proof chooses one
    branch by comparing γ/log 2δ ratios; taking the better of both is the
    same argument with a max instead of a case split.) *)

val solve_threshold : t_param:float -> Bipartite.t -> Solver.result
(** Lemma A.11's variant: run the procedure on [N^{tδ}] (N-vertices of
    degree ≤ t·δN). With [t_param = 2] this is {!solve_degree_capped};
    larger [t] trades the per-vertex degree cap against the fraction of N
    retained — Corollaries A.8/A.12 optimize that trade. *)
