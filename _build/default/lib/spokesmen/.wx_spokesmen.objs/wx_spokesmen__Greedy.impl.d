lib/spokesmen/greedy.ml: Array Solver Wx_graph Wx_util
