lib/spokesmen/partition.mli: Solver Wx_graph Wx_util
