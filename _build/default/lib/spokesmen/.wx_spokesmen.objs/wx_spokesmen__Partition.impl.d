lib/spokesmen/partition.ml: Array Printf Solver Wx_graph Wx_util
