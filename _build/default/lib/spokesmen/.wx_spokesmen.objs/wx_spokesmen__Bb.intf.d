lib/spokesmen/bb.mli: Solver Wx_graph
