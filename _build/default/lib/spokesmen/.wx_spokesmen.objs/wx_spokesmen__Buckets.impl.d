lib/spokesmen/buckets.ml: Array Float Hashtbl List Partition Solver Wx_expansion Wx_graph Wx_util
