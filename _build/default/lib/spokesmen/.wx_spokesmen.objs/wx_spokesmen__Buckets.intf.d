lib/spokesmen/buckets.mli: Solver Wx_graph
