lib/spokesmen/exact.ml: Solver Wx_expansion Wx_graph
