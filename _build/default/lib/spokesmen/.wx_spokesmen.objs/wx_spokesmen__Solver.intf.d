lib/spokesmen/solver.mli: Wx_graph Wx_util
