lib/spokesmen/naive.mli: Solver Wx_graph Wx_util
