lib/spokesmen/greedy.mli: Solver Wx_graph
