lib/spokesmen/naive.ml: Array List Seq Solver Wx_graph Wx_util
