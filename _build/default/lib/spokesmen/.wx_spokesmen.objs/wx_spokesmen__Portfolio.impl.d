lib/spokesmen/portfolio.ml: Anneal Buckets Decay Greedy List Naive Partition Solver Wx_graph
