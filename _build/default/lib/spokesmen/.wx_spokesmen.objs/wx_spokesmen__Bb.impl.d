lib/spokesmen/bb.ml: Array Solver Wx_graph Wx_util
