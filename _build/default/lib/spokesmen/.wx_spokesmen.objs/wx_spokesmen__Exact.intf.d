lib/spokesmen/exact.mli: Solver Wx_graph
