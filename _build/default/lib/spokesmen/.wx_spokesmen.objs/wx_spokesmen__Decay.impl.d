lib/spokesmen/decay.ml: Array Hashtbl List Solver Wx_expansion Wx_graph Wx_util
