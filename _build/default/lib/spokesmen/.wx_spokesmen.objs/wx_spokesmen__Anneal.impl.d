lib/spokesmen/anneal.ml: Array Greedy Solver Wx_graph Wx_util
