lib/spokesmen/decay.mli: Solver Wx_graph Wx_util
