lib/spokesmen/anneal.mli: Solver Wx_graph Wx_util
