lib/spokesmen/portfolio.mli: Solver Wx_graph Wx_util
