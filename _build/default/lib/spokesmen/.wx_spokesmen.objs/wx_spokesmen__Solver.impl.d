lib/spokesmen/solver.ml: Wx_expansion Wx_graph Wx_util
