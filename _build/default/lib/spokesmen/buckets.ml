module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite
module Bounds = Wx_expansion.Bounds

let classes ?(c = Bounds.c_star) t =
  if c <= 1.0 then invalid_arg "Buckets.classes: c must be > 1";
  let tbl = Hashtbl.create 8 in
  for w = 0 to Bipartite.n_count t - 1 do
    let d = Bipartite.deg_n t w in
    if d >= 1 then begin
      (* Class i: degree in [c^{i-1}, c^i). d=1 lands in class 1. *)
      let i = 1 + int_of_float (Float.floor (log (float_of_int d) /. log c)) in
      let cur = try Hashtbl.find tbl i with Not_found -> [] in
      Hashtbl.replace tbl i (w :: cur)
    end
  done;
  let pairs = Hashtbl.fold (fun i ws acc -> (i, Array.of_list (List.rev ws)) :: acc) tbl [] in
  Array.of_list (List.sort compare pairs)

let largest_class ?c t =
  let cs = classes ?c t in
  if Array.length cs = 0 then invalid_arg "Buckets.largest_class: empty N side";
  Array.fold_left
    (fun (bi, bw) (i, ws) -> if Array.length ws > Array.length bw then (i, ws) else (bi, bw))
    cs.(0) cs

let solve_class t members =
  let n = Bipartite.n_count t in
  let restrict = Bitset.of_array n members in
  let st = Partition.run ~restrict_n:restrict t in
  Solver.make t "buckets" st.Partition.s_uni

let solve ?c t =
  let _, members = largest_class ?c t in
  solve_class t members

let solve_all_classes ?c t =
  let cs = classes ?c t in
  if Array.length cs = 0 then invalid_arg "Buckets.solve_all_classes: empty N side";
  Array.fold_left
    (fun acc (_, members) -> Solver.best acc (solve_class t members))
    (solve_class t (snd cs.(0)))
    cs
