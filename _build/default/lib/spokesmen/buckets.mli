(** Degree-class solvers (Lemma A.5, Corollaries A.6–A.10).

    Partition the N side into degree classes [N^(i) = {w : deg(w,S) ∈
    [c^{i-1}, c^i)}]; within one class the degrees are within a factor [c]
    of each other ("convenient" degrees), and a large uniquely-covered
    subset exists. Corollary A.7 optimizes the base at [c ≈ 3.59112],
    giving coverage ≥ 0.20087·γ/log₂∆. *)

module Bipartite = Wx_graph.Bipartite

val classes : ?c:float -> Bipartite.t -> (int * int array) array
(** Non-empty degree classes [(i, members)], i ≥ 1, ascending. The top
    class is closed on the right, as in Lemma A.5. *)

val largest_class : ?c:float -> Bipartite.t -> int * int array

val solve_class : Bipartite.t -> int array -> Solver.result
(** Run Procedure Partition restricted to one class. *)

val solve : ?c:float -> Bipartite.t -> Solver.result
(** Largest class only (the Corollary A.6 argument). *)

val solve_all_classes : ?c:float -> Bipartite.t -> Solver.result
(** Try every class, keep the best — same guarantee, better constants. *)
