(** Simulated-annealing solver for spokesmen election.

    Single-vertex flip moves over S, Metropolis acceptance with a
    geometric cooling schedule, seeded from the greedy solution. The
    practical quality ceiling against which the paper's constructive
    procedures are measured in E9's extended table. *)

val solve :
  ?steps:int -> ?t0:float -> ?cooling:float -> Wx_util.Rng.t -> Wx_graph.Bipartite.t ->
  Solver.result
(** Defaults: [steps = 200·|S|], [t0 = 2.0], [cooling] chosen so the
    temperature decays to ~0.01 by the final step. Deterministic given the
    rng. *)
