module Bitset = Wx_util.Bitset
module Bipartite = Wx_graph.Bipartite

type trace = { s_uni : Bitset.t; n_uni : Bitset.t; steps : int }

let run t =
  let s = Bipartite.s_count t and n = Bipartite.n_count t in
  let s_tmp = Bitset.full s and n_tmp = Bitset.full n in
  (* Isolated N-vertices can never be covered; exclude them up front (the
     paper's framework assumes minimum degree 1, so this only widens the
     procedure's domain — the γ/∆ guarantee then counts coverable N). *)
  for w = 0 to n - 1 do
    if Bipartite.deg_n t w = 0 then Bitset.remove_inplace n_tmp w
  done;
  let s_uni = Bitset.create s and n_uni = Bitset.create n in
  let steps = ref 0 in
  (* Γ(v, Stmp) as a sorted list of live S-neighbors. *)
  let live_nbrs v =
    Array.to_list (Array.of_seq
      (Seq.filter (Bitset.mem s_tmp) (Array.to_seq (Bipartite.neighbors_n t v))))
  in
  while not (Bitset.is_empty n_tmp) do
    incr steps;
    (* v ∈ Ntmp minimizing |Γ(v, Stmp)|. Invariant (I4) guarantees ≥ 1. *)
    let v = ref (-1) and vdeg = ref max_int in
    Bitset.iter
      (fun w ->
        let d = List.length (live_nbrs w) in
        if d < !vdeg then begin
          v := w;
          vdeg := d
        end)
      n_tmp;
    let v = !v in
    let gv = live_nbrs v in
    assert (gv <> []);
    let gv_set = Bitset.of_list s gv in
    (* Qv: N-vertices of Ntmp incident on Γ(v, Stmp); split into Q'v (same
       live neighborhood as v) and Q''v. *)
    let q'v = ref [] and q''v = ref [] in
    Bitset.iter
      (fun u ->
        let nbrs = live_nbrs u in
        let touches = List.exists (fun x -> Bitset.mem gv_set x) nbrs in
        if touches then
          if nbrs = gv then q'v := u :: !q'v else q''v := u :: !q''v)
      n_tmp;
    (* Promote one vertex w of Γ(v, Stmp); discard the others from Stmp. *)
    let w = List.hd gv in
    List.iter (fun x -> Bitset.remove_inplace s_tmp x) gv;
    Bitset.add_inplace s_uni w;
    (* Q'v moves to Nuni; neighbors of w inside Q''v leave Ntmp entirely. *)
    List.iter
      (fun u ->
        Bitset.remove_inplace n_tmp u;
        Bitset.add_inplace n_uni u)
      !q'v;
    List.iter
      (fun u ->
        if Array.exists (fun x -> x = w) (Bipartite.neighbors_n t u) then
          Bitset.remove_inplace n_tmp u)
      !q''v
  done;
  { s_uni; n_uni; steps = !steps }

let solve t =
  let tr = run t in
  Solver.make t "naive" tr.s_uni
