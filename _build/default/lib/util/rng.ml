type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only for seeding / splitting. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a child from two raw outputs folded through splitmix, so parent and
     child streams do not share xoshiro state. *)
  let a = int64 t and b = int64 t in
  of_seed64 (Int64.logxor a (Int64.mul b 0x9E3779B97F4A7C15L))

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top multiple of [bound] below 2^62. *)
  let limit = (max_int / bound) * bound in
  let rec draw () =
    let v = bits t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = if p >= 1.0 then true else if p <= 0.0 then false else float t < p

let geometric t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t in
    (* Inverse CDF: floor(log(1-u) / log(1-p)). *)
    let v = log1p (-.u) /. log1p (-.p) in
    int_of_float (Float.floor v)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_without_replacement t n k =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) draws, exact uniformity over k-subsets. *)
  let chosen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    let v = if Hashtbl.mem chosen v then j else v in
    Hashtbl.add chosen v ();
    out.(!idx) <- v;
    incr idx
  done;
  shuffle t out;
  out

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let subset_bernoulli t n p =
  if p <= 0.0 then []
  else if p >= 1.0 then List.init n (fun i -> i)
  else begin
    (* Skip-ahead sampling: jump between included indices with geometric
       gaps, so cost is O(np) rather than O(n) when p is small. *)
    let acc = ref [] in
    let i = ref (geometric t p) in
    while !i < n do
      acc := !i :: !acc;
      i := !i + 1 + geometric t p
    done;
    List.rev !acc
  end
