(** Small float helpers shared across the expansion bounds. *)

val log2 : float -> float
(** Base-2 logarithm (the paper's [log] is base 2 throughout). *)

val log2i_ceil : int -> int
(** [log2i_ceil n] is the least [k] with [2^k >= n]; requires [n >= 1]. *)

val log2i_floor : int -> int
(** [log2i_floor n] is the greatest [k] with [2^k <= n]; requires [n >= 1]. *)

val is_pow2 : int -> bool

val safe_div : float -> float -> float
(** [safe_div a b] is [a /. b], or [nan] when [b = 0]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Absolute-or-relative comparison with default [eps = 1e-9]. *)

val clamp : lo:float -> hi:float -> float -> float
