lib/util/floatx.mli:
