lib/util/rng.mli:
