lib/util/combi.mli:
