lib/util/table.mli:
