lib/util/combi.ml: Array List
