lib/util/pq.mli:
