lib/util/bitset.mli: Format Rng
