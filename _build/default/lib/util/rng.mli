(** Deterministic, splittable pseudo-random number generator.

    All randomized code in this repository threads an explicit [Rng.t]; there
    is no hidden global state, so every experiment in [EXPERIMENTS.md] is
    reproducible from its printed seed.

    The core generator is xoshiro256** (Blackman & Vigna) implemented on
    [int64]; seeding and splitting use splitmix64, the recommended companion
    seeding generator. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed] by running
    splitmix64 to fill the four xoshiro words. Distinct seeds give
    (practically) independent streams. *)

val split : t -> t
(** [split t] returns a fresh generator seeded from the next outputs of [t].
    The child stream is independent of further draws from [t]; use it to hand
    private randomness to sub-computations (e.g. one per simulated node). *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the same
    future stream. Used by tests that check determinism. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 62-bit non-negative integer (uniform on [0, 2^62)). *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); [bound] must be positive.
    Uses rejection sampling, so the distribution is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float
(** Uniform float in [0, 1), with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success in
    Bernoulli(p) trials (support {0, 1, ...}). [p] must be in (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t n k] draws [k] distinct values from
    [0..n-1], in random order. Requires [0 <= k <= n]. Uses Floyd's
    algorithm, so it is O(k) in expectation for any [n]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val subset_bernoulli : t -> int -> float -> int list
(** [subset_bernoulli t n p] includes each of [0..n-1] independently with
    probability [p]; returns the chosen indices in increasing order. This is
    the sampling primitive of the decay argument (Lemma 4.2). *)
