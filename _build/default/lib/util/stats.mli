(** Descriptive statistics for experiment reporting.

    Monte-Carlo experiments (e.g. broadcast-time distributions in the Section
    5 reproduction) report summaries computed here. All functions raise
    [Invalid_argument] on empty input. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (denominator [n-1]); 0 when [n = 1]. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float

val median : float array -> float
(** Linear-interpolated median. Does not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], by linear interpolation between
    order statistics. Does not mutate its argument. *)

val of_ints : int array -> float array

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Streaming mean/variance accumulator (Welford), for loops that do not want
    to materialize samples. *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

val histogram : float array -> bins:int -> (float * float * int) array
(** [histogram xs ~bins] returns [(lo, hi, count)] per bin over the data
    range; the last bin is closed on the right. *)
