type align = Left | Right

type row = Cells of string list | Rule

type t = { headers : string list; aligns : align array; mutable rows : row list }

let create ?aligns headers =
  let k = List.length headers in
  if k = 0 then invalid_arg "Table.create: no columns";
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> k then invalid_arg "Table.create: aligns length mismatch";
        Array.of_list a
    | None -> Array.init k (fun i -> if i = 0 then Left else Right)
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let k = List.length t.headers in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Rule -> ()
      | Cells cs ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs)
    rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = widths.(i) in
        let pad = w - String.length c in
        let l, r = match t.aligns.(i) with Left -> (0, pad) | Right -> (pad, 0) in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (String.make l ' ');
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make r ' ');
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers;
  rule ();
  List.iter (function Rule -> rule () | Cells cs -> line cs) rows;
  if k > 0 then rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout

let fi = string_of_int

let ff ?(dec = 3) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" dec x

let fb b = if b then "yes" else "NO"

let fr ?(dec = 2) a b = if b = 0.0 then "-" else ff ~dec (a /. b)
