type 'a entry = { prio : int; value : 'a }

type 'a t = {
  sign : int; (* +1 for max-heap, -1 for min-heap *)
  mutable data : 'a entry array;
  mutable size : int;
}

let create sign = { sign; data = [||]; size = 0 }
let create_max () = create 1
let create_min () = create (-1)

let is_empty q = q.size = 0
let length q = q.size

let better q a b = q.sign * compare a.prio b.prio > 0

let grow q filler =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let nd = Array.make ncap filler in
    Array.blit q.data 0 nd 0 q.size;
    q.data <- nd
  end

let push q prio value =
  let e = { prio; value } in
  grow q e;
  q.data.(q.size) <- e;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    better q q.data.(!i) q.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.data.(parent) in
    q.data.(parent) <- q.data.(!i);
    q.data.(!i) <- tmp;
    i := parent
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < q.size && better q q.data.(l) q.data.(!best) then best := l;
        if r < q.size && better q q.data.(r) q.data.(!best) then best := r;
        if !best = !i then continue_ := false
        else begin
          let tmp = q.data.(!best) in
          q.data.(!best) <- q.data.(!i);
          q.data.(!i) <- tmp;
          i := !best
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)
