let nonempty name xs = if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let sum xs =
  nonempty "sum" xs;
  Array.fold_left ( +. ) 0.0 xs

let mean xs =
  nonempty "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  nonempty "min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  nonempty "max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let median xs = percentile xs 50.0
let of_ints xs = Array.map float_of_int xs

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let summarize xs =
  nonempty "summarize" xs;
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    p25 = percentile xs 25.0;
    median = median xs;
    p75 = percentile xs 75.0;
    max = max xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p25 s.median s.p75 s.max

module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end

let histogram xs ~bins =
  nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = min xs and hi = max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = Stdlib.min b (bins - 1) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.init bins (fun b ->
      (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
