(** Binary-heap priority queue with integer priorities.

    Used by the greedy spokesmen procedures (pick the vertex of minimum /
    maximum score) and by graph traversals. Max-oriented by default; wrap
    priorities in [-p] for min behaviour, or use [create_min]. *)

type 'a t

val create_max : unit -> 'a t
val create_min : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** [push q priority value]. *)

val pop : 'a t -> (int * 'a) option
(** Extract the best (max or min priority) entry. *)

val peek : 'a t -> (int * 'a) option
