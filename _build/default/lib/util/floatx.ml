let log2 x = log x /. log 2.0

let log2i_floor n =
  if n < 1 then invalid_arg "Floatx.log2i_floor";
  let rec go k acc = if acc * 2 > n || acc > max_int / 2 then k else go (k + 1) (acc * 2) in
  go 0 1

let log2i_ceil n =
  if n < 1 then invalid_arg "Floatx.log2i_ceil";
  let f = log2i_floor n in
  if 1 lsl f = n then f else f + 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let safe_div a b = if b = 0.0 then nan else a /. b

let approx_equal ?(eps = 1e-9) a b =
  let d = Float.abs (a -. b) in
  d <= eps || d <= eps *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)
