(** Fixed-width ASCII table rendering.

    Every experiment in the bench harness prints through this module, so all
    predicted-vs-measured tables share one layout. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table. [aligns] defaults to [Left] for the
    first column and [Right] for the rest (label + numeric columns). *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_rule : t -> unit
(** Insert a horizontal separator between row groups. *)

val render : t -> string
(** The full table, with a top rule, a header rule and a bottom rule. *)

val print : t -> unit
(** [render] followed by [print_string] and a flush. *)

(** Cell formatting helpers shared by experiment code. *)

val fi : int -> string
val ff : ?dec:int -> float -> string
(** Fixed decimals (default 3); renders nan as ["-"]. *)

val fb : bool -> string
(** ["yes"] / ["NO"] — failures shout. *)

val fr : ?dec:int -> float -> float -> string
(** [fr a b] renders the ratio [a/b], or ["-"] if [b = 0]. *)
