(* Experiment harness for the Wireless Expanders reproduction.

   dune exec bench/main.exe                 # all experiments + ablations + micro
   dune exec bench/main.exe -- -e e5        # one experiment
   dune exec bench/main.exe -- --quick      # shrunken parameter grids
   dune exec bench/main.exe -- --list       # what exists

   Every experiment prints one or more predicted-vs-measured tables; the
   mapping from experiment id to paper claim is in DESIGN.md §5, and the
   recorded outcomes live in EXPERIMENTS.md. *)

open Bench_common

let experiments : experiment list =
  [
    E01_relations.experiment;
    E02_spectral.experiment;
    E03_unique_tightness.experiment;
    E04_gbad_wireless.experiment;
    E05_core_graph.experiment;
    E06_gen_core.experiment;
    E07_positive.experiment;
    E08_worst_case.experiment;
    E09_spokesmen.experiment;
    E10_appendix_ladder.experiment;
    E11_broadcast.experiment;
    E12_arboricity.experiment;
    Ablations.experiment;
  ]

let run_one ~quick e =
  section e;
  let t0 = Sys.time () in
  e.run ~quick;
  Printf.printf "  [%s finished in %.1fs]\n" e.id (Sys.time () -. t0)

let list_experiments () =
  List.iter (fun e -> Printf.printf "%-9s %-55s %s\n" e.id e.title e.claim) experiments

let main experiment_id quick listing skip_micro =
  Printf.printf "wireless-expanders experiment harness (seed %d)\n" seed;
  if listing then (list_experiments (); 0)
  else begin
    match experiment_id with
    | Some id -> begin
        match List.find_opt (fun e -> e.id = id) experiments with
        | Some e ->
            run_one ~quick e;
            0
        | None ->
            Printf.eprintf "unknown experiment %S; try --list\n" id;
            1
      end
    | None ->
        List.iter (run_one ~quick) experiments;
        if not skip_micro then Micro.run ();
        0
  end

open Cmdliner

let experiment_arg =
  let doc = "Run a single experiment (e1..e12 or 'ablation'); default: all." in
  Arg.(value & opt (some string) None & info [ "e"; "experiment" ] ~docv:"ID" ~doc)

let quick_arg =
  let doc = "Shrink parameter grids for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_arg =
  let doc = "List experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let skip_micro_arg =
  let doc = "Skip the bechamel micro-benchmark section." in
  Arg.(value & flag & info [ "skip-micro" ] ~doc)

let cmd =
  let doc = "Reproduce every quantitative claim of 'Wireless Expanders' (SPAA 2018)" in
  let info = Cmd.info "wireless-expanders-bench" ~doc in
  Cmd.v info Term.(const main $ experiment_arg $ quick_arg $ list_arg $ skip_micro_arg)

let () = exit (Cmd.eval' cmd)
