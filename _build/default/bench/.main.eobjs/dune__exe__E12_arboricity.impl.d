bench/e12_arboricity.ml: Arboricity Bench_common Bounds Float Graph List Measure Table Traversal Wx_constructions Wx_graph
