bench/e04_gbad_wireless.ml: Bench_common Bip_measure Bitset Float Instances List Nbhd Printf Table Wx_constructions
