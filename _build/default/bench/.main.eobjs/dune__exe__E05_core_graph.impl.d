bench/e05_core_graph.ml: Array Bench_common Bipartite Float Floatx Instances List Table Theorems Wx_constructions
