bench/e06_gen_core.ml: Bench_common Bipartite Float Floatx List Printf Table Theorems Wx_constructions
