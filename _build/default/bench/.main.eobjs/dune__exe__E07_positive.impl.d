bench/e07_positive.ml: Bench_common Bipartite Bounds Instances List Solver Table Wx_spokesmen
