bench/ablations.ml: Array Bench_common Bip_measure Bipartite Bitset Gen List Printf Rng Solver Stats Sys Table Wx_constructions Wx_radio Wx_spokesmen
