bench/e01_relations.ml: Bench_common Graph Instances List Measure Table Traversal
