bench/e10_appendix_ladder.ml: Bench_common Bipartite Bounds Float Instances List Solver Table Wx_spokesmen
