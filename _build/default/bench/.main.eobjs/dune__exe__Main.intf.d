bench/main.mli:
