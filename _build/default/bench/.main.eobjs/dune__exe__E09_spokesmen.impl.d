bench/e09_spokesmen.ml: Bench_common Bipartite Bounds Instances List Solver Table Wx_spokesmen
