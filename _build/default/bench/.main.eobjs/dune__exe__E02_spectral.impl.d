bench/e02_spectral.ml: Bench_common Bounds Graph Instances List Measure Table Traversal Wx_spectral
