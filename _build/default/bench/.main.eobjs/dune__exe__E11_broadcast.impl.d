bench/e11_broadcast.ml: Array Bench_common Bipartite Bitset Bounds Float Floatx Graph List Rng Stats Table Wx_constructions Wx_radio
