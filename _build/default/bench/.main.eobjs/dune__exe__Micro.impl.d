bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Staged Test Time Toolkit Wx_constructions Wx_expansion Wx_graph Wx_radio Wx_spectral Wx_spokesmen Wx_util
