bench/e03_unique_tightness.ml: Bench_common Bitset Bounds Float Graph Instances List Measure Nbhd Table Traversal Wx_constructions
