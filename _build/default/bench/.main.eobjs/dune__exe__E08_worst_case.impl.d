bench/e08_worst_case.ml: Bench_common Gen Graph List Measure Printf Table Wx_constructions Wx_graph Wx_spectral
