bench/bench_common.ml: List Printf String Wireless_expanders Wx_expansion Wx_graph Wx_spokesmen Wx_util
