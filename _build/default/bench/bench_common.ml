(* Shared infrastructure for the experiment harness. *)

module Rng = Wx_util.Rng
module Bitset = Wx_util.Bitset
module Table = Wx_util.Table
module Stats = Wx_util.Stats
module Floatx = Wx_util.Floatx
module Graph = Wx_graph.Graph
module Bipartite = Wx_graph.Bipartite
module Gen = Wx_graph.Gen
module Traversal = Wx_graph.Traversal
module Arboricity = Wx_graph.Arboricity
module Measure = Wx_expansion.Measure
module Bip_measure = Wx_expansion.Bip_measure
module Bounds = Wx_expansion.Bounds
module Nbhd = Wx_expansion.Nbhd
module Solver = Wx_spokesmen.Solver
module Instances = Wireless_expanders.Instances
module Theorems = Wireless_expanders.Theorems

type experiment = {
  id : string;  (** "e1" ... "e12", "ablation" *)
  title : string;
  claim : string;  (** which part of the paper it reproduces *)
  run : quick:bool -> unit;
}

let section e =
  Printf.printf "\n=== %s: %s ===\n    [%s]\n\n" (String.uppercase_ascii e.id) e.title e.claim

let seed = Instances.seed
let rng off = Rng.create (seed + off)

let checks_table (checks : Theorems.check list) =
  let t = Table.create [ "claim"; "instance"; "predicted"; "measured"; "holds" ] in
  List.iter
    (fun (c : Theorems.check) ->
      Table.add_row t
        [
          c.Theorems.claim;
          c.Theorems.instance;
          Table.ff ~dec:4 c.Theorems.predicted;
          Table.ff ~dec:4 c.Theorems.measured;
          Table.fb c.Theorems.holds;
        ])
    checks;
  Table.print t

let verdict ok_count total =
  Printf.printf "\n  verdict: %d/%d claims hold\n" ok_count total

let count_holds checks = List.length (List.filter (fun c -> c.Theorems.holds) checks)
