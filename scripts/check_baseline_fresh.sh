#!/usr/bin/env bash
# Fail when the expansion-measure code changed more recently than the
# committed bench baseline. The perf job's alloc gate compares fresh runs
# against bench/baseline.json, which only means something if a PR touching
# the measured code re-records the baseline in the same change; this guard
# turns "forgot to re-record" into a CI failure instead of a silently
# stale gate.
#
# Comparison is by last-touching commit time (git log -1 --format=%ct),
# not filesystem mtime — checkouts do not preserve the latter. Requires a
# full clone (fetch-depth: 0); on a shallow clone the dates of grafted
# commits would compare equal and the guard would pass vacuously.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline=bench/baseline.json
# The code whose cost the baseline certifies: the exact-measure hot path,
# its enumeration layer (including the bitset count kernels KERN's naive
# rows and the scorers lean on, and the guard that bounds it), the
# experiment definitions themselves, and — since the baseline carries
# work counts, units/sec series and pool utilization (wx-bench/4) — the
# pool scheduler, the work-unit taxonomy, the radio simulator whose
# rounds are a counted work kind, and the exposition server (its scrape
# handling shares the registry the counted runs publish into, so a change
# there can shift the instrumented-path cost the baseline certifies).
watched=(lib/expansion lib/util/combi.ml lib/util/combi.mli
         lib/util/bitset.ml lib/util/bitset.mli
         lib/util/guard.ml lib/util/guard.mli bench/*.ml
         lib/par lib/obs/work.ml lib/obs/work.mli lib/radio/sim.ml
         lib/graph/csr.ml lib/radio/sim_csr.ml lib/radio/network.ml
         lib/obs/expose.ml)

if [ ! -f "$baseline" ]; then
  echo "error: $baseline missing" >&2
  exit 2
fi

baseline_ct=$(git log -1 --format=%ct -- "$baseline")
if [ -z "$baseline_ct" ]; then
  echo "error: $baseline has no commit history (shallow clone?)" >&2
  exit 2
fi

stale=0
for path in "${watched[@]}"; do
  ct=$(git log -1 --format=%ct -- "$path")
  [ -z "$ct" ] && continue
  if [ "$ct" -gt "$baseline_ct" ]; then
    commit=$(git log -1 --format=%h -- "$path")
    echo "stale baseline: $path last changed in $commit, after $baseline" >&2
    stale=1
  fi
done

if [ "$stale" -ne 0 ]; then
  echo >&2
  echo "re-record with: dune exec bin/wx.exe -- bench record --quick --jobs 2 --repeats 3 --force" >&2
  exit 1
fi

echo "baseline is at least as new as every watched path"

# The perf-trajectory ledger rides along with the baseline: a re-recorded
# baseline should be digested into bench/ledger.ndjson in the same change
# (wx bench history append bench/baseline.json), and the ledger codec
# lives in lib/obs/ledger.ml. A stale ledger only degrades the trend
# gate's history, it does not invalidate the pairwise gates — so this is
# a warning, not a failure.
ledger=bench/ledger.ndjson
if [ -f "$ledger" ]; then
  ledger_ct=$(git log -1 --format=%ct -- "$ledger")
  if [ -n "$ledger_ct" ]; then
    for path in "$baseline" lib/obs/ledger.ml; do
      ct=$(git log -1 --format=%ct -- "$path")
      [ -z "$ct" ] && continue
      if [ "$ct" -gt "$ledger_ct" ]; then
        echo "warning: $ledger predates the last change to $path;" \
             "refresh with: dune exec bin/wx.exe -- bench history append $baseline" >&2
      fi
    done
  fi
else
  echo "warning: $ledger missing; seed it with: dune exec bin/wx.exe -- bench history append $baseline" >&2
fi
